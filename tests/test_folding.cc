/**
 * @file
 * Decode-and-fold tests (the Figure 2 datapath logic) and the Decoded
 * Instruction Cache.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/decoded.hh"
#include "sim/dic.hh"

namespace crisp
{
namespace
{

std::vector<Parcel>
parcels(const std::vector<Instruction>& insts)
{
    std::vector<Parcel> out;
    for (const Instruction& i : insts)
        encodeAppend(i, out);
    return out;
}

TEST(FoldDecoder, FoldsOneParcelCarrierWithBranch)
{
    const auto w = parcels({
        Instruction::alu(Opcode::kAdd, Operand::stack(0), Operand::imm(1)),
        Instruction::branchRel(Opcode::kJmp, 0x40),
    });
    FoldDecoder dec(FoldPolicy::kCrisp);
    const auto di = dec.decodeAt(0x2000, w, true);
    ASSERT_TRUE(di);
    EXPECT_TRUE(di->folded);
    EXPECT_FALSE(di->loneBranch);
    EXPECT_EQ(di->ctl, Ctl::kJmp);
    EXPECT_EQ(di->totalParcels, 2);
    EXPECT_EQ(di->branchPc, 0x2002u);
    // Branch adjust: the offset is relative to the branch's address.
    EXPECT_EQ(di->takenPc, 0x2002u + 0x40u);
    EXPECT_EQ(di->seqPc, 0x2004u);
    EXPECT_EQ(di->archCount(), 2);
}

TEST(FoldDecoder, FoldsThreeParcelCarrier)
{
    const auto w = parcels({
        Instruction::cmp(Opcode::kCmpLt, Operand::stack(0),
                         Operand::imm(1024)),
        Instruction::branchRel(Opcode::kIfTJmp, -0x20, true),
    });
    FoldDecoder dec(FoldPolicy::kCrisp);
    const auto di = dec.decodeAt(0x2000, w, true);
    ASSERT_TRUE(di);
    EXPECT_TRUE(di->folded);
    EXPECT_TRUE(di->writesCc); // the dedicated modifies-CC bit
    EXPECT_EQ(di->ctl, Ctl::kCondT);
    EXPECT_TRUE(di->predictTaken);
    EXPECT_EQ(di->totalParcels, 4);
    EXPECT_EQ(di->branchPc, 0x2006u);
    EXPECT_EQ(di->takenPc, 0x2006u - 0x20u);
}

TEST(FoldDecoder, CrispPolicySkipsFiveParcelCarriers)
{
    const auto w = parcels({
        Instruction::mov(Operand::abs(0x20000), Operand::imm(1 << 20)),
        Instruction::branchRel(Opcode::kJmp, 0x40),
    });
    FoldDecoder crisp_dec(FoldPolicy::kCrisp);
    const auto a = crisp_dec.decodeAt(0x2000, w, true);
    ASSERT_TRUE(a);
    EXPECT_FALSE(a->folded);
    EXPECT_EQ(a->totalParcels, 5);

    FoldDecoder all_dec(FoldPolicy::kAll);
    const auto b = all_dec.decodeAt(0x2000, w, true);
    ASSERT_TRUE(b);
    EXPECT_TRUE(b->folded);
    EXPECT_EQ(b->totalParcels, 6);

    FoldDecoder none_dec(FoldPolicy::kNone);
    const auto c = none_dec.decodeAt(0x2000, w, true);
    ASSERT_TRUE(c);
    EXPECT_FALSE(c->folded);
}

TEST(FoldDecoder, NoFoldAcrossControlInstructions)
{
    // A branch cannot fold into another branch, a return, or a halt.
    for (const Instruction& first :
         {Instruction::branchRel(Opcode::kJmp, 0x10),
          Instruction::ret(2), Instruction::halt()}) {
        const auto w = parcels({
            first,
            Instruction::branchRel(Opcode::kJmp, 0x40),
        });
        FoldDecoder dec(FoldPolicy::kCrisp);
        const auto di = dec.decodeAt(0x2000, w, true);
        ASSERT_TRUE(di);
        EXPECT_FALSE(di->folded) << first.toString();
        EXPECT_EQ(di->totalParcels, first.lengthParcels());
    }
}

TEST(FoldDecoder, ThreeParcelBranchesAreNotFolded)
{
    const auto w = parcels({
        Instruction::alu(Opcode::kAdd, Operand::stack(0), Operand::imm(1)),
        Instruction::branchFar(Opcode::kJmp, BranchMode::kAbs, 0x4000),
    });
    FoldDecoder dec(FoldPolicy::kCrisp);
    const auto di = dec.decodeAt(0x2000, w, true);
    ASSERT_TRUE(di);
    EXPECT_FALSE(di->folded);
    EXPECT_EQ(di->ctl, Ctl::kSeq);
}

TEST(FoldDecoder, LoneBranchEntry)
{
    const auto w = parcels({
        Instruction::branchRel(Opcode::kIfFJmp, 0x40, false),
    });
    FoldDecoder dec(FoldPolicy::kCrisp);
    const auto di = dec.decodeAt(0x2000, w, true);
    ASSERT_TRUE(di);
    EXPECT_TRUE(di->loneBranch);
    EXPECT_EQ(di->ctl, Ctl::kCondF);
    EXPECT_EQ(di->archCount(), 1);
    EXPECT_EQ(di->takenPc, 0x2040u);
    EXPECT_EQ(di->seqPc, 0x2002u);
}

TEST(FoldDecoder, CallAndReturnEntries)
{
    {
        const auto w = parcels({Instruction::branchFar(
            Opcode::kCall, BranchMode::kAbs, 0x3000)});
        FoldDecoder dec(FoldPolicy::kCrisp);
        const auto di = dec.decodeAt(0x2000, w, true);
        ASSERT_TRUE(di);
        EXPECT_EQ(di->ctl, Ctl::kCall);
        EXPECT_EQ(di->takenPc, 0x3000u);
        EXPECT_EQ(di->callRetPc, 0x2006u);
    }
    {
        const auto w = parcels({Instruction::ret(3)});
        FoldDecoder dec(FoldPolicy::kCrisp);
        const auto di = dec.decodeAt(0x2000, w, true);
        ASSERT_TRUE(di);
        EXPECT_EQ(di->ctl, Ctl::kRet);
    }
}

TEST(FoldDecoder, IndirectJumpEntry)
{
    const auto w = parcels({Instruction::branchFar(
        Opcode::kJmp, BranchMode::kIndAbs, 0x8000)});
    FoldDecoder dec(FoldPolicy::kCrisp);
    const auto di = dec.decodeAt(0x2000, w, true);
    ASSERT_TRUE(di);
    EXPECT_EQ(di->ctl, Ctl::kIndirect);
    EXPECT_EQ(di->bmode, BranchMode::kIndAbs);
    EXPECT_EQ(di->spec, 0x8000u);
}

TEST(FoldDecoder, WaitsForFoldLookahead)
{
    // Window holds exactly the carrier; decoder must wait unless the
    // text ends here.
    const auto w = parcels({
        Instruction::alu(Opcode::kAdd, Operand::stack(0), Operand::imm(1)),
    });
    FoldDecoder dec(FoldPolicy::kCrisp);
    EXPECT_FALSE(dec.decodeAt(0x2000, w, /*at_end=*/false));
    const auto di = dec.decodeAt(0x2000, w, /*at_end=*/true);
    ASSERT_TRUE(di);
    EXPECT_FALSE(di->folded);
}

TEST(FoldDecoder, WindowNeed)
{
    FoldDecoder dec(FoldPolicy::kCrisp);
    Parcel buf[kMaxParcels];
    encode(Instruction::alu(Opcode::kAdd, Operand::stack(0),
                            Operand::imm(1)),
           buf);
    EXPECT_EQ(dec.windowNeed(buf[0]), 2); // 1 + fold lookahead
    encode(Instruction::branchRel(Opcode::kJmp, 0x10), buf);
    EXPECT_EQ(dec.windowNeed(buf[0]), 1); // branches never fold forward
    encode(Instruction::mov(Operand::abs(0x20000), Operand::imm(1 << 20)),
           buf);
    EXPECT_EQ(dec.windowNeed(buf[0]), 5); // 5-parcel, no fold (kCrisp)
    encode(Instruction::ret(1), buf);
    EXPECT_EQ(dec.windowNeed(buf[0]), 1);
}

TEST(FoldDecoder, PredictionBitSelectsPaths)
{
    for (bool pred : {false, true}) {
        const auto w = parcels({
            Instruction::mov(Operand::stack(0), Operand::stack(1)),
            Instruction::branchRel(Opcode::kIfTJmp, 0x10, pred),
        });
        FoldDecoder dec(FoldPolicy::kCrisp);
        const auto di = dec.decodeAt(0x2000, w, true);
        ASSERT_TRUE(di);
        EXPECT_EQ(di->predictTaken, pred);
        EXPECT_TRUE(di->condTaken(true));
        EXPECT_FALSE(di->condTaken(false));
    }
}

TEST(Dic, FillLookupAndConflicts)
{
    DecodedCache dic(32);
    DecodedInst a;
    a.pc = 0x1000;
    DecodedInst b;
    b.pc = 0x1000 + 32 * kParcelBytes; // same index, different tag

    EXPECT_EQ(dic.lookup(a.pc), nullptr);
    dic.fill(a);
    ASSERT_NE(dic.lookup(a.pc), nullptr);
    EXPECT_EQ(dic.lookup(a.pc)->pc, a.pc);
    EXPECT_EQ(dic.lookup(b.pc), nullptr);

    dic.fill(b); // evicts a (direct mapped)
    EXPECT_EQ(dic.lookup(a.pc), nullptr);
    ASSERT_NE(dic.lookup(b.pc), nullptr);

    dic.invalidateAll();
    EXPECT_EQ(dic.lookup(b.pc), nullptr);
}

TEST(Dic, DistinctEntriesForOddAlignment)
{
    // Entries at consecutive parcel addresses use different slots.
    DecodedCache dic(32);
    DecodedInst a;
    a.pc = 0x1000;
    DecodedInst b;
    b.pc = 0x1002;
    dic.fill(a);
    dic.fill(b);
    EXPECT_NE(dic.lookup(0x1000), nullptr);
    EXPECT_NE(dic.lookup(0x1002), nullptr);
}

TEST(Dic, RequiresPowerOfTwo)
{
    EXPECT_THROW(DecodedCache(0), CrispError);
    EXPECT_THROW(DecodedCache(3), CrispError);
    EXPECT_THROW(DecodedCache(-8), CrispError);
    EXPECT_NO_THROW(DecodedCache(1));
    EXPECT_NO_THROW(DecodedCache(64));
}

/**
 * Property: for any (carrier, branch) pair allowed by a policy, the
 * folded entry's architectural meaning equals the two instructions in
 * sequence: same body, branch target = carrier end + branch
 * displacement.
 */
class FoldProperty
    : public ::testing::TestWithParam<std::tuple<FoldPolicy, int>>
{
};

TEST_P(FoldProperty, TargetsAndLengthsConsistent)
{
    const auto [policy, disp_words] = GetParam();
    const std::int32_t disp = disp_words * 2;

    const Instruction carriers[] = {
        Instruction::alu(Opcode::kAdd, Operand::stack(0),
                         Operand::imm(1)),
        Instruction::cmp(Opcode::kCmpLt, Operand::stack(0),
                         Operand::imm(1024)),
        Instruction::mov(Operand::abs(0x20000), Operand::imm(1 << 20)),
        Instruction::enter(4),
    };
    for (const Instruction& carrier : carriers) {
        const auto w = parcels(
            {carrier, Instruction::branchRel(Opcode::kIfTJmp, disp)});
        FoldDecoder dec(policy);
        const Addr pc = 0x2000;
        const auto di = dec.decodeAt(pc, w, true);
        ASSERT_TRUE(di);
        const Addr branch_pc = pc + carrier.lengthBytes();
        if (di->folded) {
            EXPECT_EQ(di->takenPc, branch_pc + static_cast<Addr>(disp));
            EXPECT_EQ(di->seqPc, branch_pc + kParcelBytes);
            EXPECT_EQ(di->body, carrier);
        } else {
            // Not folded: the branch must decode as its own lone entry.
            EXPECT_EQ(di->seqPc, branch_pc);
            const auto lone = dec.decodeAt(
                branch_pc,
                std::span<const Parcel>(
                    w.data() + carrier.lengthParcels(), 1),
                true);
            ASSERT_TRUE(lone);
            EXPECT_TRUE(lone->loneBranch);
            EXPECT_EQ(lone->takenPc, branch_pc + static_cast<Addr>(disp));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FoldProperty,
    ::testing::Combine(::testing::Values(FoldPolicy::kNone,
                                         FoldPolicy::kCrisp,
                                         FoldPolicy::kAll),
                       ::testing::Values(-512, -16, 0, 16, 511)));

} // namespace
} // namespace crisp
