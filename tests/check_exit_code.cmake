# Run TOOL with ARGS and require the exact exit code EXPECT.
#
# ctest's WILL_FAIL only distinguishes zero from nonzero; crisplint's
# documented contract distinguishes findings (1) from usage problems
# (2) from load/decode failures (3), so the tool tests run through this
# wrapper:
#
#   cmake -DTOOL=<binary> -DARGS="<args>" -DEXPECT=<N> \
#         -P check_exit_code.cmake
separate_arguments(arg_list NATIVE_COMMAND "${ARGS}")
execute_process(COMMAND ${TOOL} ${arg_list}
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL "${EXPECT}")
    message(FATAL_ERROR
            "${TOOL} ${ARGS}: expected exit ${EXPECT}, got ${rc}")
endif()
