/**
 * @file
 * Torture-subsystem tests: generator determinism and coverage, the
 * lockstep differential runner over a large seed sweep, every
 * fault-injection hook (benign hints vs. detected corruption), the
 * cycle-limit watchdog, and the delta-debugging shrinker.
 */

#include <gtest/gtest.h>

#include <map>

#include "asm/assembler.hh"
#include "sim/cpu.hh"
#include "verify/faults.hh"
#include "verify/generator.hh"
#include "verify/lockstep.hh"
#include "verify/shrink.hh"

namespace crisp
{
namespace
{

using verify::Divergence;
using verify::FaultConfig;
using verify::FaultInjector;
using verify::FaultKind;
using verify::GenProgram;
using verify::LockstepOptions;
using verify::LockstepReport;
using verify::Segment;

// ---------------------------------------------------------- generator

TEST(Generator, DeterministicAcrossCalls)
{
    const GenProgram a = verify::generate(42);
    const GenProgram b = verify::generate(42);
    EXPECT_EQ(a.listing(), b.listing());
    const GenProgram c = verify::generate(43);
    EXPECT_NE(a.listing(), c.listing());
}

TEST(Generator, ProgramsTerminateOnTheInterpreter)
{
    for (std::uint64_t s = 500; s < 540; ++s) {
        const Program p = verify::generate(s).link();
        Interpreter interp(p);
        EXPECT_TRUE(interp.run(1'000'000).halted)
            << "seed " << s << " did not halt";
    }
}

TEST(Generator, SweepCoversAllShapes)
{
    // Aggregate coverage over a window of seeds: every segment kind,
    // both indirect dispatch styles, far-relaxed branches and all
    // three encoded instruction lengths must appear.
    bool saw_kind[5] = {};
    bool saw_via_sp = false;
    bool saw_via_abs = false;
    bool saw_far = false;
    std::map<int, int> lengths;
    for (std::uint64_t s = 1; s <= 60; ++s) {
        const GenProgram gp = verify::generate(s);
        for (const Segment& seg : gp.segs) {
            saw_kind[static_cast<int>(seg.kind)] = true;
            if (seg.kind == Segment::Kind::kSwitch) {
                (seg.indirectViaSp ? saw_via_sp : saw_via_abs) = true;
            }
            saw_far |= seg.farPad;
        }
        for (const auto& [len, n] : gp.link().staticLengthHistogram())
            lengths[len] += n;
    }
    for (int k = 0; k < 5; ++k)
        EXPECT_TRUE(saw_kind[k]) << "segment kind " << k << " missing";
    EXPECT_TRUE(saw_via_sp);
    EXPECT_TRUE(saw_via_abs);
    EXPECT_TRUE(saw_far);
    EXPECT_GT(lengths[1], 0);
    EXPECT_GT(lengths[3], 0);
    EXPECT_GT(lengths[5], 0);
}

// ------------------------------------------------------ lockstep sweep

struct TortureCase
{
    int seed = 0;
};

class TortureSeeds : public ::testing::TestWithParam<int>
{
};

TEST_P(TortureSeeds, PipelineMatchesInterpreterAcrossFoldPolicies)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    const Program prog = verify::generate(seed).link();
    for (FoldPolicy fp :
         {FoldPolicy::kNone, FoldPolicy::kCrisp, FoldPolicy::kAll}) {
        LockstepOptions opt;
        opt.cfg.foldPolicy = fp;
        const LockstepReport rep = verify::runLockstep(prog, opt);
        EXPECT_TRUE(rep.ok())
            << "seed " << seed << " fold " << static_cast<int>(fp)
            << ":\n"
            << rep.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TortureSeeds, ::testing::Range(1, 201));

// ------------------------------------------------------ fault injection

/**
 * A handwritten workload with folded conditional branches, spread
 * compares and a call — every fault kind finds opportunities here, and
 * its timing is prediction-sensitive.
 */
Program
faultWorkload()
{
    const char* src = R"(
        .entry main
        .global acc 0
        .global n 0
        .local i 0
main:   enter 1
        mov n, 25
        mov i, 0
top:    add acc, 3
        cmp.s< i, 12
        add i, 1             ; spread filler between compare and branch
        iftjmpy skip
        add acc, 100
skip:   cmp.s< i, 25
        iftjmpy top
        call leaf
        mov Accum, acc
        halt
leaf:   enter 2
        mov sp[0], 9
        add acc, 1
        return 2
    )";
    return assemble(src);
}

LockstepReport
runWithFault(const Program& prog, FaultKind kind, bool check_decode,
             FaultInjector* out_inj = nullptr,
             std::uint64_t period = 3)
{
    FaultConfig fc;
    fc.kind = kind;
    fc.seed = 1;
    fc.period = period;
    FaultInjector inj(fc);
    LockstepOptions opt;
    opt.cfg.checkDecode = check_decode;
    opt.hooks = &inj;
    const LockstepReport rep = verify::runLockstep(prog, opt);
    if (out_inj != nullptr)
        *out_inj = inj;
    return rep;
}

TEST(FaultInjection, BaselineIsClean)
{
    const Program prog = faultWorkload();
    LockstepOptions opt;
    opt.cfg.checkDecode = true;
    const LockstepReport rep = verify::runLockstep(prog, opt);
    ASSERT_TRUE(rep.ok()) << rep.toString();
}

TEST(FaultInjection, FlippedPredictionBitIsBenignButCostsCycles)
{
    const Program prog = faultWorkload();
    const LockstepReport base =
        verify::runLockstep(prog, LockstepOptions{});
    ASSERT_TRUE(base.ok());

    FaultInjector inj({});
    const LockstepReport rep = runWithFault(
        prog, FaultKind::kFlipPredictBit, /*check_decode=*/true, &inj,
        /*period=*/1);
    EXPECT_TRUE(rep.ok()) << rep.toString();
    EXPECT_GT(inj.fires(), 0);
    // The loop's back edge is predicted taken and overwhelmingly taken:
    // inverting the bit must show up in the cycle count and in the
    // mispredict counter, but never in architecture.
    EXPECT_NE(rep.sim.cycles, base.sim.cycles);
    EXPECT_GT(rep.sim.mispredicts, base.sim.mispredicts);
}

TEST(FaultInjection, UnfoldedPairIsBenign)
{
    const Program prog = faultWorkload();
    const LockstepReport base =
        verify::runLockstep(prog, LockstepOptions{});
    ASSERT_TRUE(base.ok());
    ASSERT_GT(base.sim.pduFoldedPairs, 0u);

    FaultInjector inj({});
    const LockstepReport rep =
        runWithFault(prog, FaultKind::kUnfoldPair, true, &inj, 1);
    EXPECT_TRUE(rep.ok()) << rep.toString();
    EXPECT_GT(inj.fires(), 0);
    // Un-folding moves branches back into EU slots: the pipeline
    // retires more entries for the same architectural work.
    EXPECT_LT(rep.sim.foldedBranches, base.sim.foldedBranches);
    EXPECT_GT(rep.sim.issued, base.sim.issued);
}

TEST(FaultInjection, DroppedFillsAreBenign)
{
    const Program prog = faultWorkload();
    FaultInjector inj({});
    const LockstepReport rep =
        runWithFault(prog, FaultKind::kDropFill, true, &inj, 2);
    EXPECT_TRUE(rep.ok()) << rep.toString();
    EXPECT_GT(inj.fires(), 0);
}

TEST(FaultInjection, CorruptNextPcIsDetectedByTheChecker)
{
    const Program prog = faultWorkload();
    FaultInjector inj({});
    const LockstepReport rep =
        runWithFault(prog, FaultKind::kCorruptNextPc, true, &inj, 1);
    EXPECT_GT(inj.fires(), 0);
    EXPECT_EQ(rep.kind, Divergence::kDicCorruptionDetected)
        << rep.toString();
    EXPECT_TRUE(rep.sim.dicCorruption);
    EXPECT_TRUE(rep.sim.faulted);
    EXPECT_FALSE(rep.sim.faultReason.empty());
}

TEST(FaultInjection, CorruptNextPcWithoutCheckerStillNeverWrongSilently)
{
    // Without the checker the machine may diverge — the differential
    // harness itself must catch it (this is what the checker-off run
    // demonstrates: the lockstep net below the checker).
    const Program prog = faultWorkload();
    FaultInjector inj({});
    const LockstepReport rep =
        runWithFault(prog, FaultKind::kCorruptNextPc, false, &inj, 1);
    EXPECT_GT(inj.fires(), 0);
    EXPECT_FALSE(rep.ok());
}

TEST(FaultInjection, CorruptAltPcIsDetectedByTheChecker)
{
    const Program prog = faultWorkload();
    FaultInjector inj({});
    const LockstepReport rep =
        runWithFault(prog, FaultKind::kCorruptAltPc, true, &inj, 1);
    EXPECT_GT(inj.fires(), 0);
    EXPECT_EQ(rep.kind, Divergence::kDicCorruptionDetected)
        << rep.toString();
}

TEST(FaultInjection, CorruptCcBitIsDetectedByTheChecker)
{
    const Program prog = faultWorkload();
    FaultInjector inj({});
    const LockstepReport rep =
        runWithFault(prog, FaultKind::kCorruptCcBit, true, &inj, 1);
    EXPECT_GT(inj.fires(), 0);
    EXPECT_EQ(rep.kind, Divergence::kDicCorruptionDetected)
        << rep.toString();
}

TEST(FaultInjection, BenignFaultsAcrossSeededPrograms)
{
    // The acceptance property over a window of generated programs:
    // hint faults never change architecture.
    for (std::uint64_t s = 1; s <= 30; ++s) {
        const Program prog = verify::generate(s).link();
        for (FaultKind k :
             {FaultKind::kFlipPredictBit, FaultKind::kUnfoldPair,
              FaultKind::kDropFill}) {
            FaultConfig fc;
            fc.kind = k;
            fc.seed = s;
            FaultInjector inj(fc);
            LockstepOptions opt;
            opt.cfg.checkDecode = true;
            opt.hooks = &inj;
            const LockstepReport rep =
                verify::runLockstep(prog, opt);
            EXPECT_TRUE(rep.ok())
                << "seed " << s << " fault "
                << verify::faultKindName(k) << ":\n"
                << rep.toString();
        }
    }
}

TEST(FaultInjection, KindNamesRoundTrip)
{
    for (FaultKind k : verify::kInjectableFaults) {
        const auto parsed =
            verify::parseFaultKind(verify::faultKindName(k));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, k);
    }
    EXPECT_FALSE(verify::parseFaultKind("no-such-fault").has_value());
}

// ------------------------------------------------------------ watchdog

TEST(Watchdog, CycleLimitSetsTimedOutInsteadOfHanging)
{
    const char* src = R"(
        .entry s
s:      jmp s
    )";
    const Program p = assemble(src);
    SimConfig cfg;
    cfg.maxCycles = 500;
    CrispCpu cpu(p, cfg);
    const SimStats& s = cpu.run();
    EXPECT_FALSE(s.halted);
    EXPECT_TRUE(s.timedOut);
    EXPECT_EQ(s.cycles, 500u);
}

TEST(Watchdog, LockstepClassifiesNonHaltingPipelineAsCycleLimit)
{
    // A healthy program plus a cycle budget too small to finish it.
    const Program p = verify::generate(7).link();
    LockstepOptions opt;
    opt.cycleBudget = 3;
    const LockstepReport rep = verify::runLockstep(p, opt);
    EXPECT_EQ(rep.kind, Divergence::kCycleLimit) << rep.toString();
}

// ------------------------------------------------------------ shrinker

TEST(Shrinker, NoChangeWhenPredicateAlwaysFails)
{
    // With an always-true predicate the shrinker must converge to the
    // trivially smallest program: no segments, no functions.
    const GenProgram gp = verify::generate(11);
    const auto r = verify::shrinkProgram(
        gp, [](const GenProgram&) { return true; });
    EXPECT_TRUE(r.program.segs.empty());
    EXPECT_TRUE(r.program.fns.empty());
    EXPECT_GT(r.tests, 0);
}

TEST(Shrinker, KeepsEverythingWhenNothingReproduces)
{
    const GenProgram gp = verify::generate(11);
    const auto r = verify::shrinkProgram(
        gp, [](const GenProgram&) { return false; });
    EXPECT_EQ(r.program.segs.size(), gp.segs.size());
    EXPECT_EQ(r.program.fns.size(), gp.fns.size());
}

TEST(Shrinker, MinimizesASeededArchBugToATinyReproducer)
{
    // The acceptance criterion: a deliberately injected architectural
    // bug must shrink to a reproducer of at most 20 instructions.
    SimConfig cfg; // checker off: the bug must stay silent
    const auto fails = [&cfg](const GenProgram& cand) {
        FaultConfig fc;
        fc.kind = FaultKind::kArchBug;
        fc.seed = cand.seed;
        fc.maxFires = 1;
        FaultInjector inj(fc);
        LockstepOptions opt;
        opt.cfg = cfg;
        opt.hooks = &inj;
        return !verify::runLockstep(cand.link(), opt).ok();
    };
    bool found = false;
    for (std::uint64_t s = 1; s <= 40 && !found; ++s) {
        const GenProgram gp = verify::generate(s);
        if (!fails(gp))
            continue;
        found = true;
        const auto r = verify::shrinkProgram(gp, fails);
        EXPECT_TRUE(fails(r.program));
        EXPECT_LE(r.program.instructionCount(), 20)
            << r.program.listing();
        EXPECT_LE(r.program.instructionCount(),
                  gp.instructionCount());
    }
    ASSERT_TRUE(found)
        << "no seed in [1,40] tripped the seeded arch bug";
}

} // namespace
} // namespace crisp
