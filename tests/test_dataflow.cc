/**
 * @file
 * Tests for the sparse dataflow framework (src/analysis): backward
 * liveness and dead-store detection, reaching definitions and their
 * const-prop / redundant-copy consumers, sparse conditional constant
 * propagation, the abstract interpreter's widening corners, the
 * translation validator, and the crispcc -O driver that ties them all
 * together (including the --tamper-dce negative path).
 */

#include <gtest/gtest.h>

#include "analysis/checks.hh"
#include "analysis/liveness.hh"
#include "analysis/opt.hh"
#include "analysis/reachdefs.hh"
#include "analysis/sccp.hh"
#include "analysis/tv.hh"
#include "asm/assembler.hh"
#include "cc/compiler.hh"
#include "interp/interpreter.hh"
#include "verify/enginediff.hh"
#include "verify/generator.hh"
#include "verify/lockstep.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace crisp;
using namespace crisp::analysis;

bool
hasRule(const AnalysisResult& r, const std::string& rule)
{
    for (const Diagnostic& d : r.diags) {
        if (d.rule == rule)
            return true;
    }
    return false;
}

/** Issue point whose body is the given opcode (first match). */
const CfgNode*
findBody(const Cfg& cfg, Opcode op)
{
    for (const auto& [pc, n] : cfg.nodes()) {
        if (n.di.body.op == op)
            return &n;
    }
    return nullptr;
}

// ------------------------------------------------------------ liveness

TEST(Liveness, OverwrittenStackStoreIsDead)
{
    const Program p = assemble(R"(
    .entry main
    .local a 0
main:
    enter 1
    mov a, 7
    mov a, 8
    mov Accum, a
    halt
)");
    Cfg cfg(p, FoldPolicy::kCrisp);
    const AbsIntResult ai = interpret(cfg);
    const LivenessResult live = computeLiveness(cfg, ai);
    ASSERT_EQ(live.dead.size(), 1u);
    EXPECT_EQ(live.dead[0].kind, DeadKind::kMemStore);
    // The dead one is the first store (lowest pc in the function).
    for (const DeadStore& d : live.dead)
        EXPECT_LT(d.pc, cfg.nodes().rbegin()->first);
}

TEST(Liveness, FinalGlobalStoreIsLiveAtHalt)
{
    const Program p = assemble(R"(
    .global g 0
    .entry main
main:
    enter 1
    mov g, 41
    mov g, 42
    halt
)");
    Cfg cfg(p, FoldPolicy::kCrisp);
    const AbsIntResult ai = interpret(cfg);
    const LivenessResult live = computeLiveness(cfg, ai);
    // The overwritten store dies; the final one is observable at halt
    // (the data segment is part of the exit contract) and must never
    // be reported.
    ASSERT_EQ(live.dead.size(), 1u);
    EXPECT_EQ(live.dead[0].kind, DeadKind::kMemStore);
    const Program run = p;
    Interpreter interp(run);
    ASSERT_TRUE(interp.run(10'000).halted);
    EXPECT_EQ(interp.wordAt("g"), 42u);
}

TEST(Liveness, CompareWithDeadFlagIsReported)
{
    const Program p = assemble(R"(
    .entry main
    .local a 0
main:
    enter 1
    mov a, 1
    cmp.= a, 1
    cmp.= a, 2
    add a, 1
    add a, 2
    add a, 3
    iftjmpn done
    add a, 4
done:
    mov Accum, a
    halt
)");
    Cfg cfg(p, FoldPolicy::kCrisp);
    const AbsIntResult ai = interpret(cfg);
    const LivenessResult live = computeLiveness(cfg, ai);
    bool dead_compare = false;
    for (const DeadStore& d : live.dead)
        dead_compare |= d.kind == DeadKind::kCompare;
    EXPECT_TRUE(dead_compare)
        << "the first compare's flag is overwritten before any branch";
}

// ----------------------------------------------------------- reachdefs

TEST(ReachDefs, ImmediateMovFeedsConstPropUse)
{
    const Program p = assemble(R"(
    .entry main
    .local a 0
    .local b 1
main:
    enter 2
    mov a, 5
    add b, a
    mov Accum, b
    halt
)");
    Cfg cfg(p, FoldPolicy::kCrisp);
    const AbsIntResult ai = interpret(cfg);
    const ReachDefsResult rd = computeReachDefs(cfg, ai);
    EXPECT_TRUE(rd.converged);
    const auto uses = findConstPropUses(cfg, rd, ai);
    bool found = false;
    for (const ConstUse& u : uses)
        found |= u.value == 5;
    EXPECT_TRUE(found) << "add b, a reads a, uniquely defined mov a, 5";
}

TEST(ReachDefs, RepeatedCopyIsRedundant)
{
    const Program p = assemble(R"(
    .entry main
    .local a 0
    .local b 1
main:
    enter 2
    mov b, 9
    mov a, b
    add Accum, 1
    mov a, b
    halt
)");
    Cfg cfg(p, FoldPolicy::kCrisp);
    const AbsIntResult ai = interpret(cfg);
    const ReachDefsResult rd = computeReachDefs(cfg, ai);
    const auto copies = findRedundantCopies(cfg, rd, ai);
    EXPECT_FALSE(copies.empty())
        << "the second mov a, b rewrites a with its own value";
}

// ---------------------------------------------------------------- sccp

TEST(Sccp, EdgePruningProvesCorrelatedCascade)
{
    // clip is 0 unless v > lim, and v is masked below lim — so the
    // `if (clip)` arm is unreachable. A plain join over both edges of
    // the first branch cannot see that; edge pruning can.
    const auto r = cc::compile(R"(
int out;
int main()
{
    int v, clip, lim;
    v = out & 1023;
    lim = 4095;
    clip = 0;
    if (v > lim)
        clip = 1;
    if (clip)
        out = 9;
    out = v;
    return v;
}
)");
    Cfg cfg(r.program, FoldPolicy::kCrisp);
    const AbsIntResult ai = interpret(cfg);
    const SccpResult sc = sccp(cfg);
    EXPECT_GE(sc.provenDirection.size(), 2u);
    int sccp_only_unreachable = 0;
    for (const auto& [pc, n] : cfg.nodes()) {
        const bool plain = ai.in.at(pc).reachable;
        const bool sparse = sc.state.in.at(pc).reachable;
        EXPECT_TRUE(!sparse || plain)
            << "SCCP reaches a node absint does not: " << pc;
        if (plain && !sparse)
            ++sccp_only_unreachable;
    }
    EXPECT_GT(sccp_only_unreachable, 0)
        << "the clip arm should be unreachable only under SCCP";
}

/** a's every component is contained in b's (a refines b). */
bool
intervalIn(const Interval& a, const Interval& b)
{
    return a.lo >= b.lo && a.hi <= b.hi;
}

bool
stateIn(const AbsState& s, const AbsState& t)
{
    if (!s.reachable)
        return true;
    if (!t.reachable)
        return false;
    if (!intervalIn(s.accum, t.accum) || !intervalIn(s.sp, t.sp))
        return false;
    if ((s.flag.mayTrue && !t.flag.mayTrue) ||
        (s.flag.mayFalse && !t.flag.mayFalse))
        return false;
    for (const auto& [addr, iv] : t.mem) {
        const auto it = s.mem.find(addr);
        if (it == s.mem.end() || !intervalIn(it->second, iv))
            return false;
    }
    return true;
}

TEST(Sccp, AtLeastAsPreciseAsAbsintAcross60Seeds)
{
    // The documented precision relation (sccp.hh): every state SCCP
    // reports is contained in the plain interpreter's state at the
    // same point, and SCCP never reaches a node absint proves
    // unreachable.
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        const Program p = verify::generate(seed).link();
        Cfg cfg(p, FoldPolicy::kCrisp);
        const AbsIntResult ai = interpret(cfg);
        const SccpResult sc = sccp(cfg);
        if (!ai.converged || !sc.state.converged)
            continue; // a bail degrades to top; containment is moot
        for (const auto& [pc, n] : cfg.nodes()) {
            EXPECT_TRUE(stateIn(sc.state.in.at(pc), ai.in.at(pc)))
                << "seed " << seed << " node " << pc
                << ": SCCP in-state escapes the plain in-state";
            EXPECT_TRUE(stateIn(sc.state.out.at(pc), ai.out.at(pc)))
                << "seed " << seed << " node " << pc
                << ": SCCP out-state escapes the plain out-state";
        }
        for (Addr pc : sc.executable) {
            EXPECT_TRUE(ai.in.at(pc).reachable)
                << "seed " << seed << " node " << pc
                << ": executable under SCCP, unreachable under absint";
        }
    }
}

// ------------------------------------------------------------ widening

TEST(Absint, AcyclicJoinConvergesExactlyWithoutWidening)
{
    // On acyclic code every node's in-state settles in a bounded
    // number of joins — far under the 12-join widening budget — so
    // the join of the two diamond arms is exact: both assign 4, and
    // the accumulator at halt is the proven constant 4.
    const Program p = assemble(R"(
    .entry main
    .local i 0
main:
    enter 1
    mov i, 3
    cmp.s< i, 8
    iftjmpn other
    mov i, 4
    jmp done
other:
    mov i, 4
done:
    mov Accum, i
    halt
)");
    Cfg cfg(p, FoldPolicy::kCrisp);
    const AbsIntResult ai = interpret(cfg);
    EXPECT_TRUE(ai.converged);
    EXPECT_EQ(ai.widenings, 0);
    const CfgNode* halt = findBody(cfg, Opcode::kHalt);
    ASSERT_NE(halt, nullptr);
    const AbsState& at = ai.in.at(halt->di.pc);
    ASSERT_TRUE(at.reachable);
    EXPECT_EQ(at.accum.constant(), std::optional<std::int32_t>(4));
}

TEST(Absint, LongLoopCrossesJoinBudgetAndWidens)
{
    // One hundred growth joins overrun the 12-join budget: widening
    // must fire, the fixpoint must still converge quickly, and the
    // widened result must stay sound (contain the concrete value).
    const Program p = assemble(R"(
    .entry main
    .local i 0
main:
    enter 1
    mov i, 0
loop:
    add i, 1
    cmp.s< i, 100
    iftjmpy loop
    mov Accum, i
    halt
)");
    Cfg cfg(p, FoldPolicy::kCrisp);
    const AbsIntResult ai = interpret(cfg);
    EXPECT_TRUE(ai.converged);
    EXPECT_GT(ai.widenings, 0);
    const CfgNode* halt = findBody(cfg, Opcode::kHalt);
    ASSERT_NE(halt, nullptr);
    const AbsState& at = ai.in.at(halt->di.pc);
    ASSERT_TRUE(at.reachable);
    EXPECT_TRUE(at.accum.contains(100));
    EXPECT_FALSE(at.accum.constant().has_value());

    // SCCP widens the same way and stays sound too.
    const SccpResult sc = sccp(cfg);
    EXPECT_TRUE(sc.state.converged);
    EXPECT_TRUE(sc.state.in.at(halt->di.pc).accum.contains(100));
}

TEST(Absint, WidenIntervalJumpsGrowingBoundsOnly)
{
    const Interval stable{0, 5};
    EXPECT_EQ(widenInterval(stable, stable), stable);
    const Interval grown = widenInterval({0, 5}, {0, 6});
    EXPECT_EQ(grown.lo, 0);
    EXPECT_EQ(grown.hi, INT32_MAX);
    const Interval sunk = widenInterval({0, 5}, {-1, 5});
    EXPECT_EQ(sunk.lo, INT32_MIN);
    EXPECT_EQ(sunk.hi, 5);
}

TEST(Absint, StepCapBailsToTopNotDivergence)
{
    const Program p = assemble(R"(
    .entry main
    .local i 0
main:
    enter 1
    mov i, 0
loop:
    add i, 1
    cmp.s< i, 8
    iftjmpy loop
    mov Accum, i
    halt
)");
    Cfg cfg(p, FoldPolicy::kCrisp);
    AbsIntOptions tiny;
    tiny.stepCap = 3;
    const AbsIntResult ai = interpret(cfg, tiny);
    EXPECT_FALSE(ai.converged);
    const CfgNode* halt = findBody(cfg, Opcode::kHalt);
    ASSERT_NE(halt, nullptr);
    // The bail degrades to all-top: reachable everywhere, nothing
    // proven — sound for every consumer.
    const AbsState& at = ai.in.at(halt->di.pc);
    EXPECT_TRUE(at.reachable);
    EXPECT_TRUE(at.accum.isTop());

    const SccpResult sc = sccp(cfg, tiny);
    EXPECT_FALSE(sc.state.converged);
    EXPECT_TRUE(sc.state.in.at(halt->di.pc).reachable);
}

// ------------------------------------------------- translation validator

TEST(Tv, IdentityRewriteValidates)
{
    const Program p = assemble(R"(
    .global g 0
    .entry main
main:
    enter 1
    mov g, 5
    mov Accum, g
    halt
)");
    const TvReport r = validateRewrite(p, p, {}, {});
    EXPECT_TRUE(r.ok) << (r.problems.empty() ? "" : r.problems[0]);
    EXPECT_TRUE(r.semanticChecked);
    EXPECT_EQ(r.instrBefore, r.instrAfter);
}

TEST(Tv, RejectsInstructionGrowth)
{
    const Program before = assemble(R"(
    .entry main
main:
    enter 1
    mov Accum, 5
    halt
)");
    const Program after = assemble(R"(
    .entry main
main:
    enter 1
    mov Accum, 5
    add Accum, 0
    halt
)");
    const TvReport r = validateRewrite(before, after, {}, {});
    EXPECT_FALSE(r.ok);
    ASSERT_FALSE(r.problems.empty());
    EXPECT_NE(r.problems[0].find("instruction count grew"),
              std::string::npos);
}

TEST(Tv, ShrinksDivergenceToNamedGlobal)
{
    const Program before = assemble(R"(
    .global g 0
    .entry main
main:
    enter 1
    mov g, 5
    mov Accum, 1
    halt
)");
    const Program after = assemble(R"(
    .global g 0
    .entry main
main:
    enter 1
    mov g, 6
    mov Accum, 1
    halt
)");
    const TvReport r = validateRewrite(before, after, {}, {});
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.counterexample.find("(g)"), std::string::npos)
        << "counterexample should name the diverging global: "
        << r.counterexample;
    EXPECT_NE(r.counterexample.find("expected 5, got 6"),
              std::string::npos)
        << r.counterexample;
}

// ----------------------------------------------------------- optimizer

TEST(Opt, WorkloadsOptimizeVerifiedAndMatchGoldens)
{
    for (const Workload& w : allWorkloads()) {
        const cc::CompileOptions copts;
        const cc::CompileResult base = cc::compile(w.source, copts);
        const OptReport r = optimize(base, copts);
        ASSERT_TRUE(r.applicable) << w.name;
        EXPECT_TRUE(r.tv.ok) << w.name << ": "
                             << (r.tv.problems.empty()
                                     ? ""
                                     : r.tv.problems[0]);
        EXPECT_LE(r.stats.envelopeHiAfter, r.stats.envelopeHiBefore)
            << w.name;
        Interpreter interp(r.result.program);
        ASSERT_TRUE(interp.run(200'000'000).halted) << w.name;
        for (const auto& [sym, val] : w.expectedGlobals)
            EXPECT_EQ(interp.wordAt(sym), val) << w.name << "." << sym;
        if (w.checkAccum)
            EXPECT_EQ(interp.accum(), w.expectedAccum) << w.name;
    }
}

TEST(Opt, OptimizedWorkloadsSurviveLockstepAndEngineDiff)
{
    for (const Workload& w : allWorkloads()) {
        const cc::CompileOptions copts;
        const OptReport r = optimize(cc::compile(w.source, copts), copts);
        verify::LockstepOptions lo;
        lo.maxSteps = 200'000'000;
        const verify::LockstepReport cycle =
            verify::runLockstep(r.result.program, lo);
        EXPECT_TRUE(cycle.ok()) << w.name << "\n" << cycle.toString();
        const verify::LockstepReport fast =
            verify::runFastLockstep(r.result.program, lo);
        EXPECT_TRUE(fast.ok()) << w.name << "\n" << fast.toString();
    }
}

TEST(Opt, NewWorkloadsActuallyOptimize)
{
    for (const char* name : {"crc8", "quant", "lex"}) {
        const Workload& w = workload(name);
        const cc::CompileOptions copts;
        const OptReport r = optimize(cc::compile(w.source, copts), copts);
        EXPECT_TRUE(r.optimized) << name;
        EXPECT_FALSE(r.tvFallback) << name;
        EXPECT_GE(r.stats.branchesRewritten, 2) << name;
        EXPECT_GT(r.stats.deadRemoved + r.stats.unreachableRemoved, 0)
            << name;
        EXPECT_LT(r.stats.envelopeHiAfter, r.stats.envelopeHiBefore)
            << name << ": a fired pass must shrink the cost envelope";
    }
}

const char* const kTamperSource = R"(
int g;
int out;

int main()
{
    int v, lim;
    v = g & 255;
    lim = 4095;
    out = v + lim;
    if (v > lim)
        out = 0;
    return out;
}
)";

TEST(Opt, TamperedDcePlanIsRejectedWithCounterexample)
{
    const cc::CompileOptions copts;
    const cc::CompileResult base = cc::compile(kTamperSource, copts);

    // Sanity: the untampered pipeline optimizes this program cleanly.
    const OptReport good = optimize(base, copts);
    EXPECT_TRUE(good.tv.ok);

    OptOptions tampered;
    tampered.tamperDce = true;
    const OptReport bad = optimize(base, copts, tampered);
    ASSERT_TRUE(bad.optimized)
        << "the tamper hook must ship its broken rewrite";
    EXPECT_FALSE(bad.tv.ok);
    EXPECT_FALSE(bad.tv.counterexample.empty())
        << "the rejection must carry a shrunk counterexample";
}

TEST(Opt, DelaySlotBuildsAreNotApplicable)
{
    cc::CompileOptions copts;
    copts.delaySlots = true;
    const cc::CompileResult base =
        cc::compile(workload("fig3").source, copts);
    const OptReport r = optimize(base, copts);
    EXPECT_FALSE(r.applicable);
    EXPECT_FALSE(r.optimized);
}

// ---------------------------------------------------------- lint rules

TEST(Lint, DataflowRulesFireAndDiagnosticsAreSorted)
{
    const Program p = assemble(R"(
    .entry main
    .local x 0
    .local b 1
    .local d 2
main:
    enter 3
    mov d, 7
    mov x, 5
    cmp.= x, 6
    add b, 1
    add b, 2
    add b, 3
    iftjmpn error
    mov Accum, x
    halt
error:
    mov Accum, 0
    halt
)");
    const AnalysisResult r = analyzeProgram(p, {});
    EXPECT_TRUE(hasRule(r, "dataflow.dead-store"))
        << "mov d, 7 is never read";
    EXPECT_TRUE(hasRule(r, "dataflow.unreachable-after-constant-branch"))
        << "the error block is cut off by the proven branch";
    for (std::size_t i = 1; i < r.diags.size(); ++i) {
        const Diagnostic& a = r.diags[i - 1];
        const Diagnostic& b = r.diags[i];
        EXPECT_TRUE(a.pc < b.pc || (a.pc == b.pc && a.rule <= b.rule))
            << "diagnostics must sort by (pc, rule) for stable goldens";
    }
}

TEST(Lint, RedundantCopyRuleFires)
{
    const Program p = assemble(R"(
    .entry main
    .local a 0
    .local b 1
main:
    enter 2
    mov b, 9
    mov a, b
    add Accum, 1
    mov a, b
    mov Accum, a
    halt
)");
    const AnalysisResult r = analyzeProgram(p, {});
    EXPECT_TRUE(hasRule(r, "dataflow.redundant-copy"));
}

TEST(Lint, DataflowOptionOffSuppressesRules)
{
    const Program p = assemble(R"(
    .entry main
    .local d 0
main:
    enter 1
    mov d, 7
    mov Accum, 1
    halt
)");
    AnalysisOptions on;
    const AnalysisResult with = analyzeProgram(p, on);
    EXPECT_TRUE(hasRule(with, "dataflow.dead-store"));
    AnalysisOptions off;
    off.dataflow = false;
    const AnalysisResult without = analyzeProgram(p, off);
    for (const Diagnostic& d : without.diags)
        EXPECT_NE(d.rule.rfind("dataflow.", 0), 0u) << d.rule;
}

TEST(Lint, JsonCarriesDataflowCounters)
{
    const AnalysisResult r =
        analyzeProgram(cc::compile(workload("quant").source).program, {});
    const std::string json = r.toJson();
    EXPECT_NE(json.find("\"dataflow\""), std::string::npos);
    EXPECT_NE(json.find("\"sccpProvenDirections\""), std::string::npos);
}

} // namespace
