/**
 * @file
 * Delayed-branch baseline machine tests: delay-slot semantics, the
 * flag interlock, and the comparison properties the paper claims.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "baseline/delayed.hh"
#include "cc/compiler.hh"
#include "sim/cpu.hh"
#include "workloads/workloads.hh"

namespace crisp
{
namespace
{

TEST(Delayed, SlotExecutesWhenBranchTaken)
{
    const Program p = assemble(R"(
        .entry s
        .global a 0
        .global b 0
s:      jmp over
        add a, 1            ; delay slot: executes although jmp takes
        add b, 99           ; skipped
over:   halt
    )");
    DelayedBranchCpu cpu(p);
    const DelayedStats& s = cpu.run();
    ASSERT_TRUE(s.halted);
    EXPECT_EQ(cpu.wordAt("a"), 1);
    EXPECT_EQ(cpu.wordAt("b"), 0);
}

TEST(Delayed, SlotExecutesWhenBranchNotTaken)
{
    const Program p = assemble(R"(
        .entry s
        .global a 0
s:      cmp.= a, 1          ; false
        iftjmpy away
        add a, 10           ; slot: executes either way
        add a, 100          ; fall-through continues after the slot
        halt
away:   halt
    )");
    DelayedBranchCpu cpu(p);
    cpu.run();
    EXPECT_EQ(cpu.wordAt("a"), 110);
}

TEST(Delayed, ConditionalUsesSlotThenTarget)
{
    const Program p = assemble(R"(
        .entry s
        .global a 0
        .global trail 0
s:      cmp.= a, 0          ; true
        iftjmpy target
        add trail, 1        ; slot
        add trail, 100      ; must be skipped
target: halt
    )");
    DelayedBranchCpu cpu(p);
    cpu.run();
    EXPECT_EQ(cpu.wordAt("trail"), 1);
}

TEST(Delayed, InterlockCountsAdjacentCompareBranch)
{
    const Program p = assemble(R"(
        .entry s
        .global a 5
s:      cmp.s> a, 0
        iftjmpy done        ; adjacent: 1 interlock stall
        nop
done:   halt
    )");
    DelayedBranchCpu cpu(p);
    const DelayedStats& s = cpu.run();
    EXPECT_EQ(s.interlockStalls, 1u);
    EXPECT_EQ(s.cycles, s.instructions + 1);
}

TEST(Delayed, NoInterlockWhenCompareIsSpread)
{
    const Program p = assemble(R"(
        .entry s
        .global a 5
        .global b 0
s:      cmp.s> a, 0
        add b, 1            ; one instruction between cmp and branch
        iftjmpy done
        nop
done:   halt
    )");
    DelayedBranchCpu cpu(p);
    const DelayedStats& s = cpu.run();
    EXPECT_EQ(s.interlockStalls, 0u);
}

TEST(Delayed, ControlInSlotIsRejected)
{
    const Program p = assemble(R"(
        .entry s
s:      jmp next
next:   jmp next2           ; a branch in the slot: illegal
next2:  halt
    )");
    DelayedBranchCpu cpu(p);
    EXPECT_THROW(cpu.run(), CrispError);
}

TEST(Delayed, NopSlotsAreCounted)
{
    cc::CompileOptions opts;
    opts.delaySlots = true;
    const auto r = cc::compile(fig3Source(256), opts);
    DelayedBranchCpu cpu(r.program);
    const DelayedStats& s = cpu.run();
    ASSERT_TRUE(s.halted);
    EXPECT_GT(s.nopSlots, 0u);
    EXPECT_GT(s.branches, 0u);
    EXPECT_EQ(cpu.accum(), fig3Expected(256));
}

TEST(Delayed, CrispExecutesFewerInstructionsForSameProgram)
{
    // "CRISP's advantage over delayed branch is in executing fewer
    // instructions."
    const std::string src = fig3Source(1024);

    CrispCpu crisp_cpu(cc::compile(src).program);
    const SimStats& sc = crisp_cpu.run();

    cc::CompileOptions del;
    del.delaySlots = true;
    DelayedBranchCpu delayed_cpu(cc::compile(src, del).program);
    const DelayedStats& sd = delayed_cpu.run();

    // The delayed machine executes the branches AND any filler nops;
    // CRISP's EU does not even issue the folded branches.
    EXPECT_LT(sc.issued, sd.instructions);
    // And ends up faster in cycles despite CRISP modeling cache misses.
    EXPECT_LT(sc.cycles, sd.cycles);
    // Architecturally both computed the same answer.
    EXPECT_EQ(crisp_cpu.accum(), delayed_cpu.accum());
}

TEST(Annulling, SlotFromTargetExecutesOnlyWhenTaken)
{
    // Compile fig3 for the annulling machine: the backedge slot holds
    // the loop's first instruction and is squashed on exit.
    cc::CompileOptions opts;
    opts.delaySlots = true;
    opts.annulSlots = true;
    const auto r = cc::compile(fig3Source(256), opts);
    DelayedBranchCpu cpu(r.program, /*annulling=*/true);
    const DelayedStats& s = cpu.run();
    ASSERT_TRUE(s.halted);
    EXPECT_EQ(cpu.accum(), fig3Expected(256));
    EXPECT_GE(s.annulledSlots, 1u); // the loop exit
    // The backedge nops of the plain scheme are gone.
    cc::CompileOptions plain;
    plain.delaySlots = true;
    DelayedBranchCpu pcpu(cc::compile(fig3Source(256), plain).program);
    const DelayedStats& sp = pcpu.run();
    EXPECT_LT(s.nopSlots, sp.nopSlots);
    EXPECT_LT(s.cycles, sp.cycles);
}

TEST(Annulling, ResultsMatchPlainDelayed)
{
    for (const char* name : {"dhry", "puzzle", "sieve"}) {
        const Workload& w = workload(name);
        cc::CompileOptions opts;
        opts.delaySlots = true;
        opts.annulSlots = true;
        DelayedBranchCpu cpu(cc::compile(w.source, opts).program, true);
        const DelayedStats& s = cpu.run(1'000'000'000);
        ASSERT_TRUE(s.halted) << name;
        for (const auto& [sym, val] : w.expectedGlobals)
            EXPECT_EQ(cpu.wordAt(sym), val) << name << ":" << sym;
    }
}

TEST(Annulling, OtherEntriesToTargetUnaffected)
{
    // A second branch into the same loop head must still execute the
    // (not-copied-away) original first instruction.
    const char* src = R"(
        int main() {
            int s = 0;
            for (int i = 0; i < 10; i++) {
                s += i;            // loop head: annul-copied
                if (s > 1000) continue;
            }
            return s;
        }
    )";
    cc::CompileOptions opts;
    opts.delaySlots = true;
    opts.annulSlots = true;
    DelayedBranchCpu cpu(cc::compile(src, opts).program, true);
    cpu.run(1'000'000);
    EXPECT_EQ(cpu.accum(), 45);
}

TEST(Delayed, StopsAtStepLimit)
{
    const Program p = assemble(R"(
        .entry s
s:      jmp s
        nop
    )");
    DelayedBranchCpu cpu(p);
    const DelayedStats& s = cpu.run(1000);
    EXPECT_FALSE(s.halted);
}

} // namespace
} // namespace crisp
