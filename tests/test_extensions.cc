/**
 * @file
 * Tests for the toolchain extensions: object-file serialization,
 * profile-guided prediction bits, the extra predictors, the stack
 * cache model and the per-cycle pipeline trace.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "asm/assembler.hh"
#include "cc/compiler.hh"
#include "interp/interpreter.hh"
#include "isa/objfile.hh"
#include "predict/predictors.hh"
#include "predict/profile.hh"
#include "sim/cpu.hh"
#include "workloads/workloads.hh"

namespace crisp
{
namespace
{

TEST(ObjFile, RoundTripInMemory)
{
    const auto r = cc::compile(fig3Source(64));
    const auto bytes = saveObject(r.program);
    const Program back = loadObject(bytes);

    EXPECT_EQ(back.text, r.program.text);
    EXPECT_EQ(back.data, r.program.data);
    EXPECT_EQ(back.entry, r.program.entry);
    EXPECT_EQ(back.textBase, r.program.textBase);
    EXPECT_EQ(back.memBytes, r.program.memBytes);
    ASSERT_EQ(back.symbols.size(), r.program.symbols.size());
    for (const auto& [name, sym] : r.program.symbols) {
        ASSERT_TRUE(back.symbols.count(name)) << name;
        EXPECT_EQ(back.symbols.at(name).value, sym.value);
        EXPECT_EQ(static_cast<int>(back.symbols.at(name).kind),
                  static_cast<int>(sym.kind));
    }

    // And the loaded program actually runs.
    Interpreter interp(back);
    interp.run();
    EXPECT_EQ(interp.accum(), fig3Expected(64));
}

TEST(ObjFile, RoundTripThroughFile)
{
    const auto r = cc::compile("int main() { return 11; }");
    const std::string path = ::testing::TempDir() + "/crisp_test.obj";
    saveObjectFile(r.program, path);
    const Program back = loadObjectFile(path);
    Interpreter interp(back);
    interp.run();
    EXPECT_EQ(interp.accum(), 11);
    std::remove(path.c_str());
}

TEST(ObjFile, RejectsGarbage)
{
    EXPECT_THROW(loadObject({}), CrispError);
    EXPECT_THROW(loadObject({'B', 'A', 'D', '!'}), CrispError);
    // Truncated: valid header start, missing body.
    auto bytes = saveObject(cc::compile("int main(){return 0;}").program);
    bytes.resize(bytes.size() / 2);
    EXPECT_THROW(loadObject(bytes), CrispError);
    EXPECT_THROW(loadObjectFile("/nonexistent/path.obj"), CrispError);
}

TEST(Profile, FlipsNaiveBitsToMajority)
{
    // Compile with all-not-taken bits: the loop backedge is wrong.
    cc::CompileOptions naive;
    naive.predict = cc::PredictMode::kAllNotTaken;
    Program prog = cc::compile(fig3Source(256), naive).program;

    Interpreter interp(prog);
    BranchTraceRecorder rec;
    interp.run(10'000'000, &rec);

    const int flipped = applyProfileBits(prog, rec.events);
    EXPECT_GE(flipped, 1); // at least the backedge

    // The patched backedge now predicts taken.
    CompilerBitPredictor bit;
    Interpreter interp2(prog);
    BranchTraceRecorder rec2;
    interp2.run(10'000'000, &rec2);
    const auto acc = evaluateDirection(rec2.events, bit);
    const auto oracle = evaluateStaticOracle(rec2.events);
    EXPECT_EQ(acc.correct, oracle.correct)
        << "profile bits must equal the optimal static bit";
    // Results unchanged.
    EXPECT_EQ(interp2.accum(), fig3Expected(256));
}

TEST(Profile, ImprovesPipelineCycles)
{
    cc::CompileOptions naive;
    naive.predict = cc::PredictMode::kAllNotTaken;
    naive.spread = false;
    const Program prog = cc::compile(fig3Source(512), naive).program;

    CrispCpu before(prog);
    const std::uint64_t cycles_before = before.run().cycles;

    const Program optimized = profileOptimize(prog);
    CrispCpu after(optimized);
    const SimStats& s = after.run();

    EXPECT_LT(s.cycles, cycles_before);
    EXPECT_EQ(after.accum(), fig3Expected(512));
    // fig3's backedge flips from always-wrong to once-wrong.
    EXPECT_LE(s.mispredicts, 512u / 2 + 2);
}

TEST(Profile, PatchesLongConditionalBranches)
{
    // Force a relaxed (three-parcel) conditional branch and patch it.
    std::string src = ".entry s\n.local i 0\ns:  enter 1\n"
                      "    mov i, 0\ntop:\n    add i, 1\n";
    for (int i = 0; i < 600; ++i)
        src += "    nop\n";
    src += "    cmp.s< i, 50\n    iftjmpn top\n    halt\n";
    Program prog = assemble(src);

    // The backedge is long-form (displacement > 1022 bytes).
    Interpreter interp(prog);
    BranchTraceRecorder rec;
    interp.run(10'000'000, &rec);
    ASSERT_FALSE(rec.events.empty());
    EXPECT_FALSE(rec.events.front().shortForm);

    EXPECT_EQ(applyProfileBits(prog, rec.events), 1);
    // Re-decode: the bit is now taken.
    bool found = false;
    Addr pc = prog.textBase;
    while (pc < prog.textEnd()) {
        const Instruction inst = prog.fetch(pc);
        if (isConditionalBranch(inst.op)) {
            EXPECT_TRUE(inst.predictTaken);
            found = true;
        }
        pc += inst.lengthBytes();
    }
    EXPECT_TRUE(found);
}

TEST(Profile, TiesKeepTheCompilerBit)
{
    Program prog = cc::compile(R"(
        int main() {
            int a = 0;
            for (int i = 0; i < 10; i++)
                if (i & 1) a++;
            return a;
        }
    )").program;
    Interpreter interp(prog);
    BranchTraceRecorder rec;
    interp.run(1'000'000, &rec);
    // The alternating if-branch is a 5/5 tie: untouched. The backedge
    // already has the right bit. Nothing flips.
    EXPECT_EQ(applyProfileBits(prog, rec.events), 0);
}

TEST(ExtraPredictors, AlwaysTakenAndBtfnt)
{
    AlwaysTakenPredictor at;
    BtfntPredictor bt;

    BranchEvent fwd;
    fwd.pc = 0x1000;
    fwd.target = 0x1100;
    fwd.conditional = true;
    BranchEvent bwd = fwd;
    bwd.target = 0x0F00;

    EXPECT_TRUE(at.predict(fwd));
    EXPECT_TRUE(at.predict(bwd));
    EXPECT_FALSE(bt.predict(fwd));
    EXPECT_TRUE(bt.predict(bwd));
}

TEST(ExtraPredictors, BtfntMatchesCompilerHeuristicOnLoops)
{
    // crispcc's bit IS the BTFNT heuristic, so the two must score
    // identically on any trace from heuristic-compiled code.
    const auto r = cc::compile(workload("cwhet").source);
    Interpreter interp(r.program);
    BranchTraceRecorder rec;
    interp.run(500'000'000, &rec);

    CompilerBitPredictor bit;
    BtfntPredictor bt;
    EXPECT_EQ(evaluateDirection(rec.events, bit).correct,
              evaluateDirection(rec.events, bt).correct);
}

TEST(StackCache, HitsWithinWindowMissesBelow)
{
    // Frame of 2: all accesses hit the 32-word window.
    const Program p = assemble(R"(
        .entry s
s:      enter 2
        mov sp[0], 1
        mov sp[1], 2
        add sp[0], sp[1]
        halt
    )");
    CrispCpu cpu(p);
    const SimStats& s = cpu.run();
    EXPECT_GT(s.stackCacheHits, 0u);
    EXPECT_EQ(s.stackCacheMisses, 0u);

    // Accessing slot 40 falls outside the 32-word window.
    const Program p2 = assemble(R"(
        .entry s
s:      enter 50
        mov sp[40], 7        ; below the 32-word cached window
        halt
    )");
    SimConfig big_mem;
    CrispCpu cpu2(p2, big_mem);
    const SimStats& s2 = cpu2.run();
    EXPECT_EQ(s2.stackCacheMisses, 1u);
}

TEST(StackCache, PenaltyAddsStallCycles)
{
    // Deep-frame access with a penalty slows the machine down but does
    // not change results.
    const char* src = R"(
        .entry s
        .global out 0
        .local i 0
s:      enter 64
        mov i, 0
top:    add i, 1
        add sp[60], 1        ; below the cached window
        cmp.s< i, 100
        iftjmpy top
        mov out, i
        halt
    )";
    SimConfig plain;
    CrispCpu a(assemble(src), plain);
    const SimStats sa = a.run();

    SimConfig pen;
    pen.stackCacheMissPenalty = 2;
    CrispCpu b(assemble(src), pen);
    const SimStats sb = b.run();

    EXPECT_EQ(a.wordAt("out"), 100);
    EXPECT_EQ(b.wordAt("out"), 100);
    EXPECT_GT(sb.cycles, sa.cycles);
    EXPECT_GE(sb.stackPenaltyCycles, 200u);
    EXPECT_EQ(sa.apparent, sb.apparent);
}

TEST(StackCache, DefaultConfigIsTimingNeutral)
{
    // The stack cache must not disturb the Table 4 calibration.
    const auto r = cc::compile(fig3Source(1024));
    SimConfig tiny;
    tiny.stackCacheWords = 1; // everything misses...
    CrispCpu a(r.program, tiny);
    SimConfig normal;
    CrispCpu b(r.program, normal);
    // ...but with zero penalty, cycles are identical.
    EXPECT_EQ(a.run().cycles, b.run().cycles);
}


TEST(HwPredictor, DynamicBeatsWrongStaticBit)
{
    // A loop whose bit says not-taken: the static machine mispredicts
    // every iteration; a 1-bit table learns after the first.
    const Program p = assemble(R"(
        .entry s
        .local i 0
s:      enter 1
        mov i, 0
top:    add i, 1
        cmp.s< i, 500
        iftjmpn top
        halt
    )");
    SimConfig stat;
    CrispCpu a(p, stat);
    const SimStats sa = a.run();

    SimConfig dyn;
    dyn.predictor = PredictorKind::kDynamic1;
    CrispCpu b(p, dyn);
    const SimStats sb = b.run();

    EXPECT_GE(sa.mispredicts, 499u);
    EXPECT_LE(sb.mispredicts, 3u);
    EXPECT_LT(sb.cycles, sa.cycles);
    EXPECT_EQ(sa.apparent, sb.apparent); // architecture unchanged
}

TEST(HwPredictor, AlternatingDefeatsDynamic)
{
    // The paper's key observation, now in hardware: on a strictly
    // alternating branch the dynamic schemes lose to a static bit.
    const auto r = cc::compile(R"(
        int a; int b;
        int main() {
            for (int i = 0; i < 400; i++) {
                if (i & 1) a++; else b++;
            }
            return a;
        }
    )");
    std::uint64_t mis[3];
    int idx = 0;
    for (PredictorKind k : {PredictorKind::kStaticBit,
                            PredictorKind::kDynamic1,
                            PredictorKind::kDynamic2}) {
        SimConfig cfg;
        cfg.predictor = k;
        CrispCpu cpu(r.program, cfg);
        mis[idx++] = cpu.run().mispredicts;
    }
    // Static: ~50% of the alternating branch. 1-bit dynamic: ~100%.
    // 2-bit: 100% or 50% depending on the phase it locks into — never
    // better than static (the paper's argument).
    EXPECT_LT(mis[0], 230u);
    EXPECT_GT(mis[1], 380u);
    EXPECT_GE(mis[2], mis[0]);
}

TEST(HwPredictor, RejectsBadTableSize)
{
    SimConfig cfg;
    cfg.predictor = PredictorKind::kDynamic2;
    cfg.predictorEntries = 100; // not a power of two
    const Program p = assemble(".entry s\ns: halt\n");
    EXPECT_THROW(CrispCpu(p, cfg), CrispError);
}

TEST(Fault, PreciseFaultPcAtRetire)
{
    const Program p = assemble(R"(
        .entry s
        .global g 0
s:      mov g, 1
        mov @0x3FFFF, 2      ; 32-bit write past the end of memory
        mov g, 3             ; must never retire
        halt
    )");
    CrispCpu cpu(p);
    const SimStats& s = cpu.run();
    EXPECT_TRUE(s.faulted);
    EXPECT_FALSE(s.halted);
    // The faulting instruction is the second one.
    Addr pc = p.entry;
    pc += p.fetch(pc).lengthBytes(); // skip mov g,1
    EXPECT_EQ(s.faultPc, pc);
    // Nothing younger retired; everything older did.
    EXPECT_EQ(cpu.wordAt("g"), 1);
}

TEST(Fault, WrongPathFaultIsSquashedHarmlessly)
{
    // "instructions could be easily cancelled before the result write":
    // a faulting store that lives only on the mispredicted path must
    // never fault the machine. The branch's static bit points at the
    // bad arm, but the branch never actually takes; the arm is fetched
    // speculatively every iteration and squashed before retirement.
    const Program p = assemble(R"(
        .entry s
        .global g 0
        .local i 0
s:      enter 1
        mov i, 0
top:    add i, 1
        add g, 2
        cmp.s> i, 1000       ; always false (i <= 50)
        iftjmpy bad          ; predicted taken, never taken
        cmp.s< i, 50
        iftjmpy top
        halt
bad:    mov @0x3FFFF, 9      ; would fault if it ever retired
        halt
    )");
    CrispCpu cpu(p);
    const SimStats& s = cpu.run();
    EXPECT_TRUE(s.halted);
    EXPECT_FALSE(s.faulted);
    EXPECT_GE(s.mispredicts, 50u); // the poisoned branch, every time
    EXPECT_GT(s.squashed, 0u);     // the bad store entered and died
    EXPECT_EQ(cpu.wordAt("g"), 100);
}

TEST(Trace, EmitsOneLinePerCycleWithEvents)
{
    const Program p = assemble(R"(
        .entry s
        .local i 0
s:      enter 1
        mov i, 5
top:    sub i, 1
        cmp.s> i, 0
        iftjmpn top          ; wrong bit: mispredicts
        halt
    )");
    CrispCpu cpu(p);
    std::vector<std::string> lines;
    cpu.setTraceSink([&](const std::string& l) { lines.push_back(l); });
    const SimStats& s = cpu.run();

    EXPECT_EQ(lines.size(), s.cycles);
    bool saw_miss = false;
    bool saw_mispredict = false;
    bool saw_stage = false;
    for (const std::string& l : lines) {
        if (l.find("dic-miss") != std::string::npos)
            saw_miss = true;
        if (l.find("mispredict-redirect") != std::string::npos)
            saw_mispredict = true;
        if (l.find("sub") != std::string::npos &&
            l.find("RR") != std::string::npos) {
            saw_stage = true;
        }
    }
    EXPECT_TRUE(saw_miss);
    EXPECT_TRUE(saw_mispredict);
    EXPECT_TRUE(saw_stage);
}

TEST(Trace, FoldedEntriesShowBothHalves)
{
    const Program p = assemble(R"(
        .entry s
        .local i 0
s:      enter 1
        mov i, 3
top:    sub i, 1
        cmp.s> i, 0
        iftjmpy top
        halt
    )");
    CrispCpu cpu(p);
    std::string all;
    cpu.setTraceSink([&](const std::string& l) { all += l + "\n"; });
    cpu.run();
    EXPECT_NE(all.find("cmp.s>+iftjmp"), std::string::npos);
}

} // namespace
} // namespace crisp
