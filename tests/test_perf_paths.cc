/**
 * @file
 * Differential tests pinning the predecode fast path to the legacy
 * re-decoding path (SimConfig::usePredecode = false).
 *
 * The predecode cache and the allocation-free PDU queue are host-speed
 * optimizations only: for every program, configuration and cycle they
 * must produce bit-identical statistics and an identical architectural
 * retire stream. These tests sweep the torture generator's seeds across
 * all fold policies, with and without the retire-time decode checker,
 * and assert exact SimStats equality (operator==, which includes every
 * counter and the fault string) plus an event-for-event match of the
 * retire-order instruction and branch traces.
 *
 * Unit tests at the bottom pin the PredecodeCache itself: per-policy
 * table isolation and agreement with a fresh FoldDecoder pass over the
 * whole text segment.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "interp/memory_image.hh"
#include "interp/trace.hh"
#include "sim/cpu.hh"
#include "sim/fastengine.hh"
#include "sim/predecode.hh"
#include "verify/generator.hh"

namespace
{

using namespace crisp;
using verify::generate;

/** Records the architectural retire stream for exact comparison. */
class RetireRecorder : public ExecObserver
{
  public:
    void
    onInstruction(Addr pc, Opcode op) override
    {
        instrs.emplace_back(pc, op);
    }

    void onBranch(const BranchEvent& ev) override { branches.push_back(ev); }

    std::vector<std::pair<Addr, Opcode>> instrs;
    std::vector<BranchEvent> branches;
};

bool
sameBranchEvent(const BranchEvent& a, const BranchEvent& b)
{
    return a.pc == b.pc && a.op == b.op &&
           a.conditional == b.conditional && a.taken == b.taken &&
           a.predictTaken == b.predictTaken && a.target == b.target &&
           a.fallThrough == b.fallThrough && a.shortForm == b.shortForm;
}

struct RunResult
{
    SimStats stats;
    RetireRecorder trace;
};

RunResult
runWith(const Program& prog, SimConfig cfg, bool use_predecode)
{
    cfg.usePredecode = use_predecode;
    cfg.maxCycles = 1'000'000;
    RunResult r;
    CrispCpu cpu(prog, cfg);
    r.stats = cpu.run(&r.trace);
    return r;
}

void
expectIdentical(const RunResult& fast, const RunResult& legacy,
                const std::string& label)
{
    EXPECT_TRUE(fast.stats == legacy.stats)
        << label << "\nfast:\n"
        << fast.stats.toString() << "\nlegacy:\n"
        << legacy.stats.toString();
    ASSERT_EQ(fast.trace.instrs.size(), legacy.trace.instrs.size())
        << label;
    for (std::size_t i = 0; i < fast.trace.instrs.size(); ++i) {
        ASSERT_EQ(fast.trace.instrs[i], legacy.trace.instrs[i])
            << label << " instruction " << i;
    }
    ASSERT_EQ(fast.trace.branches.size(), legacy.trace.branches.size())
        << label;
    for (std::size_t i = 0; i < fast.trace.branches.size(); ++i) {
        ASSERT_TRUE(sameBranchEvent(fast.trace.branches[i],
                                    legacy.trace.branches[i]))
            << label << " branch " << i;
    }
}

// ------------------------------------------------ differential sweeps

/** 100+ seeds x all fold policies: stats and traces bit-identical. */
TEST(PerfPaths, DifferentialTortureSweep)
{
    constexpr std::uint64_t kSeeds = 100;
    for (std::uint64_t s = 1; s <= kSeeds; ++s) {
        const Program prog = generate(s).link();
        for (FoldPolicy fp : {FoldPolicy::kNone, FoldPolicy::kCrisp,
                              FoldPolicy::kAll}) {
            SimConfig cfg;
            cfg.foldPolicy = fp;
            const RunResult fast = runWith(prog, cfg, true);
            const RunResult legacy = runWith(prog, cfg, false);
            expectIdentical(fast, legacy,
                            "seed " + std::to_string(s) + " fold " +
                                std::to_string(static_cast<int>(fp)));
        }
    }
}

/** The checker's golden re-decode also goes through the cache: the
 *  checked configuration must stay bit-identical too. */
TEST(PerfPaths, DifferentialWithDecodeChecker)
{
    for (std::uint64_t s = 1; s <= 30; ++s) {
        const Program prog = generate(s).link();
        SimConfig cfg;
        cfg.checkDecode = true;
        const RunResult fast = runWith(prog, cfg, true);
        const RunResult legacy = runWith(prog, cfg, false);
        expectIdentical(fast, legacy,
                        "checked seed " + std::to_string(s));
        EXPECT_FALSE(fast.stats.faulted);
    }
}

/** Non-default machine shapes (tiny DIC, long memory latency, dynamic
 *  predictor) keep the paths identical as well. */
TEST(PerfPaths, DifferentialConfigCorners)
{
    for (std::uint64_t s = 1; s <= 20; ++s) {
        const Program prog = generate(s).link();
        SimConfig cfg;
        cfg.dicEntries = 8;
        cfg.memLatency = 5;
        cfg.queueParcels = 6;
        cfg.predictor = PredictorKind::kDynamic2;
        const RunResult fast = runWith(prog, cfg, true);
        const RunResult legacy = runWith(prog, cfg, false);
        expectIdentical(fast, legacy,
                        "corner seed " + std::to_string(s));
    }
}

/** Replays through a shared PredecodeCache and through CrispCpu::reset()
 *  must be indistinguishable from fresh machines: identical stats,
 *  traces, and final architectural state, run after run, on both decode
 *  paths. This pins the crisptorture / bench_perf replay pattern. */
TEST(PerfPaths, SharedCacheAndResetReplaysIdentical)
{
    for (std::uint64_t s = 1; s <= 25; ++s) {
        const Program prog = generate(s).link();
        for (bool use_predecode : {true, false}) {
            SimConfig cfg;
            cfg.usePredecode = use_predecode;
            cfg.checkDecode = (s % 3 == 0);
            cfg.maxCycles = 1'000'000;

            PredecodeCache shared(prog);
            CrispCpu reused(prog, cfg,
                            use_predecode ? &shared : nullptr);
            for (int replay = 0; replay < 3; ++replay) {
                RunResult fresh;
                CrispCpu ref(prog, cfg);
                fresh.stats = ref.run(&fresh.trace);

                RunResult replayed;
                if (replay != 0)
                    reused.reset();
                replayed.stats = reused.run(&replayed.trace);

                expectIdentical(replayed, fresh,
                                "seed " + std::to_string(s) +
                                    " replay " + std::to_string(replay) +
                                    (use_predecode ? " fast" : " legacy"));
                EXPECT_EQ(reused.sp(), ref.sp());
                EXPECT_EQ(reused.accum(), ref.accum());
                EXPECT_EQ(reused.flag(), ref.flag());
                EXPECT_EQ(reused.nextIssuePc(), ref.nextIssuePc());
            }
        }
    }
}

// ------------------------------------------------ predecode unit tests

/** Per-policy tables must not bleed into each other: the same address
 *  folds under kCrisp and must stay unfolded under kNone, in either
 *  query order. */
TEST(PredecodeCache, PolicyTablesAreIsolated)
{
    const Program prog = generate(7).link();
    PredecodeCache cache(prog);

    // Find a foldable pair via the kCrisp table.
    const FoldDecoder crispDec(FoldPolicy::kCrisp);
    Addr folded_pc = 0;
    bool found = false;
    Addr pc = prog.textBase;
    while (pc < prog.textEnd()) {
        const auto& e = cache.at(pc, FoldPolicy::kCrisp);
        ASSERT_TRUE(e.valid);
        if (e.di.folded && !found) {
            folded_pc = pc;
            found = true;
        }
        pc += static_cast<Addr>(e.di.totalParcels) * kParcelBytes;
    }
    ASSERT_TRUE(found) << "seed 7 produced no foldable pair";

    // kNone at the same address: unfolded, shorter entry.
    const auto& none = cache.at(folded_pc, FoldPolicy::kNone);
    ASSERT_TRUE(none.valid);
    EXPECT_FALSE(none.di.folded);
    const auto& crisp = cache.at(folded_pc, FoldPolicy::kCrisp);
    ASSERT_TRUE(crisp.valid);
    EXPECT_TRUE(crisp.di.folded);
    EXPECT_EQ(crisp.di.totalParcels, none.di.totalParcels + 1);
}

/** Every memoized entry equals a fresh maximal-window decode. */
TEST(PredecodeCache, AgreesWithFreshDecode)
{
    for (std::uint64_t s : {3u, 11u, 42u}) {
        const Program prog = generate(s).link();
        PredecodeCache cache(prog);
        for (FoldPolicy fp : {FoldPolicy::kNone, FoldPolicy::kCrisp,
                              FoldPolicy::kAll}) {
            const FoldDecoder dec(fp);
            Addr pc = prog.textBase;
            while (pc < prog.textEnd()) {
                const std::size_t idx =
                    (pc - prog.textBase) / kParcelBytes;
                const std::span<const Parcel> window(
                    prog.text.data() + idx, prog.text.size() - idx);
                const auto fresh = dec.decodeAt(pc, window, true);
                ASSERT_TRUE(fresh.has_value());
                const auto& cached = cache.at(pc, fp);
                ASSERT_TRUE(cached.valid);
                EXPECT_EQ(cached.di.toString(), fresh->toString());
                EXPECT_EQ(cached.di.totalParcels, fresh->totalParcels);
                EXPECT_EQ(cached.di.writesCc, fresh->writesCc);
                EXPECT_EQ(cached.di.predictTaken, fresh->predictTaken);
                pc += static_cast<Addr>(fresh->totalParcels) *
                      kParcelBytes;
            }
        }
    }
}

/** Misaligned or out-of-text queries are rejected, never table reads. */
TEST(PredecodeCache, RejectsBadAddresses)
{
    const Program prog = generate(1).link();
    PredecodeCache cache(prog);
    EXPECT_THROW(cache.at(prog.textBase + 1, FoldPolicy::kCrisp),
                 CrispError);
    EXPECT_THROW(cache.at(prog.textEnd(), FoldPolicy::kCrisp),
                 CrispError);
}

/** The queue ring has fixed storage; configs beyond it must be caught
 *  at construction, not corrupt memory later. */
TEST(PerfPaths, OversizedQueueRejected)
{
    const Program prog = generate(1).link();
    SimConfig cfg;
    cfg.queueParcels = 65;
    EXPECT_THROW(CrispCpu cpu(prog, cfg), CrispError);
    cfg.queueParcels = 0;
    EXPECT_THROW(CrispCpu cpu2(prog, cfg), CrispError);
}

// -------------------------------------------- MemoryImage::revert edges

/** revert() must reproduce load() bit-for-bit, not just "close enough".
 *  The dirty-line bookkeeping is what crispd's replay path (and every
 *  CrispCpu::reset) leans on, so these pin its corner cases. */

/** A 4-byte store only dirties part of a 64-byte line; revert must
 *  restore the whole line — including the line-straddling store whose
 *  first and last byte land in different lines. */
TEST(MemoryImageRevert, PartialAndStraddlingLineWrites)
{
    const Program prog = generate(3).link();
    MemoryImage img(prog);
    const MemoryImage pristine(prog);

    const Addr sp_top = prog.memBytes - 128;
    img.write32(sp_top + 20, 0xdeadbeef);  // interior of one line
    img.write32(sp_top + 62, 0xfeedface);  // straddles two lines
    img.write32(prog.dataBase, 0x12345678);  // dirties a data-segment line
    img.write32(prog.textBase, 0x0bad0bad);  // dirties a text-segment line

    img.revert(prog);
    EXPECT_EQ(img.bytes(), pristine.bytes());
}

/** revert on a clean image is a no-op, and revert-after-revert keeps
 *  producing the pristine image (the dirty set must actually clear). */
TEST(MemoryImageRevert, RevertAfterRevertIsIdempotent)
{
    const Program prog = generate(5).link();
    MemoryImage img(prog);
    const MemoryImage pristine(prog);

    img.revert(prog); // nothing dirty: must not disturb anything
    EXPECT_EQ(img.bytes(), pristine.bytes());

    img.write32(prog.dataBase + 8, 0xabadcafe);
    img.revert(prog);
    EXPECT_EQ(img.bytes(), pristine.bytes());
    img.revert(prog); // second revert sees a clean dirty set
    EXPECT_EQ(img.bytes(), pristine.bytes());
}

/** The last line of an image whose size is not a multiple of the line
 *  granule is shorter than 64 bytes; reverting a store there must stay
 *  in bounds (ASan-backed) and still restore exactly. */
TEST(MemoryImageRevert, OddSizedImageBoundaryLine)
{
    Program prog = generate(2).link();
    prog.memBytes = (prog.memBytes & ~Addr{63}) + 36; // ragged last line
    MemoryImage img(prog);
    const MemoryImage pristine(prog);

    img.write32(prog.memBytes - 4, 0x5a5a5a5a); // last writable word
    img.revert(prog);
    EXPECT_EQ(img.bytes(), pristine.bytes());
    EXPECT_THROW(img.write32(prog.memBytes - 3, 1), CrispError);
}

/** The word journal is an alternative undo log for small write sets;
 *  past kJournalCap writes revert falls back to the dirty-line bitmap.
 *  Both paths must reproduce load() bit-for-bit — sweep write counts
 *  across the cap so the same test drives journal-only reverts, the
 *  exact-cap edge, and forced-overflow bitmap reverts. */
TEST(MemoryImageRevert, JournalAndBitmapPathsAgreeAcrossTheCap)
{
    const Program prog = generate(7).link();
    const MemoryImage pristine(prog);
    const std::uint32_t counts[] = {1, MemoryImage::kJournalCap - 1,
                                    MemoryImage::kJournalCap,
                                    MemoryImage::kJournalCap + 1,
                                    3 * MemoryImage::kJournalCap};
    for (const std::uint32_t n : counts) {
        MemoryImage img(prog);
        for (std::uint32_t i = 0; i < n; ++i) {
            // Overlapping rewrites of a few addresses plus a moving
            // cursor: the journal must undo in LIFO order to get the
            // overlaps right.
            img.write32(prog.dataBase + (i % 5) * 4, 0xa0000000u + i);
            img.write32(prog.dataBase + 64 + (i % 97) * 4,
                        0xb0000000u + i);
        }
        EXPECT_EQ(img.journalOverflowed(),
                  2 * n > MemoryImage::kJournalCap)
            << n << " write pairs";
        img.revert(prog);
        EXPECT_EQ(img.bytes(), pristine.bytes()) << n << " write pairs";
        EXPECT_EQ(img.journalDepth(), 0u);
        EXPECT_FALSE(img.journalOverflowed());
    }
}

/** Revert-after-revert through the journal path: the journal must
 *  drain on the first revert, so the second sees an empty log (and an
 *  overflowed journal must not stay overflowed across reverts). */
TEST(MemoryImageRevert, JournalDrainsAcrossConsecutiveReverts)
{
    const Program prog = generate(11).link();
    const MemoryImage pristine(prog);
    MemoryImage img(prog);

    img.write32(prog.dataBase, 0x11111111);
    img.write32(prog.dataBase, 0x22222222); // same word twice: LIFO
    EXPECT_EQ(img.journalDepth(), 2u);
    img.revert(prog);
    EXPECT_EQ(img.bytes(), pristine.bytes());
    img.revert(prog); // empty journal: must stay pristine
    EXPECT_EQ(img.bytes(), pristine.bytes());

    // Overflow, revert (bitmap path), then a small write set again:
    // the next revert must be journal-served, not poisoned by the
    // earlier overflow.
    for (std::uint32_t i = 0; i <= MemoryImage::kJournalCap; ++i)
        img.write32(prog.dataBase + (i % 128) * 4, i);
    EXPECT_TRUE(img.journalOverflowed());
    img.revert(prog);
    EXPECT_EQ(img.bytes(), pristine.bytes());
    img.write32(prog.dataBase + 16, 0xcafef00d);
    EXPECT_FALSE(img.journalOverflowed());
    EXPECT_EQ(img.journalDepth(), 1u);
    img.revert(prog);
    EXPECT_EQ(img.bytes(), pristine.bytes());
}

/** A store into the text window must bump the fast engine's
 *  translation epoch on the reset that reverts it — exactly once: the
 *  following clean replay reverts nothing and must not bump again. */
TEST(MemoryImageRevert, TextDirtyResetBumpsTranslationEpochOnce)
{
    Program p;
    p.append(Instruction::mov(Operand::abs(kTextBase),
                              Operand::imm(0x7777)));
    p.append(Instruction::halt());

    FastEngine eng(p);
    EXPECT_EQ(eng.translationEpoch(), 1u);
    eng.run();
    eng.reset();
    EXPECT_EQ(eng.translationEpoch(), 2u);

    // The replay dirties text again: each dirty reset bumps once.
    eng.run();
    eng.reset();
    EXPECT_EQ(eng.translationEpoch(), 3u);

    // A clean program never bumps, however many replays run.
    Program clean;
    clean.append(Instruction::mov(Operand::accum(), Operand::imm(1)));
    clean.append(Instruction::halt());
    FastEngine keep(clean);
    for (int r = 0; r < 3; ++r) {
        keep.run();
        keep.reset();
        EXPECT_EQ(keep.translationEpoch(), 1u) << "replay " << r;
    }
}

/** The service replay pattern: dirty-write, revert, dirty-write the
 *  same run again — the image after each replay must equal a fresh
 *  image given the same writes, run after run. */
TEST(MemoryImageRevert, ReplayEqualsFreshLoadEveryRun)
{
    const Program prog = generate(9).link();
    MemoryImage reused(prog);
    for (int run = 0; run < 3; ++run) {
        if (run != 0)
            reused.revert(prog);
        MemoryImage fresh(prog);
        for (Addr a = prog.dataBase; a + 4 <= prog.dataBase + 96;
             a += 12) {
            reused.write32(a, 0x1000u + a);
            fresh.write32(a, 0x1000u + a);
        }
        const Addr stack = prog.memBytes - 128;
        reused.write32(stack, 0x77u);
        fresh.write32(stack, 0x77u);
        EXPECT_EQ(reused.bytes(), fresh.bytes()) << "run " << run;
    }
}

} // namespace
