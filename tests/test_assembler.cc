/**
 * @file
 * Assembler tests: syntax, directives, relaxation, errors.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "interp/interpreter.hh"

namespace crisp
{
namespace
{

TEST(Assembler, MnemonicsAndOperands)
{
    const Program p = assemble(R"(
        .entry start
        .global g 7
        .local x 0
        .local y 1
start:
        add x, y
        and3 x, 1
        cmp.= Accum, 0
        mov g, x
        sub sp[2], 3
        xor [x], y          ; indirect through slot 0
        enter 4
        leave 4
        return 0
        halt
    )");

    Addr pc = p.entry;
    auto next = [&] {
        const Instruction i = p.fetch(pc);
        pc += i.lengthBytes();
        return i;
    };
    EXPECT_EQ(next(), Instruction::alu(Opcode::kAdd, Operand::stack(0),
                                       Operand::stack(1)));
    EXPECT_EQ(next(), Instruction::alu(Opcode::kAnd3, Operand::stack(0),
                                       Operand::imm(1)));
    EXPECT_EQ(next(), Instruction::cmp(Opcode::kCmpEq, Operand::accum(),
                                       Operand::imm(0)));
    const Instruction mv = next();
    EXPECT_EQ(mv.op, Opcode::kMov);
    EXPECT_EQ(mv.dst.mode, AddrMode::kAbs);
    EXPECT_EQ(mv.dst.value, static_cast<std::int32_t>(kDataBase));
    EXPECT_EQ(next(), Instruction::alu(Opcode::kSub, Operand::stack(2),
                                       Operand::imm(3)));
    EXPECT_EQ(next(), Instruction::alu(Opcode::kXor, Operand::ind(0),
                                       Operand::stack(1)));
    EXPECT_EQ(next(), Instruction::enter(4));
    EXPECT_EQ(next(), Instruction::leave(4));
    EXPECT_EQ(next(), Instruction::ret(0));
    EXPECT_EQ(next().op, Opcode::kHalt);
}

TEST(Assembler, BranchPredictionSuffixes)
{
    const Program p = assemble(R"(
        .entry L
L:      iftjmpy L
        iftjmpn L
        iffjmpy L
        iffjmp L
        jmp L
    )");
    Addr pc = p.entry;
    auto next = [&] {
        const Instruction i = p.fetch(pc);
        pc += i.lengthBytes();
        return i;
    };
    Instruction i = next();
    EXPECT_EQ(i.op, Opcode::kIfTJmp);
    EXPECT_TRUE(i.predictTaken);
    i = next();
    EXPECT_EQ(i.op, Opcode::kIfTJmp);
    EXPECT_FALSE(i.predictTaken);
    i = next();
    EXPECT_EQ(i.op, Opcode::kIfFJmp);
    EXPECT_TRUE(i.predictTaken);
    i = next();
    EXPECT_EQ(i.op, Opcode::kIfFJmp);
    EXPECT_FALSE(i.predictTaken);
    EXPECT_EQ(next().op, Opcode::kJmp);
}

TEST(Assembler, ForwardAndBackwardLabels)
{
    const Program p = assemble(R"(
        .entry start
        .global out 0
start:
        jmp fwd
back:
        mov out, 2
        halt
fwd:
        jmp back
    )");
    Interpreter interp(p);
    interp.run();
    EXPECT_EQ(interp.wordAt("out"), 2);
}

TEST(Assembler, BranchRelaxationToLongForm)
{
    // Put > 1022 bytes of instructions between branch and target: the
    // branch must be relaxed to the three-parcel absolute form.
    std::string src = ".entry start\nstart:\n    jmp far\n";
    for (int i = 0; i < 600; ++i)
        src += "    nop\n"; // 600 * 2 = 1200 bytes
    src += "far:\n    halt\n";

    const Program p = assemble(src);
    const Instruction jmp = p.fetch(p.entry);
    EXPECT_EQ(jmp.op, Opcode::kJmp);
    EXPECT_EQ(jmp.bmode, BranchMode::kAbs);
    EXPECT_EQ(jmp.lengthParcels(), 3);

    Interpreter interp(p);
    const InterpResult r = interp.run();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.instructions, 2u); // jmp + halt, nops skipped
}

TEST(Assembler, ShortBranchKeptWhenInRange)
{
    const Program p = assemble(R"(
        .entry start
start:  jmp next
next:   halt
    )");
    EXPECT_EQ(p.fetch(p.entry).lengthParcels(), 1);
}

TEST(Assembler, IndirectAbsoluteBranch)
{
    const Program p = assemble(R"(
        .entry start
        .global vector 0
        .global out 0
start:
        jmp *vector
        mov out, 99         ; skipped when the vector points at target
target:
        mov out, 5
        halt
    )");
    Interpreter interp(p);
    // The vector is data: point it at `target` (case-statement style).
    interp.memory().write32(*p.lookup("vector"), *p.lookup("target"));
    interp.run();
    EXPECT_EQ(interp.wordAt("out"), 5);
}

TEST(Assembler, IndirectThroughStackBranch)
{
    const Program p = assemble(R"(
        .entry start
        .global vector 0
        .global out 0
start:
        enter 1
        mov sp[0], vector   ; copy the code address into the frame
        jmp *sp[0]
        mov out, 99         ; skipped
target:
        mov out, 7
        halt
    )");
    Interpreter interp(p);
    interp.memory().write32(*p.lookup("vector"), *p.lookup("target"));
    interp.run();
    EXPECT_EQ(interp.wordAt("out"), 7);
}

TEST(Assembler, Errors)
{
    EXPECT_THROW(assemble("bogus x, y\n"), CrispError);
    EXPECT_THROW(assemble("add x, y\n"), CrispError); // unknown idents
    EXPECT_THROW(assemble("jmp nowhere\n"), CrispError);
    EXPECT_THROW(assemble(".global 5bad\n"), CrispError);
    EXPECT_THROW(assemble(".global a\n.global a\n"), CrispError);
    EXPECT_THROW(assemble("add sp[0]\n"), CrispError); // missing operand
    EXPECT_THROW(assemble("mov 5, sp[0]\n"), CrispError); // imm dest
    EXPECT_THROW(assemble("enter -1\n"), CrispError);
    EXPECT_THROW(assemble(".entry nolabel\n"), CrispError);
}

TEST(Assembler, GlobalInitializers)
{
    const Program p = assemble(R"(
        .entry start
        .global a 42
        .global b -7
        .global c 0x1F
        .space arr 4
        .global d 1
start:  halt
    )");
    Interpreter interp(p);
    interp.run();
    EXPECT_EQ(interp.wordAt("a"), 42);
    EXPECT_EQ(interp.wordAt("b"), -7);
    EXPECT_EQ(interp.wordAt("c"), 0x1F);
    EXPECT_EQ(interp.wordAt("d"), 1);
    // Layout: arr occupies 4 words between c and d.
    EXPECT_EQ(*p.lookup("d") - *p.lookup("arr"), 16u);
}

TEST(Assembler, CommentsAndBlankLines)
{
    const Program p = assemble(R"(
        ; full-line comment
        # hash comment
        .entry start

start:  nop   ; trailing comment
        halt  # another
    )");
    EXPECT_EQ(p.staticInstructionCount(), 2);
}

TEST(Assembler, MultipleLabelsOneAddress)
{
    const Program p = assemble(R"(
        .entry start
start:
a: b:   halt
    )");
    EXPECT_EQ(*p.lookup("a"), *p.lookup("b"));
    EXPECT_EQ(*p.lookup("a"), p.entry);
}

TEST(AsmBuilder, ProgrammaticConstruction)
{
    AsmBuilder b;
    b.global("out", 0);
    b.entry("main");
    b.label("main");
    b.emit(Instruction::mov(b.globalOperand("out"), Operand::imm(3)));
    b.branch(Opcode::kJmp, "end");
    b.emit(Instruction::mov(b.globalOperand("out"), Operand::imm(9)));
    b.label("end");
    b.emit(Instruction::halt());
    const Program p = b.link();

    Interpreter interp(p);
    interp.run();
    EXPECT_EQ(interp.wordAt("out"), 3);
}

TEST(Assembler, DisassembleRoundTrips)
{
    const Program p = assemble(R"(
        .entry start
        .global g 0
start:
        mov g, 5
loop:   sub g, 1
        cmp.s> g, 0
        iftjmpy loop
        halt
    )");
    const std::string dis = p.disassemble();
    EXPECT_NE(dis.find("loop:"), std::string::npos);
    EXPECT_NE(dis.find("iftjmpy"), std::string::npos);
    EXPECT_NE(dis.find("cmp.s>"), std::string::npos);
    EXPECT_NE(dis.find("halt"), std::string::npos);
}

} // namespace
} // namespace crisp
