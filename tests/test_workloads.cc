/**
 * @file
 * Workload suite tests: every bundled workload compiles, terminates,
 * matches its C++ golden mirror on the interpreter, the pipeline and
 * the delayed-branch machine, and exhibits the branch statistics the
 * Table 1 reproduction depends on.
 */

#include <gtest/gtest.h>

#include "baseline/delayed.hh"
#include "cc/compiler.hh"
#include "interp/interpreter.hh"
#include "predict/predictors.hh"
#include "sim/cpu.hh"
#include "workloads/workloads.hh"

namespace crisp
{
namespace
{

class WorkloadGolden : public ::testing::TestWithParam<const char*>
{
};

TEST_P(WorkloadGolden, InterpreterMatchesMirror)
{
    const Workload& w = workload(GetParam());
    const auto r = cc::compile(w.source);
    Interpreter interp(r.program);
    const InterpResult res = interp.run(500'000'000);
    ASSERT_TRUE(res.halted);
    for (const auto& [sym, val] : w.expectedGlobals)
        EXPECT_EQ(interp.wordAt(sym), val) << sym;
    if (w.checkAccum) {
        EXPECT_EQ(interp.accum(), w.expectedAccum);
    }
}

TEST_P(WorkloadGolden, PipelineMatchesMirror)
{
    const Workload& w = workload(GetParam());
    const auto r = cc::compile(w.source);
    Interpreter interp(r.program);
    const InterpResult ri = interp.run(500'000'000);

    CrispCpu cpu(r.program);
    const SimStats& rs = cpu.run();
    ASSERT_TRUE(rs.halted);
    EXPECT_EQ(rs.apparent, ri.instructions);
    for (const auto& [sym, val] : w.expectedGlobals)
        EXPECT_EQ(cpu.wordAt(sym), val) << sym;
    if (w.checkAccum) {
        EXPECT_EQ(cpu.accum(), w.expectedAccum);
    }
    // Folding must be active and self-consistent.
    EXPECT_GT(rs.foldedBranches, 0u);
    EXPECT_EQ(rs.apparent - rs.issued, rs.foldedBranches);
}

TEST_P(WorkloadGolden, DelayedMachineMatchesMirror)
{
    const Workload& w = workload(GetParam());
    cc::CompileOptions opts;
    opts.delaySlots = true;
    const auto r = cc::compile(w.source, opts);
    DelayedBranchCpu cpu(r.program);
    const DelayedStats& s = cpu.run(1'000'000'000);
    ASSERT_TRUE(s.halted);
    for (const auto& [sym, val] : w.expectedGlobals)
        EXPECT_EQ(cpu.wordAt(sym), val) << sym;
    if (w.checkAccum) {
        EXPECT_EQ(cpu.accum(), w.expectedAccum);
    }
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadGolden,
                         ::testing::Values("fig3", "troff", "ccomp",
                                           "drc", "dhry", "cwhet",
                                           "puzzle", "sieve", "sort",
                                           "matmul", "crc8", "quant",
                                           "lex", "vmtrace",
                                           "vmmode"));

TEST(Workloads, RegistryIsComplete)
{
    EXPECT_EQ(allWorkloads().size(), 15u);
    EXPECT_THROW(workload("nonesuch"), CrispError);
    for (const Workload& w : allWorkloads()) {
        EXPECT_FALSE(w.description.empty());
        EXPECT_FALSE(w.source.empty());
    }
}

TEST(Workloads, Fig3ParameterizedTripCount)
{
    for (int loops : {1, 2, 64, 1024}) {
        const auto r = cc::compile(fig3Source(loops));
        Interpreter interp(r.program);
        ASSERT_TRUE(interp.run(200'000'000).halted) << loops;
        EXPECT_EQ(interp.accum(), fig3Expected(loops)) << loops;
    }
}

TEST(Workloads, Fig3MatchesPaperInstructionMix)
{
    // The paper's Table 2 proportions: add 31.55%, if-jump 21.04%,
    // cmp 21.04%, and 10.52%, jump 5.27%.
    const auto r = cc::compile(fig3Source(1024));
    Interpreter interp(r.program);
    const InterpResult res = interp.run();

    EXPECT_EQ(res.count(Opcode::kAdd), 3072u);
    EXPECT_EQ(res.count(Opcode::kIfTJmp) + res.count(Opcode::kIfFJmp),
              2048u);
    EXPECT_EQ(res.count(Opcode::kAnd3) + res.count(Opcode::kAnd), 1024u);
    EXPECT_EQ(res.count(Opcode::kJmp), 512u);
    EXPECT_EQ(res.count(Opcode::kCmpEq) + res.count(Opcode::kCmpLt),
              2048u);
    // Total within a few instructions of the paper's 9,734.
    EXPECT_NEAR(static_cast<double>(res.instructions), 9734.0, 8.0);
}

TEST(Workloads, Fig3CaseDReachesPaperSpeedup)
{
    // The headline claim: full CRISP (fold+predict+spread) is ~2.0x the
    // naive configuration, with apparent CPI ~0.74.
    const std::string src = fig3Source(1024);

    cc::CompileOptions naive;
    naive.spread = false;
    naive.predict = cc::PredictMode::kAllNotTaken;
    SimConfig nofold;
    nofold.foldPolicy = FoldPolicy::kNone;
    CrispCpu a(cc::compile(src, naive).program, nofold);
    const std::uint64_t base = a.run().cycles;

    cc::CompileOptions full;
    CrispCpu d(cc::compile(src, full).program);
    const SimStats& sd = d.run();

    const double speedup =
        static_cast<double>(base) / static_cast<double>(sd.cycles);
    EXPECT_NEAR(speedup, 2.0, 0.06);
    EXPECT_NEAR(sd.apparentCpi(), 0.74, 0.01);
    EXPECT_NEAR(sd.issuedCpi(), 1.01, 0.01);
}

TEST(Workloads, Table1ShapesHold)
{
    // The qualitative Table 1 claims, as measurable properties:
    //  (a) on the three "benchmark" programs static >= 1-bit dynamic;
    //  (b) on the three "large" proxies, dynamic is not dramatically
    //      better than static (within a few points).
    for (const char* name : {"dhry", "cwhet", "puzzle"}) {
        const Workload& w = workload(name);
        const auto r = cc::compile(w.source);
        Interpreter interp(r.program);
        BranchTraceRecorder rec;
        interp.run(500'000'000, &rec);
        const double st = evaluateStaticOracle(rec.events).rate();
        CounterPredictor p1(1);
        const double d1 = evaluateDirection(rec.events, p1).rate();
        EXPECT_GT(st, d1) << name;
    }
    for (const char* name : {"troff", "ccomp", "drc"}) {
        const Workload& w = workload(name);
        const auto r = cc::compile(w.source);
        Interpreter interp(r.program);
        BranchTraceRecorder rec;
        interp.run(500'000'000, &rec);
        const double st = evaluateStaticOracle(rec.events).rate();
        CounterPredictor p2(2);
        const double d2 = evaluateDirection(rec.events, p2).rate();
        EXPECT_LT(d2 - st, 0.08) << name;
    }
}

TEST(Workloads, ShortBranchFormatDominates)
{
    // "around 95% of the branches executed are encoded in the one
    // parcel instruction format"
    std::uint64_t branches = 0;
    std::uint64_t short_form = 0;
    for (const Workload& w : allWorkloads()) {
        const auto r = cc::compile(w.source);
        Interpreter interp(r.program);
        const InterpResult res = interp.run(500'000'000);
        branches += res.branches;
        short_form += res.shortBranches;
    }
    EXPECT_GT(static_cast<double>(short_form) /
                  static_cast<double>(branches),
              0.85);
}

} // namespace
} // namespace crisp
