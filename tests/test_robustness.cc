/**
 * @file
 * Robustness and deep-pipeline corner cases: assembler/compiler fuzz
 * (malformed input must raise CrispError, never crash), back-to-back
 * speculation, folded branches on frame instructions, and the
 * two-level predictor.
 */

#include <gtest/gtest.h>

#include <random>

#include "asm/assembler.hh"
#include "cc/compiler.hh"
#include "interp/interpreter.hh"
#include "isa/objfile.hh"
#include "predict/predictors.hh"
#include "sim/cpu.hh"

namespace crisp
{
namespace
{

// ------------------------------------------------------------- fuzzing

class AsmFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(AsmFuzz, MalformedInputNeverCrashes)
{
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    const std::string alphabet =
        "abcdefghijklmnopqrstuvwxyz0123456789 \t\n.,:;[]()*#@-+$";
    const char* fragments[] = {
        "add ",     "sp[",      "jmp ",    ".global ", "cmp.s< ",
        "iftjmpy ", ".entry ",  "Accum",   "halt\n",   ".local ",
        "enter ",   "mov ",     "label:",  "*sp[0]",   "0x",
    };

    for (int iter = 0; iter < 200; ++iter) {
        std::string src;
        const int pieces =
            std::uniform_int_distribution<int>(1, 20)(rng);
        for (int p = 0; p < pieces; ++p) {
            if (std::uniform_int_distribution<int>(0, 1)(rng)) {
                src += fragments[std::uniform_int_distribution<int>(
                    0, 14)(rng)];
            } else {
                const int len =
                    std::uniform_int_distribution<int>(1, 8)(rng);
                for (int c = 0; c < len; ++c) {
                    src += alphabet[std::uniform_int_distribution<
                        std::size_t>(0, alphabet.size() - 1)(rng)];
                }
            }
        }
        try {
            const Program p = assemble(src);
            // If it assembled, it must at least disassemble cleanly.
            (void)p.disassemble();
        } catch (const CrispError&) {
            // expected for garbage
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsmFuzz, ::testing::Range(0, 4));

class CcFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(CcFuzz, MalformedSourceNeverCrashes)
{
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    const char* fragments[] = {
        "int ",   "main",  "() {",   "}",     "return ", ";",
        "if (",   ")",     "for (",  "while", "a",       "= 5",
        "+",      "(",     "[3]",    "{",     "switch",  "case 1:",
        "?",      ":",     "&&",     "++",    "break;",  "/* x */",
    };
    for (int iter = 0; iter < 200; ++iter) {
        std::string src;
        const int pieces =
            std::uniform_int_distribution<int>(1, 30)(rng);
        for (int p = 0; p < pieces; ++p) {
            src += fragments[std::uniform_int_distribution<int>(0, 23)(
                rng)];
            src += " ";
        }
        try {
            (void)cc::compile(src);
        } catch (const CrispError&) {
            // expected
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CcFuzz, ::testing::Range(0, 4));

class ObjFuzz : public ::testing::TestWithParam<int>
{
  protected:
    /** A real object image to mutate. */
    static std::vector<std::uint8_t>
    goodObject()
    {
        const char* src = R"(
            .entry s
            .global a 7
s:          enter 1
            mov a, 3
            halt
        )";
        return saveObject(assemble(src));
    }

    /** Loading must yield a Program or a CrispError — nothing else. */
    static void
    mustNotCrash(const std::vector<std::uint8_t>& bytes)
    {
        try {
            const Program p = loadObject(bytes);
            // A program that loaded must also be safe to run: the
            // interpreter may fault with CrispError but not crash.
            Interpreter interp(p);
            interp.run(10'000);
        } catch (const CrispError&) {
            // expected for corrupt input
        }
    }
};

TEST_P(ObjFuzz, TruncatedObjectNeverCrashes)
{
    const auto good = goodObject();
    // Every prefix, including the empty file.
    for (std::size_t n = 0; n <= good.size(); ++n) {
        mustNotCrash({good.begin(),
                      good.begin() + static_cast<std::ptrdiff_t>(n)});
    }
}

TEST_P(ObjFuzz, BitFlippedObjectNeverCrashes)
{
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919u + 17u);
    const auto good = goodObject();
    for (int iter = 0; iter < 300; ++iter) {
        auto bytes = good;
        const int flips =
            std::uniform_int_distribution<int>(1, 8)(rng);
        for (int f = 0; f < flips; ++f) {
            const auto at = std::uniform_int_distribution<std::size_t>(
                0, bytes.size() - 1)(rng);
            bytes[at] ^= static_cast<std::uint8_t>(
                1u << std::uniform_int_distribution<int>(0, 7)(rng));
        }
        mustNotCrash(bytes);
    }
}

TEST_P(ObjFuzz, RandomGarbageNeverCrashes)
{
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 104729u + 3u);
    for (int iter = 0; iter < 200; ++iter) {
        std::vector<std::uint8_t> bytes(
            std::uniform_int_distribution<std::size_t>(0, 256)(rng));
        for (auto& b : bytes) {
            b = static_cast<std::uint8_t>(
                std::uniform_int_distribution<int>(0, 255)(rng));
        }
        // Half the time, make it look like a CRISP object so the
        // header parser gets past the magic check.
        if (bytes.size() >= 4 &&
            std::uniform_int_distribution<int>(0, 1)(rng)) {
            bytes[0] = 'C';
            bytes[1] = 'R';
            bytes[2] = 'S';
            bytes[3] = 'P';
        }
        mustNotCrash(bytes);
    }
}

TEST(ObjHardening, OversizedDeclaredSectionsRejected)
{
    // A 36-byte header claiming a huge text section must be rejected
    // up front, not tail-recursed into a multi-gigabyte reserve.
    std::vector<std::uint8_t> bytes = {'C', 'R', 'S', 'P'};
    const auto put32 = [&bytes](std::uint32_t v) {
        bytes.push_back(static_cast<std::uint8_t>(v));
        bytes.push_back(static_cast<std::uint8_t>(v >> 8));
        bytes.push_back(static_cast<std::uint8_t>(v >> 16));
        bytes.push_back(static_cast<std::uint8_t>(v >> 24));
    };
    put32(1);          // version
    put32(kTextBase);  // textBase
    put32(kTextBase);  // entry
    put32(kDataBase);  // dataBase
    put32(kDefaultMemBytes);
    put32(0xFFFFFFFFu); // textLen: absurd
    put32(0);           // dataLen
    put32(0);           // symCount
    EXPECT_THROW(loadObject(bytes), CrispError);
}

TEST(ObjHardening, UnreasonableMemBytesRejected)
{
    Program p = assemble(".entry s\ns: halt\n");
    auto bytes = saveObject(p);
    // memBytes field lives at offset 4+4+4+4+4 = 20.
    bytes[20] = 0xFF;
    bytes[21] = 0xFF;
    bytes[22] = 0xFF;
    bytes[23] = 0xFF;
    EXPECT_THROW(loadObject(bytes), CrispError);
}

TEST(ObjHardening, BadSymbolKindRejected)
{
    Program p = assemble(".entry s\n.global g 1\ns: halt\n");
    const auto good = saveObject(p);
    ASSERT_FALSE(p.symbols.empty());
    // The first symbol record starts right after text+data.
    const std::size_t sym_at =
        36 + 2 * p.text.size() + p.data.size();
    ASSERT_LT(sym_at, good.size());
    auto bytes = good;
    bytes[sym_at] = 0x7F; // not a valid Symbol::Kind
    EXPECT_THROW(loadObject(bytes), CrispError);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObjFuzz, ::testing::Range(0, 4));

// ----------------------------------------------- deep pipeline corners

TEST(PipelineCorner, BackToBackSpeculativeBranches)
{
    // Two folded conditional branches in consecutive issue slots, both
    // speculative; the older's verification must not corrupt the
    // younger's.
    const char* src = R"(
        .entry s
        .global a 0
        .global b 0
        .local i 0
s:      enter 1
        mov i, 0
top:    add i, 1
        cmp.s< i, 200
        iftjmpn exit         ; wrong bit: mispredicts every iteration
exit2:  cmp.s> i, 100
        iftjmpn top          ; wrong bit for i>100... and correct before
        jmp top
exit:   halt
    )";
    const Program p = assemble(src);
    Interpreter interp(p);
    const InterpResult ri = interp.run(1'000'000);
    ASSERT_TRUE(ri.halted);

    CrispCpu cpu(p);
    const SimStats& s = cpu.run();
    ASSERT_TRUE(s.halted);
    EXPECT_EQ(s.apparent, ri.instructions);
}

TEST(PipelineCorner, FoldIntoEnterAndLeave)
{
    // enter/leave are foldable carriers; a branch folded into an SP
    // adjustment must still sequence architectural state correctly.
    const char* src = R"(
        .entry s
        .global r 0
s:      enter 4
        jmp next            ; folds into enter
next:   mov sp[0], 7
        leave 4
        jmp fin             ; folds into leave
fin:    mov r, 1
        halt
    )";
    const Program p = assemble(src);
    CrispCpu cpu(p);
    const SimStats& s = cpu.run();
    EXPECT_TRUE(s.halted);
    EXPECT_GE(s.foldedBranches, 2u);
    EXPECT_EQ(cpu.wordAt("r"), 1);
    EXPECT_EQ(cpu.sp(), (kDefaultMemBytes - kWordBytes) &
                            ~(kWordBytes - 1));
}

TEST(PipelineCorner, BranchIntoMiddleOfFoldedPair)
{
    // A branch targeting the folded-away branch itself: the DIC holds
    // a separate lone entry for that address.
    const char* src = R"(
        .entry s
        .global r 0
        .local i 0
s:      enter 1
        mov i, 0
top:    mov r, i            ; carrier: jmp join folds into this
mid:    jmp join            ; also a direct branch target
join:   add i, 1
        cmp.s< i, 10
        iftjmpy mid         ; jumps INTO the folded pair's branch half
        halt
    )";
    const Program p = assemble(src);
    Interpreter interp(p);
    ASSERT_TRUE(interp.run(1'000'000).halted);

    CrispCpu cpu(p);
    const SimStats& s = cpu.run();
    ASSERT_TRUE(s.halted);
    EXPECT_EQ(cpu.wordAt("r"), interp.wordAt("r"));
    EXPECT_EQ(s.apparent, interp.result().instructions);
}

TEST(PipelineCorner, ConditionalAtFunctionTailThenReturn)
{
    const char* src = R"(
        int abs(int x) {
            if (x < 0)
                return -x;
            return x;
        }
        int main() {
            int s = 0;
            for (int i = -5; i < 5; i++)
                s += abs(i);
            return s;
        }
    )";
    const auto r = cc::compile(src);
    CrispCpu cpu(r.program);
    cpu.run();
    EXPECT_EQ(cpu.accum(), 25);
}

TEST(PipelineCorner, TinyDicStillCorrectUnderMisprediction)
{
    // 1-entry DIC: every issue is essentially a miss; mispredict
    // recovery paths must still be architecturally exact.
    const char* src = R"(
        int main() {
            int a = 0;
            for (int i = 0; i < 30; i++)
                if (i & 1) a += i;
            return a;
        }
    )";
    const auto r = cc::compile(src);
    SimConfig cfg;
    cfg.dicEntries = 1;
    CrispCpu cpu(r.program, cfg);
    const SimStats& s = cpu.run();
    ASSERT_TRUE(s.halted);
    EXPECT_EQ(cpu.accum(), 1 + 3 + 5 + 7 + 9 + 11 + 13 + 15 + 17 + 19 +
                               21 + 23 + 25 + 27 + 29);
    EXPECT_GT(s.dicMissStallCycles, s.cycles / 3);
}

// ------------------------------------------------- two-level predictor

TEST(TwoLevel, LearnsAlternationPerfectly)
{
    TwoLevelPredictor p(4);
    const auto acc = alternatingAccuracy(p, 2000);
    // After a short warmup the pattern table locks in.
    EXPECT_GT(acc.rate(), 0.98);
}

TEST(TwoLevel, LearnsShortPeriodicPatterns)
{
    TwoLevelPredictor p(6);
    PredictionAccuracy acc;
    BranchEvent ev;
    ev.pc = 0x100;
    ev.conditional = true;
    const std::string pattern = "TTFTF"; // period 5
    for (int i = 0; i < 3000; ++i) {
        ev.taken = pattern[static_cast<std::size_t>(i) %
                           pattern.size()] == 'T';
        ++acc.total;
        if (p.predict(ev) == ev.taken)
            ++acc.correct;
        p.update(ev);
    }
    EXPECT_GT(acc.rate(), 0.95);
}

TEST(TwoLevel, RejectsBadHistoryWidth)
{
    EXPECT_THROW(TwoLevelPredictor(0), CrispError);
    EXPECT_THROW(TwoLevelPredictor(13), CrispError);
}

} // namespace
} // namespace crisp
