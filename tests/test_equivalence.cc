/**
 * @file
 * Property tests: for random programs, every machine configuration
 * must produce the same architectural behaviour.
 *
 *  - The pipelined CRISP simulator's retire-order event stream equals
 *    the functional interpreter's execution stream, for every fold
 *    policy, DIC size and memory latency. Branch Folding, prediction
 *    and squash/recovery must be architecturally invisible.
 *  - Branch Spreading preserves program semantics (same final state as
 *    the unspread compile).
 *  - Delay-slot compilation + the delayed-branch machine compute the
 *    same results as CRISP.
 */

#include <gtest/gtest.h>

#include "baseline/delayed.hh"
#include "cc/compiler.hh"
#include "interp/interpreter.hh"
#include "sim/cpu.hh"
#include "support/random_program.hh"

namespace crisp
{
namespace
{

struct EventRecorder : ExecObserver
{
    std::vector<std::pair<Addr, Opcode>> seq;
    std::vector<BranchEvent> branches;

    void
    onInstruction(Addr pc, Opcode op) override
    {
        seq.emplace_back(pc, op);
    }

    void onBranch(const BranchEvent& ev) override { branches.push_back(ev); }
};

constexpr std::uint64_t kStepLimit = 3'000'000;

/** Full architectural comparison of interpreter and pipeline. */
void
expectPipelineMatchesInterp(const Program& prog, const SimConfig& cfg)
{
    Interpreter interp(prog);
    EventRecorder ei;
    const InterpResult ri = interp.run(kStepLimit, &ei);
    ASSERT_TRUE(ri.halted) << "program did not terminate";

    CrispCpu cpu(prog, cfg);
    EventRecorder es;
    const SimStats& rs = cpu.run(&es);
    ASSERT_TRUE(rs.halted);

    // Retire-order event stream identical, instruction for instruction.
    ASSERT_EQ(ei.seq.size(), es.seq.size());
    for (std::size_t i = 0; i < ei.seq.size(); ++i) {
        ASSERT_EQ(ei.seq[i], es.seq[i]) << "divergence at instruction "
                                        << i;
    }

    // Branch events identical (pc, direction, target).
    ASSERT_EQ(ei.branches.size(), es.branches.size());
    for (std::size_t i = 0; i < ei.branches.size(); ++i) {
        EXPECT_EQ(ei.branches[i].pc, es.branches[i].pc);
        EXPECT_EQ(ei.branches[i].taken, es.branches[i].taken);
        EXPECT_EQ(ei.branches[i].target, es.branches[i].target);
    }

    // Final architectural state identical.
    EXPECT_EQ(rs.apparent, ri.instructions);
    EXPECT_EQ(cpu.accum(), interp.accum());
    EXPECT_EQ(cpu.flag(), interp.flag());
    EXPECT_EQ(cpu.sp(), interp.sp());
    EXPECT_EQ(cpu.memory().bytes(), interp.memory().bytes());

    // Folding bookkeeping is self-consistent.
    EXPECT_EQ(rs.apparent - rs.issued, rs.foldedBranches);
    for (int i = 0; i < kOpcodeCount; ++i)
        EXPECT_EQ(rs.opcodeCounts[i], ri.opcodeCounts[i]);
}

/** Issued-instruction monotonicity across fold policies. */
void
expectFoldMonotonicity(const Program& prog)
{
    std::uint64_t issued[3];
    int i = 0;
    for (FoldPolicy fold : {FoldPolicy::kNone, FoldPolicy::kCrisp,
                            FoldPolicy::kAll}) {
        SimConfig cfg;
        cfg.foldPolicy = fold;
        CrispCpu cpu(prog, cfg);
        issued[i++] = cpu.run().issued;
    }
    EXPECT_GE(issued[0], issued[1]); // kCrisp folds a subset away
    EXPECT_GE(issued[1], issued[2]); // kAll folds at least as much
}

class RandomEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomEquivalence, PipelineMatchesInterpreterAcrossConfigs)
{
    const std::string src =
        testing::randomProgram(static_cast<std::uint32_t>(GetParam()));
    SCOPED_TRACE(src);

    for (bool spread : {false, true}) {
        cc::CompileOptions opts;
        opts.spread = spread;
        const auto r = cc::compile(src, opts);

        for (FoldPolicy fold : {FoldPolicy::kNone, FoldPolicy::kCrisp,
                                FoldPolicy::kAll}) {
            SimConfig cfg;
            cfg.foldPolicy = fold;
            expectPipelineMatchesInterp(r.program, cfg);
        }
        expectFoldMonotonicity(r.program);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEquivalence,
                         ::testing::Range(0, 40));

class RandomConfigSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomConfigSweep, CacheAndLatencyAreInvisible)
{
    const std::string src =
        testing::randomProgram(1000u + static_cast<std::uint32_t>(
                                           GetParam()));
    SCOPED_TRACE(src);
    const auto r = cc::compile(src);

    for (int dic : {8, 32, 128}) {
        for (int lat : {1, 7}) {
            SimConfig cfg;
            cfg.dicEntries = dic;
            cfg.memLatency = lat;
            expectPipelineMatchesInterp(r.program, cfg);
        }
    }
    // Dynamic hardware predictors change timing only.
    for (PredictorKind k :
         {PredictorKind::kDynamic1, PredictorKind::kDynamic2}) {
        SimConfig cfg;
        cfg.predictor = k;
        cfg.predictorEntries = 64;
        expectPipelineMatchesInterp(r.program, cfg);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConfigSweep,
                         ::testing::Range(0, 12));

class SpreadingPreservesSemantics : public ::testing::TestWithParam<int>
{
};

TEST_P(SpreadingPreservesSemantics, SameFinalState)
{
    const std::string src = testing::randomProgram(
        2000u + static_cast<std::uint32_t>(GetParam()));
    SCOPED_TRACE(src);

    cc::CompileOptions a;
    a.spread = false;
    cc::CompileOptions b;
    b.spread = true;

    Interpreter ia(cc::compile(src, a).program);
    Interpreter ib(cc::compile(src, b).program);
    ASSERT_TRUE(ia.run(kStepLimit).halted);
    ASSERT_TRUE(ib.run(kStepLimit).halted);

    // Spreading reorders code but must not change results.
    EXPECT_EQ(ia.accum(), ib.accum());
    // Every named global must match. (Raw data-segment bytes cannot be
    // compared: switch jump tables hold code addresses, which differ
    // between layouts.)
    for (const auto& [name, sym] :
         cc::compile(src, a).program.symbols) {
        if (sym.kind != Symbol::Kind::kGlobal ||
            name.find("_jumptab_") != std::string::npos) {
            continue;
        }
        ASSERT_EQ(ia.wordAt(name), ib.wordAt(name)) << name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpreadingPreservesSemantics,
                         ::testing::Range(0, 40));

class DelayedMachineAgrees : public ::testing::TestWithParam<int>
{
};

TEST_P(DelayedMachineAgrees, SameResultsAsCrisp)
{
    const std::string src = testing::randomProgram(
        3000u + static_cast<std::uint32_t>(GetParam()));
    SCOPED_TRACE(src);

    const auto crisp_prog = cc::compile(src);
    Interpreter interp(crisp_prog.program);
    ASSERT_TRUE(interp.run(kStepLimit).halted);

    cc::CompileOptions del;
    del.delaySlots = true;
    const auto delayed_prog = cc::compile(src, del);
    DelayedBranchCpu cpu(delayed_prog.program);
    const DelayedStats& s = cpu.run(kStepLimit);
    ASSERT_TRUE(s.halted);

    EXPECT_EQ(cpu.accum(), interp.accum());
    // Every named global must agree (raw bytes cannot be compared: the
    // delay-slot layout shifts the code addresses inside jump tables).
    for (const auto& [name, sym] : crisp_prog.program.symbols) {
        if (sym.kind != Symbol::Kind::kGlobal ||
            name.find("_jumptab_") != std::string::npos) {
            continue;
        }
        ASSERT_EQ(interp.wordAt(name), cpu.wordAt(name)) << name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DelayedMachineAgrees,
                         ::testing::Range(0, 30));

} // namespace
} // namespace crisp
