/**
 * @file
 * Tests for the abstract-interpretation branch-cost engine
 * (src/analysis/absint + cost): constant-branch proofs and their
 * diagnostics, the per-site delay bounds and their corner cases
 * (indirect jumps, loop-head widening, CC definedness across calls),
 * the SARIF serializer, the crossCheck cost oracle (invariant 7) with
 * tamper detection, and the dynamic sweeps that pin the bounds under
 * every predictor configuration.
 */

#include <gtest/gtest.h>

#include "analysis/ccverify.hh"
#include "analysis/checks.hh"
#include "analysis/oracle.hh"
#include "asm/assembler.hh"
#include "cc/compiler.hh"
#include "sim/cpu.hh"
#include "verify/generator.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace crisp;
using namespace crisp::analysis;

bool
hasRule(const AnalysisResult& r, const std::string& rule)
{
    for (const Diagnostic& d : r.diags) {
        if (d.rule == rule)
            return true;
    }
    return false;
}

/** Constant compare (s0 is provably 3), fully spread, branch taken. */
Program
constantBranchProgram(bool predict_taken)
{
    AsmBuilder b;
    b.label("main");
    b.emit(Instruction::enter(2));
    b.emit(Instruction::mov(Operand::stack(0), Operand::imm(3)));
    b.emit(Instruction::cmp(Opcode::kCmpEq, Operand::stack(0),
                            Operand::imm(3)));
    b.emit(Instruction::alu(Opcode::kAdd, Operand::stack(1),
                            Operand::imm(1)));
    b.emit(Instruction::alu(Opcode::kAdd, Operand::stack(1),
                            Operand::imm(2)));
    b.emit(Instruction::alu(Opcode::kAdd, Operand::stack(1),
                            Operand::imm(3)));
    b.branch(Opcode::kIfTJmp, "done", predict_taken);
    b.emit(Instruction::alu(Opcode::kAdd, Operand::stack(1),
                            Operand::imm(4)));
    b.label("done");
    b.emit(Instruction::halt());
    b.entry("main");
    return b.link();
}

const SiteCost&
onlyCondSite(const AnalysisResult& r)
{
    for (const auto& [pc, c] : r.cost.sites) {
        if (c.conditional)
            return c;
    }
    throw CrispError("no conditional cost site");
}

TEST(CostBound, ConstantSpreadBranchIsProvablyFree)
{
    const AnalysisResult r =
        analyzeProgram(constantBranchProgram(true), {});
    const SiteCost& c = onlyCondSite(r);
    EXPECT_TRUE(c.constantDirection);
    EXPECT_TRUE(c.alwaysTaken);
    EXPECT_EQ(c.bound.lo, 0);
    EXPECT_EQ(c.bound.hi, 0);
    EXPECT_GE(c.minSpreadSlots, 3);
    EXPECT_TRUE(hasRule(r, "cost.constant-cc")) << r.toString();
    EXPECT_TRUE(r.absint.converged);
    // The not-taken fall-through path dies once the branch is pruned.
    EXPECT_TRUE(hasRule(r, "cost.dead-branch")) << r.toString();
}

TEST(CostBound, ConstantUnspreadBranchRefinesOnCorrectPrediction)
{
    // Adjacent compare/branch (no spread), condition provably true.
    // With the prediction bit agreeing, the static-bit machine never
    // mispredicts, so the bound still collapses; with the bit fighting
    // the constant it stays at the speculation worst case.
    auto build = [](bool predict_taken) {
        AsmBuilder b;
        b.label("main");
        b.emit(Instruction::enter(2));
        b.emit(Instruction::mov(Operand::stack(0), Operand::imm(3)));
        b.emit(Instruction::cmp(Opcode::kCmpEq, Operand::stack(0),
                                Operand::imm(3)));
        b.branch(Opcode::kIfTJmp, "done", predict_taken);
        b.emit(Instruction::alu(Opcode::kAdd, Operand::stack(1),
                                Operand::imm(4)));
        b.label("done");
        b.emit(Instruction::halt());
        b.entry("main");
        return b.link();
    };

    const AnalysisResult agree = analyzeProgram(build(true), {});
    const SiteCost& ca = onlyCondSite(agree);
    EXPECT_TRUE(ca.constantDirection);
    EXPECT_TRUE(ca.predictionProvablyCorrect);
    EXPECT_EQ(ca.bound.hi, 0);

    const AnalysisResult fight = analyzeProgram(build(false), {});
    const SiteCost& cf = onlyCondSite(fight);
    EXPECT_TRUE(cf.constantDirection);
    EXPECT_FALSE(cf.predictionProvablyCorrect);
    EXPECT_GT(cf.bound.hi, 0);

    // And the machine agrees with both verdicts.
    for (const Program& p : {build(true), build(false)}) {
        const OracleReport o = runStaticOracle(p, SimConfig{});
        EXPECT_TRUE(o.applicable);
        EXPECT_TRUE(o.ok()) << o.toString();
    }
}

TEST(CostBound, IndirectJumpCostsExactlyTwoCycles)
{
    const char* src = R"(
        int main() {
            int i; int s;
            s = 0;
            for (i = 0; i < 12; i = i + 1) {
                switch (i - (i / 4) * 4) {
                    case 0: s = s + 1; break;
                    case 1: s = s + 2; break;
                    case 2: s = s + 3; break;
                    default: s = s + 5; break;
                }
            }
            return s;
        }
    )";
    const cc::CompileResult res = cc::compile(src, {});
    const AnalysisResult r = analyzeProgram(res.program, {});
    int indirect = 0;
    for (const auto& [pc, c] : r.cost.sites) {
        if (!c.indirect)
            continue;
        ++indirect;
        EXPECT_EQ(c.bound.lo, 2);
        EXPECT_EQ(c.bound.hi, 2);
    }
    EXPECT_GE(indirect, 1);

    const OracleReport o = runStaticOracle(res.program, SimConfig{});
    EXPECT_TRUE(o.applicable);
    EXPECT_TRUE(o.ok()) << o.toString();
}

TEST(CostBound, LoopHeadWideningTerminatesWithoutFalseConstancy)
{
    // The induction variable joins a new value every iteration; the
    // interval must widen (not iterate 100 times), converge, and the
    // loop compare must not be proven constant in either direction.
    const char* src =
        "int main() { int i; int s; s = 0; "
        "for (i = 0; i < 100; i = i + 1) { s = s + i; } return s; }";
    const cc::CompileResult res = cc::compile(src, {});
    const AnalysisResult r = analyzeProgram(res.program, {});
    EXPECT_TRUE(r.absint.converged);
    EXPECT_GT(r.absint.widenings, 0);
    for (const auto& [pc, c] : r.cost.sites) {
        if (c.conditional) {
            EXPECT_FALSE(c.constantDirection)
                << "pc 0x" << std::hex << pc;
        }
    }
    const OracleReport o = runStaticOracle(res.program, SimConfig{});
    EXPECT_TRUE(o.applicable);
    EXPECT_TRUE(o.ok()) << o.toString();
}

TEST(CostBound, CallHavocsConditionFlagDefinedness)
{
    // The compare is provably true before the call, but the callee may
    // leave anything in the flag, so the branch after the return must
    // not be proven constant.
    AsmBuilder b;
    b.label("main");
    b.emit(Instruction::enter(2));
    b.emit(Instruction::mov(Operand::stack(0), Operand::imm(3)));
    b.emit(Instruction::cmp(Opcode::kCmpEq, Operand::stack(0),
                            Operand::imm(3)));
    b.branch(Opcode::kCall, "f");
    b.emit(Instruction::alu(Opcode::kAdd, Operand::stack(1),
                            Operand::imm(1)));
    b.emit(Instruction::alu(Opcode::kAdd, Operand::stack(1),
                            Operand::imm(2)));
    b.branch(Opcode::kIfTJmp, "done", /*predict_taken=*/true);
    b.emit(Instruction::alu(Opcode::kAdd, Operand::stack(1),
                            Operand::imm(4)));
    b.label("done");
    b.emit(Instruction::halt());
    b.label("f");
    b.emit(Instruction::ret(0));
    b.entry("main");
    const Program p = b.link();

    AnalysisOptions opt;
    opt.predict = PredictConvention::kNone;
    const AnalysisResult r = analyzeProgram(p, opt);
    const SiteCost& c = onlyCondSite(r);
    EXPECT_FALSE(c.constantDirection);
    EXPECT_FALSE(hasRule(r, "cost.constant-cc")) << r.toString();
}

TEST(CostBound, CostTableTextListsEverySite)
{
    const AnalysisResult r =
        analyzeProgram(constantBranchProgram(true), {});
    const std::string t = r.costTableText();
    EXPECT_NE(t.find("static per-site delay bounds"), std::string::npos);
    EXPECT_NE(t.find("free"), std::string::npos);
    EXPECT_NE(t.find("always-taken"), std::string::npos);
}

TEST(Sarif, WarningAndNoteLevelsRoundTrip)
{
    // Adjacent compare/branch trips spread.short (warning); the
    // constant compare feeding it is a cost note. Both must appear
    // with SARIF levels and the input URI.
    AsmBuilder b;
    b.label("main");
    b.emit(Instruction::enter(2));
    b.emit(Instruction::mov(Operand::stack(0), Operand::imm(3)));
    b.emit(Instruction::cmp(Opcode::kCmpEq, Operand::stack(0),
                            Operand::imm(3)));
    b.branch(Opcode::kIfTJmp, "done", /*predict_taken=*/true);
    b.emit(Instruction::alu(Opcode::kAdd, Operand::stack(1),
                            Operand::imm(4)));
    b.label("done");
    b.emit(Instruction::halt());
    b.entry("main");

    AnalysisOptions opt;
    opt.predict = PredictConvention::kNone;
    const AnalysisResult r = analyzeProgram(b.link(), opt);
    ASSERT_TRUE(hasRule(r, "spread.short"));
    ASSERT_TRUE(hasRule(r, "cost.constant-cc"));

    const std::string s = r.toSarif("prog.s");
    EXPECT_NE(s.find("\"version\":\"2.1.0\""), std::string::npos);
    EXPECT_NE(s.find("\"name\":\"crisplint\""), std::string::npos);
    EXPECT_NE(s.find("\"ruleId\":\"spread.short\""), std::string::npos);
    EXPECT_NE(s.find("\"level\":\"warning\""), std::string::npos);
    EXPECT_NE(s.find("\"level\":\"note\""), std::string::npos);
    EXPECT_NE(s.find("\"uri\":\"prog.s\""), std::string::npos);
    EXPECT_NE(s.find("byteOffset"), std::string::npos);
    // Every fired rule is declared exactly once in the driver.
    EXPECT_NE(s.find("{\"id\":\"spread.short\"}"), std::string::npos);
}

TEST(CostOracle, TamperedBoundIsCaughtAsCostViolation)
{
    const cc::CompileResult res = cc::compile(fig3Source(64), {});
    const SimConfig cfg;

    AnalysisOptions opt;
    opt.predict = PredictConvention::kNone;
    opt.foldInfo = false;
    opt.costPredict = predictSourceFor(cfg);
    AnalysisResult st = analyzeProgram(res.program, opt);

    SiteRecorder rec;
    CrispCpu cpu(res.program, cfg);
    const SimStats& dyn = cpu.run(&rec);
    ASSERT_FALSE(dyn.faulted);
    ASSERT_TRUE(crossCheck(st, dyn, rec).ok());

    // Raise one executed site's lower bound above what the machine
    // actually spent there: crossCheck must flag it as a cost
    // violation (and only as a cost violation).
    Addr victim = 0;
    for (const auto& [pc, c] : rec.sites) {
        if (c.total > 0 && st.cost.sites.count(pc) != 0) {
            victim = pc;
            break;
        }
    }
    ASSERT_NE(victim, 0u);
    const int observed_min = rec.sites.at(victim).delayMin;
    st.cost.sites.at(victim).bound.lo = observed_min + 1;
    st.cost.sites.at(victim).bound.hi = 4;

    const OracleReport rep = crossCheck(st, dyn, rec);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(rep.mismatches.empty()) << rep.toString();
    EXPECT_FALSE(rep.costViolations.empty());
}

TEST(CostOracle, BoundsHoldUnderEveryPredictorConfiguration)
{
    // The refinement path differs per predictor source: static-bit
    // machines honor the compiler's bit, respectPredictionBit=false
    // machines always predict not-taken, and the dynamic predictors
    // disable the constant-branch refinement entirely (kUnknown).
    // All three must stay inside their bounds across random programs.
    std::vector<SimConfig> cfgs;
    {
        SimConfig c;
        c.respectPredictionBit = false;
        cfgs.push_back(c);
        c = SimConfig{};
        c.predictor = PredictorKind::kDynamic1;
        cfgs.push_back(c);
        c = SimConfig{};
        c.predictor = PredictorKind::kDynamic2;
        c.predictorEntries = 16;
        cfgs.push_back(c);
    }
    int applicable = 0;
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        const Program p = verify::generate(seed).link();
        for (const SimConfig& cfg : cfgs) {
            const OracleReport rep = runStaticOracle(p, cfg);
            if (rep.applicable)
                ++applicable;
            EXPECT_TRUE(rep.ok()) << "seed " << seed << "\n"
                                  << rep.toString();
        }
    }
    EXPECT_EQ(applicable, 180);
}

TEST(CostVerify, SpreadClaimsAreProvablyFreeAcrossWorkloads)
{
    for (const Workload& w : allWorkloads()) {
        const cc::CompileOptions opts;
        const cc::CompileResult res = cc::compile(w.source, opts);
        const VerifyReport v = verifyCompile(res, opts);
        EXPECT_TRUE(v.ok()) << w.name << "\n" << v.toString();
        // The cost engine must independently prove every confirmed
        // spread claim free of delay.
        EXPECT_EQ(v.costZeroBound, v.confirmedSpread) << w.name;
    }
}

} // namespace
