# Golden test for crisplint's machine-readable emitters.
#
# Runs `TOOL INPUT MODE` (MODE is --sarif or --json, default --sarif)
# with WORKDIR as the working directory (the SARIF artifact URI embeds
# the input path verbatim, so the fixture is passed as a bare relative
# name to keep the golden machine-independent) and requires the output
# to match GOLDEN byte for byte and the exit code to equal EXPECT:
#
#   cmake -DTOOL=<crisplint> -DINPUT=<name.s> -DWORKDIR=<fixture dir> \
#         -DGOLDEN=<golden.sarif> -DMODE=--sarif -DEXPECT=<N> \
#         -P lint_golden.cmake
#
# On drift the message shows both documents; regenerate with
#   crisplint <name.s> --sarif > tests/goldens/lint_<name>.sarif
#   crisplint <name.s> --json  > tests/goldens/lint_<name>.json
# (from tests/fixtures/lint/) after auditing the diff.
if(NOT DEFINED MODE)
    set(MODE --sarif)
endif()
execute_process(COMMAND ${TOOL} ${INPUT} ${MODE}
                WORKING_DIRECTORY ${WORKDIR}
                OUTPUT_VARIABLE got RESULT_VARIABLE rc)
if(NOT rc EQUAL "${EXPECT}")
    message(FATAL_ERROR
            "${TOOL} ${INPUT} ${MODE}: expected exit ${EXPECT}, got ${rc}")
endif()
file(READ "${GOLDEN}" want)
if(NOT got STREQUAL want)
    message(FATAL_ERROR "${MODE} drift for ${INPUT}\n"
            "--- got ----\n${got}\n--- want ---\n${want}")
endif()
message(STATUS "${MODE} golden ok: ${INPUT}")
