/**
 * @file
 * crispcc front-end tests: lexer tokens and parser structure/errors.
 */

#include <gtest/gtest.h>

#include "cc/ast.hh"
#include "cc/lexer.hh"
#include "isa/types.hh"

namespace crisp::cc
{
namespace
{

std::vector<Tok>
kinds(const std::string& src)
{
    std::vector<Tok> out;
    for (const Token& t : lex(src))
        out.push_back(t.kind);
    return out;
}

TEST(Lexer, BasicTokens)
{
    const auto k = kinds("int x = 42;");
    const std::vector<Tok> want = {Tok::kInt, Tok::kIdent, Tok::kAssign,
                                   Tok::kNumber, Tok::kSemi, Tok::kEof};
    EXPECT_EQ(k, want);
}

TEST(Lexer, NumbersDecimalAndHex)
{
    const auto toks = lex("12 0x1F 0 007");
    EXPECT_EQ(toks[0].value, 12);
    EXPECT_EQ(toks[1].value, 31);
    EXPECT_EQ(toks[2].value, 0);
    EXPECT_EQ(toks[3].value, 7);
}

TEST(Lexer, MultiCharOperators)
{
    const auto k = kinds("a <<= b >>= c == d != e <= f >= g && h || i "
                         "++ -- << >>");
    EXPECT_EQ(k[1], Tok::kShlAssign);
    EXPECT_EQ(k[3], Tok::kShrAssign);
    EXPECT_EQ(k[5], Tok::kEq);
    EXPECT_EQ(k[7], Tok::kNe);
    EXPECT_EQ(k[9], Tok::kLe);
    EXPECT_EQ(k[11], Tok::kGe);
    EXPECT_EQ(k[13], Tok::kAmpAmp);
    EXPECT_EQ(k[15], Tok::kPipePipe);
    EXPECT_EQ(k[17], Tok::kPlusPlus);
    EXPECT_EQ(k[18], Tok::kMinusMinus);
    EXPECT_EQ(k[19], Tok::kShl);
    EXPECT_EQ(k[20], Tok::kShr);
}

TEST(Lexer, CompoundAssignOperators)
{
    const auto k = kinds("+= -= *= /= %= &= |= ^=");
    const std::vector<Tok> want = {
        Tok::kPlusAssign,  Tok::kMinusAssign,   Tok::kStarAssign,
        Tok::kSlashAssign, Tok::kPercentAssign, Tok::kAmpAssign,
        Tok::kPipeAssign,  Tok::kCaretAssign,   Tok::kEof};
    EXPECT_EQ(k, want);
}

TEST(Lexer, CommentsAndLines)
{
    const auto toks = lex("a // line comment\nb /* block\ncomment */ c");
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[2].line, 3);
}

TEST(Lexer, Keywords)
{
    const auto k = kinds("if else while for do return break continue "
                         "int void");
    const std::vector<Tok> want = {
        Tok::kIf,    Tok::kElse,     Tok::kWhile, Tok::kFor,
        Tok::kDo,    Tok::kReturn,   Tok::kBreak, Tok::kContinue,
        Tok::kInt,   Tok::kVoid,     Tok::kEof};
    EXPECT_EQ(k, want);
}

TEST(Lexer, RejectsGarbage)
{
    EXPECT_THROW(lex("int $x;"), CrispError);
    EXPECT_THROW(lex("/* unterminated"), CrispError);
}

TEST(Parser, GlobalsScalarsArraysInitializers)
{
    const TranslationUnit tu = parse(R"(
        int a;
        int b = 5, c = -3;
        int arr[10];
        int main() { return 0; }
    )");
    ASSERT_EQ(tu.globals.size(), 4u);
    EXPECT_EQ(tu.globals[0].name, "a");
    EXPECT_EQ(tu.globals[1].init, 5);
    EXPECT_EQ(tu.globals[2].init, -3);
    EXPECT_EQ(tu.globals[3].arraySize, 10);
    ASSERT_EQ(tu.functions.size(), 1u);
    EXPECT_EQ(tu.functions[0].name, "main");
}

TEST(Parser, FunctionsAndParameters)
{
    const TranslationUnit tu = parse(R"(
        int add3(int a, int b, int c) { return a + b + c; }
        void side() { ; }
        int noargs(void) { return 1; }
        int main() { return add3(1, 2, 3); }
    )");
    ASSERT_EQ(tu.functions.size(), 4u);
    EXPECT_EQ(tu.functions[0].params.size(), 3u);
    EXPECT_FALSE(tu.functions[1].returnsValue);
    EXPECT_TRUE(tu.functions[2].params.empty());
}

TEST(Parser, StatementForms)
{
    const TranslationUnit tu = parse(R"(
        int g;
        int main() {
            int x = 0;
            if (x) x = 1; else x = 2;
            while (x < 10) x++;
            do { x--; } while (x > 0);
            for (int i = 0; i < 4; i++) { g += i; break; }
            for (;;) { break; }
            return x;
        }
    )");
    const Stmt& body = *tu.functions[0].body;
    ASSERT_EQ(body.kind, StmtKind::kBlock);
    // decl, if, while, do, for, for, return
    EXPECT_EQ(body.stmts.size(), 7u);
    EXPECT_EQ(body.stmts[1]->kind, StmtKind::kIf);
    EXPECT_NE(body.stmts[1]->elseBody, nullptr);
    EXPECT_EQ(body.stmts[2]->kind, StmtKind::kWhile);
    EXPECT_EQ(body.stmts[3]->kind, StmtKind::kDoWhile);
    EXPECT_EQ(body.stmts[4]->kind, StmtKind::kFor);
    EXPECT_NE(body.stmts[4]->initStmt, nullptr);
    EXPECT_EQ(body.stmts[5]->kind, StmtKind::kFor);
    EXPECT_EQ(body.stmts[5]->cond, nullptr);
}

TEST(Parser, PrecedenceShape)
{
    // a + b * c parses as a + (b * c).
    const TranslationUnit tu =
        parse("int a; int b; int c;\nint main() { return a + b * c; }");
    const Expr& e = *tu.functions[0].body->stmts[0]->expr;
    ASSERT_EQ(e.kind, ExprKind::kBinary);
    EXPECT_EQ(e.binop, BinOp::kAdd);
    EXPECT_EQ(e.rhs->binop, BinOp::kMul);

    // a < b == c parses as (a < b) == c.
    const TranslationUnit tu2 =
        parse("int a; int b; int c;\nint main() { return a < b == c; }");
    const Expr& e2 = *tu2.functions[0].body->stmts[0]->expr;
    EXPECT_EQ(e2.binop, BinOp::kEq);
    EXPECT_EQ(e2.lhs->binop, BinOp::kLt);

    // Assignment is right-associative: a = b = c.
    const TranslationUnit tu3 =
        parse("int a; int b; int c;\nint main() { a = b = c; return 0; }");
    const Expr& e3 = *tu3.functions[0].body->stmts[0]->expr;
    ASSERT_EQ(e3.kind, ExprKind::kAssign);
    EXPECT_EQ(e3.rhs->kind, ExprKind::kAssign);
}

TEST(Parser, UnaryAndPostfix)
{
    const TranslationUnit tu = parse(R"(
        int a;
        int main() {
            a = -a + !a - ~a;
            a++;
            ++a;
            a--;
            return a++;
        }
    )");
    EXPECT_EQ(tu.functions[0].body->stmts.size(), 5u);
    const Expr& ret = *tu.functions[0].body->stmts[4]->expr;
    EXPECT_EQ(ret.kind, ExprKind::kPostIncDec);
}

TEST(Parser, Errors)
{
    EXPECT_THROW(parse("int main() { return 1 }"), CrispError);  // ;
    EXPECT_THROW(parse("int main() { 5 = x; }"), CrispError);    // lvalue
    EXPECT_THROW(parse("int main() { ++5; }"), CrispError);      // lvalue
    EXPECT_THROW(parse("int main() {"), CrispError);             // brace
    EXPECT_THROW(parse("int arr[0]; int main() { return 0; }"),
                 CrispError);                                    // size
    EXPECT_THROW(parse("void v; int main() { return 0; }"),
                 CrispError);                                    // void var
    EXPECT_THROW(parse("int main() { if x) ; }"), CrispError);   // paren
}

} // namespace
} // namespace crisp::cc
