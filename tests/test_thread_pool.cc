/**
 * @file
 * The ThreadPool shutdown contract (src/util/thread_pool.hh): a
 * long-lived daemon leans on exactly these properties, so each one is
 * pinned here — and the whole file runs under TSan in CI (the
 * `tsan` preset builds test_thread_pool and executes it with
 * halt_on_error), which is what makes the "no task lost, no task after
 * stop" claims more than comments.
 */

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.hh"
#include "util/watchdog.hh"

namespace
{

using crisp::util::ThreadPool;
using crisp::util::Watchdog;

TEST(ThreadPool, DrainRunsEveryQueuedTask)
{
    std::atomic<int> ran{0};
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i)
        ASSERT_TRUE(pool.submit([&ran] { ++ran; }));
    pool.stop(ThreadPool::Stop::kDrain);
    EXPECT_EQ(ran.load(), 200);
    EXPECT_EQ(pool.executed(), 200u);
    EXPECT_EQ(pool.abandoned(), 0u);
}

TEST(ThreadPool, AbortDiscardsUnstartedTasksExactly)
{
    std::atomic<bool> started{false};
    std::atomic<bool> release{false};
    std::atomic<int> ran{0};
    ThreadPool pool(1);
    ASSERT_TRUE(pool.submit([&] {
        started = true;
        while (!release)
            std::this_thread::yield();
        ++ran;
    }));
    for (int i = 0; i < 50; ++i)
        ASSERT_TRUE(pool.submit([&ran] { ++ran; }));
    while (!started)
        std::this_thread::yield();
    // stop(kAbort) strips the queue immediately, then waits for the
    // blocker; release it from a helper so the join can finish.
    std::thread releaser([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        release = true;
    });
    pool.stop(ThreadPool::Stop::kAbort);
    releaser.join();
    // Only the running task finished; the 50 queued ones were
    // discarded and counted — none ran, none was lost track of.
    EXPECT_EQ(ran.load(), 1);
    EXPECT_EQ(pool.executed(), 1u);
    EXPECT_EQ(pool.abandoned(), 50u);
}

TEST(ThreadPool, SubmitAfterStopIsRejectedNotLost)
{
    ThreadPool pool(2);
    pool.stop(ThreadPool::Stop::kDrain);
    std::atomic<int> ran{0};
    EXPECT_FALSE(pool.submit([&ran] { ++ran; }));
    // The rejected task must never run, even much later.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(ran.load(), 0);
    EXPECT_EQ(pool.executed(), 0u);
}

TEST(ThreadPool, StopIsIdempotentAndConcurrencySafe)
{
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i)
        pool.submit([] {});
    std::vector<std::thread> stoppers;
    for (int i = 0; i < 4; ++i)
        stoppers.emplace_back(
            [&pool] { pool.stop(ThreadPool::Stop::kDrain); });
    for (auto& t : stoppers)
        t.join();
    pool.stop(ThreadPool::Stop::kAbort); // after-the-fact: no-op
    EXPECT_EQ(pool.executed() + pool.abandoned(), 20u);
}

TEST(ThreadPool, TaskExceptionDoesNotKillItsWorker)
{
    std::atomic<int> ran{0};
    ThreadPool pool(1); // one worker: it must survive the throw
    pool.submit([] { throw std::runtime_error("task boom"); });
    for (int i = 0; i < 10; ++i)
        pool.submit([&ran] { ++ran; });
    pool.stop(ThreadPool::Stop::kDrain);
    EXPECT_EQ(ran.load(), 10);
    EXPECT_EQ(pool.executed(), 11u); // the thrower still counts as run
    ASSERT_NE(pool.firstError(), nullptr);
    try {
        std::rethrow_exception(pool.firstError());
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "task boom");
    }
}

TEST(ThreadPool, ParallelForRunsEveryIndexEvenOnStoppedPool)
{
    ThreadPool pool(4);
    pool.stop(ThreadPool::Stop::kDrain);
    std::vector<int> hits(100, 0);
    // Contract: fn(i) runs exactly once per index regardless of pool
    // state (the caller thread picks up the lanes).
    pool.parallelFor(hits.size(),
                     [&hits](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, ParallelForRethrowsFirstErrorByIndex)
{
    ThreadPool pool(4);
    try {
        pool.parallelFor(64, [](std::size_t i) {
            if (i == 7 || i == 50)
                throw std::runtime_error("index " + std::to_string(i));
        });
        FAIL() << "expected a rethrow";
    } catch (const std::runtime_error& e) {
        // Determinism: first by index, not by completion time.
        EXPECT_STREQ(e.what(), "index 7");
    }
}

TEST(ThreadPool, ConcurrentSubmittersRacingStopLoseNothing)
{
    // Accounting under fire: every submission that returned true is in
    // executed() + abandoned(); every one that returned false never
    // runs. This is the TSan jackpot test.
    ThreadPool pool(4);
    std::atomic<std::uint64_t> acceptedCount{0};
    std::atomic<std::uint64_t> ran{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
        submitters.emplace_back([&] {
            for (int i = 0; i < 2000; ++i) {
                if (pool.submit([&ran] { ++ran; }))
                    ++acceptedCount;
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    pool.stop(ThreadPool::Stop::kAbort);
    for (auto& t : submitters)
        t.join();
    EXPECT_EQ(pool.executed() + pool.abandoned(),
              acceptedCount.load());
    EXPECT_EQ(ran.load(), pool.executed());
}

TEST(Watchdog, FiresAtTheDeadline)
{
    Watchdog wd;
    const auto timer = wd.arm(std::chrono::milliseconds(30));
    EXPECT_FALSE(timer->fired.load());
    const auto giveUp = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
    while (!timer->fired.load() &&
           std::chrono::steady_clock::now() < giveUp)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(timer->fired.load());
}

TEST(Watchdog, DisarmPreventsFiring)
{
    Watchdog wd;
    const auto timer = wd.arm(std::chrono::milliseconds(30));
    timer->disarm();
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    EXPECT_FALSE(timer->fired.load());
}

TEST(Watchdog, OneScannerManyTimers)
{
    Watchdog wd;
    std::vector<std::shared_ptr<Watchdog::Timer>> timers;
    for (int i = 0; i < 64; ++i)
        timers.push_back(wd.arm(std::chrono::milliseconds(10 + i)));
    const auto giveUp = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
    for (const auto& t : timers) {
        while (!t->fired.load() &&
               std::chrono::steady_clock::now() < giveUp)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        EXPECT_TRUE(t->fired.load());
    }
    EXPECT_EQ(wd.pending(), 0u);
}

TEST(Watchdog, DroppedTimerIsPruned)
{
    Watchdog wd;
    wd.arm(std::chrono::hours(24)); // dropped immediately: implicit
                                    // disarm via the weak_ptr
    const auto keep = wd.arm(std::chrono::milliseconds(20));
    while (!keep->fired.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(wd.pending(), 0u);
}

} // namespace
