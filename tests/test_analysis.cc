/**
 * @file
 * Tests for the static-analysis subsystem (src/analysis): CFG
 * construction, the reaching-compare and fold-eligibility dataflow
 * passes, the diagnostic checks, the crispcc --verify audit, and the
 * torture-side static oracle that pins the analyzer's predictions to
 * the cycle simulator's retired counts.
 */

#include <gtest/gtest.h>

#include "analysis/ccverify.hh"
#include "analysis/checks.hh"
#include "analysis/oracle.hh"
#include "asm/assembler.hh"
#include "cc/compiler.hh"
#include "isa/encoding.hh"
#include "sim/cpu.hh"
#include "verify/generator.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace crisp;
using namespace crisp::analysis;

bool
hasRule(const AnalysisResult& r, const std::string& rule)
{
    for (const Diagnostic& d : r.diags) {
        if (d.rule == rule)
            return true;
    }
    return false;
}

/** The clean shape: compare, three fillers, folded predicted branch. */
Program
cleanSpreadProgram()
{
    AsmBuilder b;
    b.label("main");
    b.emit(Instruction::enter(2));
    b.emit(Instruction::mov(Operand::stack(0), Operand::imm(3)));
    b.emit(Instruction::cmp(Opcode::kCmpEq, Operand::stack(0),
                            Operand::imm(3)));
    b.emit(Instruction::alu(Opcode::kAdd, Operand::stack(1),
                            Operand::imm(1)));
    b.emit(Instruction::alu(Opcode::kAdd, Operand::stack(1),
                            Operand::imm(2)));
    b.emit(Instruction::alu(Opcode::kAdd, Operand::stack(1),
                            Operand::imm(3)));
    b.branch(Opcode::kIfTJmp, "done", /*predict_taken=*/false);
    b.emit(Instruction::alu(Opcode::kAdd, Operand::stack(1),
                            Operand::imm(4)));
    b.label("done");
    b.emit(Instruction::halt());
    b.entry("main");
    return b.link();
}

TEST(Cfg, CleanSpreadProgramAnalyzesClean)
{
    const AnalysisResult r = analyzeProgram(cleanSpreadProgram(), {});
    EXPECT_FALSE(r.hasErrors()) << r.toString();
    EXPECT_FALSE(r.hasWarnings()) << r.toString();
    EXPECT_EQ(r.staticBranchSites, 1);
    EXPECT_EQ(r.staticCondSites, 1);
    EXPECT_EQ(r.staticGuaranteedCondSites, 1);
    EXPECT_EQ(r.staticFoldedSites, 1); // the 3rd filler carries it
    ASSERT_EQ(r.sites.size(), 1u);
    const BranchSite& s = r.sites.begin()->second;
    EXPECT_TRUE(s.conditional);
    EXPECT_NE(s.cls, FoldClass::kLone);
    EXPECT_TRUE(s.guaranteedResolved);
}

TEST(Cfg, DotOutputNamesBlocks)
{
    const AnalysisResult r = analyzeProgram(cleanSpreadProgram(), {});
    const std::string dot = r.cfg->toDot();
    EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(Cfg, DotOutputGolden)
{
    // Byte-exact golden for a minimal program: quoted labels must
    // contain only properly backslash-escaped text (never
    // quote-to-apostrophe mangling), with one \l terminating each
    // instruction line.
    Program p;
    p.append(Instruction::alu(Opcode::kAdd, Operand::accum(),
                              Operand::imm(1)));
    p.append(Instruction::branchRel(Opcode::kJmp, 2));
    p.append(Instruction::halt());
    const AnalysisResult r = analyzeProgram(p, {});
    ASSERT_FALSE(r.hasErrors()) << r.toString();
    const char* want =
        "digraph cfg {\n"
        "  node [shape=box, fontname=\"monospace\"];\n"
        "  b0 [label=\"0x1000: add Accum,1 + folded jmp -> "
        "0x1004\\l0x1004: halt -> halt\\l\"];\n"
        "}\n";
    EXPECT_EQ(r.cfg->toDot(), want);
}

TEST(Cfg, UnreachableCodeIsReported)
{
    AsmBuilder b;
    b.label("main");
    b.emit(Instruction::enter(1));
    b.emit(Instruction::halt());
    b.emit(Instruction::alu(Opcode::kAdd, Operand::stack(0),
                            Operand::imm(7))); // dead
    b.entry("main");
    const AnalysisResult r = analyzeProgram(b.link(), {});
    EXPECT_TRUE(hasRule(r, "cfg.unreachable")) << r.toString();
    EXPECT_FALSE(r.cfg->unreachableRanges().empty());
}

TEST(Dataflow, AdjacentCompareBranchIsShortSpread)
{
    AsmBuilder b;
    b.label("main");
    b.emit(Instruction::enter(1));
    b.emit(Instruction::cmp(Opcode::kCmpEq, Operand::stack(0),
                            Operand::imm(0)));
    b.branch(Opcode::kIfTJmp, "done", /*predict_taken=*/false);
    b.emit(Instruction::alu(Opcode::kAdd, Operand::stack(0),
                            Operand::imm(1)));
    b.label("done");
    b.emit(Instruction::halt());
    b.entry("main");
    const AnalysisResult r = analyzeProgram(b.link(), {});
    EXPECT_TRUE(hasRule(r, "spread.short")) << r.toString();
    ASSERT_EQ(r.sites.size(), 1u);
    // The compare itself carries the branch: folded, yet it must
    // speculate, exactly the paper's folded-compare corner.
    const BranchSite& s = r.sites.begin()->second;
    EXPECT_NE(s.cls, FoldClass::kLone);
    EXPECT_FALSE(s.guaranteedResolved);
}

TEST(Dataflow, ThreeParcelCallNeverFolds)
{
    // A one-parcel instruction precedes the call, but calls are three
    // parcels (absolute target + return linkage) and the PDU folds only
    // one-parcel PC-relative branches.
    AsmBuilder b;
    b.label("main");
    b.emit(Instruction::enter(1));
    b.emit(Instruction::mov(Operand::stack(0), Operand::imm(1)));
    b.branch(Opcode::kCall, "f");
    b.emit(Instruction::halt());
    b.label("f");
    b.emit(Instruction::enter(1));
    b.emit(Instruction::ret(1));
    b.entry("main");

    const AnalysisResult r = analyzeProgram(b.link(), {});
    EXPECT_FALSE(r.hasErrors()) << r.toString();
    bool saw_call = false;
    for (const auto& [pc, s] : r.sites) {
        if (s.op != Opcode::kCall)
            continue;
        saw_call = true;
        EXPECT_EQ(s.cls, FoldClass::kLone);
        EXPECT_EQ(s.reason, NoFoldReason::kNotOneParcel);
    }
    EXPECT_TRUE(saw_call);
}

TEST(Dataflow, BranchAfterBranchHasNoCarrier)
{
    AsmBuilder b;
    b.label("main");
    b.emit(Instruction::enter(1));
    b.branch(Opcode::kJmp, "a");
    b.label("a");
    b.branch(Opcode::kJmp, "b"); // predecessor is a branch: no carrier
    b.label("b");
    b.emit(Instruction::halt());
    b.entry("main");
    const AnalysisResult r = analyzeProgram(b.link(), {});
    ASSERT_TRUE(r.cfg != nullptr);
    bool checked = false;
    for (const auto& [pc, s] : r.sites) {
        if (pc == r.sites.begin()->first)
            continue; // the first branch may fold into the enter
        checked = true;
        EXPECT_EQ(s.cls, FoldClass::kLone) << "pc=" << pc;
        EXPECT_NE(s.reason, NoFoldReason::kNone);
    }
    EXPECT_TRUE(checked);
}

TEST(Dataflow, FoldPolicyNoneMakesEveryBranchLone)
{
    AnalysisOptions opt;
    opt.policy = FoldPolicy::kNone;
    const AnalysisResult r = analyzeProgram(cleanSpreadProgram(), opt);
    for (const auto& [pc, s] : r.sites) {
        EXPECT_EQ(s.cls, FoldClass::kLone) << "pc=" << pc;
        EXPECT_EQ(s.reason, NoFoldReason::kPolicyNone);
    }
    EXPECT_EQ(r.staticFoldedSites, 0);
}

TEST(Checks, PredictionConventionViolations)
{
    // Backward conditional branch predicted not-taken: against the
    // paper's backward-taken heuristic.
    AsmBuilder b;
    b.label("main");
    b.emit(Instruction::enter(1));
    b.emit(Instruction::mov(Operand::stack(0), Operand::imm(2)));
    b.label("loop");
    b.emit(Instruction::alu(Opcode::kSub, Operand::stack(0),
                            Operand::imm(1)));
    b.emit(Instruction::cmp(Opcode::kCmpGt, Operand::stack(0),
                            Operand::imm(0)));
    b.branch(Opcode::kIfTJmp, "loop", /*predict_taken=*/false);
    b.emit(Instruction::halt());
    b.entry("main");
    const Program p = b.link();

    const AnalysisResult heur = analyzeProgram(p, {});
    EXPECT_TRUE(hasRule(heur, "predict.backward-not-taken"))
        << heur.toString();

    // The same program checked against no convention: silent.
    AnalysisOptions none;
    none.predict = PredictConvention::kNone;
    const AnalysisResult quiet = analyzeProgram(p, none);
    EXPECT_FALSE(hasRule(quiet, "predict.backward-not-taken"));

    // Forward branch predicted taken violates the heuristic too.
    AsmBuilder f;
    f.label("main");
    f.emit(Instruction::enter(1));
    f.emit(Instruction::cmp(Opcode::kCmpEq, Operand::stack(0),
                            Operand::imm(0)));
    f.branch(Opcode::kIfTJmp, "done", /*predict_taken=*/true);
    f.emit(Instruction::alu(Opcode::kAdd, Operand::stack(0),
                            Operand::imm(1)));
    f.label("done");
    f.emit(Instruction::halt());
    f.entry("main");
    const AnalysisResult fwd = analyzeProgram(f.link(), {});
    EXPECT_TRUE(hasRule(fwd, "predict.forward-taken")) << fwd.toString();

    // All-not-taken convention: the same set bit is also a violation.
    AnalysisOptions naive;
    naive.predict = PredictConvention::kAllNotTaken;
    const AnalysisResult nt = analyzeProgram(f.link(), naive);
    EXPECT_TRUE(hasRule(nt, "predict.forward-taken") ||
                hasRule(nt, "predict.backward-not-taken") ||
                nt.hasWarnings())
        << nt.toString();
}

TEST(Checks, StackWindowWarning)
{
    AsmBuilder b;
    b.label("main");
    b.emit(Instruction::enter(6));
    b.emit(Instruction::mov(Operand::stack(5), Operand::imm(1)));
    b.emit(Instruction::halt());
    b.entry("main");
    AnalysisOptions opt;
    opt.stackCacheWords = 2; // shrink the window below the frame
    const AnalysisResult r = analyzeProgram(b.link(), opt);
    EXPECT_TRUE(hasRule(r, "stack.outside-window")) << r.toString();
}

TEST(Checks, JumpTableProgramAnalyzesClean)
{
    // A switch compiles to an indirect jump through a link-time table;
    // the analyzer must discover the table targets from the data
    // segment rather than reporting an unresolvable indirect.
    const char* src = R"(
        int main() {
            int i; int s;
            s = 0;
            for (i = 0; i < 12; i = i + 1) {
                switch (i - (i / 4) * 4) {
                    case 0: s = s + 1; break;
                    case 1: s = s + 2; break;
                    case 2: s = s + 3; break;
                    default: s = s + 5; break;
                }
            }
            return s;
        }
    )";
    const cc::CompileResult res = cc::compile(src, {});
    const AnalysisResult r = analyzeProgram(res.program, {});
    EXPECT_FALSE(r.hasErrors()) << r.toString();
    EXPECT_TRUE(r.cfg->hasIndirect());
    EXPECT_FALSE(r.cfg->indirectTargets().empty());
    EXPECT_FALSE(hasRule(r, "cfg.indirect-no-table"));

    // And the oracle agrees with the pipeline about it.
    const OracleReport o = runStaticOracle(res.program, SimConfig{});
    EXPECT_TRUE(o.applicable);
    EXPECT_TRUE(o.ok()) << o.toString();
}

TEST(Oracle, TamperedTargetSetTripsInvariant8)
{
    // The value-set analysis proves the switch dispatch's target set;
    // deleting the dynamically-taken target from that proof must trip
    // the retire-time membership check (invariant 8) — the positive
    // leg of the same program is pinned by
    // Checks.JumpTableProgramAnalyzesClean. A program that stores to
    // its own table never gets here: the table becomes may-written
    // and the site falls back to unenforceable, so the corruption has
    // to be injected into the static side directly.
    const char* src = R"(
        int main() {
            int i; int s;
            s = 0;
            for (i = 0; i < 12; i = i + 1) {
                switch (i - (i / 4) * 4) {
                    case 0: s = s + 1; break;
                    case 1: s = s + 2; break;
                    case 2: s = s + 3; break;
                    default: s = s + 5; break;
                }
            }
            return s;
        }
    )";
    const cc::CompileResult res = cc::compile(src, {});
    const SimConfig cfg;
    AnalysisOptions aopt;
    aopt.policy = cfg.foldPolicy;
    aopt.predict = PredictConvention::kNone;
    aopt.foldInfo = false;
    aopt.costPredict = predictSourceFor(cfg);
    AnalysisResult st = analyzeProgram(res.program, aopt);
    ASSERT_FALSE(st.hasErrors()) << st.toString();

    SiteRecorder rec;
    CrispCpu cpu(res.program, cfg);
    const SimStats& dyn = cpu.run(&rec);
    ASSERT_FALSE(dyn.faulted);
    ASSERT_FALSE(dyn.timedOut);
    EXPECT_TRUE(crossCheck(st, dyn, rec).ok());

    // Pick a retired indirect target covered by an enforceable proof
    // and erase it from every issue point of its branch.
    bool tampered = false;
    for (const auto& [bpc, dynTargets] : rec.jumpTargets) {
        for (auto& [ip, ts] : st.targets.sites) {
            if (ts.branchPc != bpc || !ts.enforceable)
                continue;
            for (const Addr t : dynTargets)
                tampered |= ts.targets.erase(t) > 0;
        }
    }
    ASSERT_TRUE(tampered)
        << "no enforceable proof covered a retired indirect target";
    const OracleReport rep = crossCheck(st, dyn, rec);
    EXPECT_FALSE(rep.ok());
    EXPECT_FALSE(rep.targetViolations.empty()) << rep.toString();
    // The escape is a target-set verdict, not a structural mismatch:
    // the global candidate set (invariant 6) still contains it.
    EXPECT_TRUE(rep.mismatches.empty()) << rep.toString();
}

TEST(Oracle, StaticCountsMatchDynamicStatsAcross200Seeds)
{
    int applicable = 0;
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        const Program p = verify::generate(seed).link();
        for (FoldPolicy fp : {FoldPolicy::kNone, FoldPolicy::kCrisp,
                              FoldPolicy::kAll}) {
            SimConfig cfg;
            cfg.foldPolicy = fp;
            const OracleReport rep = runStaticOracle(p, cfg);
            if (rep.applicable)
                ++applicable;
            EXPECT_TRUE(rep.ok())
                << "seed " << seed << " fold=" << static_cast<int>(fp)
                << "\n"
                << rep.toString();
        }
    }
    // The generator emits halting programs; the sweep must really have
    // exercised the cross-check, not skipped it.
    EXPECT_EQ(applicable, 600);
}

TEST(Oracle, CatchesFoldPolicyMismatch)
{
    // Analyze under "never fold", simulate under CRISP folding: on any
    // program with at least one foldable pair the per-site fold class
    // disagrees with what retires, and the oracle must say so.
    int caught = 0;
    int total = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const Program p = verify::generate(seed).link();
        AnalysisOptions aopt;
        aopt.policy = FoldPolicy::kNone;
        aopt.predict = PredictConvention::kNone;
        aopt.foldInfo = false;
        const AnalysisResult st = analyzeProgram(p, aopt);

        SiteRecorder rec;
        CrispCpu cpu(p, SimConfig{});
        const SimStats& dyn = cpu.run(&rec);
        if (dyn.faulted || dyn.timedOut)
            continue;
        ++total;
        if (!crossCheck(st, dyn, rec).ok())
            ++caught;
    }
    EXPECT_EQ(total, 20);
    EXPECT_GE(caught, 15);
}

TEST(Verify, AllWorkloadsVerifyClean)
{
    for (const Workload& w : allWorkloads()) {
        const cc::CompileOptions opts;
        const cc::CompileResult res = cc::compile(w.source, opts);
        const VerifyReport v = verifyCompile(res, opts);
        EXPECT_TRUE(v.applicable) << w.name;
        EXPECT_TRUE(v.ok()) << w.name << "\n" << v.toString();
        EXPECT_EQ(v.claimedSpread, res.fullySpread) << w.name;
        EXPECT_EQ(v.confirmedSpread, v.claimedSpread) << w.name;
    }
}

TEST(Verify, Fig3AndOptionVariantsVerifyClean)
{
    const std::string src = fig3Source(64);
    for (const bool spread : {true, false}) {
        for (const bool naive : {true, false}) {
            cc::CompileOptions opts;
            opts.spread = spread;
            opts.predict = naive ? cc::PredictMode::kAllNotTaken
                                 : cc::PredictMode::kBackwardTaken;
            const cc::CompileResult res = cc::compile(src, opts);
            const VerifyReport v = verifyCompile(res, opts);
            EXPECT_TRUE(v.ok())
                << "spread=" << spread << " naive=" << naive << "\n"
                << v.toString();
            if (!spread) {
                EXPECT_EQ(v.claimedSpread, 0);
            }
        }
    }
}

TEST(Verify, DelaySlotBuildsAreNotApplicable)
{
    cc::CompileOptions opts;
    opts.delaySlots = true;
    const cc::CompileResult res = cc::compile(fig3Source(16), opts);
    const VerifyReport v = verifyCompile(res, opts);
    EXPECT_FALSE(v.applicable);
    EXPECT_TRUE(v.ok());
}

TEST(Verify, CatchesTamperedPredictionBit)
{
    const cc::CompileOptions opts;
    cc::CompileResult res = cc::compile(fig3Source(64), opts);

    // Baseline must be clean, then flip one reachable conditional
    // branch's prediction bit in the linked binary.
    ASSERT_TRUE(verifyCompile(res, opts).ok());
    const AnalysisResult base = analyzeProgram(res.program, {});
    Addr victim = 0;
    for (const auto& [pc, s] : base.sites) {
        if (s.conditional && s.shortForm) {
            victim = pc;
            break;
        }
    }
    ASSERT_NE(victim, 0u);

    Instruction inst = res.program.fetch(victim);
    inst.predictTaken = !inst.predictTaken;
    Parcel buf[kMaxParcels];
    ASSERT_EQ(encode(inst, buf), 1);
    res.program.text[(victim - res.program.textBase) / kParcelBytes] =
        buf[0];

    const VerifyReport v = verifyCompile(res, opts);
    EXPECT_FALSE(v.ok());
}

TEST(Verify, CatchesBogusSpreadClaim)
{
    const cc::CompileOptions opts;
    const char* src =
        "int main() { int i; int s; s = 0; "
        "for (i = 1; i <= 100; i = i + 1) { s = s + i; } return s; }";
    cc::CompileResult res = cc::compile(src, opts);
    ASSERT_TRUE(verifyCompile(res, opts).ok());

    // Claim full spread on a conditional branch passSpread did not
    // claim (the loop's compare feeds its branch directly).
    bool tampered = false;
    for (cc::CodeItem& c : res.code) {
        if (c.kind == cc::CodeItem::Kind::kBranch && !c.spreadClaim &&
            isBranch(c.inst.op) && c.inst.op != Opcode::kJmp &&
            c.inst.op != Opcode::kCall) {
            c.spreadClaim = true;
            tampered = true;
            break;
        }
    }
    ASSERT_TRUE(tampered);
    const VerifyReport v = verifyCompile(res, opts);
    EXPECT_FALSE(v.ok());
}

TEST(Json, ReportIsMachineReadable)
{
    const AnalysisResult r = analyzeProgram(cleanSpreadProgram(), {});
    const std::string j = r.toJson();
    EXPECT_NE(j.find("\"staticBranchSites\""), std::string::npos);
    EXPECT_NE(j.find("\"sites\""), std::string::npos);
    EXPECT_NE(j.find("\"diagnostics\""), std::string::npos);
}

} // namespace
