/**
 * @file
 * Coverage for the smaller public APIs: Program statistics and
 * disassembly, interpreter stepping, single-cycle CPU ticking, stats
 * printing, and stats invariants across machines.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "baseline/delayed.hh"
#include "cc/compiler.hh"
#include "interp/interpreter.hh"
#include "sim/cpu.hh"
#include "workloads/workloads.hh"

namespace crisp
{
namespace
{

TEST(ProgramApi, StaticCountsAndLengths)
{
    const Program p = assemble(R"(
        .entry s
        .global g 0
s:      add sp[0], 1            ; 1 parcel
        mov g, 70000             ; 5 parcels (32-bit immediate)
        cmp.s< sp[0], 1024       ; 3 parcels
        jmp s                    ; 1 parcel
    )");
    EXPECT_EQ(p.staticInstructionCount(), 4);
    const auto hist = p.staticLengthHistogram();
    EXPECT_EQ(hist.at(1), 2);
    EXPECT_EQ(hist.at(3), 1);
    EXPECT_EQ(hist.at(5), 1);
    EXPECT_EQ(p.textEnd() - p.textBase, (1u + 5u + 3u + 1u) * 2u);
}

TEST(ProgramApi, FetchErrors)
{
    const Program p = assemble(".entry s\ns: halt\n");
    EXPECT_THROW(p.parcelAt(p.textBase + 1), CrispError); // unaligned
    EXPECT_THROW(p.parcelAt(p.textEnd()), CrispError);    // past end
    EXPECT_THROW(p.parcelAt(0), CrispError);              // before text
}

TEST(ProgramApi, AppendBuildsRunnablePrograms)
{
    Program p;
    p.entry = p.textBase;
    p.append(Instruction::mov(Operand::abs(kDataBase), Operand::imm(7)));
    p.append(Instruction::halt());
    p.data.assign(4, 0);
    p.symbols["out"] = {Symbol::Kind::kGlobal, kDataBase};

    Interpreter interp(p);
    EXPECT_TRUE(interp.run().halted);
    EXPECT_EQ(interp.wordAt("out"), 7);
}

TEST(InterpApi, SingleStepping)
{
    const Program p = assemble(R"(
        .entry s
        .global g 0
s:      mov g, 1
        add g, 2
        halt
    )");
    Interpreter interp(p);
    EXPECT_EQ(interp.pc(), p.entry);
    EXPECT_TRUE(interp.step());
    EXPECT_EQ(interp.wordAt("g"), 1);
    EXPECT_TRUE(interp.step());
    EXPECT_EQ(interp.wordAt("g"), 3);
    EXPECT_FALSE(interp.step()); // halt
    EXPECT_TRUE(interp.halted());
    EXPECT_FALSE(interp.step()); // idempotent after halt
    EXPECT_EQ(interp.result().instructions, 3u);
}

TEST(CpuApi, ManualTickingMatchesRun)
{
    const auto r = cc::compile(fig3Source(32));
    CrispCpu a(r.program);
    const std::uint64_t cycles = a.run().cycles;

    CrispCpu b(r.program);
    std::uint64_t ticks = 0;
    while (b.tick())
        ++ticks;
    ++ticks; // the final tick returned false but still counted
    EXPECT_EQ(b.stats().cycles, cycles);
    EXPECT_EQ(b.accum(), a.accum());
}

TEST(StatsApi, ToStringMentionsEveryHeadline)
{
    const auto r = cc::compile(fig3Source(64));
    CrispCpu cpu(r.program);
    const std::string text = cpu.run().toString();
    for (const char* key :
         {"cycles", "issued", "apparent", "folded branches",
          "mispredicts", "DIC hits/misses", "stack cache",
          "halted:              yes"}) {
        EXPECT_NE(text.find(key), std::string::npos) << key;
    }
}

TEST(StatsApi, FaultAppearsInToString)
{
    const Program p = assemble(R"(
        .entry s
s:      mov @0x3FFFF, 1
        halt
    )");
    CrispCpu cpu(p);
    const std::string text = cpu.run().toString();
    EXPECT_NE(text.find("FAULT at 0x"), std::string::npos);
}

TEST(Invariants, ApparentCountIsMachineIndependent)
{
    // The architectural instruction count must be identical on the
    // interpreter and every pipeline configuration.
    const auto r = cc::compile(workload("sieve").source);
    Interpreter interp(r.program);
    const std::uint64_t arch = interp.run(500'000'000).instructions;

    for (int dic : {8, 32}) {
        for (FoldPolicy f : {FoldPolicy::kNone, FoldPolicy::kCrisp}) {
            SimConfig cfg;
            cfg.dicEntries = dic;
            cfg.foldPolicy = f;
            CrispCpu cpu(r.program, cfg);
            EXPECT_EQ(cpu.run().apparent, arch);
        }
    }
}

TEST(Invariants, CyclesNeverBelowIssued)
{
    for (const Workload& w : allWorkloads()) {
        const auto r = cc::compile(w.source);
        CrispCpu cpu(r.program);
        const SimStats& s = cpu.run();
        EXPECT_GE(s.cycles, s.issued) << w.name;
        EXPECT_GE(s.apparent, s.issued) << w.name;
        EXPECT_EQ(s.issued + s.foldedBranches, s.apparent) << w.name;
    }
}

TEST(Invariants, StallAccountingAddsUp)
{
    const auto r = cc::compile(workload("puzzle").source);
    CrispCpu cpu(r.program);
    const SimStats& s = cpu.run();
    // Every cycle either issued or stalled (squashed issues also
    // occupied issue slots, so cycles >= issued + stalls - squashed).
    EXPECT_EQ(s.cycles, s.issued + s.squashed + s.issueStallCycles);
    EXPECT_GE(s.issueStallCycles,
              s.dicMissStallCycles + s.indirectStallCycles);
}

TEST(Invariants, DelayedMachineCycleAccounting)
{
    cc::CompileOptions opts;
    opts.delaySlots = true;
    const auto r = cc::compile(workload("cwhet").source, opts);
    DelayedBranchCpu cpu(r.program);
    const DelayedStats& s = cpu.run();
    EXPECT_EQ(s.cycles, s.instructions + s.interlockStalls +
                            s.annulledSlots);
}

} // namespace
} // namespace crisp
