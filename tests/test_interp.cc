/**
 * @file
 * Functional interpreter tests: per-instruction semantics, stack
 * discipline, traces and histograms.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "interp/interpreter.hh"

namespace crisp
{
namespace
{

/** Assemble and run to halt; return the interpreter for inspection. */
Interpreter
runAsm(const std::string& body)
{
    const Program p = assemble(body);
    Interpreter interp(p);
    interp.run(10'000'000);
    EXPECT_TRUE(interp.halted());
    return interp;
}

TEST(Interp, MovAndArithmetic)
{
    auto m = runAsm(R"(
        .entry s
        .global a 0
        .global b 0
s:      mov a, 6
        mov b, a
        add b, 4
        sub a, 2
        mul b, a            ; b = 10 * 4
        halt
    )");
    EXPECT_EQ(m.wordAt("a"), 4);
    EXPECT_EQ(m.wordAt("b"), 40);
}

TEST(Interp, AccumulatorOps)
{
    auto m = runAsm(R"(
        .entry s
        .global r 0
s:      enter 2
        mov sp[0], 12
        and3 sp[0], 5       ; Accum = 12 & 5 = 4
        mov r, Accum
        add3 r, 1           ; Accum = 5
        mov r, Accum
        halt
    )");
    EXPECT_EQ(m.wordAt("r"), 5);
    EXPECT_EQ(m.accum(), 5);
}

TEST(Interp, CompareSetsOnlyFlag)
{
    auto m = runAsm(R"(
        .entry s
        .global r 1
s:      cmp.s< r, 5
        halt
    )");
    EXPECT_TRUE(m.flag());
    EXPECT_EQ(m.wordAt("r"), 1); // compare wrote nothing but the flag
}

TEST(Interp, ConditionalBranchBothSenses)
{
    auto m = runAsm(R"(
        .entry s
        .global t 0
        .global f 0
s:      cmp.= t, 0          ; true
        iftjmpy L1
        mov t, 99
L1:     cmp.!= t, 0         ; false
        iffjmpn L2
        mov f, 99
L2:     halt
    )");
    EXPECT_EQ(m.wordAt("t"), 0);
    EXPECT_EQ(m.wordAt("f"), 0);
}

TEST(Interp, EnterLeaveStackDiscipline)
{
    auto m = runAsm(R"(
        .entry s
        .global spv 0
s:      enter 3
        mov sp[0], 1
        mov sp[1], 2
        mov sp[2], 3
        add sp[0], sp[1]
        add sp[0], sp[2]
        mov spv, sp[0]
        leave 3
        halt
    )");
    EXPECT_EQ(m.wordAt("spv"), 6);
    // leave restored SP to the initial top of stack.
    EXPECT_EQ(m.sp(), (kDefaultMemBytes - kWordBytes) &
                          ~(kWordBytes - 1));
}

TEST(Interp, CallReturnRoundTrip)
{
    auto m = runAsm(R"(
        .entry s
        .global r 0
s:      call fn
        mov r, Accum
        halt
fn:     enter 1
        mov sp[0], 21
        add sp[0], sp[0]
        mov Accum, sp[0]
        return 1
    )");
    EXPECT_EQ(m.wordAt("r"), 42);
}

TEST(Interp, NestedCalls)
{
    auto m = runAsm(R"(
        .entry s
        .global depth 0
s:      call f1
        halt
f1:     enter 0
        add depth, 1
        call f2
        return 0
f2:     enter 0
        add depth, 1
        call f3
        return 0
f3:     enter 0
        add depth, 1
        return 0
    )");
    EXPECT_EQ(m.wordAt("depth"), 3);
}

TEST(Interp, ArgumentPassingConvention)
{
    // Caller: enter k, write args into the new area, call; callee sees
    // arg j at sp[frame + 1 + j].
    auto m = runAsm(R"(
        .entry s
        .global r 0
s:      enter 2
        mov sp[0], 30
        mov sp[1], 12
        call sub2
        leave 2
        mov r, Accum
        halt
sub2:   enter 1             ; one local
        mov sp[0], sp[2]    ; local = arg0  (frame 1 + ret -> args at 2)
        sub sp[0], sp[3]    ; local -= arg1
        mov Accum, sp[0]
        return 1
    )");
    EXPECT_EQ(m.wordAt("r"), 18);
}

TEST(Interp, IndirectOperands)
{
    auto m = runAsm(R"(
        .entry s
        .global cell 11
        .global r 0
s:      enter 1
        mov sp[0], cellp    ; pointer value
        add [sp[0]], 4      ; cell += 4 via pointer
        mov r, [sp[0]]
        halt
        .global cellp 0
    )");
    // cellp must hold &cell; patch it (the assembler has no &-of).
    // Easier: re-run with the pointer pre-set.
    const Program p = assemble(R"(
        .entry s
        .global cell 11
        .global cellp 0
        .global r 0
s:      enter 1
        mov sp[0], cellp
        add [sp[0]], 4
        mov r, [sp[0]]
        halt
    )");
    Interpreter interp(p);
    interp.memory().write32(*p.lookup("cellp"), *p.lookup("cell"));
    interp.run();
    EXPECT_EQ(interp.wordAt("cell"), 15);
    EXPECT_EQ(interp.wordAt("r"), 15);
    (void)m;
}

TEST(Interp, OpcodeHistogram)
{
    const Program p = assemble(R"(
        .entry s
        .global g 0
s:      mov g, 3
L:      sub g, 1
        cmp.s> g, 0
        iftjmpy L
        halt
    )");
    Interpreter interp(p);
    const InterpResult r = interp.run();
    EXPECT_EQ(r.count(Opcode::kMov), 1u);
    EXPECT_EQ(r.count(Opcode::kSub), 3u);
    EXPECT_EQ(r.count(Opcode::kCmpGt), 3u);
    EXPECT_EQ(r.count(Opcode::kIfTJmp), 3u);
    EXPECT_EQ(r.count(Opcode::kHalt), 1u);
    EXPECT_EQ(r.instructions, 11u);
    EXPECT_EQ(r.branches, 3u);
    EXPECT_EQ(r.shortBranches, 3u);

    const std::string table = r.histogramTable();
    EXPECT_NE(table.find("Total of 11 instructions"), std::string::npos);
}

TEST(Interp, BranchTraceRecords)
{
    const Program p = assemble(R"(
        .entry s
        .global g 0
s:      mov g, 2
L:      sub g, 1
        cmp.s> g, 0
        iftjmpy L
        halt
    )");
    Interpreter interp(p);
    BranchTraceRecorder rec;
    interp.run(1'000'000, &rec);

    ASSERT_EQ(rec.events.size(), 2u);
    EXPECT_TRUE(rec.events[0].conditional);
    EXPECT_TRUE(rec.events[0].taken);
    EXPECT_TRUE(rec.events[0].predictTaken);
    EXPECT_FALSE(rec.events[1].taken);
    EXPECT_EQ(rec.events[0].pc, rec.events[1].pc);
    EXPECT_EQ(rec.events[0].target, *p.lookup("L"));
    EXPECT_TRUE(rec.events[0].shortForm);
}

TEST(Interp, StepLimitStopsRunawayPrograms)
{
    const Program p = assemble(R"(
        .entry s
s:      jmp s
    )");
    Interpreter interp(p);
    const InterpResult r = interp.run(1000);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.instructions, 1000u);
}

TEST(Interp, UnknownSymbolThrows)
{
    const Program p = assemble(".entry s\ns: halt\n");
    Interpreter interp(p);
    EXPECT_THROW(interp.wordAt("missing"), CrispError);
}

TEST(Interp, MemoryBoundsChecked)
{
    const Program p = assemble(R"(
        .entry s
s:      mov @0x3FFFF, 1     ; last byte: a 32-bit write must fault
        halt
    )");
    Interpreter interp(p);
    EXPECT_THROW(interp.run(), CrispError);
}

TEST(MemoryImage, LittleEndian)
{
    Program p;
    p.text = {0x1234};
    MemoryImage m(p);
    m.write32(0x8000, 0xA1B2C3D4u);
    EXPECT_EQ(m.read8(0x8000), 0xD4);
    EXPECT_EQ(m.read8(0x8003), 0xA1);
    EXPECT_EQ(m.read16(0x8000), 0xC3D4);
    EXPECT_EQ(m.read32(0x8000), 0xA1B2C3D4u);
    // The text parcel landed at the text base.
    EXPECT_EQ(m.read16(kTextBase), 0x1234);
}

} // namespace
} // namespace crisp
