/**
 * @file
 * crispcc code-generation semantics: compile-and-run checks against
 * directly computed expectations. Every test runs on the functional
 * interpreter (the pipeline is covered by the equivalence suite).
 */

#include <gtest/gtest.h>

#include "cc/compiler.hh"
#include "interp/interpreter.hh"

namespace crisp
{
namespace
{

/** Compile, run, and return main's return value (the accumulator). */
Word
ret(const std::string& src, const cc::CompileOptions& opts = {})
{
    const auto r = cc::compile(src, opts);
    Interpreter interp(r.program);
    const InterpResult res = interp.run(50'000'000);
    EXPECT_TRUE(res.halted);
    return interp.accum();
}

Word
global(const std::string& src, const std::string& name)
{
    const auto r = cc::compile(src);
    Interpreter interp(r.program);
    EXPECT_TRUE(interp.run(50'000'000).halted);
    return interp.wordAt(name);
}

TEST(Codegen, ReturnConstant)
{
    EXPECT_EQ(ret("int main() { return 42; }"), 42);
    EXPECT_EQ(ret("int main() { return -7; }"), -7);
}

TEST(Codegen, ArithmeticOperators)
{
    EXPECT_EQ(ret("int main() { return 7 + 3; }"), 10);
    EXPECT_EQ(ret("int a; int main() { a = 7; return a - 10; }"), -3);
    EXPECT_EQ(ret("int a; int main() { a = 6; return a * 7; }"), 42);
    EXPECT_EQ(ret("int a; int main() { a = 45; return a / 7; }"), 6);
    EXPECT_EQ(ret("int a; int main() { a = 45; return a % 7; }"), 3);
    EXPECT_EQ(ret("int a; int main() { a = -45; return a / 7; }"), -6);
    EXPECT_EQ(ret("int a; int main() { a = -45; return a % 7; }"), -3);
}

TEST(Codegen, DivisionByZeroIsDefined)
{
    // The ISA defines x/0 == 0 (so random programs cannot fault).
    EXPECT_EQ(ret("int a; int main() { a = 0; return 5 / a; }"), 0);
    EXPECT_EQ(ret("int a; int main() { a = 0; return 5 % a; }"), 0);
}

TEST(Codegen, BitwiseAndShifts)
{
    EXPECT_EQ(ret("int a; int main() { a = 12; return a & 10; }"), 8);
    EXPECT_EQ(ret("int a; int main() { a = 12; return a | 3; }"), 15);
    EXPECT_EQ(ret("int a; int main() { a = 12; return a ^ 10; }"), 6);
    EXPECT_EQ(ret("int a; int main() { a = 3; return a << 4; }"), 48);
    EXPECT_EQ(ret("int a; int main() { a = 48; return a >> 4; }"), 3);
    // Logical right shift (documented divergence from C).
    EXPECT_EQ(ret("int a; int main() { a = -1; return a >> 28; }"), 15);
    EXPECT_EQ(ret("int a; int main() { a = 5; return ~a; }"), -6);
    EXPECT_EQ(ret("int a; int main() { a = 5; return -a; }"), -5);
}

TEST(Codegen, ComparisonsProduceBooleans)
{
    EXPECT_EQ(ret("int a; int main() { a = 3; return a < 5; }"), 1);
    EXPECT_EQ(ret("int a; int main() { a = 7; return a < 5; }"), 0);
    EXPECT_EQ(ret("int a; int main() { a = 5; return a <= 5; }"), 1);
    EXPECT_EQ(ret("int a; int main() { a = 5; return a == 5; }"), 1);
    EXPECT_EQ(ret("int a; int main() { a = 5; return a != 5; }"), 0);
    EXPECT_EQ(ret("int a; int main() { a = 9; return a >= 10; }"), 0);
    EXPECT_EQ(ret("int a; int main() { a = 9; return !a; }"), 0);
    EXPECT_EQ(ret("int a; int main() { a = 0; return !a; }"), 1);
}

TEST(Codegen, LogicalShortCircuit)
{
    // The right side must not execute when the left decides.
    const char* src = R"(
        int hits;
        int bump() { hits++; return 1; }
        int main() {
            int r = 0;
            if (0 && bump()) r = 1;
            if (1 || bump()) r += 2;
            if (1 && bump()) r += 4;
            if (0 || bump()) r += 8;
            return r;
        }
    )";
    EXPECT_EQ(ret(src), 14);
    EXPECT_EQ(global(src, "hits"), 2);
}

TEST(Codegen, CompoundAssignments)
{
    const char* src = R"(
        int main() {
            int x = 10;
            x += 5; x -= 3; x *= 2; x /= 4; x %= 4;
            x <<= 3; x |= 1; x ^= 2; x &= 31;
            return x;
        }
    )";
    int x = 10;
    x += 5; x -= 3; x *= 2; x /= 4; x %= 4;
    x <<= 3; x |= 1; x ^= 2; x &= 31;
    EXPECT_EQ(ret(src), x);
}

TEST(Codegen, IncrementDecrementValueSemantics)
{
    EXPECT_EQ(ret("int main() { int x = 5; return x++; }"), 5);
    EXPECT_EQ(ret("int main() { int x = 5; return ++x; }"), 6);
    EXPECT_EQ(ret("int main() { int x = 5; return x--; }"), 5);
    EXPECT_EQ(ret("int main() { int x = 5; return --x; }"), 4);
    EXPECT_EQ(ret("int main() { int x = 5; x++; ++x; return x; }"), 7);
    EXPECT_EQ(ret("int main() { int x = 5; return x++ + ++x; }"), 12);
}

TEST(Codegen, AssignmentChains)
{
    EXPECT_EQ(ret(R"(
        int a; int b; int c;
        int main() { a = b = c = 9; return a + b + c; }
    )"),
              27);
}

TEST(Codegen, IfElseLadders)
{
    const char* tmpl = R"(
        int classify(int x) {
            if (x < 0) return -1;
            else if (x == 0) return 0;
            else if (x < 10) return 1;
            else return 2;
        }
        int main() { return classify(%); }
    )";
    auto run = [&](int v) {
        std::string s = tmpl;
        s.replace(s.find('%'), 1, std::to_string(v));
        return ret(s);
    };
    EXPECT_EQ(run(-5), -1);
    EXPECT_EQ(run(0), 0);
    EXPECT_EQ(run(5), 1);
    EXPECT_EQ(run(50), 2);
}

TEST(Codegen, Loops)
{
    EXPECT_EQ(ret(R"(
        int main() {
            int s = 0;
            for (int i = 1; i <= 10; i++) s += i;
            return s;
        }
    )"),
              55);
    EXPECT_EQ(ret(R"(
        int main() {
            int s = 0; int i = 10;
            while (i > 0) { s += i; i--; }
            return s;
        }
    )"),
              55);
    EXPECT_EQ(ret(R"(
        int main() {
            int s = 0; int i = 0;
            do { s += i; i++; } while (i < 5);
            return s;
        }
    )"),
              10);
    // A while loop whose body never runs.
    EXPECT_EQ(ret(R"(
        int main() {
            int s = 7;
            while (s < 0) s = 100;
            return s;
        }
    )"),
              7);
    // A for loop with zero trips (guard needed: not provable).
    EXPECT_EQ(ret(R"(
        int n;
        int main() {
            int s = 3;
            for (int i = 0; i < n; i++) s = 100;
            return s;
        }
    )"),
              3);
}

TEST(Codegen, BreakAndContinue)
{
    EXPECT_EQ(ret(R"(
        int main() {
            int s = 0;
            for (int i = 0; i < 100; i++) {
                if (i == 5) break;
                s += i;
            }
            return s;
        }
    )"),
              10);
    EXPECT_EQ(ret(R"(
        int main() {
            int s = 0;
            for (int i = 0; i < 10; i++) {
                if (i & 1) continue;
                s += i;
            }
            return s;
        }
    )"),
              20);
    EXPECT_EQ(ret(R"(
        int main() {
            int s = 0; int i = 0;
            while (1) {
                i++;
                if (i > 4) break;
                s += i;
            }
            return s;
        }
    )"),
              10);
}

TEST(Codegen, NestedLoops)
{
    EXPECT_EQ(ret(R"(
        int main() {
            int s = 0;
            for (int i = 0; i < 5; i++)
                for (int j = 0; j < 5; j++)
                    if (j > i) s++;
            return s;
        }
    )"),
              10);
}

TEST(Codegen, GlobalArrays)
{
    EXPECT_EQ(ret(R"(
        int a[10];
        int main() {
            for (int i = 0; i < 10; i++) a[i] = i * i;
            int s = 0;
            for (int i = 0; i < 10; i++) s += a[i];
            return s;
        }
    )"),
              285);
    // Computed indices and element updates.
    EXPECT_EQ(ret(R"(
        int a[8];
        int main() {
            a[3] = 5;
            a[3] += 2;
            a[a[3] & 7] = 9;    // a[7] = 9
            return a[3] * 10 + a[7];
        }
    )"),
              79);
}

TEST(Codegen, FunctionsAndRecursion)
{
    EXPECT_EQ(ret(R"(
        int fact(int n) {
            if (n <= 1) return 1;
            return n * fact(n - 1);
        }
        int main() { return fact(6); }
    )"),
              720);
    EXPECT_EQ(ret(R"(
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(12); }
    )"),
              144);
}

TEST(Codegen, ArgumentOrderAndCount)
{
    EXPECT_EQ(ret(R"(
        int f(int a, int b, int c, int d) {
            return a * 1000 + b * 100 + c * 10 + d;
        }
        int main() { return f(1, 2, 3, 4); }
    )"),
              1234);
}

TEST(Codegen, NestedCallsAsArguments)
{
    EXPECT_EQ(ret(R"(
        int add(int a, int b) { return a + b; }
        int main() { return add(add(1, 2), add(3, add(4, 5))); }
    )"),
              15);
}

TEST(Codegen, ArrayElementsAsArguments)
{
    EXPECT_EQ(ret(R"(
        int a[4];
        int sub(int x, int y) { return x - y; }
        int main() {
            a[0] = 50; a[1] = 8;
            return sub(a[0], a[1]);
        }
    )"),
              42);
}

TEST(Codegen, VoidFunctions)
{
    EXPECT_EQ(ret(R"(
        int g;
        void bump() { g += 3; }
        int main() { bump(); bump(); return g; }
    )"),
              6);
}

TEST(Codegen, ScopeShadowing)
{
    EXPECT_EQ(ret(R"(
        int x = 100;
        int main() {
            int x = 1;
            {
                int x = 2;
                x++;
            }
            return x;
        }
    )"),
              1);
}

TEST(Codegen, GlobalsKeepValuesAcrossCalls)
{
    EXPECT_EQ(global(R"(
        int counter;
        int tick() { counter++; return counter; }
        int main() {
            for (int i = 0; i < 7; i++) tick();
            return counter;
        }
    )",
                     "counter"),
              7);
}

TEST(Codegen, ConstantFolding)
{
    // Folded expressions produce single immediates; behaviourally the
    // result is what matters.
    EXPECT_EQ(ret("int main() { return 2 + 3 * 4 - (10 / 2); }"), 9);
    EXPECT_EQ(ret("int main() { return (1 << 10) | 1; }"), 1025);
    EXPECT_EQ(ret("int main() { return 5 > 3 && 2 < 1; }"), 0);
}

TEST(Codegen, FuseAssignPatterns)
{
    // `x = x + y` and `x = y + x` must behave identically to `x += y`.
    EXPECT_EQ(ret("int x; int main() { x = 4; x = x + 3; return x; }"),
              7);
    EXPECT_EQ(ret("int x; int main() { x = 4; x = 3 + x; return x; }"),
              7);
    EXPECT_EQ(ret("int x; int main() { x = 4; x = x - 3; return x; }"),
              1);
    // Non-commutative reversed form must NOT fuse: x = 3 - x.
    EXPECT_EQ(ret("int x; int main() { x = 4; x = 3 - x; return x; }"),
              -1);
}

TEST(Codegen, WhetstoneStyleExpression)
{
    const char* src = R"(
        int main() {
            int t = 0;
            for (int i = 1; i <= 100; i++)
                t = (t + i * i - (i >> 1)) % 10007;
            return t;
        }
    )";
    int t = 0;
    for (int i = 1; i <= 100; ++i)
        t = (t + i * i - (i >> 1)) % 10007;
    EXPECT_EQ(ret(src), t);
}

TEST(Codegen, SemanticErrors)
{
    EXPECT_THROW(cc::compile("int main() { return x; }"), CrispError);
    EXPECT_THROW(cc::compile("int main() { return f(1); }"), CrispError);
    EXPECT_THROW(cc::compile(
                     "int f(int a) { return a; }\n"
                     "int main() { return f(1, 2); }"),
                 CrispError);
    EXPECT_THROW(cc::compile("int a[4]; int main() { return a; }"),
                 CrispError);
    EXPECT_THROW(cc::compile("int x; int main() { return x[0]; }"),
                 CrispError);
    EXPECT_THROW(cc::compile("int x; int x; int main() { return 0; }"),
                 CrispError);
    EXPECT_THROW(cc::compile("int main() { break; }"), CrispError);
    EXPECT_THROW(cc::compile("int noMain() { return 0; }"), CrispError);
}

TEST(Codegen, VoidFunctionInExpressionRejected)
{
    EXPECT_THROW(cc::compile(R"(
        int g;
        void f() { g++; }
        int main() { return f() + 1; }
    )"),
                 CrispError);
    // Statement context is fine.
    EXPECT_NO_THROW(cc::compile(R"(
        int g;
        void f() { g++; }
        int main() { f(); return g; }
    )"));
}

TEST(Codegen, LocalArraysRejectedWithClearMessage)
{
    // The ISA has no SP-relative address-of; local arrays are not
    // supported (documented limitation).
    try {
        cc::compile("int main() { int a[4]; return 0; }");
        FAIL() << "expected an error";
    } catch (const CrispError&) {
        SUCCEED();
    }
}

} // namespace
} // namespace crisp
