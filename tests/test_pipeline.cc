/**
 * @file
 * Cycle-accurate tests of the CRISP pipeline model: folded branches
 * execute in zero time, the mispredict staircase matches the paper,
 * spreading eliminates prediction, indirect transfers pay two bubbles.
 *
 * Absolute cycle counts include startup (crt0 + cold DIC misses), so
 * steady-state costs are measured differentially: run a loop at two
 * trip counts and divide the cycle delta by the iteration delta.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "asm/assembler.hh"
#include "interp/interpreter.hh"
#include "sim/cpu.hh"

namespace crisp
{
namespace
{

/** Replace every "%N%" in @p tmpl with @p n. */
std::string
withCount(const std::string& tmpl, int n)
{
    std::string out = tmpl;
    const std::string key = "%N%";
    std::size_t at = 0;
    while ((at = out.find(key, at)) != std::string::npos)
        out.replace(at, key.size(), std::to_string(n));
    return out;
}

SimStats
runAsm(const std::string& src, const SimConfig& cfg = {})
{
    const Program p = assemble(src);
    CrispCpu cpu(p, cfg);
    SimStats s = cpu.run();
    EXPECT_TRUE(s.halted);
    return s;
}

/** Steady-state cycles per loop iteration (startup cancelled out). */
double
perIter(const std::string& tmpl, const SimConfig& cfg = {},
        int n1 = 500, int n2 = 1500)
{
    const SimStats a = runAsm(withCount(tmpl, n1), cfg);
    const SimStats b = runAsm(withCount(tmpl, n2), cfg);
    return static_cast<double>(b.cycles - a.cycles) / (n2 - n1);
}

/** Steady-state issued instructions per iteration. */
double
issuedPerIter(const std::string& tmpl, const SimConfig& cfg = {},
              int n1 = 500, int n2 = 1500)
{
    const SimStats a = runAsm(withCount(tmpl, n1), cfg);
    const SimStats b = runAsm(withCount(tmpl, n2), cfg);
    return static_cast<double>(b.issued - a.issued) / (n2 - n1);
}

// A simple counted loop with a predicted-taken backedge.
const char* kCountedLoop = R"(
    .entry s
    .local i 0
s:  enter 1
    mov i, 0
top:
    add i, 1
    cmp.s< i, %N%
    iftjmpy top
    halt
)";

TEST(Pipeline, PredictedBackedgeLoopRunsAtOneIssuePerCycle)
{
    // add + (cmp folded-with-branch) = 2 issues per iteration, and the
    // correctly predicted folded backedge costs zero cycles.
    EXPECT_DOUBLE_EQ(issuedPerIter(kCountedLoop), 2.0);
    EXPECT_DOUBLE_EQ(perIter(kCountedLoop), 2.0);
}

TEST(Pipeline, FoldedBranchesVanishFromIssueStream)
{
    const SimStats s = runAsm(withCount(kCountedLoop, 100));
    // One folded conditional branch per iteration.
    EXPECT_EQ(s.foldedBranches, 100u);
    EXPECT_EQ(s.apparent - s.issued, s.foldedBranches);
}

TEST(Pipeline, UnfoldedLoopPaysOneSlotPerBranch)
{
    SimConfig nofold;
    nofold.foldPolicy = FoldPolicy::kNone;
    // Same loop: 3 issues per iteration (add, cmp, branch), still no
    // bubbles because the backedge is predicted correctly.
    EXPECT_DOUBLE_EQ(issuedPerIter(kCountedLoop, nofold), 3.0);
    EXPECT_DOUBLE_EQ(perIter(kCountedLoop, nofold), 3.0);
}

TEST(Pipeline, UncondFoldedBranchZeroCost)
{
    // Loop body with an unconditional jump inside: the jmp folds and
    // costs nothing.
    const char* tmpl = R"(
        .entry s
        .local i 0
s:      enter 1
        mov i, 0
top:
        add i, 1
        jmp join
join:
        cmp.s< i, %N%
        iftjmpy top
        halt
    )";
    // add (+folded jmp) + cmp (+folded backedge) = 2 issues/iter.
    EXPECT_DOUBLE_EQ(issuedPerIter(tmpl), 2.0);
    EXPECT_DOUBLE_EQ(perIter(tmpl), 2.0);
}

/**
 * The paper's staircase: a folded conditional branch whose compare is
 * k issue slots ahead loses 3/2/1/0 cycles on a mispredict.
 */
class MispredictStaircase : public ::testing::TestWithParam<int>
{
};

TEST_P(MispredictStaircase, FoldedPenaltyMatchesPaper)
{
    const int k = GetParam();
    std::ostringstream os;
    os << ".entry s\n.local i 0\n.local f 1\n"
       << "s:  enter 2\n    mov i, 0\n"
       << "top:\n    add i, 1\n    cmp.s< i, %N%\n";
    for (int j = 0; j < k; ++j)
        os << "    add f, 1\n";
    os << "    iftjmpn top\n    halt\n"; // bit says not-taken: wrong

    const double issued = issuedPerIter(os.str());
    const double cycles = perIter(os.str());
    const int expected_penalty[] = {3, 2, 1, 0, 0};
    EXPECT_DOUBLE_EQ(issued, 2.0 + k);
    EXPECT_DOUBLE_EQ(cycles - issued, expected_penalty[k]);
}

INSTANTIATE_TEST_SUITE_P(K, MispredictStaircase, ::testing::Range(0, 5));

class LonePenalty : public ::testing::TestWithParam<int>
{
};

TEST_P(LonePenalty, UnfoldedBranchVerifiesAtItsOwnRR)
{
    const int k = GetParam();
    std::ostringstream os;
    os << ".entry s\n.local i 0\n.local f 1\n"
       << "s:  enter 2\n    mov i, 0\n"
       << "top:\n    add i, 1\n    cmp.s< i, %N%\n";
    for (int j = 0; j < k; ++j)
        os << "    add f, 1\n";
    os << "    iftjmpn top\n    halt\n";

    SimConfig nofold;
    nofold.foldPolicy = FoldPolicy::kNone;
    const double issued = issuedPerIter(os.str(), nofold);
    const double cycles = perIter(os.str(), nofold);
    // Lone branches resolve in their own RR stage: 3 cycles lost until
    // the compare is far enough ahead that the flag is final at issue.
    const int expected_penalty[] = {3, 3, 0, 0, 0};
    EXPECT_DOUBLE_EQ(issued, 3.0 + k);
    EXPECT_DOUBLE_EQ(cycles - issued, expected_penalty[k]);
}

INSTANTIATE_TEST_SUITE_P(K, LonePenalty, ::testing::Range(0, 5));

TEST(Pipeline, SpreadingMakesWrongBitFree)
{
    // Three useful instructions between cmp and branch: the branch
    // outcome is known at issue; the wrong static bit costs nothing.
    const char* tmpl = R"(
        .entry s
        .local i 0
        .local a 1
        .local b 2
        .local c 3
s:      enter 4
        mov i, 0
top:
        add i, 1
        cmp.s< i, %N%
        add a, 1
        add b, 1
        add c, 1
        iftjmpn top
        halt
    )";
    EXPECT_DOUBLE_EQ(perIter(tmpl), 5.0); // = issued, zero penalty

    const SimStats s = runAsm(withCount(tmpl, 200));
    EXPECT_GE(s.resolvedAtIssue, 199u);
    EXPECT_LE(s.mispredicts, 1u);
}

TEST(Pipeline, StatsDistinguishSpeculatedFromResolved)
{
    const SimStats s = runAsm(withCount(kCountedLoop, 100));
    // cmp is folded with the branch itself: always speculative.
    EXPECT_EQ(s.speculated, 100u);
    EXPECT_EQ(s.resolvedAtIssue, 0u);
    EXPECT_EQ(s.condBranches, 100u);
    // Predicted taken, taken 99 times, falls through once at exit.
    EXPECT_EQ(s.mispredicts, 1u);
}

TEST(Pipeline, RespectPredictionBitOff)
{
    SimConfig cfg;
    cfg.respectPredictionBit = false; // hardware predicts not-taken
    const double cycles = perIter(kCountedLoop, cfg);
    // Backedge now mispredicts every iteration: 2 issues + 3 penalty.
    EXPECT_DOUBLE_EQ(cycles, 5.0);
}

TEST(Pipeline, ReturnCostsTwoBubbles)
{
    // Returns read their target from the stack at retirement: the
    // paper's stack-cache / data_in path for indirect transfers.
    const char* call_tmpl = R"(
        .entry s
        .local i 0
s:      enter 1
        mov i, 0
top:
        add i, 1
        call fn
        cmp.s< i, %N%
        iftjmpy top
        halt
fn:     enter 0
        return 0
    )";
    const double cycles = perIter(call_tmpl);
    const double issued = issuedPerIter(call_tmpl);
    // Per iteration: add, call, enter, return, cmp(+folded backedge)
    // = 5 issues; the return's target is read at retirement: 2 bubbles.
    EXPECT_DOUBLE_EQ(issued, 5.0);
    EXPECT_DOUBLE_EQ(cycles - issued, 2.0);

    const SimStats s = runAsm(withCount(call_tmpl, 100));
    EXPECT_GE(s.indirectStallCycles, 2u * 100u);
    EXPECT_LE(s.indirectStallCycles, 2u * 100u + 4u);
}

TEST(Pipeline, CallTargetKnownAtIssueNoBubble)
{
    // An unconditional call with a static target adds only its own
    // issue slot (+ the callee's enter/return cost), no fetch bubble on
    // the way in.
    const char* tmpl = R"(
        .entry s
        .local i 0
s:      enter 1
        mov i, 0
top:
        add i, 1
        cmp.s< i, %N%
        iftjmpy top
        halt
    )";
    const char* tmpl_with_jmp = R"(
        .entry s
        .local i 0
s:      enter 1
        mov i, 0
top:
        add i, 1
        jmp mid
mid:
        cmp.s< i, %N%
        iftjmpy top
        halt
    )";
    // The folded jmp adds zero cycles.
    EXPECT_DOUBLE_EQ(perIter(tmpl), perIter(tmpl_with_jmp));
}

TEST(Pipeline, WrongPathEffectsNeverRetire)
{
    // The taken path of a mispredicted branch writes `poison`; the
    // architectural result must be unaffected.
    const SimStats s = runAsm(R"(
        .entry s
        .global poison 0
        .local i 0
s:      enter 1
        mov i, 5
        cmp.s< i, 3          ; false
        iftjmpy bad          ; predicted taken, actually not taken
        jmp good
bad:    mov poison, 1
        halt
good:   halt
    )");
    EXPECT_GE(s.mispredicts, 1u);

    const Program p = assemble(R"(
        .entry s
        .global poison 0
        .local i 0
s:      enter 1
        mov i, 5
        cmp.s< i, 3
        iftjmpy bad
        jmp good
bad:    mov poison, 1
        halt
good:   halt
    )");
    CrispCpu cpu(p);
    cpu.run();
    EXPECT_EQ(cpu.wordAt("poison"), 0);
}

TEST(Pipeline, WarmWrongPathGetsSquashed)
{
    // An alternating branch keeps both paths warm in the DIC, so the
    // wrong path actually enters the pipeline and is squashed.
    const SimStats s = runAsm(withCount(R"(
        .entry s
        .global g 0
        .local i 0
s:      enter 1
        mov i, 0
top:    add i, 1
        and3 i, 1
        cmp.= Accum, 0
        iftjmpy even
        add g, 1
        jmp join
even:   add g, 2
join:   cmp.s< i, %N%
        iftjmpy top
        halt
    )", 100));
    EXPECT_GE(s.mispredicts, 49u);
    EXPECT_GT(s.squashed, 50u);
    EXPECT_EQ(s.apparent - s.issued, s.foldedBranches);
}

TEST(Pipeline, DicThrashOnLargeLoop)
{
    // A loop body larger than a small DIC thrashes; a big DIC does not.
    std::string body;
    for (int i = 0; i < 40; ++i)
        body += "    add sp[1], 1\n"; // 40 one-parcel instructions
    const std::string tmpl = ".entry s\n.local i 0\ns:  enter 2\n"
                             "    mov i, 0\ntop:\n    add i, 1\n" +
                             body +
                             "    cmp.s< i, %N%\n    iftjmpy top\n"
                             "    halt\n";
    SimConfig small;
    small.dicEntries = 8;
    SimConfig big;
    big.dicEntries = 256;
    const SimStats ssmall = runAsm(withCount(tmpl, 200), small);
    const SimStats sbig = runAsm(withCount(tmpl, 200), big);
    EXPECT_GT(ssmall.dicMissStallCycles, 100u);
    EXPECT_GT(sbig.cycles, 0u);
    EXPECT_LT(sbig.dicMissStallCycles, ssmall.dicMissStallCycles / 4);
    EXPECT_LT(sbig.cycles, ssmall.cycles);
    // Architectural behaviour identical either way.
    EXPECT_EQ(ssmall.apparent, sbig.apparent);
}

TEST(Pipeline, MaxCyclesGuardStopsRunaways)
{
    SimConfig cfg;
    cfg.maxCycles = 5000;
    const Program p = assemble(".entry s\ns: jmp s\n");
    CrispCpu cpu(p, cfg);
    const SimStats& s = cpu.run();
    EXPECT_FALSE(s.halted);
    EXPECT_EQ(s.cycles, 5000u);
}

TEST(Pipeline, RetireOrderMatchesInterpreter)
{
    const char* src = R"(
        .entry s
        .global g 0
        .local i 0
s:      enter 1
        mov i, 0
top:    add i, 1
        and3 i, 1
        cmp.= Accum, 0
        iftjmpn odd
        add g, 2
        jmp join
odd:    add g, 5
join:   cmp.s< i, 40
        iftjmpy top
        halt
    )";
    const Program p = assemble(src);

    struct Recorder : ExecObserver
    {
        std::vector<std::pair<Addr, Opcode>> seq;
        void
        onInstruction(Addr pc, Opcode op) override
        {
            seq.emplace_back(pc, op);
        }
    };

    Recorder ri;
    Interpreter interp(p);
    interp.run(1'000'000, &ri);

    Recorder rs;
    CrispCpu cpu(p);
    cpu.run(&rs);

    ASSERT_EQ(ri.seq.size(), rs.seq.size());
    EXPECT_EQ(ri.seq, rs.seq);
    EXPECT_EQ(cpu.wordAt("g"), interp.wordAt("g"));
    EXPECT_EQ(cpu.flag(), interp.flag());
    EXPECT_EQ(cpu.accum(), interp.accum());
    EXPECT_EQ(cpu.sp(), interp.sp());
}

TEST(Pipeline, MemoryLatencyOnlyAffectsStartupForCachedLoops)
{
    SimConfig fast;
    fast.memLatency = 1;
    SimConfig slow;
    slow.memLatency = 20;
    // Steady state identical; only the (cancelled) startup differs.
    EXPECT_DOUBLE_EQ(perIter(kCountedLoop, fast),
                     perIter(kCountedLoop, slow));
    // But total cycles differ because of cold misses.
    const SimStats a = runAsm(withCount(kCountedLoop, 100), fast);
    const SimStats b = runAsm(withCount(kCountedLoop, 100), slow);
    EXPECT_LT(a.cycles, b.cycles);
}

TEST(Pipeline, HaltDrainsPipeline)
{
    const SimStats s = runAsm(R"(
        .entry s
        .global g 0
s:      mov g, 1
        add g, 2
        halt
    )");
    EXPECT_TRUE(s.halted);
    EXPECT_EQ(s.issued, 3u);
    EXPECT_EQ(s.apparent, 3u);
}

} // namespace
} // namespace crisp
