/**
 * @file
 * Direct unit tests of the Prefetch and Decode Unit: streaming, demand
 * redirects, in-flight fetch discarding, self-tail pausing and the
 * decode window.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "sim/dic.hh"
#include "sim/pdu.hh"

namespace crisp
{
namespace
{

struct PduRig
{
    explicit PduRig(const std::string& src, SimConfig cfg = {})
        : prog(assemble(src)), config(cfg), dic(config.dicEntries),
          pdu(prog, config, dic, stats)
    {}

    /** Tick until the DIC holds @p pc or @p limit cycles pass. */
    bool
    tickUntilCached(Addr pc, int limit = 200)
    {
        for (int i = 0; i < limit; ++i) {
            if (dic.lookup(pc) != nullptr)
                return true;
            pdu.tick(static_cast<std::uint64_t>(now++));
        }
        return dic.lookup(pc) != nullptr;
    }

    void
    tickN(int n)
    {
        for (int i = 0; i < n; ++i)
            pdu.tick(static_cast<std::uint64_t>(now++));
    }

    Program prog;
    SimConfig config;
    DecodedCache dic;
    SimStats stats;
    Pdu pdu;
    int now = 0;
};

const char* kStraight = R"(
    .entry s
s:  mov sp[0], 1
    add sp[0], 2
    sub sp[0], 3
    halt
)";

TEST(Pdu, StreamsSequentialCodeIntoTheDic)
{
    PduRig rig(kStraight);
    EXPECT_TRUE(rig.tickUntilCached(rig.prog.entry));
    // Streaming continues past the first instruction without demands.
    const Addr second =
        rig.prog.entry + rig.prog.fetch(rig.prog.entry).lengthBytes();
    EXPECT_TRUE(rig.tickUntilCached(second));
    EXPECT_GT(rig.stats.pduFills, 0u);
    EXPECT_GT(rig.stats.memFetches, 0u);
}

TEST(Pdu, FirstFillTimingMatchesMemoryLatency)
{
    SimConfig cfg;
    cfg.memLatency = 5;
    PduRig rig(kStraight, cfg);
    int cycles = 0;
    while (rig.dic.lookup(rig.prog.entry) == nullptr && cycles < 100) {
        rig.pdu.tick(static_cast<std::uint64_t>(rig.now++));
        ++cycles;
    }
    // fetch (latency) + decode + fill stages.
    EXPECT_GE(cycles, 5 + 2);
    EXPECT_LE(cycles, 5 + 4);
}

TEST(Pdu, DemandRedirectsTheStream)
{
    // Code with a far-away block that sequential streaming from the
    // entry would not reach quickly.
    std::string src = ".entry s\ns:  mov sp[0], 1\n";
    for (int i = 0; i < 300; ++i)
        src += "    nop\n";
    src += "far:\n    add sp[0], 2\n    halt\n";

    PduRig rig(src);
    const Addr far = *rig.prog.lookup("far");
    rig.tickN(5); // start streaming from the entry
    rig.pdu.demand(far);
    EXPECT_TRUE(rig.tickUntilCached(far, 50));
}

TEST(Pdu, RedirectDiscardsStaleInFlightFetch)
{
    std::string src = ".entry s\ns:  mov sp[0], 1\n";
    for (int i = 0; i < 100; ++i)
        src += "    nop\n";
    src += "far:\n    add sp[0], 2\n    halt\n";

    SimConfig cfg;
    cfg.memLatency = 10; // a fetch is in flight for a long time
    PduRig rig(src, cfg);
    rig.tickN(2); // fetch of the entry block is now in flight
    const Addr far = *rig.prog.lookup("far");
    rig.pdu.demand(far); // redirect while busy
    ASSERT_TRUE(rig.tickUntilCached(far, 100));
    // The entry at `far` must decode from the right bytes (the stale
    // entry-block fetch was discarded, not appended).
    const DecodedInst* di = rig.dic.lookup(far);
    ASSERT_NE(di, nullptr);
    EXPECT_EQ(di->body.op, Opcode::kAdd);
}

TEST(Pdu, PausesWhenWrappingIntoWarmCode)
{
    // A short loop: the stream follows the backedge, wraps into its
    // own previously decoded entries, and parks.
    const char* src = R"(
        .entry s
s:      mov sp[0], 0
top:    add sp[0], 1
        cmp.s< sp[0], 10
        iftjmpy top
        halt
    )";
    PduRig rig(src);
    rig.tickN(120);
    const std::uint64_t fills = rig.stats.pduFills;
    rig.tickN(60);
    // No further fills once parked.
    EXPECT_EQ(rig.stats.pduFills, fills);
}

TEST(Pdu, FollowsPredictedTakenBranches)
{
    // An always-taken (predicted-taken) branch: the stream must follow
    // it to the target rather than decoding the dead fall-through.
    const char* src = R"(
        .entry s
        .global g 0
s:      mov g, 1
        jmp target
        mov g, 99           ; dead code
        mov g, 98
target: add g, 2
        halt
    )";
    PduRig rig(src);
    const Addr target = *rig.prog.lookup("target");
    EXPECT_TRUE(rig.tickUntilCached(target, 60));
}

TEST(Pdu, TruncatedInstructionThrows)
{
    // Hand-build a program whose final parcel starts a 3-parcel
    // instruction that runs off the end of the text.
    Program prog;
    Parcel buf[kMaxParcels];
    encode(Instruction::mov(Operand::abs(0x9000), Operand::imm(5)), buf);
    prog.text = {buf[0]}; // first parcel only
    prog.entry = prog.textBase;

    SimConfig cfg;
    SimStats stats;
    DecodedCache dic(cfg.dicEntries);
    Pdu pdu(prog, cfg, dic, stats);
    bool threw = false;
    try {
        for (int i = 0; i < 100; ++i)
            pdu.tick(static_cast<std::uint64_t>(i));
    } catch (const CrispError&) {
        threw = true;
    }
    EXPECT_TRUE(threw);
}

TEST(Pdu, QueueNeverOverflows)
{
    // Long straight-line code; with the smallest legal queue the
    // prefetcher must clip fetch sizes rather than overfill.
    std::string src = ".entry s\ns:\n";
    for (int i = 0; i < 60; ++i)
        src += "    add sp[0], 1\n";
    src += "    halt\n";
    SimConfig cfg;
    cfg.queueParcels = 6; // decode window max (5+1) still fits
    PduRig rig(src, cfg);
    EXPECT_NO_THROW(rig.tickN(300));
    EXPECT_GT(rig.stats.pduFills, 30u);
}

} // namespace
} // namespace crisp
