/**
 * @file
 * Tests for the VAX-like Table 2 comparator: machine semantics, the
 * register-based backend, agreement with the CRISP toolchain on the
 * workloads, and the Table 2 histogram itself.
 */

#include <gtest/gtest.h>

#include "cc/compiler.hh"
#include "interp/interpreter.hh"
#include "vax/vax.hh"
#include "workloads/workloads.hh"

namespace crisp
{
namespace
{

std::int32_t
vaxRet(const std::string& src)
{
    vax::VaxMachine m(vax::compileForVax(src));
    const vax::VaxResult r = m.run(200'000'000);
    EXPECT_TRUE(r.halted);
    return r.returnValue;
}

TEST(Vax, BasicSemantics)
{
    EXPECT_EQ(vaxRet("int main() { return 42; }"), 42);
    EXPECT_EQ(vaxRet("int main() { int a = 6; return a * 7; }"), 42);
    EXPECT_EQ(vaxRet("int main() { int a = 45; return a % 7; }"), 3);
    EXPECT_EQ(vaxRet("int main() { int a = 3; return a << 4; }"), 48);
    EXPECT_EQ(vaxRet("int main() { int a = 48; return a >> 4; }"), 3);
    EXPECT_EQ(vaxRet("int main() { int a = 12; return a & 10; }"), 8);
    EXPECT_EQ(vaxRet("int main() { int a = 5; return -a; }"), -5);
    EXPECT_EQ(vaxRet("int main() { int a = 5; return a > 2 ? 1 : 0; }"),
              1);
}

TEST(Vax, ControlFlowAndCalls)
{
    EXPECT_EQ(vaxRet(R"(
        int fact(int n) {
            if (n <= 1) return 1;
            return n * fact(n - 1);
        }
        int main() { return fact(6); }
    )"),
              720);
    EXPECT_EQ(vaxRet(R"(
        int main() {
            int s = 0;
            for (int i = 0; i < 10; i++) {
                if (i == 5) continue;
                if (i == 8) break;
                s += i;
            }
            return s;
        }
    )"),
              0 + 1 + 2 + 3 + 4 + 6 + 7);
    EXPECT_EQ(vaxRet(R"(
        int main() {
            int r = 0;
            switch (3) { case 1: r = 1; break; case 3: r = 9; break; }
            return r;
        }
    )"),
              9);
}

TEST(Vax, CallerRegistersSurviveCalls)
{
    // The callee freely uses r2..; CALLS/RET must restore the caller's.
    EXPECT_EQ(vaxRet(R"(
        int clobber(int a, int b) {
            int x = a * 10;
            int y = b * 100;
            return x + y;
        }
        int main() {
            int p = 3;
            int q = 4;
            int r = clobber(1, 2);
            return p * 1000 + q * 100 + (r & 15);
        }
    )"),
              3000 + 400 + ((210) & 15));
}

TEST(Vax, GlobalsAndArrays)
{
    vax::VaxMachine m(vax::compileForVax(R"(
        int g = 5;
        int arr[8];
        int main() {
            for (int i = 0; i < 8; i++) arr[i] = i * i;
            g = arr[3] + arr[7];
            return g;
        }
    )"));
    const vax::VaxResult r = m.run();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(m.global("g"), 9 + 49);
}

TEST(Vax, AgreesWithCrispOnWorkloads)
{
    // The two backends compile the same sources; results must agree.
    for (const char* name : {"fig3", "sieve", "cwhet", "matmul"}) {
        const Workload& w = workload(name);
        vax::VaxMachine vm(vax::compileForVax(w.source));
        const vax::VaxResult vr = vm.run(500'000'000);
        ASSERT_TRUE(vr.halted) << name;
        if (w.checkAccum)
            EXPECT_EQ(vr.returnValue, w.expectedAccum) << name;
        for (const auto& [sym, val] : w.expectedGlobals)
            EXPECT_EQ(vm.global(sym), val) << name << ":" << sym;
    }
}

TEST(Vax, Table2HistogramMatchesPaper)
{
    // The paper's VAX column for the Figure 3 program.
    vax::VaxMachine m(vax::compileForVax(fig3Source(1024)));
    const vax::VaxResult r = m.run();
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.returnValue, fig3Expected(1024));

    EXPECT_EQ(r.count(vax::VOp::kIncl), 2048u);
    EXPECT_EQ(r.count(vax::VOp::kJbr), 1536u);
    EXPECT_EQ(r.count(vax::VOp::kCmpl), 1025u);
    EXPECT_EQ(r.count(vax::VOp::kJgeq), 1025u);
    EXPECT_EQ(r.count(vax::VOp::kAddl2), 1024u);
    EXPECT_EQ(r.count(vax::VOp::kBitl), 1024u);
    EXPECT_EQ(r.count(vax::VOp::kJeql), 1024u);
    EXPECT_NEAR(static_cast<double>(r.count(vax::VOp::kMovl)), 1026.0,
                2.0);
    // Totals essentially identical, as the paper says (9,734 vs 9,736).
    EXPECT_NEAR(static_cast<double>(r.instructions), 9736.0, 6.0);
}

TEST(Vax, RegisterPressureIsDiagnosed)
{
    std::string src = "int main() { int a0=0";
    for (int i = 1; i < 12; ++i)
        src += ", a" + std::to_string(i) + "=0";
    src += "; return a0; }";
    EXPECT_THROW(vax::compileForVax(src), CrispError);
}

TEST(Vax, Errors)
{
    EXPECT_THROW(vax::compileForVax("int f() { return 0; }"),
                 CrispError); // no main
    EXPECT_THROW(vax::compileForVax("int main() { return x; }"),
                 CrispError);
    vax::VaxMachine m(vax::compileForVax("int main() { return 1; }"));
    m.run();
    EXPECT_THROW(m.global("nope"), CrispError);
}

TEST(Vax, StepLimit)
{
    vax::VaxMachine m(
        vax::compileForVax("int main() { while (1) ; return 0; }"));
    const vax::VaxResult r = m.run(1000);
    EXPECT_FALSE(r.halted);
}

} // namespace
} // namespace crisp
