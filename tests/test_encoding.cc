/**
 * @file
 * Parcel codec tests: round trips, length decode, boundary values, and
 * a randomized round-trip property sweep.
 */

#include <gtest/gtest.h>

#include <random>

#include "isa/encoding.hh"

namespace crisp
{
namespace
{

Instruction
roundTrip(const Instruction& inst)
{
    Parcel buf[kMaxParcels] = {};
    const int n = encode(inst, buf);
    EXPECT_EQ(n, inst.lengthParcels());
    EXPECT_EQ(instructionLength(buf[0]), n);
    return decode(buf);
}

TEST(Encoding, ShortAluRoundTrip)
{
    const Instruction i =
        Instruction::alu(Opcode::kAdd, Operand::stack(3), Operand::imm(7));
    EXPECT_EQ(roundTrip(i), i);
}

TEST(Encoding, AccumOperands)
{
    const Instruction a = Instruction::cmp(Opcode::kCmpEq,
                                           Operand::accum(),
                                           Operand::imm(0));
    EXPECT_EQ(a.lengthParcels(), 1);
    EXPECT_EQ(roundTrip(a), a);

    const Instruction b = Instruction::mov(Operand::stack(2),
                                           Operand::accum());
    EXPECT_EQ(b.lengthParcels(), 1);
    EXPECT_EQ(roundTrip(b), b);

    const Instruction c = Instruction::mov(Operand::accum(),
                                           Operand::stack(6));
    EXPECT_EQ(c.lengthParcels(), 1);
    EXPECT_EQ(roundTrip(c), c);
}

TEST(Encoding, ThreeParcelSpecifiers)
{
    for (const Instruction& i : {
             Instruction::alu(Opcode::kSub, Operand::stack(-40),
                              Operand::imm(-32768)),
             Instruction::mov(Operand::abs(0xFFFF), Operand::imm(32767)),
             Instruction::alu(Opcode::kXor, Operand::ind(12),
                              Operand::stack(200)),
         }) {
        EXPECT_EQ(i.lengthParcels(), 3);
        EXPECT_EQ(roundTrip(i), i);
    }
}

TEST(Encoding, FiveParcelSpecifiers)
{
    for (const Instruction& i : {
             Instruction::mov(Operand::abs(0x12345678),
                              Operand::imm(-123456789)),
             Instruction::alu(Opcode::kMul, Operand::stack(100000),
                              Operand::imm(INT32_MIN)),
         }) {
        EXPECT_EQ(i.lengthParcels(), 5);
        EXPECT_EQ(roundTrip(i), i);
    }
}

TEST(Encoding, ShortBranchRoundTrip)
{
    for (Opcode op : {Opcode::kJmp, Opcode::kIfTJmp, Opcode::kIfFJmp}) {
        for (std::int32_t disp : {-1024, -2, 0, 2, 510, 1022}) {
            for (bool pred : {false, true}) {
                const Instruction i =
                    Instruction::branchRel(op, disp, pred);
                const Instruction back = roundTrip(i);
                EXPECT_EQ(back.op, op);
                EXPECT_EQ(back.disp, disp);
                // Unconditional jumps do not keep a prediction bit...
                if (op != Opcode::kJmp) {
                    EXPECT_EQ(back.predictTaken, pred);
                }
            }
        }
    }
}

TEST(Encoding, ShortBranchOutOfRangeThrows)
{
    Parcel buf[kMaxParcels];
    EXPECT_THROW(encode(Instruction::branchRel(Opcode::kJmp, 1024), buf),
                 CrispError);
    EXPECT_THROW(encode(Instruction::branchRel(Opcode::kJmp, -1026), buf),
                 CrispError);
    EXPECT_THROW(encode(Instruction::branchRel(Opcode::kJmp, 3), buf),
                 CrispError);
}

TEST(Encoding, FarBranchForms)
{
    for (Opcode op : {Opcode::kJmp, Opcode::kIfTJmp, Opcode::kIfFJmp,
                      Opcode::kCall}) {
        for (BranchMode m : {BranchMode::kAbs, BranchMode::kIndAbs,
                             BranchMode::kIndSp}) {
            const Instruction i =
                Instruction::branchFar(op, m, 0xDEADBEEF, true);
            const Instruction back = roundTrip(i);
            EXPECT_EQ(back.op, op);
            EXPECT_EQ(back.bmode, m);
            EXPECT_EQ(back.spec, 0xDEADBEEFu);
        }
    }
}

TEST(Encoding, FrameOps)
{
    for (int words : {0, 1, 100, 511}) {
        EXPECT_EQ(roundTrip(Instruction::enter(words)).dst.value, words);
        EXPECT_EQ(roundTrip(Instruction::ret(words)).dst.value, words);
        EXPECT_EQ(roundTrip(Instruction::leave(words)).dst.value, words);
    }
    Parcel buf[kMaxParcels];
    EXPECT_THROW(encode(Instruction::enter(512), buf), CrispError);
    EXPECT_THROW(encode(Instruction::ret(-1), buf), CrispError);
}

TEST(Encoding, NopHalt)
{
    EXPECT_EQ(roundTrip(Instruction::nop()).op, Opcode::kNop);
    EXPECT_EQ(roundTrip(Instruction::halt()).op, Opcode::kHalt);
}

TEST(Encoding, BranchMajorsDontCollideWithOpcodes)
{
    // Every non-short-branch first parcel must keep its top nibble
    // below 0xC (the dedicated short-branch majors).
    for (int i = 0; i < kOpcodeCount; ++i) {
        EXPECT_LT(i, 48) << "opcode value collides with branch majors";
    }
}


TEST(Encoding, ExhaustiveFirstParcelSweepNeverCrashes)
{
    // Every possible first parcel, with arbitrary following parcels:
    // decode() either produces an instruction consistent with
    // instructionLength() or throws CrispError — never crashes, never
    // reads past the declared length.
    Parcel buf[kMaxParcels] = {0, 0xABCD, 0x1234, 0xFFFF, 0x8001};
    int decoded = 0;
    int rejected = 0;
    for (std::uint32_t p0 = 0; p0 <= 0xFFFF; ++p0) {
        buf[0] = static_cast<Parcel>(p0);
        const int len = instructionLength(buf[0]);
        ASSERT_TRUE(len == 1 || len == 3 || len == 5) << p0;
        try {
            const Instruction inst = decode(buf);
            // A decoded instruction must re-encode to the same length
            // class or throw (some bit patterns decode to operands the
            // canonical encoder would place differently; semantic
            // equivalence is what matters and is covered by the
            // round-trip tests).
            (void)inst.lengthParcels();
            ++decoded;
        } catch (const CrispError&) {
            ++rejected;
        }
    }
    EXPECT_GT(decoded, 30000);
    EXPECT_GT(rejected, 0); // undefined opcodes exist and are rejected
}

/** Randomized round-trip sweep, parameterized by seed. */
class EncodingRandomRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(EncodingRandomRoundTrip, Holds)
{
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    auto pick = [&](std::int32_t lo, std::int32_t hi) {
        return std::uniform_int_distribution<std::int32_t>(lo, hi)(rng);
    };

    for (int iter = 0; iter < 500; ++iter) {
        Instruction inst;
        const int kind = pick(0, 9);
        if (kind < 6) {
            // ALU / mov / cmp with random operand shapes.
            const Opcode ops[] = {Opcode::kAdd,   Opcode::kSub,
                                  Opcode::kAnd,   Opcode::kMul,
                                  Opcode::kMov,   Opcode::kCmpLt,
                                  Opcode::kCmpEq, Opcode::kAnd3,
                                  Opcode::kShl,   Opcode::kRem};
            auto rand_operand = [&](bool dst) {
                switch (pick(0, 3 + (dst ? 0 : 1))) {
                  case 0:
                    return Operand::stack(pick(-100, 300));
                  case 1:
                    return Operand::abs(
                        static_cast<Addr>(pick(0, 0x20000)));
                  case 2:
                    return Operand::ind(pick(0, 60));
                  case 3:
                    return Operand::accum();
                  default:
                    return Operand::imm(pick(INT32_MIN / 2,
                                             INT32_MAX / 2));
                }
            };
            inst = Instruction::alu(ops[pick(0, 9)], rand_operand(true),
                                    rand_operand(false));
        } else if (kind < 8) {
            inst = Instruction::branchRel(
                pick(0, 1) ? Opcode::kIfTJmp : Opcode::kJmp,
                pick(-512, 511) * 2, pick(0, 1) != 0);
        } else if (kind == 8) {
            const BranchMode modes[] = {BranchMode::kAbs,
                                        BranchMode::kIndAbs,
                                        BranchMode::kIndSp};
            inst = Instruction::branchFar(
                pick(0, 1) ? Opcode::kCall : Opcode::kIfFJmp,
                modes[pick(0, 2)],
                static_cast<std::uint32_t>(pick(0, INT32_MAX)),
                pick(0, 1) != 0);
        } else {
            inst = Instruction::enter(pick(0, 511));
        }

        const Instruction back = roundTrip(inst);
        EXPECT_EQ(back.op, inst.op);
        if (!isBranch(inst.op)) {
            EXPECT_EQ(back.dst, inst.dst) << inst.toString();
            EXPECT_EQ(back.src, inst.src) << inst.toString();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingRandomRoundTrip,
                         ::testing::Range(0, 8));

} // namespace
} // namespace crisp
