/**
 * @file
 * Edge-case tests for the interprocedural indirect-target analysis
 * (analysis/targets.hh): empty/zeroed jump tables, index intervals
 * running past the table, table slots straddling the unmapped gap
 * before the data segment, and the lowering of proven sets into
 * fast-engine hints. The tampered-proof torture path (invariant 8) is
 * pinned in test_analysis.cc; the dense-switch positive path in
 * test_analysis.cc and test_cc_switch.cc.
 */

#include <gtest/gtest.h>

#include "analysis/checks.hh"
#include "analysis/oracle.hh"
#include "cc/compiler.hh"
#include "interp/memory_image.hh"
#include "isa/encoding.hh"

namespace
{

using namespace crisp;
using namespace crisp::analysis;

bool
hasRule(const AnalysisResult& r, const std::string& rule)
{
    for (const Diagnostic& d : r.diags) {
        if (d.rule == rule)
            return true;
    }
    return false;
}

/** The indirect-jump site entries of an analysis (issue-point keyed). */
std::vector<const SiteTargets*>
jumpSites(const AnalysisResult& r)
{
    std::vector<const SiteTargets*> out;
    for (const auto& [pc, s] : r.targets.sites) {
        if (s.kind == TargetSiteKind::kIndirectJump)
            out.push_back(&s);
    }
    return out;
}

void
pokeDataWord(Program& p, Addr addr, Word v)
{
    const std::size_t off = addr - p.dataBase;
    if (p.data.size() < off + kWordBytes)
        p.data.resize(off + kWordBytes, 0);
    p.data[off] = static_cast<std::uint8_t>(v);
    p.data[off + 1] = static_cast<std::uint8_t>(v >> 8);
    p.data[off + 2] = static_cast<std::uint8_t>(v >> 16);
    p.data[off + 3] = static_cast<std::uint8_t>(v >> 24);
}

TEST(Targets, EmptyTableResolvesToInvalidTargetAndLints)
{
    // A dispatch through a table that was never emitted: the slot
    // word is a load-image zero, which the analysis must prove (it is
    // immutable) and then count as an out-of-table value rather than
    // silently dropping it — the branch event fires before the fetch
    // fault, so invariant 8 needs the value in the set.
    Program p;
    p.append(Instruction::branchFar(Opcode::kJmp, BranchMode::kIndAbs,
                                    kDataBase));
    p.append(Instruction::halt());
    const AnalysisResult r = analyzeProgram(p, {});
    const auto sites = jumpSites(r);
    ASSERT_EQ(sites.size(), 1u);
    EXPECT_TRUE(sites[0]->resolved);
    EXPECT_EQ(sites[0]->targets.size(), 1u);
    EXPECT_EQ(*sites[0]->targets.begin(), 0u);
    EXPECT_EQ(sites[0]->invalidTargets, 1u);
    EXPECT_TRUE(hasRule(r, "indirect.out-of-table")) << r.toString();
    // An all-invalid proof must never become an engine hint or a
    // devirtualization: the "one possible target" is a fetch fault.
    EXPECT_TRUE(hintsFromTargets(r.targets).targets.empty());
}

TEST(Targets, IndexIntervalPastTableKeepsInvalidValues)
{
    // A hand-rolled dense-switch dispatch whose loop index runs to 6
    // against a 4-entry table, with no range guard: slots 4 and 5
    // read load-image zeros past the table. The analysis must keep
    // the table hits *and* the zero, flag the overflow, and refuse to
    // hint the site.
    const Addr table = kDataBase;
    Program p;
    // s0 = i, s1 = scratch address, s2 = target word
    p.append(Instruction::enter(4));
    p.append(Instruction::mov(Operand::stack(0), Operand::imm(0)));
    const Addr loop = p.textEnd();
    p.append(Instruction::mov(Operand::stack(1), Operand::stack(0)));
    p.append(Instruction::alu(Opcode::kShl, Operand::stack(1),
                              Operand::imm(2)));
    p.append(Instruction::alu(Opcode::kAdd, Operand::stack(1),
                              Operand::imm(static_cast<Word>(table))));
    p.append(Instruction::mov(Operand::stack(2), Operand::ind(1)));
    p.append(Instruction::branchFar(Opcode::kJmp, BranchMode::kIndSp,
                                    2));
    std::vector<Addr> arms;
    for (int c = 0; c < 4; ++c) {
        arms.push_back(p.textEnd());
        p.append(Instruction::alu(Opcode::kAdd, Operand::stack(0),
                                  Operand::imm(1)));
        p.append(Instruction::cmp(Opcode::kCmpLt, Operand::stack(0),
                                  Operand::imm(6)));
        const Addr br = p.textEnd();
        p.append(Instruction::branchRel(
            Opcode::kIfTJmp, static_cast<std::int32_t>(loop - br),
            true));
        p.append(Instruction::halt());
    }
    for (int c = 0; c < 4; ++c)
        pokeDataWord(p, table + static_cast<Addr>(c) * kWordBytes,
                     static_cast<Word>(arms[static_cast<Addr>(c)]));
    const AnalysisResult r = analyzeProgram(p, {});
    ASSERT_FALSE(r.hasErrors()) << r.toString();
    const auto sites = jumpSites(r);
    ASSERT_FALSE(sites.empty());
    for (const SiteTargets* s : sites) {
        if (!s->resolved)
            continue;
        // Soundness: every real arm must be in the proven set, and
        // the out-of-table zero must be visible, not filtered.
        for (const Addr a : arms)
            EXPECT_TRUE(s->targets.count(a)) << r.targetsTableText();
        EXPECT_GT(s->invalidTargets, 0u) << r.targetsTableText();
    }
    EXPECT_TRUE(hintsFromTargets(r.targets).targets.empty());
}

TEST(Targets, SlotStraddlingGapBeforeDataStaysSound)
{
    // The slot word sits two bytes before the data segment: read32
    // (alignment-permissive) splices two unmapped-gap zero bytes with
    // the first two data bytes. Whatever the analysis claims must
    // match what the memory image actually serves — or it must give
    // up (unresolved fallback). It must never prove a clean wrong
    // value.
    Program p;
    const Addr slot = kDataBase - 2;
    p.append(Instruction::branchFar(Opcode::kJmp, BranchMode::kIndAbs,
                                    slot));
    const Addr arm = p.textEnd();
    p.append(Instruction::halt());
    // data[0..1] hold the low half of an address-looking word; the
    // straddling read sees (data[0] << 16) | (data[1] << 24).
    pokeDataWord(p, kDataBase, static_cast<Word>(arm));

    MemoryImage mem;
    mem.load(p);
    const Word served = static_cast<Word>(mem.read32(slot));

    const AnalysisResult r = analyzeProgram(p, {});
    const auto sites = jumpSites(r);
    ASSERT_EQ(sites.size(), 1u);
    if (sites[0]->resolved) {
        ASSERT_EQ(sites[0]->targets.size(), 1u);
        EXPECT_EQ(*sites[0]->targets.begin(),
                  static_cast<Addr>(served))
            << r.targetsTableText();
    } else {
        EXPECT_FALSE(sites[0]->enforceable);
    }
}

TEST(Targets, DenseSwitchLowersToSingleHintCoveringAllCases)
{
    const char* src = R"(
        int main() {
            int i; int s;
            s = 0;
            for (i = 0; i < 12; i = i + 1) {
                switch (i - (i / 4) * 4) {
                    case 0: s = s + 1; break;
                    case 1: s = s + 2; break;
                    case 2: s = s + 3; break;
                    default: s = s + 5; break;
                }
            }
            return s;
        }
    )";
    const cc::CompileResult res = cc::compile(src, {});
    const AnalysisResult r = analyzeProgram(res.program, {});
    ASSERT_FALSE(r.hasErrors()) << r.toString();
    const IndirectHints hints = hintsFromTargets(r.targets);
    ASSERT_EQ(hints.targets.size(), 1u);
    const auto& [bpc, targets] = *hints.targets.begin();
    // The three case arms come through the table; the default arm is
    // reached by the range-guard direct branch, not a table slot.
    EXPECT_GE(targets.size(), 3u);
    for (const Addr t : targets) {
        EXPECT_TRUE(r.cfg->indirectTargets().count(t))
            << "hint target outside the global candidate set";
    }
    // And the retire-time oracle agrees end to end.
    const OracleReport o = runStaticOracle(res.program, SimConfig{});
    EXPECT_TRUE(o.applicable);
    EXPECT_TRUE(o.ok()) << o.toString();
}

} // namespace
