/**
 * @file
 * Seeded random CRISP-C program generator for equivalence property
 * tests. Generated programs always terminate: loops are counted `for`
 * loops whose induction variables are never reassigned in the body.
 */

#ifndef CRISP_TESTS_SUPPORT_RANDOM_PROGRAM_HH
#define CRISP_TESTS_SUPPORT_RANDOM_PROGRAM_HH

#include <cstdint>
#include <string>

namespace crisp::testing
{

/** Generate a random, terminating CRISP-C translation unit. */
std::string randomProgram(std::uint32_t seed);

} // namespace crisp::testing

#endif // CRISP_TESTS_SUPPORT_RANDOM_PROGRAM_HH
