/**
 * @file
 * Random CRISP-C generator.
 */

#include "random_program.hh"

#include <random>
#include <sstream>
#include <vector>

namespace crisp::testing
{

namespace
{

class Gen
{
  public:
    explicit Gen(std::uint32_t seed) : rng_(seed) {}

    std::string
    run()
    {
        const int nglobals = pick(2, 5);
        for (int i = 0; i < nglobals; ++i) {
            globals_.push_back("g" + std::to_string(i));
            os_ << "int g" << i << " = " << pick(-5, 20) << ";\n";
        }
        os_ << "int arr[16];\n";

        const int nfuncs = pick(0, 2);
        for (int f = 0; f < nfuncs; ++f)
            emitHelper(f);

        emitMain();
        return os_.str();
    }

  private:
    int
    pick(int lo, int hi)
    {
        return std::uniform_int_distribution<int>(lo, hi)(rng_);
    }

    bool chance(int pct) { return pick(1, 100) <= pct; }

    /** A random readable scalar in the current scope. */
    std::string
    scalar()
    {
        std::vector<std::string> pool = globals_;
        pool.insert(pool.end(), locals_.begin(), locals_.end());
        pool.insert(pool.end(), loopVars_.begin(), loopVars_.end());
        if (pool.empty())
            return std::to_string(pick(0, 9));
        return pool[static_cast<std::size_t>(
            pick(0, static_cast<int>(pool.size()) - 1))];
    }

    /** A random writable scalar (loop variables excluded). */
    std::string
    lvalue()
    {
        std::vector<std::string> pool = globals_;
        pool.insert(pool.end(), locals_.begin(), locals_.end());
        return pool[static_cast<std::size_t>(
            pick(0, static_cast<int>(pool.size()) - 1))];
    }

    std::string
    expr(int depth)
    {
        if (depth <= 0 || chance(30)) {
            if (chance(40))
                return std::to_string(pick(-9, 30));
            if (chance(15))
                return "arr[(" + scalar() + ") & 15]";
            return scalar();
        }
        const int kind = pick(0, 11);
        const std::string a = expr(depth - 1);
        const std::string b = expr(depth - 1);
        switch (kind) {
          case 0: return "(" + a + " + " + b + ")";
          case 1: return "(" + a + " - " + b + ")";
          case 2: return "(" + a + " * " + b + ")";
          case 3: return "(" + a + " & " + b + ")";
          case 4: return "(" + a + " | " + b + ")";
          case 5: return "(" + a + " ^ " + b + ")";
          case 6: return "(" + a + " >> (" + b + " & 7))";
          case 7: return "(" + a + " << (" + b + " & 7))";
          case 8: return "(" + a + " / (" + b + " | 1))";
          case 9: return "(" + a + " % 13)";
          case 10:
            if (chance(50)) {
                return "((" + cond(0) + ") ? (" + a + ") : (" + b +
                       "))";
            }
            return "(- " + a + ")"; // space: avoid "--"
          default:
            if (!funcs_.empty() && chance(50) && !inHelper_) {
                const auto& f = funcs_[static_cast<std::size_t>(
                    pick(0, static_cast<int>(funcs_.size()) - 1))];
                return f + "(" + a + ", " + b + ")";
            }
            return "(" + a + " + 1)";
        }
    }

    std::string
    cond(int depth)
    {
        const int kind = pick(0, 6);
        switch (kind) {
          case 0: return expr(depth) + " < " + expr(depth);
          case 1: return expr(depth) + " == " + expr(depth);
          case 2: return expr(depth) + " >= " + expr(depth);
          case 3: return "(" + cond(0) + ") && (" + cond(0) + ")";
          case 4: return "(" + cond(0) + ") || (" + cond(0) + ")";
          case 5: return "!(" + cond(0) + ")";
          default: return expr(depth);
        }
    }

    void
    statement(int indent, int depth)
    {
        const std::string pad(static_cast<std::size_t>(indent) * 4, ' ');
        const int kind = pick(0, 9);
        if (kind <= 3) {
            // Assignment (plain or compound).
            const char* ops[] = {"=", "+=", "-=", "^=", "&=", "|="};
            if (chance(25)) {
                os_ << pad << "arr[(" << expr(1) << ") & 15] "
                    << ops[pick(0, 5)] << " " << expr(depth) << ";\n";
            } else {
                os_ << pad << lvalue() << " " << ops[pick(0, 5)] << " "
                    << expr(depth) << ";\n";
            }
        } else if (kind <= 5 && depth > 0) {
            os_ << pad << "if (" << cond(1) << ") {\n";
            statement(indent + 1, depth - 1);
            if (chance(60)) {
                os_ << pad << "} else {\n";
                statement(indent + 1, depth - 1);
            }
            os_ << pad << "}\n";
        } else if (kind <= 7 && depth > 0 && loopDepth_ < 2) {
            const std::string v = "i" + std::to_string(loopVarSeq_++);
            loopVars_.push_back(v);
            ++loopDepth_;
            os_ << pad << "for (int " << v << " = 0; " << v << " < "
                << pick(1, 12) << "; " << v << "++) {\n";
            statement(indent + 1, depth - 1);
            if (chance(40))
                statement(indent + 1, depth - 1);
            os_ << pad << "}\n";
            --loopDepth_;
            loopVars_.pop_back();
        } else if (kind == 8 && depth > 0) {
            // switch over a bounded selector with fall-through cases.
            const int ncases = pick(2, 5);
            os_ << pad << "switch ((" << expr(1) << ") & 7) {\n";
            for (int c = 0; c < ncases; ++c) {
                os_ << pad << "case " << c << ":\n";
                statement(indent + 1, 0);
                if (chance(70))
                    os_ << pad << "    break;\n";
            }
            if (chance(70)) {
                os_ << pad << "default:\n";
                statement(indent + 1, 0);
            }
            os_ << pad << "}\n";
        } else if (kind == 8) {
            os_ << pad << lvalue() << "++;\n";
        } else {
            os_ << pad << lvalue() << " = " << expr(depth) << ";\n";
        }
    }

    void
    emitHelper(int idx)
    {
        const std::string name = "f" + std::to_string(idx);
        inHelper_ = true;
        locals_ = {"a", "b"};
        loopVars_.clear();
        os_ << "int " << name << "(int a, int b)\n{\n";
        if (chance(60)) {
            os_ << "    if (" << cond(1) << ")\n";
            os_ << "        return " << expr(1) << ";\n";
        }
        os_ << "    return " << expr(2) << ";\n}\n";
        funcs_.push_back(name);
        inHelper_ = false;
    }

    void
    emitMain()
    {
        locals_.clear();
        loopVars_.clear();
        os_ << "int main()\n{\n";
        const int nlocals = pick(1, 3);
        for (int i = 0; i < nlocals; ++i) {
            locals_.push_back("t" + std::to_string(i));
            os_ << "    int t" << i << " = " << pick(0, 9) << ";\n";
        }
        const int nstmts = pick(4, 10);
        for (int i = 0; i < nstmts; ++i)
            statement(1, 2);
        os_ << "    return " << expr(2) << ";\n}\n";
    }

    std::mt19937 rng_;
    std::ostringstream os_;
    std::vector<std::string> globals_;
    std::vector<std::string> locals_;
    std::vector<std::string> loopVars_;
    std::vector<std::string> funcs_;
    int loopVarSeq_ = 0;
    int loopDepth_ = 0;
    bool inHelper_ = false;
};

} // namespace

std::string
randomProgram(std::uint32_t seed)
{
    return Gen(seed).run();
}

} // namespace crisp::testing
