/**
 * @file
 * FastEngine tests: the 200-seed x 3-policy three-way differential
 * (fast engine vs. interpreter vs. cycle pipeline), translation-layer
 * superblock structure, and directed tests for the engine's contracts —
 * cancel at superblock boundaries, reset-replay equals a fresh run,
 * self-modifying-image invalidation, and the instruction budget.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "interp/interpreter.hh"
#include "sim/cpu.hh"
#include "sim/fastengine.hh"
#include "sim/translate.hh"
#include "verify/enginediff.hh"
#include "verify/eventstream.hh"
#include "verify/generator.hh"
#include "verify/lockstep.hh"

namespace crisp
{
namespace
{

using verify::Divergence;
using verify::LockstepOptions;
using verify::LockstepReport;

// A program whose hot loop is long enough to cross several cancel-poll
// windows: counts a global up to `limit`, then halts.
Program
countingLoop(std::int32_t limit)
{
    Program p;
    const Operand counter = Operand::abs(kDataBase);
    p.append(Instruction::mov(counter, Operand::imm(0)));
    const Addr loop =
        p.append(Instruction::alu(Opcode::kAdd, counter,
                                  Operand::imm(1)));
    const Addr cmp_at = p.append(Instruction::cmp(
        Opcode::kCmpLt, counter, Operand::imm(limit)));
    (void)cmp_at;
    const Addr br = p.textEnd();
    p.append(Instruction::branchRel(
        Opcode::kIfTJmp, static_cast<std::int32_t>(loop - br), true));
    p.append(Instruction::halt());
    return p;
}

// Store a little-endian word into the program's data segment at
// @p addr (grows the segment as needed).
void
pokeDataWord(Program& p, Addr addr, Word v)
{
    const std::size_t off = addr - p.dataBase;
    if (p.data.size() < off + kWordBytes)
        p.data.resize(off + kWordBytes, 0);
    p.data[off] = static_cast<std::uint8_t>(v);
    p.data[off + 1] = static_cast<std::uint8_t>(v >> 8);
    p.data[off + 2] = static_cast<std::uint8_t>(v >> 16);
    p.data[off + 3] = static_cast<std::uint8_t>(v >> 24);
}

// An indirect dispatch through a one-entry jump table at kDataBase:
// the load-image entry points at armA. When @p retarget is set the
// program first copies armB's address (held in a second data word)
// over the entry, so a translation that predicted the load-image word
// must take the runtime-guard miss path. The taken arm's signature
// lands in the accumulator.
Program
mutableDispatch(bool retarget)
{
    Program p;
    const Addr table = kDataBase;
    const Addr alt = kDataBase + kWordBytes;
    if (retarget) {
        p.append(Instruction::mov(Operand::abs(table),
                                  Operand::abs(alt)));
    }
    p.append(Instruction::branchFar(Opcode::kJmp, BranchMode::kIndAbs,
                                    table));
    const Addr arm_a = p.textEnd();
    p.append(Instruction::alu(Opcode::kAdd, Operand::accum(),
                              Operand::imm(11)));
    p.append(Instruction::halt());
    const Addr arm_b = p.textEnd();
    p.append(Instruction::alu(Opcode::kAdd, Operand::accum(),
                              Operand::imm(77)));
    p.append(Instruction::halt());
    pokeDataWord(p, table, static_cast<Word>(arm_a));
    pokeDataWord(p, alt, static_cast<Word>(arm_b));
    return p;
}

// ------------------------------------------- three-way differential

TEST(FastEngineDiff, ThreeWaySweep200Seeds)
{
    const FoldPolicy policies[] = {FoldPolicy::kNone, FoldPolicy::kCrisp,
                                   FoldPolicy::kAll};
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        const Program prog = verify::generate(seed).link();
        for (const FoldPolicy policy : policies) {
            LockstepOptions opt;
            opt.cfg.foldPolicy = policy;
            const LockstepReport fast =
                verify::runFastLockstep(prog, opt);
            ASSERT_TRUE(fast.ok())
                << "fast vs interp, seed " << seed << " policy "
                << static_cast<int>(policy) << "\n"
                << fast.toString();
            const LockstepReport cycle = verify::runLockstep(prog, opt);
            ASSERT_TRUE(cycle.ok())
                << "cycle vs interp, seed " << seed << " policy "
                << static_cast<int>(policy) << "\n"
                << cycle.toString();
            // Close the triangle: both engines agree with the
            // interpreter on the apparent instruction count.
            EXPECT_EQ(fast.sim.apparent, cycle.sim.apparent);
            EXPECT_EQ(fast.sim.engine, EngineKind::kFast);
            EXPECT_EQ(cycle.sim.engine, EngineKind::kCycle);
            EXPECT_EQ(fast.sim.cycles, 0u);
        }
    }
}

TEST(FastEngineDiff, ObservedAndFreeRunningModesAgree)
{
    // The observer selects a different (per-instruction) loop; both
    // flavours must produce bit-identical statistics and state.
    for (std::uint64_t seed = 300; seed < 320; ++seed) {
        const Program prog = verify::generate(seed).link();
        FastEngine free_run(prog);
        free_run.run();
        FastEngine observed(prog);
        verify::RefRecorder rec;
        observed.run(&rec);
        EXPECT_EQ(free_run.stats(), observed.stats()) << "seed " << seed;
        EXPECT_EQ(free_run.accum(), observed.accum());
        EXPECT_EQ(free_run.sp(), observed.sp());
        EXPECT_EQ(free_run.memory().bytes(), observed.memory().bytes());
    }
}

// ------------------------------------------------- translation layer

TEST(Translation, SuperblockChainsCoverStraightLineRuns)
{
    // Three sequential ops followed by a folded conditional: the entry
    // superblock must span exactly the three bodies (the compare folds
    // with the branch, which terminates the chain).
    Program p = countingLoop(10);
    Translation tr(p, FoldPolicy::kCrisp);
    const std::uint32_t entry = tr.entryIndex();
    ASSERT_NE(entry, kNoIdx);
    const TOp& first = tr.ops()[entry];
    EXPECT_EQ(first.kind, TKind::kChain);
    // mov; add; then cmp folds with iftjmp -> chain of 2, ending at
    // the folded conditional.
    EXPECT_EQ(first.chain, 2u);
    const TOp& term = tr.ops()[first.seqIdx != kNoIdx
                                   ? tr.ops()[entry].seqIdx
                                   : entry];
    (void)term;
    // Walk to the chain's terminator and check it is the folded branch.
    std::uint32_t ip = entry;
    for (std::uint32_t n = first.chain; n > 0; --n)
        ip = tr.ops()[ip].seqIdx;
    ASSERT_NE(ip, kNoIdx);
    const TOp& branch = tr.ops()[ip];
    EXPECT_EQ(branch.kind, TKind::kCond);
    EXPECT_TRUE(branch.folded);
    EXPECT_EQ(branch.bodyOp, Opcode::kCmpLt);
    EXPECT_EQ(branch.branchOp, Opcode::kIfTJmp);
    EXPECT_NE(branch.takenIdx, kNoIdx);

    // Under kNone nothing folds: the chain also swallows the compare.
    Translation none(p, FoldPolicy::kNone);
    EXPECT_EQ(none.ops()[none.entryIndex()].chain, 3u);
}

TEST(Translation, RebuildBumpsEpoch)
{
    const Program p = countingLoop(5);
    Translation tr(p, FoldPolicy::kCrisp);
    EXPECT_EQ(tr.epoch(), 1u);
    tr.rebuild();
    EXPECT_EQ(tr.epoch(), 2u);
}

// --------------------------------------------------- directed: cancel

TEST(FastEngine, CancelStopsAtSuperblockBoundaryAndResumes)
{
    const Program prog = countingLoop(20'000);

    FastEngine straight(prog);
    straight.run();
    ASSERT_TRUE(straight.halted());

    FastEngine eng(prog);
    std::atomic<bool> cancel{true};
    eng.setCancelFlag(&cancel);
    eng.run();
    EXPECT_TRUE(eng.stats().cancelled);
    EXPECT_FALSE(eng.halted());
    EXPECT_FALSE(eng.stats().timedOut);
    // The stop happened on a poll boundary, mid-program.
    EXPECT_GT(eng.stats().apparent, 0u);
    EXPECT_LT(eng.stats().apparent, straight.stats().apparent);

    // Resuming after the flag clears must converge to the exact same
    // final state and cumulative statistics as the uncancelled run —
    // the boundary stop corrupted nothing.
    cancel.store(false);
    eng.run();
    EXPECT_TRUE(eng.halted());
    EXPECT_FALSE(eng.stats().cancelled);
    EXPECT_EQ(eng.stats(), straight.stats());
    EXPECT_EQ(eng.accum(), straight.accum());
    EXPECT_EQ(eng.sp(), straight.sp());
    EXPECT_EQ(eng.memory().bytes(), straight.memory().bytes());
}

TEST(FastEngine, InstructionBudgetSetsTimedOut)
{
    const Program prog = countingLoop(100'000);
    SimConfig cfg;
    cfg.maxCycles = 5'000; // apparent-instruction budget
    FastEngine eng(prog, cfg);
    eng.run();
    EXPECT_TRUE(eng.stats().timedOut);
    EXPECT_FALSE(eng.halted());
    EXPECT_FALSE(eng.stats().cancelled);
    EXPECT_GE(eng.stats().apparent, 5'000u);
    // Overshoot is bounded by the poll interval plus one superblock.
    EXPECT_LT(eng.stats().apparent, 5'000u + 8'192u);
}

// ---------------------------------------------- directed: reset/replay

TEST(FastEngine, ResetReplayEqualsFreshRun)
{
    for (std::uint64_t seed = 700; seed < 710; ++seed) {
        const Program prog = verify::generate(seed).link();
        FastEngine fresh(prog);
        fresh.run();

        FastEngine replay(prog);
        replay.run();
        replay.reset();
        EXPECT_FALSE(replay.halted());
        EXPECT_EQ(replay.stats().apparent, 0u);
        replay.run();

        EXPECT_EQ(replay.stats(), fresh.stats()) << "seed " << seed;
        EXPECT_EQ(replay.accum(), fresh.accum());
        EXPECT_EQ(replay.flag(), fresh.flag());
        EXPECT_EQ(replay.sp(), fresh.sp());
        EXPECT_EQ(replay.memory().bytes(), fresh.memory().bytes());
    }
}

// ------------------------------------- directed: self-modifying image

TEST(FastEngine, ImageRevertDropsStaleTranslations)
{
    // The program stores into its own text window. Program text is
    // immutable for execution on every engine (fetch reads the linked
    // image, not data memory), but the memory image is dirtied — and a
    // reset's revert must rebuild the translation so it provably
    // derives from the restored bytes, never the dirtied ones.
    Program p;
    p.append(Instruction::mov(Operand::abs(kTextBase),
                              Operand::imm(0x1234)));
    p.append(Instruction::halt());

    FastEngine eng(p);
    EXPECT_EQ(eng.translationEpoch(), 1u);
    eng.run();
    ASSERT_TRUE(eng.halted());
    eng.reset();
    EXPECT_EQ(eng.translationEpoch(), 2u)
        << "text-window store must invalidate the translation";
    eng.run();
    ASSERT_TRUE(eng.halted());

    FastEngine fresh(p);
    fresh.run();
    EXPECT_EQ(eng.stats(), fresh.stats());
    EXPECT_EQ(eng.memory().bytes(), fresh.memory().bytes());

    // A program that never touches its text keeps its translation.
    const Program clean = countingLoop(10);
    FastEngine keep(clean);
    keep.run();
    keep.reset();
    EXPECT_EQ(keep.translationEpoch(), 1u);
}

// ------------------------------------------- directed: trace chaining

// A short straight-line program whose middle jump is fold-provable:
//   mov a,1; add a,2 (folds with) jmp; add a,3; halt
// Under kCrisp the jump folds with the preceding add and the whole
// program is one superblock trace; the halt terminates it.
Program
foldedJumpRun()
{
    Program p;
    p.append(Instruction::mov(Operand::accum(), Operand::imm(1)));
    p.append(Instruction::alu(Opcode::kAdd, Operand::accum(),
                              Operand::imm(2)));
    p.append(Instruction::branchRel(Opcode::kJmp, 2));
    p.append(Instruction::alu(Opcode::kAdd, Operand::accum(),
                              Operand::imm(3)));
    p.append(Instruction::halt());
    return p;
}

// Straight-line accumulator blocks stitched by unconditional jumps
// (the bench_perf chain_dense shape, smaller).
Program
jumpChain(int blocks, int ops_per_block)
{
    Program p;
    p.append(Instruction::mov(Operand::accum(), Operand::imm(0)));
    for (int b = 0; b < blocks; ++b) {
        for (int k = 0; k < ops_per_block; ++k)
            p.append(Instruction::alu(Opcode::kAdd, Operand::accum(),
                                      Operand::imm(1)));
        p.append(Instruction::branchRel(Opcode::kJmp, 2));
    }
    p.append(Instruction::halt());
    return p;
}

// A loop that calls a leaf `limit` times: the leaf's return is the
// only dynamic-target exit, so the inline-cache counters are exact.
Program
callLoop(std::int32_t limit)
{
    Program p;
    const Addr jmp_at = p.textEnd();
    p.append(Instruction::branchRel(Opcode::kJmp, 4)); // over the leaf
    const Addr leaf = p.textEnd();
    p.append(Instruction::ret(0));
    EXPECT_EQ(p.textEnd(), jmp_at + 4);
    const Operand counter = Operand::abs(kDataBase);
    p.append(Instruction::mov(counter, Operand::imm(0)));
    const Addr loop = p.textEnd();
    p.append(Instruction::branchFar(Opcode::kCall, BranchMode::kAbs,
                                    leaf));
    p.append(Instruction::alu(Opcode::kAdd, counter, Operand::imm(1)));
    p.append(Instruction::cmp(Opcode::kCmpLt, counter,
                              Operand::imm(limit)));
    const Addr br = p.textEnd();
    p.append(Instruction::branchRel(
        Opcode::kIfTJmp, static_cast<std::int32_t>(loop - br), true));
    p.append(Instruction::halt());
    return p;
}

TEST(Translation, TracesChainAcrossFoldedAlwaysTakenJump)
{
    const Program p = foldedJumpRun();
    Translation tr(p, FoldPolicy::kCrisp);
    const std::uint32_t entry = tr.entryIndex();
    ASSERT_NE(entry, kNoIdx);
    const TOp& head = tr.ops()[entry];
    ASSERT_EQ(head.kind, TKind::kChain);
    // Chains stop at the jump; traces walk through it: mov, then the
    // folded (add+jmp) pair, then the trailing add — 3 entries for 4
    // architectural instructions.
    EXPECT_EQ(head.chain, 1u);
    EXPECT_EQ(head.trace, 3u);
    EXPECT_EQ(head.traceInstr, 4u);
    const TOp& jump = tr.ops()[head.seqIdx];
    ASSERT_EQ(jump.kind, TKind::kJmp);
    EXPECT_TRUE(jump.folded);
    EXPECT_FALSE(jump.dynTarget);
    // The jump heads its own (shorter) trace: itself plus the add.
    EXPECT_EQ(jump.trace, 2u);
    EXPECT_EQ(jump.traceInstr, 3u);

    // Chaining off: traces degenerate to the PR 7 chains — kChain ops
    // cover exactly their chain, control ops are not walkable at all.
    Translation flat(p, FoldPolicy::kCrisp, nullptr,
                     /*enable_chaining=*/false);
    for (std::uint32_t i = 0; i < flat.size(); ++i) {
        const TOp& t = flat.ops()[i];
        if (t.kind == TKind::kChain)
            EXPECT_EQ(t.trace, t.chain);
        else
            EXPECT_EQ(t.trace, 0u);
    }
}

TEST(Translation, TraceLengthIsCappedAtKTraceCap)
{
    // 3 x kTraceCap walkable entries in one straight run: every trace
    // the walker can enter must stay within the cap (this is what
    // bounds the budget/cancel poll overshoot).
    const Program p =
        jumpChain(static_cast<int>(kTraceCap) / 2, 5);
    Translation tr(p, FoldPolicy::kCrisp);
    std::uint32_t longest = 0;
    for (std::uint32_t i = 0; i < tr.size(); ++i) {
        longest = std::max(longest, tr.ops()[i].trace);
        EXPECT_LE(tr.ops()[i].traceInstr, 2 * kTraceCap);
    }
    EXPECT_EQ(longest, kTraceCap);
}

TEST(FastEngine, ChainingOffMatchesChainingOnEverywhere)
{
    for (std::uint64_t seed = 500; seed < 540; ++seed) {
        const Program prog = verify::generate(seed).link();
        FastEngine on(prog);
        on.run();
        SimConfig off_cfg;
        off_cfg.enableChaining = false;
        FastEngine off(prog, off_cfg);
        off.run();
        EXPECT_EQ(on.stats(), off.stats()) << "seed " << seed;
        EXPECT_EQ(on.accum(), off.accum());
        EXPECT_EQ(on.sp(), off.sp());
        EXPECT_EQ(on.memory().bytes(), off.memory().bytes());
    }
}

TEST(FastEngine, BudgetOvershootStaysWithinPollPlusTraceCap)
{
    // A chain-dense program is the worst case for the budget poll: the
    // walker debits a whole trace up front and polls once per trace.
    const Program prog = jumpChain(1200, 8);
    SimConfig cfg;
    cfg.maxCycles = 5'000;
    FastEngine eng(prog, cfg);
    eng.run();
    EXPECT_TRUE(eng.stats().timedOut);
    EXPECT_GE(eng.stats().apparent, 5'000u);
    EXPECT_LT(eng.stats().apparent, 5'000u + 4'096u + 2 * kTraceCap);
}

// ---------------------------- directed: predicted indirect chaining

TEST(FastEngine, SelfPredictedIndirectChainsThroughTable)
{
    // kIndAbs with a clean table: the translator predicts the
    // load-image word, the trace walker chains straight through the
    // dispatch, and the inline cache is never even consulted.
    const Program prog = mutableDispatch(false);
    Translation trans(prog, FoldPolicy::kCrisp);
    const std::uint32_t bi = trans.indexOf(prog.entry);
    ASSERT_NE(bi, kNoIdx);
    const TOp& jmp = trans.ops()[bi];
    ASSERT_EQ(jmp.kind, TKind::kJmp);
    ASSERT_TRUE(jmp.dynTarget);
    EXPECT_NE(jmp.predIdx, kNoIdx);
    // The trace covers the dispatch plus the landing arm.
    EXPECT_GE(jmp.trace, 2u);
    EXPECT_FALSE(trans.icSeeds().empty());

    FastEngine eng(prog);
    eng.run();
    ASSERT_TRUE(eng.halted());
    EXPECT_EQ(eng.accum(), 11);
    EXPECT_EQ(eng.icMisses(), 0u);

    Interpreter interp(prog);
    interp.run();
    EXPECT_EQ(eng.accum(), interp.accum());
    EXPECT_EQ(eng.stats().branches, 1u);
}

TEST(FastEngine, MispredictedIndirectTakesGuardPath)
{
    // The program overwrites its own jump table before dispatching:
    // the self-prediction (from the load image) is wrong, and the
    // runtime guard must route control to the re-targeted arm with
    // fully interpreter-equivalent state.
    const Program prog = mutableDispatch(true);
    FastEngine eng(prog);
    eng.run();
    ASSERT_TRUE(eng.halted());
    EXPECT_EQ(eng.accum(), 77);

    Interpreter interp(prog);
    const InterpResult ir = interp.run();
    EXPECT_EQ(eng.accum(), interp.accum());
    EXPECT_EQ(eng.stats().apparent, ir.instructions);
}

TEST(FastEngine, HintedSingletonChainsThroughIndSpDispatch)
{
    // kIndSp cannot self-predict (the slot address depends on SP), so
    // a proven-singleton hint is what unlocks chaining. A *wrong*
    // hint must cost nothing but the misprediction.
    Program p;
    const Addr table = kDataBase;
    p.append(Instruction::mov(Operand::stack(0), Operand::abs(table)));
    const Addr branch_pc = p.textEnd();
    p.append(Instruction::branchFar(Opcode::kJmp, BranchMode::kIndSp,
                                    0));
    const Addr arm_a = p.textEnd();
    p.append(Instruction::alu(Opcode::kAdd, Operand::accum(),
                              Operand::imm(11)));
    p.append(Instruction::halt());
    const Addr arm_b = p.textEnd();
    p.append(Instruction::alu(Opcode::kAdd, Operand::accum(),
                              Operand::imm(77)));
    p.append(Instruction::halt());
    pokeDataWord(p, table, static_cast<Word>(arm_a));

    // Unhinted: the indirect exit terminates the trace.
    Translation bare(p, FoldPolicy::kCrisp);
    const std::uint32_t bi = bare.indexOf(branch_pc);
    ASSERT_NE(bi, kNoIdx);
    EXPECT_EQ(bare.ops()[bi].predIdx, kNoIdx);

    // Correct singleton hint: prediction installed, trace extends.
    IndirectHints hints;
    hints.targets[branch_pc] = {arm_a};
    Translation hinted(p, FoldPolicy::kCrisp, nullptr, true, &hints);
    EXPECT_EQ(hinted.ops()[bi].predTarget, arm_a);
    EXPECT_GE(hinted.ops()[bi].trace, 2u);

    FastEngine eng(p, SimConfig{}, nullptr, nullptr, &hints);
    eng.run();
    ASSERT_TRUE(eng.halted());
    EXPECT_EQ(eng.accum(), 11);
    EXPECT_EQ(eng.icMisses(), 0u);

    // Wrong hint: guarded, so the result is unchanged.
    IndirectHints wrong;
    wrong.targets[branch_pc] = {arm_b};
    FastEngine eng2(p, SimConfig{}, nullptr, nullptr, &wrong);
    eng2.run();
    ASSERT_TRUE(eng2.halted());
    EXPECT_EQ(eng2.accum(), 11);

    Interpreter interp(p);
    interp.run();
    EXPECT_EQ(eng.accum(), interp.accum());
}

// ------------------------------------------ directed: inline caches

TEST(FastEngine, ReturnInlineCacheHitsOnLoopBackEdge)
{
    const std::int32_t limit = 500;
    const Program prog = callLoop(limit);
    FastEngine eng(prog);
    eng.run();
    ASSERT_TRUE(eng.halted());
    // One miss installs the cache; every later return hits it. The
    // counters are non-architectural, so they must not perturb stats.
    EXPECT_EQ(eng.icMisses(), 1u);
    EXPECT_EQ(eng.icHits(), static_cast<std::uint64_t>(limit) - 1);
    EXPECT_EQ(eng.icFlushes(), 0u);

    Interpreter interp(prog);
    const InterpResult ir = interp.run();
    EXPECT_EQ(eng.stats().apparent, ir.instructions);
    EXPECT_EQ(eng.accum(), interp.accum());
}

TEST(FastEngine, TextDirtyResetFlushesInlineCaches)
{
    // Store into the text window, then loop through a call so the IC
    // is hot when reset hits. The reset must flush (stale indices may
    // not survive a rebuild) and the replay re-earns its hits.
    Program p;
    const Addr jmp_at = p.textEnd();
    p.append(Instruction::branchRel(Opcode::kJmp, 4));
    const Addr leaf = p.textEnd();
    p.append(Instruction::ret(0));
    EXPECT_EQ(p.textEnd(), jmp_at + 4);
    p.append(Instruction::mov(Operand::abs(kTextBase),
                              Operand::imm(0x5151)));
    const Operand counter = Operand::abs(kDataBase);
    p.append(Instruction::mov(counter, Operand::imm(0)));
    const Addr loop = p.textEnd();
    p.append(Instruction::branchFar(Opcode::kCall, BranchMode::kAbs,
                                    leaf));
    p.append(Instruction::alu(Opcode::kAdd, counter, Operand::imm(1)));
    p.append(Instruction::cmp(Opcode::kCmpLt, counter,
                              Operand::imm(50)));
    const Addr br = p.textEnd();
    p.append(Instruction::branchRel(
        Opcode::kIfTJmp, static_cast<std::int32_t>(loop - br), true));
    p.append(Instruction::halt());

    FastEngine eng(p);
    eng.run();
    ASSERT_TRUE(eng.halted());
    const std::uint64_t first_hits = eng.icHits();
    EXPECT_GT(first_hits, 0u);
    EXPECT_EQ(eng.icFlushes(), 0u);

    eng.reset();
    EXPECT_EQ(eng.icFlushes(), 1u);
    EXPECT_EQ(eng.translationEpoch(), 2u);
    eng.run();
    ASSERT_TRUE(eng.halted());
    // The replay misses once more (the flush emptied the cache), then
    // hits at the same rate.
    EXPECT_EQ(eng.icMisses(), 2u);
    EXPECT_EQ(eng.icHits(), 2 * first_hits);
}

// ------------------------------------- directed: shared translations

TEST(FastEngine, SharedTranslationMatchesPrivateAcrossReplays)
{
    for (std::uint64_t seed = 900; seed < 910; ++seed) {
        const Program prog = verify::generate(seed).link();
        PredecodeCache shared(prog);
        const Translation warm(prog, FoldPolicy::kCrisp, &shared);

        SimConfig cfg;
        FastEngine warm_eng(prog, cfg, &shared, &warm);
        FastEngine cold_eng(prog, cfg);
        for (int r = 0; r < 3; ++r) {
            if (r != 0) {
                warm_eng.reset();
                cold_eng.reset();
            }
            warm_eng.run();
            cold_eng.run();
            EXPECT_EQ(warm_eng.stats(), cold_eng.stats())
                << "seed " << seed << " replay " << r;
            EXPECT_EQ(warm_eng.accum(), cold_eng.accum());
            EXPECT_EQ(warm_eng.memory().bytes(),
                      cold_eng.memory().bytes());
        }
    }
}

TEST(FastEngine, SharedTranslationRejectsMismatchedConfig)
{
    const Program prog = countingLoop(10);
    const Translation warm(prog, FoldPolicy::kCrisp);
    SimConfig cfg;
    cfg.foldPolicy = FoldPolicy::kAll;
    EXPECT_THROW(FastEngine(prog, cfg, nullptr, &warm), CrispError);
    SimConfig flat;
    flat.enableChaining = false;
    EXPECT_THROW(FastEngine(prog, flat, nullptr, &warm), CrispError);
}

TEST(FastEngine, SharedTranslationStaysPinnedAcrossTextDirtyReset)
{
    // Text-dirty replays on a shared translation: the shared table is
    // immutable (it derives from the Program, not the image), so the
    // engine keeps borrowing it — only the epoch and the inline caches
    // react. Results must still match a fresh private engine exactly.
    Program p;
    p.append(Instruction::mov(Operand::abs(kTextBase),
                              Operand::imm(0x2222)));
    p.append(Instruction::mov(Operand::accum(), Operand::imm(9)));
    p.append(Instruction::halt());

    const Translation warm(p, FoldPolicy::kCrisp);
    FastEngine eng(p, SimConfig{}, nullptr, &warm);
    eng.run();
    eng.reset();
    EXPECT_EQ(eng.translationEpoch(), 2u);
    eng.run();
    ASSERT_TRUE(eng.halted());

    FastEngine fresh(p);
    fresh.run();
    EXPECT_EQ(eng.stats(), fresh.stats());
    EXPECT_EQ(eng.memory().bytes(), fresh.memory().bytes());
}

// --------------------------------------------------------- misc state

TEST(FastEngine, StatsCarryEngineKindAndNoTiming)
{
    const Program prog = countingLoop(100);
    FastEngine eng(prog);
    const SimStats& st = eng.run();
    EXPECT_EQ(st.engine, EngineKind::kFast);
    EXPECT_EQ(st.cycles, 0u);
    EXPECT_EQ(st.dicHits, 0u);
    EXPECT_TRUE(st.halted);

    Interpreter interp(prog);
    const InterpResult ir = interp.run();
    EXPECT_EQ(st.apparent, ir.instructions);
    EXPECT_EQ(st.branches, ir.branches);
    EXPECT_EQ(st.opcodeCounts, ir.opcodeCounts);
    EXPECT_EQ(eng.accum(), interp.accum());
}

TEST(FastEngine, SharedPredecodeCacheMatchesPrivate)
{
    const Program prog = verify::generate(42).link();
    PredecodeCache shared(prog);
    shared.warmAll(FoldPolicy::kCrisp);
    FastEngine with_shared(prog, {}, &shared);
    with_shared.run();
    FastEngine private_cache(prog);
    private_cache.run();
    EXPECT_EQ(with_shared.stats(), private_cache.stats());
    EXPECT_EQ(with_shared.memory().bytes(),
              private_cache.memory().bytes());
}

} // namespace
} // namespace crisp
