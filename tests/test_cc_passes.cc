/**
 * @file
 * crispcc pass tests: Branch Spreading code motion, prediction bits,
 * peephole, delay-slot filling, and effects/dependence analysis.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "cc/code.hh"
#include "cc/compiler.hh"
#include "interp/interpreter.hh"
#include "workloads/workloads.hh"

namespace crisp::cc
{
namespace
{

/** Instructions between the nearest cmp and each conditional branch. */
std::vector<int>
condBranchSeparations(const CodeList& code)
{
    std::vector<int> seps;
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (!code[i].isCondBranch())
            continue;
        int sep = 0;
        bool found = false;
        for (std::size_t j = i; j-- > 0;) {
            if (code[j].kind == CodeItem::Kind::kInst &&
                isCompare(code[j].inst.op)) {
                found = true;
                break;
            }
            if (code[j].kind != CodeItem::Kind::kInst)
                break; // label or branch: compare not in this block
            ++sep;
        }
        if (found)
            seps.push_back(sep);
    }
    return seps;
}

TEST(Effects, ReadWriteSets)
{
    const Effects add = effectsOf(Instruction::alu(
        Opcode::kAdd, Operand::stack(1), Operand::stack(2)));
    EXPECT_FALSE(add.writesFlag);
    EXPECT_FALSE(add.writesAccum);
    ASSERT_EQ(add.memWrites.size(), 1u);
    EXPECT_EQ(add.memWrites[0], Operand::stack(1));
    EXPECT_EQ(add.memReads.size(), 2u);

    const Effects cmp = effectsOf(Instruction::cmp(
        Opcode::kCmpLt, Operand::stack(1), Operand::imm(5)));
    EXPECT_TRUE(cmp.writesFlag);
    EXPECT_TRUE(cmp.memWrites.empty());

    const Effects a3 = effectsOf(Instruction::alu(
        Opcode::kAnd3, Operand::stack(1), Operand::imm(1)));
    EXPECT_TRUE(a3.writesAccum);

    const Effects ind = effectsOf(Instruction::mov(
        Operand::ind(3), Operand::stack(1)));
    EXPECT_TRUE(ind.wildWrite);

    EXPECT_TRUE(effectsOf(Instruction::enter(2)).barrier);
    EXPECT_TRUE(effectsOf(Instruction::halt()).barrier);
}

TEST(Effects, ConflictRules)
{
    const auto add_s1 = effectsOf(Instruction::alu(
        Opcode::kAdd, Operand::stack(1), Operand::imm(1)));
    const auto add_s2 = effectsOf(Instruction::alu(
        Opcode::kAdd, Operand::stack(2), Operand::imm(1)));
    const auto read_s1 = effectsOf(Instruction::cmp(
        Opcode::kCmpEq, Operand::stack(1), Operand::imm(0)));
    const auto and3 = effectsOf(Instruction::alu(
        Opcode::kAnd3, Operand::stack(5), Operand::imm(1)));
    const auto cmp_acc = effectsOf(Instruction::cmp(
        Opcode::kCmpEq, Operand::accum(), Operand::imm(0)));

    EXPECT_FALSE(conflicts(add_s1, add_s2)); // disjoint slots
    EXPECT_TRUE(conflicts(add_s1, read_s1)); // write/read same slot
    EXPECT_TRUE(conflicts(and3, cmp_acc));   // accum producer/consumer
    EXPECT_TRUE(conflicts(read_s1, cmp_acc)); // two flag writers
    // Stack vs global never alias in our layout.
    const auto g = effectsOf(Instruction::alu(
        Opcode::kAdd, Operand::abs(0x8000), Operand::imm(1)));
    EXPECT_FALSE(conflicts(add_s1, g));
    // Indirect wildcards conflict with everything memory-shaped.
    const auto ind = effectsOf(Instruction::mov(
        Operand::ind(0), Operand::imm(1)));
    EXPECT_TRUE(conflicts(ind, add_s1));
    EXPECT_TRUE(conflicts(ind, g));
}

TEST(Spread, Fig3ReachesFullDistance)
{
    cc::CompileOptions opts;
    opts.spread = true;
    const auto r = compile(fig3Source(1024), opts);
    const auto seps = condBranchSeparations(r.code);
    // The unpredictable if-branch must reach separation >= 3; the
    // backedge keeps whatever is left (0 here, like the paper).
    ASSERT_EQ(seps.size(), 2u);
    EXPECT_GE(seps[0], 3);
}

TEST(Spread, WithoutPassSeparationsAreZero)
{
    cc::CompileOptions opts;
    opts.spread = false;
    const auto r = compile(fig3Source(1024), opts);
    for (int s : condBranchSeparations(r.code))
        EXPECT_EQ(s, 0);
}

TEST(Spread, SinksPastConflictingProducer)
{
    // `add sum,i` can sink below `and3 i,1; cmp.= Accum,0` even though
    // the and3 itself cannot move (it feeds the compare).
    cc::CompileOptions opts;
    opts.spread = true;
    const auto r = compile(fig3Source(16), opts);
    // Find the and3 and the first iftjmp; the add must sit between the
    // cmp and the branch.
    bool seen_and3 = false;
    bool add_after_cmp = false;
    bool seen_cmp = false;
    for (const CodeItem& c : r.code) {
        if (c.kind == CodeItem::Kind::kInst &&
            c.inst.op == Opcode::kAnd3) {
            seen_and3 = true;
        }
        if (seen_and3 && c.kind == CodeItem::Kind::kInst &&
            isCompare(c.inst.op)) {
            seen_cmp = true;
            continue;
        }
        if (seen_cmp && c.kind == CodeItem::Kind::kInst &&
            c.inst.op == Opcode::kAdd) {
            add_after_cmp = true;
            break;
        }
        if (seen_cmp && c.kind == CodeItem::Kind::kBranch)
            break;
    }
    EXPECT_TRUE(add_after_cmp);
}

TEST(Spread, DoesNotCrossCalls)
{
    const char* src = R"(
        int g;
        int f(int x) { g += x; return g; }
        int main() {
            int a = 1;
            int b = f(2);
            if (a < b) return 1;
            return 0;
        }
    )";
    cc::CompileOptions on;
    on.spread = true;
    cc::CompileOptions off;
    off.spread = false;
    Interpreter ia(compile(src, on).program);
    Interpreter ib(compile(src, off).program);
    ia.run();
    ib.run();
    EXPECT_EQ(ia.accum(), ib.accum());
    EXPECT_EQ(ia.wordAt("g"), ib.wordAt("g"));
}

TEST(Spread, JoinHoistingPreservesBothPaths)
{
    // The join block's instructions execute on both arms; hoisting them
    // above the branch must not change either path's result.
    const char* src = R"(
        int a; int b; int c;
        int main() {
            for (int i = 0; i < 10; i++) {
                if (i & 1) a += 1; else b += 1;
                c += i;          // join block: hoistable
            }
            return a * 100 + b * 10 + (c & 7);
        }
    )";
    cc::CompileOptions on;
    on.spread = true;
    cc::CompileOptions off;
    off.spread = false;
    Interpreter ia(compile(src, on).program);
    Interpreter ib(compile(src, off).program);
    ia.run();
    ib.run();
    EXPECT_EQ(ia.accum(), ib.accum());
}

TEST(Predict, BackwardTakenForwardNotTaken)
{
    cc::CompileOptions opts;
    opts.predict = PredictMode::kBackwardTaken;
    const auto r = compile(fig3Source(64), opts);

    std::map<std::string, std::size_t> labels;
    for (std::size_t i = 0; i < r.code.size(); ++i) {
        if (r.code[i].kind == CodeItem::Kind::kLabel)
            labels[r.code[i].name] = i;
    }
    int backward = 0;
    int forward = 0;
    for (std::size_t i = 0; i < r.code.size(); ++i) {
        const CodeItem& c = r.code[i];
        if (!c.isCondBranch())
            continue;
        if (labels.at(c.name) < i) {
            EXPECT_TRUE(c.inst.predictTaken);
            ++backward;
        } else {
            EXPECT_FALSE(c.inst.predictTaken);
            ++forward;
        }
    }
    EXPECT_EQ(backward, 1); // the loop backedge
    EXPECT_EQ(forward, 1);  // the if
}

TEST(Predict, AllNotTakenClearsEveryBit)
{
    cc::CompileOptions opts;
    opts.predict = PredictMode::kAllNotTaken;
    const auto r = compile(fig3Source(64), opts);
    for (const CodeItem& c : r.code) {
        if (c.isCondBranch()) {
            EXPECT_FALSE(c.inst.predictTaken);
        }
    }
}

TEST(Peephole, RemovesJumpToNext)
{
    CodeList code;
    code.push_back(CodeItem::branch(Opcode::kJmp, "L"));
    code.push_back(CodeItem::label("L"));
    code.push_back(CodeItem::instr(Instruction::halt()));
    const int removed = passPeephole(code, {"L"});
    EXPECT_EQ(removed, 1);
    EXPECT_EQ(code.size(), 2u);
}

TEST(Peephole, RemovesUnreferencedLabelsButKeepsKept)
{
    CodeList code;
    code.push_back(CodeItem::label("keepme"));
    code.push_back(CodeItem::label("dead"));
    code.push_back(CodeItem::instr(Instruction::halt()));
    passPeephole(code, {"keepme"});
    ASSERT_EQ(code.size(), 2u);
    EXPECT_EQ(code[0].name, "keepme");
}

TEST(Peephole, RemovesSelfMove)
{
    CodeList code;
    code.push_back(CodeItem::instr(
        Instruction::mov(Operand::stack(1), Operand::stack(1))));
    code.push_back(CodeItem::instr(Instruction::halt()));
    EXPECT_EQ(passPeephole(code), 1);
}

TEST(DelaySlots, EveryBranchGetsASlot)
{
    cc::CompileOptions opts;
    opts.delaySlots = true;
    const auto r = compile(fig3Source(64), opts);
    for (std::size_t i = 0; i < r.code.size(); ++i) {
        const CodeItem& c = r.code[i];
        if (c.kind != CodeItem::Kind::kBranch ||
            c.inst.op == Opcode::kCall) {
            continue;
        }
        ASSERT_LT(i + 1, r.code.size());
        EXPECT_EQ(r.code[i + 1].kind, CodeItem::Kind::kInst)
            << "branch without a delay slot";
        EXPECT_FALSE(isBranch(r.code[i + 1].inst.op));
    }
}

TEST(DelaySlots, SlotsAreNotStolenByLaterBranches)
{
    // Regression: a later branch's backward fill scan must not steal an
    // earlier branch's already-filled slot (nested-loop pattern).
    const char* src = R"(
        int total;
        int main() {
            for (int run = 0; run < 5; run++) {
                for (int i = 0; i < 5; i++)
                    total = total + i;
            }
            return total;
        }
    )";
    cc::CompileOptions opts;
    opts.delaySlots = true;
    const auto r = compile(src, opts);

    // Count instructions between the two backedges: the inner slot
    // must still be there (an inst immediately after each branch).
    int branches_with_slots = 0;
    for (std::size_t i = 0; i + 1 < r.code.size(); ++i) {
        if (r.code[i].kind == CodeItem::Kind::kBranch &&
            r.code[i].inst.op != Opcode::kCall &&
            r.code[i + 1].kind == CodeItem::Kind::kInst) {
            ++branches_with_slots;
        }
    }
    EXPECT_GE(branches_with_slots, 2);
}

TEST(DelaySlots, FilledSlotsComeFromSafeInstructions)
{
    cc::CompileOptions opts;
    opts.delaySlots = true;
    const auto r = compile(fig3Source(64), opts);
    for (std::size_t i = 0; i + 1 < r.code.size(); ++i) {
        if (r.code[i].kind != CodeItem::Kind::kBranch ||
            r.code[i].inst.op == Opcode::kCall) {
            continue;
        }
        const Instruction& slot = r.code[i + 1].inst;
        // A delay slot never contains a flag writer (it executes after
        // the branch read the flag but would clobber a later test).
        EXPECT_FALSE(isCompare(slot.op));
    }
}


class ListingRoundTrip : public ::testing::TestWithParam<const char*>
{
};

TEST_P(ListingRoundTrip, CompileListingAssembleMatches)
{
    // crispcc -S output must reassemble into a program with identical
    // architectural behaviour (directives, .local bindings, .table
    // jump tables and indirect jumps all round-trip).
    const Workload& w = workload(GetParam());
    const auto r = compile(w.source);
    const crisp::Program back = assemble(r.listing);

    Interpreter ia(r.program);
    Interpreter ib(back);
    ASSERT_TRUE(ia.run(500'000'000).halted);
    ASSERT_TRUE(ib.run(500'000'000).halted);
    EXPECT_EQ(ia.accum(), ib.accum());
    for (const auto& [sym, val] : w.expectedGlobals)
        EXPECT_EQ(ib.wordAt(sym), val) << sym;
}

INSTANTIATE_TEST_SUITE_P(Workloads, ListingRoundTrip,
                         ::testing::Values("fig3", "puzzle", "dhry",
                                           "sieve", "matmul"));

TEST(ListingRoundTrip, SwitchJumpTableRoundTrips)
{
    const char* src = R"(
        int f(int x) {
            switch (x) {
            case 0: return 5;
            case 1: return 6;
            case 2: return 7;
            case 3: return 8;
            default: return -1;
            }
        }
        int main() { return f(2) * 100 + f(9); }
    )";
    const auto r = compile(src);
    ASSERT_NE(r.listing.find(".table"), std::string::npos);
    const crisp::Program back = assemble(r.listing);
    Interpreter interp(back);
    ASSERT_TRUE(interp.run(1'000'000).halted);
    EXPECT_EQ(interp.accum(), 699);
}

} // namespace
} // namespace crisp::cc
