/**
 * @file
 * Predictor unit tests: saturating counters, the static oracle, the
 * paper's alternating-branch decomposition, and BTB behaviour.
 */

#include <gtest/gtest.h>

#include "predict/predictors.hh"

namespace crisp
{
namespace
{

BranchEvent
ev(Addr pc, bool taken, Addr target = 0x9000)
{
    BranchEvent e;
    e.pc = pc;
    e.conditional = true;
    e.taken = taken;
    e.target = target;
    e.fallThrough = pc + 2;
    return e;
}

std::vector<BranchEvent>
pattern(Addr pc, const std::string& bits)
{
    std::vector<BranchEvent> out;
    for (char c : bits)
        out.push_back(ev(pc, c == 'T'));
    return out;
}

TEST(Counter, OneBitPredictsSameAsLastTime)
{
    CounterPredictor p(1);
    const auto t = pattern(0x100, "TTFFT");
    // Initial prediction is taken.
    EXPECT_TRUE(p.predict(t[0]));
    p.update(t[0]); // T
    EXPECT_TRUE(p.predict(t[1]));
    p.update(t[2]); // F
    EXPECT_FALSE(p.predict(t[1]));
    p.update(t[0]); // T
    EXPECT_TRUE(p.predict(t[1]));
}

TEST(Counter, TwoBitHysteresisSurvivesOneAnomaly)
{
    CounterPredictor p(2);
    // Strongly train taken.
    for (int i = 0; i < 4; ++i)
        p.update(ev(0x100, true));
    EXPECT_TRUE(p.predict(ev(0x100, false)));
    p.update(ev(0x100, false)); // one not-taken anomaly
    // Still predicts taken (the J. Smith weighting).
    EXPECT_TRUE(p.predict(ev(0x100, true)));
    // A one-bit predictor would have flipped.
    CounterPredictor q(1);
    q.update(ev(0x100, true));
    q.update(ev(0x100, false));
    EXPECT_FALSE(q.predict(ev(0x100, true)));
}

TEST(Counter, ThreeBitSaturates)
{
    CounterPredictor p(3);
    for (int i = 0; i < 20; ++i)
        p.update(ev(0x100, true));
    // Needs four consecutive not-takens to flip from saturation.
    for (int i = 0; i < 3; ++i)
        p.update(ev(0x100, false));
    EXPECT_TRUE(p.predict(ev(0x100, true)));
    p.update(ev(0x100, false));
    EXPECT_FALSE(p.predict(ev(0x100, true)));
}

TEST(Counter, SeparateSitesAreIndependent)
{
    CounterPredictor p(2);
    for (int i = 0; i < 4; ++i) {
        p.update(ev(0x100, true));
        p.update(ev(0x200, false));
    }
    EXPECT_TRUE(p.predict(ev(0x100, true)));
    EXPECT_FALSE(p.predict(ev(0x200, true)));
}

TEST(Counter, RejectsBadWidths)
{
    EXPECT_THROW(CounterPredictor(0), CrispError);
    EXPECT_THROW(CounterPredictor(4), CrispError);
}

TEST(Evaluate, SkipsUnconditionalBranches)
{
    std::vector<BranchEvent> trace = pattern(0x100, "TTTT");
    BranchEvent uncond = ev(0x200, true);
    uncond.conditional = false;
    trace.push_back(uncond);
    CounterPredictor p(2);
    const auto acc = evaluateDirection(trace, p);
    EXPECT_EQ(acc.total, 4u);
}

TEST(StaticOracle, PicksMajorityPerSite)
{
    // Site A: 3 of 4 taken; site B: 1 of 4 taken.
    std::vector<BranchEvent> trace;
    for (bool t : {true, true, false, true})
        trace.push_back(ev(0x100, t));
    for (bool t : {false, true, false, false})
        trace.push_back(ev(0x200, t));
    const auto acc = evaluateStaticOracle(trace);
    EXPECT_EQ(acc.total, 8u);
    EXPECT_EQ(acc.correct, 6u);
}

TEST(StaticOracle, AlternatingGetsExactlyHalf)
{
    const auto acc = evaluateStaticOracle(pattern(0x100, "TFTFTFTF"));
    EXPECT_EQ(acc.total, 8u);
    EXPECT_EQ(acc.correct, 4u);
}

TEST(Alternating, PaperDecomposition)
{
    // "For the case where branches alternate direction, static
    // prediction gets 50% correct, while all the dynamic schemes get
    // 0% correct."
    for (int bits = 1; bits <= 3; ++bits) {
        CounterPredictor p(bits);
        const auto acc = alternatingAccuracy(p, 1000);
        EXPECT_EQ(acc.correct, 0u) << bits << "-bit";
    }
}

TEST(Alternating, AllOneDirectionIsPerfectForEveryScheme)
{
    // "For the case of branching in one direction, all schemes get
    // essentially 100% correct prediction."
    for (int bits = 1; bits <= 3; ++bits) {
        CounterPredictor p(bits);
        const auto acc = evaluateDirection(pattern(0x100, std::string(100, 'T')), p);
        EXPECT_GE(acc.rate(), 0.99) << bits << "-bit";
    }
    EXPECT_EQ(evaluateStaticOracle(pattern(0x100, std::string(100, 'T')))
                  .rate(),
              1.0);
}

TEST(Btb, HitRequiresCorrectTarget)
{
    BranchTargetBuffer btb(16, 2);
    std::vector<BranchEvent> trace;
    // Train a taken branch, then change its target (indirect-branch
    // style): the stale-target prediction must count as wrong.
    trace.push_back(ev(0x100, true, 0x500));
    trace.push_back(ev(0x100, true, 0x500));
    trace.push_back(ev(0x100, true, 0x600)); // target changed
    const auto acc = btb.evaluate(trace);
    EXPECT_EQ(acc.total, 3u);
    // First: miss -> predict NT -> wrong. Second: hit, correct target.
    // Third: hit but stale target -> wrong.
    EXPECT_EQ(acc.correct, 1u);
}

TEST(Btb, NotTakenBranchesPredictCorrectlyWhenAbsent)
{
    BranchTargetBuffer btb(16, 2);
    const auto acc = btb.evaluate(pattern(0x100, "FFFFFF"));
    EXPECT_EQ(acc.correct, 6u); // never allocated, predicts not-taken
}

TEST(Btb, LruEvictionWithinASet)
{
    // 1 set x 2 ways: three distinct taken branches thrash.
    BranchTargetBuffer btb(1, 2);
    std::vector<BranchEvent> trace;
    for (int round = 0; round < 3; ++round) {
        for (Addr pc : {0x100u, 0x200u, 0x300u})
            trace.push_back(ev(pc, true, pc + 0x1000));
    }
    const auto acc = btb.evaluate(trace);
    // With LRU over 2 ways and 3 hot branches, every access misses.
    EXPECT_EQ(acc.correct, 0u);

    // The same trace in a 4-way BTB hits after the first round.
    BranchTargetBuffer big(1, 4);
    const auto acc2 = big.evaluate(trace);
    EXPECT_EQ(acc2.correct, 6u);
}

TEST(Btb, JumpTraceEvictsOnFallThrough)
{
    BranchTargetBuffer jt(8, 1, /*use_counters=*/false);
    std::vector<BranchEvent> trace = pattern(0x100, "TFTFTF");
    for (auto& e : trace)
        e.target = 0x500;
    const auto acc = jt.evaluate(trace);
    // MU5-style: hit => predict taken; alternation defeats it almost
    // completely (first F is a correct miss-predict-NT).
    EXPECT_LE(acc.correct, 1u);
}

TEST(Btb, RejectsBadGeometry)
{
    EXPECT_THROW(BranchTargetBuffer(0, 4), CrispError);
    EXPECT_THROW(BranchTargetBuffer(3, 4), CrispError);
    EXPECT_THROW(BranchTargetBuffer(8, 0), CrispError);
}

TEST(CompilerBit, UsesTheRecordedBit)
{
    CompilerBitPredictor p;
    BranchEvent e = ev(0x100, true);
    e.predictTaken = true;
    EXPECT_TRUE(p.predict(e));
    e.predictTaken = false;
    EXPECT_FALSE(p.predict(e));
}

} // namespace
} // namespace crisp
