/**
 * @file
 * End-to-end smoke tests: assemble, interpret, simulate.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "interp/interpreter.hh"
#include "sim/cpu.hh"

namespace crisp
{
namespace
{

const char* kCountdown = R"(
    .entry start
    .global counter 0
start:
    mov counter, 5
loop:
    sub counter, 1
    cmp.s> counter, 0
    iftjmpy loop
    halt
)";

TEST(Smoke, InterpreterRunsCountdown)
{
    const Program prog = assemble(kCountdown);
    Interpreter interp(prog);
    const InterpResult r = interp.run();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(interp.wordAt("counter"), 0);
    // mov + 5 * (sub, cmp, branch) + halt
    EXPECT_EQ(r.instructions, 1u + 15u + 1u);
}

TEST(Smoke, PipelineMatchesInterpreter)
{
    const Program prog = assemble(kCountdown);
    Interpreter interp(prog);
    const InterpResult ri = interp.run();

    CrispCpu cpu(prog);
    const SimStats& rs = cpu.run();
    EXPECT_TRUE(rs.halted);
    EXPECT_EQ(rs.apparent, ri.instructions);
    EXPECT_EQ(cpu.wordAt("counter"), 0);
    EXPECT_EQ(cpu.flag(), interp.flag());
}

TEST(Smoke, FoldingReducesIssuedInstructions)
{
    const Program prog = assemble(kCountdown);

    SimConfig folded;
    folded.foldPolicy = FoldPolicy::kCrisp;
    CrispCpu cpu1(prog, folded);
    const SimStats s1 = cpu1.run();

    SimConfig unfolded;
    unfolded.foldPolicy = FoldPolicy::kNone;
    CrispCpu cpu2(prog, unfolded);
    const SimStats s2 = cpu2.run();

    EXPECT_EQ(s1.apparent, s2.apparent);
    EXPECT_LT(s1.issued, s2.issued);
    EXPECT_EQ(s2.issued, s2.apparent);
    EXPECT_EQ(s1.issued + s1.foldedBranches, s1.apparent);
}

} // namespace
} // namespace crisp
