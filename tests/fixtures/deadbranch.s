; Fixture: a conditional branch whose direction the abstract
; interpreter proves constant. x is 5 on every path, so cmp.= x, 6 is
; provably false, the iftjmpn never goes to `error`, and the cost
; engine both collapses the branch's delay bound and marks the taken
; path dead (cost.constant-cc + cost.dead-branch, info level). The
; compare is spread three slots so the pair also lints clean.
    .entry main
    .local x 0
    .local b 0
main:
    enter 2
    mov x, 5
    cmp.= x, 6
    add b, 1
    add b, 2
    add b, 3
    iftjmpn error
    mov Accum, x
    halt
error:
    mov Accum, 0
    halt
