; Fixture: count to 8 (expected exit value 8).
    .entry start
    .local i 0
start:
    enter 1
    mov i, 0
loop:
    add i, 1
    cmp.s< i, 8
    iftjmpy loop
    mov Accum, i
    halt
