/* Fixture: sum of 1..100 (expected exit value 5050). */
int main()
{
    int s = 0;
    for (int i = 1; i <= 100; i++)
        s += i;
    return s;
}
