/*
 * Fixture for the crispcc -O tool tests: the guard compares a masked
 * value against a larger limit, so SCCP proves the branch never
 * taken, the optimizer folds it, and the dead assignment under it is
 * deleted. The surviving global store feeds the exit value, which
 * keeps it live — and makes --tamper-dce's forced deletion of it
 * visible to the translation validator (exit 4).
 */
int g;
int out;

int main()
{
    int v, lim;
    v = g & 255;
    lim = 4095;
    out = v + lim;
    if (v > lim)
        out = 0;
    return out;
}
