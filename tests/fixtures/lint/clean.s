; Lint golden: a program with no findings at all. The compare is
; spread three slots ahead of its branch, every store is observed
; (the global is part of the exit contract, the local feeds the
; accumulator), and no branch direction is provable.
    .entry main
    .global out 0
    .local a 0
main:
    enter 1
    mov a, out
    cmp.s< a, 40
    add a, 1
    add a, 2
    add a, 3
    iftjmpn big
    mov out, a
    mov Accum, a
    halt
big:
    mov out, 0
    mov Accum, 0
    halt
