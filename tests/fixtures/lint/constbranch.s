; Lint golden: dataflow.unreachable-after-constant-branch. `v` is 5
; on every path and the compare asks whether it equals 9, so SCCP
; proves the branch falls through and the `dead:` block is
; unreachable. The compare is spread three slots so the pair does
; not also trip the spread rules.
    .entry main
    .global out 0
    .local v 0
main:
    enter 1
    mov v, 5
    cmp.= v, 9
    add out, 1
    add out, 2
    add out, 3
    iftjmpn dead
    mov out, v
    mov Accum, v
    halt
dead:
    mov out, 0
    mov Accum, 0
    halt
