; Lint golden: dataflow.dead-store. The first store to `a` is
; overwritten before anything reads it, so backward liveness proves
; it unobservable; the second store feeds the accumulator and the
; final global store is part of the exit contract, so neither of
; those is reported.
    .entry main
    .global out 0
    .local a 0
main:
    enter 1
    mov a, 7
    mov a, 8
    mov out, a
    mov Accum, a
    halt
