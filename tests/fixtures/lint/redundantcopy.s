; Lint golden: dataflow.redundant-copy. The second `mov a, b`
; rewrites `a` with the value it already holds — `b` is untouched
; between the two copies and the intervening add only changes the
; accumulator — so reaching definitions prove the copy is a no-op.
    .entry main
    .local a 0
    .local b 1
main:
    enter 2
    mov b, 9
    mov a, b
    add Accum, 1
    mov a, b
    mov Accum, a
    halt
