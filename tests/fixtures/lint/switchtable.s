; Lint golden: the interprocedural indirect-target rules. The first
; dispatch guards a three-slot jump table with a six-wide range check,
; so the proven value set is finite but includes load-image words past
; the table (indirect.out-of-table). The second
; dispatch jumps through `fp`, a data word overwritten with a loop
; counter the lattice cannot bound, so its target set falls back to
; every jump-table candidate (indirect.unresolved-target). `helper` is
; called only from the orphaned block after the halt, so it is a known
; function that the entry closure never reaches
; (callgraph.unreachable-function).
    .entry main
    .global fp 0
    .table tab arm0 arm1 arm2
    .clearlocals
    .local i 0
main:
    enter 4
    mov i, 0
loop:
    mov sp[3], i
    cmp.u>= sp[3], 6
    iftjmpn done
    shl sp[3], 2
    add sp[3], 32772
    mov sp[2], [sp[3]]
    jmp *sp[2]
arm0:
    add i, 1
    cmp.s< i, 6
    iftjmpy loop
    jmp fin
arm1:
    add i, 2
    cmp.s< i, 6
    iftjmpy loop
    jmp fin
arm2:
    add i, 3
    cmp.s< i, 6
    iftjmpy loop
fin:
    mov fp, i
    jmp *fp
done:
    mov Accum, i
    halt
orphan:
    call helper
    halt
helper:
    enter 1
    return 1
