; Deliberately non-terminating: exercises the cycle-limit watchdog.
    .entry spin
spin:
    jmp spin
