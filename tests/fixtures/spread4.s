; Fixture: a fully spread compare/branch pair (lints clean).
; Three useful instructions separate the compare from its branch, so
; the fold decoder resolves the branch at issue with zero delay.
    .entry main
    .local a 3
    .local b 0
main:
    enter 2
    cmp.= a, 3
    add b, 1
    add b, 2
    add b, 3
    iftjmpn done
    add b, 4
done:
    mov Accum, b
    halt
