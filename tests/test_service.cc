/**
 * @file
 * The crispd service layer (src/service/): wire protocol, bounded
 * queue, caches, and the SimService robustness envelope — admission,
 * deadlines, retries, shedding, quarantine, and the exactly-one
 * terminal-state ledger invariant. Everything here drives the service
 * in-process; the socket daemon on top is exercised end to end by
 * `crisploadgen --spawn --chaos` (a ctest entry of its own).
 */

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "isa/objfile.hh"
#include "service/cache.hh"
#include "service/protocol.hh"
#include "service/queue.hh"
#include "service/service.hh"
#include "sim/cpu.hh"
#include "verify/lockstep.hh"

namespace
{

using namespace crisp;
using namespace crisp::service;

std::vector<std::uint8_t>
countedImage(int count)
{
    std::string src = R"(
        .entry s
        .local i 0
s:      enter 1
        mov i, 0
top:    add i, 1
        cmp.s< i, %N%
        iftjmpy top
        halt
    )";
    const std::string key = "%N%";
    src.replace(src.find(key), key.size(), std::to_string(count));
    return saveObject(assemble(src));
}

std::vector<std::uint8_t>
infiniteImage()
{
    return saveObject(assemble(R"(
        .entry s
s:      jmp s
    )"));
}

/** Submit and block for the terminal state. */
JobResult
submitWait(SimService& service, JobRequest req)
{
    std::promise<JobResult> p;
    auto fut = p.get_future();
    const auto st = service.submit(
        req, [&p](const JobResult& r) { p.set_value(r); });
    EXPECT_EQ(st, SubmitStatus::kAccepted);
    return fut.get();
}

// --- frame parser -----------------------------------------------------

TEST(FrameParser, DeliversFramesFedOneByteAtATime)
{
    std::vector<std::uint8_t> wire;
    appendFrame(wire, FrameType::kHealth, {});
    appendFrame(wire, FrameType::kSubmit, {1, 2, 3});
    FrameParser parser;
    std::vector<Frame> got;
    for (const std::uint8_t b : wire) {
        parser.feed(&b, 1);
        while (auto f = parser.next())
            got.push_back(std::move(*f));
    }
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].type, FrameType::kHealth);
    EXPECT_TRUE(got[0].payload.empty());
    EXPECT_EQ(got[1].type, FrameType::kSubmit);
    EXPECT_EQ(got[1].payload, (std::vector<std::uint8_t>{1, 2, 3}));
    EXPECT_EQ(parser.buffered(), 0u);
}

TEST(FrameParser, BadMagicPoisonsTheStreamForever)
{
    FrameParser parser;
    const std::uint8_t junk[] = {0xde, 0xad, 0xbe, 0xef, 0x01,
                                 0x00, 0x00, 0x00, 0x00};
    parser.feed(junk, sizeof junk);
    EXPECT_THROW(parser.next(), ProtocolError);
    // Poisoned: even well-formed bytes are never trusted again.
    std::vector<std::uint8_t> good;
    appendFrame(good, FrameType::kHealth, {});
    EXPECT_THROW(parser.feed(good.data(), good.size()), ProtocolError);
    EXPECT_THROW(parser.next(), ProtocolError);
}

TEST(FrameParser, UnknownTypeRejected)
{
    std::vector<std::uint8_t> wire;
    appendFrame(wire, FrameType::kHealth, {});
    wire[4] = 99; // not a FrameType
    FrameParser parser;
    parser.feed(wire.data(), wire.size());
    EXPECT_THROW(parser.next(), ProtocolError);
}

TEST(FrameParser, DeclaredLengthOverCapRejectedBeforeBuffering)
{
    std::vector<std::uint8_t> wire;
    appendFrame(wire, FrameType::kSubmit, {});
    wire[5] = 0xff; // length := 0xffffffff, far over the cap
    wire[6] = 0xff;
    wire[7] = 0xff;
    wire[8] = 0xff;
    FrameParser parser;
    parser.feed(wire.data(), wire.size());
    // Rejected from the 9 header bytes alone — the parser must not
    // wait for 4 GiB that will never arrive.
    EXPECT_THROW(parser.next(), ProtocolError);
}

TEST(FrameParser, ConsumedPrefixIsCompacted)
{
    FrameParser parser;
    std::vector<std::uint8_t> wire;
    appendFrame(wire, FrameType::kSubmit,
                std::vector<std::uint8_t>(1024, 7));
    for (int i = 0; i < 100; ++i) {
        parser.feed(wire.data(), wire.size());
        ASSERT_TRUE(parser.next().has_value());
    }
    // A forever-streaming connection must not grow the buffer without
    // bound; after each consumed frame nothing is left.
    EXPECT_EQ(parser.buffered(), 0u);
}

// --- payload round trips ----------------------------------------------

TEST(Payloads, JobRequestRoundTrip)
{
    JobRequest req;
    req.jobId = 0x1122334455667788ull;
    req.deadlineMs = 1500;
    req.maxRetries = 3;
    req.foldPolicy = FoldPolicy::kAll;
    req.predictor = PredictorKind::kDynamic2;
    req.engine = EngineKind::kFast;
    req.dicEntries = 64;
    req.memLatency = 7;
    req.maxCycles = 0x100000001ull;
    req.image = {9, 8, 7, 6, 5};
    const JobRequest back = JobRequest::decode(req.encode());
    EXPECT_EQ(back.jobId, req.jobId);
    EXPECT_EQ(back.deadlineMs, req.deadlineMs);
    EXPECT_EQ(back.maxRetries, req.maxRetries);
    EXPECT_EQ(back.foldPolicy, req.foldPolicy);
    EXPECT_EQ(back.predictor, req.predictor);
    EXPECT_EQ(back.engine, req.engine);
    EXPECT_EQ(back.dicEntries, req.dicEntries);
    EXPECT_EQ(back.memLatency, req.memLatency);
    EXPECT_EQ(back.maxCycles, req.maxCycles);
    EXPECT_EQ(back.image, req.image);
}

TEST(Payloads, TruncationAndTrailingBytesRejected)
{
    JobRequest req;
    req.image = {1, 2, 3};
    auto bytes = req.encode();
    auto truncated = bytes;
    truncated.pop_back();
    EXPECT_THROW(JobRequest::decode(truncated), ProtocolError);
    auto trailing = bytes;
    trailing.push_back(0);
    EXPECT_THROW(JobRequest::decode(trailing), ProtocolError);
}

TEST(Payloads, EnumRangesValidatedOnDecode)
{
    JobRequest req;
    auto bytes = req.encode();
    bytes[13] = 17; // fold policy byte
    EXPECT_THROW(JobRequest::decode(bytes), ProtocolError);

    JobResult res;
    auto rbytes = res.encode();
    rbytes[8] = 9; // state byte
    EXPECT_THROW(JobResult::decode(rbytes), ProtocolError);
}

TEST(Payloads, JobResultRoundTrip)
{
    JobResult res;
    res.jobId = 42;
    res.state = JobState::kTimedOut;
    res.retries = 2;
    res.cacheHit = true;
    res.engine = EngineKind::kFast;
    res.exitValue = 5050;
    res.cycles = 123456;
    res.instructions = 654321;
    res.detail = "deadline expired";
    const JobResult back = JobResult::decode(res.encode());
    EXPECT_EQ(back.jobId, res.jobId);
    EXPECT_EQ(back.state, res.state);
    EXPECT_EQ(back.retries, res.retries);
    EXPECT_EQ(back.cacheHit, res.cacheHit);
    EXPECT_EQ(back.engine, res.engine);
    EXPECT_EQ(back.exitValue, res.exitValue);
    EXPECT_EQ(back.cycles, res.cycles);
    EXPECT_EQ(back.instructions, res.instructions);
    EXPECT_EQ(back.detail, res.detail);
}

TEST(Payloads, HealthErrorShutdownRoundTrips)
{
    HealthReply h;
    h.health = HealthState::kDegraded;
    h.ledger.submitted = 100;
    h.ledger.accepted = 90;
    h.ledger.rejected = 10;
    h.ledger.done = 80;
    h.ledger.shed = 5;
    h.ledger.timedOut = 5;
    const HealthReply hb = HealthReply::decode(h.encode());
    EXPECT_EQ(hb.health, h.health);
    EXPECT_EQ(hb.ledger.submitted, 100u);
    EXPECT_TRUE(hb.ledger.consistent());

    ErrorReply e;
    e.jobId = 7;
    e.text = "no";
    const ErrorReply eb = ErrorReply::decode(e.encode());
    EXPECT_EQ(eb.jobId, 7u);
    EXPECT_EQ(eb.text, "no");

    ShutdownRequest s;
    s.drain = false;
    EXPECT_FALSE(ShutdownRequest::decode(s.encode()).drain);
    auto bad = s.encode();
    bad[0] = 2;
    EXPECT_THROW(ShutdownRequest::decode(bad), ProtocolError);
}

// --- bounded queue ----------------------------------------------------

TEST(BoundedQueue, FifoAndFullShed)
{
    BoundedQueue<int> q(2);
    EXPECT_EQ(q.tryPush(1), BoundedQueue<int>::Push::kOk);
    EXPECT_EQ(q.tryPush(2), BoundedQueue<int>::Push::kOk);
    EXPECT_EQ(q.tryPush(3), BoundedQueue<int>::Push::kFull);
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, CloseDrainLeavesWorkForConsumers)
{
    BoundedQueue<int> q(4);
    q.tryPush(1);
    q.tryPush(2);
    const auto orphans = q.close(BoundedQueue<int>::Close::kDrain);
    EXPECT_TRUE(orphans.empty());
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_FALSE(q.pop().has_value()); // closed + empty: consumers exit
    EXPECT_EQ(q.tryPush(9), BoundedQueue<int>::Push::kClosed);
}

TEST(BoundedQueue, CloseAbortHandsBackOrphans)
{
    BoundedQueue<int> q(4);
    q.tryPush(1);
    q.tryPush(2);
    const auto orphans = q.close(BoundedQueue<int>::Close::kAbort);
    ASSERT_EQ(orphans.size(), 2u);
    EXPECT_EQ(orphans[0], 1);
    EXPECT_EQ(orphans[1], 2);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, PopBlocksUntilWorkArrives)
{
    BoundedQueue<int> q(4);
    std::thread producer([&q] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        q.tryPush(42);
    });
    EXPECT_EQ(q.pop().value(), 42); // blocks until the push
    producer.join();
}

// --- caches -----------------------------------------------------------

TEST(Caches, Fnv1aDistinguishesImages)
{
    EXPECT_EQ(fnv1a({}), 0xcbf29ce484222325ull);
    EXPECT_NE(fnv1a({1}), fnv1a({2}));
    EXPECT_NE(fnv1a({1, 2}), fnv1a({2, 1}));
}

TEST(Caches, RegistryInternsAndSharesWarmTables)
{
    ProgramRegistry reg(4);
    const auto image = countedImage(10);
    const std::uint64_t hash = fnv1a(image);
    const auto a = reg.intern(hash, loadObject(image));
    const auto b = reg.intern(hash, loadObject(image));
    EXPECT_EQ(a.get(), b.get()); // same entry, one predecode cache
    EXPECT_EQ(reg.size(), 1u);
    PredecodeCache* t1 = reg.sharedTables(a, FoldPolicy::kCrisp);
    PredecodeCache* t2 = reg.sharedTables(b, FoldPolicy::kCrisp);
    ASSERT_NE(t1, nullptr);
    EXPECT_EQ(t1, t2);
}

TEST(Caches, RegistryEvictsLruButHoldersSurvive)
{
    ProgramRegistry reg(2);
    const auto img1 = countedImage(11);
    const auto held = reg.intern(fnv1a(img1), loadObject(img1));
    for (int i = 12; i < 16; ++i) {
        const auto img = countedImage(i);
        reg.intern(fnv1a(img), loadObject(img));
    }
    EXPECT_LE(reg.size(), 2u);
    // The evicted entry is still usable by its holder (shared_ptr).
    EXPECT_NE(reg.sharedTables(held, FoldPolicy::kCrisp), nullptr);
}

TEST(Caches, ResultCacheHitsAndEvicts)
{
    ResultCache cache(2);
    PolicyKey k1;
    k1.hash = 1;
    PolicyKey k2 = k1;
    k2.hash = 2;
    PolicyKey k3 = k1;
    k3.hash = 3;
    JobResult r;
    r.state = JobState::kDone;
    r.cycles = 99;
    cache.store(k1, r);
    cache.store(k2, r);
    const auto hit = cache.lookup(k1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->cacheHit); // the lookup sets the flag
    EXPECT_EQ(hit->cycles, 99u);
    cache.store(k3, r); // k2 is now the LRU victim (k1 was touched)
    EXPECT_TRUE(cache.lookup(k1).has_value());
    EXPECT_FALSE(cache.lookup(k2).has_value());
    EXPECT_TRUE(cache.lookup(k3).has_value());
}

TEST(Caches, PolicyKeyDistinguishesEveryKnob)
{
    PolicyKey base;
    base.hash = 7;
    for (int field = 0; field < 6; ++field) {
        PolicyKey other = base;
        switch (field) {
          case 0:
            other.foldPolicy = FoldPolicy::kNone;
            break;
          case 1:
            other.predictor = PredictorKind::kDynamic1;
            break;
          case 2:
            other.dicEntries = 64;
            break;
          case 3:
            other.memLatency = 9;
            break;
          case 4:
            other.maxCycles = 1;
            break;
          case 5:
            other.engine = EngineKind::kFast;
            break;
        }
        EXPECT_TRUE(base < other || other < base)
            << "field " << field << " not part of the key";
    }
}

// --- cooperative cancellation (simulator + lockstep) ------------------

TEST(Cancellation, FlagEndsTheRunWithCancelledStats)
{
    const Program prog = assemble(R"(
        .entry s
s:      jmp s
    )");
    SimConfig cfg;
    cfg.maxCycles = 100'000'000;
    CrispCpu cpu(prog, cfg);
    std::atomic<bool> flag{true}; // pre-fired: cancels within the
                                  // first poll interval
    cpu.setCancelFlag(&flag);
    const SimStats& st = cpu.run();
    EXPECT_TRUE(st.cancelled);
    EXPECT_FALSE(st.halted);
    EXPECT_FALSE(st.timedOut);
    EXPECT_LE(st.cycles, 5000u); // one poll interval, not the budget
}

TEST(Cancellation, ResetClearsCancelledAndRunsAgain)
{
    const Program prog = loadObject(countedImage(50));
    CrispCpu cpu(prog);
    std::atomic<bool> flag{true};
    cpu.setCancelFlag(&flag);
    (void)cpu.run();
    // A pre-fired flag may or may not outrace this short program; what
    // matters is that reset + cleared flag always completes.
    flag = false;
    cpu.reset();
    const SimStats& st2 = cpu.run();
    EXPECT_TRUE(st2.halted);
    EXPECT_FALSE(st2.cancelled);
}

TEST(Cancellation, LockstepReportsTimeoutKind)
{
    // Halts on the reference interpreter (so lockstep reaches the
    // pipeline phase) but runs well past the first cancellation poll,
    // so the pre-fired flag ends the pipeline run mid-flight.
    const Program prog = loadObject(countedImage(10'000));
    std::atomic<bool> flag{true};
    verify::LockstepOptions opt;
    opt.cancel = &flag;
    const auto rep = verify::runLockstep(prog, opt);
    EXPECT_EQ(rep.kind, verify::Divergence::kTimeout);
    EXPECT_TRUE(rep.sim.cancelled);
}

// --- SimService end to end --------------------------------------------

TEST(SimService, RunsAJobToDone)
{
    SimService service;
    JobRequest req;
    req.jobId = 1;
    req.image = countedImage(100);
    const JobResult res = submitWait(service, req);
    EXPECT_EQ(res.state, JobState::kDone);
    EXPECT_GT(res.cycles, 0u);
    EXPECT_GT(res.instructions, 0u);
    EXPECT_FALSE(res.cacheHit);
    service.shutdown(true);
    const auto ledger = service.ledger();
    EXPECT_TRUE(ledger.consistent());
    EXPECT_EQ(ledger.done, 1u);
}

TEST(SimService, DuplicateSubmissionHitsTheResultCache)
{
    SimService service;
    JobRequest req;
    req.jobId = 1;
    req.image = countedImage(123);
    const JobResult first = submitWait(service, req);
    req.jobId = 2;
    const JobResult second = submitWait(service, req);
    EXPECT_EQ(first.state, JobState::kDone);
    EXPECT_EQ(second.state, JobState::kDone);
    EXPECT_FALSE(first.cacheHit);
    EXPECT_TRUE(second.cacheHit);
    EXPECT_EQ(second.jobId, 2u); // re-tagged for the new request
    EXPECT_EQ(second.cycles, first.cycles);
    EXPECT_EQ(second.exitValue, first.exitValue);
    EXPECT_EQ(service.ledger().resultCacheHits, 1u);
}

TEST(SimService, CachedResultsNeverCrossEngineModes)
{
    // Same image, same policy knobs, different engine: the cycle
    // result (with real cycle counts) must never be replayed to a
    // fast-engine request, and vice versa.
    SimService service;
    JobRequest req;
    req.jobId = 1;
    req.image = countedImage(200);
    const JobResult cycle = submitWait(service, req);
    ASSERT_EQ(cycle.state, JobState::kDone);
    EXPECT_EQ(cycle.engine, EngineKind::kCycle);
    EXPECT_GT(cycle.cycles, 0u);

    req.jobId = 2;
    req.engine = EngineKind::kFast;
    const JobResult fast = submitWait(service, req);
    ASSERT_EQ(fast.state, JobState::kDone);
    EXPECT_FALSE(fast.cacheHit) << "cycle result served across engines";
    EXPECT_EQ(fast.engine, EngineKind::kFast);
    EXPECT_EQ(fast.cycles, 0u);
    // Architectural agreement between the two engines' results.
    EXPECT_EQ(fast.exitValue, cycle.exitValue);
    EXPECT_EQ(fast.instructions, cycle.instructions);

    // A repeat on the SAME engine is the legitimate cache hit, and it
    // replays the fast payload, not the cycle one.
    req.jobId = 3;
    const JobResult fast2 = submitWait(service, req);
    EXPECT_TRUE(fast2.cacheHit);
    EXPECT_EQ(fast2.engine, EngineKind::kFast);
    EXPECT_EQ(fast2.cycles, 0u);
    EXPECT_EQ(service.ledger().resultCacheHits, 1u);
}

TEST(SimService, RejectsInterpEngineAtAdmission)
{
    SimService service;
    JobRequest req;
    req.jobId = 1;
    req.image = countedImage(10);
    req.engine = EngineKind::kInterp;
    std::string why;
    const auto st = service.submit(
        req, [](const JobResult&) { FAIL() << "rejected jobs must not "
                                              "reach a terminal state"; },
        &why);
    EXPECT_EQ(st, SubmitStatus::kRejected);
    EXPECT_NE(why.find("interp"), std::string::npos);
    EXPECT_EQ(service.ledger().rejected, 1u);
}

TEST(SimService, RejectsGarbageAtAdmission)
{
    SimService service;
    JobRequest junk;
    junk.image.assign(64, 0x5a);
    std::string why;
    std::atomic<int> completions{0};
    const auto st = service.submit(
        junk, [&completions](const JobResult&) { ++completions; },
        &why);
    EXPECT_EQ(st, SubmitStatus::kRejected);
    EXPECT_NE(why.find("loader"), std::string::npos) << why;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(completions.load(), 0); // rejected: never completed
    const auto ledger = service.ledger();
    EXPECT_EQ(ledger.rejected, 1u);
    EXPECT_EQ(ledger.accepted, 0u);
    EXPECT_TRUE(ledger.consistent());
}

TEST(SimService, RejectsBadPolicyKnobs)
{
    SimService service;
    JobRequest req;
    req.image = countedImage(10);
    req.dicEntries = 33; // not a power of two
    std::string why;
    EXPECT_EQ(service.submit(req, [](const JobResult&) {}, &why),
              SubmitStatus::kRejected);
    EXPECT_NE(why.find("power of two"), std::string::npos) << why;
}

TEST(SimService, DeadlineTimesOutANonTerminatingProgram)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    SimService service(cfg);
    JobRequest req;
    req.jobId = 9;
    req.image = infiniteImage();
    req.deadlineMs = 150;
    req.maxCycles = 1'000'000'000ull; // the wall clock must win
    const auto t0 = std::chrono::steady_clock::now();
    const JobResult res = submitWait(service, req);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_EQ(res.state, JobState::kTimedOut);
    EXPECT_LT(elapsed, std::chrono::seconds(10));
    const auto ledger = service.ledger();
    EXPECT_EQ(ledger.timedOut, 1u);
    EXPECT_TRUE(ledger.consistent());
}

TEST(SimService, QuarantinesARepeatOffender)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.quarantineStrikes = 1;
    SimService service(cfg);
    JobRequest req;
    req.image = infiniteImage();
    req.deadlineMs = 100;
    req.jobId = 1;
    EXPECT_EQ(submitWait(service, req).state, JobState::kTimedOut);
    req.jobId = 2;
    const JobResult second = submitWait(service, req);
    EXPECT_EQ(second.state, JobState::kFailed);
    EXPECT_NE(second.detail.find("quarantined"), std::string::npos)
        << second.detail;
    const auto ledger = service.ledger();
    EXPECT_EQ(ledger.quarantined, 1u);
    EXPECT_TRUE(ledger.consistent());
}

TEST(SimService, ShedsWhenTheQueueIsFullAndRecovers)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.queueCap = 1;
    SimService service(cfg);
    // A long job occupies the worker; a second fills the queue; the
    // third must shed immediately.
    JobRequest slow;
    slow.image = countedImage(3'000'000);
    slow.deadlineMs = 60'000;
    std::promise<JobResult> p1;
    auto f1 = p1.get_future();
    slow.jobId = 1;
    ASSERT_EQ(service.submit(slow,
                             [&p1](const JobResult& r) {
                                 p1.set_value(r);
                             }),
              SubmitStatus::kAccepted);
    JobRequest queued;
    queued.image = countedImage(3'000'001);
    queued.deadlineMs = 60'000;
    queued.jobId = 2;
    std::promise<JobResult> p2;
    auto f2 = p2.get_future();
    // The worker may briefly leave the queue empty while it picks up
    // job 1; retry until job 2 is actually parked in the queue.
    JobResult r2{};
    bool queued_ok = false;
    for (int i = 0; i < 100 && !queued_ok; ++i) {
        if (service.ledger().inFlight > 0)
            queued_ok = true;
        else
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
    }
    ASSERT_EQ(service.submit(queued,
                             [&p2](const JobResult& r) {
                                 p2.set_value(r);
                             }),
              SubmitStatus::kAccepted);
    JobRequest third;
    third.image = countedImage(3'000'002);
    third.deadlineMs = 60'000;
    third.jobId = 3;
    const JobResult shed = submitWait(service, third);
    EXPECT_EQ(shed.state, JobState::kShed);
    EXPECT_EQ(service.health(), HealthState::kDegraded);
    (void)f1.get();
    r2 = f2.get();
    EXPECT_EQ(r2.state, JobState::kDone);
    service.quiesce();
    EXPECT_EQ(service.health(), HealthState::kOk); // recovered
    const auto ledger = service.ledger();
    EXPECT_EQ(ledger.shed, 1u);
    EXPECT_GE(ledger.degradedTransitions, 1u);
    EXPECT_GE(ledger.recoveredTransitions, 1u);
    EXPECT_TRUE(ledger.consistent());
}

TEST(SimService, TransientFaultsRetryWithBackoffThenExhaust)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.transientFaultPerMille = 1000; // every attempt fails
    cfg.retryCap = 2;
    cfg.backoffBaseMs = 1;
    cfg.backoffCapMs = 4;
    SimService service(cfg);
    JobRequest req;
    req.jobId = 5;
    req.image = countedImage(100);
    req.maxRetries = 2;
    const JobResult res = submitWait(service, req);
    EXPECT_EQ(res.state, JobState::kFailed);
    EXPECT_EQ(res.retries, 2u);
    EXPECT_NE(res.detail.find("retries exhausted"), std::string::npos)
        << res.detail;
    EXPECT_EQ(service.ledger().retriesScheduled, 2u);
    EXPECT_TRUE(service.ledger().consistent());
}

TEST(SimService, AbortShutdownShedsQueuedJobsWithTerminalStates)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.queueCap = 16;
    SimService service(cfg);
    std::mutex mu;
    std::map<std::uint64_t, int> seen;
    std::condition_variable cv;
    int total = 0;
    const auto completion = [&](const JobResult& r) {
        std::lock_guard<std::mutex> lk(mu);
        ++seen[r.jobId];
        ++total;
        cv.notify_all();
    };
    for (std::uint64_t id = 1; id <= 8; ++id) {
        JobRequest req;
        req.jobId = id;
        req.image = countedImage(2'000'000 +
                                 static_cast<int>(id));
        req.deadlineMs = 60'000;
        ASSERT_EQ(service.submit(req, completion),
                  SubmitStatus::kAccepted);
    }
    service.shutdown(false); // abort: queued jobs shed, running finishes
    {
        std::unique_lock<std::mutex> lk(mu);
        ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(30),
                                [&] { return total == 8; }));
        for (std::uint64_t id = 1; id <= 8; ++id)
            EXPECT_EQ(seen[id], 1) << "job " << id;
    }
    const auto ledger = service.ledger();
    EXPECT_TRUE(ledger.consistent());
    EXPECT_EQ(ledger.queued, 0u);
    EXPECT_EQ(ledger.inFlight, 0u);
    EXPECT_GT(ledger.shed, 0u);
    // Post-shutdown submissions are refused, not lost.
    JobRequest late;
    late.image = countedImage(10);
    std::string why;
    EXPECT_EQ(service.submit(late, completion, &why),
              SubmitStatus::kRejected);
}

TEST(SimService, LedgerExactlyOnceUnderConcurrentLoad)
{
    ServiceConfig cfg;
    cfg.workers = 4;
    cfg.queueCap = 256;
    SimService service(cfg);
    std::mutex mu;
    std::map<std::uint64_t, int> seen;
    std::atomic<std::uint64_t> next{1};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 25; ++i) {
                JobRequest req;
                req.jobId = next.fetch_add(1);
                req.image = countedImage(
                    50 + static_cast<int>(req.jobId));
                req.deadlineMs = 60'000;
                std::promise<void> p;
                auto fut = p.get_future();
                const auto id = req.jobId;
                ASSERT_EQ(service.submit(req,
                                         [&, id](const JobResult& r) {
                                             std::lock_guard<std::mutex>
                                                 lk(mu);
                                             ++seen[r.jobId];
                                             EXPECT_EQ(r.jobId, id);
                                             p.set_value();
                                         }),
                          SubmitStatus::kAccepted);
                fut.get();
            }
        });
    }
    for (auto& t : threads)
        t.join();
    service.shutdown(true);
    const auto ledger = service.ledger();
    EXPECT_TRUE(ledger.consistent());
    EXPECT_EQ(ledger.accepted, 100u);
    EXPECT_EQ(ledger.done + ledger.failed + ledger.shed +
                  ledger.timedOut,
              100u);
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_EQ(seen.size(), 100u);
    for (const auto& [id, n] : seen)
        EXPECT_EQ(n, 1) << "job " << id;
}

} // namespace
