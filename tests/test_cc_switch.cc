/**
 * @file
 * Tests for the switch statement (dense jump tables through indirect
 * branches — the paper's "case statements" — and sparse compare
 * chains) and the ternary operator.
 */

#include <gtest/gtest.h>

#include "baseline/delayed.hh"
#include "cc/compiler.hh"
#include "interp/interpreter.hh"
#include "sim/cpu.hh"

namespace crisp
{
namespace
{

Word
ret(const std::string& src, const cc::CompileOptions& opts = {})
{
    const auto r = cc::compile(src, opts);
    Interpreter interp(r.program);
    EXPECT_TRUE(interp.run(50'000'000).halted);
    return interp.accum();
}

TEST(Ternary, BasicSelection)
{
    EXPECT_EQ(ret("int main() { int a = 7; return a > 3 ? 1 : 2; }"), 1);
    EXPECT_EQ(ret("int main() { int a = 1; return a > 3 ? 1 : 2; }"), 2);
    EXPECT_EQ(ret("int main() { int a = 5; return a ? a * 2 : -1; }"),
              10);
}

TEST(Ternary, NestsAndChains)
{
    const char* src = R"(
        int sign(int x) { return x < 0 ? -1 : x > 0 ? 1 : 0; }
        int main() { return sign(-5) * 100 + sign(9) * 10 + sign(0); }
    )";
    EXPECT_EQ(ret(src), -90);
}

TEST(Ternary, OnlyChosenArmEvaluates)
{
    const char* src = R"(
        int hits;
        int bump() { hits++; return 9; }
        int main() {
            int r = 1 ? 5 : bump();
            r += 0 ? bump() : 3;
            return r * 100 + hits;
        }
    )";
    EXPECT_EQ(ret(src), 800);
}

TEST(Ternary, ConstantFolds)
{
    EXPECT_EQ(ret("int main() { return 3 > 2 ? 10 + 1 : 99; }"), 11);
}

TEST(Ternary, AsArgumentAndIndex)
{
    const char* src = R"(
        int a[4];
        int f(int x) { return x + 1; }
        int main() {
            a[0] = 5; a[3] = 9;
            int i = 2;
            return f(i > 1 ? a[3] : a[0]);
        }
    )";
    EXPECT_EQ(ret(src), 10);
}

TEST(Switch, DenseUsesJumpTable)
{
    const char* src = R"(
        int f(int x) {
            switch (x) {
            case 0: return 100;
            case 1: return 101;
            case 2: return 102;
            case 3: return 103;
            case 4: return 104;
            default: return -1;
            }
        }
        int main() {
            return f(0) + f(2) + f(4) + f(9);
        }
    )";
    const auto r = cc::compile(src);
    // A jump table means a compiler-generated indirect jump exists.
    bool has_indirect = false;
    for (const auto& c : r.code) {
        if (c.kind == cc::CodeItem::Kind::kInst &&
            c.inst.op == Opcode::kJmp &&
            c.inst.bmode == BranchMode::kIndSp) {
            has_indirect = true;
        }
    }
    EXPECT_TRUE(has_indirect);

    Interpreter interp(r.program);
    EXPECT_TRUE(interp.run(1'000'000).halted);
    EXPECT_EQ(interp.accum(), 100 + 102 + 104 - 1);

    // And the pipeline pays its indirect-transfer bubbles but gets the
    // same answer.
    CrispCpu cpu(r.program);
    const SimStats& s = cpu.run();
    EXPECT_EQ(cpu.accum(), interp.accum());
    EXPECT_GT(s.indirectStallCycles, 0u);
}

TEST(Switch, SparseUsesCompareChain)
{
    const char* src = R"(
        int f(int x) {
            switch (x) {
            case 10: return 1;
            case 1000: return 2;
            case 100000: return 3;
            default: return 0;
            }
        }
        int main() { return f(1000) * 10 + f(7); }
    )";
    const auto r = cc::compile(src);
    for (const auto& c : r.code) {
        if (c.kind == cc::CodeItem::Kind::kInst) {
            EXPECT_FALSE(isBranch(c.inst.op)) << "unexpected jump table";
        }
    }
    EXPECT_EQ(ret(src), 20);
}

TEST(Switch, FallThrough)
{
    const char* src = R"(
        int main() {
            int r = 0;
            switch (2) {
            case 1: r += 1;
            case 2: r += 2;      // entry point
            case 3: r += 4;      // falls through
                break;
            case 4: r += 8;
            }
            return r;
        }
    )";
    EXPECT_EQ(ret(src), 6);
}

TEST(Switch, DefaultOnlyAndNoDefault)
{
    EXPECT_EQ(ret(R"(
        int main() {
            int r = 5;
            switch (r) { default: r = 9; }
            return r;
        }
    )"),
              9);
    EXPECT_EQ(ret(R"(
        int main() {
            int r = 5;
            switch (r) { case 1: r = 9; break; }
            return r;          // no match, no default: skip the body
        }
    )"),
              5);
}

TEST(Switch, NegativeAndOffsetRanges)
{
    const char* src = R"(
        int f(int x) {
            switch (x) {
            case -2: return 1;
            case -1: return 2;
            case 0: return 3;
            case 1: return 4;
            default: return 9;
            }
        }
        int main() {
            return f(-2) * 1000 + f(0) * 100 + f(1) * 10 + f(5);
        }
    )";
    EXPECT_EQ(ret(src), 1349);
}

TEST(Switch, OutOfRangeBelowAndAbove)
{
    // The unsigned bound check must route both directions of
    // out-of-range values to the default.
    const char* src = R"(
        int f(int x) {
            switch (x) {
            case 5: return 1;
            case 6: return 2;
            case 7: return 3;
            case 8: return 4;
            default: return 0;
            }
        }
        int main() { return f(-1000) + f(4) + f(9) + f(1000000) + f(6); }
    )";
    EXPECT_EQ(ret(src), 2);
}

TEST(Switch, BreakAndNestedLoops)
{
    const char* src = R"(
        int main() {
            int r = 0;
            for (int i = 0; i < 10; i++) {
                switch (i & 3) {
                case 0: r += 1; break;
                case 1: continue;     // continues the for loop
                case 2: r += 10; break;
                default: r += 100;
                }
                r += 1000;
            }
            return r;
        }
    )";
    int r = 0;
    for (int i = 0; i < 10; i++) {
        switch (i & 3) {
          case 0: r += 1; break;
          case 1: continue;
          case 2: r += 10; break;
          default: r += 100;
        }
        r += 1000;
    }
    EXPECT_EQ(ret(src), r);
}

TEST(Switch, WorksOnPipelineAndDelayedMachines)
{
    const char* src = R"(
        int total;
        int main() {
            total = 0;
            for (int i = 0; i < 40; i++) {
                switch (i % 5) {
                case 0: total += 1; break;
                case 1: total += 2; break;
                case 2: total += 3; break;
                case 3: total -= 1; break;
                case 4: total ^= 7; break;
                }
            }
            return total;
        }
    )";
    Interpreter interp(cc::compile(src).program);
    interp.run(1'000'000);

    CrispCpu cpu(cc::compile(src).program);
    cpu.run();
    EXPECT_EQ(cpu.accum(), interp.accum());

    cc::CompileOptions del;
    del.delaySlots = true;
    DelayedBranchCpu dcpu(cc::compile(src, del).program);
    dcpu.run(1'000'000);
    EXPECT_EQ(dcpu.accum(), interp.accum());
}

TEST(Switch, Errors)
{
    EXPECT_THROW(cc::compile(R"(
        int main() { switch (1) { case 1: case 1: return 0; } }
    )"),
                 CrispError);
    EXPECT_THROW(cc::compile(R"(
        int main() { switch (1) { default: ; default: ; } return 0; }
    )"),
                 CrispError);
    EXPECT_THROW(cc::compile("int main() { case 1: return 0; }"),
                 CrispError);
}

} // namespace
} // namespace crisp
