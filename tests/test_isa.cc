/**
 * @file
 * Unit tests for opcode properties and ALU/compare semantics.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "isa/opcode.hh"
#include "isa/types.hh"

namespace crisp
{
namespace
{

TEST(Opcode, Names)
{
    EXPECT_EQ(opcodeName(Opcode::kAdd), "add");
    EXPECT_EQ(opcodeName(Opcode::kAnd3), "and3");
    EXPECT_EQ(opcodeName(Opcode::kCmpEq), "cmp.=");
    EXPECT_EQ(opcodeName(Opcode::kCmpLt), "cmp.s<");
    EXPECT_EQ(opcodeName(Opcode::kCmpGeU), "cmp.u>=");
    EXPECT_EQ(opcodeName(Opcode::kIfTJmp), "iftjmp");
    EXPECT_EQ(opcodeName(Opcode::kLeave), "leave");
    // Every opcode has a distinct, non-error name.
    std::set<std::string_view> seen;
    for (int i = 0; i < kOpcodeCount; ++i) {
        const auto n = opcodeName(static_cast<Opcode>(i));
        EXPECT_NE(n, "<bad-opcode>");
        EXPECT_TRUE(seen.insert(n).second) << n;
    }
}

TEST(Opcode, Classification)
{
    EXPECT_TRUE(isBranch(Opcode::kJmp));
    EXPECT_TRUE(isBranch(Opcode::kIfTJmp));
    EXPECT_TRUE(isBranch(Opcode::kIfFJmp));
    EXPECT_TRUE(isBranch(Opcode::kCall));
    EXPECT_FALSE(isBranch(Opcode::kReturn));
    EXPECT_FALSE(isBranch(Opcode::kAdd));

    EXPECT_TRUE(isConditionalBranch(Opcode::kIfTJmp));
    EXPECT_TRUE(isConditionalBranch(Opcode::kIfFJmp));
    EXPECT_FALSE(isConditionalBranch(Opcode::kJmp));
    EXPECT_FALSE(isConditionalBranch(Opcode::kCall));

    EXPECT_TRUE(isCompare(Opcode::kCmpEq));
    EXPECT_TRUE(isCompare(Opcode::kCmpGeU));
    EXPECT_FALSE(isCompare(Opcode::kAnd));
    EXPECT_FALSE(isCompare(Opcode::kMov));

    EXPECT_TRUE(isAlu2(Opcode::kAdd));
    EXPECT_TRUE(isAlu2(Opcode::kRem));
    EXPECT_FALSE(isAlu2(Opcode::kAdd3));
    EXPECT_TRUE(isAlu3(Opcode::kAnd3));
    EXPECT_FALSE(isAlu3(Opcode::kAnd));
}

TEST(Opcode, OnlyComparesWriteTheFlag)
{
    // The paper's design rule: the condition code is written only by
    // compare instructions.
    for (int i = 0; i < kOpcodeCount; ++i) {
        const auto op = static_cast<Opcode>(i);
        Instruction inst;
        inst.op = op;
        EXPECT_EQ(inst.writesCc(), isCompare(op)) << opcodeName(op);
    }
}

TEST(Opcode, FoldableBodies)
{
    // Branches, return and halt cannot carry a folded branch.
    EXPECT_FALSE(isFoldableBody(Opcode::kJmp));
    EXPECT_FALSE(isFoldableBody(Opcode::kCall));
    EXPECT_FALSE(isFoldableBody(Opcode::kReturn));
    EXPECT_FALSE(isFoldableBody(Opcode::kHalt));
    EXPECT_TRUE(isFoldableBody(Opcode::kAdd));
    EXPECT_TRUE(isFoldableBody(Opcode::kCmpEq)); // cmp+branch folding
    EXPECT_TRUE(isFoldableBody(Opcode::kEnter));
    EXPECT_TRUE(isFoldableBody(Opcode::kLeave));
    EXPECT_TRUE(isFoldableBody(Opcode::kNop));
}

TEST(Alu, Arithmetic)
{
    EXPECT_EQ(evalAlu(Opcode::kAdd, 2, 3), 5);
    EXPECT_EQ(evalAlu(Opcode::kSub, 2, 3), -1);
    EXPECT_EQ(evalAlu(Opcode::kMul, -4, 3), -12);
    EXPECT_EQ(evalAlu(Opcode::kDiv, 7, 2), 3);
    EXPECT_EQ(evalAlu(Opcode::kDiv, -7, 2), -3);
    EXPECT_EQ(evalAlu(Opcode::kRem, 7, 3), 1);
    EXPECT_EQ(evalAlu(Opcode::kRem, -7, 3), -1);
}

TEST(Alu, WrapAround)
{
    EXPECT_EQ(evalAlu(Opcode::kAdd, INT32_MAX, 1), INT32_MIN);
    EXPECT_EQ(evalAlu(Opcode::kSub, INT32_MIN, 1), INT32_MAX);
    EXPECT_EQ(evalAlu(Opcode::kMul, 1 << 30, 4), 0);
}

TEST(Alu, DivisionEdgeCases)
{
    // Architecturally defined: x/0 == 0, x%0 == 0, INT_MIN/-1 == INT_MIN.
    EXPECT_EQ(evalAlu(Opcode::kDiv, 5, 0), 0);
    EXPECT_EQ(evalAlu(Opcode::kRem, 5, 0), 0);
    EXPECT_EQ(evalAlu(Opcode::kDiv, INT32_MIN, -1), INT32_MIN);
    EXPECT_EQ(evalAlu(Opcode::kRem, INT32_MIN, -1), 0);
}

TEST(Alu, ShiftsAreLogicalAndMasked)
{
    EXPECT_EQ(evalAlu(Opcode::kShl, 1, 4), 16);
    EXPECT_EQ(evalAlu(Opcode::kShr, -1, 28), 15);
    EXPECT_EQ(evalAlu(Opcode::kShl, 1, 33), 2);  // count masked to 5 bits
    EXPECT_EQ(evalAlu(Opcode::kShr, 256, 40), 1);
}

TEST(Alu, Bitwise)
{
    EXPECT_EQ(evalAlu(Opcode::kAnd, 0b1100, 0b1010), 0b1000);
    EXPECT_EQ(evalAlu(Opcode::kOr, 0b1100, 0b1010), 0b1110);
    EXPECT_EQ(evalAlu(Opcode::kXor, 0b1100, 0b1010), 0b0110);
}

TEST(Alu, ThreeOperandFormsMatchTwoOperand)
{
    const std::pair<Opcode, Opcode> pairs[] = {
        {Opcode::kAdd, Opcode::kAdd3}, {Opcode::kSub, Opcode::kSub3},
        {Opcode::kAnd, Opcode::kAnd3}, {Opcode::kOr, Opcode::kOr3},
        {Opcode::kXor, Opcode::kXor3}, {Opcode::kMul, Opcode::kMul3},
    };
    for (const auto& [two, three] : pairs) {
        for (int a : {-7, 0, 13, 100000}) {
            for (int b : {-3, 1, 29}) {
                EXPECT_EQ(evalAlu(two, a, b), evalAlu(three, a, b))
                    << opcodeName(two);
            }
        }
    }
}

TEST(Compare, AllRelations)
{
    EXPECT_TRUE(evalCompare(Opcode::kCmpEq, 5, 5));
    EXPECT_FALSE(evalCompare(Opcode::kCmpEq, 5, 6));
    EXPECT_TRUE(evalCompare(Opcode::kCmpNe, 5, 6));
    EXPECT_TRUE(evalCompare(Opcode::kCmpLt, -1, 0));
    EXPECT_FALSE(evalCompare(Opcode::kCmpLt, 0, 0));
    EXPECT_TRUE(evalCompare(Opcode::kCmpLe, 0, 0));
    EXPECT_TRUE(evalCompare(Opcode::kCmpGt, 1, 0));
    EXPECT_TRUE(evalCompare(Opcode::kCmpGe, 0, 0));
    // Unsigned relations treat -1 as UINT32_MAX.
    EXPECT_FALSE(evalCompare(Opcode::kCmpLtU, -1, 0));
    EXPECT_TRUE(evalCompare(Opcode::kCmpLtU, 0, -1));
    EXPECT_TRUE(evalCompare(Opcode::kCmpGeU, -1, 0));
}

TEST(Compare, ThrowsOnNonCompare)
{
    EXPECT_THROW(evalCompare(Opcode::kAdd, 1, 2), CrispError);
    EXPECT_THROW(evalAlu(Opcode::kCmpEq, 1, 2), CrispError);
    EXPECT_THROW(evalAlu(Opcode::kJmp, 1, 2), CrispError);
}

TEST(Types, SignExtend)
{
    EXPECT_EQ(signExtend(0x1FF, 9), -1);
    EXPECT_EQ(signExtend(0x0FF, 9), 255);
    EXPECT_EQ(signExtend(0x200, 10), -512);
    EXPECT_EQ(signExtend(0x1FF, 10), 511);
    EXPECT_EQ(signExtend(0xFFFF, 16), -1);
    EXPECT_EQ(signExtend(0x7FFF, 16), 32767);
    EXPECT_EQ(signExtend(0xFFFFFFFFu, 32), -1);
}

TEST(Instruction, LengthsFollowOperandShapes)
{
    // One parcel: small stack slots and tiny immediates.
    EXPECT_EQ(Instruction::alu(Opcode::kAdd, Operand::stack(3),
                               Operand::stack(4))
                  .lengthParcels(),
              1);
    EXPECT_EQ(Instruction::alu(Opcode::kAdd, Operand::stack(30),
                               Operand::imm(7))
                  .lengthParcels(),
              1);
    EXPECT_EQ(Instruction::cmp(Opcode::kCmpEq, Operand::accum(),
                               Operand::imm(0))
                  .lengthParcels(),
              1);
    // Three parcels: 16-bit specifiers.
    EXPECT_EQ(Instruction::alu(Opcode::kAdd, Operand::stack(31),
                               Operand::imm(7))
                  .lengthParcels(),
              3);
    EXPECT_EQ(Instruction::alu(Opcode::kAdd, Operand::stack(0),
                               Operand::imm(8))
                  .lengthParcels(),
              3);
    EXPECT_EQ(Instruction::cmp(Opcode::kCmpLt, Operand::stack(0),
                               Operand::imm(1024))
                  .lengthParcels(),
              3);
    EXPECT_EQ(Instruction::mov(Operand::abs(0x8000), Operand::imm(-5))
                  .lengthParcels(),
              3);
    // Five parcels: 32-bit specifiers.
    EXPECT_EQ(Instruction::mov(Operand::abs(0x10000), Operand::imm(0))
                  .lengthParcels(),
              5);
    EXPECT_EQ(Instruction::mov(Operand::stack(0), Operand::imm(70000))
                  .lengthParcels(),
              5);
    // Branches.
    EXPECT_EQ(Instruction::branchRel(Opcode::kJmp, 100).lengthParcels(),
              1);
    EXPECT_EQ(Instruction::branchFar(Opcode::kJmp, BranchMode::kAbs,
                                     0x4000)
                  .lengthParcels(),
              3);
    EXPECT_EQ(Instruction::branchFar(Opcode::kCall, BranchMode::kAbs,
                                     0x4000)
                  .lengthParcels(),
              3);
    // Fixed short forms.
    EXPECT_EQ(Instruction::nop().lengthParcels(), 1);
    EXPECT_EQ(Instruction::halt().lengthParcels(), 1);
    EXPECT_EQ(Instruction::enter(100).lengthParcels(), 1);
    EXPECT_EQ(Instruction::ret(100).lengthParcels(), 1);
    EXPECT_EQ(Instruction::leave(3).lengthParcels(), 1);
}

TEST(Instruction, ShortBranchRangeMatchesPaper)
{
    // The paper: one-parcel branches reach -1024 .. +1022 bytes.
    EXPECT_TRUE(fitsShortBranch(-1024));
    EXPECT_TRUE(fitsShortBranch(1022));
    EXPECT_FALSE(fitsShortBranch(-1026));
    EXPECT_FALSE(fitsShortBranch(1024));
    EXPECT_FALSE(fitsShortBranch(3)); // parcel alignment
    EXPECT_TRUE(fitsShortBranch(0));
}

TEST(Operand, Printing)
{
    EXPECT_EQ(Operand::stack(5).toString(), "sp[5]");
    EXPECT_EQ(Operand::imm(-3).toString(), "-3");
    EXPECT_EQ(Operand::accum().toString(), "Accum");
    EXPECT_EQ(Operand::ind(2).toString(), "[sp[2]]");
    EXPECT_EQ(Operand::abs(0x8000).toString(), "@0x8000");
}

TEST(Operand, Writability)
{
    EXPECT_TRUE(Operand::stack(0).isWritable());
    EXPECT_TRUE(Operand::abs(0x8000).isWritable());
    EXPECT_TRUE(Operand::ind(0).isWritable());
    EXPECT_TRUE(Operand::accum().isWritable());
    EXPECT_FALSE(Operand::imm(5).isWritable());
    EXPECT_FALSE(Operand::none().isWritable());
}

} // namespace
} // namespace crisp
