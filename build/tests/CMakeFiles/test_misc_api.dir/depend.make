# Empty dependencies file for test_misc_api.
# This may be replaced when dependencies are built.
