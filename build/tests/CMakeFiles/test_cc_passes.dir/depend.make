# Empty dependencies file for test_cc_passes.
# This may be replaced when dependencies are built.
