file(REMOVE_RECURSE
  "CMakeFiles/test_cc_passes.dir/test_cc_passes.cc.o"
  "CMakeFiles/test_cc_passes.dir/test_cc_passes.cc.o.d"
  "test_cc_passes"
  "test_cc_passes.pdb"
  "test_cc_passes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cc_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
