file(REMOVE_RECURSE
  "CMakeFiles/test_folding.dir/test_folding.cc.o"
  "CMakeFiles/test_folding.dir/test_folding.cc.o.d"
  "test_folding"
  "test_folding.pdb"
  "test_folding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_folding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
