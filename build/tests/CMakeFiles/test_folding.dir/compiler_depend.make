# Empty compiler generated dependencies file for test_folding.
# This may be replaced when dependencies are built.
