# Empty dependencies file for test_cc_switch.
# This may be replaced when dependencies are built.
