file(REMOVE_RECURSE
  "CMakeFiles/test_cc_switch.dir/test_cc_switch.cc.o"
  "CMakeFiles/test_cc_switch.dir/test_cc_switch.cc.o.d"
  "test_cc_switch"
  "test_cc_switch.pdb"
  "test_cc_switch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cc_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
