file(REMOVE_RECURSE
  "CMakeFiles/test_pdu.dir/test_pdu.cc.o"
  "CMakeFiles/test_pdu.dir/test_pdu.cc.o.d"
  "test_pdu"
  "test_pdu.pdb"
  "test_pdu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pdu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
