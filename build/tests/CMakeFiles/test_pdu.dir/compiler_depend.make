# Empty compiler generated dependencies file for test_pdu.
# This may be replaced when dependencies are built.
