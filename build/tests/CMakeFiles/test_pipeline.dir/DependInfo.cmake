
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_pipeline.cc" "tests/CMakeFiles/test_pipeline.dir/test_pipeline.cc.o" "gcc" "tests/CMakeFiles/test_pipeline.dir/test_pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/crisp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/crisp_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/crisp_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/crisp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/crisp_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/crisp_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/crisp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/crisp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/vax/CMakeFiles/crisp_vax.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
