file(REMOVE_RECURSE
  "CMakeFiles/test_cc_frontend.dir/test_cc_frontend.cc.o"
  "CMakeFiles/test_cc_frontend.dir/test_cc_frontend.cc.o.d"
  "test_cc_frontend"
  "test_cc_frontend.pdb"
  "test_cc_frontend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cc_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
