file(REMOVE_RECURSE
  "CMakeFiles/test_cc_codegen.dir/test_cc_codegen.cc.o"
  "CMakeFiles/test_cc_codegen.dir/test_cc_codegen.cc.o.d"
  "test_cc_codegen"
  "test_cc_codegen.pdb"
  "test_cc_codegen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cc_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
