file(REMOVE_RECURSE
  "CMakeFiles/test_vax.dir/test_vax.cc.o"
  "CMakeFiles/test_vax.dir/test_vax.cc.o.d"
  "test_vax"
  "test_vax.pdb"
  "test_vax[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
