# Empty dependencies file for crisp_vax.
# This may be replaced when dependencies are built.
