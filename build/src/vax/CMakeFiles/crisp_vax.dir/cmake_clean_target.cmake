file(REMOVE_RECURSE
  "libcrisp_vax.a"
)
