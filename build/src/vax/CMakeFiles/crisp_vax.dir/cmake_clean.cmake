file(REMOVE_RECURSE
  "CMakeFiles/crisp_vax.dir/vax.cc.o"
  "CMakeFiles/crisp_vax.dir/vax.cc.o.d"
  "CMakeFiles/crisp_vax.dir/vaxgen.cc.o"
  "CMakeFiles/crisp_vax.dir/vaxgen.cc.o.d"
  "libcrisp_vax.a"
  "libcrisp_vax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crisp_vax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
