file(REMOVE_RECURSE
  "CMakeFiles/crisp_workloads.dir/workloads.cc.o"
  "CMakeFiles/crisp_workloads.dir/workloads.cc.o.d"
  "libcrisp_workloads.a"
  "libcrisp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crisp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
