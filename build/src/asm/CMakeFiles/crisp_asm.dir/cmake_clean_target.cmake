file(REMOVE_RECURSE
  "libcrisp_asm.a"
)
