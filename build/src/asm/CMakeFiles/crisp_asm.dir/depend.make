# Empty dependencies file for crisp_asm.
# This may be replaced when dependencies are built.
