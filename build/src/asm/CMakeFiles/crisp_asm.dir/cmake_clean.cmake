file(REMOVE_RECURSE
  "CMakeFiles/crisp_asm.dir/assembler.cc.o"
  "CMakeFiles/crisp_asm.dir/assembler.cc.o.d"
  "libcrisp_asm.a"
  "libcrisp_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crisp_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
