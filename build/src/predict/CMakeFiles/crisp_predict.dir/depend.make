# Empty dependencies file for crisp_predict.
# This may be replaced when dependencies are built.
