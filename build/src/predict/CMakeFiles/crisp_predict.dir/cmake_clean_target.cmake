file(REMOVE_RECURSE
  "libcrisp_predict.a"
)
