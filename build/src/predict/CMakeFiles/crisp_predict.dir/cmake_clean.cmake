file(REMOVE_RECURSE
  "CMakeFiles/crisp_predict.dir/predictors.cc.o"
  "CMakeFiles/crisp_predict.dir/predictors.cc.o.d"
  "CMakeFiles/crisp_predict.dir/profile.cc.o"
  "CMakeFiles/crisp_predict.dir/profile.cc.o.d"
  "libcrisp_predict.a"
  "libcrisp_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crisp_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
