file(REMOVE_RECURSE
  "libcrisp_interp.a"
)
