# Empty compiler generated dependencies file for crisp_interp.
# This may be replaced when dependencies are built.
