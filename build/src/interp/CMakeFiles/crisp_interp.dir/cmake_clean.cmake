file(REMOVE_RECURSE
  "CMakeFiles/crisp_interp.dir/interpreter.cc.o"
  "CMakeFiles/crisp_interp.dir/interpreter.cc.o.d"
  "CMakeFiles/crisp_interp.dir/memory_image.cc.o"
  "CMakeFiles/crisp_interp.dir/memory_image.cc.o.d"
  "libcrisp_interp.a"
  "libcrisp_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crisp_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
