# Empty dependencies file for crisp_baseline.
# This may be replaced when dependencies are built.
