file(REMOVE_RECURSE
  "libcrisp_baseline.a"
)
