file(REMOVE_RECURSE
  "CMakeFiles/crisp_baseline.dir/delayed.cc.o"
  "CMakeFiles/crisp_baseline.dir/delayed.cc.o.d"
  "libcrisp_baseline.a"
  "libcrisp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crisp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
