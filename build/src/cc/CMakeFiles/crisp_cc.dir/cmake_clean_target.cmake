file(REMOVE_RECURSE
  "libcrisp_cc.a"
)
