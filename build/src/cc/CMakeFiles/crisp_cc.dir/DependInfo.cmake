
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/code.cc" "src/cc/CMakeFiles/crisp_cc.dir/code.cc.o" "gcc" "src/cc/CMakeFiles/crisp_cc.dir/code.cc.o.d"
  "/root/repo/src/cc/codegen.cc" "src/cc/CMakeFiles/crisp_cc.dir/codegen.cc.o" "gcc" "src/cc/CMakeFiles/crisp_cc.dir/codegen.cc.o.d"
  "/root/repo/src/cc/compiler.cc" "src/cc/CMakeFiles/crisp_cc.dir/compiler.cc.o" "gcc" "src/cc/CMakeFiles/crisp_cc.dir/compiler.cc.o.d"
  "/root/repo/src/cc/lexer.cc" "src/cc/CMakeFiles/crisp_cc.dir/lexer.cc.o" "gcc" "src/cc/CMakeFiles/crisp_cc.dir/lexer.cc.o.d"
  "/root/repo/src/cc/parser.cc" "src/cc/CMakeFiles/crisp_cc.dir/parser.cc.o" "gcc" "src/cc/CMakeFiles/crisp_cc.dir/parser.cc.o.d"
  "/root/repo/src/cc/passes.cc" "src/cc/CMakeFiles/crisp_cc.dir/passes.cc.o" "gcc" "src/cc/CMakeFiles/crisp_cc.dir/passes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/crisp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/crisp_asm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
