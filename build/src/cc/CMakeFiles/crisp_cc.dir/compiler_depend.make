# Empty compiler generated dependencies file for crisp_cc.
# This may be replaced when dependencies are built.
