file(REMOVE_RECURSE
  "CMakeFiles/crisp_cc.dir/code.cc.o"
  "CMakeFiles/crisp_cc.dir/code.cc.o.d"
  "CMakeFiles/crisp_cc.dir/codegen.cc.o"
  "CMakeFiles/crisp_cc.dir/codegen.cc.o.d"
  "CMakeFiles/crisp_cc.dir/compiler.cc.o"
  "CMakeFiles/crisp_cc.dir/compiler.cc.o.d"
  "CMakeFiles/crisp_cc.dir/lexer.cc.o"
  "CMakeFiles/crisp_cc.dir/lexer.cc.o.d"
  "CMakeFiles/crisp_cc.dir/parser.cc.o"
  "CMakeFiles/crisp_cc.dir/parser.cc.o.d"
  "CMakeFiles/crisp_cc.dir/passes.cc.o"
  "CMakeFiles/crisp_cc.dir/passes.cc.o.d"
  "libcrisp_cc.a"
  "libcrisp_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crisp_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
