# Empty dependencies file for crisp_sim.
# This may be replaced when dependencies are built.
