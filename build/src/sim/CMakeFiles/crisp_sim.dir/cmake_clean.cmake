file(REMOVE_RECURSE
  "CMakeFiles/crisp_sim.dir/cpu.cc.o"
  "CMakeFiles/crisp_sim.dir/cpu.cc.o.d"
  "CMakeFiles/crisp_sim.dir/decoded.cc.o"
  "CMakeFiles/crisp_sim.dir/decoded.cc.o.d"
  "CMakeFiles/crisp_sim.dir/pdu.cc.o"
  "CMakeFiles/crisp_sim.dir/pdu.cc.o.d"
  "libcrisp_sim.a"
  "libcrisp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crisp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
