file(REMOVE_RECURSE
  "libcrisp_sim.a"
)
