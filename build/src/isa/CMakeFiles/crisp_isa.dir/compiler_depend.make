# Empty compiler generated dependencies file for crisp_isa.
# This may be replaced when dependencies are built.
