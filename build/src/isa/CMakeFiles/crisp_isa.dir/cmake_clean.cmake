file(REMOVE_RECURSE
  "CMakeFiles/crisp_isa.dir/encoding.cc.o"
  "CMakeFiles/crisp_isa.dir/encoding.cc.o.d"
  "CMakeFiles/crisp_isa.dir/instruction.cc.o"
  "CMakeFiles/crisp_isa.dir/instruction.cc.o.d"
  "CMakeFiles/crisp_isa.dir/objfile.cc.o"
  "CMakeFiles/crisp_isa.dir/objfile.cc.o.d"
  "CMakeFiles/crisp_isa.dir/opcode.cc.o"
  "CMakeFiles/crisp_isa.dir/opcode.cc.o.d"
  "CMakeFiles/crisp_isa.dir/program.cc.o"
  "CMakeFiles/crisp_isa.dir/program.cc.o.d"
  "libcrisp_isa.a"
  "libcrisp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crisp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
