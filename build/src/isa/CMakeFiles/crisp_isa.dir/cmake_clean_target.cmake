file(REMOVE_RECURSE
  "libcrisp_isa.a"
)
