file(REMOVE_RECURSE
  "CMakeFiles/crispdbg.dir/crispdbg.cc.o"
  "CMakeFiles/crispdbg.dir/crispdbg.cc.o.d"
  "crispdbg"
  "crispdbg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crispdbg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
