# Empty dependencies file for crispdbg.
# This may be replaced when dependencies are built.
