# Empty dependencies file for crispasm.
# This may be replaced when dependencies are built.
