file(REMOVE_RECURSE
  "CMakeFiles/crispasm.dir/crispasm.cc.o"
  "CMakeFiles/crispasm.dir/crispasm.cc.o.d"
  "crispasm"
  "crispasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crispasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
