# Empty dependencies file for crispcc.
# This may be replaced when dependencies are built.
