file(REMOVE_RECURSE
  "CMakeFiles/crispcc.dir/crispcc.cc.o"
  "CMakeFiles/crispcc.dir/crispcc.cc.o.d"
  "crispcc"
  "crispcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crispcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
