file(REMOVE_RECURSE
  "CMakeFiles/crisprun.dir/crisprun.cc.o"
  "CMakeFiles/crisprun.dir/crisprun.cc.o.d"
  "crisprun"
  "crisprun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crisprun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
