# Empty dependencies file for crisprun.
# This may be replaced when dependencies are built.
