# Empty dependencies file for figure1_pipeline_structure.
# This may be replaced when dependencies are built.
