file(REMOVE_RECURSE
  "CMakeFiles/figure1_pipeline_structure.dir/figure1_pipeline_structure.cc.o"
  "CMakeFiles/figure1_pipeline_structure.dir/figure1_pipeline_structure.cc.o.d"
  "figure1_pipeline_structure"
  "figure1_pipeline_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_pipeline_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
