file(REMOVE_RECURSE
  "CMakeFiles/ablation_spread_distance.dir/ablation_spread_distance.cc.o"
  "CMakeFiles/ablation_spread_distance.dir/ablation_spread_distance.cc.o.d"
  "ablation_spread_distance"
  "ablation_spread_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spread_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
