# Empty compiler generated dependencies file for ablation_basic_block.
# This may be replaced when dependencies are built.
