file(REMOVE_RECURSE
  "CMakeFiles/ablation_basic_block.dir/ablation_basic_block.cc.o"
  "CMakeFiles/ablation_basic_block.dir/ablation_basic_block.cc.o.d"
  "ablation_basic_block"
  "ablation_basic_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_basic_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
