# Empty compiler generated dependencies file for table1_prediction.
# This may be replaced when dependencies are built.
