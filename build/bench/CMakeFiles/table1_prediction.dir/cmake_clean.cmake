file(REMOVE_RECURSE
  "CMakeFiles/table1_prediction.dir/table1_prediction.cc.o"
  "CMakeFiles/table1_prediction.dir/table1_prediction.cc.o.d"
  "table1_prediction"
  "table1_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
