# Empty compiler generated dependencies file for ablation_loop_count.
# This may be replaced when dependencies are built.
