file(REMOVE_RECURSE
  "CMakeFiles/ablation_loop_count.dir/ablation_loop_count.cc.o"
  "CMakeFiles/ablation_loop_count.dir/ablation_loop_count.cc.o.d"
  "ablation_loop_count"
  "ablation_loop_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_loop_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
