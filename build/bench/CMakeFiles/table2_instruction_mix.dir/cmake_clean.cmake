file(REMOVE_RECURSE
  "CMakeFiles/table2_instruction_mix.dir/table2_instruction_mix.cc.o"
  "CMakeFiles/table2_instruction_mix.dir/table2_instruction_mix.cc.o.d"
  "table2_instruction_mix"
  "table2_instruction_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_instruction_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
