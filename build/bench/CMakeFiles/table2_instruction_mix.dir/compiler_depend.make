# Empty compiler generated dependencies file for table2_instruction_mix.
# This may be replaced when dependencies are built.
