file(REMOVE_RECURSE
  "CMakeFiles/table3_spreading.dir/table3_spreading.cc.o"
  "CMakeFiles/table3_spreading.dir/table3_spreading.cc.o.d"
  "table3_spreading"
  "table3_spreading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_spreading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
