# Empty compiler generated dependencies file for table3_spreading.
# This may be replaced when dependencies are built.
