file(REMOVE_RECURSE
  "CMakeFiles/microbench_hosts.dir/microbench_hosts.cc.o"
  "CMakeFiles/microbench_hosts.dir/microbench_hosts.cc.o.d"
  "microbench_hosts"
  "microbench_hosts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_hosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
