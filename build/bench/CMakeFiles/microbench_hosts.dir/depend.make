# Empty dependencies file for microbench_hosts.
# This may be replaced when dependencies are built.
