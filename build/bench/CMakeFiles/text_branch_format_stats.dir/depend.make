# Empty dependencies file for text_branch_format_stats.
# This may be replaced when dependencies are built.
