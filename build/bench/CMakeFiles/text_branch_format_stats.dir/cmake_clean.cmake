file(REMOVE_RECURSE
  "CMakeFiles/text_branch_format_stats.dir/text_branch_format_stats.cc.o"
  "CMakeFiles/text_branch_format_stats.dir/text_branch_format_stats.cc.o.d"
  "text_branch_format_stats"
  "text_branch_format_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_branch_format_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
