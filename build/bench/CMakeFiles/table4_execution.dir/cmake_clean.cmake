file(REMOVE_RECURSE
  "CMakeFiles/table4_execution.dir/table4_execution.cc.o"
  "CMakeFiles/table4_execution.dir/table4_execution.cc.o.d"
  "table4_execution"
  "table4_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
