file(REMOVE_RECURSE
  "CMakeFiles/ablation_profile_bits.dir/ablation_profile_bits.cc.o"
  "CMakeFiles/ablation_profile_bits.dir/ablation_profile_bits.cc.o.d"
  "ablation_profile_bits"
  "ablation_profile_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_profile_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
