# Empty compiler generated dependencies file for ablation_profile_bits.
# This may be replaced when dependencies are built.
