file(REMOVE_RECURSE
  "CMakeFiles/figure2_fold_datapath.dir/figure2_fold_datapath.cc.o"
  "CMakeFiles/figure2_fold_datapath.dir/figure2_fold_datapath.cc.o.d"
  "figure2_fold_datapath"
  "figure2_fold_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_fold_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
