# Empty dependencies file for figure2_fold_datapath.
# This may be replaced when dependencies are built.
