file(REMOVE_RECURSE
  "CMakeFiles/ablation_dic_size.dir/ablation_dic_size.cc.o"
  "CMakeFiles/ablation_dic_size.dir/ablation_dic_size.cc.o.d"
  "ablation_dic_size"
  "ablation_dic_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dic_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
