# Empty compiler generated dependencies file for ablation_dic_size.
# This may be replaced when dependencies are built.
