file(REMOVE_RECURSE
  "CMakeFiles/ablation_hw_predictor.dir/ablation_hw_predictor.cc.o"
  "CMakeFiles/ablation_hw_predictor.dir/ablation_hw_predictor.cc.o.d"
  "ablation_hw_predictor"
  "ablation_hw_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hw_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
