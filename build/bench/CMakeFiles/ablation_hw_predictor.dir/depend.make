# Empty dependencies file for ablation_hw_predictor.
# This may be replaced when dependencies are built.
