# Empty dependencies file for text_btb_comparison.
# This may be replaced when dependencies are built.
