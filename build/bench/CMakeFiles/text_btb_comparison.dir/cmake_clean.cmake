file(REMOVE_RECURSE
  "CMakeFiles/text_btb_comparison.dir/text_btb_comparison.cc.o"
  "CMakeFiles/text_btb_comparison.dir/text_btb_comparison.cc.o.d"
  "text_btb_comparison"
  "text_btb_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_btb_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
