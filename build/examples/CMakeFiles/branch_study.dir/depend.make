# Empty dependencies file for branch_study.
# This may be replaced when dependencies are built.
