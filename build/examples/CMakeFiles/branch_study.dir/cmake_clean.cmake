file(REMOVE_RECURSE
  "CMakeFiles/branch_study.dir/branch_study.cpp.o"
  "CMakeFiles/branch_study.dir/branch_study.cpp.o.d"
  "branch_study"
  "branch_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
