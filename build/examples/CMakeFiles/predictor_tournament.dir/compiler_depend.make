# Empty compiler generated dependencies file for predictor_tournament.
# This may be replaced when dependencies are built.
