file(REMOVE_RECURSE
  "CMakeFiles/predictor_tournament.dir/predictor_tournament.cpp.o"
  "CMakeFiles/predictor_tournament.dir/predictor_tournament.cpp.o.d"
  "predictor_tournament"
  "predictor_tournament.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_tournament.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
