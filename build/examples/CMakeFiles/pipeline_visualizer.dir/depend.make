# Empty dependencies file for pipeline_visualizer.
# This may be replaced when dependencies are built.
