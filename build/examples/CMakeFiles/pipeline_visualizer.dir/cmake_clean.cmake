file(REMOVE_RECURSE
  "CMakeFiles/pipeline_visualizer.dir/pipeline_visualizer.cpp.o"
  "CMakeFiles/pipeline_visualizer.dir/pipeline_visualizer.cpp.o.d"
  "pipeline_visualizer"
  "pipeline_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
