/**
 * @file
 * Compiler explorer: show what crispcc does to a program — the listing
 * before and after Branch Spreading, the prediction bits, the binary
 * disassembly and the static encoding statistics.
 *
 *   $ ./examples/compiler_explorer [workload]   (default: fig3)
 */

#include <cstdio>
#include <string>

#include "cc/compiler.hh"
#include "workloads/workloads.hh"

int
main(int argc, char** argv)
{
    using namespace crisp;

    const std::string name = argc > 1 ? argv[1] : "fig3";
    const Workload& w = workload(name);

    cc::CompileOptions plain;
    plain.spread = false;
    cc::CompileOptions spread;
    spread.spread = true;

    const auto rp = cc::compile(w.source, plain);
    const auto rs = cc::compile(w.source, spread);

    std::printf("=== source ===\n%s\n", w.source.c_str());
    std::printf("=== crispcc listing (no spreading) ===\n%s\n",
                rp.listing.c_str());
    std::printf("=== crispcc listing (with Branch Spreading) ===\n%s\n",
                rs.listing.c_str());
    std::printf("=== binary disassembly (spread) ===\n%s\n",
                rs.program.disassemble().c_str());

    const auto hist = rs.program.staticLengthHistogram();
    std::printf("=== static encoding ===\n");
    int total = 0;
    for (const auto& [len, n] : hist)
        total += n;
    for (const auto& [len, n] : hist) {
        std::printf("%d-parcel instructions: %4d (%.1f%%)\n", len, n,
                    100.0 * n / total);
    }
    std::printf("text bytes: %zu\n", rs.program.text.size() * 2);
    return 0;
}
