/**
 * @file
 * Predictor tournament: run every bundled workload, record its branch
 * trace, and score every prediction scheme in the library (the
 * compiler's actual bit, the optimal static oracle, 1/2/3-bit dynamic
 * history, an MU5-style jump trace and two BTBs) side by side.
 *
 *   $ ./examples/predictor_tournament
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "cc/compiler.hh"
#include "interp/interpreter.hh"
#include "predict/predictors.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace crisp;

    std::printf("%-8s %9s | %8s %8s %8s %8s %8s %8s | %8s %8s %8s\n",
                "program", "branches", "cc-bit", "static*", "1-bit",
                "2-bit", "3-bit", "2lvl-8", "jt-8", "btb32x4",
                "btb128x4");

    for (const Workload& w : allWorkloads()) {
        const auto r = cc::compile(w.source);
        Interpreter interp(r.program);
        BranchTraceRecorder rec;
        interp.run(500'000'000, &rec);

        CompilerBitPredictor cc_bit;
        const auto a_cc = evaluateDirection(rec.events, cc_bit);
        const auto a_st = evaluateStaticOracle(rec.events);
        double dyn[3];
        for (int bits = 1; bits <= 3; ++bits) {
            CounterPredictor cp(bits);
            dyn[bits - 1] = evaluateDirection(rec.events, cp).rate();
        }
        TwoLevelPredictor twolvl(8);
        const double r_2l = evaluateDirection(rec.events, twolvl).rate();
        BranchTargetBuffer jt(8, 1, false);
        BranchTargetBuffer b32(32, 4);
        BranchTargetBuffer b128(128, 4);
        const double r_jt = jt.evaluate(rec.events).rate();
        const double r_32 = b32.evaluate(rec.events).rate();
        const double r_128 = b128.evaluate(rec.events).rate();

        std::printf("%-8s %9llu | %8.3f %8.3f %8.3f %8.3f %8.3f "
                    "%8.3f | %8.3f %8.3f %8.3f\n",
                    w.name.c_str(),
                    static_cast<unsigned long long>(a_st.total),
                    a_cc.rate(), a_st.rate(), dyn[0], dyn[1], dyn[2],
                    r_2l, r_jt, r_32, r_128);
    }
    std::printf("\ncc-bit  = the backward-taken/forward-not-taken bit "
                "crispcc actually emitted\nstatic* = optimal per-site "
                "static bit (the paper's 'static prediction' column)\n");
    return 0;
}
