/**
 * @file
 * Pipeline visualizer: watch Branch Folding, speculation and
 * Alternate-PC recovery happen cycle by cycle.
 *
 * Runs a small loop whose conditional alternates (so the static bit is
 * wrong every other pass) and prints the per-cycle IR/OR/RR occupancy
 * with event annotations — folded entries appear as `op+branch`,
 * speculative conditionals carry a `?`, and mispredict recoveries and
 * squashes are called out on the right.
 *
 *   $ ./examples/pipeline_visualizer [cycles]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cc/compiler.hh"
#include "sim/cpu.hh"

int
main(int argc, char** argv)
{
    using namespace crisp;

    const long max_lines = argc > 1 ? std::atol(argv[1]) : 60;

    const char* source = R"(
        int odd; int even;
        int main() {
            for (int i = 0; i < 8; i++) {
                if (i & 1)
                    odd += i;
                else
                    even += i;
            }
            return odd - even;
        }
    )";

    cc::CompileOptions opts;
    opts.spread = false; // keep the branch speculative, for the show
    const auto r = cc::compile(source, opts);

    std::printf("Source:\n%s\nCompiled loop:\n%s\n", source,
                r.listing.c_str());

    std::printf("Per-cycle pipeline trace (folded entries show as "
                "`op+branch`, `?` = speculative):\n\n");
    std::printf("%7s | %-25s %-25s %-25s notes\n", "cycle", "IR stage",
                "OR stage", "RR stage");

    CrispCpu cpu(r.program);
    long remaining = max_lines;
    cpu.setTraceSink([&remaining](const std::string& line) {
        if (remaining-- > 0)
            std::puts(line.c_str());
    });
    const SimStats& s = cpu.run();

    std::printf("\n... (%llu cycles total)\n\n%s",
                static_cast<unsigned long long>(s.cycles),
                s.toString().c_str());
    std::printf("\nodd - even = %d\n", static_cast<int>(cpu.accum()));
    return 0;
}
