/**
 * @file
 * Branch study: compile a C program with crispcc and measure how each
 * of the paper's three techniques (folding, prediction, spreading)
 * contributes, exactly like Table 4 does for Figure 3 — but on any of
 * the bundled workloads.
 *
 *   $ ./examples/branch_study [workload]      (default: fig3)
 */

#include <cstdio>
#include <string>

#include "cc/compiler.hh"
#include "sim/cpu.hh"
#include "workloads/workloads.hh"

int
main(int argc, char** argv)
{
    using namespace crisp;

    const std::string name = argc > 1 ? argv[1] : "fig3";
    const Workload& w = workload(name);
    std::printf("Workload: %s — %s\n\n", w.name.c_str(),
                w.description.c_str());

    struct Case
    {
        const char* label;
        FoldPolicy fold;
        cc::PredictMode predict;
        bool spread;
    };
    const Case cases[] = {
        {"baseline (no fold, naive bits, no spread)", FoldPolicy::kNone,
         cc::PredictMode::kAllNotTaken, false},
        {"+ prediction bits", FoldPolicy::kNone,
         cc::PredictMode::kBackwardTaken, false},
        {"+ branch folding", FoldPolicy::kCrisp,
         cc::PredictMode::kBackwardTaken, false},
        {"+ branch spreading (full CRISP)", FoldPolicy::kCrisp,
         cc::PredictMode::kBackwardTaken, true},
    };

    std::printf("%-44s %10s %10s %7s %7s %9s\n", "configuration",
                "cycles", "issued", "iCPI", "aCPI", "speedup");

    double base = 0;
    for (const Case& c : cases) {
        cc::CompileOptions opts;
        opts.predict = c.predict;
        opts.spread = c.spread;
        const auto r = cc::compile(w.source, opts);

        SimConfig cfg;
        cfg.foldPolicy = c.fold;
        CrispCpu cpu(r.program, cfg);
        const SimStats& s = cpu.run();
        if (base == 0)
            base = static_cast<double>(s.cycles);

        std::printf("%-44s %10llu %10llu %7.2f %7.2f %8.2fx\n", c.label,
                    static_cast<unsigned long long>(s.cycles),
                    static_cast<unsigned long long>(s.issued),
                    s.issuedCpi(), s.apparentCpi(),
                    base / static_cast<double>(s.cycles));

        // Sanity: architectural result must be identical in all cases.
        if (w.checkAccum && cpu.accum() != w.expectedAccum) {
            std::printf("ARCHITECTURAL MISMATCH: accum %d != %d\n",
                        static_cast<int>(cpu.accum()),
                        static_cast<int>(w.expectedAccum));
            return 1;
        }
    }
    return 0;
}
