/**
 * @file
 * Quickstart: assemble a small program, run it on the reference
 * interpreter and on the cycle-level CRISP pipeline, and look at what
 * Branch Folding did to it.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "asm/assembler.hh"
#include "interp/interpreter.hh"
#include "sim/cpu.hh"

int
main()
{
    using namespace crisp;

    // A little assembly program: sum the numbers 1..100.
    const char* source = R"(
        .entry start
        .global result 0
        .local i 0
        .local sum 1
start:
        enter 2
        mov i, 0
        mov sum, 0
loop:
        add i, 1
        add sum, i          ; sum += i
        cmp.s< i, 100
        iftjmpy loop        ; predicted taken: loop backedge
        mov result, sum
        halt
    )";

    const Program prog = assemble(source);
    std::printf("Assembled %d instructions (%zu parcels)\n\n%s\n",
                prog.staticInstructionCount(), prog.text.size(),
                prog.disassemble().c_str());

    // 1. Architectural golden run.
    Interpreter interp(prog);
    const InterpResult ri = interp.run();
    std::printf("Interpreter: %llu instructions, result = %d\n",
                static_cast<unsigned long long>(ri.instructions),
                static_cast<int>(interp.wordAt("result")));

    // 2. Cycle-level pipeline run.
    CrispCpu cpu(prog);
    const SimStats& rs = cpu.run();
    std::printf("Pipeline:    result = %d\n\n%s\n",
                static_cast<int>(cpu.wordAt("result")),
                rs.toString().c_str());

    std::printf("The loop's backedge folded into `add sum,i`'s cache "
                "entry, so the Execution Unit\nissued %llu instructions "
                "for %llu architectural ones — the branch executed in "
                "zero time.\n",
                static_cast<unsigned long long>(rs.issued),
                static_cast<unsigned long long>(rs.apparent));
    return 0;
}
