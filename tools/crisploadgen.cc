/**
 * @file
 * crisploadgen — load generator and service-level chaos harness for
 * crispd.
 *
 *   crisploadgen --spawn=CRISPD_BIN [--socket=PATH] [--chaos] [--smoke]
 *   crisploadgen --socket=PATH [--clients=N] [--jobs=N]
 *
 * With --spawn the harness forks its own crispd (with a small queue and
 * aggressive quarantine so the failure paths are actually reachable),
 * drives it, then shuts it down and checks the daemon's exit status —
 * one command runs the whole service-level test, which is how CI uses
 * it (`crisploadgen --spawn=$BIN --chaos --smoke`).
 *
 * The chaos sweep exercises every failure class in docs/SERVICE.md and
 * asserts the service-level invariants from the outside:
 *
 *   1. well-formed load: every accepted job gets exactly one result;
 *   2. result cache: a duplicate submission is a cache hit with
 *      identical cycle counts (determinism observed over the wire);
 *   3. admission: oversized and malformed images are rejected with
 *      kError, never simulated;
 *   2b. mixed engines: interleaved fast-engine and cycle-pipeline jobs
 *      over the same images — every result carries the engine it was
 *      requested with, fast results report zero cycles, both engines
 *      agree architecturally, and a cached result is never served
 *      across engine modes (the cache-keying/ledger trap);
 *   4. protocol: a garbage frame gets one kError and a dropped
 *      connection — and the daemon keeps serving others;
 *   5. a mid-frame disconnect leaves the daemon healthy;
 *   6. a non-terminating program times out at its deadline and its
 *      hash is quarantined after repeated strikes;
 *   7. burst overload sheds (kShed) instead of stalling, health
 *      degrades and then recovers (ledger transition counters);
 *   8. the final ledger is consistent: submitted == accepted+rejected,
 *      accepted == done+failed+shed+timedOut, nothing queued/in-flight.
 *
 * Exit status 0 only if every assertion and the daemon's own shutdown
 * ledger check pass.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "asm/assembler.hh"
#include "isa/objfile.hh"
#include "service/protocol.hh"

namespace
{

using namespace crisp;
using namespace crisp::service;

int g_failures = 0;
std::mutex g_reportMu;

void
fail(const std::string& what)
{
    std::lock_guard<std::mutex> lk(g_reportMu);
    ++g_failures;
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
}

void
expect(bool ok, const std::string& what)
{
    if (!ok)
        fail(what);
}

std::atomic<std::uint64_t> g_nextJobId{1};

// --- programs ---------------------------------------------------------

/** A counted loop; distinct counts give distinct program hashes. */
std::vector<std::uint8_t>
countedImage(int count)
{
    std::string src = R"(
        .entry s
        .local i 0
s:      enter 1
        mov i, 0
top:    add i, 1
        cmp.s< i, %N%
        iftjmpy top
        halt
    )";
    const std::string key = "%N%";
    src.replace(src.find(key), key.size(), std::to_string(count));
    return saveObject(assemble(src));
}

/** Never halts; only the wall-clock deadline can end it. */
std::vector<std::uint8_t>
infiniteImage()
{
    return saveObject(assemble(R"(
        .entry s
s:      jmp s
    )"));
}

// --- socket client ----------------------------------------------------

class Client
{
  public:
    /** Connect with retry (the daemon may still be binding). */
    explicit Client(const std::string& path)
    {
        for (int attempt = 0; attempt < 100; ++attempt) {
            fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (fd_ < 0)
                break;
            sockaddr_un addr{};
            addr.sun_family = AF_UNIX;
            std::strncpy(addr.sun_path, path.c_str(),
                         sizeof addr.sun_path - 1);
            if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                          sizeof addr) == 0) {
                timeval tv{30, 0}; // a stuck read is a harness failure
                ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv,
                             sizeof tv);
                return;
            }
            ::close(fd_);
            fd_ = -1;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
    }

    ~Client()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    bool ok() const { return fd_ >= 0; }

    void
    sendRaw(const std::vector<std::uint8_t>& bytes)
    {
        std::size_t off = 0;
        while (off < bytes.size()) {
            const ssize_t n = ::send(fd_, bytes.data() + off,
                                     bytes.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                return;
            off += static_cast<std::size_t>(n);
        }
    }

    void
    sendFrame(FrameType type, const std::vector<std::uint8_t>& payload)
    {
        std::vector<std::uint8_t> out;
        appendFrame(out, type, payload);
        sendRaw(out);
    }

    std::uint64_t
    submit(JobRequest req)
    {
        if (req.jobId == 0)
            req.jobId = g_nextJobId.fetch_add(1);
        sendFrame(FrameType::kSubmit, req.encode());
        return req.jobId;
    }

    /** Next frame, or nullopt on EOF/timeout/parse failure. */
    std::optional<Frame>
    recvFrame()
    {
        for (;;) {
            try {
                if (auto f = parser_.next())
                    return f;
            } catch (const ProtocolError&) {
                return std::nullopt;
            }
            std::uint8_t buf[8192];
            const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
            if (n <= 0)
                return std::nullopt;
            parser_.feed(buf, static_cast<std::size_t>(n));
        }
    }

    /** Frames until @p count kResult frames arrive (kError counts when
     *  @p errors_count). */
    std::vector<Frame>
    collect(std::size_t count, bool errors_count = false)
    {
        std::vector<Frame> out;
        std::size_t terminal = 0;
        while (terminal < count) {
            auto f = recvFrame();
            if (!f)
                break;
            if (f->type == FrameType::kResult ||
                (errors_count && f->type == FrameType::kError))
                ++terminal;
            out.push_back(std::move(*f));
        }
        return out;
    }

    void
    halfClose()
    {
        ::shutdown(fd_, SHUT_WR);
    }

  private:
    int fd_ = -1;
    FrameParser parser_;
};

HealthReply
probeHealth(const std::string& socket)
{
    Client c(socket);
    expect(c.ok(), "health probe could not connect");
    c.sendFrame(FrameType::kHealth, {});
    const auto f = c.recvFrame();
    if (!f || f->type != FrameType::kHealthReply) {
        fail("health probe got no kHealthReply");
        return {};
    }
    return HealthReply::decode(f->payload);
}

// --- phases -----------------------------------------------------------

/** Phase 1: plain concurrent load; exactly one result per job. */
void
phaseLoad(const std::string& socket, int clients, int jobs_per_client)
{
    std::vector<std::thread> threads;
    for (int t = 0; t < clients; ++t) {
        threads.emplace_back([&, t] {
            Client c(socket);
            if (!c.ok()) {
                fail("load client could not connect");
                return;
            }
            // One outstanding job per client: concurrency across
            // clients without overrunning the (deliberately tiny)
            // queue — burst overload is phaseBurst's business.
            for (int i = 0; i < jobs_per_client; ++i) {
                JobRequest req;
                req.image =
                    countedImage(1000 + t * jobs_per_client + i);
                req.deadlineMs = 20'000;
                const std::uint64_t id = c.submit(std::move(req));
                const auto frames = c.collect(1);
                if (frames.empty() ||
                    frames.back().type != FrameType::kResult) {
                    fail("load job got no result");
                    continue;
                }
                const JobResult res =
                    JobResult::decode(frames.back().payload);
                expect(res.jobId == id, "result for the wrong job");
                expect(res.state == JobState::kDone,
                       "load job not done: " + res.detail);
                expect(res.cycles > 0, "done job reports zero cycles");
            }
        });
    }
    for (auto& t : threads)
        t.join();
}

/** Phase 2: duplicate submission is a cache hit, cycle-identical. */
void
phaseCache(const std::string& socket)
{
    Client c(socket);
    if (!c.ok()) {
        fail("cache client could not connect");
        return;
    }
    const auto image = countedImage(777'001);
    JobRequest req;
    req.image = image;
    req.deadlineMs = 20'000;
    c.submit(std::move(req));
    const auto frames1 = c.collect(1);
    JobRequest req2;
    req2.image = image;
    req2.deadlineMs = 20'000;
    c.submit(std::move(req2));
    const auto frames2 = c.collect(1);
    if (frames1.empty() || frames2.empty() ||
        frames1.back().type != FrameType::kResult ||
        frames2.back().type != FrameType::kResult) {
        fail("cache phase lost a result");
        return;
    }
    const JobResult r1 = JobResult::decode(frames1.back().payload);
    const JobResult r2 = JobResult::decode(frames2.back().payload);
    expect(r1.state == JobState::kDone, "cache warm run not done");
    expect(r2.state == JobState::kDone, "cache hit run not done");
    expect(!r1.cacheHit, "first run claims a cache hit");
    expect(r2.cacheHit, "duplicate run missed the result cache");
    expect(r1.cycles == r2.cycles && r1.exitValue == r2.exitValue,
           "cache hit disagrees with the original run");
}

/**
 * Phase 2b: mixed-engine traffic. The same program runs under both
 * engines, sequenced to catch cache-keying bugs: a warm cycle result
 * must never be replayed to a fast request (and vice versa), repeats
 * on the same engine must hit, and an interleaved concurrent batch
 * must hand every job a result tagged with its own engine.
 */
void
phaseMixedEngine(const std::string& socket)
{
    Client c(socket);
    if (!c.ok()) {
        fail("mixed-engine client could not connect");
        return;
    }
    const auto image = countedImage(901'001);
    auto one = [&](EngineKind engine) -> std::optional<JobResult> {
        JobRequest req;
        req.image = image;
        req.engine = engine;
        req.deadlineMs = 20'000;
        c.submit(std::move(req));
        const auto frames = c.collect(1);
        if (frames.empty() || frames.back().type != FrameType::kResult) {
            fail("mixed-engine phase lost a result");
            return std::nullopt;
        }
        return JobResult::decode(frames.back().payload);
    };

    const auto cyc = one(EngineKind::kCycle);
    const auto fast = one(EngineKind::kFast);
    const auto cyc2 = one(EngineKind::kCycle);
    const auto fast2 = one(EngineKind::kFast);
    if (!cyc || !fast || !cyc2 || !fast2)
        return;
    expect(cyc->state == JobState::kDone &&
               fast->state == JobState::kDone,
           "mixed-engine warm runs not done");
    expect(cyc->engine == EngineKind::kCycle &&
               fast->engine == EngineKind::kFast,
           "result engine does not match the request engine");
    expect(cyc->cycles > 0, "cycle job reports zero cycles");
    expect(fast->cycles == 0, "fast job reports nonzero cycles");
    expect(!fast->cacheHit,
           "fast request served the cached cycle result "
           "(engine missing from the cache key)");
    expect(fast->exitValue == cyc->exitValue &&
               fast->instructions == cyc->instructions,
           "engines disagree architecturally over the wire");
    expect(cyc2->cacheHit && cyc2->engine == EngineKind::kCycle &&
               cyc2->cycles == cyc->cycles,
           "cycle repeat missed its own cached result");
    expect(fast2->cacheHit && fast2->engine == EngineKind::kFast &&
               fast2->cycles == 0,
           "fast repeat missed its own cached result");

    // Interleaved batch with fresh images, one fast + one cycle job of
    // the SAME image in flight per round (the tiny spawn-mode queue
    // sheds bigger bursts — overload is phaseBurst's business): every
    // job gets exactly one result tagged with the engine it asked for.
    for (int round = 0; round < 6; ++round) {
        const auto img = countedImage(902'000 + round);
        std::map<std::uint64_t, EngineKind> want;
        for (const EngineKind engine :
             {EngineKind::kFast, EngineKind::kCycle}) {
            JobRequest req;
            req.image = img;
            req.engine = engine;
            req.deadlineMs = 20'000;
            want[c.submit(std::move(req))] = engine;
        }
        std::map<std::uint64_t, int> seen;
        for (const Frame& f : c.collect(want.size())) {
            if (f.type != FrameType::kResult)
                continue;
            const JobResult res = JobResult::decode(f.payload);
            ++seen[res.jobId];
            const auto it = want.find(res.jobId);
            if (it == want.end()) {
                fail("mixed-engine batch got a result for an unknown "
                     "job");
                continue;
            }
            expect(res.state == JobState::kDone,
                   "mixed-engine batch job not done: " + res.detail);
            expect(res.engine == it->second,
                   "batch result engine does not match its request");
            expect((res.engine == EngineKind::kFast) ==
                       (res.cycles == 0),
                   "batch result cycle count inconsistent with engine");
        }
        for (const auto& [id, engine] : want) {
            (void)engine;
            expect(seen[id] == 1,
                   "mixed-engine job " + std::to_string(id) + " got " +
                       std::to_string(seen[id]) + " results");
        }
    }
}

/**
 * Phase 2c: warm-replay hammering. N clients replay the SAME
 * program-hash on the fast engine, each job with a distinct cycle
 * budget — a distinct PolicyKey — so the result cache never answers
 * and every accepted job really simulates. The registry must serve
 * all of them from one warm Translation: the translationShares ledger
 * counter grows by exactly the number of simulated runs, and every
 * run agrees architecturally with the first.
 */
void
phaseWarmReplay(const std::string& socket, int clients,
                int jobs_per_client)
{
    const LedgerSnapshot before = probeHealth(socket).ledger;
    const auto image = countedImage(77'000);
    std::atomic<std::uint64_t> simulated{0};
    std::atomic<std::uint32_t> first_exit{0};
    std::atomic<std::uint64_t> first_instr{0};
    std::atomic<bool> have_first{false};

    std::vector<std::thread> threads;
    for (int t = 0; t < clients; ++t) {
        threads.emplace_back([&, t] {
            Client c(socket);
            if (!c.ok()) {
                fail("warm-replay client could not connect");
                return;
            }
            for (int j = 0; j < jobs_per_client; ++j) {
                JobRequest req;
                req.image = image;
                req.engine = EngineKind::kFast;
                req.deadlineMs = 20'000;
                req.maxCycles = 2'000'000 +
                                static_cast<std::uint64_t>(t) * 1'000 +
                                static_cast<std::uint64_t>(j);
                const std::uint64_t id = c.submit(std::move(req));
                const auto frames = c.collect(1);
                if (frames.empty() ||
                    frames.back().type != FrameType::kResult) {
                    fail("warm-replay job got no result");
                    continue;
                }
                const JobResult res =
                    JobResult::decode(frames.back().payload);
                expect(res.jobId == id,
                       "warm-replay result for the wrong job");
                expect(res.state == JobState::kDone,
                       "warm-replay job not done: " + res.detail);
                expect(res.engine == EngineKind::kFast,
                       "warm-replay result from the wrong engine");
                expect(res.cycles == 0,
                       "fast warm-replay job reports cycles");
                expect(!res.cacheHit,
                       "distinct budgets must defeat the result cache");
                if (res.state != JobState::kDone)
                    continue;
                ++simulated;
                if (!have_first.exchange(true)) {
                    first_exit.store(res.exitValue);
                    first_instr.store(res.instructions);
                } else {
                    expect(res.exitValue == first_exit.load() &&
                               res.instructions == first_instr.load(),
                           "warm replays disagree architecturally");
                }
            }
        });
    }
    for (auto& t : threads)
        t.join();

    const LedgerSnapshot after = probeHealth(socket).ledger;
    expect(after.translationShares - before.translationShares ==
               simulated.load(),
           "every simulated warm replay must run on the shared "
           "registry translation (got " +
               std::to_string(after.translationShares -
                              before.translationShares) +
               " shares for " + std::to_string(simulated.load()) +
               " runs)");
}

/** Phase 3: admission rejections (oversized + malformed images). */
void
phaseAdmission(const std::string& socket, std::size_t max_image_bytes)
{
    Client c(socket);
    if (!c.ok()) {
        fail("admission client could not connect");
        return;
    }
    JobRequest big;
    big.image.assign(max_image_bytes + 1, 0xab);
    const std::uint64_t big_id = c.submit(std::move(big));
    JobRequest junk;
    junk.image.assign(64, 0x5a); // wrong magic: loader must refuse
    const std::uint64_t junk_id = c.submit(std::move(junk));
    int rejected = 0;
    for (const Frame& f : c.collect(2, /*errors_count=*/true)) {
        if (f.type != FrameType::kError)
            continue;
        const ErrorReply err = ErrorReply::decode(f.payload);
        expect(err.jobId == big_id || err.jobId == junk_id,
               "kError for an unknown jobId");
        ++rejected;
    }
    expect(rejected == 2, "expected 2 admission rejections, got " +
                              std::to_string(rejected));
}

/** Phase 4+5: protocol chaos — garbage frames, mid-frame disconnect. */
void
phaseProtocolChaos(const std::string& socket)
{
    {
        Client c(socket);
        if (!c.ok()) {
            fail("protocol-chaos client could not connect");
            return;
        }
        c.sendRaw({0xde, 0xad, 0xbe, 0xef, 0x01, 0x00, 0x00, 0x00,
                   0x00});
        const auto f = c.recvFrame();
        expect(f && f->type == FrameType::kError,
               "garbage magic did not provoke kError");
        // The daemon must have dropped us: expect EOF, not more frames.
        expect(!c.recvFrame(),
               "connection survived a poisoned stream");
    }
    {
        // Declared length over the frame cap.
        Client c(socket);
        std::vector<std::uint8_t> hdr;
        appendFrame(hdr, FrameType::kSubmit, {});
        hdr[5] = 0xff; // length = 0xffffffff
        hdr[6] = 0xff;
        hdr[7] = 0xff;
        hdr[8] = 0xff;
        c.sendRaw(hdr);
        const auto f = c.recvFrame();
        expect(f && f->type == FrameType::kError,
               "oversized declared length did not provoke kError");
    }
    {
        // Half a frame, then vanish. The daemon must shrug.
        Client c(socket);
        std::vector<std::uint8_t> whole;
        appendFrame(whole, FrameType::kSubmit,
                    std::vector<std::uint8_t>(128, 0));
        whole.resize(whole.size() / 2);
        c.sendRaw(whole);
    }
    // And it must still answer: the next probe proves liveness.
    probeHealth(socket);
}

/** Phase 6: deadline timeout, then quarantine of the hash. */
void
phaseTimeoutQuarantine(const std::string& socket, int strikes)
{
    Client c(socket);
    if (!c.ok()) {
        fail("timeout client could not connect");
        return;
    }
    const auto image = infiniteImage();
    int timed_out = 0;
    int quarantined = 0;
    for (int i = 0; i < strikes + 2; ++i) {
        JobRequest req;
        req.image = image;
        req.deadlineMs = 200;
        c.submit(std::move(req));
        const auto frames = c.collect(1);
        if (frames.empty() ||
            frames.back().type != FrameType::kResult) {
            fail("timeout phase lost a result");
            return;
        }
        const JobResult res = JobResult::decode(frames.back().payload);
        if (res.state == JobState::kTimedOut)
            ++timed_out;
        else if (res.state == JobState::kFailed &&
                 res.detail.find("quarantined") != std::string::npos)
            ++quarantined;
        else
            fail("infinite program ended as " +
                 std::string(jobStateName(res.state)) + ": " +
                 res.detail);
    }
    expect(timed_out >= strikes,
           "expected >= " + std::to_string(strikes) +
               " deadline timeouts, got " + std::to_string(timed_out));
    expect(quarantined >= 1,
           "poisoned program was never quarantined");
}

/** Phase 7: burst overload — shedding, then health recovery. */
void
phaseBurst(const std::string& socket, int clients, int jobs_per_client)
{
    std::atomic<int> done{0};
    std::atomic<int> shed{0};
    std::atomic<int> timed_out{0};
    std::atomic<int> lost{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < clients; ++t) {
        threads.emplace_back([&, t] {
            Client c(socket);
            if (!c.ok()) {
                fail("burst client could not connect");
                return;
            }
            std::map<std::uint64_t, int> results;
            std::vector<std::uint64_t> ids;
            for (int i = 0; i < jobs_per_client; ++i) {
                JobRequest req;
                // Slow enough to pile up behind the tiny queue.
                req.image = countedImage(500'000 + t * jobs_per_client +
                                         i);
                req.deadlineMs = 30'000;
                ids.push_back(c.submit(std::move(req)));
            }
            for (const Frame& f :
                 c.collect(static_cast<std::size_t>(jobs_per_client))) {
                if (f.type != FrameType::kResult)
                    continue;
                const JobResult res = JobResult::decode(f.payload);
                ++results[res.jobId];
                switch (res.state) {
                  case JobState::kDone:
                    ++done;
                    break;
                  case JobState::kShed:
                    ++shed;
                    break;
                  case JobState::kTimedOut:
                    ++timed_out;
                    break;
                  default:
                    fail("burst job failed: " + res.detail);
                }
            }
            for (const std::uint64_t id : ids) {
                if (results[id] != 1) {
                    ++lost;
                    fail("burst job " + std::to_string(id) + " got " +
                         std::to_string(results[id]) + " results");
                }
            }
        });
    }
    // Sample health mid-burst (informational; the hard assertion is on
    // the ledger's transition counters below).
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const HealthReply mid = probeHealth(socket);
    for (auto& t : threads)
        t.join();
    std::fprintf(stderr,
                 "burst: done=%d shed=%d timed-out=%d lost=%d "
                 "mid-burst health=%s\n",
                 done.load(), shed.load(), timed_out.load(),
                 lost.load(),
                 std::string(healthStateName(mid.health)).c_str());
    expect(done.load() > 0, "burst completed no jobs at all");
    expect(shed.load() > 0,
           "burst overload shed nothing (queue never filled?)");
}

/** Phase 8: final ledger — consistency and health round trip. */
void
phaseFinalLedger(const std::string& socket, bool expect_degraded)
{
    // Wait for the daemon to go idle (bounded).
    HealthReply h;
    for (int i = 0; i < 100; ++i) {
        h = probeHealth(socket);
        if (h.ledger.queued == 0 && h.ledger.inFlight == 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    expect(h.ledger.queued == 0 && h.ledger.inFlight == 0,
           "daemon did not go idle after the sweep");
    expect(h.ledger.consistent(),
           "LEDGER INCONSISTENT: submitted=" +
               std::to_string(h.ledger.submitted) + " accepted=" +
               std::to_string(h.ledger.accepted) + " rejected=" +
               std::to_string(h.ledger.rejected) + " terminals=" +
               std::to_string(h.ledger.done + h.ledger.failed +
                              h.ledger.shed + h.ledger.timedOut));
    expect(h.health == HealthState::kOk,
           "daemon not OK after load subsided");
    if (expect_degraded) {
        expect(h.ledger.degradedTransitions >= 1,
               "service never entered DEGRADED under chaos");
        expect(h.ledger.recoveredTransitions >= 1,
               "service never recovered from DEGRADED");
    }
    std::fprintf(
        stderr,
        "final ledger: submitted=%llu accepted=%llu rejected=%llu "
        "done=%llu failed=%llu shed=%llu timed-out=%llu "
        "cache-hits=%llu quarantined=%llu degraded=%llu "
        "recovered=%llu\n",
        static_cast<unsigned long long>(h.ledger.submitted),
        static_cast<unsigned long long>(h.ledger.accepted),
        static_cast<unsigned long long>(h.ledger.rejected),
        static_cast<unsigned long long>(h.ledger.done),
        static_cast<unsigned long long>(h.ledger.failed),
        static_cast<unsigned long long>(h.ledger.shed),
        static_cast<unsigned long long>(h.ledger.timedOut),
        static_cast<unsigned long long>(h.ledger.resultCacheHits),
        static_cast<unsigned long long>(h.ledger.quarantined),
        static_cast<unsigned long long>(h.ledger.degradedTransitions),
        static_cast<unsigned long long>(
            h.ledger.recoveredTransitions));
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: crisploadgen (--spawn=CRISPD_BIN | --socket=PATH)\n"
        "                    [--chaos] [--smoke] [--clients=N] "
        "[--jobs=N]\n");
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string socket_path;
    std::string spawn_bin;
    bool chaos = false;
    bool smoke = false;
    int clients = 8;
    int jobs = 16;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto val = [&](const char* key) -> const char* {
            const std::size_t n = std::strlen(key);
            return a.compare(0, n, key) == 0 ? a.c_str() + n : nullptr;
        };
        if (const char* v = val("--socket=")) {
            socket_path = v;
        } else if (const char* v2 = val("--spawn=")) {
            spawn_bin = v2;
        } else if (a == "--chaos") {
            chaos = true;
        } else if (a == "--smoke") {
            smoke = true;
        } else if (const char* v3 = val("--clients=")) {
            clients = std::atoi(v3);
        } else if (const char* v4 = val("--jobs=")) {
            jobs = std::atoi(v4);
        } else {
            return usage();
        }
    }
    if (socket_path.empty() && spawn_bin.empty())
        return usage();
    if (chaos && spawn_bin.empty()) {
        std::fprintf(stderr,
                     "crisploadgen: --chaos needs --spawn (it relies "
                     "on a known daemon configuration)\n");
        return 2;
    }
    if (smoke) {
        clients = std::min(clients, 4);
        jobs = std::min(jobs, 6);
    }

    constexpr std::size_t kMaxImageBytes = 1u << 20;
    constexpr int kStrikes = 2;
    pid_t daemon_pid = -1;
    if (!spawn_bin.empty()) {
        if (socket_path.empty())
            socket_path = "/tmp/crisploadgen." +
                          std::to_string(::getpid()) + ".sock";
        daemon_pid = ::fork();
        if (daemon_pid == 0) {
            // Tiny queue + few workers: overload and shedding are
            // reachable with a modest burst.
            const std::string sock_arg = "--socket=" + socket_path;
            ::execl(spawn_bin.c_str(), spawn_bin.c_str(),
                    sock_arg.c_str(), "--workers=2", "--queue-cap=8",
                    "--quarantine-strikes=2", nullptr);
            std::perror("crisploadgen: exec crispd");
            ::_exit(127);
        }
        if (daemon_pid < 0) {
            std::perror("crisploadgen: fork");
            return 1;
        }
    }

    phaseLoad(socket_path, clients, jobs);
    phaseCache(socket_path);
    if (chaos) {
        phaseMixedEngine(socket_path);
        phaseWarmReplay(socket_path, clients, smoke ? 4 : 8);
        phaseAdmission(socket_path, kMaxImageBytes);
        phaseProtocolChaos(socket_path);
        phaseTimeoutQuarantine(socket_path, kStrikes);
        phaseBurst(socket_path, clients, smoke ? 8 : 16);
    }
    phaseFinalLedger(socket_path, /*expect_degraded=*/chaos);

    if (daemon_pid > 0) {
        {
            Client c(socket_path);
            ShutdownRequest sr;
            sr.drain = true;
            c.sendFrame(FrameType::kShutdown, sr.encode());
        }
        int status = 0;
        ::waitpid(daemon_pid, &status, 0);
        expect(WIFEXITED(status) && WEXITSTATUS(status) == 0,
               "crispd exited with status " + std::to_string(status) +
                   " (its own shutdown ledger check failed?)");
    }

    if (g_failures == 0) {
        std::fprintf(stderr, "crisploadgen: all assertions passed\n");
        return 0;
    }
    std::fprintf(stderr, "crisploadgen: %d assertion(s) failed\n",
                 g_failures);
    return 1;
}
