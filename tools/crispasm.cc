/**
 * @file
 * crispasm — assemble CRISP assembly to an object file, or disassemble
 * an object file back to text.
 *
 *   crispasm input.s  [-o out.obj]      assemble
 *   crispasm -d input.obj               disassemble
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "asm/assembler.hh"
#include "isa/objfile.hh"

namespace
{

std::string
readFile(const std::string& path)
{
    std::ifstream f(path);
    if (!f)
        throw crisp::CrispError("cannot open: " + path);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace crisp;

    std::string input;
    std::string output;
    bool disassemble_mode = false;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "-d") {
            disassemble_mode = true;
        } else if (a == "-o" && i + 1 < argc) {
            output = argv[++i];
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "usage: crispasm input.s [-o out.obj] "
                                 "| crispasm -d input.obj\n");
            return 2;
        } else {
            input = a;
        }
    }
    if (input.empty()) {
        std::fprintf(stderr, "crispasm: no input file\n");
        return 2;
    }

    try {
        if (disassemble_mode) {
            const Program prog = loadObjectFile(input);
            std::fputs(prog.disassemble().c_str(), stdout);
            return 0;
        }
        const Program prog = assemble(readFile(input));
        if (output.empty()) {
            std::fputs(prog.disassemble().c_str(), stdout);
        } else {
            saveObjectFile(prog, output);
            std::fprintf(stderr, "wrote %s (%zu parcels)\n",
                         output.c_str(), prog.text.size());
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "crispasm: %s\n", e.what());
        return 1;
    }
    return 0;
}
