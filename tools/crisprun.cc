/**
 * @file
 * crisprun — run a CRISP program (C source, assembly or object file)
 * on any of the three machines with full statistics.
 *
 *   crisprun program.{c,s,obj}
 *            [--machine=pipeline|interp|delayed]
 *            [--engine=fast|cycle|interp]
 *            [--fold=none|crisp|all] [--dic=N] [--mem-latency=N]
 *            [--stack-cache=N] [--stack-penalty=N]
 *            [--no-predict-bit] [--profile-opt]
 *            [--trace[=N]] [--stats] [--histogram]
 *            [--stats-json FILE]
 *
 *   --engine=KIND  pick the execution engine directly: "fast" is the
 *                  threaded-code functional engine (architectural
 *                  results and opcode statistics at native speed, no
 *                  cycle timing), "cycle" the pipeline simulator,
 *                  "interp" the reference interpreter. --machine=
 *                  remains the timing-model selector; --engine=fast is
 *                  the choice for architectural-only runs.
 *   --profile-opt  run once on the interpreter and patch profile-
 *                  optimal prediction bits before the measured run
 *   --annul        with --machine=delayed: squashing (annulling) delay
 *                  slots, filled from branch targets
 *   --trace[=N]    print a per-cycle pipeline trace (first N cycles)
 *   --histogram    print the dynamic opcode histogram
 *   --stats-json FILE  (pipeline machine) write the full SimStats as a
 *                  JSON object to FILE ("-" for stdout)
 *
 * The program's exit value (main's return, i.e. the accumulator) is
 * printed; a delayed-branch machine requires a program compiled with
 * crispcc --delay-slots.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "asm/assembler.hh"
#include "baseline/delayed.hh"
#include "analysis/checks.hh"
#include "cc/compiler.hh"
#include "interp/interpreter.hh"
#include "isa/objfile.hh"
#include "predict/profile.hh"
#include "sim/cpu.hh"
#include "sim/fastengine.hh"

namespace
{

std::string
readFile(const std::string& path)
{
    std::ifstream f(path);
    if (!f)
        throw crisp::CrispError("cannot open: " + path);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

bool
endsWith(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: crisprun program.{c,s,obj} [options]\n"
        "  --machine=pipeline|interp|delayed   (default pipeline)\n"
        "  --engine=fast|cycle|interp  (fast: threaded functional "
        "engine)\n"
        "  --fold=none|crisp|all  --dic=N  --mem-latency=N\n"
        "  --stack-cache=N  --stack-penalty=N  --no-predict-bit\n"
        "  --max-cycles=N  --profile-opt  --annul  --trace[=N]  "
        "--stats  --histogram\n"
        "  --stats-json FILE  (pipeline only; \"-\" for stdout)\n"
        "exit status: 0 ok, 1 load/internal error, 2 usage,\n"
        "             3 cycle limit exceeded, 4 machine fault\n");
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace crisp;

    std::string input;
    std::string machine = "pipeline";
    SimConfig cfg;
    bool want_stats = false;
    bool want_histogram = false;
    std::string stats_json_path;
    bool profile_opt = false;
    long trace_cycles = 0;
    bool delay_slots_hint = false;
    bool annul = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto val = [&](const char* key) -> const char* {
            const std::size_t n = std::strlen(key);
            return a.compare(0, n, key) == 0 ? a.c_str() + n : nullptr;
        };
        if (const char* v = val("--machine=")) {
            machine = v;
        } else if (const char* ve = val("--engine=")) {
            const std::string e = ve;
            if (e == "fast")
                machine = "fast";
            else if (e == "cycle")
                machine = "pipeline";
            else if (e == "interp")
                machine = "interp";
            else
                return usage();
        } else if (const char* v2 = val("--fold=")) {
            const std::string f = v2;
            if (f == "none")
                cfg.foldPolicy = FoldPolicy::kNone;
            else if (f == "crisp")
                cfg.foldPolicy = FoldPolicy::kCrisp;
            else if (f == "all")
                cfg.foldPolicy = FoldPolicy::kAll;
            else
                return usage();
        } else if (const char* v3 = val("--dic=")) {
            cfg.dicEntries = std::atoi(v3);
        } else if (const char* v4 = val("--mem-latency=")) {
            cfg.memLatency = std::atoi(v4);
        } else if (const char* v5 = val("--stack-cache=")) {
            cfg.stackCacheWords = std::atoi(v5);
        } else if (const char* v6 = val("--stack-penalty=")) {
            cfg.stackCacheMissPenalty = std::atoi(v6);
        } else if (const char* v8 = val("--max-cycles=")) {
            cfg.maxCycles = std::strtoull(v8, nullptr, 10);
            if (cfg.maxCycles == 0)
                return usage();
        } else if (a == "--no-predict-bit") {
            cfg.respectPredictionBit = false;
        } else if (a == "--annul") {
            annul = true;
        } else if (a == "--profile-opt") {
            profile_opt = true;
        } else if (a == "--stats") {
            want_stats = true;
        } else if (const char* v9 = val("--stats-json=")) {
            stats_json_path = v9;
        } else if (a == "--stats-json" && i + 1 < argc) {
            stats_json_path = argv[++i];
        } else if (a == "--histogram") {
            want_histogram = true;
        } else if (a == "--trace") {
            trace_cycles = 200;
        } else if (const char* v7 = val("--trace=")) {
            trace_cycles = std::atol(v7);
        } else if (!a.empty() && a[0] == '-') {
            return usage();
        } else if (input.empty()) {
            input = a;
        } else {
            return usage();
        }
    }
    if (input.empty())
        return usage();
    if (machine == "delayed")
        delay_slots_hint = true;

    try {
        Program prog;
        if (endsWith(input, ".obj")) {
            prog = loadObjectFile(input);
        } else if (endsWith(input, ".s") || endsWith(input, ".asm")) {
            prog = assemble(readFile(input));
        } else {
            cc::CompileOptions opts;
            opts.delaySlots = delay_slots_hint;
            opts.annulSlots = annul;
            prog = cc::compile(readFile(input), opts).program;
        }

        if (profile_opt) {
            prog = profileOptimize(prog);
            std::fprintf(stderr, "crisprun: applied profile-optimal "
                                 "prediction bits\n");
        }

        if (machine == "interp") {
            Interpreter interp(prog);
            const InterpResult r = interp.run();
            std::printf("exit value: %d\n",
                        static_cast<int>(interp.accum()));
            if (want_stats) {
                std::printf("instructions: %llu\nbranches: %llu "
                            "(one-parcel %llu)\n",
                            static_cast<unsigned long long>(
                                r.instructions),
                            static_cast<unsigned long long>(r.branches),
                            static_cast<unsigned long long>(
                                r.shortBranches));
            }
            if (want_histogram)
                std::fputs(r.histogramTable().c_str(), stdout);
            if (!r.halted) {
                std::fprintf(stderr, "crisprun: step limit exceeded "
                                     "without reaching halt\n");
                return 3;
            }
            return 0;
        }

        if (machine == "delayed") {
            DelayedBranchCpu cpu(prog, annul);
            const DelayedStats& s = cpu.run();
            std::printf("exit value: %d\n",
                        static_cast<int>(cpu.accum()));
            if (want_stats) {
                std::printf("cycles: %llu\ninstructions: %llu\nnop "
                            "slots: %llu\ninterlock stalls: %llu\n"
                            "annulled slots: %llu\nCPI: %.3f\n",
                            static_cast<unsigned long long>(s.cycles),
                            static_cast<unsigned long long>(
                                s.instructions),
                            static_cast<unsigned long long>(s.nopSlots),
                            static_cast<unsigned long long>(
                                s.interlockStalls),
                            static_cast<unsigned long long>(
                                s.annulledSlots),
                            s.cpi());
            }
            return s.halted ? 0 : 3;
        }

        if (machine == "fast") {
            // Feed proven indirect-target sets to the translator:
            // singleton sets let traces chain through indirect
            // dispatches (runtime-guarded, so a stale proof can never
            // corrupt execution).
            analysis::AnalysisOptions aopt;
            aopt.predict = analysis::PredictConvention::kNone;
            aopt.foldInfo = false;
            const analysis::AnalysisResult ar =
                analysis::analyzeProgram(prog, aopt);
            IndirectHints hints;
            if (!ar.hasErrors())
                hints = analysis::hintsFromTargets(ar.targets);
            FastEngine eng(prog, cfg, nullptr, nullptr, &hints);
            const SimStats& s = eng.run();
            std::printf("exit value: %d\n",
                        static_cast<int>(eng.accum()));
            if (want_stats)
                std::fputs(s.toString().c_str(), stdout);
            if (!stats_json_path.empty()) {
                const std::string json = s.toJson() + "\n";
                if (stats_json_path == "-") {
                    std::fputs(json.c_str(), stdout);
                } else {
                    std::ofstream out(stats_json_path);
                    if (!out)
                        throw CrispError("cannot write: " +
                                         stats_json_path);
                    out << json;
                }
            }
            if (want_histogram) {
                InterpResult hist;
                hist.instructions = s.apparent;
                hist.opcodeCounts = s.opcodeCounts;
                std::fputs(hist.histogramTable().c_str(), stdout);
            }
            if (s.faulted) {
                std::fprintf(stderr,
                             "crisprun: machine fault at 0x%x: %s\n",
                             static_cast<unsigned>(s.faultPc),
                             s.faultReason.c_str());
                return 4;
            }
            if (!s.halted) {
                std::fprintf(
                    stderr,
                    "crisprun: cycle limit exceeded "
                    "(%llu instructions) without reaching halt\n",
                    static_cast<unsigned long long>(s.apparent));
                return 3;
            }
            return 0;
        }

        if (machine != "pipeline")
            return usage();

        CrispCpu cpu(prog, cfg);
        if (trace_cycles > 0) {
            long remaining = trace_cycles;
            cpu.setTraceSink([&remaining](const std::string& line) {
                if (remaining-- > 0)
                    std::puts(line.c_str());
            });
        }
        const SimStats& s = cpu.run();
        std::printf("exit value: %d\n", static_cast<int>(cpu.accum()));
        if (want_stats)
            std::fputs(s.toString().c_str(), stdout);
        if (!stats_json_path.empty()) {
            const std::string json = s.toJson() + "\n";
            if (stats_json_path == "-") {
                std::fputs(json.c_str(), stdout);
            } else {
                std::ofstream out(stats_json_path);
                if (!out)
                    throw CrispError("cannot write: " +
                                     stats_json_path);
                out << json;
            }
        }
        if (want_histogram) {
            InterpResult hist;
            hist.instructions = s.apparent;
            hist.opcodeCounts = s.opcodeCounts;
            std::fputs(hist.histogramTable().c_str(), stdout);
        }
        if (s.faulted) {
            std::fprintf(stderr,
                         "crisprun: machine fault at 0x%x: %s\n",
                         static_cast<unsigned>(s.faultPc),
                         s.faultReason.c_str());
            return 4;
        }
        if (!s.halted) {
            std::fprintf(stderr,
                         "crisprun: cycle limit exceeded "
                         "(%llu cycles) without reaching halt\n",
                         static_cast<unsigned long long>(s.cycles));
            return 3;
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "crisprun: %s\n", e.what());
        return 1;
    }
}
