/**
 * @file
 * crispcc — command-line driver for the CRISP-C compiler.
 *
 *   crispcc input.c [-o out.obj] [-S] [-O] [--no-spread]
 *           [--no-peephole] [--predict=naive|heuristic]
 *           [--delay-slots] [--disasm] [--verify] [--stats-json]
 *           [--cost-audit] [--targets] [--tamper-dce]
 *
 *   -S            print the assembly listing instead of writing output
 *   -o FILE       write a linked CRISP object file
 *   -O            run the dataflow optimizer (constant-branch folding,
 *                 dead-code elimination, copy propagation, ccDead-aware
 *                 re-spread), gated by the translation validator
 *   --disasm      print the binary disassembly
 *   --no-spread   disable the Branch Spreading pass
 *   --predict=    prediction-bit mode (default heuristic)
 *   --delay-slots target the delayed-branch baseline machine
 *   --verify      audit the compilation against the static analyzer
 *                 (exit 1 on any discrepancy); with -O also print the
 *                 translation-validator verdict
 *   --stats-json  print the compile-time statistics the analyzer can
 *                 derive without simulating; with -O, include the
 *                 optimizer's per-pass report (instructions
 *                 before/after, branches rewritten, dead stores
 *                 removed, cost-envelope delta)
 *   --cost-audit  print the per-site static delay-bound table and
 *                 audit the compiler's spread claims against it: every
 *                 fully-spread branch must be provably free ([0, 0]
 *                 cycles). Exit 1 when any claim escapes its bound.
 *   --targets     print the interprocedural indirect-target report:
 *                 per indirect branch / return site, the proven target
 *                 set (or the top fallback), plus the call-graph
 *                 summary backing the return-site matching
 *   --tamper-dce  (testing) deliberately delete one live store during
 *                 -O and skip the validator fallback
 *
 * Exit codes: 0 success, 1 compile/verify/audit failure, 2 usage,
 * 4 the optimizer shipped a rewrite the translation validator rejects
 * (only reachable via --tamper-dce; a genuine TV failure falls back to
 * the unoptimized baseline and exits 0).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/ccverify.hh"
#include "analysis/opt.hh"
#include "cc/compiler.hh"
#include "isa/objfile.hh"

namespace
{

std::string
readFile(const std::string& path)
{
    std::ifstream f(path);
    if (!f)
        throw crisp::CrispError("cannot open: " + path);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: crispcc input.c [-o out.obj] [-S] [-O] [--disasm]\n"
        "               [--no-spread] [--no-peephole]\n"
        "               [--predict=naive|heuristic] [--delay-slots]\n"
        "               [--verify] [--stats-json] [--cost-audit]\n"
        "               [--targets] [--tamper-dce]\n");
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace crisp;

    std::string input;
    std::string output;
    bool listing = false;
    bool disasm = false;
    bool verify = false;
    bool stats_json = false;
    bool cost_audit = false;
    bool targets_report = false;
    bool optimize = false;
    cc::CompileOptions opts;
    analysis::OptOptions oopts;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "-S") {
            listing = true;
        } else if (a == "--disasm") {
            disasm = true;
        } else if (a == "-o") {
            if (++i >= argc)
                return usage();
            output = argv[i];
        } else if (a == "-O" || a == "--optimize") {
            optimize = true;
        } else if (a == "--tamper-dce") {
            optimize = true;
            oopts.tamperDce = true;
        } else if (a == "--no-spread") {
            opts.spread = false;
        } else if (a == "--no-peephole") {
            opts.peephole = false;
        } else if (a == "--delay-slots") {
            opts.delaySlots = true;
        } else if (a == "--verify") {
            verify = true;
        } else if (a == "--stats-json") {
            stats_json = true;
        } else if (a == "--cost-audit") {
            cost_audit = true;
        } else if (a == "--targets") {
            targets_report = true;
        } else if (a == "--predict=naive") {
            opts.predict = cc::PredictMode::kAllNotTaken;
        } else if (a == "--predict=heuristic") {
            opts.predict = cc::PredictMode::kBackwardTaken;
        } else if (!a.empty() && a[0] == '-') {
            return usage();
        } else if (input.empty()) {
            input = a;
        } else {
            return usage();
        }
    }
    if (input.empty())
        return usage();

    try {
        cc::CompileResult r = cc::compile(readFile(input), opts);
        analysis::OptReport orep;
        if (optimize) {
            orep = analysis::optimize(r, opts, oopts);
            r = orep.result;
        }
        if (listing)
            std::fputs(r.listing.c_str(), stdout);
        if (disasm)
            std::fputs(r.program.disassemble().c_str(), stdout);
        if (!output.empty()) {
            saveObjectFile(r.program, output);
            std::fprintf(stderr, "wrote %s (%zu parcels, %zu data "
                                 "bytes)\n",
                         output.c_str(), r.program.text.size(),
                         r.program.data.size());
        }
        if (verify || stats_json || cost_audit || targets_report) {
            const analysis::VerifyReport v =
                analysis::verifyCompile(r, opts);
            if (targets_report && v.applicable) {
                std::fputs(v.analysis.targetsTableText().c_str(),
                           stdout);
            } else if (targets_report) {
                std::printf("targets: not applicable "
                            "(delay-slot baseline build)\n");
            }
            if (cost_audit) {
                if (!v.applicable) {
                    std::printf("cost audit: not applicable "
                                "(delay-slot baseline build)\n");
                } else {
                    std::fputs(v.analysis.costTableText().c_str(),
                               stdout);
                    std::printf("cost audit: %s — %d spread claim(s), "
                                "%d proven free\n",
                                v.ok() ? "OK" : "FAILED",
                                v.claimedSpread, v.costZeroBound);
                    for (const std::string& p : v.problems)
                        std::printf("  %s\n", p.c_str());
                    if (!v.ok())
                        return 1;
                }
            }
            if (stats_json) {
                if (!v.applicable) {
                    std::printf("{\"applicable\": false}\n");
                } else if (optimize) {
                    std::printf("{\"applicable\": true, "
                                "\"fullySpread\": %d, "
                                "\"claimedSpread\": %d, "
                                "\"confirmedSpread\": %d, "
                                "\"opt\": %s, "
                                "\"analysis\": %s}\n",
                                r.fullySpread, v.claimedSpread,
                                v.confirmedSpread,
                                orep.toJson().c_str(),
                                v.analysis.toJson().c_str());
                } else {
                    std::printf("{\"applicable\": true, "
                                "\"fullySpread\": %d, "
                                "\"claimedSpread\": %d, "
                                "\"confirmedSpread\": %d, "
                                "\"analysis\": %s}\n",
                                r.fullySpread, v.claimedSpread,
                                v.confirmedSpread,
                                v.analysis.toJson().c_str());
                }
            }
            if (verify) {
                std::fputs(v.toString().c_str(), stderr);
                if (optimize && orep.applicable) {
                    std::fprintf(
                        stderr,
                        "tv: %s — %d site(s) matched, %d improved, "
                        "envelope %llu -> %llu%s\n",
                        orep.tv.ok ? "OK" : "REJECTED",
                        orep.tv.sitesMatched, orep.tv.sitesImproved,
                        static_cast<unsigned long long>(
                            orep.tv.envelopeHiBefore),
                        static_cast<unsigned long long>(
                            orep.tv.envelopeHiAfter),
                        orep.tvFallback ? " (fallback engaged)" : "");
                    for (const std::string& p : orep.tv.problems)
                        std::fprintf(stderr, "  %s\n", p.c_str());
                    if (!orep.tv.counterexample.empty()) {
                        std::fprintf(stderr, "  counterexample: %s\n",
                                     orep.tv.counterexample.c_str());
                    }
                }
                if (!v.ok())
                    return 1;
            }
        }
        // A shipped optimized binary the validator rejects is a hard
        // failure with its own exit code (only --tamper-dce skips the
        // fallback that otherwise prevents this).
        if (optimize && orep.optimized && !orep.tv.ok) {
            std::fprintf(stderr, "crispcc: translation validation "
                                 "FAILED on the shipped binary\n");
            for (const std::string& p : orep.tv.problems)
                std::fprintf(stderr, "  %s\n", p.c_str());
            if (!orep.tv.counterexample.empty()) {
                std::fprintf(stderr, "  counterexample: %s\n",
                             orep.tv.counterexample.c_str());
            }
            return 4;
        }
        if (!listing && !disasm && output.empty() && !verify &&
            !stats_json && !cost_audit && !targets_report) {
            std::fputs(r.listing.c_str(), stdout);
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "crispcc: %s\n", e.what());
        return 1;
    }
    return 0;
}
