/**
 * @file
 * crispdbg — a small interactive debugger for the CRISP pipeline.
 *
 *   crispdbg program.{c,s,obj}
 *
 * Commands (also shown by `h`):
 *   s [n]        step n cycles (default 1), printing the trace line
 *   n [k]        run until k more architectural instructions retire
 *   b <sym|hex>  set a breakpoint on instruction retirement
 *   B            list breakpoints        d <idx>   delete breakpoint
 *   c            continue to breakpoint / halt
 *   p            print machine state     i         full statistics
 *   x <sym|hex> [n]   dump n memory words
 *   l [sym|hex]  disassemble around an address (default: IR.Next-PC)
 *   q            quit
 *
 * Because architectural effects happen at retirement, breakpoints fire
 * with precise state: everything older has executed, nothing younger
 * has.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "cc/compiler.hh"
#include "isa/objfile.hh"
#include "sim/cpu.hh"

namespace
{

using namespace crisp;

std::string
readFile(const std::string& path)
{
    std::ifstream f(path);
    if (!f)
        throw CrispError("cannot open: " + path);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

bool
endsWith(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

/** Observer that counts retirements and checks breakpoints. */
struct DebugObserver : ExecObserver
{
    std::set<Addr> breakpoints;
    Addr hitPc = 0;
    bool hit = false;
    std::uint64_t retired = 0;

    void
    onInstruction(Addr pc, Opcode) override
    {
        ++retired;
        if (breakpoints.count(pc)) {
            hit = true;
            hitPc = pc;
        }
    }
};

class Debugger
{
  public:
    explicit Debugger(const Program& prog) : prog_(prog), cpu_(prog)
    {
        cpu_.setTraceSink([this](const std::string& line) {
            if (echoTrace_)
                std::puts(line.c_str());
        });
    }

    void
    repl()
    {
        std::printf("crispdbg: entry at 0x%x; type h for help\n",
                    prog_.entry);
        std::string line;
        while (true) {
            std::printf("(crispdbg) ");
            std::fflush(stdout);
            if (!std::getline(std::cin, line))
                break;
            if (!dispatch(line))
                break;
        }
    }

  private:
    /** Parse an address: symbol name or hex/decimal literal. */
    bool
    parseAddr(const std::string& tok, Addr& out) const
    {
        if (const auto sym = prog_.lookup(tok)) {
            out = *sym;
            return true;
        }
        try {
            out = static_cast<Addr>(std::stoul(tok, nullptr, 0));
            return true;
        } catch (...) {
            return false;
        }
    }

    void
    printState() const
    {
        const SimStats& s = cpu_.stats();
        std::printf("cycle %llu  IR.Next-PC 0x%x  SP 0x%x  Accum %d  "
                    "flag %d  retired %llu\n",
                    static_cast<unsigned long long>(s.cycles),
                    cpu_.nextIssuePc(), cpu_.sp(),
                    static_cast<int>(cpu_.accum()),
                    cpu_.flag() ? 1 : 0,
                    static_cast<unsigned long long>(obs_.retired));
        if (cpu_.halted()) {
            std::printf("machine halted%s\n",
                        s.faulted ? " (FAULT)" : "");
        }
    }

    void
    disassembleAround(Addr at) const
    {
        // Walk from the start of text to find instruction boundaries.
        std::vector<Addr> pcs;
        Addr pc = prog_.textBase;
        while (pc < prog_.textEnd()) {
            pcs.push_back(pc);
            pc += static_cast<Addr>(instructionLength(
                      prog_.parcelAt(pc))) *
                  kParcelBytes;
        }
        std::size_t center = 0;
        for (std::size_t i = 0; i < pcs.size(); ++i) {
            if (pcs[i] <= at)
                center = i;
        }
        const std::size_t begin = center >= 4 ? center - 4 : 0;
        for (std::size_t i = begin;
             i < pcs.size() && i < begin + 9; ++i) {
            const Instruction inst = prog_.fetch(pcs[i]);
            std::printf("%c 0x%05x:  %s\n", pcs[i] == at ? '>' : ' ',
                        pcs[i], inst.toString(pcs[i]).c_str());
        }
    }

    bool
    dispatch(const std::string& line)
    {
        std::istringstream is(line);
        std::string cmd;
        if (!(is >> cmd))
            return true;

        if (cmd == "q")
            return false;
        if (cmd == "h") {
            std::printf(
                "s [n]=step cycles  n [k]=step instructions  c=continue\n"
                "b <sym|addr>=break  B=list  d <idx>=delete\n"
                "p=state  i=stats  x <sym|addr> [n]=dump words\n"
                "l [sym|addr]=disassemble  q=quit\n");
            return true;
        }
        if (cmd == "s") {
            long n = 1;
            is >> n;
            echoTrace_ = true;
            for (long k = 0; k < n && !cpu_.halted(); ++k)
                cpu_.tick(&obs_);
            echoTrace_ = false;
            printState();
            return true;
        }
        if (cmd == "n") {
            long k = 1;
            is >> k;
            const std::uint64_t target =
                obs_.retired + static_cast<std::uint64_t>(k);
            while (!cpu_.halted() && obs_.retired < target)
                cpu_.tick(&obs_);
            printState();
            return true;
        }
        if (cmd == "c") {
            obs_.hit = false;
            while (!cpu_.halted() && !obs_.hit)
                cpu_.tick(&obs_);
            if (obs_.hit)
                std::printf("breakpoint at 0x%x\n", obs_.hitPc);
            printState();
            return true;
        }
        if (cmd == "b") {
            std::string tok;
            Addr a = 0;
            if (is >> tok && parseAddr(tok, a)) {
                obs_.breakpoints.insert(a);
                std::printf("breakpoint #%zu at 0x%x\n",
                            obs_.breakpoints.size(), a);
            } else {
                std::printf("usage: b <symbol|address>\n");
            }
            return true;
        }
        if (cmd == "B") {
            std::size_t i = 0;
            for (Addr a : obs_.breakpoints)
                std::printf("#%zu  0x%x\n", i++, a);
            return true;
        }
        if (cmd == "d") {
            std::size_t idx = 0;
            if (is >> idx && idx < obs_.breakpoints.size()) {
                auto it = obs_.breakpoints.begin();
                std::advance(it, static_cast<std::ptrdiff_t>(idx));
                obs_.breakpoints.erase(it);
                std::printf("deleted\n");
            } else {
                std::printf("usage: d <index>\n");
            }
            return true;
        }
        if (cmd == "p") {
            printState();
            return true;
        }
        if (cmd == "i") {
            std::fputs(cpu_.stats().toString().c_str(), stdout);
            return true;
        }
        if (cmd == "x") {
            std::string tok;
            Addr a = 0;
            long n = 4;
            if (!(is >> tok) || !parseAddr(tok, a)) {
                std::printf("usage: x <symbol|address> [words]\n");
                return true;
            }
            is >> n;
            for (long k = 0; k < n; ++k) {
                const Addr at = a + static_cast<Addr>(k) * kWordBytes;
                std::printf("0x%05x: %d (0x%x)\n", at,
                            static_cast<int>(cpu_.memory().read32(at)),
                            cpu_.memory().read32(at));
            }
            return true;
        }
        if (cmd == "l") {
            std::string tok;
            Addr a = cpu_.nextIssuePc();
            if (is >> tok && !parseAddr(tok, a)) {
                std::printf("usage: l [symbol|address]\n");
                return true;
            }
            disassembleAround(a);
            return true;
        }
        std::printf("unknown command '%s' (h for help)\n", cmd.c_str());
        return true;
    }

    Program prog_;
    CrispCpu cpu_;
    DebugObserver obs_;
    bool echoTrace_ = false;
};

} // namespace

int
main(int argc, char** argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: crispdbg program.{c,s,obj}\n");
        return 2;
    }
    const std::string input = argv[1];
    try {
        Program prog;
        if (endsWith(input, ".obj"))
            prog = loadObjectFile(input);
        else if (endsWith(input, ".s") || endsWith(input, ".asm"))
            prog = assemble(readFile(input));
        else
            prog = crisp::cc::compile(readFile(input)).program;

        Debugger dbg(prog);
        dbg.repl();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "crispdbg: %s\n", e.what());
        return 1;
    }
    return 0;
}
