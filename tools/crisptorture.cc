/**
 * @file
 * crisptorture — seeded random differential torture for the CRISP
 * pipeline, with fault injection and automatic test-case shrinking.
 *
 *   crisptorture [--seeds=N] [--seed0=K] [--configs=quick|full]
 *                [--faults [--fault-kind=NAME]] [--shrink-demo]
 *                [--max-steps=N] [--timeout-ms=N] [--jobs=N] [-v]
 *
 * Modes:
 *  - default: every seed's program runs in lockstep against the
 *    functional interpreter across a matrix of pipeline configurations
 *    (fold policies; --configs=full adds DIC sizes and memory
 *    latencies). Any divergence is shrunk to a minimal reproducer and
 *    printed with its listing. Each (seed, config) pair also runs the
 *    static analyzer as a pre-simulation oracle: the per-site fold /
 *    prediction / resolved-at-issue counts it predicts must match what
 *    the pipeline actually retires; a disagreement is a
 *    "static mismatch" verdict and is shrunk just like a divergence.
 *    The oracle also holds every retired branch's observed delay (and
 *    the run's branchDelayCycles total) inside the cost engine's
 *    static per-site bounds; an escape is a "cost bound violation"
 *    verdict, shrunk the same way. Exit 1 on any verdict.
 *  - --faults: every seed also runs under each fault injector. Benign
 *    hint faults (flip-predict-bit, unfold-pair, drop-fill) must leave
 *    the architectural event stream and final state bit-identical
 *    (only cycle counts may change). Metadata corruption
 *    (corrupt-next-pc, corrupt-alt-pc, corrupt-cc-bit) runs with the
 *    retire-time decode checker enabled and must either never take
 *    effect or be reported as a structured DIC-corruption diagnostic —
 *    never a hang or a wrong answer.
 *  - --shrink-demo: seeds an artificial implementation bug (arch-bug
 *    injector, checker off), finds a diverging seed, and shrinks it,
 *    demonstrating the reducer on a real architectural divergence.
 *  - --opt: optimizer differential. Every seed generates a CRISP-C
 *    program (masked-LCG reduction loop with a seed-drawn guard
 *    structure: provably never-taken, genuinely dynamic, or
 *    data-correlated), compiles it, runs the dataflow optimizer, and
 *    holds the *optimized* binary to the full battery: translation
 *    validation, cycle-pipeline and fast-engine lockstep per fold
 *    policy, and the static oracle. A sweep where no seed optimizes
 *    fails — the gate must actually exercise the passes.
 *  - --engine-diff: three-way engine differential. Every seed runs the
 *    threaded-code fast engine against the interpreter (the stronger
 *    functional contract: fault reasons, opcode histogram, branch
 *    counts) AND the cycle pipeline against the interpreter, per fold
 *    policy. Both legs passing pins all three engines to the same
 *    architectural behaviour (each leg checks the full final state
 *    against the shared reference). Failures are shrunk as usual. The
 *    sweep always uses the fold-policy matrix — timing knobs (DIC
 *    size, memory latency) are meaningless to the functional engine.
 *
 * Seeds are independent, so the sweeps fan out across a thread pool
 * (--jobs, default: hardware concurrency). Each worker owns its
 * program, simulator and shrinker; per-seed output is buffered and
 * emitted in seed order, so the report (and the exit verdict) is
 * byte-identical for any job count.
 *
 * --timeout-ms=N arms a wall-clock watchdog per (seed, config) run:
 * one shared scanner thread (util::Watchdog) fires the pipeline's
 * cooperative cancel flag, the run comes back as Divergence::kTimeout,
 * and the seed is reported with a distinct TIMEOUT verdict — shrunk
 * like any other failure, against a "still times out" predicate. A
 * wedged run is a verdict (exit 1), never a hung harness.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/opt.hh"
#include "analysis/oracle.hh"
#include "cc/compiler.hh"
#include "util/thread_pool.hh"
#include "util/watchdog.hh"
#include "verify/enginediff.hh"
#include "verify/faults.hh"
#include "verify/generator.hh"
#include "verify/lockstep.hh"
#include "verify/shrink.hh"

namespace
{

using namespace crisp;
using namespace crisp::verify;

struct Options
{
    std::uint64_t seeds = 100;
    std::uint64_t seed0 = 1;
    bool full = false;
    bool faults = false;
    bool shrinkDemo = false;
    bool engineDiff = false;
    /** --no-chain: run the fast-engine legs with superblock chaining
     *  disabled (SimConfig::enableChaining = false), so CI can sweep
     *  the trace walker's fallback path with the same seeds. */
    bool noChain = false;
    bool optMode = false;
    FaultKind onlyFault = FaultKind::kNone;
    std::uint64_t maxSteps = 1'000'000;
    std::uint64_t timeoutMs = 0; // 0: no wall-clock watchdog
    int jobs = util::ThreadPool::defaultThreads();
    bool verbose = false;
};

int
usage()
{
    std::fprintf(
        stderr,
        "usage: crisptorture [--seeds=N] [--seed0=K]\n"
        "                    [--configs=quick|full]\n"
        "                    [--faults [--fault-kind=NAME]]\n"
        "                    [--shrink-demo] [--engine-diff "
        "[--no-chain]] [--opt]\n"
        "                    [--max-steps=N]\n"
        "                    [--timeout-ms=N] [--jobs=N] [-v]\n"
        "fault kinds: flip-predict-bit unfold-pair drop-fill\n"
        "             corrupt-next-pc corrupt-alt-pc corrupt-cc-bit\n");
    return 2;
}

/** The lockstep configuration matrix. */
std::vector<SimConfig>
configMatrix(bool full)
{
    std::vector<SimConfig> out;
    for (FoldPolicy fp :
         {FoldPolicy::kNone, FoldPolicy::kCrisp, FoldPolicy::kAll}) {
        if (!full) {
            SimConfig c;
            c.foldPolicy = fp;
            out.push_back(c);
            continue;
        }
        for (int dic : {8, 32}) {
            for (int lat : {1, 5}) {
                SimConfig c;
                c.foldPolicy = fp;
                c.dicEntries = dic;
                c.memLatency = lat;
                out.push_back(c);
            }
        }
    }
    return out;
}

std::string
divergenceText(std::uint64_t seed, const SimConfig& cfg,
               const LockstepReport& rep, const GenProgram& shrunk,
               int shrink_tests)
{
    char head[128];
    std::snprintf(head, sizeof(head),
                  "=== DIVERGENCE seed=%llu fold=%d dic=%d "
                  "mem-latency=%d ===\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<int>(cfg.foldPolicy), cfg.dicEntries,
                  cfg.memLatency);
    char mid[96];
    std::snprintf(mid, sizeof(mid),
                  "--- shrunk to %d instructions (%d shrink tests) "
                  "---\n",
                  shrunk.instructionCount(), shrink_tests);
    return std::string(head) + rep.toString() + "\n" + mid +
           shrunk.listing();
}

/**
 * Lockstep one generated program under one config (+ maybe faults).
 * When the caller carries a --timeout-ms budget, a watchdog timer is
 * armed for just this run and its cancel flag handed to the pipeline;
 * a fire surfaces as Divergence::kTimeout in the report.
 */
LockstepReport
runOne(const GenProgram& gp, const SimConfig& cfg,
       const FaultConfig* fault, const Options& opt,
       util::Watchdog* wd)
{
    LockstepOptions lo;
    lo.cfg = cfg;
    lo.maxSteps = opt.maxSteps;
    std::shared_ptr<util::Watchdog::Timer> timer;
    if (wd != nullptr && opt.timeoutMs > 0) {
        timer = wd->arm(std::chrono::milliseconds(opt.timeoutMs));
        lo.cancel = &timer->fired;
    }
    FaultInjector inj(fault != nullptr ? *fault : FaultConfig{});
    if (fault != nullptr)
        lo.hooks = &inj;
    const LockstepReport rep = runLockstep(gp.link(), lo);
    if (timer)
        timer->disarm();
    return rep;
}

/**
 * Run fn(seed_index) for every seed across the pool, tick the verbose
 * progress counter, then return. Results land in caller-owned per-seed
 * slots; nothing is printed from the workers except progress (stderr).
 */
void
sweepSeeds(const Options& opt,
           const std::function<void(std::size_t)>& fn)
{
    util::ThreadPool pool(opt.jobs);
    std::atomic<std::uint64_t> done{0};
    pool.parallelFor(
        static_cast<std::size_t>(opt.seeds), [&](std::size_t i) {
            fn(i);
            const std::uint64_t n =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (opt.verbose && n % 50 == 0) {
                std::fprintf(stderr, "crisptorture: %llu seeds done\n",
                             static_cast<unsigned long long>(n));
            }
        });
}

/** Plain differential sweep. @return divergences + static mismatches. */
int
plainSweep(const Options& opt)
{
    const auto cfgs = configMatrix(opt.full);
    struct SeedOut
    {
        int bad = 0;
        int staticBad = 0;
        int costBad = 0;
        int targetBad = 0;
        int timedOut = 0;
        std::string text;
    };
    std::vector<SeedOut> results(static_cast<std::size_t>(opt.seeds));
    util::Watchdog wd;

    sweepSeeds(opt, [&](std::size_t i) {
        const std::uint64_t s = opt.seed0 + i;
        const GenProgram gp = generate(s);
        const Program prog = gp.link();
        for (const SimConfig& cfg : cfgs) {
            const LockstepReport rep =
                runOne(gp, cfg, nullptr, opt, &wd);
            if (rep.kind == Divergence::kTimeout) {
                // The watchdog cancelled the run: a distinct verdict
                // (the pipeline wedged, or the budget is too tight),
                // shrunk against a "still times out" predicate. The
                // oracle is skipped for this config — it re-runs the
                // same pipeline and would wedge the same way.
                ++results[i].timedOut;
                const auto still_times_out =
                    [&](const GenProgram& cand) {
                        return runOne(cand, cfg, nullptr, opt, &wd)
                                   .kind == Divergence::kTimeout;
                    };
                const ShrinkResult sh =
                    shrinkProgram(gp, still_times_out);
                char head[128];
                std::snprintf(
                    head, sizeof(head),
                    "=== TIMEOUT seed=%llu fold=%d dic=%d "
                    "mem-latency=%d budget=%llums ===\n",
                    static_cast<unsigned long long>(s),
                    static_cast<int>(cfg.foldPolicy), cfg.dicEntries,
                    cfg.memLatency,
                    static_cast<unsigned long long>(opt.timeoutMs));
                char mid[96];
                std::snprintf(mid, sizeof(mid),
                              "--- shrunk to %d instructions (%d "
                              "shrink tests) ---\n",
                              sh.program.instructionCount(), sh.tests);
                results[i].text += std::string(head) + rep.toString() +
                                   "\n" + mid + sh.program.listing();
                continue;
            }
            if (!rep.ok()) {
                ++results[i].bad;
                const auto still_fails = [&](const GenProgram& cand) {
                    return !runOne(cand, cfg, nullptr, opt, &wd).ok();
                };
                const ShrinkResult sh = shrinkProgram(gp, still_fails);
                results[i].text +=
                    divergenceText(s, cfg, rep, sh.program, sh.tests);
            }

            // Static-analysis oracle: what the analyzer proves about
            // fold classes, prediction bits, resolved-at-issue
            // guarantees and per-site delay bounds must agree with
            // what the pipeline retires.
            const analysis::OracleReport orep =
                analysis::runStaticOracle(prog, cfg);
            if (orep.ok())
                continue;
            // A run can trip several verdicts; the structural
            // mismatch dominates the label, then cost, then target
            // sets — the counters track each kind regardless.
            const bool structural = !orep.mismatches.empty();
            const bool costly = !orep.costViolations.empty();
            if (structural)
                ++results[i].staticBad;
            if (costly)
                ++results[i].costBad;
            if (!orep.targetViolations.empty())
                ++results[i].targetBad;
            const auto still_fails_oracle =
                [&](const GenProgram& cand) {
                    const analysis::OracleReport rr =
                        analysis::runStaticOracle(cand.link(), cfg);
                    if (structural)
                        return !rr.mismatches.empty();
                    if (costly)
                        return !rr.costViolations.empty();
                    return !rr.targetViolations.empty();
                };
            const ShrinkResult sh =
                shrinkProgram(gp, still_fails_oracle);
            char head[128];
            std::snprintf(head, sizeof(head),
                          "=== %s seed=%llu fold=%d "
                          "dic=%d mem-latency=%d ===\n",
                          structural ? "STATIC MISMATCH"
                          : costly   ? "COST BOUND VIOLATION"
                                     : "TARGET SET VIOLATION",
                          static_cast<unsigned long long>(s),
                          static_cast<int>(cfg.foldPolicy),
                          cfg.dicEntries, cfg.memLatency);
            char mid[96];
            std::snprintf(mid, sizeof(mid),
                          "--- shrunk to %d instructions (%d shrink "
                          "tests) ---\n",
                          sh.program.instructionCount(), sh.tests);
            results[i].text += std::string(head) + orep.toString() +
                               mid + sh.program.listing();
        }
    });

    int bad = 0;
    int static_bad = 0;
    int cost_bad = 0;
    int target_bad = 0;
    int timed_out = 0;
    for (const SeedOut& r : results) {
        std::fputs(r.text.c_str(), stdout);
        bad += r.bad;
        static_bad += r.staticBad;
        cost_bad += r.costBad;
        target_bad += r.targetBad;
        timed_out += r.timedOut;
    }
    std::printf("torture: %llu seeds x %zu configs, %d divergences, "
                "%d static mismatches, %d cost-bound violations, "
                "%d target-set violations, %d timeouts\n",
                static_cast<unsigned long long>(opt.seeds),
                cfgs.size(), bad, static_bad, cost_bad, target_bad,
                timed_out);
    return bad + static_bad + cost_bad + target_bad + timed_out;
}

/**
 * One fast-engine-vs-interpreter leg, with the same per-run watchdog
 * arming as runOne. The cooperative cancel flag is polled by the fast
 * engine on superblock boundaries.
 */
LockstepReport
runFastOne(const GenProgram& gp, const SimConfig& cfg,
           const Options& opt, util::Watchdog* wd)
{
    LockstepOptions lo;
    lo.cfg = cfg;
    lo.maxSteps = opt.maxSteps;
    std::shared_ptr<util::Watchdog::Timer> timer;
    if (wd != nullptr && opt.timeoutMs > 0) {
        timer = wd->arm(std::chrono::milliseconds(opt.timeoutMs));
        lo.cancel = &timer->fired;
    }
    const LockstepReport rep = runFastLockstep(gp.link(), lo);
    if (timer)
        timer->disarm();
    return rep;
}

/**
 * Three-way engine differential (--engine-diff): fast-vs-interp and
 * cycle-vs-interp per seed x fold policy. Each leg pins the complete
 * final architectural state against the shared interpreter reference,
 * so two passing legs transitively pin fast == cycle as well.
 * @return total divergences + timeouts.
 */
int
engineSweep(const Options& opt)
{
    const auto cfgs = configMatrix(false); // fold policies only
    struct SeedOut
    {
        int bad = 0;
        int timedOut = 0;
        std::string text;
    };
    std::vector<SeedOut> results(static_cast<std::size_t>(opt.seeds));
    util::Watchdog wd;

    sweepSeeds(opt, [&](std::size_t i) {
        const std::uint64_t s = opt.seed0 + i;
        const GenProgram gp = generate(s);
        for (SimConfig cfg : cfgs) {
            cfg.enableChaining = !opt.noChain;
            for (const bool fast : {true, false}) {
                const char* const leg = fast ? "fast" : "cycle";
                const auto run = [&](const GenProgram& cand) {
                    return fast ? runFastOne(cand, cfg, opt, &wd)
                                : runOne(cand, cfg, nullptr, opt, &wd);
                };
                const LockstepReport rep = run(gp);
                if (rep.kind == Divergence::kTimeout) {
                    ++results[i].timedOut;
                    const auto still_times_out =
                        [&](const GenProgram& cand) {
                            return run(cand).kind ==
                                   Divergence::kTimeout;
                        };
                    const ShrinkResult sh =
                        shrinkProgram(gp, still_times_out);
                    char head[128];
                    std::snprintf(
                        head, sizeof(head),
                        "=== ENGINE TIMEOUT seed=%llu engine=%s "
                        "fold=%d budget=%llums ===\n",
                        static_cast<unsigned long long>(s), leg,
                        static_cast<int>(cfg.foldPolicy),
                        static_cast<unsigned long long>(opt.timeoutMs));
                    char mid[96];
                    std::snprintf(mid, sizeof(mid),
                                  "--- shrunk to %d instructions (%d "
                                  "shrink tests) ---\n",
                                  sh.program.instructionCount(),
                                  sh.tests);
                    results[i].text += std::string(head) +
                                       rep.toString() + "\n" + mid +
                                       sh.program.listing();
                    continue;
                }
                if (rep.ok())
                    continue;
                ++results[i].bad;
                const auto still_fails = [&](const GenProgram& cand) {
                    return !run(cand).ok();
                };
                const ShrinkResult sh = shrinkProgram(gp, still_fails);
                char head[128];
                std::snprintf(head, sizeof(head),
                              "=== ENGINE DIVERGENCE seed=%llu "
                              "engine=%s fold=%d ===\n",
                              static_cast<unsigned long long>(s), leg,
                              static_cast<int>(cfg.foldPolicy));
                char mid[96];
                std::snprintf(mid, sizeof(mid),
                              "--- shrunk to %d instructions (%d "
                              "shrink tests) ---\n",
                              sh.program.instructionCount(), sh.tests);
                results[i].text += std::string(head) + rep.toString() +
                                   "\n" + mid + sh.program.listing();
            }
        }
    });

    int bad = 0;
    int timed_out = 0;
    for (const SeedOut& r : results) {
        std::fputs(r.text.c_str(), stdout);
        bad += r.bad;
        timed_out += r.timedOut;
    }
    std::printf("engine torture: %llu seeds x %zu configs x 3 engines%s, "
                "%d divergences, %d timeouts\n",
                static_cast<unsigned long long>(opt.seeds), cfgs.size(),
                opt.noChain ? " (chaining off)" : "", bad, timed_out);
    return bad + timed_out;
}

/**
 * Seeded CRISP-C source for the optimizer sweep (--opt): a masked-LCG
 * reduction loop whose guard structure is drawn from the seed. Some
 * draws make the range guard provably never-taken (the dataflow
 * optimizer folds the branch, deletes the arm and the dead store),
 * others leave it genuinely dynamic or correlate it with a data bit,
 * so the sweep covers both "passes fire" and "passes must leave it
 * alone".
 */
std::string
optSource(std::uint64_t seed)
{
    std::uint64_t x = seed * 2654435761ull + 1;
    const auto draw = [&](int m) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return static_cast<int>(x % static_cast<std::uint64_t>(m));
    };
    static const int kMasks[] = {31, 63, 127, 255, 1023};
    const int mask = kMasks[draw(5)];
    const bool never = draw(2) == 0;   // guard provably never taken?
    const int lim = never ? mask : mask / 2;
    const bool corr = draw(2) == 0;    // flag seeded from a data bit?
    static const char* kOps[] = {"+", "^", "|"};
    const char* op = kOps[draw(3)];
    const int n = 16 + draw(48);
    const int s0 = 1 + draw(100000);
    const int errinc = 1 + draw(9);
    const int deadmul = 3 + draw(5);

    char buf[768];
    std::snprintf(buf, sizeof(buf),
                  "int out, errs, seed;\n"
                  "int main()\n"
                  "{\n"
                  "    int i, v, f, n, lim, dead;\n"
                  "    seed = %d;\n"
                  "    out = 0;\n"
                  "    errs = 0;\n"
                  "    lim = %d;\n"
                  "    n = %d;\n"
                  "    for (i = 0; i < n; i++) {\n"
                  "        seed = seed * 1103515245 + 12345;\n"
                  "        v = (seed >> 16) & %d;\n"
                  "        f = %s;\n"
                  "        if (v > lim)\n"
                  "            f = 1;\n"
                  "        if (f)\n"
                  "            errs = errs + %d;\n"
                  "        dead = v * %d;\n"
                  "        out = out %s v;\n"
                  "    }\n"
                  "    return out & 65535;\n"
                  "}\n",
                  s0, lim, n, mask, corr ? "v & 1" : "0", errinc,
                  deadmul, op);
    return buf;
}

/**
 * Optimizer sweep (--opt): every seed's program is compiled, run
 * through the dataflow optimizer, and the *optimized* binary is held
 * to the full differential battery — translation-validator verdict,
 * cycle-pipeline lockstep and fast-engine lockstep per fold policy,
 * and the static oracle (fold/prediction/cost-bound agreement between
 * the analyzer and what the pipeline retires). C-level sources have no
 * instruction shrinker; failures print the optimized listing instead.
 * @return total failures.
 */
int
optSweep(const Options& opt)
{
    const auto cfgs = configMatrix(false); // fold policies only
    struct SeedOut
    {
        int bad = 0;
        int tvRejected = 0;
        int staticBad = 0;
        bool optimized = false;
        std::string text;
    };
    std::vector<SeedOut> results(static_cast<std::size_t>(opt.seeds));

    sweepSeeds(opt, [&](std::size_t i) {
        const std::uint64_t s = opt.seed0 + i;
        SeedOut& out = results[i];
        const std::string src = optSource(s);
        cc::CompileOptions copts;
        analysis::OptReport orep;
        try {
            const cc::CompileResult base = cc::compile(src, copts);
            orep = analysis::optimize(base, copts);
        } catch (const std::exception& e) {
            ++out.bad;
            out.text += "=== OPT COMPILE FAILURE seed=" +
                        std::to_string(s) + " ===\n" + e.what() + "\n" +
                        src;
            return;
        }
        out.optimized = orep.optimized;
        if (!orep.tv.ok) {
            // optimize() falls back to the baseline rather than ship a
            // rejected rewrite, so a rejection here means even the
            // baseline re-link failed its self-check: always a bug.
            ++out.tvRejected;
            out.text += "=== TV REJECTION seed=" + std::to_string(s) +
                        " ===\n";
            for (const std::string& p : orep.tv.problems)
                out.text += "  " + p + "\n";
            out.text += orep.result.listing;
        }
        const Program& prog = orep.result.program;
        for (const SimConfig& cfg : cfgs) {
            for (const bool fast : {true, false}) {
                LockstepOptions lo;
                lo.cfg = cfg;
                lo.maxSteps = opt.maxSteps;
                const LockstepReport rep =
                    fast ? runFastLockstep(prog, lo)
                         : runLockstep(prog, lo);
                if (rep.ok())
                    continue;
                ++out.bad;
                char head[128];
                std::snprintf(head, sizeof(head),
                              "=== OPT DIVERGENCE seed=%llu engine=%s "
                              "fold=%d ===\n",
                              static_cast<unsigned long long>(s),
                              fast ? "fast" : "cycle",
                              static_cast<int>(cfg.foldPolicy));
                out.text += std::string(head) + rep.toString() + "\n" +
                            orep.result.listing;
            }
            const analysis::OracleReport orc =
                analysis::runStaticOracle(prog, cfg);
            if (orc.ok())
                continue;
            ++out.staticBad;
            char head[128];
            std::snprintf(head, sizeof(head),
                          "=== OPT STATIC MISMATCH seed=%llu fold=%d "
                          "===\n",
                          static_cast<unsigned long long>(s),
                          static_cast<int>(cfg.foldPolicy));
            out.text += std::string(head) + orc.toString() +
                        orep.result.listing;
        }
    });

    int bad = 0;
    int tv_rejected = 0;
    int static_bad = 0;
    int optimized = 0;
    for (const SeedOut& r : results) {
        std::fputs(r.text.c_str(), stdout);
        bad += r.bad;
        tv_rejected += r.tvRejected;
        static_bad += r.staticBad;
        optimized += r.optimized ? 1 : 0;
    }
    std::printf("opt torture: %llu seeds x %zu configs x 2 engines, "
                "%d divergences, %d tv rejections, %d static "
                "mismatches, %d seeds optimized\n",
                static_cast<unsigned long long>(opt.seeds), cfgs.size(),
                bad, tv_rejected, static_bad, optimized);
    // A sweep where no seed optimized is not exercising the passes:
    // treat it as a harness failure so the CI gate stays meaningful.
    if (optimized == 0 && opt.seeds > 0) {
        std::printf("opt torture: FAILED, no seed triggered the "
                    "optimizer\n");
        return 1;
    }
    return bad + tv_rejected + static_bad;
}

/** Fault-injection sweep. @return number of property violations. */
int
faultSweep(const Options& opt)
{
    struct SeedOut
    {
        int bad = 0;
        std::uint64_t benignCycleDiffs = 0;
        std::uint64_t detections = 0;
        std::string text;
    };
    std::vector<SeedOut> results(static_cast<std::size_t>(opt.seeds));
    util::Watchdog wd;

    sweepSeeds(opt, [&](std::size_t i) {
        const std::uint64_t s = opt.seed0 + i;
        SeedOut& out = results[i];
        const GenProgram gp = generate(s);
        SimConfig cfg; // defaults: the CRISP configuration
        const LockstepReport base =
            runOne(gp, cfg, nullptr, opt, &wd);
        if (!base.ok()) {
            char head[96];
            std::snprintf(head, sizeof(head),
                          "seed %llu diverges with no fault "
                          "injected:\n",
                          static_cast<unsigned long long>(s));
            out.text += std::string(head) + base.toString() + "\n";
            ++out.bad;
            return;
        }
        for (FaultKind k : kInjectableFaults) {
            if (opt.onlyFault != FaultKind::kNone && k != opt.onlyFault)
                continue;
            FaultConfig fc;
            fc.kind = k;
            fc.seed = s;
            SimConfig fcfg = cfg;
            // The checker is the detection mechanism for metadata
            // corruption; it must also stay silent on benign hints.
            fcfg.checkDecode = true;
            const LockstepReport rep =
                runOne(gp, fcfg, &fc, opt, &wd);
            bool ok;
            if (faultIsBenignHint(k)) {
                // Hints: bit-identical architecture, timing may move.
                ok = rep.ok();
                if (ok && rep.sim.cycles != base.sim.cycles)
                    ++out.benignCycleDiffs;
            } else {
                // Metadata: either the fault never reached a retiring
                // entry, or it was detected as structured corruption.
                ok = rep.ok() ||
                     rep.kind == Divergence::kDicCorruptionDetected;
                if (rep.kind == Divergence::kDicCorruptionDetected)
                    ++out.detections;
            }
            if (!ok) {
                ++out.bad;
                char head[96];
                std::snprintf(
                    head, sizeof(head),
                    "=== FAULT PROPERTY VIOLATION seed=%llu "
                    "fault=%s ===\n",
                    static_cast<unsigned long long>(s),
                    std::string(faultKindName(k)).c_str());
                out.text += std::string(head) + rep.toString() + "\n";
            }
        }
    });

    int bad = 0;
    std::uint64_t benign_cycle_diffs = 0;
    std::uint64_t detections = 0;
    for (const SeedOut& r : results) {
        std::fputs(r.text.c_str(), stdout);
        bad += r.bad;
        benign_cycle_diffs += r.benignCycleDiffs;
        detections += r.detections;
    }
    std::printf("fault torture: %llu seeds, %d violations "
                "(%llu benign runs changed cycle counts, "
                "%llu corruptions detected)\n",
                static_cast<unsigned long long>(opt.seeds), bad,
                static_cast<unsigned long long>(benign_cycle_diffs),
                static_cast<unsigned long long>(detections));
    return bad;
}

/** Shrinker demo on a seeded architectural bug. @return 0 on success. */
int
shrinkDemo(const Options& opt)
{
    SimConfig cfg;
    cfg.checkDecode = false; // the bug must stay silent
    util::Watchdog wd;
    const auto fails = [&](const GenProgram& cand) {
        FaultConfig fc;
        fc.kind = FaultKind::kArchBug;
        fc.seed = cand.seed;
        fc.maxFires = 1;
        return !runOne(cand, cfg, &fc, opt, &wd).ok();
    };
    for (std::uint64_t s = opt.seed0; s < opt.seed0 + opt.seeds; ++s) {
        const GenProgram gp = generate(s);
        if (!fails(gp))
            continue;
        const ShrinkResult sh = shrinkProgram(gp, fails);
        const int before = gp.instructionCount();
        const int after = sh.program.instructionCount();
        std::printf("shrink demo: seed %llu, %d -> %d instructions "
                    "(%d tests)\n",
                    static_cast<unsigned long long>(s), before, after,
                    sh.tests);
        std::printf("%s", sh.program.listing().c_str());
        if (after > 20) {
            std::printf("shrink demo: FAILED, reproducer larger than "
                        "20 instructions\n");
            return 1;
        }
        std::printf("shrink demo: ok\n");
        return 0;
    }
    std::printf("shrink demo: no seed in [%llu, %llu) tripped the "
                "seeded bug\n",
                static_cast<unsigned long long>(opt.seed0),
                static_cast<unsigned long long>(opt.seed0 + opt.seeds));
    return 1;
}

} // namespace

int
main(int argc, char** argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto val = [&](const char* key) -> const char* {
            const std::size_t n = std::strlen(key);
            return a.compare(0, n, key) == 0 ? a.c_str() + n : nullptr;
        };
        if (const char* v = val("--seeds=")) {
            opt.seeds = std::strtoull(v, nullptr, 10);
        } else if (const char* v2 = val("--seed0=")) {
            opt.seed0 = std::strtoull(v2, nullptr, 10);
        } else if (const char* v3 = val("--configs=")) {
            const std::string c = v3;
            if (c == "quick")
                opt.full = false;
            else if (c == "full")
                opt.full = true;
            else
                return usage();
        } else if (a == "--faults") {
            opt.faults = true;
        } else if (const char* v4 = val("--fault-kind=")) {
            const auto k = crisp::verify::parseFaultKind(v4);
            if (!k)
                return usage();
            opt.onlyFault = *k;
            opt.faults = true;
        } else if (a == "--shrink-demo") {
            opt.shrinkDemo = true;
        } else if (a == "--engine-diff") {
            opt.engineDiff = true;
        } else if (a == "--no-chain") {
            opt.noChain = true;
        } else if (a == "--opt") {
            opt.optMode = true;
        } else if (const char* v5 = val("--max-steps=")) {
            opt.maxSteps = std::strtoull(v5, nullptr, 10);
        } else if (const char* v7 = val("--timeout-ms=")) {
            opt.timeoutMs = std::strtoull(v7, nullptr, 10);
        } else if (const char* v6 = val("--jobs=")) {
            opt.jobs = std::atoi(v6);
        } else if (a == "--jobs" && i + 1 < argc) {
            opt.jobs = std::atoi(argv[++i]);
        } else if (a == "-v") {
            opt.verbose = true;
        } else {
            return usage();
        }
    }
    if (opt.jobs < 1)
        return usage();

    try {
        if (opt.shrinkDemo)
            return shrinkDemo(opt) == 0 ? 0 : 1;
        if (opt.engineDiff)
            return engineSweep(opt) == 0 ? 0 : 1;
        if (opt.optMode)
            return optSweep(opt) == 0 ? 0 : 1;
        const int bad =
            opt.faults ? faultSweep(opt) : plainSweep(opt);
        return bad == 0 ? 0 : 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "crisptorture: %s\n", e.what());
        return 1;
    }
}
