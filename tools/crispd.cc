/**
 * @file
 * crispd — the CRISP batch-simulation daemon.
 *
 *   crispd --socket=PATH
 *          [--workers=N] [--queue-cap=N] [--deadline-ms=N]
 *          [--max-image-bytes=N] [--quarantine-strikes=N]
 *          [--chaos-per-mille=N] [--retry-cap=N]
 *
 * Listens on a local (AF_UNIX) stream socket for the frame protocol in
 * src/service/protocol.hh and feeds jobs to a SimService. One thread
 * per connection parses frames; completions arrive on service worker
 * threads and are written back under a per-connection mutex, so results
 * stream out as jobs finish, in completion order, tagged by jobId.
 *
 * Failure policy at this layer (everything else lives in SimService):
 *  - any malformed frame → one kError frame, then the connection is
 *    dropped (the parser is poisoned; nothing after a bad byte is
 *    trusted);
 *  - a client that disconnects with jobs in flight loses its replies
 *    but nothing else — completions hold the connection alive and
 *    their writes fail silently;
 *  - SIGINT/SIGTERM and the kShutdown frame both drain gracefully
 *    (kShutdown can also abort); either way every accepted job reaches
 *    its terminal state before the process exits, and the final ledger
 *    is printed and must be consistent.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/service.hh"

namespace
{

using namespace crisp;
using namespace crisp::service;

std::atomic<bool> g_stop{false};
std::atomic<bool> g_drain{true};

void
onSignal(int)
{
    g_stop.store(true, std::memory_order_relaxed);
}

/** One client connection; shared with in-flight completions. */
struct Conn
{
    explicit Conn(int fd) : fd(fd) {}
    ~Conn()
    {
        if (fd >= 0)
            ::close(fd);
    }
    Conn(const Conn&) = delete;
    Conn& operator=(const Conn&) = delete;

    /** Serialized frame write; silently drops on a dead peer. */
    void
    sendFrame(FrameType type, const std::vector<std::uint8_t>& payload)
    {
        std::vector<std::uint8_t> out;
        appendFrame(out, type, payload);
        std::lock_guard<std::mutex> lk(writeMu);
        std::size_t off = 0;
        while (off < out.size()) {
            const ssize_t n =
                ::send(fd, out.data() + off, out.size() - off,
                       MSG_NOSIGNAL);
            if (n <= 0)
                return; // peer gone; completions just stop streaming
            off += static_cast<std::size_t>(n);
        }
    }

    int fd;
    std::mutex writeMu;
};

void
serveConnection(const std::shared_ptr<Conn>& conn, SimService& service)
{
    FrameParser parser;
    std::uint8_t buf[16384];
    try {
        for (;;) {
            const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
            if (n <= 0)
                return; // EOF or error: client is gone
            parser.feed(buf, static_cast<std::size_t>(n));
            while (auto frame = parser.next()) {
                switch (frame->type) {
                  case FrameType::kSubmit: {
                    const JobRequest req =
                        JobRequest::decode(frame->payload);
                    std::string why;
                    const auto cb = [conn](const JobResult& res) {
                        conn->sendFrame(FrameType::kResult,
                                        res.encode());
                    };
                    if (service.submit(req, cb, &why) ==
                        SubmitStatus::kRejected) {
                        ErrorReply err;
                        err.jobId = req.jobId;
                        err.text = why;
                        conn->sendFrame(FrameType::kError,
                                        err.encode());
                    }
                    break;
                  }
                  case FrameType::kHealth: {
                    HealthReply reply;
                    reply.health = service.health();
                    reply.ledger = service.ledger();
                    conn->sendFrame(FrameType::kHealthReply,
                                    reply.encode());
                    break;
                  }
                  case FrameType::kShutdown: {
                    const ShutdownRequest sr =
                        ShutdownRequest::decode(frame->payload);
                    g_drain.store(sr.drain, std::memory_order_relaxed);
                    g_stop.store(true, std::memory_order_relaxed);
                    return;
                  }
                  default: {
                    ErrorReply err;
                    err.text = "unexpected client frame type";
                    conn->sendFrame(FrameType::kError, err.encode());
                    return;
                  }
                }
            }
        }
    } catch (const ProtocolError& e) {
        // First line of defence: answer once, then drop. A malformed
        // stream never reaches the job queue.
        ErrorReply err;
        err.text = e.what();
        conn->sendFrame(FrameType::kError, err.encode());
    }
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: crispd --socket=PATH [options]\n"
        "  --workers=N             worker threads (default 4)\n"
        "  --queue-cap=N           job queue bound (default 64)\n"
        "  --deadline-ms=N         default per-job deadline\n"
        "  --max-image-bytes=N     admission cap on object images\n"
        "  --quarantine-strikes=N  deadline strikes before quarantine\n"
        "  --retry-cap=N           service-wide retry cap\n"
        "  --chaos-per-mille=N     injected transient-fault rate\n");
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string socket_path;
    ServiceConfig cfg;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto val = [&](const char* key) -> const char* {
            const std::size_t n = std::strlen(key);
            return a.compare(0, n, key) == 0 ? a.c_str() + n : nullptr;
        };
        if (const char* v = val("--socket=")) {
            socket_path = v;
        } else if (const char* v2 = val("--workers=")) {
            cfg.workers = std::atoi(v2);
        } else if (const char* v3 = val("--queue-cap=")) {
            cfg.queueCap = static_cast<std::size_t>(std::atol(v3));
        } else if (const char* v4 = val("--deadline-ms=")) {
            cfg.defaultDeadlineMs =
                static_cast<std::uint32_t>(std::atol(v4));
        } else if (const char* v5 = val("--max-image-bytes=")) {
            cfg.maxImageBytes = static_cast<std::size_t>(std::atol(v5));
        } else if (const char* v6 = val("--quarantine-strikes=")) {
            cfg.quarantineStrikes = std::atoi(v6);
        } else if (const char* v7 = val("--retry-cap=")) {
            cfg.retryCap =
                static_cast<std::uint8_t>(std::atoi(v7));
        } else if (const char* v8 = val("--chaos-per-mille=")) {
            cfg.transientFaultPerMille =
                static_cast<std::uint32_t>(std::atol(v8));
        } else {
            return usage();
        }
    }
    if (socket_path.empty())
        return usage();

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof addr.sun_path) {
        std::fprintf(stderr, "crispd: socket path too long\n");
        return 1;
    }
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof addr.sun_path - 1);

    const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener < 0) {
        std::perror("crispd: socket");
        return 1;
    }
    ::unlink(socket_path.c_str()); // stale socket from a crashed run
    if (::bind(listener, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(listener, 64) != 0) {
        std::perror("crispd: bind/listen");
        ::close(listener);
        return 1;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    SimService service(cfg);
    std::fprintf(stderr, "crispd: listening on %s (%d workers)\n",
                 socket_path.c_str(), cfg.workers);

    std::vector<std::thread> conns;
    std::vector<std::weak_ptr<Conn>> conn_handles;
    while (!g_stop.load(std::memory_order_relaxed)) {
        pollfd pfd{listener, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 200);
        if (pr <= 0)
            continue; // timeout or EINTR: re-check the stop flag
        const int fd = ::accept(listener, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto conn = std::make_shared<Conn>(fd);
        conn_handles.push_back(conn);
        conns.emplace_back(
            [conn, &service] { serveConnection(conn, service); });
    }

    ::close(listener);
    ::unlink(socket_path.c_str());
    // Drain/abort the service FIRST: that terminal-states every job and
    // flushes its completion (which may write to still-open
    // connections), then readers are unblocked and joined.
    service.shutdown(g_drain.load(std::memory_order_relaxed));
    for (const std::weak_ptr<Conn>& w : conn_handles) {
        if (const auto c = w.lock())
            ::shutdown(c->fd, SHUT_RD); // unblock a reader in recv()
    }
    for (std::thread& t : conns) {
        if (t.joinable())
            t.join();
    }

    const LedgerSnapshot ledger = service.ledger();
    std::fprintf(
        stderr,
        "crispd: ledger submitted=%llu accepted=%llu rejected=%llu "
        "done=%llu failed=%llu shed=%llu timed-out=%llu "
        "cache-hits=%llu retries=%llu quarantined=%llu consistent=%s\n",
        static_cast<unsigned long long>(ledger.submitted),
        static_cast<unsigned long long>(ledger.accepted),
        static_cast<unsigned long long>(ledger.rejected),
        static_cast<unsigned long long>(ledger.done),
        static_cast<unsigned long long>(ledger.failed),
        static_cast<unsigned long long>(ledger.shed),
        static_cast<unsigned long long>(ledger.timedOut),
        static_cast<unsigned long long>(ledger.resultCacheHits),
        static_cast<unsigned long long>(ledger.retriesScheduled),
        static_cast<unsigned long long>(ledger.quarantined),
        ledger.consistent() ? "yes" : "NO");
    if (!ledger.consistent() || ledger.queued != 0 ||
        ledger.inFlight != 0) {
        std::fprintf(stderr,
                     "crispd: LEDGER INCONSISTENT AT SHUTDOWN\n");
        return 1;
    }
    return 0;
}
