/**
 * @file
 * crisplint — static analysis of CRISP object files and assembly.
 *
 *   crisplint file.obj|file.s [--policy=none|crisp|all]
 *             [--predict=none|heuristic|naive] [--stack-words=N]
 *             [--dot] [--json] [--sarif] [--cost] [--no-info]
 *             [--smoke]
 *
 * Builds the issue-point CFG with the PDU's own fold decoder, runs the
 * reaching-compare / fold-eligibility / stack-window dataflow passes,
 * and reports every violated invariant with a rule id and a fix hint
 * (the catalogue lives in docs/ANALYSIS.md).
 *
 *   --dot          print the basic-block CFG as Graphviz instead
 *   --json         print the full machine-readable report
 *   --sarif        print the diagnostics as a SARIF 2.1.0 log
 *                  (schema: docs/ANALYSIS.md; PCs become region byte
 *                  offsets into the input artifact)
 *   --cost         append the abstract-interpretation cost table —
 *                  per-site static delay bounds in cycles — to the
 *                  text report (--json already embeds the bounds)
 *   --policy=      fold policy to analyze under (default crisp)
 *   --predict=     prediction-bit convention to check (default
 *                  heuristic; `none` for generated/torture programs,
 *                  `naive` for all-not-taken builds)
 *   --stack-words= stack-cache window to check operands against
 *   --no-info      drop info-level diagnostics from the text report
 *   --smoke        run the built-in self-test and exit
 *
 * Exit status: 0 clean (info diagnostics allowed), 1 when any warning
 * or error fires, 2 on usage problems, 3 when the input cannot be
 * loaded or decoded.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/checks.hh"
#include "asm/assembler.hh"
#include "isa/objfile.hh"

namespace
{

using namespace crisp;
using namespace crisp::analysis;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: crisplint file.obj|file.s\n"
        "                 [--policy=none|crisp|all]\n"
        "                 [--predict=none|heuristic|naive]\n"
        "                 [--stack-words=N] [--dot] [--json]\n"
        "                 [--sarif] [--cost] [--no-info] [--smoke]\n");
    return 2;
}

std::vector<std::uint8_t>
readBytes(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        throw CrispError("cannot open: " + path);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(f),
                                     std::istreambuf_iterator<char>());
}

/** Object files lead with "CRSP"; anything else is assembly text. */
Program
loadInput(const std::string& path)
{
    const std::vector<std::uint8_t> bytes = readBytes(path);
    if (bytes.size() >= 4 && bytes[0] == 'C' && bytes[1] == 'R' &&
        bytes[2] == 'S' && bytes[3] == 'P') {
        return loadObject(bytes);
    }
    return assemble(std::string(bytes.begin(), bytes.end()));
}

bool
hasRule(const AnalysisResult& r, const char* rule)
{
    for (const Diagnostic& d : r.diags) {
        if (d.rule == rule)
            return true;
    }
    return false;
}

/**
 * Built-in self-test: a clean program must lint clean, and a program
 * seeded with one of each violation class must trip the matching rules.
 */
int
smoke()
{
    // Clean: spread compare (3 slots, the 3rd folding the branch),
    // forward branch predicted not-taken, no dead code.
    AsmBuilder clean;
    clean.label("main");
    clean.emit(Instruction::enter(2));
    clean.emit(Instruction::mov(Operand::stack(0), Operand::imm(3)));
    clean.emit(Instruction::cmp(Opcode::kCmpEq, Operand::stack(0),
                                Operand::imm(3)));
    clean.emit(Instruction::alu(Opcode::kAdd, Operand::stack(1),
                                Operand::imm(1)));
    clean.emit(Instruction::alu(Opcode::kAdd, Operand::stack(1),
                                Operand::imm(2)));
    clean.emit(Instruction::alu(Opcode::kAdd, Operand::stack(1),
                                Operand::imm(3)));
    clean.branch(Opcode::kIfTJmp, "done", /*predict_taken=*/false);
    clean.emit(Instruction::alu(Opcode::kAdd, Operand::stack(1),
                                Operand::imm(4)));
    clean.label("done");
    clean.emit(Instruction::halt());
    clean.entry("main");

    AnalysisOptions opt;
    const AnalysisResult ok = analyzeProgram(clean.link(), opt);
    if (ok.hasErrors() || ok.hasWarnings()) {
        std::printf("crisplint smoke: FAILED, clean program reported\n%s",
                    ok.toString().c_str());
        return 1;
    }

    // Seeded violations: an adjacent compare/branch (short spread) that
    // is also a backward loop branch predicted not-taken, plus dead
    // code past the halt.
    AsmBuilder bad;
    bad.label("main");
    bad.emit(Instruction::enter(2));
    bad.emit(Instruction::mov(Operand::stack(0), Operand::imm(2)));
    bad.label("loop");
    bad.emit(Instruction::alu(Opcode::kSub, Operand::stack(0),
                              Operand::imm(1)));
    bad.emit(Instruction::cmp(Opcode::kCmpGt, Operand::stack(0),
                              Operand::imm(0)));
    bad.branch(Opcode::kIfTJmp, "loop", /*predict_taken=*/false);
    bad.emit(Instruction::halt());
    bad.emit(Instruction::alu(Opcode::kAdd, Operand::stack(1),
                              Operand::imm(7)));
    bad.entry("main");

    const AnalysisResult found = analyzeProgram(bad.link(), opt);
    for (const char* rule : {"spread.short", "predict.backward-not-taken",
                             "cfg.unreachable"}) {
        if (!hasRule(found, rule)) {
            std::printf("crisplint smoke: FAILED, seeded violation "
                        "%s not detected\n%s",
                        rule, found.toString().c_str());
            return 1;
        }
    }
    std::printf("crisplint smoke: ok\n");
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string input;
    bool dot = false;
    bool json = false;
    bool sarif = false;
    bool show_cost = false;
    bool no_info = false;
    bool run_smoke = false;
    AnalysisOptions opt;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto val = [&](const char* key) -> const char* {
            const std::size_t n = std::strlen(key);
            return a.compare(0, n, key) == 0 ? a.c_str() + n : nullptr;
        };
        if (a == "--dot") {
            dot = true;
        } else if (a == "--json") {
            json = true;
        } else if (a == "--sarif") {
            sarif = true;
        } else if (a == "--cost") {
            show_cost = true;
        } else if (a == "--no-info") {
            no_info = true;
        } else if (a == "--smoke") {
            run_smoke = true;
        } else if (const char* v = val("--policy=")) {
            const std::string p = v;
            if (p == "none")
                opt.policy = crisp::FoldPolicy::kNone;
            else if (p == "crisp")
                opt.policy = crisp::FoldPolicy::kCrisp;
            else if (p == "all")
                opt.policy = crisp::FoldPolicy::kAll;
            else
                return usage();
        } else if (const char* v2 = val("--predict=")) {
            const std::string p = v2;
            if (p == "none")
                opt.predict = PredictConvention::kNone;
            else if (p == "heuristic")
                opt.predict = PredictConvention::kHeuristic;
            else if (p == "naive")
                opt.predict = PredictConvention::kAllNotTaken;
            else
                return usage();
        } else if (const char* v3 = val("--stack-words=")) {
            opt.stackCacheWords = std::atoi(v3);
            if (opt.stackCacheWords <= 0)
                return usage();
        } else if (!a.empty() && a[0] == '-') {
            return usage();
        } else if (input.empty()) {
            input = a;
        } else {
            return usage();
        }
    }

    if (run_smoke)
        return smoke();
    if (input.empty())
        return usage();
    opt.foldInfo = !no_info;

    try {
        const crisp::Program prog = loadInput(input);
        const AnalysisResult r = analyzeProgram(prog, opt);
        if (dot) {
            std::fputs(r.cfg->toDot().c_str(), stdout);
        } else if (sarif) {
            std::printf("%s\n", r.toSarif(input).c_str());
        } else if (json) {
            std::printf("%s\n", r.toJson().c_str());
        } else {
            std::fputs(r.toString().c_str(), stdout);
        }
        if (show_cost && !dot && !json && !sarif)
            std::fputs(r.costTableText().c_str(), stdout);
        return r.hasErrors() || r.hasWarnings() ? 1 : 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "crisplint: %s\n", e.what());
        return 3;
    }
}
