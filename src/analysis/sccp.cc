/**
 * @file
 * Sparse conditional constant propagation: the absint worklist with
 * edge feasibility and per-edge flag refinement.
 */

#include "sccp.hh"

#include <deque>

namespace crisp::analysis
{

namespace
{

/**
 * State flowing from predecessor @p pn (post-state @p po) into @p pc.
 * Returns an unreachable state when the edge is proven infeasible.
 */
AbsState
edgeState(const CfgNode& pn, const AbsState& po, Addr pc)
{
    const DecodedInst& pdi = pn.di;
    if (pdi.ctl == Ctl::kCall && pc == pdi.callRetPc) {
        // call -> return-site edge: the unanalyzed callee body may
        // touch anything; only reachability flows through.
        return po.reachable ? AbsState::anyState() : AbsState{};
    }
    if (!po.reachable || !pdi.hasCondBranch())
        return po;

    const Addr taken = pdi.takenPc;
    const Addr seq = pdi.seqPc;
    if (taken == seq)
        return po; // branch to next: both roles, no implied flag value

    bool edge_flag;
    if (pc == taken) {
        edge_flag = pdi.ctl == Ctl::kCondT;
    } else if (pc == seq) {
        edge_flag = pdi.ctl == Ctl::kCondF;
    } else {
        return po; // wild-target edge kept by validation: no refinement
    }

    // Feasibility: traversing this edge means the flag held edge_flag.
    const bool feasible =
        edge_flag ? po.flag.mayTrue : po.flag.mayFalse;
    if (!feasible)
        return AbsState{};
    AbsState r = po;
    r.flag = FlagVal::known(edge_flag);
    return r;
}

} // namespace

SccpResult
sccp(const Cfg& cfg, const AbsIntOptions& opts)
{
    SccpResult r;
    AbsIntResult& st = r.state;
    const Program& prog = cfg.program();

    for (const auto& [pc, n] : cfg.nodes()) {
        st.in.emplace(pc, AbsState{});
        st.out.emplace(pc, AbsState{});
    }

    AbsState boundary;
    boundary.reachable = true;
    boundary.accum = Interval::of(0);
    const std::int64_t sp0 =
        (prog.memBytes - kWordBytes) & ~(kWordBytes - 1);
    boundary.sp = {sp0, sp0};
    boundary.flag = FlagVal::known(false);

    if (!cfg.has(prog.entry))
        return r;

    std::deque<Addr> work{prog.entry};
    std::set<Addr> queued{prog.entry};
    std::map<Addr, int> joins;

    const std::uint64_t step_cap =
        opts.stepCap != 0
            ? opts.stepCap
            : static_cast<std::uint64_t>(cfg.nodes().size()) *
                      kAbsintStepsPerNode +
                  256;

    while (!work.empty()) {
        if (++st.steps > step_cap) {
            // Sound bail-out mirrors interpret(): every discovered
            // issue point is assumed reachable with nothing proven.
            st.converged = false;
            r.provenDirection.clear();
            r.executable.clear();
            for (auto& [pc, s] : st.in) {
                s = AbsState::anyState();
                r.executable.insert(pc);
            }
            for (auto& [pc, s] : st.out)
                s = AbsState::anyState();
            return r;
        }

        const Addr pc = work.front();
        work.pop_front();
        queued.erase(pc);
        const CfgNode& n = cfg.node(pc);

        AbsState i = pc == prog.entry ? boundary : AbsState{};
        for (const Addr p : n.preds)
            i = joinState(i, edgeState(cfg.node(p), st.out.at(p), pc));

        AbsState& in_slot = st.in.at(pc);
        if (!(i == in_slot)) {
            if (++joins[pc] > kAbsintWidenJoins)
                i = widenAbsState(in_slot, i, st.widenings);
            in_slot = i;
        }

        AbsState o;
        if (!i.reachable) {
            o = AbsState{};
        } else if (n.di.totalParcels <= 0) {
            o = i;
        } else {
            o = absTransfer(n.di, i);
        }

        AbsState& out_slot = st.out.at(pc);
        if (o == out_slot)
            continue;
        out_slot = std::move(o);
        for (const Addr s : n.succs) {
            if (queued.insert(s).second)
                work.push_back(s);
        }
    }

    for (const auto& [pc, s] : st.in) {
        if (!s.reachable)
            continue;
        r.executable.insert(pc);
        const CfgNode& n = cfg.node(pc);
        if (!n.di.hasCondBranch())
            continue;
        if (const auto f = st.out.at(pc).flag.constant())
            r.provenDirection.emplace(pc, n.di.condTaken(*f));
    }
    return r;
}

} // namespace crisp::analysis
