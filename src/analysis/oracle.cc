/**
 * @file
 * Static-vs-dynamic oracle implementation.
 */

#include "oracle.hh"

#include <sstream>

#include "sim/cpu.hh"

namespace crisp::analysis
{

namespace
{

std::string
hexPc(Addr pc)
{
    std::ostringstream os;
    os << "0x" << std::hex << pc;
    return os.str();
}

void
mismatch(std::vector<std::string>& out, Addr pc, const std::string& what)
{
    out.push_back(hexPc(pc) + ": " + what);
}

} // namespace

std::string
OracleReport::toString() const
{
    if (!applicable)
        return "oracle: not applicable\n";
    if (ok())
        return "oracle: static and dynamic views agree\n";
    std::ostringstream os;
    os << "oracle: " << mismatches.size() << " static mismatch(es), "
       << costViolations.size() << " cost-bound violation(s), "
       << targetViolations.size() << " target-set violation(s)\n";
    for (const std::string& m : mismatches)
        os << "  " << m << "\n";
    for (const std::string& m : costViolations)
        os << "  [cost] " << m << "\n";
    for (const std::string& m : targetViolations)
        os << "  [target] " << m << "\n";
    return os.str();
}

OracleReport
crossCheck(const AnalysisResult& st, const SimStats& dyn,
           const SiteRecorder& rec)
{
    OracleReport r;
    // Error-level diagnostics mean the static model itself flagged the
    // program as out of contract (decode failures, wild targets, stack
    // underflow); none of the invariants are claimed there.
    if (st.hasErrors()) {
        r.applicable = false;
        return r;
    }

    // Invariant 8 preparation: a branch parcel may belong to several
    // issue points (mixed fold); a dynamic event does not say which
    // one it came through, so the enforced set is the union over the
    // branch's issue points, and enforcement requires every one of
    // them to have proved an enforceable set.
    struct BranchTargets
    {
        std::set<Addr> targets;
        bool enforceable = true;
    };
    std::map<Addr, BranchTargets> proven;
    for (const auto& [ip, ts] : st.targets.sites) {
        if (ts.kind != TargetSiteKind::kIndirectJump)
            continue;
        BranchTargets& b = proven[ts.branchPc];
        b.enforceable = b.enforceable && ts.enforceable;
        b.targets.insert(ts.targets.begin(), ts.targets.end());
    }

    std::uint64_t sum_total = 0;
    std::uint64_t sum_folded = 0;
    std::uint64_t sum_cond = 0;
    std::uint64_t sum_resolved = 0;
    std::uint64_t sum_delay = 0;
    std::uint64_t envelope_lo = 0;
    std::uint64_t envelope_hi = 0;

    for (const auto& [pc, c] : rec.sites) {
        sum_total += c.total;
        sum_folded += c.folded;
        sum_cond += c.cond;
        sum_resolved += c.resolvedAtIssue;
        sum_delay += c.delaySum;

        const auto it = st.sites.find(pc);
        if (it == st.sites.end()) {
            mismatch(r.mismatches, pc,
                     "branch executed at a pc the analyzer never "
                     "reached");
            continue;
        }
        const BranchSite& s = it->second;

        if (c.sawConditional && !s.conditional) {
            mismatch(r.mismatches, pc,
                     "executed as conditional, static site is "
                     "unconditional");
        }
        if (c.sawUnconditional && s.conditional) {
            mismatch(r.mismatches, pc,
                     "executed as unconditional, static site is "
                     "conditional");
        }
        if (c.shortForm != s.shortForm) {
            mismatch(r.mismatches, pc,
                     "short-form encoding bit disagrees with the "
                     "static decode");
        }
        if (c.sawConditional && c.predictTaken != s.predictTaken) {
            mismatch(r.mismatches, pc,
                     "prediction bit disagrees with the static decode");
        }

        switch (s.cls) {
          case FoldClass::kFolded:
            if (c.lone != 0) {
                mismatch(r.mismatches, pc,
                         "site classified always-folded issued alone " +
                             std::to_string(c.lone) + " time(s)");
            }
            break;
          case FoldClass::kLone:
            if (c.folded != 0) {
                mismatch(r.mismatches, pc,
                         "site classified never-folded issued folded " +
                             std::to_string(c.folded) + " time(s)");
            }
            break;
          case FoldClass::kMixed:
            break;
        }

        if (s.conditional && s.guaranteedResolved &&
            c.resolvedAtIssue != c.cond) {
            mismatch(r.mismatches, pc,
                     "spread-guaranteed branch speculated " +
                         std::to_string(c.cond - c.resolvedAtIssue) +
                         " of " + std::to_string(c.cond) +
                         " execution(s)");
        }

        // Invariant 7: the observed delays of every execution of this
        // site must fall inside its static cost interval, and a
        // constant-direction proof must never be contradicted.
        if (const SiteCost* cost = st.cost.find(pc)) {
            envelope_lo +=
                static_cast<std::uint64_t>(cost->bound.lo) * c.total;
            envelope_hi +=
                static_cast<std::uint64_t>(cost->bound.hi) * c.total;
            if (c.delayMax > cost->bound.hi) {
                mismatch(r.costViolations, pc,
                         "observed delay " +
                             std::to_string(c.delayMax) +
                             " cycle(s) exceeds the static bound [" +
                             std::to_string(cost->bound.lo) + ", " +
                             std::to_string(cost->bound.hi) + "]");
            }
            if (c.delayMin < cost->bound.lo) {
                mismatch(r.costViolations, pc,
                         "observed delay " +
                             std::to_string(c.delayMin) +
                             " cycle(s) undershoots the static bound [" +
                             std::to_string(cost->bound.lo) + ", " +
                             std::to_string(cost->bound.hi) + "]");
            }
            if (cost->constantDirection) {
                const std::uint64_t want =
                    cost->alwaysTaken ? c.total : 0;
                if (c.taken != want) {
                    mismatch(r.costViolations, pc,
                             "branch proven " +
                                 std::string(cost->alwaysTaken
                                                 ? "always"
                                                 : "never") +
                                 "-taken went the other way " +
                                 std::to_string(cost->alwaysTaken
                                                    ? c.total - c.taken
                                                    : c.taken) +
                                 " of " + std::to_string(c.total) +
                                 " time(s)");
                }
            }
        } else {
            mismatch(r.costViolations, pc,
                     "branch executed at a site with no static cost "
                     "bound");
        }

        if (s.indirect) {
            const auto jt = rec.jumpTargets.find(pc);
            if (jt != rec.jumpTargets.end()) {
                for (const Addr t : jt->second) {
                    if (st.cfg->indirectTargets().count(t) == 0) {
                        mismatch(r.mismatches, pc,
                                 "indirect jump reached " + hexPc(t) +
                                     ", not in the static candidate "
                                     "set");
                    }
                }
                // Invariant 8: when every issue point covering this
                // branch proved an enforceable set, each dynamic
                // target must be a member of the union.
                const auto pv = proven.find(pc);
                if (pv != proven.end() && pv->second.enforceable) {
                    for (const Addr t : jt->second) {
                        if (pv->second.targets.count(t) == 0) {
                            mismatch(r.targetViolations, pc,
                                     "indirect jump reached " +
                                         hexPc(t) +
                                         ", outside its proven " +
                                         std::to_string(
                                             pv->second.targets
                                                 .size()) +
                                         "-element target set");
                        }
                    }
                }
            }
        }
    }

    // Aggregate reconciliation: the recorder saw every retired branch,
    // so its sums must equal the simulator's own counters exactly.
    if (sum_total != dyn.branches) {
        mismatch(r.mismatches, 0,
                 "event branch count " + std::to_string(sum_total) +
                     " != stats.branches " +
                     std::to_string(dyn.branches));
    }
    if (sum_folded != dyn.foldedBranches) {
        mismatch(r.mismatches, 0,
                 "event folded count " + std::to_string(sum_folded) +
                     " != stats.foldedBranches " +
                     std::to_string(dyn.foldedBranches));
    }
    if (sum_cond != dyn.condBranches) {
        mismatch(r.mismatches, 0,
                 "event conditional count " + std::to_string(sum_cond) +
                     " != stats.condBranches " +
                     std::to_string(dyn.condBranches));
    }
    if (sum_resolved != dyn.resolvedAtIssue) {
        mismatch(r.mismatches, 0,
                 "event resolved-at-issue count " +
                     std::to_string(sum_resolved) +
                     " != stats.resolvedAtIssue " +
                     std::to_string(dyn.resolvedAtIssue));
    }
    if (dyn.resolvedAtIssue + dyn.speculated != dyn.condBranches) {
        mismatch(r.mismatches, 0,
                 "resolvedAtIssue + speculated != condBranches");
    }

    // Invariant 7, aggregates: the recorder's delay total must equal
    // the simulator's counter exactly, and both must sit inside the
    // whole-program envelope the static bounds imply.
    if (sum_delay != dyn.branchDelayCycles) {
        mismatch(r.costViolations, 0,
                 "event delay total " + std::to_string(sum_delay) +
                     " != stats.branchDelayCycles " +
                     std::to_string(dyn.branchDelayCycles));
    }
    if (dyn.branchDelayCycles < envelope_lo ||
        dyn.branchDelayCycles > envelope_hi) {
        mismatch(r.costViolations, 0,
                 "branchDelayCycles " +
                     std::to_string(dyn.branchDelayCycles) +
                     " escapes the static envelope [" +
                     std::to_string(envelope_lo) + ", " +
                     std::to_string(envelope_hi) + "]");
    }
    return r;
}

OracleReport
runStaticOracle(const Program& prog, const SimConfig& cfg)
{
    AnalysisOptions opt;
    opt.policy = cfg.foldPolicy;
    opt.predict = PredictConvention::kNone;
    opt.stackCacheWords = cfg.stackCacheWords;
    opt.foldInfo = false;
    opt.costPredict = predictSourceFor(cfg);
    const AnalysisResult st = analyzeProgram(prog, opt);

    SiteRecorder rec;
    CrispCpu cpu(prog, cfg);
    const SimStats& dyn = cpu.run(&rec);
    if (dyn.faulted || dyn.timedOut) {
        OracleReport r;
        r.applicable = false;
        return r;
    }
    return crossCheck(st, dyn, rec);
}

} // namespace crisp::analysis
