/**
 * @file
 * Call-graph construction: linear-scan call discovery plus an
 * intra-procedural ownership walk over the issue-point CFG.
 */

#include "callgraph.hh"

#include <algorithm>
#include <deque>
#include <optional>

namespace crisp::analysis
{

namespace
{

/** Static target of a direct call instruction, if it has one. */
std::optional<Addr>
directCallTarget(const Instruction& inst, Addr pc)
{
    if (inst.op != Opcode::kCall)
        return std::nullopt;
    switch (inst.bmode) {
      case BranchMode::kPcRel:
        return pc + static_cast<Addr>(inst.disp);
      case BranchMode::kAbs:
        return inst.spec;
      default:
        return std::nullopt; // indirect call: no static callee
    }
}

} // namespace

CallGraph::CallGraph(const Cfg& cfg)
{
    const Program& prog = cfg.program();

    // Reachable call sites come from the CFG (fold-exact: the call may
    // ride a carrier, in which case pc is the carrier's address).
    std::set<Addr> covered;
    for (const auto& [pc, n] : cfg.nodes()) {
        if (n.di.ctl != Ctl::kCall)
            continue;
        CallSite s;
        s.pc = pc;
        s.callee = n.di.takenPc;
        s.retPc = n.di.callRetPc;
        s.reachable = true;
        sites_.push_back(s);
        covered.insert(n.di.branchPc);
    }

    // Unreachable text still names callees (dead helper functions):
    // scan linearly, resynchronizing one parcel after decode errors.
    // The scan may misparse bytes that are really data-in-text; that
    // only ever *adds* function candidates, which is the safe
    // direction for an unreachable-function report.
    Addr pc = prog.textBase;
    const Addr end = prog.textEnd();
    while (pc < end) {
        Instruction inst;
        try {
            inst = prog.fetch(pc);
        } catch (const CrispError&) {
            pc += kParcelBytes;
            continue;
        }
        if (!covered.count(pc)) {
            if (const auto callee = directCallTarget(inst, pc)) {
                CallSite s;
                s.pc = pc;
                s.callee = *callee;
                s.retPc = pc + inst.lengthBytes();
                s.reachable = false;
                sites_.push_back(s);
            }
        }
        pc += inst.lengthBytes();
    }

    std::sort(sites_.begin(), sites_.end(),
              [](const CallSite& a, const CallSite& b) {
                  return a.pc < b.pc;
              });

    // Function set: the entry point plus every static callee.
    funcs_[prog.entry].entry = prog.entry;
    for (const CallSite& s : sites_)
        funcs_[s.callee].entry = s.callee;
    for (auto& [entry, f] : funcs_) {
        f.reachable = cfg.has(entry);
        for (const auto& [name, sym] : prog.symbols) {
            if (sym.kind == Symbol::Kind::kLabel &&
                sym.value == entry) {
                f.name = name;
                break;
            }
        }
    }
    for (const CallSite& s : sites_) {
        CgFunction& f = funcs_.at(s.callee);
        f.callers.push_back(s.pc);
        if (s.reachable) {
            f.returnSites.insert(s.retPc);
            allReturnSites_.insert(s.retPc);
        }
    }

    // Ownership partition: intra-procedural BFS per reachable entry,
    // program entry first so shared prologue code binds to it.
    std::vector<Addr> entries;
    if (cfg.has(prog.entry))
        entries.push_back(prog.entry);
    for (const auto& [entry, f] : funcs_) {
        if (f.reachable && entry != prog.entry)
            entries.push_back(entry);
    }
    for (const Addr fe : entries) {
        std::deque<Addr> work{fe};
        while (!work.empty()) {
            const Addr at = work.front();
            work.pop_front();
            if (!owner_.emplace(at, fe).second)
                continue;
            const CfgNode& n = cfg.node(at);
            if (n.di.ctl == Ctl::kCall) {
                // Do not descend into the callee: a call's
                // intra-procedural successor is its return site.
                if (cfg.has(n.di.callRetPc))
                    work.push_back(n.di.callRetPc);
                continue;
            }
            for (const Addr s : n.succs) {
                // Another function's entry reached by plain control
                // flow (tail jump): leave it to its own walk.
                if (s != fe && funcs_.count(s))
                    continue;
                work.push_back(s);
            }
        }
    }
}

std::set<Addr>
CallGraph::returnSitesOf(Addr pc) const
{
    const auto it = owner_.find(pc);
    if (it != owner_.end()) {
        const auto f = funcs_.find(it->second);
        if (f != funcs_.end() && !f->second.returnSites.empty())
            return f->second.returnSites;
    }
    return allReturnSites_;
}

std::vector<const CgFunction*>
CallGraph::unreachableFunctions() const
{
    std::vector<const CgFunction*> r;
    for (const auto& [entry, f] : funcs_) {
        if (!f.reachable)
            r.push_back(&f);
    }
    return r;
}

} // namespace crisp::analysis
