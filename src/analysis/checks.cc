/**
 * @file
 * Diagnostic generation and report serialization.
 */

#include "checks.hh"

#include <algorithm>
#include <sstream>

namespace crisp::analysis
{

std::string_view
severityName(Severity s)
{
    switch (s) {
      case Severity::kInfo:
        return "info";
      case Severity::kWarning:
        return "warning";
      case Severity::kError:
        return "error";
    }
    return "?";
}

std::string
Diagnostic::toString() const
{
    std::ostringstream os;
    os << severityName(severity) << " [" << rule << "] 0x" << std::hex
       << pc << std::dec << ": " << message;
    if (!hint.empty())
        os << " (hint: " << hint << ")";
    return os.str();
}

bool
AnalysisResult::hasErrors() const
{
    return count(Severity::kError) > 0;
}

bool
AnalysisResult::hasWarnings() const
{
    return count(Severity::kWarning) > 0;
}

int
AnalysisResult::count(Severity s) const
{
    int n = 0;
    for (const Diagnostic& d : diags)
        n += d.severity == s ? 1 : 0;
    return n;
}

namespace
{

void
emit(std::vector<Diagnostic>& out, Severity sev, Addr pc,
     std::string rule, std::string message, std::string hint = {})
{
    Diagnostic d;
    d.severity = sev;
    d.pc = pc;
    d.rule = std::move(rule);
    d.message = std::move(message);
    d.hint = std::move(hint);
    out.push_back(std::move(d));
}

std::string
hexPc(Addr pc)
{
    std::ostringstream os;
    os << "0x" << std::hex << pc;
    return os.str();
}

void
checkCfg(const Cfg& cfg, std::vector<Diagnostic>& diags)
{
    for (const auto& [pc, what] : cfg.decodeErrors()) {
        emit(diags, Severity::kError, pc, "cfg.decode-error", what);
    }
    for (const auto& [pc, target] : cfg.badTargets()) {
        emit(diags, Severity::kError, pc, "cfg.bad-target",
             "branch target " + hexPc(target) +
                 " is outside the text segment or unaligned");
    }
    if (cfg.hasIndirect() && cfg.indirectTargets().empty()) {
        emit(diags, Severity::kError, cfg.program().entry,
             "cfg.indirect-no-table",
             "program contains an indirect jump but no data word names "
             "a text address",
             "emit a .table of case labels for the dispatch");
    }
    for (const auto& [lo, hi] : cfg.unreachableRanges()) {
        std::ostringstream msg;
        msg << (hi - lo) / kParcelBytes << " unreachable parcel(s) at ["
            << hexPc(lo) << ", " << hexPc(hi) << ")";
        emit(diags, Severity::kWarning, lo, "cfg.unreachable", msg.str(),
             "dead code wastes DIC reach; let the peephole pass drop it");
    }
    // Structural ISA invariant: the condition flag is written only by
    // compares. The decoder derives writesCc from isCompare, so this
    // can only fire if the decode layer itself regresses — which is
    // exactly why the oracle keeps it.
    for (const auto& [pc, n] : cfg.nodes()) {
        if (n.di.totalParcels > 0 && !n.di.loneBranch &&
            n.di.writesCc != isCompare(n.di.body.op)) {
            emit(diags, Severity::kError, pc, "cc.writer-not-compare",
                 "modifies-CC bit disagrees with the opcode class");
        }
    }
}

void
checkSpread(const Cfg& cfg, const std::map<Addr, SpreadInfo>& spread,
            std::vector<Diagnostic>& diags)
{
    for (const auto& [pc, s] : spread) {
        if (!s.guaranteedResolved) {
            std::ostringstream msg;
            msg << "conditional branch at " << hexPc(s.branchPc)
                << " has only " << s.issueSlots
                << " issue slot(s) from its compare (needs "
                << kResolveSlots << "); it may speculate";
            emit(diags, Severity::kWarning, s.branchPc, "spread.short",
                 msg.str(),
                 "move independent instructions between the compare and "
                 "the branch (Branch Spreading)");
        }
        if (s.compareMayBeMissing && !cfg.node(pc).di.writesCc) {
            emit(diags, Severity::kWarning, s.branchPc,
                 "cc.maybe-missing-compare",
                 "a path reaches this conditional branch with no compare "
                 "executed; it tests the power-on flag",
                 "insert a compare that dominates the branch");
        }
    }
}

void
checkPredict(const std::map<Addr, BranchSite>& sites,
             PredictConvention mode, std::vector<Diagnostic>& diags)
{
    if (mode == PredictConvention::kNone)
        return;
    for (const auto& [pc, s] : sites) {
        if (!s.conditional || s.indirect)
            continue;
        const bool backward = s.takenPc < s.branchPc;
        if (mode == PredictConvention::kAllNotTaken) {
            if (s.predictTaken) {
                emit(diags, Severity::kWarning, pc,
                     "predict.backward-not-taken",
                     "prediction bit set under the all-not-taken "
                     "convention");
            }
            continue;
        }
        if (backward && !s.predictTaken) {
            emit(diags, Severity::kWarning, pc,
                 "predict.backward-not-taken",
                 "backward (loop) branch predicted not-taken",
                 "loop back-edges are overwhelmingly taken (Table 1); "
                 "set the bit");
        } else if (!backward && s.predictTaken) {
            emit(diags, Severity::kWarning, pc, "predict.forward-taken",
                 "forward branch predicted taken against the heuristic",
                 "forward branches default to not-taken unless profiled");
        }
    }
}

void
checkFold(const std::map<Addr, BranchSite>& sites,
          std::vector<Diagnostic>& diags)
{
    for (const auto& [pc, s] : sites) {
        if (s.cls == FoldClass::kLone &&
            s.reason != NoFoldReason::kNone) {
            emit(diags, Severity::kInfo, pc, "fold.lone-branch",
                 std::string(opcodeName(s.op)) +
                     " occupies its own EU slot: " +
                     std::string(noFoldReasonName(s.reason)));
        } else if (s.cls == FoldClass::kMixed) {
            emit(diags, Severity::kInfo, pc, "fold.mixed",
                 "branch folds on fall-in but is also a direct entry "
                 "point");
        }
    }
}

void
checkStack(const std::vector<StackIssue>& issues, int window,
           std::vector<Diagnostic>& diags)
{
    for (const StackIssue& i : issues) {
        std::ostringstream msg;
        if (i.negative) {
            msg << "stack operand sp[" << i.slot
                << "] addresses below the frame";
            emit(diags, Severity::kError, i.pc, "stack.negative-slot",
                 msg.str());
        } else {
            msg << "stack operand sp[" << i.slot << "] is outside the "
                << window << "-word stack-cache window";
            emit(diags, Severity::kWarning, i.pc, "stack.outside-window",
                 msg.str(),
                 "every access misses the stack cache; shrink the frame "
                 "or raise SimConfig::stackCacheWords");
        }
    }
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

AnalysisResult
analyzeProgram(const Program& prog, const AnalysisOptions& opt)
{
    AnalysisResult r;
    r.cfg = std::make_shared<Cfg>(prog, opt.policy);
    r.spread = analyzeSpread(*r.cfg);
    r.sites = collectBranchSites(*r.cfg, r.spread);

    checkCfg(*r.cfg, r.diags);
    checkSpread(*r.cfg, r.spread, r.diags);
    checkPredict(r.sites, opt.predict, r.diags);
    if (opt.foldInfo)
        checkFold(r.sites, r.diags);
    checkStack(analyzeStackWindow(*r.cfg, opt.stackCacheWords),
               opt.stackCacheWords, r.diags);

    std::stable_sort(r.diags.begin(), r.diags.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                         return a.pc < b.pc;
                     });

    r.staticEntries = static_cast<int>(r.cfg->nodes().size());
    for (const auto& [pc, s] : r.sites) {
        ++r.staticBranchSites;
        if (s.conditional)
            ++r.staticCondSites;
        if (s.cls != FoldClass::kLone)
            ++r.staticFoldedSites;
        if (s.cls != FoldClass::kFolded)
            ++r.staticLoneSites;
        if (s.guaranteedResolved)
            ++r.staticGuaranteedCondSites;
    }
    return r;
}

std::string
AnalysisResult::toString() const
{
    std::ostringstream os;
    os << "analysis: " << staticEntries << " issue points, "
       << staticBranchSites << " branch sites (" << staticCondSites
       << " conditional, " << staticFoldedSites << " folding, "
       << staticGuaranteedCondSites << " spread-guaranteed), "
       << count(Severity::kError) << " errors, "
       << count(Severity::kWarning) << " warnings, "
       << count(Severity::kInfo) << " notes\n";
    for (const Diagnostic& d : diags)
        os << "  " << d.toString() << "\n";
    return os.str();
}

std::string
AnalysisResult::toJson() const
{
    std::ostringstream os;
    os << "{";
    os << "\"staticEntries\":" << staticEntries;
    os << ",\"staticBranchSites\":" << staticBranchSites;
    os << ",\"staticCondSites\":" << staticCondSites;
    os << ",\"staticFoldedSites\":" << staticFoldedSites;
    os << ",\"staticLoneSites\":" << staticLoneSites;
    os << ",\"staticGuaranteedCondSites\":" << staticGuaranteedCondSites;
    os << ",\"errors\":" << count(Severity::kError);
    os << ",\"warnings\":" << count(Severity::kWarning);
    os << ",\"notes\":" << count(Severity::kInfo);

    os << ",\"sites\":[";
    bool first = true;
    for (const auto& [pc, s] : sites) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"pc\":" << pc << ",\"op\":\"" << opcodeName(s.op)
           << "\",\"conditional\":" << (s.conditional ? "true" : "false")
           << ",\"predictTaken\":" << (s.predictTaken ? "true" : "false")
           << ",\"shortForm\":" << (s.shortForm ? "true" : "false")
           << ",\"indirect\":" << (s.indirect ? "true" : "false")
           << ",\"fold\":\""
           << (s.cls == FoldClass::kFolded
                   ? "folded"
                   : s.cls == FoldClass::kLone ? "lone" : "mixed")
           << "\",\"noFoldReason\":\""
           << jsonEscape(std::string(noFoldReasonName(s.reason)))
           << "\",\"guaranteedResolved\":"
           << (s.guaranteedResolved ? "true" : "false") << "}";
    }
    os << "]";

    os << ",\"spread\":[";
    first = true;
    for (const auto& [pc, s] : spread) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"entryPc\":" << pc << ",\"branchPc\":" << s.branchPc
           << ",\"issueSlots\":" << s.issueSlots
           << ",\"guaranteedResolved\":"
           << (s.guaranteedResolved ? "true" : "false") << "}";
    }
    os << "]";

    os << ",\"diagnostics\":[";
    first = true;
    for (const Diagnostic& d : diags) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"severity\":\"" << severityName(d.severity)
           << "\",\"pc\":" << d.pc << ",\"rule\":\""
           << jsonEscape(d.rule) << "\",\"message\":\""
           << jsonEscape(d.message) << "\",\"hint\":\""
           << jsonEscape(d.hint) << "\"}";
    }
    os << "]}";
    return os.str();
}

} // namespace crisp::analysis
