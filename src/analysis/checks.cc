/**
 * @file
 * Diagnostic generation and report serialization.
 */

#include "checks.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace crisp::analysis
{

std::string_view
severityName(Severity s)
{
    switch (s) {
      case Severity::kInfo:
        return "info";
      case Severity::kWarning:
        return "warning";
      case Severity::kError:
        return "error";
    }
    return "?";
}

std::string
Diagnostic::toString() const
{
    std::ostringstream os;
    os << severityName(severity) << " [" << rule << "] 0x" << std::hex
       << pc << std::dec << ": " << message;
    if (!hint.empty())
        os << " (hint: " << hint << ")";
    return os.str();
}

bool
AnalysisResult::hasErrors() const
{
    return count(Severity::kError) > 0;
}

bool
AnalysisResult::hasWarnings() const
{
    return count(Severity::kWarning) > 0;
}

int
AnalysisResult::count(Severity s) const
{
    int n = 0;
    for (const Diagnostic& d : diags)
        n += d.severity == s ? 1 : 0;
    return n;
}

namespace
{

void
emit(std::vector<Diagnostic>& out, Severity sev, Addr pc,
     std::string rule, std::string message, std::string hint = {})
{
    Diagnostic d;
    d.severity = sev;
    d.pc = pc;
    d.rule = std::move(rule);
    d.message = std::move(message);
    d.hint = std::move(hint);
    out.push_back(std::move(d));
}

std::string
hexPc(Addr pc)
{
    std::ostringstream os;
    os << "0x" << std::hex << pc;
    return os.str();
}

void
checkCfg(const Cfg& cfg, std::vector<Diagnostic>& diags)
{
    for (const auto& [pc, what] : cfg.decodeErrors()) {
        emit(diags, Severity::kError, pc, "cfg.decode-error", what);
    }
    for (const auto& [pc, target] : cfg.badTargets()) {
        emit(diags, Severity::kError, pc, "cfg.bad-target",
             "branch target " + hexPc(target) +
                 " is outside the text segment or unaligned");
    }
    if (cfg.hasIndirect() && cfg.indirectTargets().empty()) {
        emit(diags, Severity::kError, cfg.program().entry,
             "cfg.indirect-no-table",
             "program contains an indirect jump but no data word names "
             "a text address",
             "emit a .table of case labels for the dispatch");
    }
    for (const auto& [lo, hi] : cfg.unreachableRanges()) {
        std::ostringstream msg;
        msg << (hi - lo) / kParcelBytes << " unreachable parcel(s) at ["
            << hexPc(lo) << ", " << hexPc(hi) << ")";
        emit(diags, Severity::kWarning, lo, "cfg.unreachable", msg.str(),
             "dead code wastes DIC reach; let the peephole pass drop it");
    }
    // Structural ISA invariant: the condition flag is written only by
    // compares. The decoder derives writesCc from isCompare, so this
    // can only fire if the decode layer itself regresses — which is
    // exactly why the oracle keeps it.
    for (const auto& [pc, n] : cfg.nodes()) {
        if (n.di.totalParcels > 0 && !n.di.loneBranch &&
            n.di.writesCc != isCompare(n.di.body.op)) {
            emit(diags, Severity::kError, pc, "cc.writer-not-compare",
                 "modifies-CC bit disagrees with the opcode class");
        }
    }
}

void
checkSpread(const Cfg& cfg, const std::map<Addr, SpreadInfo>& spread,
            std::vector<Diagnostic>& diags)
{
    for (const auto& [pc, s] : spread) {
        if (!s.guaranteedResolved) {
            std::ostringstream msg;
            msg << "conditional branch at " << hexPc(s.branchPc)
                << " has only " << s.issueSlots
                << " issue slot(s) from its compare (needs "
                << kResolveSlots << "); it may speculate";
            emit(diags, Severity::kWarning, s.branchPc, "spread.short",
                 msg.str(),
                 "move independent instructions between the compare and "
                 "the branch (Branch Spreading)");
        }
        if (s.compareMayBeMissing && !cfg.node(pc).di.writesCc) {
            emit(diags, Severity::kWarning, s.branchPc,
                 "cc.maybe-missing-compare",
                 "a path reaches this conditional branch with no compare "
                 "executed; it tests the power-on flag",
                 "insert a compare that dominates the branch");
        }
    }
}

void
checkPredict(const std::map<Addr, BranchSite>& sites,
             PredictConvention mode, std::vector<Diagnostic>& diags)
{
    if (mode == PredictConvention::kNone)
        return;
    for (const auto& [pc, s] : sites) {
        if (!s.conditional || s.indirect)
            continue;
        const bool backward = s.takenPc < s.branchPc;
        if (mode == PredictConvention::kAllNotTaken) {
            if (s.predictTaken) {
                emit(diags, Severity::kWarning, pc,
                     "predict.backward-not-taken",
                     "prediction bit set under the all-not-taken "
                     "convention");
            }
            continue;
        }
        if (backward && !s.predictTaken) {
            emit(diags, Severity::kWarning, pc,
                 "predict.backward-not-taken",
                 "backward (loop) branch predicted not-taken",
                 "loop back-edges are overwhelmingly taken (Table 1); "
                 "set the bit");
        } else if (!backward && s.predictTaken) {
            emit(diags, Severity::kWarning, pc, "predict.forward-taken",
                 "forward branch predicted taken against the heuristic",
                 "forward branches default to not-taken unless profiled");
        }
    }
}

void
checkFold(const std::map<Addr, BranchSite>& sites,
          std::vector<Diagnostic>& diags)
{
    for (const auto& [pc, s] : sites) {
        if (s.cls == FoldClass::kLone &&
            s.reason != NoFoldReason::kNone) {
            emit(diags, Severity::kInfo, pc, "fold.lone-branch",
                 std::string(opcodeName(s.op)) +
                     " occupies its own EU slot: " +
                     std::string(noFoldReasonName(s.reason)));
        } else if (s.cls == FoldClass::kMixed) {
            emit(diags, Severity::kInfo, pc, "fold.mixed",
                 "branch folds on fall-in but is also a direct entry "
                 "point");
        }
    }
}

void
checkStack(const std::vector<StackIssue>& issues, int window,
           std::vector<Diagnostic>& diags)
{
    for (const StackIssue& i : issues) {
        std::ostringstream msg;
        if (i.negative) {
            msg << "stack operand sp[" << i.slot
                << "] addresses below the frame";
            emit(diags, Severity::kError, i.pc, "stack.negative-slot",
                 msg.str());
        } else {
            msg << "stack operand sp[" << i.slot << "] is outside the "
                << window << "-word stack-cache window";
            emit(diags, Severity::kWarning, i.pc, "stack.outside-window",
                 msg.str(),
                 "every access misses the stack cache; shrink the frame "
                 "or raise SimConfig::stackCacheWords");
        }
    }
}

void
checkCost(const Cfg& cfg, const std::map<Addr, BranchSite>& sites,
          const CostSummary& cost, const AbsIntResult& ai,
          std::vector<Diagnostic>& diags)
{
    const std::set<Addr> dead = deadAfterConstantPruning(cfg, ai);
    for (const auto& [pc, c] : cost.sites) {
        if (!c.constantDirection)
            continue;
        std::ostringstream msg;
        msg << "condition provably constant: branch "
            << (c.alwaysTaken ? "always" : "never") << " taken"
            << " (delay bound [" << c.bound.lo << ", " << c.bound.hi
            << "] cycle(s))";
        emit(diags, Severity::kInfo, pc, "cost.constant-cc", msg.str(),
             c.predictionProvablyCorrect
                 ? ""
                 : "the prediction bit fights a constant condition; "
                   "flip it (or drop the branch)");

        // The pruned edge: does any issue point still reach it?
        const auto st = sites.find(pc);
        if (st == sites.end())
            continue;
        Addr dead_tgt = 0;
        bool have_tgt = false;
        const Addr ip = st->second.cls == FoldClass::kLone
                            ? st->second.branchPc
                            : st->second.carrierPc;
        if (cfg.has(ip)) {
            const DecodedInst& di = cfg.node(ip).di;
            dead_tgt = c.alwaysTaken ? di.seqPc : di.takenPc;
            have_tgt = true;
        }
        if (have_tgt && dead.count(dead_tgt) != 0) {
            std::ostringstream dm;
            dm << "the " << (c.alwaysTaken ? "fall-through" : "target")
               << " at " << hexPc(dead_tgt)
               << " is unreachable once the constant branch is pruned";
            emit(diags, Severity::kInfo, pc, "cost.dead-branch",
                 dm.str(), "delete the dead path; it wastes DIC reach");
        }
    }
}

void
checkDataflow(const Cfg& cfg, const SccpResult& sc,
              const LivenessResult& live, const ReachDefsResult& rd,
              const AbsIntResult& ai, std::vector<Diagnostic>& diags)
{
    for (const DeadStore& d : live.dead) {
        switch (d.kind) {
          case DeadKind::kMemStore:
            emit(diags, Severity::kInfo, d.pc, "dataflow.dead-store",
                 "store to " + hexPc(d.addr) +
                     " is dead: no path observes the value",
                 "delete the store; crispcc -O does");
            break;
          case DeadKind::kAccumDef:
            emit(diags, Severity::kInfo, d.pc, "dataflow.dead-store",
                 "accumulator definition is dead: overwritten before "
                 "any read");
            break;
          case DeadKind::kCompare:
            emit(diags, Severity::kInfo, d.pc, "dataflow.dead-store",
                 "compare is dead: no branch reads the flag it sets",
                 "drop it, or spread a later compare into its slot");
            break;
        }
    }

    for (const RedundantCopy& c :
         findRedundantCopies(cfg, rd, sc.state)) {
        emit(diags, Severity::kInfo, c.pc, "dataflow.redundant-copy",
             "copy is a no-op: the destination already holds the "
             "source value (established at " +
                 hexPc(c.defPc) + ")",
             "delete the copy");
    }

    // Issue points the edge-pruned fixpoint proves never execute, as
    // contiguous runs. Plain absint cannot prune these (they decode
    // and have structural predecessors); only a constant branch
    // direction removes them.
    Addr run_lo = 0;
    Addr run_end = 0;
    int run_n = 0;
    const auto flush = [&]() {
        if (run_n == 0)
            return;
        std::ostringstream msg;
        msg << run_n << " issue point(s) at [" << hexPc(run_lo) << ", "
            << hexPc(run_end) << ") cannot execute once constant "
            << "branches are pruned";
        emit(diags, Severity::kInfo, run_lo,
             "dataflow.unreachable-after-constant-branch", msg.str(),
             "dead arms waste DIC reach; crispcc -O deletes them");
        run_n = 0;
    };
    for (const auto& [pc, n] : cfg.nodes()) {
        const auto ait = ai.in.find(pc);
        const bool structurally_live =
            ait == ai.in.end() || ait->second.reachable;
        const bool dead = sc.executable.count(pc) == 0 &&
                          structurally_live && n.di.totalParcels > 0;
        if (!dead) {
            flush();
            continue;
        }
        const Addr end =
            pc + static_cast<Addr>(n.di.totalParcels) * kParcelBytes;
        if (run_n > 0 && pc == run_end) {
            run_end = end;
            ++run_n;
        } else {
            flush();
            run_lo = pc;
            run_end = end;
            run_n = 1;
        }
    }
    flush();
}

void
checkTargets(const CallGraph& cg, const TargetsResult& tr,
             std::vector<Diagnostic>& diags)
{
    for (const auto& [pc, s] : tr.sites) {
        if (s.kind != TargetSiteKind::kIndirectJump)
            continue; // returns: call-graph matched, reported in JSON
        if (!s.resolved) {
            std::ostringstream msg;
            msg << "indirect branch target set not proven; assuming "
                   "all "
                << s.targets.size() << " candidate text word(s)";
            emit(diags, Severity::kInfo, pc,
                 "indirect.unresolved-target", msg.str(),
                 "keep the jump table in unwritten data and the range "
                 "guard adjacent to its dispatch so the value-set "
                 "lattice can bound the table index");
        } else if (s.invalidTargets > 0) {
            std::ostringstream msg;
            msg << s.invalidTargets << " of "
                << (s.targets.size() + s.invalidTargets)
                << " proven target word(s) are not valid text "
                   "addresses; selecting one faults at the target "
                   "fetch";
            emit(diags, Severity::kWarning, pc,
                 "indirect.out-of-table", msg.str(),
                 "the table index range guard admits slots past the "
                 "table (or the table holds non-code words); tighten "
                 "the guard");
        }
    }
    for (const CgFunction* f : cg.unreachableFunctions()) {
        std::ostringstream msg;
        msg << "function "
            << (f->name.empty() ? hexPc(f->entry) : f->name)
            << " is called from " << f->callers.size()
            << " site(s) but never reachable from the entry";
        emit(diags, Severity::kInfo, f->entry,
             "callgraph.unreachable-function", msg.str(),
             "every call to it sits in dead code; drop both");
    }
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

AnalysisResult
analyzeProgram(const Program& prog, const AnalysisOptions& opt)
{
    AnalysisResult r;
    r.cfg = std::make_shared<Cfg>(prog, opt.policy);
    r.spread = analyzeSpread(*r.cfg);
    r.sites = collectBranchSites(*r.cfg, r.spread);
    r.absint = interpret(*r.cfg);
    if (opt.dataflow) {
        r.sccp = sccp(*r.cfg);
        r.live = computeLiveness(*r.cfg, r.sccp.state);
        r.reachdefs = computeReachDefs(*r.cfg, r.sccp.state);
        r.callgraph = std::make_shared<CallGraph>(*r.cfg);
        r.targets = analyzeTargets(*r.cfg, *r.callgraph, r.sccp);
    }
    // SCCP's edge-pruned fixpoint is at least as precise as plain
    // absint, so the cost engine sees strictly more constancy proofs.
    const AbsIntResult& values = opt.dataflow ? r.sccp.state : r.absint;
    r.cost =
        computeCost(*r.cfg, r.spread, r.sites, values, opt.costPredict,
                    opt.dataflow ? &r.targets : nullptr);

    checkCfg(*r.cfg, r.diags);
    checkSpread(*r.cfg, r.spread, r.diags);
    checkPredict(r.sites, opt.predict, r.diags);
    if (opt.foldInfo)
        checkFold(r.sites, r.diags);
    checkStack(analyzeStackWindow(*r.cfg, opt.stackCacheWords),
               opt.stackCacheWords, r.diags);
    checkCost(*r.cfg, r.sites, r.cost, values, r.diags);
    if (opt.dataflow) {
        checkDataflow(*r.cfg, r.sccp, r.live, r.reachdefs, r.absint,
                      r.diags);
        checkTargets(*r.callgraph, r.targets, r.diags);
    }

    // Deterministic report order: (site pc, rule id). Tools diff the
    // JSON/SARIF output against goldens, so ties must not depend on
    // emission order.
    std::stable_sort(r.diags.begin(), r.diags.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                         return a.pc != b.pc ? a.pc < b.pc
                                             : a.rule < b.rule;
                     });

    r.staticEntries = static_cast<int>(r.cfg->nodes().size());
    for (const auto& [pc, s] : r.sites) {
        ++r.staticBranchSites;
        if (s.conditional)
            ++r.staticCondSites;
        if (s.cls != FoldClass::kLone)
            ++r.staticFoldedSites;
        if (s.cls != FoldClass::kFolded)
            ++r.staticLoneSites;
        if (s.guaranteedResolved)
            ++r.staticGuaranteedCondSites;
    }
    return r;
}

std::string
AnalysisResult::toString() const
{
    std::ostringstream os;
    os << "analysis: " << staticEntries << " issue points, "
       << staticBranchSites << " branch sites (" << staticCondSites
       << " conditional, " << staticFoldedSites << " folding, "
       << staticGuaranteedCondSites << " spread-guaranteed), "
       << count(Severity::kError) << " errors, "
       << count(Severity::kWarning) << " warnings, "
       << count(Severity::kInfo) << " notes\n";
    os << "cost: max " << cost.maxDelayPerSite
       << " delay cycle(s) per site, " << cost.zeroDelaySites
       << " provably free, " << cost.constantSites
       << " constant (predict " << predictSourceName(cost.predict)
       << ")\n";
    if (!targets.sites.empty()) {
        os << "targets: " << targets.sites.size()
           << " indirect/return site(s), " << targets.resolvedCount()
           << " resolved, " << targets.singletonCount()
           << " singleton\n";
    }
    for (const Diagnostic& d : diags)
        os << "  " << d.toString() << "\n";
    return os.str();
}

std::string
AnalysisResult::toJson() const
{
    std::ostringstream os;
    os << "{";
    // Versioned: bump when fields change shape or meaning, so report
    // consumers can reject output they were not written against.
    os << "\"schema\":\"crisp-analysis/2\"";
    os << ",\"staticEntries\":" << staticEntries;
    os << ",\"staticBranchSites\":" << staticBranchSites;
    os << ",\"staticCondSites\":" << staticCondSites;
    os << ",\"staticFoldedSites\":" << staticFoldedSites;
    os << ",\"staticLoneSites\":" << staticLoneSites;
    os << ",\"staticGuaranteedCondSites\":" << staticGuaranteedCondSites;
    os << ",\"errors\":" << count(Severity::kError);
    os << ",\"warnings\":" << count(Severity::kWarning);
    os << ",\"notes\":" << count(Severity::kInfo);

    int df_dead = 0, df_copies = 0, df_unreach = 0;
    for (const Diagnostic& d : diags) {
        if (d.rule == "dataflow.dead-store")
            ++df_dead;
        else if (d.rule == "dataflow.redundant-copy")
            ++df_copies;
        else if (d.rule == "dataflow.unreachable-after-constant-branch")
            ++df_unreach;
    }
    os << ",\"dataflow\":{";
    os << "\"deadStores\":" << df_dead;
    os << ",\"redundantCopies\":" << df_copies;
    os << ",\"unreachableRuns\":" << df_unreach;
    os << ",\"sccpExecutable\":" << sccp.executable.size();
    os << ",\"sccpProvenDirections\":" << sccp.provenDirection.size();
    os << ",\"sccpConverged\":"
       << (sccp.state.converged ? "true" : "false");
    os << ",\"livenessConverged\":" << (live.converged ? "true" : "false");
    os << ",\"reachdefsConverged\":"
       << (reachdefs.converged ? "true" : "false");
    os << "}";

    os << ",\"targets\":{";
    os << "\"converged\":" << (targets.converged ? "true" : "false");
    os << ",\"allMutable\":" << (targets.allMutable ? "true" : "false");
    os << ",\"resolved\":" << targets.resolvedCount();
    os << ",\"singleton\":" << targets.singletonCount();
    os << ",\"sites\":[";
    bool tfirst = true;
    for (const auto& [pc, s] : targets.sites) {
        if (!tfirst)
            os << ",";
        tfirst = false;
        os << "{\"pc\":" << pc << ",\"branchPc\":" << s.branchPc
           << ",\"kind\":\""
           << (s.kind == TargetSiteKind::kIndirectJump ? "indirect"
                                                       : "return")
           << "\",\"resolved\":" << (s.resolved ? "true" : "false")
           << ",\"enforceable\":" << (s.enforceable ? "true" : "false")
           << ",\"fromReturnMatch\":"
           << (s.fromReturnMatch ? "true" : "false")
           << ",\"invalidTargets\":" << s.invalidTargets
           << ",\"targets\":[";
        bool vfirst = true;
        for (const Addr t : s.targets) {
            if (!vfirst)
                os << ",";
            vfirst = false;
            os << t;
        }
        os << "]}";
    }
    os << "]}";

    os << ",\"callgraph\":{";
    if (callgraph) {
        os << "\"functions\":" << callgraph->functions().size();
        std::size_t cg_reach = 0;
        for (const auto& [entry, f] : callgraph->functions())
            cg_reach += f.reachable ? 1u : 0u;
        os << ",\"reachableFunctions\":" << cg_reach;
        os << ",\"callSites\":" << callgraph->sites().size();
        os << ",\"returnSites\":" << callgraph->allReturnSites().size();
    } else {
        os << "\"functions\":0,\"reachableFunctions\":0"
           << ",\"callSites\":0,\"returnSites\":0";
    }
    os << "}";

    os << ",\"sites\":[";
    bool first = true;
    for (const auto& [pc, s] : sites) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"pc\":" << pc << ",\"op\":\"" << opcodeName(s.op)
           << "\",\"conditional\":" << (s.conditional ? "true" : "false")
           << ",\"predictTaken\":" << (s.predictTaken ? "true" : "false")
           << ",\"shortForm\":" << (s.shortForm ? "true" : "false")
           << ",\"indirect\":" << (s.indirect ? "true" : "false")
           << ",\"fold\":\""
           << (s.cls == FoldClass::kFolded
                   ? "folded"
                   : s.cls == FoldClass::kLone ? "lone" : "mixed")
           << "\",\"noFoldReason\":\""
           << jsonEscape(std::string(noFoldReasonName(s.reason)))
           << "\",\"guaranteedResolved\":"
           << (s.guaranteedResolved ? "true" : "false") << "}";
    }
    os << "]";

    os << ",\"spread\":[";
    first = true;
    for (const auto& [pc, s] : spread) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"entryPc\":" << pc << ",\"branchPc\":" << s.branchPc
           << ",\"issueSlots\":" << s.issueSlots
           << ",\"guaranteedResolved\":"
           << (s.guaranteedResolved ? "true" : "false") << "}";
    }
    os << "]";

    os << ",\"cost\":{";
    os << "\"predict\":\"" << predictSourceName(cost.predict) << "\"";
    os << ",\"absintConverged\":"
       << (cost.absintConverged ? "true" : "false");
    os << ",\"constantSites\":" << cost.constantSites;
    os << ",\"zeroDelaySites\":" << cost.zeroDelaySites;
    os << ",\"maxDelayPerSite\":" << cost.maxDelayPerSite;
    os << ",\"sites\":[";
    first = true;
    for (const auto& [pc, c] : cost.sites) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"pc\":" << pc << ",\"lo\":" << c.bound.lo
           << ",\"hi\":" << c.bound.hi
           << ",\"minSpreadSlots\":" << c.minSpreadSlots
           << ",\"constant\":"
           << (c.constantDirection ? "true" : "false")
           << ",\"alwaysTaken\":" << (c.alwaysTaken ? "true" : "false")
           << ",\"predictionProvablyCorrect\":"
           << (c.predictionProvablyCorrect ? "true" : "false");
        if (c.indirect) {
            os << ",\"targetResolved\":"
               << (c.targetResolved ? "true" : "false")
               << ",\"targetCount\":" << c.targetCount
               << ",\"targetSingleton\":"
               << (c.targetSingleton ? "true" : "false");
        }
        os << "}";
    }
    os << "]}";

    os << ",\"diagnostics\":[";
    first = true;
    for (const Diagnostic& d : diags) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"severity\":\"" << severityName(d.severity)
           << "\",\"pc\":" << d.pc << ",\"rule\":\""
           << jsonEscape(d.rule) << "\",\"message\":\""
           << jsonEscape(d.message) << "\",\"hint\":\""
           << jsonEscape(d.hint) << "\"}";
    }
    os << "]}";
    return os.str();
}

std::string
AnalysisResult::costTableText() const
{
    std::ostringstream os;
    os << "cost: static per-site delay bounds (predict "
       << predictSourceName(cost.predict) << ", absint "
       << (cost.absintConverged ? "converged" : "bailed to top") << ")\n";
    os << "  branch pc   kind          spread  bound   notes\n";
    for (const auto& [pc, c] : cost.sites) {
        std::ostringstream kind;
        const auto it = sites.find(pc);
        if (c.indirect) {
            kind << "indirect";
        } else if (!c.conditional) {
            kind << "jump";
        } else {
            kind << "cond/"
                 << (it != sites.end() &&
                             it->second.cls == FoldClass::kFolded
                         ? "folded"
                         : it != sites.end() &&
                                   it->second.cls == FoldClass::kLone
                               ? "lone"
                               : "mixed");
        }
        std::ostringstream spread_s;
        if (c.conditional && !c.indirect)
            spread_s << c.minSpreadSlots;
        else
            spread_s << "-";

        std::ostringstream notes;
        if (c.bound.lo == 0 && c.bound.hi == 0)
            notes << "free";
        if (c.indirect) {
            notes << (notes.str().empty() ? "" : ", ");
            if (c.targetSingleton)
                notes << "1 proven target (devirtualizable)";
            else if (c.targetResolved)
                notes << c.targetCount << " proven targets";
            else
                notes << c.targetCount << " candidate targets";
        }
        if (c.constantDirection) {
            notes << (notes.str().empty() ? "" : ", ")
                  << (c.alwaysTaken ? "always-taken" : "never-taken");
            if (!c.predictionProvablyCorrect)
                notes << " (prediction fights it)";
        }

        char line[128];
        std::snprintf(line, sizeof line,
                      "  0x%08x  %-12s  %-6s  [%d,%d]   %s\n", pc,
                      kind.str().c_str(), spread_s.str().c_str(),
                      c.bound.lo, c.bound.hi, notes.str().c_str());
        os << line;
    }
    os << "  whole-program envelope: [" << cost.sites.size()
       << " site(s)] max " << cost.maxDelayPerSite
       << " delay cycle(s) per execution, " << cost.zeroDelaySites
       << " provably free, " << cost.constantSites << " constant\n";
    return os.str();
}

std::string
AnalysisResult::targetsTableText() const
{
    std::ostringstream os;
    os << "targets: indirect/return target sets ("
       << (targets.converged ? "converged" : "bailed to top")
       << (targets.allMutable ? ", image fully mutable" : "") << ")\n";
    os << "  site pc     kind      verdict     targets\n";
    for (const auto& [pc, s] : targets.sites) {
        const char* kind =
            s.kind == TargetSiteKind::kIndirectJump ? "indirect"
                                                    : "return";
        const char* verdict = s.singleton()
                                  ? "singleton"
                                  : s.resolved ? "resolved" : "top";
        std::ostringstream tl;
        std::size_t shown = 0;
        for (const Addr t : s.targets) {
            if (shown == 4) {
                tl << " ... (" << s.targets.size() << " total)";
                break;
            }
            tl << (shown ? " " : "") << hexPc(t);
            ++shown;
        }
        if (s.invalidTargets)
            tl << " (+" << s.invalidTargets << " out of table)";
        if (s.fromReturnMatch)
            tl << " [call-graph matched; not enforced]";
        char line[256];
        std::snprintf(line, sizeof line, "  0x%08x  %-8s  %-9s   %s\n",
                      pc, kind, verdict, tl.str().c_str());
        os << line;
    }
    os << "  " << targets.sites.size() << " site(s), "
       << targets.resolvedCount() << " resolved, "
       << targets.singletonCount() << " singleton\n";
    if (callgraph) {
        std::size_t reach = 0;
        for (const auto& [entry, f] : callgraph->functions())
            reach += f.reachable ? 1u : 0u;
        os << "  callgraph: " << callgraph->functions().size()
           << " function(s) (" << reach << " reachable), "
           << callgraph->sites().size() << " call site(s), "
           << callgraph->allReturnSites().size()
           << " return site(s)\n";
    }
    return os.str();
}

std::string
AnalysisResult::toSarif(const std::string& artifactUri) const
{
    // Rule metadata for every rule that actually fired, in first-seen
    // order; results reference them by array index.
    std::vector<std::string> rules;
    auto ruleIndex = [&](const std::string& rule) -> std::size_t {
        for (std::size_t i = 0; i < rules.size(); ++i) {
            if (rules[i] == rule)
                return i;
        }
        rules.push_back(rule);
        return rules.size() - 1;
    };
    for (const Diagnostic& d : diags)
        ruleIndex(d.rule);

    auto level = [](Severity s) -> const char* {
        switch (s) {
          case Severity::kError:
            return "error";
          case Severity::kWarning:
            return "warning";
          case Severity::kInfo:
            return "note";
        }
        return "none";
    };

    std::ostringstream os;
    os << "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/"
          "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\"";
    os << ",\"version\":\"2.1.0\"";
    os << ",\"runs\":[{";
    os << "\"tool\":{\"driver\":{\"name\":\"crisplint\"";
    os << ",\"informationUri\":\"docs/ANALYSIS.md\"";
    os << ",\"rules\":[";
    for (std::size_t i = 0; i < rules.size(); ++i) {
        if (i != 0)
            os << ",";
        os << "{\"id\":\"" << jsonEscape(rules[i]) << "\"}";
    }
    os << "]}}";
    os << ",\"artifacts\":[{\"location\":{\"uri\":\""
       << jsonEscape(artifactUri) << "\"}}]";
    os << ",\"results\":[";
    bool first = true;
    for (const Diagnostic& d : diags) {
        if (!first)
            os << ",";
        first = false;
        std::string text = d.message;
        if (!d.hint.empty())
            text += " (hint: " + d.hint + ")";
        os << "{\"ruleId\":\"" << jsonEscape(d.rule) << "\""
           << ",\"ruleIndex\":" << ruleIndex(d.rule) << ",\"level\":\""
           << level(d.severity) << "\""
           << ",\"message\":{\"text\":\"" << jsonEscape(text) << "\"}"
           << ",\"locations\":[{\"physicalLocation\":{"
           << "\"artifactLocation\":{\"uri\":\""
           << jsonEscape(artifactUri) << "\",\"index\":0}"
           << ",\"region\":{\"byteOffset\":" << d.pc
           << ",\"byteLength\":" << kParcelBytes << "}}}]}";
    }
    os << "]}]}";
    return os.str();
}

} // namespace crisp::analysis
