/**
 * @file
 * Post-codegen self-check implementation.
 */

#include "ccverify.hh"

#include <sstream>

namespace crisp::analysis
{

namespace
{

/** One instruction of the binary's linear (fold-free) decode. */
struct BinInst
{
    Addr pc = 0;
    Instruction inst;
    int len = 0;
};

std::string
hexPc(Addr pc)
{
    std::ostringstream os;
    os << "0x" << std::hex << pc;
    return os.str();
}

/**
 * Decode the text segment start to end, one instruction at a time.
 * Compiler output always decodes; a failure here is itself a finding.
 */
bool
linearDecode(const Program& prog, std::vector<BinInst>& out,
             std::vector<std::string>& problems)
{
    Addr pc = prog.textBase;
    const Addr end = prog.textEnd();
    while (pc < end) {
        const int len = instructionLength(prog.parcelAt(pc));
        if (pc + static_cast<Addr>(len) * kParcelBytes > end) {
            problems.push_back(hexPc(pc) +
                               ": instruction runs past end of text");
            return false;
        }
        BinInst b;
        b.pc = pc;
        b.len = len;
        b.inst = prog.fetch(pc);
        out.push_back(b);
        pc += static_cast<Addr>(len) * kParcelBytes;
    }
    return true;
}

/** Local restatement of the PDU's carrier-length rule (decoded.cc keeps
 *  its own copy; the point of --verify is two independent derivations). */
bool
carrierOk(FoldPolicy policy, int parcels)
{
    switch (policy) {
      case FoldPolicy::kNone:
        return false;
      case FoldPolicy::kCrisp:
        return parcels == 1 || parcels == 3;
      case FoldPolicy::kAll:
        return true;
    }
    return false;
}

} // namespace

std::string
VerifyReport::toString() const
{
    std::ostringstream os;
    if (!applicable) {
        os << "verify: not applicable (delay-slot baseline build)\n";
        return os.str();
    }
    os << "verify: " << (ok() ? "OK" : "FAILED") << " — "
       << claimedSpread << " spread claim(s), " << confirmedSpread
       << " confirmed, " << costZeroBound << " cost-free, "
       << analysis.staticBranchSites << " branch sites, "
       << analysis.count(Severity::kError) << " analyzer errors\n";
    for (const std::string& p : problems)
        os << "  " << p << "\n";
    return os.str();
}

VerifyReport
verifyCompile(const cc::CompileResult& res,
              const cc::CompileOptions& opts, FoldPolicy policy)
{
    VerifyReport r;
    if (opts.delaySlots || opts.annulSlots) {
        r.applicable = false;
        return r;
    }

    AnalysisOptions aopt;
    aopt.policy = policy;
    aopt.predict = opts.predict == cc::PredictMode::kAllNotTaken
                       ? PredictConvention::kAllNotTaken
                       : PredictConvention::kHeuristic;
    aopt.foldInfo = false;
    r.analysis = analyzeProgram(res.program, aopt);

    // Analyzer errors are always compiler bugs; prediction-convention
    // and missing-compare warnings are too, because crispcc controls
    // both ends. (spread.short is expected: not every branch can be
    // spread, and the pass says so by not claiming it.)
    for (const Diagnostic& d : r.analysis.diags) {
        if (d.severity == Severity::kError ||
            d.rule.rfind("predict.", 0) == 0 ||
            d.rule == "cc.maybe-missing-compare") {
            r.problems.push_back(d.toString());
        }
    }

    std::vector<BinInst> bin;
    if (!linearDecode(res.program, bin, r.problems))
        return r;

    // Pair CodeList instruction items with the linear decode, in order.
    std::vector<const cc::CodeItem*> items;
    for (const cc::CodeItem& c : res.code) {
        if (c.kind != cc::CodeItem::Kind::kLabel)
            items.push_back(&c);
    }
    if (items.size() != bin.size()) {
        r.problems.push_back(
            "linker emitted " + std::to_string(bin.size()) +
            " instructions for " + std::to_string(items.size()) +
            " code items");
        return r;
    }
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (items[i]->inst.op != bin[i].inst.op) {
            r.problems.push_back(
                hexPc(bin[i].pc) + ": code item " + std::to_string(i) +
                " is " + std::string(opcodeName(items[i]->inst.op)) +
                " but the binary decodes " +
                std::string(opcodeName(bin[i].inst.op)));
            return r;
        }
    }

    // Audit the Branch Spreading claims.
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (!items[i]->spreadClaim)
            continue;
        ++r.claimedSpread;
        const Addr pc = bin[i].pc;
        const auto it = r.analysis.sites.find(pc);
        if (it == r.analysis.sites.end())
            continue; // unreachable after later passes: nothing claimed
        if (!it->second.conditional) {
            r.problems.push_back(hexPc(pc) +
                                 ": spread claim on a branch the "
                                 "analyzer sees as unconditional");
            continue;
        }
        if (!it->second.guaranteedResolved) {
            r.problems.push_back(
                hexPc(pc) +
                ": passSpread claims full spread but the analyzer "
                "finds a path with too little separation");
            continue;
        }
        ++r.confirmedSpread;

        // Cost audit: a confirmed full spread means the branch resolves
        // at issue on every path, so the cost engine must agree by
        // collapsing its static delay interval to [0, 0].
        const SiteCost* c = r.analysis.cost.find(pc);
        if (c == nullptr) {
            r.problems.push_back(hexPc(pc) +
                                 ": spread-confirmed branch has no "
                                 "static cost bound");
            continue;
        }
        if (c->bound.lo != 0 || c->bound.hi != 0) {
            r.problems.push_back(
                hexPc(pc) + ": spread-confirmed branch carries a [" +
                std::to_string(c->bound.lo) + ", " +
                std::to_string(c->bound.hi) +
                "] delay bound; the cost engine should prove it free");
            continue;
        }
        ++r.costZeroBound;
    }
    if (r.claimedSpread != res.fullySpread) {
        r.problems.push_back(
            "passSpread counted " + std::to_string(res.fullySpread) +
            " fully spread pairs but tagged " +
            std::to_string(r.claimedSpread));
    }

    // Recount fold eligibility from the CodeList + linear-decode view
    // and compare classifications site by site.
    for (std::size_t i = 0; i < bin.size(); ++i) {
        if (!isBranch(bin[i].inst.op) ||
            bin[i].inst.op == Opcode::kCall) {
            continue;
        }
        const Addr pc = bin[i].pc;
        const auto it = r.analysis.sites.find(pc);
        if (it == r.analysis.sites.end())
            continue; // unreachable
        const BranchSite& s = it->second;

        const bool short_rel =
            bin[i].len == 1 && bin[i].inst.bmode == BranchMode::kPcRel;
        const bool has_carrier =
            i > 0 && !isBranch(bin[i - 1].inst.op) &&
            isFoldableBody(bin[i - 1].inst.op) &&
            carrierOk(policy, bin[i - 1].len);
        const bool expect_foldable = short_rel && has_carrier;

        if (!expect_foldable && s.cls != FoldClass::kLone) {
            r.problems.push_back(
                hexPc(pc) +
                ": analyzer folds a branch the fold rules say has no "
                "eligible carrier");
        }
        if (expect_foldable && r.analysis.cfg->has(bin[i - 1].pc) &&
            s.cls == FoldClass::kLone) {
            r.problems.push_back(
                hexPc(pc) +
                ": branch has a reachable eligible carrier but the "
                "analyzer never folds it");
        }
    }
    return r;
}

} // namespace crisp::analysis
