/**
 * @file
 * Translation validation for optimizer rewrites: prove, per compiled
 * program pair (before optimization, after optimization), that the
 * rewrite kept the observable semantics and did not worsen the static
 * branch-cost story.
 *
 * Obligations checked on each before/after pair:
 *
 *  1. the static instruction count did not grow;
 *  2. every matched conditional branch site's delay upper bound is
 *     monotonically non-worsening (after.hi <= before.hi), matched by
 *     the CodeItem::siteId tags the optimizer driver assigns before
 *     running any pass;
 *  3. the whole-program static cost envelope (sum of per-site hi over
 *     all branch sites) shrinks or holds;
 *  4. observable semantic equivalence: both programs, run from the
 *     boot state by the reference interpreter, halt with the same
 *     accumulator, the same SP, and identical data-segment contents.
 *     Stack-slot contents and the condition flag are *not* observable:
 *     deleting a dead frame store or a dead compare legitimately
 *     changes both. The first differing data word is reported as a
 *     shrunk counterexample (symbol name + expected/got).
 *
 * Cost bounds on both sides come from the SCCP-refined analysis, so a
 * rewrite that merely *reshapes* code without losing any constancy
 * proof passes, while one that destroys a proof (or a spread window)
 * fails obligation 2/3. End-to-end equivalence of the shipped binary
 * is additionally pinned by lockstep torture and the engine diff over
 * optimized outputs (tests/test_dataflow.cc); this validator is the
 * per-compile gate wired into `crispcc --verify` / `-O`.
 */

#ifndef CRISP_ANALYSIS_TV_HH
#define CRISP_ANALYSIS_TV_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "isa/program.hh"

namespace crisp::analysis
{

struct TvOptions
{
    /** Interpreter step budget per side for the equivalence run. */
    std::uint64_t maxSteps = 80'000'000;
    /** Skip the (expensive) concrete equivalence run. */
    bool semantic = true;
};

/** Verdict of one before/after validation. */
struct TvReport
{
    /** No obligation failed. */
    bool ok = true;

    /** Human-readable obligation failures (empty when ok). */
    std::vector<std::string> problems;

    /** Non-fatal observations (e.g. equivalence run inconclusive). */
    std::vector<std::string> notes;

    int sitesMatched = 0;
    int sitesImproved = 0; //!< matched sites whose hi strictly dropped

    std::uint64_t envelopeHiBefore = 0;
    std::uint64_t envelopeHiAfter = 0;
    std::size_t instrBefore = 0;
    std::size_t instrAfter = 0;

    /** True when the concrete equivalence run completed on both sides. */
    bool semanticChecked = false;

    /** First observable divergence, when one was found. */
    std::string counterexample;
};

/**
 * Validate @p after as a rewrite of @p before. @p sitePairs maps
 * matched conditional-branch sites (before-pc, after-pc); the optimizer
 * driver derives it from CodeItem::siteId tags surviving the passes.
 */
TvReport validateRewrite(
    const Program& before, const Program& after,
    const std::vector<std::pair<Addr, Addr>>& sitePairs,
    const TvOptions& opts = {});

} // namespace crisp::analysis

#endif // CRISP_ANALYSIS_TV_HH
