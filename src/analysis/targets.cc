/**
 * @file
 * Value-set fixpoint over the issue-point CFG and per-site target
 * extraction. Structure mirrors sccp.cc: the same worklist, join
 * counter, widening threshold and step-cap all-top bail, over a state
 * that carries exact finite sets next to the intervals.
 */

#include "targets.hh"

#include <algorithm>
#include <deque>
#include <optional>

namespace crisp::analysis
{

ValueSet
joinValueSet(const ValueSet& a, const ValueSet& b)
{
    if (a.top || b.top)
        return ValueSet::topSet();
    ValueSet r{false, a.vals};
    r.vals.insert(b.vals.begin(), b.vals.end());
    if (r.vals.size() > kValueSetCap)
        return ValueSet::topSet();
    return r;
}

namespace
{

/** Word contents of the freshly loaded memory image (text parcels are
 *  little-endian bytes, data verbatim, everything else zero). */
class InitialImage
{
  public:
    explicit InitialImage(const Program& prog) : prog_(prog) {}

    std::optional<std::int32_t>
    word(Addr a) const
    {
        if (a + kWordBytes > prog_.memBytes || a + kWordBytes < a)
            return std::nullopt;
        std::uint32_t v = 0;
        for (Addr i = 0; i < kWordBytes; ++i)
            v |= static_cast<std::uint32_t>(byte(a + i)) << (8 * i);
        return static_cast<std::int32_t>(v);
    }

  private:
    std::uint8_t
    byte(Addr a) const
    {
        if (a >= prog_.dataBase &&
            a - prog_.dataBase < prog_.data.size()) {
            return prog_.data[a - prog_.dataBase];
        }
        if (a >= prog_.textBase && a < prog_.textEnd()) {
            const Addr off = a - prog_.textBase;
            const Parcel p = prog_.text[off / kParcelBytes];
            return off % kParcelBytes != 0
                       ? static_cast<std::uint8_t>(p >> 8)
                       : static_cast<std::uint8_t>(p);
        }
        return 0;
    }

    const Program& prog_;
};

/** Merged byte ranges reachable stores may write. */
class MayWrite
{
  public:
    void addAll() { all_ = true; }

    /** Record a possible store anywhere in [@p lo, @p hi). */
    void
    add(std::int64_t lo, std::int64_t hi, Addr mem_bytes)
    {
        if (all_)
            return;
        lo = std::max<std::int64_t>(lo, 0);
        hi = std::min<std::int64_t>(hi, mem_bytes);
        if (lo >= hi)
            return;
        ranges_.emplace_back(static_cast<Addr>(lo),
                             static_cast<Addr>(hi));
    }

    /** Merge overlapping ranges; degrade to all-mutable past the cap. */
    void
    seal()
    {
        if (all_)
            return;
        std::sort(ranges_.begin(), ranges_.end());
        std::vector<std::pair<Addr, Addr>> merged;
        for (const auto& [lo, hi] : ranges_) {
            if (!merged.empty() && lo <= merged.back().second)
                merged.back().second = std::max(merged.back().second, hi);
            else
                merged.emplace_back(lo, hi);
        }
        ranges_ = std::move(merged);
        if (ranges_.size() > kRangeCap) {
            all_ = true;
            ranges_.clear();
        }
    }

    bool all() const { return all_; }
    const std::vector<std::pair<Addr, Addr>>& ranges() const
    {
        return ranges_;
    }

    /** May any store hit [@p lo, @p hi)? */
    bool
    overlaps(Addr lo, Addr hi) const
    {
        if (all_)
            return true;
        auto it = std::upper_bound(
            ranges_.begin(), ranges_.end(), lo,
            [](Addr a, const std::pair<Addr, Addr>& r) {
                return a < r.second;
            });
        return it != ranges_.end() && it->first < hi;
    }

  private:
    static constexpr std::size_t kRangeCap = 256;
    std::vector<std::pair<Addr, Addr>> ranges_;
    bool all_ = false;
};

/** Add everything one executed body may store. @p in is the state the
 *  body runs in, @p sp_after the post-entry SP for a call push. */
void
addBodyWrites(bool lone_branch, const Instruction& b, const AbsState& in,
              Addr mem_bytes, MayWrite& mw)
{
    const Opcode op = b.op;
    if (lone_branch || !(op == Opcode::kMov || isAlu2(op)))
        return;
    switch (b.dst.mode) {
      case AddrMode::kAbs: {
        const auto a = static_cast<std::int64_t>(
            static_cast<Addr>(b.dst.value));
        mw.add(a, a + kWordBytes, mem_bytes);
        return;
      }
      case AddrMode::kStack:
        mw.add(in.sp.lo + std::int64_t{b.dst.value} * kWordBytes,
               in.sp.hi + std::int64_t{b.dst.value} * kWordBytes +
                   kWordBytes,
               mem_bytes);
        return;
      case AddrMode::kInd: {
        const auto spc = in.sp.constant();
        if (!spc) {
            mw.addAll();
            return;
        }
        const Addr slot = static_cast<Addr>(*spc) +
                          static_cast<Addr>(b.dst.value) * kWordBytes;
        const auto it = in.mem.find(slot);
        if (it == in.mem.end() || it->second.lo < 0) {
            // Untracked or possibly-negative pointer: as an unsigned
            // address it may wrap anywhere.
            mw.addAll();
            return;
        }
        mw.add(it->second.lo, it->second.hi + kWordBytes, mem_bytes);
        return;
      }
      default:
        return; // accumulator/immediate: no memory write
    }
}

/** One abstract state of the value-set domain. */
struct VsState
{
    AbsState base;
    /** Exact finite sets for tracked words; absent means top. */
    std::map<Addr, ValueSet> sets;

    static VsState
    anyState()
    {
        return {AbsState::anyState(), {}};
    }

    bool operator==(const VsState&) const = default;
};

VsState
joinVs(const VsState& a, const VsState& b)
{
    if (!a.base.reachable)
        return b;
    if (!b.base.reachable)
        return a;
    VsState j;
    j.base = joinState(a.base, b.base);
    for (const auto& [addr, va] : a.sets) {
        const auto it = b.sets.find(addr);
        if (it == b.sets.end())
            continue; // top on the other side
        ValueSet u = joinValueSet(va, it->second);
        if (!u.top)
            j.sets.emplace(addr, std::move(u));
    }
    return j;
}

VsState
widenVs(const VsState& prev, const VsState& next, int& widenings)
{
    VsState w;
    w.base = widenAbsState(prev.base, next.base, widenings);
    if (!prev.base.reachable) {
        w.sets = next.sets;
        return w;
    }
    for (const auto& [addr, vn] : next.sets) {
        const auto p = prev.sets.find(addr);
        if (p == prev.sets.end()) {
            w.sets.emplace(addr, vn); // narrower than the previous top
        } else if (vn == p->second) {
            w.sets.emplace(addr, vn);
        } else {
            ++widenings; // still growing: widen straight to top
        }
    }
    return w;
}

/** Element-wise ALU over two finite sets; top when anything blows up. */
ValueSet
evalSetAlu(Opcode op, const ValueSet& d, const ValueSet& s)
{
    if (d.top || s.top ||
        d.vals.size() * s.vals.size() > kValueSetCap * kValueSetCap)
        return ValueSet::topSet();
    ValueSet r{false, {}};
    for (const std::int32_t dv : d.vals) {
        for (const std::int32_t sv : s.vals) {
            r.vals.insert(evalAlu(op, dv, sv));
            if (r.vals.size() > kValueSetCap)
                return ValueSet::topSet();
        }
    }
    return r;
}

/** Value reads over one VsState plus the immutable initial image. */
class VsMachine
{
  public:
    VsMachine(const VsState& st, const InitialImage& img,
              const MayWrite& mw)
        : st_(st), img_(img), mw_(mw)
    {}

    /** Absolute address of a direct operand (absint discipline). */
    std::optional<Addr>
    address(const Operand& o) const
    {
        switch (o.mode) {
          case AddrMode::kStack: {
            const auto sp = st_.base.sp.constant();
            if (!sp)
                return std::nullopt;
            return static_cast<Addr>(*sp) +
                   static_cast<Addr>(o.value) * kWordBytes;
          }
          case AddrMode::kAbs:
            return static_cast<Addr>(o.value);
          default:
            return std::nullopt;
        }
    }

    bool
    immutable(Addr a) const
    {
        return !mw_.all() && !mw_.overlaps(a, a + kWordBytes);
    }

    /** Every value the word at @p a may hold. */
    ValueSet
    wordAt(Addr a) const
    {
        const auto it = st_.sets.find(a);
        if (it != st_.sets.end())
            return it->second;
        const auto mi = st_.base.mem.find(a);
        if (mi != st_.base.mem.end()) {
            if (const auto c = mi->second.constant())
                return ValueSet::of(*c);
        }
        if (immutable(a)) {
            if (const auto w = img_.word(a))
                return ValueSet::of(*w);
        }
        return ValueSet::topSet();
    }

    /** Every value operand @p o may read. */
    ValueSet
    readSet(const Operand& o) const
    {
        switch (o.mode) {
          case AddrMode::kImm:
            return ValueSet::of(o.value);
          case AddrMode::kNone:
            return ValueSet::of(0);
          case AddrMode::kAccum:
            if (const auto c = st_.base.accum.constant())
                return ValueSet::of(*c);
            return ValueSet::topSet();
          case AddrMode::kStack:
          case AddrMode::kAbs: {
            const auto a = address(o);
            return a ? wordAt(*a) : ValueSet::topSet();
          }
          case AddrMode::kInd: {
            const auto slot =
                address(Operand::stack(o.value));
            if (!slot)
                return ValueSet::topSet();
            ValueSet ptrs = wordAt(*slot);
            if (ptrs.top)
                ptrs = enumeratePointers(*slot);
            if (ptrs.top)
                return ValueSet::topSet();
            ValueSet r{false, {}};
            for (const std::int32_t p : ptrs.vals) {
                const ValueSet w =
                    wordAt(static_cast<Addr>(p));
                if (w.top)
                    return ValueSet::topSet();
                r = joinValueSet(r, w);
                if (r.top)
                    return r;
            }
            return r;
        }
          default:
            return ValueSet::topSet();
        }
    }

  private:
    /** Fallback for a pointer tracked only as an interval: enumerate
     *  every byte address in a small span (read32 never faults on
     *  misalignment, so unaligned overlap words must be included). */
    ValueSet
    enumeratePointers(Addr slot) const
    {
        const auto mi = st_.base.mem.find(slot);
        if (mi == st_.base.mem.end())
            return ValueSet::topSet();
        const Interval& p = mi->second;
        if (p.lo < 0 ||
            p.hi - p.lo >= static_cast<std::int64_t>(kValueSetCap))
            return ValueSet::topSet();
        ValueSet r{false, {}};
        for (std::int64_t a = p.lo; a <= p.hi; ++a)
            r.vals.insert(static_cast<std::int32_t>(a));
        return r;
    }

    const VsState& st_;
    const InitialImage& img_;
    const MayWrite& mw_;
};

/** Transfer: absTransfer on the interval layer, a mirrored store
 *  discipline on the set layer. */
VsState
vsTransfer(const DecodedInst& di, const VsState& in,
           const InitialImage& img, const MayWrite& mw)
{
    VsState out;
    out.base = absTransfer(di, in.base);
    out.sets = in.sets;
    const VsMachine m(in, img, mw);

    const Instruction& b = di.body;
    const Opcode op = b.op;

    const auto store = [&](const Operand& dst, const ValueSet& v) {
        if (dst.mode == AddrMode::kAccum)
            return; // interval layer tracks the accumulator
        const auto a = m.address(dst);
        if (!a) {
            // Store through an unprovable address: like absTransfer,
            // assume it may clobber any tracked word.
            out.sets.clear();
            return;
        }
        if (v.top) {
            out.sets.erase(*a);
        } else {
            out.sets[*a] = v;
            if (out.sets.size() > kValueSetMemCap)
                out.sets.clear();
        }
    };

    if (di.loneBranch || op == Opcode::kNop || op == Opcode::kHalt ||
        op == Opcode::kEnter || op == Opcode::kLeave ||
        op == Opcode::kReturn || isCompare(op) || isAlu3(op)) {
        // No memory write (SP moves, flag and accumulator live in the
        // interval layer).
    } else if (op == Opcode::kMov) {
        store(b.dst, m.readSet(b.src));
    } else if (isAlu2(op)) {
        store(b.dst, evalSetAlu(op, m.readSet(b.dst), m.readSet(b.src)));
    }

    if (di.ctl == Ctl::kCall) {
        // The push lands at the post-push SP absTransfer computed.
        if (const auto spc = out.base.sp.constant()) {
            out.sets[static_cast<Addr>(*spc)] = ValueSet::of(
                static_cast<std::int32_t>(di.callRetPc));
            if (out.sets.size() > kValueSetMemCap)
                out.sets.clear();
        } else {
            out.sets.clear();
        }
    }
    return out;
}

/** Interval implied for x by (x REL c) == flag; lo > hi when the
 *  combination is infeasible; nullopt when the relation says nothing
 *  an interval can express. */
std::optional<Interval>
relImplied(Opcode op, std::int32_t c, bool flag, const Interval& x)
{
    const std::int64_t cc = c;
    Interval r = x;
    switch (op) {
      case Opcode::kCmpEq:
        if (flag)
            return Interval{std::max(r.lo, cc), std::min(r.hi, cc)};
        return std::nullopt;
      case Opcode::kCmpNe:
        if (!flag)
            return Interval{std::max(r.lo, cc), std::min(r.hi, cc)};
        return std::nullopt;
      case Opcode::kCmpLt:
        if (flag)
            r.hi = std::min(r.hi, cc - 1);
        else
            r.lo = std::max(r.lo, cc);
        return r;
      case Opcode::kCmpLe:
        if (flag)
            r.hi = std::min(r.hi, cc);
        else
            r.lo = std::max(r.lo, cc + 1);
        return r;
      case Opcode::kCmpGt:
        if (flag)
            r.lo = std::max(r.lo, cc + 1);
        else
            r.hi = std::min(r.hi, cc);
        return r;
      case Opcode::kCmpGe:
        if (flag)
            r.lo = std::max(r.lo, cc);
        else
            r.hi = std::min(r.hi, cc - 1);
        return r;
      case Opcode::kCmpLtU:
      case Opcode::kCmpGeU: {
        if (cc < 0)
            return std::nullopt;
        // Unsigned compare against a non-negative immediate: being
        // unsigned-below c means x lies in [0, c-1] as a signed word
        // (negative words are unsigned-above any such c).
        const bool below =
            (op == Opcode::kCmpLtU) == flag; // x <u c held?
        if (below) {
            r.lo = std::max<std::int64_t>(r.lo, 0);
            r.hi = std::min(r.hi, cc - 1);
            return r;
        }
        if (r.lo >= 0) {
            r.lo = std::max(r.lo, cc);
            return r;
        }
        return std::nullopt;
      }
      default:
        return std::nullopt;
    }
}

/** Does the body of @p di possibly write the word at @p a? */
bool
bodyMayWrite(const DecodedInst& di, const AbsState& in, Addr a)
{
    MayWrite mw;
    addBodyWrites(di.loneBranch, di.body, in, ~Addr{0} - kWordBytes,
                  mw);
    if (di.ctl == Ctl::kCall) {
        // The push lands at the post-push SP (the body may itself have
        // moved SP); absTransfer knows both effects.
        const AbsState out = absTransfer(di, in);
        mw.add(out.sp.lo, out.sp.hi + kWordBytes,
               ~Addr{0} - kWordBytes);
    }
    mw.seal();
    return mw.overlaps(a, a + kWordBytes);
}

/** The compare feeding the flag at branch node @p pn, found by walking
 *  back through single-predecessor spread code. Returns the compare's
 *  node and the chain of nodes whose bodies execute after it
 *  (including @p pn itself). */
struct FlagSource
{
    const CfgNode* cmpNode = nullptr;
    std::vector<const CfgNode*> between;
};

std::optional<FlagSource>
findFlagSource(const Cfg& cfg, const CfgNode& pn)
{
    FlagSource fs;
    const CfgNode* cur = &pn;
    for (int depth = 0; depth < 8; ++depth) {
        if (cur->di.writesCc && !cur->di.loneBranch) {
            if (!isCompare(cur->di.body.op))
                return std::nullopt;
            fs.cmpNode = cur;
            return fs;
        }
        fs.between.push_back(cur);
        if (cur->preds.size() != 1)
            return std::nullopt;
        const CfgNode& p = cfg.node(cur->preds.front());
        if (p.di.ctl == Ctl::kCall && cur->di.pc == p.di.callRetPc)
            return std::nullopt; // callee body havocs the flag
        cur = &p;
    }
    return std::nullopt;
}

/** All fixpoint context one edge/transfer evaluation needs. */
struct VsContext
{
    const Cfg& cfg;
    const InitialImage& img;
    const MayWrite& mw;
    std::map<Addr, VsState> in;
    std::map<Addr, VsState> out;
};

/**
 * Guard refinement: intersect the location the flag-setting compare
 * tested with the relation the traversed edge implies. Returns false
 * when the refinement proves the edge infeasible.
 */
bool
refineCompareOperand(VsContext& vc, const CfgNode& pn, bool edge_flag,
                     VsState& r)
{
    const auto fs = findFlagSource(vc.cfg, pn);
    if (!fs)
        return true;
    const Instruction& cb = fs->cmpNode->di.body;
    if (cb.src.mode != AddrMode::kImm)
        return true;
    const std::int32_t c = cb.src.value;
    const VsState& cmp_in = vc.in.at(fs->cmpNode->di.pc);
    if (!cmp_in.base.reachable)
        return true;

    if (cb.dst.mode == AddrMode::kAccum) {
        // The accumulator survives the gap only if nothing in between
        // writes it (mov/alu2 to accum or any alu3).
        for (const CfgNode* w : fs->between) {
            const Instruction& b = w->di.body;
            if (w->di.loneBranch)
                continue;
            if (isAlu3(b.op) ||
                ((b.op == Opcode::kMov || isAlu2(b.op)) &&
                 b.dst.mode == AddrMode::kAccum))
                return true;
        }
        const auto imp =
            relImplied(cb.op, c, edge_flag, r.base.accum);
        if (!imp)
            return true;
        if (imp->lo > imp->hi)
            return false;
        r.base.accum = *imp;
        return true;
    }

    const VsMachine cm(cmp_in, vc.img, vc.mw);
    const auto a = cm.address(cb.dst);
    if (!a)
        return true;
    // The compared word must survive every body between the compare
    // and the branch (spread code moved there is independent, but
    // prove it).
    for (const CfgNode* w : fs->between) {
        if (bodyMayWrite(w->di, vc.in.at(w->di.pc).base, *a))
            return true;
    }

    const auto mi = r.base.mem.find(*a);
    const Interval cur =
        mi != r.base.mem.end() ? mi->second : Interval::top();
    const auto imp = relImplied(cb.op, c, edge_flag, cur);
    if (!imp)
        return true;
    if (imp->lo > imp->hi)
        return false;
    if (!imp->isTop())
        r.base.mem[*a] = *imp;

    const auto si = r.sets.find(*a);
    if (si != r.sets.end()) {
        // Exact filter: keep only values satisfying the relation.
        ValueSet f{false, {}};
        for (const std::int32_t v : si->second.vals) {
            if (evalCompare(cb.op, v, c) == edge_flag)
                f.vals.insert(v);
        }
        if (f.vals.empty())
            return false;
        si->second = std::move(f);
    } else if (imp->hi - imp->lo <
               static_cast<std::int64_t>(kValueSetCap)) {
        // Materialize the refined window as an exact set so the
        // table-address arithmetic downstream stays exact.
        ValueSet f{false, {}};
        for (std::int64_t v = imp->lo; v <= imp->hi; ++v)
            f.vals.insert(static_cast<std::int32_t>(v));
        r.sets[*a] = std::move(f);
        if (r.sets.size() > kValueSetMemCap)
            r.sets.clear();
    }
    return true;
}

/** State flowing from predecessor @p pn (post-state @p po) into
 *  @p pc — sccp's edgeState plus guard refinement. */
VsState
vsEdgeState(VsContext& vc, const CfgNode& pn, const VsState& po,
            Addr pc)
{
    const DecodedInst& pdi = pn.di;
    if (pdi.ctl == Ctl::kCall && pc == pdi.callRetPc)
        return po.base.reachable ? VsState::anyState() : VsState{};
    if (!po.base.reachable || !pdi.hasCondBranch())
        return po;

    const Addr taken = pdi.takenPc;
    const Addr seq = pdi.seqPc;
    if (taken == seq)
        return po;

    bool edge_flag;
    if (pc == taken) {
        edge_flag = pdi.ctl == Ctl::kCondT;
    } else if (pc == seq) {
        edge_flag = pdi.ctl == Ctl::kCondF;
    } else {
        return po;
    }

    const bool feasible =
        edge_flag ? po.base.flag.mayTrue : po.base.flag.mayFalse;
    if (!feasible)
        return VsState{};
    VsState r = po;
    r.base.flag = FlagVal::known(edge_flag);
    if (!refineCompareOperand(vc, pn, edge_flag, r))
        return VsState{};
    return r;
}

} // namespace

const SiteTargets*
TargetsResult::siteAt(Addr pc) const
{
    const auto it = sites.find(pc);
    return it == sites.end() ? nullptr : &it->second;
}

TargetsResult
analyzeTargets(const Cfg& cfg, const CallGraph& cg,
               const SccpResult& sccp_result, const AbsIntOptions& opts)
{
    TargetsResult r;
    const Program& prog = cfg.program();
    const InitialImage img(prog);

    // Phase A: bound every store reachable per the sccp fixpoint. The
    // value phase below is at least as precise (refinement only prunes
    // paths), so this may-write set over-approximates its world too.
    MayWrite mw;
    for (const auto& [pc, n] : cfg.nodes()) {
        const AbsState& in = sccp_result.state.in.at(pc);
        if (!in.reachable)
            continue;
        if (n.di.totalParcels <= 0) {
            // Decode-error node: the interpreter executes the raw
            // instruction; model its stores from the raw view.
            try {
                const Instruction raw = prog.fetch(pc);
                addBodyWrites(false, raw, in, prog.memBytes, mw);
                if (raw.op == Opcode::kCall) {
                    mw.add(in.sp.lo - kWordBytes, in.sp.hi,
                           prog.memBytes);
                }
            } catch (const CrispError&) {
                // Fetch faults before any store.
            }
            continue;
        }
        addBodyWrites(n.di.loneBranch, n.di.body, in, prog.memBytes,
                      mw);
        if (n.di.ctl == Ctl::kCall) {
            const AbsState& out = sccp_result.state.out.at(pc);
            mw.add(out.sp.lo, out.sp.hi + kWordBytes, prog.memBytes);
        }
    }
    mw.seal();
    r.allMutable = mw.all();
    r.mayWrite = mw.ranges();

    // Phase B: the value-set fixpoint, sccp's worklist verbatim.
    VsContext vc{cfg, img, mw, {}, {}};
    for (const auto& [pc, n] : cfg.nodes()) {
        vc.in.emplace(pc, VsState{});
        vc.out.emplace(pc, VsState{});
    }

    VsState boundary;
    boundary.base.reachable = true;
    boundary.base.accum = Interval::of(0);
    const std::int64_t sp0 =
        (prog.memBytes - kWordBytes) & ~(kWordBytes - 1);
    boundary.base.sp = {sp0, sp0};
    boundary.base.flag = FlagVal::known(false);

    const auto fallbackSites = [&] {
        r.sites.clear();
        for (const auto& [pc, n] : cfg.nodes()) {
            if (n.di.ctl == Ctl::kIndirect) {
                SiteTargets s;
                s.pc = pc;
                s.branchPc = n.di.branchPc;
                s.kind = TargetSiteKind::kIndirectJump;
                s.targets = cfg.indirectTargets();
                r.sites.emplace(pc, std::move(s));
            } else if (n.di.ctl == Ctl::kRet) {
                SiteTargets s;
                s.pc = pc;
                s.branchPc = pc;
                s.kind = TargetSiteKind::kReturn;
                s.targets = cg.returnSitesOf(pc);
                s.fromReturnMatch = true;
                r.sites.emplace(pc, std::move(s));
            }
        }
    };

    if (!cfg.has(prog.entry)) {
        fallbackSites();
        return r;
    }

    std::deque<Addr> work{prog.entry};
    std::set<Addr> queued{prog.entry};
    std::map<Addr, int> joins;

    const std::uint64_t step_cap =
        opts.stepCap != 0
            ? opts.stepCap
            : static_cast<std::uint64_t>(cfg.nodes().size()) *
                      kAbsintStepsPerNode +
                  256;

    while (!work.empty()) {
        if (++r.steps > step_cap) {
            // Sound bail-out: every site keeps its ⊤ fallback set.
            r.converged = false;
            fallbackSites();
            return r;
        }

        const Addr pc = work.front();
        work.pop_front();
        queued.erase(pc);
        const CfgNode& n = cfg.node(pc);

        VsState i = pc == prog.entry ? boundary : VsState{};
        for (const Addr p : n.preds) {
            i = joinVs(i, vsEdgeState(vc, cfg.node(p), vc.out.at(p),
                                      pc));
        }

        VsState& in_slot = vc.in.at(pc);
        if (!(i == in_slot)) {
            if (++joins[pc] > kAbsintWidenJoins)
                i = widenVs(in_slot, i, r.widenings);
            in_slot = i;
        }

        VsState o;
        if (!i.base.reachable) {
            o = VsState{};
        } else if (n.di.totalParcels <= 0) {
            o = i;
        } else {
            o = vsTransfer(n.di, i, img, mw);
        }

        VsState& out_slot = vc.out.at(pc);
        if (o == out_slot)
            continue;
        out_slot = std::move(o);
        for (const Addr s : n.succs) {
            if (queued.insert(s).second)
                work.push_back(s);
        }
    }

    // Extraction: per reachable indirect/return site, read the target
    // word's value set out of the fixpoint.
    for (const auto& [pc, n] : cfg.nodes()) {
        const DecodedInst& di = n.di;
        if (di.ctl != Ctl::kIndirect && di.ctl != Ctl::kRet)
            continue;
        if (!vc.in.at(pc).base.reachable)
            continue;

        SiteTargets s;
        s.pc = pc;
        if (di.ctl == Ctl::kIndirect) {
            s.branchPc = di.branchPc;
            s.kind = TargetSiteKind::kIndirectJump;
            // The branch reads its target word at retirement, after
            // the folded body ran: use the OUT state.
            const VsState& out = vc.out.at(pc);
            const VsMachine m(out, img, mw);
            std::optional<Addr> slot;
            if (di.bmode == BranchMode::kIndAbs) {
                slot = di.spec;
            } else if (di.bmode == BranchMode::kIndSp) {
                if (const auto spc = out.base.sp.constant()) {
                    slot = static_cast<Addr>(*spc) +
                           static_cast<Addr>(static_cast<std::int32_t>(
                               di.spec)) *
                               kWordBytes;
                }
            }
            const ValueSet v =
                slot ? m.wordAt(*slot) : ValueSet::topSet();
            if (!v.top) {
                s.resolved = true;
                s.enforceable = true;
                for (const std::int32_t t : v.vals) {
                    const Addr ta = static_cast<Addr>(t);
                    s.targets.insert(ta);
                    if (!prog.inText(ta) || ta % kParcelBytes != 0)
                        ++s.invalidTargets;
                }
            } else {
                s.targets = cfg.indirectTargets();
            }
        } else {
            s.branchPc = pc;
            s.kind = TargetSiteKind::kReturn;
            // The pop reads the word above the deallocated frame:
            // in-SP + frame words (returns are never folded).
            const VsState& in = vc.in.at(pc);
            const VsMachine m(in, img, mw);
            ValueSet v = ValueSet::topSet();
            if (const auto spc = in.base.sp.constant()) {
                const Addr slot =
                    static_cast<Addr>(*spc) +
                    static_cast<Addr>(di.body.dst.value) * kWordBytes;
                v = m.wordAt(slot);
            }
            if (!v.top) {
                s.resolved = true;
                s.enforceable = true;
                for (const std::int32_t t : v.vals) {
                    const Addr ta = static_cast<Addr>(t);
                    s.targets.insert(ta);
                    if (!prog.inText(ta) || ta % kParcelBytes != 0)
                        ++s.invalidTargets;
                }
            } else {
                s.targets = cg.returnSitesOf(pc);
                s.fromReturnMatch = true;
            }
        }
        r.sites.emplace(pc, std::move(s));
    }
    return r;
}

IndirectHints
hintsFromTargets(const TargetsResult& targets)
{
    // Aggregate per branch address: several issue points may cover one
    // branch (mixed fold classes), and a hint must describe them all.
    struct Agg
    {
        std::set<Addr> all;
        bool ok = true;
    };
    std::map<Addr, Agg> by_branch;
    for (const auto& [pc, s] : targets.sites) {
        if (s.kind != TargetSiteKind::kIndirectJump)
            continue;
        Agg& a = by_branch[s.branchPc];
        a.ok = a.ok && s.enforceable && s.resolved &&
               s.invalidTargets == 0 && !s.targets.empty();
        a.all.insert(s.targets.begin(), s.targets.end());
    }
    IndirectHints hints;
    for (const auto& [bpc, a] : by_branch) {
        if (!a.ok)
            continue;
        hints.targets.emplace(
            bpc, std::vector<Addr>(a.all.begin(), a.all.end()));
    }
    return hints;
}

} // namespace crisp::analysis
