/**
 * @file
 * Backward liveness over the issue-point CFG: the accumulator, the
 * condition flag, and absolute memory words, with dead-store detection.
 *
 * Memory operands resolve to absolute word addresses through the
 * abstract interpreter's SP facts (a stack operand is only resolved
 * while SP is proven a singleton at that point); any unresolvable read
 * — pointer loads, reads under unknown SP — conservatively makes all
 * of memory live. Kills are only applied for provably-resolved writes,
 * so the analysis under-approximates deadness and never calls a live
 * location dead.
 *
 * The observability contract at program exit matches the translation
 * validator (tv.hh): the accumulator plus every data- and text-segment
 * word is live at halt, while stack slots are not — a frame slot whose
 * value can no longer reach a global, the accumulator, or control flow
 * is genuinely dead. Return-address words pushed by calls are read by
 * the matching return (resolved through SP), so they stay live across
 * the callee.
 */

#ifndef CRISP_ANALYSIS_LIVENESS_HH
#define CRISP_ANALYSIS_LIVENESS_HH

#include <map>
#include <set>
#include <vector>

#include "absint.hh"

namespace crisp::analysis
{

/**
 * Live memory words: either a finite live-set, or (after an
 * unresolvable read) "everything except a finite dead-set".
 */
struct MemLive
{
    /** When true, every word is live except those in `words`. */
    bool all = false;
    /** Live-set (all == false) or dead-set (all == true). */
    std::set<Addr> words;

    bool
    isLive(Addr a) const
    {
        return all ? words.count(a) == 0 : words.count(a) != 0;
    }

    void
    gen(Addr a)
    {
        if (all)
            words.erase(a);
        else
            words.insert(a);
    }

    void
    kill(Addr a)
    {
        if (all)
            words.insert(a);
        else
            words.erase(a);
    }

    /** An unresolvable read: every word may be needed. */
    void
    genAll()
    {
        all = true;
        words.clear();
    }

    bool operator==(const MemLive&) const = default;
};

/** Union of two MemLive sets. */
MemLive joinMemLive(const MemLive& a, const MemLive& b);

/** What is live at one program point. */
struct LiveSet
{
    bool accum = false;
    bool flag = false;
    MemLive mem;

    bool operator==(const LiveSet&) const = default;
};

/** Why an instruction's only effect is provably unobservable. */
enum class DeadKind
{
    kMemStore, //!< store to a word dead on every path out
    kAccumDef, //!< accumulator definition never read
    kCompare,  //!< compare whose flag is dead at every reader
};

/** One provably-dead definition. */
struct DeadStore
{
    Addr pc = 0;
    DeadKind kind = DeadKind::kMemStore;
    /** Resolved absolute byte address (kMemStore only). */
    Addr addr = 0;
};

/** Fixpoint result of one backward pass. */
struct LivenessResult
{
    /** Live-in / live-out per issue point, keyed like Cfg::nodes(). */
    std::map<Addr, LiveSet> in;
    std::map<Addr, LiveSet> out;

    /** Provably-dead definitions, ascending by pc. */
    std::vector<DeadStore> dead;

    /** False when the step cap tripped (everything degraded to live). */
    bool converged = true;

    /** Live-out at @p pc; all-live if the node is unknown. */
    const LiveSet& outAt(Addr pc) const;
};

/**
 * Run backward liveness over @p cfg, resolving memory operands through
 * @p ai (the plain or SCCP-refined interpretation of the same CFG).
 */
LivenessResult computeLiveness(const Cfg& cfg, const AbsIntResult& ai);

} // namespace crisp::analysis

#endif // CRISP_ANALYSIS_LIVENESS_HH
