/**
 * @file
 * Call graph over the issue-point CFG: function discovery, call edges,
 * and return-site matching.
 *
 * Functions are discovered from call targets rather than from symbol
 * names: every static call target (in reachable *and* unreachable
 * text) plus the program entry is a function entry. Each reachable
 * issue point is assigned to the function whose intra-procedural
 * walk (call edges replaced by call -> return-site fall-through)
 * reaches it first, entries visited in address order with the program
 * entry first. The partition is a best-effort ownership map — shared
 * tails reached from two functions keep their first owner — which is
 * exactly what the return-site matching needs: a sound *candidate*
 * set, never a proof.
 *
 * Consumers:
 *  - targets.cc uses returnSitesOf() as the fallback target set for a
 *    return whose pushed return word the value analysis lost. That
 *    fallback assumes return-word integrity (no store smashed the
 *    saved address); target sets derived this way are reported but
 *    never enforced at retire time.
 *  - checks.cc emits callgraph.unreachable-function for entries that
 *    are called somewhere in text but never reachable from the
 *    program entry.
 */

#ifndef CRISP_ANALYSIS_CALLGRAPH_HH
#define CRISP_ANALYSIS_CALLGRAPH_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "cfg.hh"

namespace crisp::analysis
{

/** One static call instruction found in the text segment. */
struct CallSite
{
    /** Issue-point address of the call entry (carrier pc when folded),
     *  or the raw instruction address for calls in unreachable text. */
    Addr pc = 0;
    /** Static callee entry address. */
    Addr callee = 0;
    /** Return address the call pushes. */
    Addr retPc = 0;
    /** True when the call is a reachable issue point in the CFG. */
    bool reachable = false;
};

/** One discovered function. */
struct CgFunction
{
    Addr entry = 0;
    /** Symbol name when a label names the entry; empty otherwise. */
    std::string name;
    /** True when the entry is a reachable issue point. */
    bool reachable = false;
    /** Call-site pcs (CallSite::pc) targeting this entry. */
    std::vector<Addr> callers;
    /** Return addresses of *reachable* calls to this entry: the
     *  candidate target set of this function's returns. */
    std::set<Addr> returnSites;
};

class CallGraph
{
  public:
    explicit CallGraph(const Cfg& cfg);

    /** All static call sites, ordered by pc. */
    const std::vector<CallSite>& sites() const { return sites_; }

    /** Discovered functions keyed by entry address. */
    const std::map<Addr, CgFunction>& functions() const
    {
        return funcs_;
    }

    /** Ownership partition: reachable issue point -> function entry. */
    const std::map<Addr, Addr>& owner() const { return owner_; }

    /**
     * Candidate return-target set for a return at issue point @p pc:
     * the return sites of its owning function, or every reachable
     * call's return site when ownership is unknown.
     */
    std::set<Addr> returnSitesOf(Addr pc) const;

    /** Return sites of every reachable call (the ⊤ fallback). */
    const std::set<Addr>& allReturnSites() const
    {
        return allReturnSites_;
    }

    /** Functions called somewhere in text but never reachable. */
    std::vector<const CgFunction*> unreachableFunctions() const;

  private:
    std::vector<CallSite> sites_;
    std::map<Addr, CgFunction> funcs_;
    std::map<Addr, Addr> owner_;
    std::set<Addr> allReturnSites_;
};

} // namespace crisp::analysis

#endif // CRISP_ANALYSIS_CALLGRAPH_HH
