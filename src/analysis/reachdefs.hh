/**
 * @file
 * Reaching definitions at issue-point granularity: which instruction
 * last defined the accumulator, the condition flag, or an absolute
 * memory word, along every path into each issue point.
 *
 * Locations resolve through the abstract interpreter's SP facts (like
 * liveness.hh). A definition site is an issue-point pc; the synthetic
 * kWildDef site stands for "unknown" — uninitialized entry state,
 * havocked call-return edges, and stores through unresolvable
 * addresses. Consumers:
 *
 *  - findConstPropUses: read-only operands whose unique reaching
 *    definition is `mov LOC, #imm` — safe to rewrite to the immediate;
 *  - findRedundantCopies: `mov X, Y` whose effect is proven a no-op
 *    (X already holds Y's value along every path) — safe to delete;
 *  - the dataflow.redundant-copy lint rule and def-use chains.
 */

#ifndef CRISP_ANALYSIS_REACHDEFS_HH
#define CRISP_ANALYSIS_REACHDEFS_HH

#include <map>
#include <set>
#include <vector>

#include "absint.hh"

namespace crisp::analysis
{

/** Definition-site pc for "defined by something unanalyzable". */
inline constexpr Addr kWildDef = 0xFFFFFFFFu;

/** Location key: kAccumLoc, kFlagLoc, or an absolute byte address. */
using LocKey = std::int64_t;
inline constexpr LocKey kAccumLoc = -1;
inline constexpr LocKey kFlagLoc = -2;

/** Reaching-definition state at one program point. */
struct RdState
{
    bool reachable = false;

    /**
     * Definition sites per location. A missing key means the wild
     * definition alone (everything is wild at entry and after havoc).
     */
    std::map<LocKey, std::set<Addr>> defs;

    /** Definitions reaching this point for @p key. */
    std::set<Addr>
    defsOf(LocKey key) const
    {
        const auto it = defs.find(key);
        if (it == defs.end())
            return {kWildDef};
        return it->second;
    }

    bool operator==(const RdState&) const = default;
};

/** Fixpoint result of one forward pass. */
struct ReachDefsResult
{
    /** Pre-state per issue point, keyed like Cfg::nodes(). */
    std::map<Addr, RdState> in;

    /** Def-use chains: definition pc -> issue points that may read it. */
    std::map<Addr, std::set<Addr>> defUses;

    bool converged = true;
};

/** Run reaching definitions over @p cfg with absint operand facts. */
ReachDefsResult computeReachDefs(const Cfg& cfg, const AbsIntResult& ai);

/** A read-only operand provably equal to an immediate. */
struct ConstUse
{
    Addr pc = 0;       //!< issue point whose operand can be rewritten
    bool dstOperand = false; //!< which operand position (dst vs src)
    std::int32_t value = 0;  //!< the proven immediate
    Addr defPc = 0;          //!< the unique `mov LOC, #imm` definition
};

/**
 * Read-only operand positions whose unique reaching definition is a
 * `mov` of an immediate: rewriting the operand to that immediate
 * preserves the value read on every path.
 */
std::vector<ConstUse> findConstPropUses(const Cfg& cfg,
                                        const ReachDefsResult& rd,
                                        const AbsIntResult& ai);

/** A provably no-op copy. */
struct RedundantCopy
{
    Addr pc = 0;    //!< the `mov X, Y` proven to rewrite X with itself
    Addr defPc = 0; //!< the earlier copy that already established X = Y
};

/**
 * Copies `mov X, Y` where X provably already holds Y's value: either
 * the same copy reaches unchanged (X=Y established, Y undisturbed), or
 * the reverse copy `mov Y, X` reaches with X undisturbed.
 */
std::vector<RedundantCopy> findRedundantCopies(const Cfg& cfg,
                                               const ReachDefsResult& rd,
                                               const AbsIntResult& ai);

} // namespace crisp::analysis

#endif // CRISP_ANALYSIS_REACHDEFS_HH
