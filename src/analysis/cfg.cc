/**
 * @file
 * Issue-point CFG construction: entry-closure discovery, jump-table
 * candidate collection, basic-block formation, DOT output.
 */

#include "cfg.hh"

#include <algorithm>
#include <deque>
#include <sstream>

namespace crisp::analysis
{

namespace
{

/** Word-aligned little-endian data words naming aligned text addresses. */
std::set<Addr>
collectIndirectCandidates(const Program& prog)
{
    std::set<Addr> out;
    const Addr text_end = prog.textEnd();
    for (std::size_t i = 0; i + kWordBytes <= prog.data.size();
         i += kWordBytes) {
        const Addr v = static_cast<Addr>(prog.data[i]) |
                       (static_cast<Addr>(prog.data[i + 1]) << 8) |
                       (static_cast<Addr>(prog.data[i + 2]) << 16) |
                       (static_cast<Addr>(prog.data[i + 3]) << 24);
        if (v >= prog.textBase && v < text_end && v % kParcelBytes == 0)
            out.insert(v);
    }
    return out;
}

} // namespace

Cfg::Cfg(const Program& prog, FoldPolicy policy)
    : prog_(prog), policy_(policy),
      indTargets_(collectIndirectCandidates(prog))
{
    discover();
    buildBlocks();
}

std::vector<Addr>
Cfg::successorsOf(const DecodedInst& di, Addr pc)
{
    std::vector<Addr> raw;
    switch (di.ctl) {
      case Ctl::kSeq:
        raw.push_back(di.seqPc);
        break;
      case Ctl::kJmp:
        raw.push_back(di.takenPc);
        break;
      case Ctl::kCondT:
      case Ctl::kCondF:
        raw.push_back(di.takenPc);
        raw.push_back(di.seqPc);
        break;
      case Ctl::kCall:
        // The callee, plus the return site the pushed address names.
        // The direct call -> return-site edge under-approximates the
        // real path through the callee, which is the sound direction
        // for the min-distance dataflow built on these edges.
        raw.push_back(di.takenPc);
        raw.push_back(di.callRetPc);
        break;
      case Ctl::kRet:
        // Return sites are already reachable through their call edges.
        break;
      case Ctl::kIndirect:
        hasIndirect_ = true;
        raw.insert(raw.end(), indTargets_.begin(), indTargets_.end());
        break;
      case Ctl::kHalt:
        break;
    }

    std::vector<Addr> out;
    for (const Addr t : raw) {
        if (t % kParcelBytes != 0 || !prog_.inText(t)) {
            badTargets_.emplace_back(pc, t);
            continue;
        }
        out.push_back(t);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

void
Cfg::discover()
{
    const FoldDecoder decoder(policy_);
    const Addr text_end = prog_.textEnd();

    std::deque<Addr> work;
    auto enqueue = [&](Addr pc) {
        if (nodes_.count(pc) == 0) {
            nodes_.emplace(pc, CfgNode{});
            work.push_back(pc);
        }
    };

    if (prog_.entry % kParcelBytes == 0 && prog_.inText(prog_.entry)) {
        enqueue(prog_.entry);
    } else {
        badTargets_.emplace_back(prog_.entry, prog_.entry);
    }

    bool indirect_seeded = false;
    while (!work.empty()) {
        const Addr pc = work.front();
        work.pop_front();
        CfgNode& n = nodes_.at(pc);

        const std::size_t idx = (pc - prog_.textBase) / kParcelBytes;
        const std::span<const Parcel> window{prog_.text.data() + idx,
                                             prog_.text.size() - idx};
        std::optional<DecodedInst> di;
        try {
            di = decoder.decodeAt(pc, window, /*at_end=*/true);
        } catch (const CrispError& e) {
            decodeErrors_.emplace_back(pc, e.what());
        }
        if (!di) {
            if (decodeErrors_.empty() || decodeErrors_.back().first != pc)
                decodeErrors_.emplace_back(
                    pc, "instruction truncated by end of text segment");
            // Keep the node as a zero-length placeholder so edges to it
            // stay representable; totalParcels = 0 marks "no decode".
            n.di.pc = pc;
            n.di.totalParcels = 0;
            continue;
        }
        if (di->ctl == Ctl::kSeq && di->seqPc >= text_end) {
            decodeErrors_.emplace_back(
                pc, "control falls through the end of the text segment");
        }

        n.di = *di;
        n.succs = successorsOf(*di, pc);
        for (const Addr s : n.succs)
            enqueue(s);

        // The first reachable indirect jump makes every jump-table
        // candidate a root; later indirect jumps share the same set.
        if (di->ctl == Ctl::kIndirect && !indirect_seeded) {
            indirect_seeded = true;
            for (const Addr t : indTargets_)
                enqueue(t);
        }
    }

    // Nodes that never decoded (errors) keep empty succs; drop their
    // placeholder state from succ lists? They stay: a predecessor's
    // edge to a malformed address is real and the diagnostics layer
    // reports the decode error at that address.
    for (auto& [pc, n] : nodes_) {
        for (const Addr s : n.succs)
            nodes_.at(s).preds.push_back(pc);
    }
    for (auto& [pc, n] : nodes_) {
        std::sort(n.preds.begin(), n.preds.end());
        n.preds.erase(std::unique(n.preds.begin(), n.preds.end()),
                      n.preds.end());
    }
}

void
Cfg::buildBlocks()
{
    // A node starts a block when it is not the unique fall-in of a
    // unique predecessor.
    auto is_leader = [&](const CfgNode& n) {
        if (n.preds.size() != 1)
            return true;
        const CfgNode& p = nodes_.at(n.preds.front());
        return p.succs.size() != 1;
    };

    for (auto& [pc, n] : nodes_) {
        if (n.block != -1 || !is_leader(n))
            continue;
        const int id = static_cast<int>(blocks_.size());
        blocks_.emplace_back();
        CfgBlock& b = blocks_.back();
        Addr cur = pc;
        for (;;) {
            CfgNode& cn = nodes_.at(cur);
            cn.block = id;
            b.entries.push_back(cur);
            if (cn.succs.size() != 1)
                break;
            const CfgNode& nx = nodes_.at(cn.succs.front());
            if (nx.preds.size() != 1 || nx.block != -1)
                break;
            cur = cn.succs.front();
        }
    }
    // Cycles with no leader (a loop whose every node has one pred):
    // pick the lowest-address unassigned node as a leader and repeat.
    for (auto& [pc, n] : nodes_) {
        if (n.block != -1)
            continue;
        const int id = static_cast<int>(blocks_.size());
        blocks_.emplace_back();
        CfgBlock& b = blocks_.back();
        Addr cur = pc;
        while (nodes_.at(cur).block == -1) {
            CfgNode& cn = nodes_.at(cur);
            cn.block = id;
            b.entries.push_back(cur);
            if (cn.succs.size() != 1)
                break;
            cur = cn.succs.front();
        }
    }

    for (CfgBlock& b : blocks_) {
        const CfgNode& last = nodes_.at(b.entries.back());
        for (const Addr s : last.succs) {
            const int t = nodes_.at(s).block;
            if (std::find(b.succs.begin(), b.succs.end(), t) ==
                b.succs.end()) {
                b.succs.push_back(t);
            }
        }
    }
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        for (const int s : blocks_[i].succs)
            blocks_[static_cast<std::size_t>(s)].preds.push_back(
                static_cast<int>(i));
    }
}

std::vector<std::pair<Addr, Addr>>
Cfg::unreachableRanges() const
{
    const Addr base = prog_.textBase;
    const std::size_t parcels = prog_.text.size();
    std::vector<bool> covered(parcels, false);
    for (const auto& [pc, n] : nodes_) {
        if (n.di.totalParcels <= 0)
            continue; // decode error: nothing covered
        const std::size_t first = (pc - base) / kParcelBytes;
        for (int i = 0; i < n.di.totalParcels; ++i) {
            if (first + static_cast<std::size_t>(i) < parcels)
                covered[first + static_cast<std::size_t>(i)] = true;
        }
    }

    std::vector<std::pair<Addr, Addr>> out;
    std::size_t i = 0;
    while (i < parcels) {
        if (covered[i]) {
            ++i;
            continue;
        }
        std::size_t j = i;
        while (j < parcels && !covered[j])
            ++j;
        out.emplace_back(base + static_cast<Addr>(i) * kParcelBytes,
                         base + static_cast<Addr>(j) * kParcelBytes);
        i = j;
    }
    return out;
}

std::string
Cfg::toDot() const
{
    std::ostringstream os;
    os << "digraph cfg {\n"
       << "  node [shape=box, fontname=\"monospace\"];\n";
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        const CfgBlock& b = blocks_[i];
        os << "  b" << i << " [label=\"";
        for (const Addr pc : b.entries) {
            // Graphviz escaping: backslashes and double quotes must
            // be backslash-escaped inside a quoted label — mangling
            // quotes into apostrophes changes the text, and a bare
            // backslash starts an escape sequence dot may reject.
            for (const char c : nodes_.at(pc).di.toString()) {
                if (c == '"' || c == '\\')
                    os << '\\';
                os << c;
            }
            os << "\\l";
        }
        os << "\"];\n";
    }
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        const CfgNode& last = nodes_.at(blocks_[i].entries.back());
        const bool indirect = last.di.ctl == Ctl::kIndirect;
        for (const int s : blocks_[i].succs) {
            os << "  b" << i << " -> b" << s;
            if (indirect)
                os << " [style=dashed]";
            os << ";\n";
        }
    }
    os << "}\n";
    return os.str();
}

} // namespace crisp::analysis
