/**
 * @file
 * crispcc --verify: audit a compilation against the static analyzer.
 *
 * The compiler and the analyzer reach the same binary through two
 * independent routes — crispcc reasons over the linear CodeList before
 * layout, the analyzer decodes the linked text with the PDU's own
 * decoder — so every claim the passes make can be cross-examined:
 *
 *  - the binary must analyze clean: no decode errors, no wild branch
 *    targets, no below-frame stack operands;
 *  - prediction bits must follow the convention the driver asked for
 *    (backward-taken heuristic or all-not-taken), on every reachable
 *    conditional branch;
 *  - every branch passSpread claims fully spread must be a
 *    spread-guaranteed site in the analyzer's reaching-compare pass
 *    (catches later passes disturbing the separation, and separations
 *    counted across paths the CodeList view cannot see);
 *  - the cost audit: each of those claims must also collapse the cost
 *    engine's static delay bound to [0, 0] — a compiler claim of
 *    "fully spread" that leaves a nonzero bound means the two layers
 *    disagree about what the hardware can lose at that site;
 *  - fold classification must match an independent CodeList-side
 *    recount of the paper's fold rules (one-parcel branch, carrier
 *    length, carrier not a control transfer).
 *
 * The bridge between the two views is the 1:1 pairing of CodeList
 * instruction items with the binary's linear decode: the linker emits
 * exactly one instruction per kInst/kBranch item, in order.
 */

#ifndef CRISP_ANALYSIS_CCVERIFY_HH
#define CRISP_ANALYSIS_CCVERIFY_HH

#include <string>
#include <vector>

#include "cc/compiler.hh"
#include "checks.hh"

namespace crisp::analysis
{

/** Outcome of auditing one compilation. */
struct VerifyReport
{
    /** Checks were applied (false for delay-slot baseline builds,
     *  whose binaries target a different machine model). */
    bool applicable = true;
    std::vector<std::string> problems;

    /** Analyzer result over the linked program (valid when applicable). */
    AnalysisResult analysis;

    /** Branches passSpread claimed fully spread, after layout. */
    int claimedSpread = 0;
    /** Claimed branches the analyzer confirms spread-guaranteed. */
    int confirmedSpread = 0;
    /** Claimed branches whose static delay bound collapses to [0, 0]. */
    int costZeroBound = 0;

    bool ok() const { return problems.empty(); }

    std::string toString() const;
};

/**
 * Audit @p res, compiled under @p opts, against the static analyzer.
 * Delay-slot builds come back not applicable (their prediction bits and
 * timing contract belong to the delayed-branch baseline machine).
 */
VerifyReport verifyCompile(const cc::CompileResult& res,
                           const cc::CompileOptions& opts,
                           FoldPolicy policy = FoldPolicy::kCrisp);

} // namespace crisp::analysis

#endif // CRISP_ANALYSIS_CCVERIFY_HH
