/**
 * @file
 * The `crispcc -O` driver: analyze, rewrite, re-spread, validate.
 */

#include "opt.hh"

#include <optional>
#include <sstream>

#include "checks.hh"

namespace crisp::analysis
{

namespace
{

/** Linear (fold-free) decode pcs, one per binary instruction. */
std::vector<Addr>
linearPcs(const Program& prog)
{
    std::vector<Addr> pcs;
    Addr pc = prog.textBase;
    while (pc < prog.textEnd()) {
        const int len = instructionLength(prog.parcelAt(pc));
        if (len <= 0)
            break;
        pcs.push_back(pc);
        pc += static_cast<Addr>(len) * kParcelBytes;
    }
    return pcs;
}

std::size_t
nonLabelCount(const cc::CodeList& code)
{
    std::size_t n = 0;
    for (const cc::CodeItem& c : code)
        n += c.kind != cc::CodeItem::Kind::kLabel ? 1 : 0;
    return n;
}

/** siteId -> branch pc under the 1:1 item/instruction pairing. */
std::map<int, Addr>
sitePcs(const cc::CodeList& code, const Program& prog)
{
    const std::vector<Addr> pcs = linearPcs(prog);
    std::map<int, Addr> m;
    std::size_t ord = 0;
    for (const cc::CodeItem& c : code) {
        if (c.kind == cc::CodeItem::Kind::kLabel)
            continue;
        if (c.siteId >= 0 && ord < pcs.size())
            m[c.siteId] = pcs[ord];
        ++ord;
    }
    return m;
}

AnalysisOptions
driverAnalysisOptions()
{
    AnalysisOptions a;
    a.predict = PredictConvention::kNone; // facts only, no lint
    a.foldInfo = false;
    a.costPredict = PredictSource::kStaticBit;
    return a;
}

/**
 * Constant branch directions, by branch parcel pc. A branch parcel may
 * belong to two issue points (folded into its carrier and as a lone
 * entry); rewriting the shared instruction is sound only when every
 * executable issue point containing it proves the same direction.
 */
std::map<Addr, bool>
agreedDirections(const AnalysisResult& a)
{
    std::map<Addr, std::optional<bool>> by_branch;
    for (const auto& [pc, n] : a.cfg->nodes()) {
        if (!n.di.hasCondBranch())
            continue;
        if (a.sccp.executable.count(pc) == 0)
            continue;
        const auto pit = a.sccp.provenDirection.find(pc);
        std::optional<bool> v;
        if (pit != a.sccp.provenDirection.end())
            v = pit->second;
        const Addr b = n.di.branchPc;
        const auto it = by_branch.find(b);
        if (it == by_branch.end())
            by_branch.emplace(b, v);
        else if (it->second != v)
            it->second = std::nullopt;
        if (!v)
            by_branch[b] = std::nullopt;
    }
    std::map<Addr, bool> out;
    for (const auto& [b, v] : by_branch) {
        if (v)
            out.emplace(b, *v);
    }
    return out;
}

} // namespace

OptReport
optimize(const cc::CompileResult& base, const cc::CompileOptions& copts,
         const OptOptions& oopts)
{
    OptReport r;
    r.result = base;
    if (copts.delaySlots || copts.annulSlots) {
        r.applicable = false;
        return r;
    }

    // Tag conditional branches with their TV site identity before any
    // pass runs; tags travel with the items through every rewrite.
    cc::CodeList base_code = base.code;
    int next_site = 0;
    for (cc::CodeItem& c : base_code) {
        if (c.isCondBranch())
            c.siteId = next_site++;
    }
    r.result.code = base_code;
    r.stats.instrBefore = nonLabelCount(base_code);

    const cc::LinkContext& ctx = base.link;
    cc::CodeList work = base_code;
    bool changed = false;
    bool tampered = false;

    for (int round = 0; round < oopts.maxRounds; ++round) {
        const Program prog = cc::linkCode(work, ctx);
        const AnalysisResult a =
            analyzeProgram(prog, driverAnalysisOptions());
        if (a.hasErrors())
            break;
        const std::vector<Addr> pcs = linearPcs(prog);
        if (pcs.size() != nonLabelCount(work))
            break; // pairing broken: stop rewriting, TV still gates
        std::map<Addr, std::size_t> ord;
        for (std::size_t i = 0; i < pcs.size(); ++i)
            ord.emplace(pcs[i], i);
        ++r.stats.rounds;

        // Exactly one pass per round: every ordinal-keyed plan is
        // derived from and applied to the same linked layout.

        // 1. Constant conditional branches.
        std::map<std::size_t, bool> dirs;
        for (const auto& [bpc, taken] : agreedDirections(a)) {
            const auto it = ord.find(bpc);
            if (it != ord.end())
                dirs.emplace(it->second, taken);
        }
        if (!dirs.empty()) {
            const int n = cc::passConstFold(work, dirs);
            if (n > 0) {
                r.stats.branchesRewritten += n;
                changed = true;
                continue;
            }
        }

        // 2a. Items no executable issue point covers.
        std::set<Addr> covered;
        for (const auto& [pc, n] : a.cfg->nodes()) {
            if (a.sccp.executable.count(pc) == 0)
                continue;
            covered.insert(pc);
            if (n.di.folded)
                covered.insert(n.di.branchPc);
        }
        cc::DcePlan unreach;
        for (std::size_t i = 0; i < pcs.size(); ++i) {
            if (covered.count(pcs[i]) == 0)
                unreach.unreachable.insert(i);
        }
        if (oopts.tamperDce && !tampered) {
            // Negative-testing hook: force-delete the first *global*
            // store the analysis did NOT prove dead. Globals are part
            // of the validator's observable state (data segment at
            // halt), so the deletion cannot hide the way a dropped
            // stack store can when the slot happens to hold the stored
            // value already. The validator must reject.
            std::set<Addr> dead_pcs;
            for (const DeadStore& d : a.live.dead)
                dead_pcs.insert(d.pc);
            std::size_t o = 0;
            for (const cc::CodeItem& c : work) {
                if (c.kind == cc::CodeItem::Kind::kLabel)
                    continue;
                const bool store =
                    c.kind == cc::CodeItem::Kind::kInst &&
                    (c.inst.op == Opcode::kMov || isAlu2(c.inst.op)) &&
                    c.inst.dst.mode == AddrMode::kAbs;
                if (store && o < pcs.size() &&
                    dead_pcs.count(pcs[o]) == 0 &&
                    unreach.unreachable.count(o) == 0) {
                    unreach.unreachable.insert(o);
                    tampered = true;
                    break;
                }
                ++o;
            }
        }
        if (!unreach.unreachable.empty()) {
            const int n = cc::passDCE(work, unreach);
            if (n > 0) {
                r.stats.unreachableRemoved += n;
                changed = true;
                continue;
            }
        }

        // 2b. Dead definitions, redundant copies, dead compares.
        cc::DcePlan plan;
        for (const DeadStore& d : a.live.dead) {
            const auto it = ord.find(d.pc);
            if (it == ord.end())
                continue;
            if (d.kind == DeadKind::kCompare)
                plan.ccDead.insert(it->second);
            else
                plan.dead.insert(it->second);
        }
        for (const RedundantCopy& c :
             findRedundantCopies(*a.cfg, a.reachdefs, a.sccp.state)) {
            const auto it = ord.find(c.pc);
            if (it != ord.end())
                plan.dead.insert(it->second);
        }
        int new_marks = 0;
        {
            std::size_t o = 0;
            for (const cc::CodeItem& c : work) {
                if (c.kind == cc::CodeItem::Kind::kLabel)
                    continue;
                if (plan.ccDead.count(o) != 0 && !c.ccDead)
                    ++new_marks;
                ++o;
            }
        }
        if (!plan.dead.empty() || new_marks > 0) {
            const int n = cc::passDCE(work, plan);
            r.stats.deadRemoved += n;
            r.stats.ccDeadMarked += new_marks;
            if (n > 0 || new_marks > 0) {
                changed = true;
                continue;
            }
        }

        // 3. Copy propagation.
        std::vector<cc::ConstOperand> uses;
        for (const ConstUse& u :
             findConstPropUses(*a.cfg, a.reachdefs, a.sccp.state)) {
            const auto it = ord.find(u.pc);
            if (it != ord.end())
                uses.push_back({it->second, u.dstOperand, u.value});
        }
        if (!uses.empty()) {
            const int n = cc::passCopyProp(work, uses);
            if (n > 0) {
                r.stats.operandsRewritten += n;
                changed = true;
                continue;
            }
        }

        // 4. Devirtualization: indirect jumps whose target set the
        // interprocedural analysis proved to be one text address.
        {
            // A label's linked address is the next non-label item's
            // linear-decode pc (trailing labels link to textEnd and
            // can never be devirtualization targets).
            std::map<Addr, std::string> label_at;
            std::size_t o = 0;
            for (const cc::CodeItem& c : work) {
                if (c.kind == cc::CodeItem::Kind::kLabel) {
                    if (o < pcs.size())
                        label_at.emplace(pcs[o], c.name);
                } else {
                    ++o;
                }
            }
            // A branch parcel can belong to two issue points (mixed
            // fold): rewrite only when every one proves the same
            // single valid target.
            std::map<Addr, std::optional<Addr>> by_branch;
            for (const auto& [pc, s] : a.targets.sites) {
                if (s.kind != TargetSiteKind::kIndirectJump)
                    continue;
                std::optional<Addr> v;
                if (s.singleton() && s.enforceable &&
                    s.invalidTargets == 0) {
                    v = *s.targets.begin();
                }
                const auto [it, fresh] =
                    by_branch.emplace(s.branchPc, v);
                if (!fresh && it->second != v)
                    it->second = std::nullopt;
                if (!v)
                    by_branch[s.branchPc] = std::nullopt;
            }
            std::vector<cc::DevirtSite> dsites;
            for (const auto& [bpc, v] : by_branch) {
                if (!v)
                    continue;
                const auto oit = ord.find(bpc);
                const auto lit = label_at.find(*v);
                if (oit == ord.end() || lit == label_at.end())
                    continue;
                dsites.push_back({oit->second, lit->second});
            }
            if (!dsites.empty()) {
                const int n = cc::passDevirt(work, dsites);
                if (n > 0) {
                    r.stats.devirtualized += n;
                    changed = true;
                    continue;
                }
            }
        }
        break; // quiescent
    }

    if (!changed) {
        // Nothing fired: ship the (tagged) baseline untouched.
        r.stats.instrAfter = r.stats.instrBefore;
        return r;
    }

    const std::map<int, Addr> before_sites =
        sitePcs(base_code, base.program);
    TvOptions tvo;
    tvo.semantic = oopts.semanticTv;

    const auto validate = [&](const cc::CodeList& cand,
                              const Program& cand_prog) {
        const std::map<int, Addr> after_sites = sitePcs(cand, cand_prog);
        std::vector<std::pair<Addr, Addr>> pairs;
        for (const auto& [id, bpc] : before_sites) {
            const auto it = after_sites.find(id);
            if (it != after_sites.end())
                pairs.emplace_back(bpc, it->second);
        }
        return validateRewrite(base.program, cand_prog, pairs, tvo);
    };

    const auto ship = [&](cc::CodeList cand, Program cand_prog,
                          int fully_spread, const TvReport& tv) {
        r.tv = tv;
        r.optimized = true;
        r.result.program = std::move(cand_prog);
        r.result.listing = cc::makeListing(cand, ctx);
        r.result.fullySpread = fully_spread;
        r.result.code = std::move(cand);
        r.stats.instrAfter = nonLabelCount(r.result.code);
        r.stats.envelopeHiBefore = tv.envelopeHiBefore;
        r.stats.envelopeHiAfter = tv.envelopeHiAfter;
    };

    // Full candidate: rewrites + ccDead-aware re-spread + cleanups.
    cc::CodeList full = work;
    if (copts.peephole)
        r.stats.peepholeRemoved += cc::passPeephole(full, ctx.keepLabels);
    int fully = base.fullySpread;
    if (copts.spread) {
        fully = cc::passRespread(full, copts.spreadDistance);
        r.stats.respreadFully = fully;
    }
    if (copts.peephole)
        r.stats.peepholeRemoved += cc::passPeephole(full, ctx.keepLabels);
    cc::passPredictBits(full, copts.predict);
    Program full_prog = cc::linkCode(full, ctx);
    const TvReport tv_full = validate(full, full_prog);
    if (tv_full.ok || tampered) {
        ship(std::move(full), std::move(full_prog), fully, tv_full);
        return r;
    }

    // Fallback 1: the rewrites alone, without the re-spread.
    r.tvFallback = true;
    cc::CodeList plain = work;
    cc::passPredictBits(plain, copts.predict);
    Program plain_prog = cc::linkCode(plain, ctx);
    const TvReport tv_plain = validate(plain, plain_prog);
    if (tv_plain.ok) {
        int plain_fully = 0;
        for (const cc::CodeItem& c : plain) {
            if (c.isCondBranch() && c.spreadClaim)
                ++plain_fully;
        }
        ship(std::move(plain), std::move(plain_prog), plain_fully,
             tv_plain);
        return r;
    }

    // Fallback 2: revert to the unoptimized baseline.
    r.tv = tv_plain;
    r.optimized = false;
    r.stats.instrAfter = r.stats.instrBefore;
    r.stats.envelopeHiBefore = tv_plain.envelopeHiBefore;
    r.stats.envelopeHiAfter = tv_plain.envelopeHiBefore;
    return r;
}

namespace
{

std::string
jsonQuote(const std::string& s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
OptReport::toJson() const
{
    std::ostringstream os;
    os << "{";
    os << "\"applicable\":" << (applicable ? "true" : "false");
    os << ",\"optimized\":" << (optimized ? "true" : "false");
    os << ",\"tvFallback\":" << (tvFallback ? "true" : "false");
    os << ",\"rounds\":" << stats.rounds;
    os << ",\"passes\":{";
    os << "\"constFold\":{\"branchesRewritten\":"
       << stats.branchesRewritten << "}";
    os << ",\"dce\":{\"deadRemoved\":" << stats.deadRemoved
       << ",\"unreachableRemoved\":" << stats.unreachableRemoved
       << ",\"ccDeadMarked\":" << stats.ccDeadMarked << "}";
    os << ",\"copyProp\":{\"operandsRewritten\":"
       << stats.operandsRewritten << "}";
    os << ",\"devirt\":{\"rewritten\":" << stats.devirtualized << "}";
    os << ",\"respread\":{\"fullySpread\":" << stats.respreadFully
       << "}";
    os << ",\"peephole\":{\"removed\":" << stats.peepholeRemoved << "}";
    os << "}";
    os << ",\"instructions\":{\"before\":" << stats.instrBefore
       << ",\"after\":" << stats.instrAfter << "}";
    os << ",\"costEnvelope\":{\"before\":" << stats.envelopeHiBefore
       << ",\"after\":" << stats.envelopeHiAfter << ",\"delta\":"
       << (static_cast<std::int64_t>(stats.envelopeHiBefore) -
           static_cast<std::int64_t>(stats.envelopeHiAfter))
       << "}";
    os << ",\"tv\":{\"ok\":" << (tv.ok ? "true" : "false");
    os << ",\"sitesMatched\":" << tv.sitesMatched;
    os << ",\"sitesImproved\":" << tv.sitesImproved;
    os << ",\"semanticChecked\":"
       << (tv.semanticChecked ? "true" : "false");
    os << ",\"problems\":[";
    for (std::size_t i = 0; i < tv.problems.size(); ++i) {
        if (i != 0)
            os << ",";
        os << jsonQuote(tv.problems[i]);
    }
    os << "],\"counterexample\":" << jsonQuote(tv.counterexample);
    os << "}}";
    return os.str();
}

} // namespace crisp::analysis
