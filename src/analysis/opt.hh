/**
 * @file
 * Dataflow-driven optimizer driver: the `crispcc -O` fixpoint loop.
 *
 * Round structure (at most OptOptions::maxRounds):
 *
 *   relink -> analyze (CFG, SCCP, liveness, reaching definitions) ->
 *   map pc-keyed facts to non-label CodeItem ordinals through the
 *   linear-decode pairing (the same pairing --verify audits) ->
 *   apply ONE rewrite pass (constant-branch folding, then DCE, then
 *   copy propagation, then single-target indirect-branch
 *   devirtualization, whichever fires first) -> repeat
 *
 * One pass per round keeps every ordinal-keyed plan valid: each plan
 * is derived from, and applied to, the same linked layout.
 *
 * After the loop the driver re-runs Branch Spreading (now aware of
 * CodeItem::ccDead compares), the peephole, and prediction bits, then
 * gates the result with the translation validator (tv.hh). On a TV
 * failure it falls back in stages: drop the re-spread, then revert to
 * the unoptimized baseline — so `-O` can reshape programs aggressively
 * while the shipped binary is always validated. OptOptions::tamperDce
 * deliberately deletes one live store and skips the fallback, so tests
 * can watch the validator catch a miscompiling pass.
 */

#ifndef CRISP_ANALYSIS_OPT_HH
#define CRISP_ANALYSIS_OPT_HH

#include <string>

#include "cc/compiler.hh"
#include "tv.hh"

namespace crisp::analysis
{

struct OptOptions
{
    /** Analyze/rewrite round cap. */
    int maxRounds = 8;
    /** Run the concrete equivalence leg of the validator. */
    bool semanticTv = true;
    /**
     * Deliberately delete one live store during DCE and skip the TV
     * fallback (negative testing: the validator must reject).
     */
    bool tamperDce = false;
};

/** What each pass did, for `crispcc --stats-json`. */
struct OptPassStats
{
    int rounds = 0;
    int branchesRewritten = 0;   //!< constant cond branches folded
    int deadRemoved = 0;         //!< dead defs + redundant copies cut
    int unreachableRemoved = 0;  //!< SCCP-unexecutable items cut
    int ccDeadMarked = 0;        //!< compares downgraded to ccDead
    int operandsRewritten = 0;   //!< copy-propagated immediates
    int devirtualized = 0;       //!< single-target indirect jmps made direct
    int respreadFully = 0;       //!< fully-spread pairs after rewrites
    int peepholeRemoved = 0;
    std::size_t instrBefore = 0; //!< non-label items, baseline
    std::size_t instrAfter = 0;  //!< non-label items, shipped result
    std::uint64_t envelopeHiBefore = 0; //!< sum of per-site delay his
    std::uint64_t envelopeHiAfter = 0;
};

struct OptReport
{
    /** The shipped compile (optimized, or the baseline on fallback). */
    cc::CompileResult result;
    OptPassStats stats;
    /** Validator verdict for the shipped result (trivially ok when
     *  nothing fired). */
    TvReport tv;
    /** False for delay-slot baseline builds: -O does not apply. */
    bool applicable = true;
    /** At least one rewrite was kept in the shipped result. */
    bool optimized = false;
    /** The staged fallback engaged (candidate failed validation). */
    bool tvFallback = false;

    /** Stats + verdict as one JSON object (crispcc --stats-json). */
    std::string toJson() const;
};

/**
 * Optimize @p base (a finished cc::compile result) under the same
 * compile options @p copts. Does not reparse: rewrites base.code and
 * relinks through base.link.
 */
OptReport optimize(const cc::CompileResult& base,
                   const cc::CompileOptions& copts,
                   const OptOptions& oopts = {});

} // namespace crisp::analysis

#endif // CRISP_ANALYSIS_OPT_HH
