/**
 * @file
 * Sparse conditional constant propagation over the issue-point CFG.
 *
 * Same lattice and transfer function as absint.hh — value intervals,
 * SP, tracked memory words, flag definedness — but edges participate in
 * the fixpoint:
 *
 *  - a conditional branch whose post-body flag is proven constant only
 *    propagates state along the proven edge, so code behind a
 *    never-taken (or always-taken) branch stays abstractly unreachable
 *    and its facts never pollute joins downstream;
 *  - a conditional edge that stays feasible refines the flag to the
 *    value that edge implies (the taken edge of an iftjmp knows the
 *    flag was true), which lets correlated second tests prove constant
 *    even where the plain interpreter joins both arms.
 *
 * The result is strictly at least as precise as interpret(): every
 * state SCCP reports is contained in the plain interpreter's state at
 * the same point, and nodes the plain interpreter proves constant stay
 * constant here unless SCCP proves them unreachable outright. The
 * seeded agreement sweep in tests/test_dataflow.cc checks exactly that
 * relation, and torture invariant 7 enforces the refined bounds
 * dynamically at retire time.
 */

#ifndef CRISP_ANALYSIS_SCCP_HH
#define CRISP_ANALYSIS_SCCP_HH

#include <map>
#include <set>

#include "absint.hh"

namespace crisp::analysis
{

/** Fixpoint of one sparse-conditional run. */
struct SccpResult
{
    /**
     * Refined pre-/post-states, drop-in compatible with every
     * AbsIntResult consumer (computeCost in particular). Nodes SCCP
     * proves unreachable keep reachable == false.
     */
    AbsIntResult state;

    /** Issue points with an abstractly-reachable in-state. */
    std::set<Addr> executable;

    /**
     * Conditional issue points (reachable, flag proven) mapped to the
     * proven branch direction: true = always taken.
     */
    std::map<Addr, bool> provenDirection;
};

/** Run sparse conditional constant propagation to fixpoint. */
SccpResult sccp(const Cfg& cfg, const AbsIntOptions& opts = {});

} // namespace crisp::analysis

#endif // CRISP_ANALYSIS_SCCP_HH
