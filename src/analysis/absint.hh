/**
 * @file
 * Abstract interpretation over the issue-point CFG: value intervals and
 * condition-flag definedness, propagated through CRISP addressing modes
 * and the stack discipline to a sound fixpoint.
 *
 * The domain tracks, per issue point:
 *
 *  - the accumulator as a signed interval;
 *  - SP as an interval (exact at entry: the stack grows down from
 *    (memBytes - 4) & ~3, and enter/leave/call/return move it by
 *    statically known amounts);
 *  - a bounded map of absolute word addresses -> intervals for stack
 *    slots and globals whose contents are proven along every path.
 *    Stack operands resolve to absolute addresses only while SP is a
 *    singleton; a store through an unknown address (pointer writes,
 *    stack stores under unknown SP) clobbers the whole map;
 *  - the condition flag as the four-point lattice over {may-be-true,
 *    may-be-false}, seeded Known(false) at entry (the architectural
 *    power-on value, which the EU honors: a branch before any compare
 *    tests exactly that value).
 *
 * Calls are edge-sensitive. The call -> callee edge keeps the caller's
 * state exactly (a call writes no CC and no accumulator; it pushes one
 * return-address word, moving SP by a known amount), so constants and
 * frame facts survive into callees — including the runtime's
 * `_start: call main` preamble. The CFG also routes a direct edge from
 * each call to its return site (bypassing the callee); that edge is
 * joined as all-top, because the unanalyzed callee body may touch CC,
 * the accumulator, any memory word, and even the SP discipline.
 * Interval growth at loop heads is
 * widened to full range after a fixed number of joins, which bounds
 * every ascending chain; a global step cap backstops termination and
 * degrades to all-top (still sound) if ever hit.
 *
 * Consumers: the branch-cost engine (cost.hh) reads the post-body flag
 * at each issue point to prove branches constant, and the lint layer
 * turns those proofs into cost.constant-cc / cost.dead-branch notes.
 */

#ifndef CRISP_ANALYSIS_ABSINT_HH
#define CRISP_ANALYSIS_ABSINT_HH

#include <cstdint>
#include <map>
#include <optional>

#include "cfg.hh"

namespace crisp::analysis
{

/** Signed 32-bit value interval [lo, hi] (int64 bounds, never empty). */
struct Interval
{
    std::int64_t lo = INT32_MIN;
    std::int64_t hi = INT32_MAX;

    static Interval top() { return {INT32_MIN, INT32_MAX}; }

    static Interval
    of(std::int32_t v)
    {
        return {v, v};
    }

    bool isTop() const { return lo == INT32_MIN && hi == INT32_MAX; }

    /** The single value when lo == hi. */
    std::optional<std::int32_t>
    constant() const
    {
        if (lo == hi)
            return static_cast<std::int32_t>(lo);
        return std::nullopt;
    }

    bool
    contains(std::int64_t v) const
    {
        return lo <= v && v <= hi;
    }

    bool operator==(const Interval&) const = default;
};

/** Least interval containing both arguments. */
Interval hull(const Interval& a, const Interval& b);

/** Classic interval widening: any growing bound jumps to the limit. */
Interval widenInterval(const Interval& prev, const Interval& next);

/**
 * The condition flag: which values it may hold at a program point.
 * Bottom (neither) never appears in a reachable state.
 */
struct FlagVal
{
    bool mayTrue = true;
    bool mayFalse = true;

    static FlagVal top() { return {true, true}; }

    static FlagVal
    known(bool v)
    {
        return {v, !v};
    }

    /** The single value the flag must hold, if proven. */
    std::optional<bool>
    constant() const
    {
        if (mayTrue != mayFalse)
            return mayTrue;
        return std::nullopt;
    }

    bool operator==(const FlagVal&) const = default;
};

/** Abstract machine state at one program point. */
struct AbsState
{
    /** False only for the pre-fixpoint "no path reaches here" seed. */
    bool reachable = false;

    Interval accum;
    Interval sp;
    FlagVal flag;

    /** Proven word contents keyed by absolute byte address. */
    std::map<Addr, Interval> mem;

    /** Reachable state with nothing proven (the lattice top). */
    static AbsState
    anyState()
    {
        AbsState s;
        s.reachable = true;
        return s;
    }

    bool operator==(const AbsState&) const = default;
};

/** Join (least upper bound) of two abstract states. */
AbsState joinState(const AbsState& a, const AbsState& b);

/** Joins after which a node's growing intervals are widened. */
inline constexpr int kAbsintWidenJoins = 12;

/** Transfer applications per node before the sound all-top bail. */
inline constexpr std::uint64_t kAbsintStepsPerNode = 64;

/**
 * Abstract OUT state of @p di applied to reachable state @p in — the
 * transfer function shared by interpret() and the sparse conditional
 * constant propagation in sccp.cc.
 */
AbsState absTransfer(const DecodedInst& di, const AbsState& in);

/** Widen every growing component of @p next against @p prev. */
AbsState widenAbsState(const AbsState& prev, const AbsState& next,
                       int& widenings);

/** Fixpoint result of one interpretation run. */
struct AbsIntResult
{
    /** Pre-/post-state per issue point, keyed like Cfg::nodes(). */
    std::map<Addr, AbsState> in;
    std::map<Addr, AbsState> out;

    /** False when the step cap tripped and everything degraded to top
     *  (still sound, no longer precise). */
    bool converged = true;

    /** Transfer-function applications until the fixpoint. */
    std::uint64_t steps = 0;

    /** Widening applications (loop-head interval escalations). */
    int widenings = 0;

    /** OUT state at @p pc; top if the node is unknown. */
    const AbsState& outAt(Addr pc) const;
};

/** Tuning knobs for one interpretation run. */
struct AbsIntOptions
{
    /** Step-cap override; 0 keeps the nodes-proportional default.
     *  Directed tests use a tiny cap to exercise the all-top bail. */
    std::uint64_t stepCap = 0;
};

/**
 * Run the abstract interpreter to fixpoint over @p cfg. Decode-error
 * placeholder nodes pass their input through unchanged (they have no
 * successors anyway).
 */
AbsIntResult interpret(const Cfg& cfg, const AbsIntOptions& opts = {});

// Abstract transfer primitives, exposed for the unit tests ------------

/** Abstract compare: which flag values (a REL b) may produce. */
FlagVal absCompare(Opcode op, const Interval& a, const Interval& b);

/** Abstract ALU: sound (possibly top) interval for (a OP b), agreeing
 *  exactly with evalAlu on singleton operands. */
Interval absAlu(Opcode op, const Interval& a, const Interval& b);

} // namespace crisp::analysis

#endif // CRISP_ANALYSIS_ABSINT_HH
