/**
 * @file
 * Static per-site branch delay bounds.
 */

#include "cost.hh"

#include <algorithm>
#include <deque>

#include "targets.hh"

namespace crisp::analysis
{

std::string_view
predictSourceName(PredictSource s)
{
    switch (s) {
      case PredictSource::kStaticBit:
        return "static-bit";
      case PredictSource::kNotTaken:
        return "not-taken";
      case PredictSource::kUnknown:
        return "unknown";
    }
    return "?";
}

PredictSource
predictSourceFor(const SimConfig& cfg)
{
    if (!cfg.respectPredictionBit)
        return PredictSource::kNotTaken;
    if (cfg.predictor == PredictorKind::kStaticBit)
        return PredictSource::kStaticBit;
    return PredictSource::kUnknown;
}

const SiteCost*
CostSummary::find(Addr branch_pc) const
{
    const auto it = sites.find(branch_pc);
    return it == sites.end() ? nullptr : &it->second;
}

namespace
{

/** Issue points a site executes through (carrier and/or lone entry). */
std::vector<Addr>
issuePointsOf(const BranchSite& s)
{
    switch (s.cls) {
      case FoldClass::kFolded:
        return {s.carrierPc};
      case FoldClass::kLone:
        return {s.branchPc};
      case FoldClass::kMixed:
        return {s.carrierPc, s.branchPc};
    }
    return {s.branchPc};
}

/**
 * Worst-case delay of one conditional issue point: 0 when the spread
 * pass proves resolution at issue; otherwise the staircase keyed by
 * the minimum compare distance for a folded entry (its compare's
 * retirement finds the branch at most 3 - d stages deep), and the
 * full 3 for a lone entry (only verified in its own RR).
 */
int
issuePointHi(const Cfg& cfg, const std::map<Addr, SpreadInfo>& spread,
             Addr ip)
{
    const auto it = spread.find(ip);
    if (it == spread.end())
        return 3; // defensively pessimal; every cond ip has an entry
    const SpreadInfo& si = it->second;
    if (si.guaranteedResolved)
        return 0;
    if (cfg.has(ip) && cfg.node(ip).di.folded) {
        const int d = si.issueSlots < 3 ? si.issueSlots : 3;
        return 3 - d;
    }
    return 3;
}

} // namespace

CostSummary
computeCost(const Cfg& cfg, const std::map<Addr, SpreadInfo>& spread,
            const std::map<Addr, BranchSite>& sites,
            const AbsIntResult& ai, PredictSource predict,
            const TargetsResult* targets)
{
    CostSummary cs;
    cs.predict = predict;
    cs.absintConverged = ai.converged;

    for (const auto& [pc, s] : sites) {
        SiteCost c;
        c.branchPc = pc;
        c.conditional = s.conditional;
        c.indirect = s.indirect;
        c.minSpreadSlots = kSlotCap;

        if (s.indirect) {
            // Target read at retirement: exactly two issue bubbles.
            c.bound = {2, 2};
            // Unless no issue point can execute: a site the
            // edge-pruned fixpoint proves unreachable never retires,
            // so its bound is vacuously [0, 0] (mirroring the
            // unreachable-conditional case below). With the plain
            // interpreter every node is reachable and this never
            // fires.
            bool any_live = false;
            for (const Addr ip : issuePointsOf(s)) {
                if (ai.outAt(ip).reachable)
                    any_live = true;
            }
            if (!any_live)
                c.bound = {0, 0};
            // Target-set metadata for reporting and devirtualization;
            // never feeds the enforced bound (a reachable indirect
            // site costs exactly 2 no matter how small its set).
            if (targets) {
                for (const Addr ip : issuePointsOf(s)) {
                    if (const SiteTargets* st = targets->siteAt(ip)) {
                        c.targetResolved = st->resolved;
                        c.targetCount = st->targets.size();
                        c.targetSingleton = st->singleton();
                    }
                }
            }
        } else if (!s.conditional) {
            // Direct jmp/call: the Next-PC field redirects at issue.
            c.bound = {0, 0};
        } else {
            c.bound = {0, 0};
            // Issue points the abstract interpretation proves can never
            // execute contribute nothing: under sparse conditional
            // constant propagation a pruned-away entry must not
            // pessimize the bound. With the plain interpreter every CFG
            // node is reachable, so this filter is a no-op there.
            std::vector<Addr> ips;
            for (const Addr ip : issuePointsOf(s)) {
                if (ai.outAt(ip).reachable)
                    ips.push_back(ip);
            }
            for (const Addr ip : ips) {
                const int hi = issuePointHi(cfg, spread, ip);
                if (hi > c.bound.hi)
                    c.bound.hi = hi;
                const auto sit = spread.find(ip);
                const int d =
                    sit == spread.end() ? 0 : sit->second.issueSlots;
                if (d < c.minSpreadSlots)
                    c.minSpreadSlots = d;
            }

            // Constancy: the post-body flag must be proven, and the
            // branch direction must agree, at every reachable issue
            // point. A site with no reachable issue point never
            // executes at all; its [0,0] bound is vacuous, not a
            // direction proof.
            bool constant = !ips.empty();
            bool dir = false;
            bool first = true;
            for (const Addr ip : ips) {
                if (!cfg.has(ip)) {
                    constant = false;
                    break;
                }
                const DecodedInst& di = cfg.node(ip).di;
                const auto f = ai.outAt(ip).flag.constant();
                if (!f) {
                    constant = false;
                    break;
                }
                const bool taken = di.condTaken(*f);
                if (first) {
                    dir = taken;
                    first = false;
                } else if (taken != dir) {
                    constant = false;
                    break;
                }
            }
            if (constant) {
                c.constantDirection = true;
                c.alwaysTaken = dir;
                // A provably correct prediction can never mispredict:
                // the speculative path is the architectural path, so
                // zero cycles are ever lost.
                if (predict == PredictSource::kStaticBit)
                    c.predictionProvablyCorrect = dir == s.predictTaken;
                else if (predict == PredictSource::kNotTaken)
                    c.predictionProvablyCorrect = !dir;
                if (c.predictionProvablyCorrect)
                    c.bound = {0, 0};
            }
        }

        if (c.constantDirection)
            ++cs.constantSites;
        if (c.bound.hi == 0)
            ++cs.zeroDelaySites;
        if (c.bound.hi > cs.maxDelayPerSite)
            cs.maxDelayPerSite = c.bound.hi;
        cs.sites.emplace(pc, c);
    }
    return cs;
}

std::set<Addr>
deadAfterConstantPruning(const Cfg& cfg, const AbsIntResult& ai)
{
    std::set<Addr> dead;
    const Addr entry = cfg.program().entry;
    if (!cfg.has(entry))
        return dead;

    std::set<Addr> live{entry};
    std::deque<Addr> work{entry};
    while (!work.empty()) {
        const Addr pc = work.front();
        work.pop_front();
        const CfgNode& n = cfg.node(pc);

        std::vector<Addr> follow = n.succs;
        if (n.di.hasCondBranch()) {
            if (const auto f = ai.outAt(pc).flag.constant()) {
                const Addr tgt = n.di.condTaken(*f) ? n.di.takenPc
                                                    : n.di.seqPc;
                // Prune to the proven edge — but only when that edge
                // survived target validation; otherwise keep them all.
                if (std::find(n.succs.begin(), n.succs.end(), tgt) !=
                    n.succs.end()) {
                    follow.assign(1, tgt);
                }
            }
        }
        for (const Addr s : follow) {
            if (live.insert(s).second)
                work.push_back(s);
        }
    }

    for (const auto& [pc, n] : cfg.nodes()) {
        if (live.count(pc) == 0)
            dead.insert(pc);
    }
    return dead;
}

} // namespace crisp::analysis
