/**
 * @file
 * Concrete dataflow passes over the issue-point CFG.
 */

#include "dataflow.hh"

#include <algorithm>

namespace crisp::analysis
{

std::map<Addr, SpreadInfo>
analyzeSpread(const Cfg& cfg)
{
    // Slot distance since the last CC writer, saturating at kSlotCap.
    // Roots start at the cap: before the first compare ever executes
    // the flag is architecturally final, so a branch there resolves at
    // issue exactly like a fully spread one.
    const auto dist = solveForward<int>(
        cfg, /*boundary=*/kSlotCap, /*top=*/kSlotCap,
        [](int a, int b) { return std::min(a, b); },
        [](const CfgNode& n, int in) {
            if (n.di.totalParcels > 0 && n.di.writesCc)
                return 0;
            return std::min(in + 1, kSlotCap);
        });

    // "Some path reaches this node with no compare executed at all."
    const auto no_cmp = solveForward<bool>(
        cfg, /*boundary=*/true, /*top=*/false,
        [](bool a, bool b) { return a || b; },
        [](const CfgNode& n, bool in) {
            return in && !(n.di.totalParcels > 0 && n.di.writesCc);
        });

    std::map<Addr, SpreadInfo> out;
    for (const auto& [pc, n] : cfg.nodes()) {
        if (n.di.totalParcels == 0 || !n.di.hasCondBranch())
            continue;
        SpreadInfo s;
        s.pc = pc;
        s.branchPc = n.di.branchPc;
        // A branch folded with its own compare issues in the same slot
        // as the CC write: separation zero by definition.
        s.issueSlots =
            n.di.writesCc ? 0 : std::min(dist.at(pc) + 1, kSlotCap);
        s.guaranteedResolved = s.issueSlots >= kResolveSlots;
        s.compareMayBeMissing = no_cmp.at(pc);
        out.emplace(pc, s);
    }
    return out;
}

std::string_view
noFoldReasonName(NoFoldReason r)
{
    switch (r) {
      case NoFoldReason::kNone:
        return "folds";
      case NoFoldReason::kPolicyNone:
        return "folding disabled by policy";
      case NoFoldReason::kNotOneParcel:
        return "branch is not one parcel (calls and relaxed branches)";
      case NoFoldReason::kIndirect:
        return "indirect branches never fold";
      case NoFoldReason::kNoCarrier:
        return "only entered directly (jump target or entry point)";
      case NoFoldReason::kCarrierTooLong:
        return "carrier too long for the fold policy";
      case NoFoldReason::kCarrierControl:
        return "preceding instruction transfers control";
    }
    return "?";
}

namespace
{

NoFoldReason
loneReason(const Cfg& cfg, const CfgNode& n)
{
    const DecodedInst& di = n.di;
    if (di.ctl == Ctl::kIndirect)
        return NoFoldReason::kIndirect;
    if (di.totalParcels != 1)
        return NoFoldReason::kNotOneParcel;
    if (cfg.policy() == FoldPolicy::kNone)
        return NoFoldReason::kPolicyNone;

    // A one-parcel PC-relative branch that still issues alone: nothing
    // upstream could carry it. Distinguish "the textual predecessor
    // falls in without folding" (too-long carrier) from "control only
    // ever arrives by transfer".
    NoFoldReason r = NoFoldReason::kNoCarrier;
    for (const Addr p : n.preds) {
        const DecodedInst& pd = cfg.node(p).di;
        if (pd.ctl == Ctl::kSeq && pd.seqPc == di.pc)
            return NoFoldReason::kCarrierTooLong;
        if (pd.ctl == Ctl::kCall && pd.callRetPc == di.pc)
            r = NoFoldReason::kCarrierControl;
    }
    return r;
}

} // namespace

std::map<Addr, BranchSite>
collectBranchSites(const Cfg& cfg,
                   const std::map<Addr, SpreadInfo>& spread)
{
    struct Occurrence
    {
        bool folded = false;
        bool lone = false;
        bool foldedGuaranteed = true;
        bool loneGuaranteed = true;
    };
    std::map<Addr, BranchSite> sites;
    std::map<Addr, Occurrence> occ;

    for (const auto& [pc, n] : cfg.nodes()) {
        const DecodedInst& di = n.di;
        if (di.totalParcels == 0 || (!di.folded && !di.loneBranch))
            continue;

        BranchSite& s = sites[di.branchPc];
        s.branchPc = di.branchPc;
        s.op = di.branchOp;
        s.conditional = di.hasCondBranch();
        s.predictTaken = di.predictTaken;
        s.shortForm = di.branchShortForm;
        s.indirect = di.ctl == Ctl::kIndirect;
        s.takenPc = di.takenPc;

        Occurrence& o = occ[di.branchPc];
        const bool guaranteed =
            !di.hasCondBranch() ||
            (spread.count(pc) != 0 && spread.at(pc).guaranteedResolved);
        if (di.folded) {
            o.folded = true;
            o.foldedGuaranteed = o.foldedGuaranteed && guaranteed;
            s.carrierPc = pc;
        } else {
            o.lone = true;
            o.loneGuaranteed = o.loneGuaranteed && guaranteed;
            s.reason = loneReason(cfg, n);
        }
    }

    for (auto& [pc, s] : sites) {
        const Occurrence& o = occ.at(pc);
        if (o.folded && o.lone)
            s.cls = FoldClass::kMixed;
        else if (o.folded)
            s.cls = FoldClass::kFolded;
        else
            s.cls = FoldClass::kLone;
        if (s.cls == FoldClass::kFolded)
            s.reason = NoFoldReason::kNone;
        s.guaranteedResolved =
            s.conditional && (!o.folded || o.foldedGuaranteed) &&
            (!o.lone || o.loneGuaranteed);
    }
    return sites;
}

std::vector<StackIssue>
analyzeStackWindow(const Cfg& cfg, int window_words)
{
    std::vector<StackIssue> out;
    std::set<std::pair<Addr, std::int32_t>> seen;
    for (const auto& [pc, n] : cfg.nodes()) {
        if (n.di.totalParcels == 0 || n.di.loneBranch)
            continue;
        for (const Operand* o : {&n.di.body.dst, &n.di.body.src}) {
            if (o->mode != AddrMode::kStack && o->mode != AddrMode::kInd)
                continue;
            if (o->value >= 0 && o->value < window_words)
                continue;
            if (!seen.emplace(pc, o->value).second)
                continue;
            StackIssue issue;
            issue.pc = pc;
            issue.slot = o->value;
            issue.negative = o->value < 0;
            out.push_back(issue);
        }
    }
    return out;
}

} // namespace crisp::analysis
