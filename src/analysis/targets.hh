/**
 * @file
 * Interprocedural indirect-target analysis: a value-set domain layered
 * on the absint interval lattice that proves, per indirect branch and
 * return site, a sound finite set of targets.
 *
 * The domain extends AbsState with a bounded map of absolute word
 * addresses -> exact finite value sets. The two layers are maintained
 * side by side by one transfer function: the interval layer is
 * absTransfer() unchanged; the set layer re-derives every memory write
 * with the same address discipline (provable absolute address or a
 * whole-map clobber) and evaluates ALU ops element-wise through
 * tracked sets, so `shl t,2; add t,table` keeps the exact table-slot
 * addresses where the interval hull would smear them across unaligned
 * bytes (read32 is alignment-agnostic, so the hull alone admits
 * garbage overlap words).
 *
 * Three precision sources feed the sets:
 *
 *  - immutable initial words: a may-write pre-pass over the sccp
 *    fixpoint bounds every reachable store; a word no store can reach
 *    always holds its load-image value, so jump-table entries (and any
 *    constant global) become known constants. A single store through
 *    an unprovable address degrades the whole image to mutable.
 *  - guard refinement: on a conditional edge whose flag was set by a
 *    compare against an immediate (the dense-switch `cmpGeU t,range;
 *    iftjmp default` guard, possibly spread apart), the compared
 *    location is intersected with the relation-implied interval and,
 *    when small, materialized as an exact set. Refinement walks back
 *    through single-predecessor spread code, giving up if any
 *    interposed body may write the compared word.
 *  - call-pushed return words: the caller's pushed return address
 *    flows to the callee as a singleton set; joins over call sites
 *    union them, so return target sets fall out of the same lattice.
 *
 * Join is pointwise set union capped at kValueSetCap (overflow means
 * top); widening drops every set that grew since the previous join,
 * so ascending chains are finite and the sccp worklist discipline
 * (join counter, widening threshold, step-cap all-top bail) carries
 * over unchanged.
 *
 * Soundness contract (checked end to end by torture invariant 8): for
 * every retired execution of an indirect branch, the dynamic target is
 * a member of the site's static set whenever the site is `resolved`.
 * Return sites matched through the call graph instead of the value
 * lattice assume return-word integrity and are reported, never
 * enforced.
 */

#ifndef CRISP_ANALYSIS_TARGETS_HH
#define CRISP_ANALYSIS_TARGETS_HH

#include <cstdint>
#include <map>
#include <set>

#include "absint.hh"
#include "callgraph.hh"
#include "cfg.hh"
#include "sccp.hh"
#include "sim/translate.hh"

namespace crisp::analysis
{

/** Exact values a tracked word may hold; beyond the cap it is top. */
inline constexpr std::size_t kValueSetCap = 64;

/** Tracked-set map size cap, mirroring the absint kMemCap discipline. */
inline constexpr std::size_t kValueSetMemCap = 64;

/** A finite set of word values, or top. Never empty when not top. */
struct ValueSet
{
    bool top = true;
    std::set<std::int32_t> vals;

    static ValueSet topSet() { return {}; }

    static ValueSet
    of(std::int32_t v)
    {
        return {false, {v}};
    }

    bool
    contains(std::int32_t v) const
    {
        return top || vals.count(v) != 0;
    }

    bool operator==(const ValueSet&) const = default;
};

/** Pointwise union; top if either side is top or the cap is hit. */
ValueSet joinValueSet(const ValueSet& a, const ValueSet& b);

/** How an indirect site names its target. */
enum class TargetSiteKind {
    kIndirectJump, //!< Ctl::kIndirect (switch dispatch)
    kReturn,       //!< Ctl::kRet (target popped from the stack)
};

/** Proven target set of one indirect site. */
struct SiteTargets
{
    /** Issue-point address (carrier pc when the branch is folded). */
    Addr pc = 0;
    /** Address of the branch instruction itself. */
    Addr branchPc = 0;
    TargetSiteKind kind = TargetSiteKind::kIndirectJump;

    /** True when the analysis proved a finite target set. */
    bool resolved = false;
    /** Proven targets when resolved; the fallback candidate set (the
     *  global jump-table candidates, or call-graph return sites)
     *  otherwise. */
    std::set<Addr> targets;

    /** Values the lattice proved that are *not* valid text targets
     *  (out of table / garbage words): jumping to one would fault. */
    std::size_t invalidTargets = 0;

    /** Resolved-return-only: the set came from call-graph matching,
     *  which assumes return-word integrity; report, never enforce. */
    bool fromReturnMatch = false;

    /** Sound to check dynamic targets against `targets` at retire
     *  time (torture invariant 8). */
    bool enforceable = false;

    bool singleton() const { return resolved && targets.size() == 1; }
};

/** Result of one target analysis run. */
struct TargetsResult
{
    /** Indirect sites keyed by issue-point address. */
    std::map<Addr, SiteTargets> sites;

    /** False when the step cap tripped (everything fell back to ⊤). */
    bool converged = true;
    std::uint64_t steps = 0;
    int widenings = 0;

    /** True when a store through an unprovable address forced the
     *  whole initial image mutable (no immutable-word reads). */
    bool allMutable = false;

    /** Byte ranges reachable stores may write (merged, sorted). */
    std::vector<std::pair<Addr, Addr>> mayWrite;

    /** Sites with a proven finite target set. */
    std::size_t
    resolvedCount() const
    {
        std::size_t n = 0;
        for (const auto& [pc, s] : sites)
            n += s.resolved ? 1u : 0u;
        return n;
    }

    /** Proven-singleton sites (devirtualization candidates). */
    std::size_t
    singletonCount() const
    {
        std::size_t n = 0;
        for (const auto& [pc, s] : sites)
            n += s.singleton() ? 1u : 0u;
        return n;
    }

    const SiteTargets* siteAt(Addr pc) const;
};

/**
 * Run the value-set fixpoint over @p cfg and extract per-site target
 * sets. @p sccp_result supplies the may-write pre-pass states; pass
 * the same run the caller already computed.
 */
TargetsResult analyzeTargets(const Cfg& cfg, const CallGraph& cg,
                             const SccpResult& sccp_result,
                             const AbsIntOptions& opts = {});

/**
 * Lower proven target sets into fast-engine hints (sim/translate.hh):
 * per branch address, the union of the target sets over every issue
 * point covering that branch — emitted only when all of them are
 * enforceable with no out-of-table values, so a singleton really is
 * the one possible target. (The engine guards every use at runtime
 * anyway; this filter just keeps the hints honest.) Return sites are
 * excluded — the engine's return inline caches already handle them.
 */
IndirectHints hintsFromTargets(const TargetsResult& targets);

} // namespace crisp::analysis

#endif // CRISP_ANALYSIS_TARGETS_HH
