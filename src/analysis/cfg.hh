/**
 * @file
 * Static control-flow graph over an assembled CRISP program.
 *
 * Nodes are *issue points*: the decoded (possibly folded) entries the
 * Execution Unit can ever issue from, discovered by closing the
 * program's entry point over decoded successors. Decoding reuses the
 * PDU's own FoldDecoder (decoded.hh), so fold decisions, entry
 * boundaries and Next-PC/Alternate-PC values are parcel-exact replicas
 * of what the simulator's DIC will hold — the analysis and the
 * hardware model cannot disagree about what an address decodes to,
 * only about which addresses are reachable and what holds along paths.
 *
 * Because the EU demands entries by address, the same branch parcel can
 * participate in two distinct issue points: folded into the preceding
 * carrier (reached by falling into the carrier) and as a lone-branch
 * entry (reached by a jump straight at the branch). The graph keeps
 * both, exactly like the DIC does.
 *
 * Indirect jumps (switch dispatch) are resolved against the jump-table
 * candidate set: every word-aligned data word whose value is a
 * parcel-aligned text address. This over-approximates real targets the
 * same way the linker's .table fixups under-constrain them, which is
 * the safe direction for reachability and for min-distance dataflow.
 */

#ifndef CRISP_ANALYSIS_CFG_HH
#define CRISP_ANALYSIS_CFG_HH

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "isa/program.hh"
#include "sim/decoded.hh"

namespace crisp::analysis
{

/** One issue point plus its graph neighborhood. */
struct CfgNode
{
    DecodedInst di;
    /** Successor issue-point addresses (deduplicated, sorted). */
    std::vector<Addr> succs;
    /** Predecessor issue-point addresses (deduplicated, sorted). */
    std::vector<Addr> preds;
    /** Basic block this node belongs to (index into blocks()). */
    int block = -1;
};

/** A maximal single-entry single-exit chain of issue points. */
struct CfgBlock
{
    std::vector<Addr> entries;
    std::vector<int> succs;
    std::vector<int> preds;
};

class Cfg
{
  public:
    /**
     * Build the issue-point graph of @p prog under @p policy. The Cfg
     * keeps its own copy of the program, so callers may pass a
     * temporary (AnalysisResult holds the Cfg long after the caller's
     * Program is gone).
     */
    Cfg(const Program& prog, FoldPolicy policy);

    const Program& program() const { return prog_; }
    FoldPolicy policy() const { return policy_; }

    bool has(Addr pc) const { return nodes_.count(pc) != 0; }

    /** @p pc must satisfy has(pc). */
    const CfgNode&
    node(Addr pc) const
    {
        return nodes_.at(pc);
    }

    /** All reachable issue points, ordered by address. */
    const std::map<Addr, CfgNode>& nodes() const { return nodes_; }

    const std::vector<CfgBlock>& blocks() const { return blocks_; }

    /**
     * Jump-table candidate set: every word-aligned data word naming a
     * parcel-aligned text address. Used as the successor set of every
     * indirect jump.
     */
    const std::set<Addr>& indirectTargets() const { return indTargets_; }

    /** True if at least one reachable indirect jump exists. */
    bool hasIndirect() const { return hasIndirect_; }

    /**
     * Byte ranges [first, second) of the text segment not covered by
     * any reachable issue point.
     */
    std::vector<std::pair<Addr, Addr>> unreachableRanges() const;

    /**
     * Reachable addresses that failed to decode (truncated encodings,
     * indirect conditional branches): pc plus the decoder's message.
     */
    const std::vector<std::pair<Addr, std::string>>&
    decodeErrors() const
    {
        return decodeErrors_;
    }

    /**
     * Branch targets that left the text segment or broke parcel
     * alignment: (branch entry pc, bad target).
     */
    const std::vector<std::pair<Addr, Addr>>&
    badTargets() const
    {
        return badTargets_;
    }

    /** Graphviz dump, one record per basic block. */
    std::string toDot() const;

  private:
    void discover();
    void buildBlocks();
    std::vector<Addr> successorsOf(const DecodedInst& di, Addr pc);

    Program prog_;
    FoldPolicy policy_;
    std::map<Addr, CfgNode> nodes_;
    std::vector<CfgBlock> blocks_;
    std::set<Addr> indTargets_;
    bool hasIndirect_ = false;
    std::vector<std::pair<Addr, std::string>> decodeErrors_;
    std::vector<std::pair<Addr, Addr>> badTargets_;
};

} // namespace crisp::analysis

#endif // CRISP_ANALYSIS_CFG_HH
