/**
 * @file
 * Diagnostics over the CFG + dataflow results: a machine-readable rule
 * catalogue with severities, PCs, fix hints and a JSON report.
 *
 * Rule catalogue (docs/ANALYSIS.md keeps the prose version):
 *
 *   error   cfg.decode-error        reachable address fails to decode
 *   error   cfg.bad-target          branch target outside text/unaligned
 *   error   cfg.indirect-no-table   indirect jump but no candidate set
 *   error   cc.writer-not-compare   CC-writing body is not a compare
 *   error   stack.negative-slot     stack operand below the frame
 *   warning cfg.unreachable         text bytes no issue point covers
 *   warning spread.short            cond branch may have to speculate
 *   warning cc.maybe-missing-compare cond branch before any compare
 *   warning predict.backward-not-taken  loop branch predicted not-taken
 *   warning predict.forward-taken   forward branch predicted taken
 *   warning stack.outside-window    stack slot past the cache window
 *   info    fold.lone-branch        branch occupies its own EU slot
 *   info    fold.mixed              branch both folds and issues alone
 *   info    cost.constant-cc        branch direction provably constant
 *   info    cost.dead-branch        constant branch makes code dead
 *   info    dataflow.dead-store     definition provably never observed
 *   info    dataflow.unreachable-after-constant-branch
 *                                   issue points SCCP proves unreachable
 *   info    dataflow.redundant-copy mov X,Y where X already equals Y
 *   warning indirect.out-of-table   proven target word is not a valid
 *                                   text address (jumping would fault)
 *   info    indirect.unresolved-target
 *                                   indirect site fell back to the
 *                                   global candidate set (no proof)
 *   info    callgraph.unreachable-function
 *                                   function called in text but never
 *                                   reachable from the entry
 *
 * Severity contract: errors mean the program will fault or the decode
 * contract is broken; warnings mean a paper invariant (spreading,
 * prediction, stack-cache residency) is not met; info marks missed
 * fold opportunities and abstract-interpretation/dataflow proofs.
 * crisplint exits nonzero on warnings and errors.
 */

#ifndef CRISP_ANALYSIS_CHECKS_HH
#define CRISP_ANALYSIS_CHECKS_HH

#include <memory>
#include <string>
#include <vector>

#include "callgraph.hh"
#include "cfg.hh"
#include "cost.hh"
#include "dataflow.hh"
#include "liveness.hh"
#include "reachdefs.hh"
#include "sccp.hh"
#include "targets.hh"

namespace crisp::analysis
{

enum class Severity : std::uint8_t { kInfo = 0, kWarning, kError };

std::string_view severityName(Severity s);

struct Diagnostic
{
    Severity severity = Severity::kInfo;
    Addr pc = 0;
    /** Stable rule id ("spread.short", ...). */
    std::string rule;
    std::string message;
    /** Actionable remediation, empty when none applies. */
    std::string hint;

    std::string toString() const;
};

/** Which prediction-bit convention the program claims to follow. */
enum class PredictConvention : std::uint8_t {
    kNone = 0,    //!< bits are free (generated/torture programs)
    kHeuristic,   //!< backward taken, forward not taken
    kAllNotTaken, //!< every bit clear (Table 4 case A builds)
};

struct AnalysisOptions
{
    FoldPolicy policy = FoldPolicy::kCrisp;
    PredictConvention predict = PredictConvention::kHeuristic;
    /** Stack-cache window to check operands against (config default). */
    int stackCacheWords = 32;
    /** Emit info-level fold classification diagnostics. */
    bool foldInfo = true;
    /**
     * Prediction assumption for the cost engine's constant-branch
     * refinement; must match the simulator configuration being
     * bounded (predictSourceFor maps SimConfig to this).
     */
    PredictSource costPredict = PredictSource::kStaticBit;
    /**
     * Run the sparse dataflow passes (SCCP, liveness, reaching
     * definitions), refine the cost bounds through SCCP's edge-pruned
     * fixpoint, and emit the dataflow.* rules.
     */
    bool dataflow = true;
};

/** Everything the analyzer derived, plus the diagnostics. */
struct AnalysisResult
{
    std::shared_ptr<const Cfg> cfg;
    /** Keyed by issue-point pc. */
    std::map<Addr, SpreadInfo> spread;
    /** Keyed by branch parcel pc. */
    std::map<Addr, BranchSite> sites;
    /** Abstract fixpoint over the same CFG (value/flag facts). */
    AbsIntResult absint;
    /** SCCP fixpoint (edge-pruned, at least as precise as absint). */
    SccpResult sccp;
    /** Backward liveness (valid only when options.dataflow was set). */
    LivenessResult live;
    /** Reaching definitions + def-use chains (dataflow only). */
    ReachDefsResult reachdefs;
    /** Call graph (functions, call sites, return-site matching);
     *  built only when options.dataflow is set. */
    std::shared_ptr<const CallGraph> callgraph;
    /** Per-site indirect/return target sets (dataflow only). */
    TargetsResult targets;
    /** Per-site static delay bounds derived from all of the above. */
    CostSummary cost;
    std::vector<Diagnostic> diags;

    // Aggregates (the counters the dynamic cross-check consumes).
    int staticEntries = 0;
    int staticBranchSites = 0;
    int staticCondSites = 0;
    int staticFoldedSites = 0; //!< cls kFolded or kMixed
    int staticGuaranteedCondSites = 0;
    int staticLoneSites = 0;   //!< cls kLone or kMixed

    bool hasErrors() const;
    bool hasWarnings() const;
    int count(Severity s) const;

    /** One line per diagnostic plus a summary header. */
    std::string toString() const;

    /** The full report as one JSON object (schema: docs/ANALYSIS.md). */
    std::string toJson() const;

    /** Human-readable per-site cost table (crisplint --cost,
     *  crispcc --cost-audit). */
    std::string costTableText() const;

    /** Human-readable indirect/return target-set table plus the
     *  call-graph summary (crispcc --targets). */
    std::string targetsTableText() const;

    /**
     * The diagnostics as a SARIF 2.1.0 log (one run, one artifact).
     * @p artifactUri names the analyzed input; PCs are reported as
     * region byte offsets into that artifact. Severity maps
     * error→"error", warning→"warning", info→"note".
     */
    std::string toSarif(const std::string& artifactUri) const;
};

/** Build the CFG, run every pass, produce diagnostics. */
AnalysisResult analyzeProgram(const Program& prog,
                              const AnalysisOptions& opt = {});

} // namespace crisp::analysis

#endif // CRISP_ANALYSIS_CHECKS_HH
