/**
 * @file
 * Worklist abstract interpreter over the issue-point CFG.
 */

#include "absint.hh"

#include <deque>
#include <set>

namespace crisp::analysis
{

namespace
{

/** SP lives in the unsigned 32-bit address space. */
constexpr std::int64_t kSpMax = 0xFFFFFFFFll;

Interval
spTop()
{
    return {0, kSpMax};
}

/** Shift an SP interval by a known byte delta; wrap risk means top. */
Interval
spAdd(const Interval& sp, std::int64_t delta)
{
    const Interval r{sp.lo + delta, sp.hi + delta};
    if (r.lo < 0 || r.hi > kSpMax)
        return spTop();
    return r;
}

/** Tracked-memory size cap; past it the map degrades to top. */
constexpr std::size_t kMemCap = 64;

bool
intervalGrew(const Interval& prev, const Interval& next)
{
    return next.lo < prev.lo || next.hi > prev.hi;
}

Interval
widenSp(const Interval& prev, const Interval& next)
{
    if (intervalGrew(prev, next))
        return spTop();
    return next;
}

} // namespace

AbsState
widenAbsState(const AbsState& prev, const AbsState& next, int& widenings)
{
    if (!prev.reachable)
        return next;
    AbsState w = next;
    if (intervalGrew(prev.accum, next.accum)) {
        w.accum = widenInterval(prev.accum, next.accum);
        ++widenings;
    }
    if (intervalGrew(prev.sp, next.sp)) {
        w.sp = widenSp(prev.sp, next.sp);
        ++widenings;
    }
    for (auto it = w.mem.begin(); it != w.mem.end();) {
        const auto p = prev.mem.find(it->first);
        if (p == prev.mem.end()) {
            // prev had no fact (top) here: next is narrower, fine.
            ++it;
            continue;
        }
        if (intervalGrew(p->second, it->second)) {
            ++widenings;
            it = w.mem.erase(it); // widen straight to top
        } else {
            ++it;
        }
    }
    return w;
}

namespace
{

/** One abstract machine the transfer function mutates in place. */
struct Machine
{
    AbsState st;

    Interval
    memAt(Addr a) const
    {
        const auto it = st.mem.find(a);
        return it == st.mem.end() ? Interval::top() : it->second;
    }

    void
    memSet(Addr a, const Interval& v)
    {
        if (v.isTop()) {
            st.mem.erase(a);
            return;
        }
        st.mem[a] = v;
        if (st.mem.size() > kMemCap)
            st.mem.clear();
    }

    /** Absolute byte address of a direct operand, if provable. */
    std::optional<Addr>
    address(const Operand& o) const
    {
        switch (o.mode) {
          case AddrMode::kStack: {
            const auto sp = st.sp.constant();
            if (!sp)
                return std::nullopt;
            return static_cast<Addr>(*sp) +
                   static_cast<Addr>(o.value) * kWordBytes;
          }
          case AddrMode::kAbs:
            return static_cast<Addr>(o.value);
          default:
            return std::nullopt;
        }
    }

    Interval
    read(const Operand& o) const
    {
        switch (o.mode) {
          case AddrMode::kImm:
            return Interval::of(o.value);
          case AddrMode::kAccum:
            return st.accum;
          case AddrMode::kNone:
            return Interval::of(0);
          case AddrMode::kStack:
          case AddrMode::kAbs: {
            const auto a = address(o);
            return a ? memAt(*a) : Interval::top();
          }
          case AddrMode::kInd:
            return Interval::top();
        }
        return Interval::top();
    }

    void
    write(const Operand& o, const Interval& v)
    {
        switch (o.mode) {
          case AddrMode::kAccum:
            st.accum = v;
            return;
          case AddrMode::kStack:
          case AddrMode::kAbs: {
            const auto a = address(o);
            if (a) {
                memSet(*a, v);
            } else {
                // A store through an unprovable address may clobber
                // any tracked word.
                st.mem.clear();
            }
            return;
          }
          case AddrMode::kInd:
            st.mem.clear();
            return;
          case AddrMode::kImm:
          case AddrMode::kNone:
            st.mem.clear(); // malformed writes never reach here
            return;
        }
    }
};

} // namespace

AbsState
absTransfer(const DecodedInst& di, const AbsState& in)
{
    Machine m{in};
    const Instruction& b = di.body;
    const Opcode op = b.op;

    if (di.loneBranch || op == Opcode::kNop || op == Opcode::kHalt) {
        // no body effect
    } else if (op == Opcode::kEnter) {
        m.st.sp = spAdd(m.st.sp,
                        -static_cast<std::int64_t>(b.dst.value) *
                            kWordBytes);
    } else if (op == Opcode::kLeave) {
        m.st.sp = spAdd(m.st.sp,
                        static_cast<std::int64_t>(b.dst.value) *
                            kWordBytes);
    } else if (op == Opcode::kReturn) {
        // Frame deallocation plus the return-address pop; the target
        // itself is control, not state.
        m.st.sp = spAdd(m.st.sp,
                        static_cast<std::int64_t>(b.dst.value) *
                                kWordBytes +
                            kWordBytes);
    } else if (op == Opcode::kMov) {
        m.write(b.dst, m.read(b.src));
    } else if (isCompare(op)) {
        m.st.flag = absCompare(op, m.read(b.dst), m.read(b.src));
    } else if (isAlu3(op)) {
        m.st.accum = absAlu(op, m.read(b.dst), m.read(b.src));
    } else if (isAlu2(op)) {
        m.write(b.dst, absAlu(op, m.read(b.dst), m.read(b.src)));
    }

    if (di.ctl == Ctl::kCall) {
        // This OUT models the call -> CALLEE edge only: the callee
        // entry sees the caller's state exactly (call writes no CC and
        // no accumulator), after one return-address word is pushed.
        // The call -> return-site edge must instead summarize the
        // whole unanalyzed callee body; interpret() substitutes
        // all-top on that edge at join time.
        m.st.sp = spAdd(m.st.sp, -static_cast<std::int64_t>(kWordBytes));
        if (const auto spc = m.st.sp.constant()) {
            m.memSet(static_cast<Addr>(*spc),
                     Interval::of(static_cast<std::int32_t>(
                         di.callRetPc)));
        } else {
            m.st.mem.clear(); // push through unknown sp may alias
        }
    }

    return m.st;
}

Interval
hull(const Interval& a, const Interval& b)
{
    return {a.lo < b.lo ? a.lo : b.lo, a.hi > b.hi ? a.hi : b.hi};
}

Interval
widenInterval(const Interval& prev, const Interval& next)
{
    Interval w = next;
    if (next.lo < prev.lo)
        w.lo = INT32_MIN;
    if (next.hi > prev.hi)
        w.hi = INT32_MAX;
    return w;
}

AbsState
joinState(const AbsState& a, const AbsState& b)
{
    if (!a.reachable)
        return b;
    if (!b.reachable)
        return a;
    AbsState j;
    j.reachable = true;
    j.accum = hull(a.accum, b.accum);
    j.sp = hull(a.sp, b.sp);
    j.flag.mayTrue = a.flag.mayTrue || b.flag.mayTrue;
    j.flag.mayFalse = a.flag.mayFalse || b.flag.mayFalse;
    for (const auto& [addr, va] : a.mem) {
        const auto it = b.mem.find(addr);
        if (it == b.mem.end())
            continue; // top on the other side: drop the fact
        const Interval h = hull(va, it->second);
        if (!h.isTop())
            j.mem.emplace(addr, h);
    }
    return j;
}

FlagVal
absCompare(Opcode op, const Interval& a, const Interval& b)
{
    const auto ca = a.constant();
    const auto cb = b.constant();
    if (ca && cb)
        return FlagVal::known(evalCompare(op, *ca, *cb));

    const bool disjoint = a.hi < b.lo || b.hi < a.lo;
    switch (op) {
      case Opcode::kCmpEq:
        if (disjoint)
            return FlagVal::known(false);
        break;
      case Opcode::kCmpNe:
        if (disjoint)
            return FlagVal::known(true);
        break;
      case Opcode::kCmpLt:
        if (a.hi < b.lo)
            return FlagVal::known(true);
        if (a.lo >= b.hi)
            return FlagVal::known(false);
        break;
      case Opcode::kCmpLe:
        if (a.hi <= b.lo)
            return FlagVal::known(true);
        if (a.lo > b.hi)
            return FlagVal::known(false);
        break;
      case Opcode::kCmpGt:
        if (a.lo > b.hi)
            return FlagVal::known(true);
        if (a.hi <= b.lo)
            return FlagVal::known(false);
        break;
      case Opcode::kCmpGe:
        if (a.lo >= b.hi)
            return FlagVal::known(true);
        if (a.hi < b.lo)
            return FlagVal::known(false);
        break;
      case Opcode::kCmpLtU:
      case Opcode::kCmpGeU: {
        // Unsigned order agrees with signed order when both operands
        // share a sign; a negative word is unsigned-greater than any
        // non-negative one.
        const bool a_nn = a.lo >= 0;
        const bool b_nn = b.lo >= 0;
        const bool a_neg = a.hi < 0;
        const bool b_neg = b.hi < 0;
        std::optional<bool> lt;
        if ((a_nn && b_nn) || (a_neg && b_neg)) {
            if (a.hi < b.lo)
                lt = true;
            else if (a.lo >= b.hi)
                lt = false;
        } else if (a_nn && b_neg) {
            lt = true;
        } else if (a_neg && b_nn) {
            lt = false;
        }
        if (lt)
            return FlagVal::known(op == Opcode::kCmpLtU ? *lt : !*lt);
        break;
      }
      default:
        break;
    }
    return FlagVal::top();
}

Interval
absAlu(Opcode op, const Interval& a, const Interval& b)
{
    const auto ca = a.constant();
    const auto cb = b.constant();
    if (ca && cb)
        return Interval::of(evalAlu(op, *ca, *cb));

    const auto fits = [](std::int64_t lo, std::int64_t hi) {
        return lo >= INT32_MIN && hi <= INT32_MAX;
    };

    switch (op) {
      case Opcode::kAdd:
      case Opcode::kAdd3:
        if (fits(a.lo + b.lo, a.hi + b.hi))
            return {a.lo + b.lo, a.hi + b.hi};
        break;
      case Opcode::kSub:
      case Opcode::kSub3:
        if (fits(a.lo - b.hi, a.hi - b.lo))
            return {a.lo - b.hi, a.hi - b.lo};
        break;
      case Opcode::kAnd:
      case Opcode::kAnd3:
        // A mask with one provably non-negative side bounds the result
        // regardless of the other side's sign: 0 <= (a & b) <= b when
        // b >= 0 (clearing bits never grows a non-negative word).
        if (a.lo >= 0 && b.lo >= 0)
            return {0, a.hi < b.hi ? a.hi : b.hi};
        if (b.lo >= 0)
            return {0, b.hi};
        if (a.lo >= 0)
            return {0, a.hi};
        break;
      case Opcode::kOr:
      case Opcode::kOr3:
      case Opcode::kXor:
      case Opcode::kXor3:
        if (a.lo >= 0 && b.lo >= 0) {
            // Bits above the highest set bit of either bound stay 0.
            std::int64_t m = a.hi | b.hi;
            m |= m >> 1;
            m |= m >> 2;
            m |= m >> 4;
            m |= m >> 8;
            m |= m >> 16;
            return {0, m};
        }
        break;
      case Opcode::kShl: {
        // Left shift by a constant count is monotone on non-negative
        // words while no shifted bit can reach the sign position.
        if (cb && *cb >= 0 && *cb <= 31 && a.lo >= 0 &&
            (a.hi << *cb) <= INT32_MAX) {
            return {a.lo << *cb, a.hi << *cb};
        }
        break;
      }
      case Opcode::kShr: {
        // Logical shift of the 32-bit word; a shift count provably in
        // [1, 31] bounds the result from above even when the shifted
        // word may be negative (the sign bit is shifted in as zero).
        const std::int64_t cnt_hi =
            b.lo >= 1 && b.hi <= 31 ? (0xFFFFFFFFll >> b.lo) : INT32_MAX;
        if (a.lo >= 0)
            return {0, a.hi < cnt_hi ? a.hi : cnt_hi};
        if (b.lo >= 1 && b.hi <= 31)
            return {0, cnt_hi};
        break;
      }
      case Opcode::kMul:
      case Opcode::kMul3: {
        const std::int64_t p[4] = {a.lo * b.lo, a.lo * b.hi,
                                   a.hi * b.lo, a.hi * b.hi};
        std::int64_t lo = p[0];
        std::int64_t hi = p[0];
        for (const std::int64_t v : p) {
            lo = v < lo ? v : lo;
            hi = v > hi ? v : hi;
        }
        if (fits(lo, hi))
            return {lo, hi};
        break;
      }
      case Opcode::kMov:
        return b;
      default:
        break;
    }
    return Interval::top();
}

const AbsState&
AbsIntResult::outAt(Addr pc) const
{
    static const AbsState top = AbsState::anyState();
    const auto it = out.find(pc);
    return it == out.end() ? top : it->second;
}

AbsIntResult
interpret(const Cfg& cfg, const AbsIntOptions& opts)
{
    AbsIntResult r;
    const Program& prog = cfg.program();

    for (const auto& [pc, n] : cfg.nodes()) {
        r.in.emplace(pc, AbsState{});
        r.out.emplace(pc, AbsState{});
    }

    AbsState boundary;
    boundary.reachable = true;
    boundary.accum = Interval::of(0);
    const std::int64_t sp0 =
        (prog.memBytes - kWordBytes) & ~(kWordBytes - 1);
    boundary.sp = {sp0, sp0};
    // The flag powers on false and the EU honors exactly that value
    // for a branch issued before any compare.
    boundary.flag = FlagVal::known(false);

    const bool entry_ok = cfg.has(prog.entry);
    if (!entry_ok)
        return r;

    std::deque<Addr> work{prog.entry};
    std::set<Addr> queued{prog.entry};
    std::map<Addr, int> joins;

    const std::uint64_t step_cap =
        opts.stepCap != 0
            ? opts.stepCap
            : static_cast<std::uint64_t>(cfg.nodes().size()) *
                      kAbsintStepsPerNode +
                  256;

    while (!work.empty()) {
        if (++r.steps > step_cap) {
            // Sound bail-out: every discovered issue point is concretely
            // reachable, so all-top over-approximates any fixpoint.
            r.converged = false;
            for (auto& [pc, st] : r.in)
                st = AbsState::anyState();
            for (auto& [pc, st] : r.out)
                st = AbsState::anyState();
            return r;
        }

        const Addr pc = work.front();
        work.pop_front();
        queued.erase(pc);
        const CfgNode& n = cfg.node(pc);

        AbsState i = pc == prog.entry ? boundary : AbsState{};
        for (const Addr p : n.preds) {
            const DecodedInst& pdi = cfg.node(p).di;
            const AbsState& po = r.out.at(p);
            if (pdi.ctl == Ctl::kCall && pc == pdi.callRetPc) {
                // call -> return-site edge: the callee body between
                // the two points is unanalyzed, so everything it could
                // touch (CC, accumulator, memory, even SP discipline)
                // is havocked. Reachability still flows through.
                if (po.reachable)
                    i = joinState(i, AbsState::anyState());
            } else {
                i = joinState(i, po);
            }
        }

        AbsState& in_slot = r.in.at(pc);
        if (!(i == in_slot)) {
            if (++joins[pc] > kAbsintWidenJoins)
                i = widenAbsState(in_slot, i, r.widenings);
            in_slot = i;
        }

        AbsState o;
        if (!i.reachable) {
            o = AbsState{};
        } else if (n.di.totalParcels <= 0) {
            o = i; // decode-error placeholder: no modeled effect
        } else {
            o = absTransfer(n.di, i);
        }

        AbsState& out_slot = r.out.at(pc);
        if (o == out_slot)
            continue;
        out_slot = std::move(o);
        for (const Addr s : n.succs) {
            if (queued.insert(s).second)
                work.push_back(s);
        }
    }
    return r;
}

} // namespace crisp::analysis
