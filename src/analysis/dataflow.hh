/**
 * @file
 * Worklist dataflow over the issue-point CFG, plus the concrete passes
 * the CRISP invariants need:
 *
 *  - reaching-compare analysis: for every conditional-branch issue
 *    point, the minimum number of issue slots separating it from the
 *    nearest condition-code writer on any path. The Execution Unit
 *    resolves a conditional branch at issue when no CC writer is in its
 *    three-stage pipeline, so a minimum separation of kResolveSlots
 *    issue slots proves the branch can never speculate — the Branch
 *    Spreading contract, statically;
 *  - CC def-use: conditional branches reachable with no compare ever
 *    executed (the flag still holds its power-on value);
 *  - fold-eligibility classification per branch parcel, mirroring the
 *    PDU fold policy (one-parcel-branch rule, the three-parcel call
 *    exclusion, carrier-length limits) and recording whether the branch
 *    always folds, never folds, or both depending on entry path;
 *  - stack-offset bounds: operands addressing stack slots outside the
 *    stack-cache window (guaranteed misses) or below the frame.
 */

#ifndef CRISP_ANALYSIS_DATAFLOW_HH
#define CRISP_ANALYSIS_DATAFLOW_HH

#include <cstdint>
#include <map>

#include "cfg.hh"

namespace crisp::analysis
{

/**
 * Generic forward worklist solver. @p meet folds a predecessor's OUT
 * into a node's IN; @p transfer maps (node, in) to out. Roots (nodes
 * with no predecessors) start from @p boundary; everything else starts
 * from @p top, which must be the meet identity. Runs to fixpoint;
 * @return the IN state of every node.
 */
template <class State, class Meet, class Transfer>
std::map<Addr, State>
solveForward(const Cfg& cfg, const State& boundary, const State& top,
             Meet meet, Transfer transfer)
{
    std::map<Addr, State> in;
    std::map<Addr, State> out;
    for (const auto& [pc, n] : cfg.nodes()) {
        in.emplace(pc, n.preds.empty() ? boundary : top);
        out.emplace(pc, top);
    }

    std::vector<Addr> work;
    work.reserve(cfg.nodes().size());
    for (const auto& [pc, n] : cfg.nodes())
        work.push_back(pc);
    std::set<Addr> queued(work.begin(), work.end());

    while (!work.empty()) {
        const Addr pc = work.back();
        work.pop_back();
        queued.erase(pc);
        const CfgNode& n = cfg.node(pc);

        State i = n.preds.empty() ? boundary : top;
        for (const Addr p : n.preds)
            i = meet(i, out.at(p));
        in.at(pc) = i;

        const State o = transfer(n, i);
        if (o == out.at(pc))
            continue;
        out.at(pc) = o;
        for (const Addr s : n.succs) {
            if (queued.insert(s).second)
                work.push_back(s);
        }
    }
    return in;
}

/**
 * Issue slots that must separate a CC writer from a conditional branch
 * for the branch to be provably resolved at issue: the writer occupies
 * IR, OR and RR for one cycle each, and issue is in order at one entry
 * per cycle, so three interposed issue slots put the writer past RR.
 */
inline constexpr int kResolveSlots = 3;

/** Saturation cap for the slot-distance lattice. */
inline constexpr int kSlotCap = 15;

/** Reaching-compare result for one conditional-branch issue point. */
struct SpreadInfo
{
    /** Issue point holding the branch (carrier pc when folded). */
    Addr pc = 0;
    /** Address of the conditional branch parcel itself. */
    Addr branchPc = 0;
    /**
     * Minimum issue slots between the nearest reaching CC writer and
     * this branch over all paths; kSlotCap when no compare reaches it
     * (the flag is final at issue either way). 0 for a branch folded
     * with its own compare.
     */
    int issueSlots = 0;
    /** issueSlots >= kResolveSlots: can never speculate. */
    bool guaranteedResolved = false;
    /** A path reaches this branch with no compare executed at all. */
    bool compareMayBeMissing = false;
};

/** Keyed by issue-point pc (not branch pc). */
std::map<Addr, SpreadInfo> analyzeSpread(const Cfg& cfg);

/** Why a branch parcel does not fold into a carrier. */
enum class NoFoldReason : std::uint8_t {
    kNone = 0,        //!< it folds
    kPolicyNone,      //!< FoldPolicy::kNone disables folding
    kNotOneParcel,    //!< three-parcel branch (includes every call)
    kIndirect,        //!< indirect target: never foldable
    kNoCarrier,       //!< only ever entered directly (jump target,
                      //!< first instruction, or after a control
                      //!< transfer — "a branch after a call")
    kCarrierTooLong,  //!< preceding body too long for the policy
    kCarrierControl,  //!< preceding instruction transfers control
};

std::string_view noFoldReasonName(NoFoldReason r);

/** How a branch parcel is issued across all reachable entry paths. */
enum class FoldClass : std::uint8_t {
    kFolded = 0, //!< always rides a carrier entry
    kLone,       //!< always issues as its own entry
    kMixed,      //!< both, depending on how control arrives
};

/** One static branch site (a branch parcel reachable in any form). */
struct BranchSite
{
    Addr branchPc = 0;
    Opcode op = Opcode::kJmp;
    bool conditional = false;
    bool predictTaken = false;
    bool shortForm = false;
    bool indirect = false;
    /** Static target (meaningless for indirect sites). */
    Addr takenPc = 0;
    FoldClass cls = FoldClass::kLone;
    NoFoldReason reason = NoFoldReason::kNone;
    /** Carrier issue point when cls != kLone. */
    Addr carrierPc = 0;
    /**
     * Every containing issue point is guaranteedResolved (conditional
     * sites only; vacuously false for unconditional ones).
     */
    bool guaranteedResolved = false;
};

/**
 * Collect every reachable branch site with its fold classification,
 * joining in the spread verdict per site (a mixed site is guaranteed
 * only if both its issue points are).
 */
std::map<Addr, BranchSite>
collectBranchSites(const Cfg& cfg,
                   const std::map<Addr, SpreadInfo>& spread);

/** One out-of-window (or negative) stack operand occurrence. */
struct StackIssue
{
    Addr pc = 0;
    std::int32_t slot = 0;
    bool negative = false; //!< below the frame: an outright error
};

/**
 * Scan reachable bodies for stack-slot operands outside the
 * [0, windowWords) stack-cache window.
 */
std::vector<StackIssue> analyzeStackWindow(const Cfg& cfg,
                                           int window_words);

} // namespace crisp::analysis

#endif // CRISP_ANALYSIS_DATAFLOW_HH
