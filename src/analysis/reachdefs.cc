/**
 * @file
 * Forward reaching-definitions worklist, def-use chains, and the two
 * provably-safe rewrite finders built on them.
 */

#include "reachdefs.hh"

#include <deque>

namespace crisp::analysis
{

namespace
{

/** Key-count cap; past it the map degrades to all-wild. */
constexpr std::size_t kKeyCap = 512;

std::optional<Addr>
resolve(const Operand& o, const AbsState& pre)
{
    switch (o.mode) {
      case AddrMode::kStack: {
        const auto sp = pre.sp.constant();
        if (!sp)
            return std::nullopt;
        return static_cast<Addr>(*sp) +
               static_cast<Addr>(o.value) * kWordBytes;
      }
      case AddrMode::kAbs:
        return static_cast<Addr>(o.value);
      default:
        return std::nullopt;
    }
}

RdState
joinRd(const RdState& a, const RdState& b)
{
    if (!a.reachable)
        return b;
    if (!b.reachable)
        return a;
    RdState j;
    j.reachable = true;
    j.defs = a.defs;
    for (auto& [k, set] : j.defs) {
        const auto it = b.defs.find(k);
        if (it == b.defs.end())
            set.insert(kWildDef); // missing on the other side: wild
        else
            set.insert(it->second.begin(), it->second.end());
    }
    for (const auto& [k, set] : b.defs) {
        if (j.defs.count(k))
            continue;
        auto& s = j.defs[k];
        s = set;
        s.insert(kWildDef);
    }
    if (j.defs.size() > kKeyCap)
        j.defs.clear();
    return j;
}

/** Drop every memory key: an unresolvable store may have hit any word. */
void
havocMem(RdState& s)
{
    for (auto it = s.defs.begin(); it != s.defs.end();) {
        if (it->first >= 0)
            it = s.defs.erase(it);
        else
            ++it;
    }
}

/** Forward transfer of @p di over @p in. */
RdState
transferRd(const DecodedInst& di, const RdState& in, Addr pc,
           const AbsState& pre)
{
    RdState s = in;
    const Instruction& b = di.body;
    const Opcode op = b.op;

    const auto defMem = [&](const Operand& o) {
        if (o.mode == AddrMode::kInd) {
            havocMem(s);
            return;
        }
        const auto a = resolve(o, pre);
        if (a)
            s.defs[static_cast<LocKey>(*a)] = {pc};
        else
            havocMem(s);
    };

    if (di.loneBranch || op == Opcode::kNop || op == Opcode::kHalt ||
        op == Opcode::kEnter || op == Opcode::kLeave ||
        op == Opcode::kReturn) {
        // no tracked definition
    } else if (op == Opcode::kCall) {
        const auto sp = pre.sp.constant();
        if (sp) {
            s.defs[static_cast<LocKey>(*sp) -
                   static_cast<LocKey>(kWordBytes)] = {pc};
        } else {
            havocMem(s);
        }
    } else if (op == Opcode::kMov) {
        if (b.dst.mode == AddrMode::kAccum)
            s.defs[kAccumLoc] = {pc};
        else
            defMem(b.dst);
    } else if (isCompare(op)) {
        s.defs[kFlagLoc] = {pc};
    } else if (isAlu3(op)) {
        s.defs[kAccumLoc] = {pc};
    } else if (isAlu2(op)) {
        defMem(b.dst);
    }
    if (s.defs.size() > kKeyCap)
        s.defs.clear();
    return s;
}

const AbsState&
preStateAt(const AbsIntResult& ai, Addr pc)
{
    static const AbsState top = AbsState::anyState();
    const auto it = ai.in.find(pc);
    return it == ai.in.end() ? top : it->second;
}

/** Read-only operand positions of one issue point's body. */
struct BodyReads
{
    std::vector<std::pair<const Operand*, bool>> ops; // (operand, isDst)
    bool readsAccumViaMode = false;
};

BodyReads
bodyReads(const DecodedInst& di)
{
    BodyReads r;
    if (di.loneBranch)
        return r;
    const Instruction& b = di.body;
    const Opcode op = b.op;
    if (op == Opcode::kMov) {
        r.ops.push_back({&b.src, false});
    } else if (isCompare(op) || isAlu3(op)) {
        r.ops.push_back({&b.dst, true});
        r.ops.push_back({&b.src, false});
    } else if (isAlu2(op)) {
        // dst is read too, but rewriting it would change the
        // destination: only src is a *rewritable* read.
        r.ops.push_back({&b.src, false});
    }
    return r;
}

} // namespace

ReachDefsResult
computeReachDefs(const Cfg& cfg, const AbsIntResult& ai)
{
    ReachDefsResult r;
    const Program& prog = cfg.program();

    std::map<Addr, RdState> out;
    for (const auto& [pc, n] : cfg.nodes()) {
        r.in.emplace(pc, RdState{});
        out.emplace(pc, RdState{});
    }
    if (!cfg.has(prog.entry))
        return r;

    std::deque<Addr> work{prog.entry};
    std::set<Addr> queued{prog.entry};
    const std::uint64_t step_cap =
        static_cast<std::uint64_t>(cfg.nodes().size()) *
            kAbsintStepsPerNode +
        256;
    std::uint64_t steps = 0;

    while (!work.empty()) {
        if (++steps > step_cap) {
            // Sound degradation: everything wild everywhere.
            r.converged = false;
            for (auto& [pc, s] : r.in) {
                s.reachable = true;
                s.defs.clear();
            }
            r.defUses.clear();
            return r;
        }

        const Addr pc = work.front();
        work.pop_front();
        queued.erase(pc);
        const CfgNode& n = cfg.node(pc);

        RdState i;
        if (pc == prog.entry)
            i.reachable = true;
        for (const Addr p : n.preds) {
            const DecodedInst& pdi = cfg.node(p).di;
            const RdState& po = out.at(p);
            if (pdi.ctl == Ctl::kCall && pc == pdi.callRetPc) {
                // Havocked return edge: reachability only.
                RdState wild;
                wild.reachable = po.reachable;
                i = joinRd(i, wild);
            } else {
                i = joinRd(i, po);
            }
        }
        r.in.at(pc) = i;

        RdState o;
        if (!i.reachable)
            o = RdState{};
        else if (n.di.totalParcels <= 0)
            o = i;
        else
            o = transferRd(n.di, i, pc, preStateAt(ai, pc));

        RdState& slot = out.at(pc);
        if (o == slot)
            continue;
        slot = std::move(o);
        for (const Addr s : n.succs) {
            if (queued.insert(s).second)
                work.push_back(s);
        }
    }

    // Def-use chains over the fixpoint.
    for (const auto& [pc, n] : cfg.nodes()) {
        const RdState& i = r.in.at(pc);
        if (!i.reachable || n.di.totalParcels <= 0)
            continue;
        const AbsState& pre = preStateAt(ai, pc);
        const auto use = [&](LocKey k) {
            for (const Addr d : i.defsOf(k)) {
                if (d != kWildDef)
                    r.defUses[d].insert(pc);
            }
        };
        for (const auto& [op, is_dst] : bodyReads(n.di).ops) {
            switch (op->mode) {
              case AddrMode::kAccum:
                use(kAccumLoc);
                break;
              case AddrMode::kStack:
              case AddrMode::kAbs:
                if (const auto a = resolve(*op, pre))
                    use(static_cast<LocKey>(*a));
                break;
              default:
                break;
            }
        }
        if (n.di.hasCondBranch()) {
            // The branch reads the flag *after* the body.
            if (!n.di.loneBranch && isCompare(n.di.body.op))
                r.defUses[pc].insert(pc);
            else
                use(kFlagLoc);
        }
    }
    return r;
}

std::vector<ConstUse>
findConstPropUses(const Cfg& cfg, const ReachDefsResult& rd,
                  const AbsIntResult& ai)
{
    std::vector<ConstUse> uses;
    for (const auto& [pc, n] : cfg.nodes()) {
        const auto iit = rd.in.find(pc);
        if (iit == rd.in.end() || !iit->second.reachable ||
            n.di.totalParcels <= 0) {
            continue;
        }
        const AbsState& pre = preStateAt(ai, pc);
        for (const auto& [op, is_dst] : bodyReads(n.di).ops) {
            if (op->mode != AddrMode::kStack &&
                op->mode != AddrMode::kAbs) {
                continue;
            }
            const auto a = resolve(*op, pre);
            if (!a)
                continue;
            const std::set<Addr> ds =
                iit->second.defsOf(static_cast<LocKey>(*a));
            if (ds.size() != 1 || *ds.begin() == kWildDef)
                continue;
            const Addr d = *ds.begin();
            if (!cfg.has(d))
                continue;
            const DecodedInst& ddi = cfg.node(d).di;
            if (ddi.loneBranch || ddi.body.op != Opcode::kMov ||
                ddi.body.src.mode != AddrMode::kImm) {
                continue;
            }
            const auto da = resolve(ddi.body.dst, preStateAt(ai, d));
            if (!da || *da != *a)
                continue;
            uses.push_back({pc, is_dst, ddi.body.src.value, d});
        }
    }
    return uses;
}

std::vector<RedundantCopy>
findRedundantCopies(const Cfg& cfg, const ReachDefsResult& rd,
                    const AbsIntResult& ai)
{
    std::vector<RedundantCopy> found;
    for (const auto& [pc, n] : cfg.nodes()) {
        const auto iit = rd.in.find(pc);
        if (iit == rd.in.end() || !iit->second.reachable ||
            n.di.totalParcels <= 0 || n.di.loneBranch ||
            n.di.body.op != Opcode::kMov) {
            continue;
        }
        const Instruction& b = n.di.body;
        const AbsState& pre = preStateAt(ai, pc);
        const auto a = resolve(b.dst, pre);
        const auto bb = resolve(b.src, pre);
        if (!a || !bb || *a == *bb)
            continue;

        // The reaching definition of the destination must be a copy
        // between the same two words...
        const std::set<Addr> ds =
            iit->second.defsOf(static_cast<LocKey>(*a));
        std::optional<Addr> cand;
        if (ds.size() == 1 && *ds.begin() != kWildDef)
            cand = *ds.begin();

        // ...and, to rule out a redefinition of the source anywhere
        // between, the copy must sit in the same single-entry chain:
        // walk unique predecessors, crossing only issue points that
        // disturb neither word. This covers every path because each
        // crossed node is its successor's only way in.
        Addr cur = pc;
        for (int depth = 0; depth < 64; ++depth) {
            const CfgNode& cn = cfg.node(cur);
            if (cn.preds.size() != 1)
                break;
            const Addr p = cn.preds[0];
            if (!cfg.has(p))
                break;
            const CfgNode& pn = cfg.node(p);
            const DecodedInst& pdi = pn.di;
            if (pdi.ctl == Ctl::kCall && cur == pdi.callRetPc)
                break; // havocked return edge
            if (pdi.totalParcels <= 0)
                break;
            const Instruction& pb = pdi.body;
            const bool is_inst = !pdi.loneBranch;
            if (is_inst && pb.op == Opcode::kMov) {
                const AbsState& ppre = preStateAt(ai, p);
                const auto pd = resolve(pb.dst, ppre);
                const auto ps = resolve(pb.src, ppre);
                if (pd && ps &&
                    ((*pd == *a && *ps == *bb) ||
                     (*pd == *bb && *ps == *a))) {
                    if (!cand || *cand == p)
                        found.push_back({pc, p});
                    break;
                }
            }
            if (is_inst &&
                (pb.op == Opcode::kMov || isAlu2(pb.op) ||
                 pb.op == Opcode::kCall)) {
                // Does it disturb either word? Unresolved or indirect
                // stores might; resolved stores to other words do not.
                if (pb.op == Opcode::kCall)
                    break;
                const AbsState& ppre = preStateAt(ai, p);
                if (pb.dst.mode == AddrMode::kInd)
                    break;
                const auto pd = resolve(pb.dst, ppre);
                if (pb.dst.mode != AddrMode::kAccum &&
                    (!pd || *pd == *a || *pd == *bb)) {
                    break;
                }
            }
            cur = p;
        }
    }
    return found;
}

} // namespace crisp::analysis
