/**
 * @file
 * Static branch-cost engine: a per-site delay interval, in cycles, that
 * every dynamic execution of the site must fall inside.
 *
 * The delay of one dynamic branch execution is what the simulator
 * reports in BranchEvent::delayCycles: 0 when resolved at issue or
 * correctly predicted, the paper's 3/2/1 mispredict staircase keyed by
 * the stage the branch occupies when its compare retires, and exactly 2
 * for an indirect jump's retirement-read target bubbles.
 *
 * Per-site cost lattice (docs/TIMING.md gives the derivation):
 *
 *   site kind                          bound [lo, hi]
 *   ---------------------------------  --------------
 *   direct unconditional (jmp, call)   [0, 0]   Next-PC redirect
 *   indirect jump                      [2, 2]   target read at retire
 *   indirect jump, unreachable         [0, 0]   vacuous: never retires
 *   conditional, spread-guaranteed     [0, 0]   can never speculate
 *   conditional, folded, min spread d  [0, 3 - min(d, 3)]
 *   conditional, lone (not guaranteed) [0, 3]   verified in its own RR
 *   conditional, mixed                 max over both issue points
 *
 * An indirect site whose issue points the edge-pruned fixpoint proves
 * unreachable collapses to a vacuous [0, 0] — it can never retire, so
 * the bound holds over the empty set of executions, exactly like an
 * unreachable conditional site. A *reachable* indirect site always
 * costs exactly 2 dynamically; making one cheaper requires rewriting
 * it to a direct branch (crispcc -O devirtualization, fed by the
 * target-set analysis whose verdicts SiteCost carries as metadata).
 *
 * Refinement: when the abstract interpreter proves the flag constant at
 * every issue point of a conditional site AND the hardware prediction
 * is statically known to agree (static-bit predictor with a matching
 * bit, or a predict-not-taken machine at a never-taken branch), the
 * site can never mispredict and the bound collapses to [0, 0].
 *
 * Soundness rests on two monotonicities: the static minimum spread
 * distance under-approximates every dynamic compare/branch separation,
 * and the staircase delay is non-increasing in that separation. The
 * oracle (oracle.hh) holds every retired BranchEvent and the SimStats
 * delay total inside these bounds on every torture run.
 */

#ifndef CRISP_ANALYSIS_COST_HH
#define CRISP_ANALYSIS_COST_HH

#include <map>
#include <set>

#include "absint.hh"
#include "dataflow.hh"
#include "sim/config.hh"

namespace crisp::analysis
{

struct TargetsResult;

/** What the analyzer may assume about the issue-time prediction. */
enum class PredictSource : std::uint8_t {
    kStaticBit = 0, //!< EU honors the compiler bit (CRISP hardware)
    kNotTaken,      //!< respectPredictionBit off: always predict fall
    kUnknown,       //!< dynamic predictor: assume nothing
};

std::string_view predictSourceName(PredictSource s);

/** The assumption matching one simulator configuration. */
PredictSource predictSourceFor(const SimConfig& cfg);

/** Inclusive delay interval in cycles. */
struct DelayBound
{
    int lo = 0;
    int hi = 3;

    bool
    contains(int d) const
    {
        return lo <= d && d <= hi;
    }

    bool operator==(const DelayBound&) const = default;
};

/** Static cost verdict for one branch site. */
struct SiteCost
{
    Addr branchPc = 0;
    bool conditional = false;
    bool indirect = false;

    DelayBound bound;

    /** Minimum spread distance over the site's issue points
     *  (kSlotCap when the site is unconditional). */
    int minSpreadSlots = 0;

    /** The abstract interpreter proved the flag constant at every
     *  issue point, with one agreed direction. */
    bool constantDirection = false;
    /** The proven direction (valid when constantDirection). */
    bool alwaysTaken = false;
    /** The constant direction provably matches the prediction, so the
     *  site can never mispredict (this is what collapses hi to 0). */
    bool predictionProvablyCorrect = false;

    // Indirect-site target metadata (valid when `indirect`, and only
    // when a TargetsResult was supplied to computeCost).
    /** The target analysis proved a finite target set for the site. */
    bool targetResolved = false;
    /** Size of the proven (or fallback) target set. */
    std::size_t targetCount = 0;
    /** Exactly one proven target: crispcc -O can devirtualize the
     *  site into a direct branch, dropping its cost from 2 to 0. */
    bool targetSingleton = false;
};

/** Whole-program cost summary. */
struct CostSummary
{
    /** Keyed by branch parcel pc, mirroring AnalysisResult::sites. */
    std::map<Addr, SiteCost> sites;

    /** The prediction assumption the refinement used. */
    PredictSource predict = PredictSource::kStaticBit;

    /** True when the abstract fixpoint converged (it always stays
     *  sound; this only gates precision-dependent reporting). */
    bool absintConverged = true;

    // Site counts by verdict.
    int constantSites = 0;
    int zeroDelaySites = 0; //!< hi == 0: provably free
    int maxDelayPerSite = 0; //!< max hi over all sites

    const SiteCost* find(Addr branch_pc) const;
};

/**
 * Derive per-site delay bounds from the spread dataflow, the branch
 * site classification and the abstract fixpoint, under prediction
 * assumption @p predict. @p targets, when non-null, annotates
 * indirect sites with their proven target sets (metadata only; the
 * enforced bound never depends on it).
 */
CostSummary computeCost(const Cfg& cfg,
                        const std::map<Addr, SpreadInfo>& spread,
                        const std::map<Addr, BranchSite>& sites,
                        const AbsIntResult& ai, PredictSource predict,
                        const TargetsResult* targets = nullptr);

/**
 * Issue points that become unreachable once every provably-constant
 * conditional branch is pruned to its live edge — the targets the
 * cost.dead-branch rule reports. Keyed set of dead node addresses.
 */
std::set<Addr> deadAfterConstantPruning(const Cfg& cfg,
                                        const AbsIntResult& ai);

} // namespace crisp::analysis

#endif // CRISP_ANALYSIS_COST_HH
