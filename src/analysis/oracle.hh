/**
 * @file
 * Static-vs-dynamic cross-check: the analyzer as a pre-simulation
 * oracle.
 *
 * The CFG over-approximates reachability and the spread pass
 * under-approximates compare/branch separation, so on any run of the
 * cycle-level simulator the following must hold:
 *
 *  1. every retired branch pc is a static branch site;
 *  2. a site classified kFolded only ever issues folded, a kLone site
 *     only ever issues alone (kMixed may do either);
 *  3. per-event conditional/short-form/prediction-bit annotations match
 *     the static site exactly (decode is shared, so any disagreement is
 *     a real bug in one of the two decoders' callers);
 *  4. a spread-guaranteed conditional site never speculates: every one
 *     of its executions resolved at issue;
 *  5. the per-site event counts reconcile with the aggregate SimStats
 *     counters (branches, foldedBranches, condBranches,
 *     resolvedAtIssue + speculated);
 *  6. every dynamic indirect-jump target is in the static jump-table
 *     candidate set;
 *  7. COST BOUNDS: every observed BranchEvent::delayCycles lies inside
 *     the site's static delay interval (cost.hh), a constant-direction
 *     proof is never contradicted by an execution, the per-site delay
 *     sums reconcile exactly with SimStats::branchDelayCycles, and
 *     that total lies inside the whole-program envelope
 *     [sum lo*n, sum hi*n]. Bound escapes are reported separately in
 *     costViolations so torture can shrink them as their own verdict.
 *  8. TARGET SETS: every dynamic target of an indirect jump is a
 *     member of the site's *per-site* proven target set
 *     (targets.hh), whenever every issue point covering the branch
 *     proved an enforceable set. Unproven sites fall back to
 *     invariant 6's global candidate check; return sites matched
 *     through the call graph are never enforced (they assume
 *     return-word integrity). Escapes land in targetViolations so
 *     torture can shrink them as their own verdict.
 *
 * crisptorture runs this after every lockstep seed ("static-mismatch",
 * "cost-bound" and "target-set" verdicts); the 200-seed regression
 * test runs it under asan/ubsan.
 */

#ifndef CRISP_ANALYSIS_ORACLE_HH
#define CRISP_ANALYSIS_ORACLE_HH

#include <cstdint>
#include <set>

#include "checks.hh"
#include "interp/trace.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace crisp::analysis
{

/** Dynamic per-branch-site counters accumulated over one run. */
struct SiteCounts
{
    std::uint64_t total = 0;
    std::uint64_t folded = 0;
    std::uint64_t lone = 0;
    std::uint64_t cond = 0;
    std::uint64_t taken = 0;
    std::uint64_t resolvedAtIssue = 0;
    bool sawConditional = false;
    bool sawUnconditional = false;
    bool predictTaken = false;
    bool shortForm = false;

    /** Observed branch-delay cycles across this site's executions. */
    std::uint64_t delaySum = 0;
    int delayMin = 0;
    int delayMax = 0;
};

/** Observer that aggregates simulator branch events per site. */
class SiteRecorder : public ExecObserver
{
  public:
    void
    onBranch(const BranchEvent& ev) override
    {
        SiteCounts& c = sites[ev.pc];
        const int d = static_cast<int>(ev.delayCycles);
        if (c.total == 0) {
            c.delayMin = d;
            c.delayMax = d;
        } else {
            c.delayMin = d < c.delayMin ? d : c.delayMin;
            c.delayMax = d > c.delayMax ? d : c.delayMax;
        }
        c.delaySum += static_cast<std::uint64_t>(d);
        ++c.total;
        if (ev.folded)
            ++c.folded;
        else
            ++c.lone;
        if (ev.conditional) {
            ++c.cond;
            c.sawConditional = true;
            if (ev.resolvedAtIssue)
                ++c.resolvedAtIssue;
        } else {
            c.sawUnconditional = true;
        }
        if (ev.taken)
            ++c.taken;
        c.predictTaken = ev.predictTaken;
        c.shortForm = ev.shortForm;
        if (ev.op == Opcode::kJmp && !ev.shortForm)
            jumpTargets[ev.pc].insert(ev.target);
    }

    /** Keyed by branch pc. */
    std::map<Addr, SiteCounts> sites;
    /** Runtime targets of each far (possibly indirect) jump. */
    std::map<Addr, std::set<Addr>> jumpTargets;
};

/** Outcome of one static-vs-dynamic comparison. */
struct OracleReport
{
    /** Checks were actually applied (analysis was error-free). */
    bool applicable = true;
    std::vector<std::string> mismatches;

    /** Static delay-bound escapes (invariant 7); kept apart from the
     *  structural mismatches so torture reports them as their own
     *  verdict. */
    std::vector<std::string> costViolations;

    /** Proven-target-set escapes (invariant 8); their own vector so
     *  torture can shrink them as their own verdict, too. */
    std::vector<std::string> targetViolations;

    bool
    ok() const
    {
        return mismatches.empty() && costViolations.empty() &&
               targetViolations.empty();
    }

    /** One line per mismatch / cost violation. */
    std::string toString() const;
};

/**
 * Compare an error-free analysis of a program with the dynamic record
 * of one simulator run over that same program and fold policy. When
 * @p st has error-level diagnostics the invariants are not claimed and
 * the report comes back not applicable.
 */
OracleReport crossCheck(const AnalysisResult& st, const SimStats& dyn,
                        const SiteRecorder& rec);

/**
 * Convenience wrapper: analyze @p prog under @p cfg's fold policy, run
 * the cycle-level simulator once with a SiteRecorder attached, and
 * cross-check. Prediction-bit conventions are not assumed (generated
 * programs carry arbitrary bits). Runs that fault or time out are
 * reported not applicable.
 */
OracleReport runStaticOracle(const Program& prog, const SimConfig& cfg);

} // namespace crisp::analysis

#endif // CRISP_ANALYSIS_ORACLE_HH
