/**
 * @file
 * Translation validator: cost monotonicity + observable equivalence.
 */

#include "tv.hh"

#include <sstream>

#include "checks.hh"
#include "interp/interpreter.hh"

namespace crisp::analysis
{

namespace
{

std::size_t
countInstructions(const Program& prog)
{
    std::size_t n = 0;
    Addr pc = prog.textBase;
    while (pc < prog.textEnd()) {
        const int len = instructionLength(prog.parcelAt(pc));
        if (len <= 0)
            break;
        pc += static_cast<Addr>(len) * kParcelBytes;
        ++n;
    }
    return n;
}

/** SCCP-refined per-site bounds for one side of the pair. */
AnalysisResult
analyzeSide(const Program& prog)
{
    AnalysisOptions opts;
    opts.predict = PredictConvention::kNone; // bounds only, no lint
    opts.foldInfo = false;
    opts.costPredict = PredictSource::kStaticBit;
    return analyzeProgram(prog, opts);
}

std::string
globalNameAt(const Program& prog, Addr a)
{
    for (const auto& [name, sym] : prog.symbols) {
        if (sym.kind == Symbol::Kind::kGlobal && sym.value == a)
            return name;
    }
    return "";
}

/** Load-image data word (little-endian) at @p a, if fully in data. */
std::optional<Word>
initialDataWord(const Program& prog, Addr a)
{
    if (a < prog.dataBase ||
        a + kWordBytes > prog.dataBase + prog.data.size()) {
        return std::nullopt;
    }
    const std::size_t off = a - prog.dataBase;
    return static_cast<Word>(prog.data[off]) |
           (static_cast<Word>(prog.data[off + 1]) << 8) |
           (static_cast<Word>(prog.data[off + 2]) << 16) |
           (static_cast<Word>(prog.data[off + 3]) << 24);
}

/** Does some label map @p want in before to @p got in after? */
bool
relocatedLabel(const Program& before, const Program& after, Word want,
               Word got)
{
    for (const auto& [name, sym] : before.symbols) {
        if (sym.kind != Symbol::Kind::kLabel || sym.value != want)
            continue;
        const auto it = after.symbols.find(name);
        if (it != after.symbols.end() &&
            it->second.kind == Symbol::Kind::kLabel &&
            it->second.value == got) {
            return true;
        }
    }
    return false;
}

} // namespace

TvReport
validateRewrite(const Program& before, const Program& after,
                const std::vector<std::pair<Addr, Addr>>& sitePairs,
                const TvOptions& opts)
{
    TvReport r;
    const auto fail = [&](const std::string& what) {
        r.ok = false;
        r.problems.push_back(what);
    };

    // 1. Static instruction count must not grow.
    r.instrBefore = countInstructions(before);
    r.instrAfter = countInstructions(after);
    if (r.instrAfter > r.instrBefore) {
        std::ostringstream os;
        os << "tv: instruction count grew " << r.instrBefore << " -> "
           << r.instrAfter;
        fail(os.str());
    }

    // 2./3. Per-site and whole-envelope cost monotonicity.
    const AnalysisResult ab = analyzeSide(before);
    const AnalysisResult aa = analyzeSide(after);
    for (const auto& [pc, c] : ab.cost.sites)
        r.envelopeHiBefore += static_cast<std::uint64_t>(c.bound.hi);
    for (const auto& [pc, c] : aa.cost.sites)
        r.envelopeHiAfter += static_cast<std::uint64_t>(c.bound.hi);

    for (const auto& [bpc, apc] : sitePairs) {
        const SiteCost* cb = ab.cost.find(bpc);
        const SiteCost* ca = aa.cost.find(apc);
        if (cb == nullptr || ca == nullptr) {
            std::ostringstream os;
            os << "tv: matched site pair " << bpc << " -> " << apc
               << " missing from the " << (cb == nullptr ? "before" : "after")
               << " cost table";
            fail(os.str());
            continue;
        }
        ++r.sitesMatched;
        if (ca->bound.hi > cb->bound.hi) {
            std::ostringstream os;
            os << "tv: site " << bpc << " -> " << apc
               << " delay bound worsened [" << cb->bound.lo << ","
               << cb->bound.hi << "] -> [" << ca->bound.lo << ","
               << ca->bound.hi << "]";
            fail(os.str());
        } else if (ca->bound.hi < cb->bound.hi) {
            ++r.sitesImproved;
        }
    }
    if (r.envelopeHiAfter > r.envelopeHiBefore) {
        std::ostringstream os;
        os << "tv: cost envelope grew " << r.envelopeHiBefore << " -> "
           << r.envelopeHiAfter;
        fail(os.str());
    }

    // 4. Observable equivalence: accumulator + SP + data segment.
    if (!opts.semantic)
        return r;
    if (before.data.size() != after.data.size() ||
        before.dataBase != after.dataBase) {
        fail("tv: data segment layout changed");
        return r;
    }
    Interpreter ib(before);
    ib.run(opts.maxSteps);
    if (!ib.halted()) {
        r.notes.push_back(
            "tv: equivalence inconclusive (before side exceeded the "
            "step budget)");
        return r;
    }
    Interpreter ia(after);
    ia.run(opts.maxSteps);
    if (!ia.halted()) {
        // The rewrite only removes or simplifies work, so the after
        // side halting later than the budget that sufficed before is a
        // genuine divergence.
        fail("tv: after side did not halt within the step budget that "
             "sufficed for the before side");
        return r;
    }
    r.semanticChecked = true;
    if (ia.accum() != ib.accum()) {
        std::ostringstream os;
        os << "tv: accumulator diverged: expected " << ib.accum()
           << ", got " << ia.accum();
        r.counterexample = os.str();
        fail(os.str());
        return r;
    }
    if (ia.sp() != ib.sp()) {
        std::ostringstream os;
        os << "tv: SP diverged: expected " << ib.sp() << ", got "
           << ia.sp();
        r.counterexample = os.str();
        fail(os.str());
        return r;
    }
    for (Addr a = before.dataBase;
         a + kWordBytes <=
         before.dataBase + static_cast<Addr>(before.data.size());
         a += kWordBytes) {
        const Word want = ib.memory().read32(a);
        const Word got = ia.memory().read32(a);
        if (want == got)
            continue;
        // Jump-table entries are relocated case-label addresses: a
        // rewrite that moves text legitimately changes the stored
        // word. Accept the difference only when the word is untouched
        // on both sides (final value == its own load image) and the
        // two values name the same label in their respective symbol
        // tables — a relocated constant, not a divergence. A dropped
        // store can never slip through: the before side's final value
        // would differ from its load image.
        const auto w0 = initialDataWord(before, a);
        const auto w1 = initialDataWord(after, a);
        if (w0 && w1 && want == *w0 && got == *w1 &&
            relocatedLabel(before, after, want, got)) {
            continue;
        }
        std::ostringstream os;
        os << "tv: data word @" << a;
        const std::string name = globalNameAt(before, a);
        if (!name.empty())
            os << " (" << name << ")";
        os << " diverged: expected " << want << ", got " << got;
        r.counterexample = os.str();
        fail(os.str());
        return r;
    }
    return r;
}

} // namespace crisp::analysis
