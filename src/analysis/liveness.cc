/**
 * @file
 * Backward liveness worklist with absint-resolved memory operands.
 */

#include "liveness.hh"

#include <deque>

namespace crisp::analysis
{

MemLive
joinMemLive(const MemLive& a, const MemLive& b)
{
    MemLive j;
    if (!a.all && !b.all) {
        j.words = a.words;
        j.words.insert(b.words.begin(), b.words.end());
        return j;
    }
    j.all = true;
    if (a.all && b.all) {
        // Union of two co-sets: dead only where both sides agree.
        for (const Addr w : a.words) {
            if (b.words.count(w))
                j.words.insert(w);
        }
        return j;
    }
    // co-set ∪ finite set: dead words minus the finite live words.
    const MemLive& co = a.all ? a : b;
    const MemLive& fin = a.all ? b : a;
    for (const Addr w : co.words) {
        if (fin.words.count(w) == 0)
            j.words.insert(w);
    }
    return j;
}

namespace
{

LiveSet
joinLive(const LiveSet& a, const LiveSet& b)
{
    LiveSet j;
    j.accum = a.accum || b.accum;
    j.flag = a.flag || b.flag;
    j.mem = joinMemLive(a.mem, b.mem);
    return j;
}

/** All-live: the sound degradation when the step cap trips. */
LiveSet
allLive()
{
    LiveSet s;
    s.accum = true;
    s.flag = true;
    s.mem.genAll();
    return s;
}

/** One node's backward transfer, parameterized on absint SP facts. */
struct Xfer
{
    LiveSet s;
    const AbsState& pre; // absint IN state: operands evaluate against it

    std::optional<Addr>
    address(const Operand& o) const
    {
        switch (o.mode) {
          case AddrMode::kStack: {
            const auto sp = pre.sp.constant();
            if (!sp)
                return std::nullopt;
            return static_cast<Addr>(*sp) +
                   static_cast<Addr>(o.value) * kWordBytes;
          }
          case AddrMode::kAbs:
            return static_cast<Addr>(o.value);
          default:
            return std::nullopt;
        }
    }

    void
    genRead(const Operand& o)
    {
        switch (o.mode) {
          case AddrMode::kImm:
          case AddrMode::kNone:
            return;
          case AddrMode::kAccum:
            s.accum = true;
            return;
          case AddrMode::kStack:
          case AddrMode::kAbs: {
            const auto a = address(o);
            if (a)
                s.mem.gen(*a);
            else
                s.mem.genAll();
            return;
          }
          case AddrMode::kInd:
            // Reads the pointer slot and an unknown target word.
            s.mem.genAll();
            return;
        }
    }

    void
    killWrite(const Operand& o)
    {
        switch (o.mode) {
          case AddrMode::kAccum:
            s.accum = false;
            return;
          case AddrMode::kStack:
          case AddrMode::kAbs: {
            // A kill must be definite: unresolved writes kill nothing.
            const auto a = address(o);
            if (a)
                s.mem.kill(*a);
            return;
          }
          case AddrMode::kInd: {
            // Target unknown (kills nothing), but the pointer slot is
            // read to form the address.
            const auto sp = pre.sp.constant();
            if (sp) {
                s.mem.gen(static_cast<Addr>(*sp) +
                          static_cast<Addr>(o.value) * kWordBytes);
            } else {
                s.mem.genAll();
            }
            return;
          }
          case AddrMode::kImm:
          case AddrMode::kNone:
            return;
        }
    }
};

/** Live-in of @p di given live-out @p out and absint pre-state. */
LiveSet
transferBack(const DecodedInst& di, const LiveSet& out,
             const AbsState& pre)
{
    Xfer x{out, pre};

    // Control part first (it executes after the body).
    if (di.hasCondBranch())
        x.s.flag = true;
    if (di.ctl == Ctl::kIndirect)
        x.s.mem.genAll(); // jump-table word read through a pointer

    const Instruction& b = di.body;
    const Opcode op = b.op;
    if (di.loneBranch || op == Opcode::kNop || op == Opcode::kHalt ||
        op == Opcode::kEnter || op == Opcode::kLeave) {
        // no data effect
    } else if (op == Opcode::kReturn) {
        // Pops the return word at sp + frameWords * 4.
        const auto sp = pre.sp.constant();
        if (sp) {
            x.s.mem.gen(static_cast<Addr>(*sp) +
                        static_cast<Addr>(b.dst.value) * kWordBytes);
        } else {
            x.s.mem.genAll();
        }
    } else if (op == Opcode::kCall) {
        // Pushes the return word at sp - 4: a definite write when
        // resolved, so the slot's prior value dies here.
        const auto sp = pre.sp.constant();
        if (sp)
            x.s.mem.kill(static_cast<Addr>(*sp) - kWordBytes);
    } else if (op == Opcode::kMov) {
        x.killWrite(b.dst);
        x.genRead(b.src);
    } else if (isCompare(op)) {
        x.s.flag = false;
        x.genRead(b.dst);
        x.genRead(b.src);
    } else if (isAlu3(op)) {
        x.s.accum = false;
        x.genRead(b.dst);
        x.genRead(b.src);
    } else if (isAlu2(op)) {
        x.killWrite(b.dst);
        x.genRead(b.dst);
        x.genRead(b.src);
    }
    return x.s;
}

} // namespace

const LiveSet&
LivenessResult::outAt(Addr pc) const
{
    static const LiveSet all = allLive();
    const auto it = out.find(pc);
    return it == out.end() ? all : it->second;
}

LivenessResult
computeLiveness(const Cfg& cfg, const AbsIntResult& ai)
{
    LivenessResult r;
    const Program& prog = cfg.program();

    // Observable at exit: the accumulator and every data-segment word.
    // Stack slots are frame-local by the observability contract shared
    // with tv.cc; text words are excluded from *dead-store reporting*
    // below instead of being carried in every set.
    LiveSet boundary;
    boundary.accum = true;
    for (Addr a = prog.dataBase;
         a < prog.dataBase + static_cast<Addr>(prog.data.size());
         a += kWordBytes) {
        boundary.mem.gen(a);
    }

    const auto reachable = [&](Addr pc) {
        const auto it = ai.in.find(pc);
        return it == ai.in.end() || it->second.reachable;
    };
    const auto preState = [&](Addr pc) -> const AbsState& {
        static const AbsState top = AbsState::anyState();
        const auto it = ai.in.find(pc);
        return it == ai.in.end() ? top : it->second;
    };

    std::deque<Addr> work;
    std::set<Addr> queued;
    for (const auto& [pc, n] : cfg.nodes()) {
        r.in.emplace(pc, LiveSet{});
        r.out.emplace(pc, LiveSet{});
        // Seed back-to-front: roughly one sweep to a fixpoint.
        work.push_front(pc);
        queued.insert(pc);
    }

    const std::uint64_t step_cap =
        static_cast<std::uint64_t>(cfg.nodes().size()) *
            kAbsintStepsPerNode +
        256;
    std::uint64_t steps = 0;

    while (!work.empty()) {
        if (++steps > step_cap) {
            // Sound degradation: everything live, nothing dead.
            r.converged = false;
            r.dead.clear();
            for (auto& [pc, s] : r.in)
                s = allLive();
            for (auto& [pc, s] : r.out)
                s = allLive();
            return r;
        }

        const Addr pc = work.front();
        work.pop_front();
        queued.erase(pc);
        const CfgNode& n = cfg.node(pc);

        // Abstractly-unreachable nodes (SCCP-pruned arms) never
        // execute; they contribute no liveness and are left empty.
        if (!reachable(pc))
            continue;

        LiveSet o = n.succs.empty() ? boundary : LiveSet{};
        for (const Addr s : n.succs)
            o = joinLive(o, r.in.at(s));

        r.out.at(pc) = o;
        LiveSet i;
        if (n.di.totalParcels <= 0)
            i = o; // decode-error placeholder
        else
            i = transferBack(n.di, o, preState(pc));

        LiveSet& in_slot = r.in.at(pc);
        if (i == in_slot)
            continue;
        in_slot = std::move(i);
        for (const Addr p : n.preds) {
            if (queued.insert(p).second)
                work.push_back(p);
        }
    }

    // Dead-definition report: reachable nodes whose only effect is
    // provably unobservable. Text-segment stores are never reported
    // (self-modifying code is observable through fetch).
    for (const auto& [pc, n] : cfg.nodes()) {
        if (!reachable(pc) || n.di.totalParcels <= 0 ||
            n.di.loneBranch || n.di.ctl == Ctl::kIndirect) {
            continue;
        }
        const Instruction& b = n.di.body;
        const LiveSet& lo = r.out.at(pc);
        if (isCompare(b.op)) {
            // A folded branch in this same entry reads the flag the
            // compare just set; live-out alone would miss that.
            if (!lo.flag && !n.di.hasCondBranch())
                r.dead.push_back({pc, DeadKind::kCompare, 0});
            continue;
        }
        const bool to_accum =
            isAlu3(b.op) ||
            (b.op == Opcode::kMov && b.dst.mode == AddrMode::kAccum);
        if (to_accum) {
            if (!lo.accum)
                r.dead.push_back({pc, DeadKind::kAccumDef, 0});
            continue;
        }
        const bool to_mem =
            (b.op == Opcode::kMov || isAlu2(b.op)) &&
            (b.dst.mode == AddrMode::kStack ||
             b.dst.mode == AddrMode::kAbs);
        if (!to_mem)
            continue;
        Xfer x{LiveSet{}, preState(pc)};
        const auto a = x.address(b.dst);
        if (a && !prog.inText(*a) && !lo.mem.isLive(*a))
            r.dead.push_back({pc, DeadKind::kMemStore, *a});
    }
    return r;
}

} // namespace crisp::analysis
