/**
 * @file
 * Fault injector implementation.
 */

#include "faults.hh"

namespace crisp::verify
{

bool
faultIsBenignHint(FaultKind k)
{
    switch (k) {
      case FaultKind::kFlipPredictBit:
      case FaultKind::kUnfoldPair:
      case FaultKind::kDropFill:
        return true;
      default:
        return false;
    }
}

std::string_view
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::kNone:
        return "none";
      case FaultKind::kFlipPredictBit:
        return "flip-predict-bit";
      case FaultKind::kUnfoldPair:
        return "unfold-pair";
      case FaultKind::kDropFill:
        return "drop-fill";
      case FaultKind::kCorruptNextPc:
        return "corrupt-next-pc";
      case FaultKind::kCorruptAltPc:
        return "corrupt-alt-pc";
      case FaultKind::kCorruptCcBit:
        return "corrupt-cc-bit";
      case FaultKind::kArchBug:
        return "arch-bug";
    }
    return "?";
}

std::optional<FaultKind>
parseFaultKind(std::string_view name)
{
    const FaultKind all[] = {
        FaultKind::kNone,          FaultKind::kFlipPredictBit,
        FaultKind::kUnfoldPair,    FaultKind::kDropFill,
        FaultKind::kCorruptNextPc, FaultKind::kCorruptAltPc,
        FaultKind::kCorruptCcBit,  FaultKind::kArchBug,
    };
    for (FaultKind k : all) {
        if (faultKindName(k) == name)
            return k;
    }
    return std::nullopt;
}

bool
FaultInjector::shouldFire()
{
    if (fires_ >= cfg_.maxFires || cfg_.period == 0)
        return false;
    const bool fire = (opportunities_ % cfg_.period) == phase_;
    ++opportunities_;
    if (fire)
        ++fires_;
    return fire;
}

bool
FaultInjector::onDicFill(DecodedInst& di)
{
    switch (cfg_.kind) {
      case FaultKind::kUnfoldPair:
        if (di.folded && shouldFire()) {
            // Undo the fold decision: the entry becomes exactly what
            // the no-fold decoder would have produced for the carrier.
            // The branch parcel is re-fetched and executes as a lone
            // entry — an extra EU slot, identical architecture.
            di.folded = false;
            di.ctl = Ctl::kSeq;
            di.seqPc = di.branchPc;
            di.totalParcels -= 1; // folded branches are one parcel
            di.predictTaken = false;
            di.takenPc = 0;
            di.branchPc = 0;
            di.branchOp = Opcode::kJmp;
            di.branchShortForm = false;
        }
        break;
      case FaultKind::kDropFill:
        if (shouldFire())
            return false;
        break;
      case FaultKind::kCorruptNextPc:
        if ((di.ctl == Ctl::kSeq || di.hasCondBranch()) &&
            shouldFire()) {
            di.seqPc += kParcelBytes *
                        (1 + static_cast<Addr>(opportunities_ % 5));
        }
        break;
      case FaultKind::kCorruptAltPc:
        if ((di.ctl == Ctl::kJmp || di.ctl == Ctl::kCall ||
             di.hasCondBranch()) &&
            shouldFire()) {
            di.takenPc += kParcelBytes *
                          (1 + static_cast<Addr>(opportunities_ % 5));
        }
        break;
      case FaultKind::kCorruptCcBit:
        if (di.writesCc && shouldFire())
            di.writesCc = false;
        break;
      default:
        break;
    }
    return true;
}

void
FaultInjector::onIssue(DecodedInst& di)
{
    switch (cfg_.kind) {
      case FaultKind::kFlipPredictBit:
        if (di.hasCondBranch() && shouldFire())
            di.predictTaken = !di.predictTaken;
        break;
      case FaultKind::kArchBug:
        // A simulated implementation bug: an issued immediate operand
        // is off by one. Run with checkDecode disabled so it stays
        // silent and only differential testing catches it — the
        // shrinker's demo workload.
        if (!di.loneBranch && di.body.src.mode == AddrMode::kImm &&
            shouldFire()) {
            di.body.src.value += 1;
        }
        break;
      default:
        break;
    }
}

} // namespace crisp::verify
