/**
 * @file
 * Lockstep differential runner: retire the pipelined CrispCpu against
 * the functional Interpreter event-by-event.
 *
 * Both models emit the same architectural event stream through
 * ExecObserver (one onInstruction per executed instruction, one
 * onBranch per executed branch). The reference stream is recorded from
 * the interpreter; the pipeline is then ticked with a checking observer
 * that compares each retired event as it happens and stops at the first
 * mismatch, reporting the event index plus PC / opcode / register /
 * flag context.
 *
 * Hint fields (the static prediction bit, the short-form encoding flag)
 * are excluded from the comparison by design: faults injected into them
 * must remain invisible here.
 */

#ifndef CRISP_VERIFY_LOCKSTEP_HH
#define CRISP_VERIFY_LOCKSTEP_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "sim/config.hh"
#include "sim/fault_hooks.hh"
#include "sim/stats.hh"

namespace crisp
{
class Program;
}

namespace crisp::verify
{

/** How (if at all) the pipeline diverged from the reference model. */
enum class Divergence : std::uint8_t {
    kNone = 0,
    /** A retired event differs from the reference stream. */
    kEventMismatch,
    /** The pipeline halted having retired fewer events. */
    kEventCountMismatch,
    /** Streams matched but final registers/memory differ. */
    kFinalStateMismatch,
    /** The pipeline raised a precise machine fault. */
    kMachineFault,
    /** The retire-time checker reported DIC metadata corruption. */
    kDicCorruptionDetected,
    /** The pipeline burned the cycle budget without halting. */
    kCycleLimit,
    /** The reference interpreter itself did not halt (generator bug). */
    kGeneratorNonTerminating,
    /** The wall-clock watchdog cancelled the pipeline run
     *  (LockstepOptions::cancel, crisptorture --timeout-ms). */
    kTimeout,
};

std::string_view divergenceName(Divergence d);

struct LockstepReport
{
    Divergence kind = Divergence::kNone;
    /** Index into the architectural event stream (event kinds). */
    std::size_t eventIndex = 0;
    /** Human-readable expected-vs-actual context. */
    std::string detail;
    /** Pipeline statistics (cycles, fills, fault info, ...). */
    SimStats sim;
    /** Reference architectural instruction count. */
    std::uint64_t refInstructions = 0;

    bool ok() const { return kind == Divergence::kNone; }
    std::string toString() const;
};

struct LockstepOptions
{
    SimConfig cfg;
    /** Optional fault-injection hooks installed on the pipeline. */
    FaultHooks* hooks = nullptr;
    /**
     * Optional cooperative cancellation flag installed on the pipeline
     * (CrispCpu::setCancelFlag). When it fires mid-run the report kind
     * is Divergence::kTimeout.
     */
    const std::atomic<bool>* cancel = nullptr;
    /** Reference interpreter step limit. */
    std::uint64_t maxSteps = 1'000'000;
    /**
     * Pipeline cycle budget; 0 derives one from the reference
     * instruction count (generously, so only a genuine hang trips it).
     */
    std::uint64_t cycleBudget = 0;
};

/** Run @p prog on both models and compare. */
LockstepReport runLockstep(const Program& prog,
                           const LockstepOptions& opt = {});

} // namespace crisp::verify

#endif // CRISP_VERIFY_LOCKSTEP_HH
