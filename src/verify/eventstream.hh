/**
 * @file
 * Architectural event-stream recording and checking, shared by the
 * lockstep runners (cycle pipeline vs. interpreter in lockstep.cc,
 * fast engine vs. interpreter in enginediff.cc).
 *
 * Both engines emit the same stream through ExecObserver: one
 * onInstruction per executed instruction, one onBranch per executed
 * branch. The reference stream is recorded from the interpreter; the
 * engine under test is then run with a CheckingObserver that compares
 * each event as it happens and latches the first mismatch.
 *
 * Hint fields (the static prediction bit, the short-form encoding
 * flag) are excluded from the comparison by design: faults injected
 * into them must remain invisible here.
 */

#ifndef CRISP_VERIFY_EVENTSTREAM_HH
#define CRISP_VERIFY_EVENTSTREAM_HH

#include <sstream>
#include <string>
#include <vector>

#include "interp/trace.hh"

namespace crisp::verify
{

/** One architectural event: an instruction retirement or a branch. */
struct Ev
{
    bool branch = false;
    Addr pc = 0;
    Opcode op = Opcode::kNop;
    bool conditional = false;
    bool taken = false;
    Addr target = 0;
    Addr fallThrough = 0;

    bool
    operator==(const Ev&) const = default;

    std::string
    toString() const
    {
        std::ostringstream os;
        os << (branch ? "branch " : "inst ") << opcodeName(op) << " @0x"
           << std::hex << pc;
        if (branch) {
            os << std::dec << (conditional ? " cond" : " uncond");
            if (taken)
                os << " taken->0x" << std::hex << target;
            else
                os << " not-taken (target 0x" << std::hex << target
                   << ")";
        }
        return os.str();
    }
};

/** Records the reference interpreter's event stream. */
class RefRecorder : public ExecObserver
{
  public:
    void
    onInstruction(Addr pc, Opcode op) override
    {
        events.push_back(Ev{false, pc, op, false, false, 0, 0});
    }

    void
    onBranch(const BranchEvent& ev) override
    {
        events.push_back(Ev{true, ev.pc, ev.op, ev.conditional,
                            ev.taken, ev.target, ev.fallThrough});
    }

    std::vector<Ev> events;
};

/** Compares an engine's retire stream against the reference. */
class CheckingObserver : public ExecObserver
{
  public:
    explicit CheckingObserver(const std::vector<Ev>& ref) : ref_(ref) {}

    void
    onInstruction(Addr pc, Opcode op) override
    {
        check(Ev{false, pc, op, false, false, 0, 0});
    }

    void
    onBranch(const BranchEvent& ev) override
    {
        check(Ev{true, ev.pc, ev.op, ev.conditional, ev.taken,
                 ev.target, ev.fallThrough});
    }

    bool mismatch = false;
    std::size_t index = 0;
    std::string detail;

  private:
    void
    check(const Ev& got)
    {
        if (mismatch)
            return;
        if (index >= ref_.size()) {
            mismatch = true;
            detail = "pipeline retired an event past the end of the "
                     "reference stream: " +
                     got.toString();
            return;
        }
        if (!(ref_[index] == got)) {
            mismatch = true;
            detail = "expected " + ref_[index].toString() + ", got " +
                     got.toString();
            return;
        }
        ++index;
    }

    const std::vector<Ev>& ref_;
};

} // namespace crisp::verify

#endif // CRISP_VERIFY_EVENTSTREAM_HH
