/**
 * @file
 * Delta-debugging shrinker implementation.
 */

#include "shrink.hh"

#include <utility>

namespace crisp::verify
{

namespace
{

class Shrinker
{
  public:
    Shrinker(GenProgram best, const FailPredicate& pred, int max_tests)
        : best_(std::move(best)), pred_(pred), maxTests_(max_tests)
    {
    }

    ShrinkResult
    run()
    {
        bool changed = true;
        while (changed && tests_ < maxTests_) {
            changed = false;
            changed |= dropSegments();
            changed |= dropLeafFns();
            changed |= reduceTrips();
            changed |= collapseSwitches();
            changed |= shrinkBlocks();
        }
        return ShrinkResult{std::move(best_), tests_};
    }

  private:
    /** Adopt @p cand if the failure survives. */
    bool
    accept(GenProgram cand)
    {
        if (tests_ >= maxTests_)
            return false;
        ++tests_;
        if (!pred_(cand))
            return false;
        best_ = std::move(cand);
        return true;
    }

    bool
    dropSegments()
    {
        bool changed = false;
        for (int i = static_cast<int>(best_.segs.size()) - 1; i >= 0;
             --i) {
            GenProgram cand = best_;
            cand.segs.erase(cand.segs.begin() + i);
            changed |= accept(std::move(cand));
        }
        return changed;
    }

    bool
    dropLeafFns()
    {
        bool changed = false;
        for (int j = static_cast<int>(best_.fns.size()) - 1; j >= 0;
             --j) {
            GenProgram cand = best_;
            cand.fns.erase(cand.fns.begin() + j);
            for (Segment& s : cand.segs) {
                if (s.kind != Segment::Kind::kCallLeaf)
                    continue;
                if (s.callee == j)
                    s.kind = Segment::Kind::kStraight;
                else if (s.callee > j)
                    --s.callee;
            }
            changed |= accept(std::move(cand));
        }
        return changed;
    }

    bool
    reduceTrips()
    {
        bool changed = false;
        for (std::size_t si = 0; si < best_.segs.size(); ++si) {
            if (best_.segs[si].kind != Segment::Kind::kLoop ||
                best_.segs[si].trip <= 1) {
                continue;
            }
            GenProgram cand = best_;
            cand.segs[si].trip = 1;
            changed |= accept(std::move(cand));
        }
        return changed;
    }

    bool
    collapseSwitches()
    {
        bool changed = false;
        for (std::size_t si = 0; si < best_.segs.size(); ++si) {
            const Segment& s = best_.segs[si];
            if (s.kind != Segment::Kind::kSwitch ||
                s.cases.size() <= 1) {
                continue;
            }
            GenProgram cand = best_;
            Segment& cs = cand.segs[si];
            cs.cases = {s.cases[static_cast<std::size_t>(s.selector)]};
            cs.selector = 0;
            changed |= accept(std::move(cand));
        }
        return changed;
    }

    /**
     * Shrink one instruction block: clear it, then try keeping each
     * half, then remove single instructions back-to-front. @p get and
     * @p set address the block inside a GenProgram — accept() replaces
     * best_ wholesale, so the block is re-read through get(best_)
     * before every candidate rather than held by reference.
     */
    template <typename Get, typename Set>
    bool
    shrinkField(const Get& get, const Set& set)
    {
        bool changed = false;
        if (!get(best_).empty()) {
            GenProgram cand = best_;
            set(cand, {});
            changed |= accept(std::move(cand));
        }
        for (int half = 0; half < 2; ++half) {
            const std::vector<Instruction>& cur = get(best_);
            const std::size_t n = cur.size();
            if (n < 2)
                break;
            const auto mid = static_cast<long>(n / 2);
            std::vector<Instruction> kept(
                cur.begin() + (half == 0 ? mid : 0),
                half == 0 ? cur.end() : cur.begin() + mid);
            GenProgram cand = best_;
            set(cand, std::move(kept));
            changed |= accept(std::move(cand));
        }
        for (int i = static_cast<int>(get(best_).size()) - 1; i >= 0;
             --i) {
            const std::vector<Instruction>& cur = get(best_);
            if (i >= static_cast<int>(cur.size()))
                continue;
            std::vector<Instruction> kept = cur;
            kept.erase(kept.begin() + i);
            GenProgram cand = best_;
            set(cand, std::move(kept));
            changed |= accept(std::move(cand));
        }
        return changed;
    }

    bool
    shrinkBlocks()
    {
        bool changed = false;
        using Block = std::vector<Instruction>;
        const auto seg_field = [](std::size_t si, Block Segment::* f) {
            return std::pair{
                [si, f](const GenProgram& g) -> const Block& {
                    return g.segs[si].*f;
                },
                [si, f](GenProgram& g, Block v) {
                    g.segs[si].*f = std::move(v);
                }};
        };
        for (std::size_t si = 0; si < best_.segs.size(); ++si) {
            for (Block Segment::* f :
                 {&Segment::pre, &Segment::arm1, &Segment::arm2,
                  &Segment::fillers}) {
                const auto [get, set] = seg_field(si, f);
                changed |= shrinkField(get, set);
            }
            for (std::size_t c = 0;
                 c < best_.segs[si].cases.size(); ++c) {
                changed |= shrinkField(
                    [si, c](const GenProgram& g) -> const Block& {
                        return g.segs[si].cases[c];
                    },
                    [si, c](GenProgram& g, Block v) {
                        g.segs[si].cases[c] = std::move(v);
                    });
            }
            if (tests_ >= maxTests_)
                break;
        }
        for (std::size_t j = 0; j < best_.fns.size(); ++j) {
            changed |= shrinkField(
                [j](const GenProgram& g) -> const Block& {
                    return g.fns[j].body;
                },
                [j](GenProgram& g, Block v) {
                    g.fns[j].body = std::move(v);
                });
        }
        return changed;
    }

    GenProgram best_;
    const FailPredicate& pred_;
    int maxTests_;
    int tests_ = 0;
};

} // namespace

ShrinkResult
shrinkProgram(const GenProgram& gp, const FailPredicate& stillFails,
              int maxTests)
{
    return Shrinker(gp, stillFails, maxTests).run();
}

} // namespace crisp::verify
