/**
 * @file
 * Fast-engine differential runner implementation.
 */

#include "enginediff.hh"

#include <sstream>
#include <vector>

#include "eventstream.hh"
#include "interp/interpreter.hh"
#include "isa/program.hh"
#include "sim/fastengine.hh"

namespace crisp::verify
{

LockstepReport
runFastLockstep(const Program& prog, const LockstepOptions& opt)
{
    LockstepReport rep;

    Interpreter interp(prog);
    RefRecorder ref;
    bool ref_faulted = false;
    std::string ref_fault_reason;
    InterpResult ires;
    try {
        ires = interp.run(opt.maxSteps, &ref);
    } catch (const CrispError& e) {
        // Faulting programs stay in scope here: the fast engine must
        // reproduce the fault exactly (shrink candidates routinely
        // mutate into faulting programs).
        ref_faulted = true;
        ref_fault_reason = e.what();
        ires = interp.result();
    }
    rep.refInstructions = ires.instructions;
    if (!ref_faulted && !ires.halted) {
        rep.kind = Divergence::kGeneratorNonTerminating;
        rep.detail = "reference interpreter hit the step limit";
        return rep;
    }

    SimConfig cfg = opt.cfg;
    // For the functional engine maxCycles bounds apparent instructions;
    // the margin only has to absorb superblock-boundary overshoot.
    cfg.maxCycles = opt.cycleBudget != 0 ? opt.cycleBudget
                                         : ires.instructions + 50'000;

    FastEngine eng(prog, cfg);
    if (opt.cancel != nullptr)
        eng.setCancelFlag(opt.cancel);
    CheckingObserver obs(ref.events);
    eng.run(&obs);
    rep.sim = eng.stats();

    std::ostringstream ctx;
    ctx << " [fast: accum=" << eng.accum()
        << " flag=" << (eng.flag() ? 1 : 0) << " sp=0x" << std::hex
        << eng.sp() << std::dec << " next-pc=0x" << std::hex
        << eng.nextPc() << std::dec << "]";

    if (rep.sim.cancelled) {
        rep.kind = Divergence::kTimeout;
        rep.detail =
            "wall-clock watchdog cancelled the fast-engine run" +
            ctx.str();
        return rep;
    }
    if (obs.mismatch) {
        rep.kind = Divergence::kEventMismatch;
        rep.eventIndex = obs.index;
        rep.detail = obs.detail + ctx.str();
        return rep;
    }
    if (rep.sim.faulted || ref_faulted) {
        if (!rep.sim.faulted) {
            rep.kind = Divergence::kMachineFault;
            rep.detail = "interpreter faulted (" + ref_fault_reason +
                         ") but the fast engine did not" + ctx.str();
            return rep;
        }
        if (!ref_faulted) {
            rep.kind = Divergence::kMachineFault;
            rep.detail = "fast engine faulted (" +
                         rep.sim.faultReason +
                         ") but the interpreter did not" + ctx.str();
            return rep;
        }
        if (rep.sim.faultReason != ref_fault_reason) {
            rep.kind = Divergence::kMachineFault;
            rep.detail = "fault reason mismatch: interpreter \"" +
                         ref_fault_reason + "\", fast engine \"" +
                         rep.sim.faultReason + "\"" + ctx.str();
            return rep;
        }
        // Both faulted identically; fall through to the count and
        // state comparison at the fault point.
    } else if (!eng.halted()) {
        rep.kind = Divergence::kCycleLimit;
        rep.detail = "fast engine did not halt within " +
                     std::to_string(cfg.maxCycles) + " instructions" +
                     ctx.str();
        return rep;
    }
    if (obs.index != ref.events.size()) {
        rep.kind = Divergence::kEventCountMismatch;
        rep.eventIndex = obs.index;
        rep.detail = "fast engine stopped after " +
                     std::to_string(obs.index) + " of " +
                     std::to_string(ref.events.size()) +
                     " reference events" + ctx.str();
        return rep;
    }

    // Streams agree; verify final architectural state, plus the
    // functional-only extras the cycle lockstep cannot pin: the exact
    // opcode histogram and dynamic branch count.
    std::ostringstream diff;
    if (eng.accum() != interp.accum()) {
        diff << "accum " << eng.accum() << " != " << interp.accum()
             << "; ";
    }
    if (eng.flag() != interp.flag())
        diff << "flag " << eng.flag() << " != " << interp.flag() << "; ";
    if (eng.sp() != interp.sp()) {
        diff << "sp 0x" << std::hex << eng.sp() << " != 0x"
             << interp.sp() << std::dec << "; ";
    }
    if (rep.sim.apparent != ires.instructions) {
        diff << "apparent " << rep.sim.apparent
             << " != " << ires.instructions << "; ";
    }
    if (rep.sim.branches != ires.branches) {
        diff << "branches " << rep.sim.branches
             << " != " << ires.branches << "; ";
    }
    for (std::size_t i = 0; i < rep.sim.opcodeCounts.size(); ++i) {
        if (rep.sim.opcodeCounts[i] != ires.opcodeCounts[i]) {
            diff << "count[" << opcodeName(static_cast<Opcode>(i))
                 << "] " << rep.sim.opcodeCounts[i]
                 << " != " << ires.opcodeCounts[i] << "; ";
            break;
        }
    }
    const auto& ms = eng.memory().bytes();
    const auto& mi = interp.memory().bytes();
    if (ms.size() != mi.size()) {
        diff << "memory size " << ms.size() << " != " << mi.size()
             << "; ";
    } else {
        for (std::size_t a = 0; a < ms.size(); ++a) {
            if (ms[a] != mi[a]) {
                diff << "memory[0x" << std::hex << a << "] 0x"
                     << static_cast<int>(ms[a]) << " != 0x"
                     << static_cast<int>(mi[a]) << std::dec << "; ";
                break;
            }
        }
    }
    const std::string d = diff.str();
    if (!d.empty()) {
        rep.kind = Divergence::kFinalStateMismatch;
        rep.detail = d + ctx.str();
    }
    return rep;
}

} // namespace crisp::verify
