/**
 * @file
 * Seeded random CRISP program generator for the torture harness.
 *
 * Programs are built from a small structured IR (GenProgram) rather than
 * emitted directly as text, for two reasons:
 *
 *  - termination by construction: the only backward branches are the
 *    back-edges of counted down-count loops; calls go only to leaf
 *    functions; indirect jumps dispatch through link-time jump tables
 *    whose entries are all forward case labels. Every generated program
 *    halts in a bounded number of architectural steps.
 *  - shrinkability: when a seed diverges, the delta-debugging shrinker
 *    (shrink.hh) edits the IR (drop segments, clear instruction blocks,
 *    reduce trip counts) and re-links, which keeps every shrink
 *    candidate well-formed.
 *
 * Coverage: all three encoding lengths (1/3/5 parcels), all operand
 * addressing modes (stack, absolute, immediate, indirect, accumulator),
 * folded and unfolded branch shapes, spread compares (filler
 * instructions between a compare and its branch), both prediction-bit
 * polarities, short and relaxed long branches, calls/returns, and
 * table-driven indirect jumps.
 */

#ifndef CRISP_VERIFY_GENERATOR_HH
#define CRISP_VERIFY_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "isa/program.hh"

namespace crisp::verify
{

/** Shared mutable globals: g0..g5 at kDataBase + 4*i (declared first,
 *  so their addresses survive any shrink of later data). */
inline constexpr int kGenGlobals = 6;

/** Scratch stack slots sp[0..5] in main's frame. */
inline constexpr int kGenScratchSlots = 6;

/** sp[6] and sp[7] hold &g4 and &g5 for indirect operand coverage. */
inline constexpr int kGenPtrSlot0 = kGenScratchSlots;

/** Main's frame size in words (scratch + the two pointer slots). */
inline constexpr int kGenFrameWords = 8;

/** Generator knobs. Defaults give a few hundred static instructions. */
struct GenOptions
{
    int minSegments = 2;
    int maxSegments = 9;
    /** Max random instructions per basic block. */
    int maxBlockLen = 5;
    int maxLeafFns = 2;
    bool allowIndirect = true;
    bool allowCalls = true;
    /** Occasionally pad an arm so a branch relaxes to the long form. */
    bool allowFarBranches = true;
};

/** One top-level control-flow segment of the generated main function. */
struct Segment
{
    enum class Kind : std::uint8_t {
        kStraight, //!< a straight-line block
        kLoop,     //!< counted down-count loop (the only back-edges)
        kDiamond,  //!< if/else on a random compare
        kCallLeaf, //!< call one of the leaf functions
        kSwitch,   //!< indirect jump through a link-time label table
    };

    Kind kind = Kind::kStraight;

    /** Straight-line prefix (all kinds). */
    std::vector<Instruction> pre;
    /** Loop body / taken arm / the selected switch case's siblings. */
    std::vector<Instruction> arm1;
    /** Not-taken arm (kDiamond). */
    std::vector<Instruction> arm2;
    /** Spread between the compare and its branch (never write CC). */
    std::vector<Instruction> fillers;
    /** kSwitch case bodies (>= 1). */
    std::vector<std::vector<Instruction>> cases;

    /** kLoop / kDiamond: the compare feeding the conditional branch. */
    Instruction compare;
    /** kLoop / kDiamond: kIfTJmp or kIfFJmp. */
    Opcode condOp = Opcode::kIfTJmp;
    /** Static prediction bit on the conditional branch. */
    bool predictBit = false;
    /** kLoop: iteration count (>= 1). */
    int trip = 1;
    /** kDiamond: pad arm1 so the branch needs the long form. */
    bool farPad = false;
    /** kCallLeaf: index into GenProgram::fns. */
    int callee = 0;
    /** kSwitch: which case the jump table entry selects. */
    int selector = 0;
    /** kSwitch: dispatch via SP-relative (vs. absolute) indirection. */
    bool indirectViaSp = false;
};

/** A callable leaf function (no further calls inside). */
struct LeafFn
{
    int frameWords = 2;
    std::vector<Instruction> body;
};

/** The generated program in shrinkable IR form. */
struct GenProgram
{
    std::uint64_t seed = 0;
    Word globalInit[kGenGlobals] = {};
    std::vector<LeafFn> fns;
    std::vector<Segment> segs;

    /** Assemble and link into an executable image. */
    Program link() const;

    /** Static instruction count of the linked image. */
    int instructionCount() const;

    /** Disassembly of the linked image (for divergence reports). */
    std::string listing() const;
};

/** Generate the program for @p seed (deterministic across platforms). */
GenProgram generate(std::uint64_t seed, const GenOptions& opt = {});

} // namespace crisp::verify

#endif // CRISP_VERIFY_GENERATOR_HH
