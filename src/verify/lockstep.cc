/**
 * @file
 * Lockstep differential runner implementation.
 */

#include "lockstep.hh"

#include <sstream>
#include <vector>

#include "eventstream.hh"
#include "interp/interpreter.hh"
#include "isa/program.hh"
#include "sim/cpu.hh"

namespace crisp::verify
{

std::string_view
divergenceName(Divergence d)
{
    switch (d) {
      case Divergence::kNone:
        return "none";
      case Divergence::kEventMismatch:
        return "event-mismatch";
      case Divergence::kEventCountMismatch:
        return "event-count-mismatch";
      case Divergence::kFinalStateMismatch:
        return "final-state-mismatch";
      case Divergence::kMachineFault:
        return "machine-fault";
      case Divergence::kDicCorruptionDetected:
        return "dic-corruption-detected";
      case Divergence::kCycleLimit:
        return "cycle-limit";
      case Divergence::kGeneratorNonTerminating:
        return "generator-non-terminating";
      case Divergence::kTimeout:
        return "timeout";
    }
    return "?";
}

std::string
LockstepReport::toString() const
{
    std::ostringstream os;
    os << "lockstep: " << divergenceName(kind);
    if (kind == Divergence::kEventMismatch ||
        kind == Divergence::kEventCountMismatch) {
        os << " at event #" << eventIndex;
    }
    if (!detail.empty())
        os << "\n  " << detail;
    os << "\n  ref instructions: " << refInstructions
       << ", sim apparent: " << sim.apparent
       << ", cycles: " << sim.cycles;
    if (sim.faulted) {
        os << "\n  fault at 0x" << std::hex << sim.faultPc << std::dec
           << ": " << sim.faultReason;
    }
    return os.str();
}

LockstepReport
runLockstep(const Program& prog, const LockstepOptions& opt)
{
    LockstepReport rep;

    Interpreter interp(prog);
    RefRecorder ref;
    const InterpResult ires = interp.run(opt.maxSteps, &ref);
    rep.refInstructions = ires.instructions;
    if (!ires.halted) {
        rep.kind = Divergence::kGeneratorNonTerminating;
        rep.detail = "reference interpreter hit the step limit";
        return rep;
    }

    SimConfig cfg = opt.cfg;
    const std::uint64_t budget =
        opt.cycleBudget != 0 ? opt.cycleBudget
                             : ires.instructions * 48 + 50'000;
    cfg.maxCycles = budget;

    CrispCpu cpu(prog, cfg);
    if (opt.hooks != nullptr)
        cpu.setFaultHooks(opt.hooks);
    if (opt.cancel != nullptr)
        cpu.setCancelFlag(opt.cancel);
    CheckingObserver obs(ref.events);
    while (cpu.tick(&obs)) {
        if (obs.mismatch || cpu.stats().cycles >= budget)
            break;
    }
    rep.sim = cpu.stats();

    std::ostringstream ctx;
    ctx << " [sim: accum=" << cpu.accum()
        << " flag=" << (cpu.flag() ? 1 : 0) << " sp=0x" << std::hex
        << cpu.sp() << std::dec << " next-pc=0x" << std::hex
        << cpu.nextIssuePc() << std::dec << "]";

    if (rep.sim.dicCorruption) {
        rep.kind = Divergence::kDicCorruptionDetected;
        rep.detail = rep.sim.faultReason;
        return rep;
    }
    if (rep.sim.faulted) {
        rep.kind = Divergence::kMachineFault;
        rep.detail = rep.sim.faultReason;
        return rep;
    }
    if (obs.mismatch) {
        rep.kind = Divergence::kEventMismatch;
        rep.eventIndex = obs.index;
        rep.detail = obs.detail + ctx.str();
        return rep;
    }
    if (rep.sim.cancelled) {
        rep.kind = Divergence::kTimeout;
        rep.detail = "wall-clock watchdog cancelled the pipeline run" +
                     ctx.str();
        return rep;
    }
    if (!cpu.halted()) {
        rep.kind = Divergence::kCycleLimit;
        rep.detail = "pipeline did not halt within " +
                     std::to_string(budget) + " cycles" + ctx.str();
        return rep;
    }
    if (obs.index != ref.events.size()) {
        rep.kind = Divergence::kEventCountMismatch;
        rep.eventIndex = obs.index;
        rep.detail = "pipeline halted after " +
                     std::to_string(obs.index) + " of " +
                     std::to_string(ref.events.size()) +
                     " reference events" + ctx.str();
        return rep;
    }

    // Streams agree; verify final architectural state.
    std::ostringstream diff;
    if (cpu.accum() != interp.accum()) {
        diff << "accum " << cpu.accum() << " != " << interp.accum()
             << "; ";
    }
    if (cpu.flag() != interp.flag())
        diff << "flag " << cpu.flag() << " != " << interp.flag() << "; ";
    if (cpu.sp() != interp.sp()) {
        diff << "sp 0x" << std::hex << cpu.sp() << " != 0x"
             << interp.sp() << std::dec << "; ";
    }
    if (rep.sim.apparent != ires.instructions) {
        diff << "apparent " << rep.sim.apparent
             << " != " << ires.instructions << "; ";
    }
    const auto& ms = cpu.memory().bytes();
    const auto& mi = interp.memory().bytes();
    if (ms.size() != mi.size()) {
        diff << "memory size " << ms.size() << " != " << mi.size()
             << "; ";
    } else {
        for (std::size_t a = 0; a < ms.size(); ++a) {
            if (ms[a] != mi[a]) {
                diff << "memory[0x" << std::hex << a << "] 0x"
                     << static_cast<int>(ms[a]) << " != 0x"
                     << static_cast<int>(mi[a]) << std::dec << "; ";
                break;
            }
        }
    }
    const std::string d = diff.str();
    if (!d.empty()) {
        rep.kind = Divergence::kFinalStateMismatch;
        rep.detail = d + ctx.str();
    }
    return rep;
}

} // namespace crisp::verify
