/**
 * @file
 * Random program generator implementation.
 */

#include "generator.hh"

#include <random>
#include <string>

#include "asm/assembler.hh"

namespace crisp::verify
{

namespace
{

/**
 * Deterministic random source. Values are taken from the raw mt19937
 * stream with modulo reduction: std::uniform_int_distribution is
 * implementation-defined, and a torture seed must reproduce the same
 * program on every toolchain.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed)
        : eng_(static_cast<std::uint32_t>(seed ^ (seed >> 32) ^
                                          0x9e3779b9u))
    {
    }

    std::uint32_t
    next(std::uint32_t n)
    {
        return n == 0 ? 0 : eng_() % n;
    }

    bool chance(std::uint32_t percent) { return next(100) < percent; }

    std::int32_t
    fullWord()
    {
        return static_cast<std::int32_t>(eng_());
    }

  private:
    std::mt19937 eng_;
};

/** What a random instruction block is allowed to touch. */
struct InstCtx
{
    bool allowCc = true;
    bool allowInd = true;
    bool allowGlobals = true;
    int stackSlots = kGenScratchSlots;
};

Operand
randomWritable(Rng& rng, const InstCtx& ctx)
{
    const std::uint32_t r = rng.next(100);
    if (r < 40 && ctx.stackSlots > 0) {
        return Operand::stack(static_cast<std::int32_t>(
            rng.next(static_cast<std::uint32_t>(ctx.stackSlots))));
    }
    if (r < 65 && ctx.allowGlobals) {
        return Operand::abs(kDataBase +
                            kWordBytes * rng.next(kGenGlobals));
    }
    if (r < 80 && ctx.allowInd) {
        return Operand::ind(kGenPtrSlot0 +
                            static_cast<std::int32_t>(rng.next(2)));
    }
    return Operand::accum();
}

Operand
randomReadable(Rng& rng, const InstCtx& ctx)
{
    if (rng.chance(35)) {
        // Immediate tiers exercise all three encoded lengths: a b-field
        // value (one parcel for short-form ops), a 16-bit specifier
        // (three parcels) and a full word (five parcels).
        switch (rng.next(3)) {
          case 0:
            return Operand::imm(static_cast<std::int32_t>(rng.next(8)));
          case 1:
            return Operand::imm(
                static_cast<std::int32_t>(rng.next(4001)) - 2000);
          default:
            return Operand::imm(rng.fullWord());
        }
    }
    return randomWritable(rng, ctx);
}

constexpr Opcode kAlu2Ops[] = {
    Opcode::kAdd, Opcode::kSub, Opcode::kAnd, Opcode::kOr,
    Opcode::kXor, Opcode::kShl, Opcode::kShr, Opcode::kMul,
    Opcode::kDiv, Opcode::kRem,
};

constexpr Opcode kAlu3Ops[] = {
    Opcode::kAdd3, Opcode::kSub3, Opcode::kAnd3,
    Opcode::kOr3,  Opcode::kXor3, Opcode::kMul3,
};

constexpr Opcode kCmpOps[] = {
    Opcode::kCmpEq, Opcode::kCmpNe,  Opcode::kCmpLt,  Opcode::kCmpLe,
    Opcode::kCmpGt, Opcode::kCmpGe,  Opcode::kCmpLtU, Opcode::kCmpGeU,
};

Instruction
randomCompare(Rng& rng, const InstCtx& ctx)
{
    return Instruction::cmp(
        kCmpOps[rng.next(static_cast<std::uint32_t>(std::size(kCmpOps)))],
        randomReadable(rng, ctx), randomReadable(rng, ctx));
}

Instruction
randomInst(Rng& rng, const InstCtx& ctx)
{
    const std::uint32_t r = rng.next(100);
    if (r < 35)
        return Instruction::mov(randomWritable(rng, ctx),
                                randomReadable(rng, ctx));
    if (r < 70) {
        return Instruction::alu(
            kAlu2Ops[rng.next(
                static_cast<std::uint32_t>(std::size(kAlu2Ops)))],
            randomWritable(rng, ctx), randomReadable(rng, ctx));
    }
    if (r < 88 || !ctx.allowCc) {
        return Instruction::alu(
            kAlu3Ops[rng.next(
                static_cast<std::uint32_t>(std::size(kAlu3Ops)))],
            randomReadable(rng, ctx), randomReadable(rng, ctx));
    }
    return randomCompare(rng, ctx);
}

std::vector<Instruction>
randomBlock(Rng& rng, std::uint32_t min_len, std::uint32_t max_len,
            const InstCtx& ctx)
{
    const std::uint32_t n =
        min_len + rng.next(max_len - min_len + 1);
    std::vector<Instruction> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        out.push_back(randomInst(rng, ctx));
    return out;
}

void
emitBlock(AsmBuilder& b, const std::vector<Instruction>& block)
{
    for (const auto& inst : block)
        b.emit(inst);
}

} // namespace

GenProgram
generate(std::uint64_t seed, const GenOptions& opt)
{
    Rng rng(seed);
    GenProgram gp;
    gp.seed = seed;

    for (int i = 0; i < kGenGlobals; ++i)
        gp.globalInit[i] = static_cast<Word>(rng.next(201)) - 100;

    const int nfns =
        opt.allowCalls
            ? static_cast<int>(rng.next(
                  static_cast<std::uint32_t>(opt.maxLeafFns + 1)))
            : 0;
    InstCtx leaf_ctx;
    leaf_ctx.allowInd = false; // leaf frames hold no pointers
    for (int j = 0; j < nfns; ++j) {
        LeafFn fn;
        fn.frameWords = 2 + static_cast<int>(rng.next(5));
        leaf_ctx.stackSlots = fn.frameWords;
        fn.body = randomBlock(
            rng, 1, static_cast<std::uint32_t>(opt.maxBlockLen),
            leaf_ctx);
        gp.fns.push_back(std::move(fn));
    }

    InstCtx ctx; // main's context: full operand coverage
    InstCtx cc_free = ctx;
    cc_free.allowCc = false;

    const auto span = static_cast<std::uint32_t>(
        opt.maxSegments - opt.minSegments + 1);
    const int nsegs =
        opt.minSegments + static_cast<int>(rng.next(span));
    const auto blk_max = static_cast<std::uint32_t>(opt.maxBlockLen);
    for (int si = 0; si < nsegs; ++si) {
        Segment s;
        const std::uint32_t r = rng.next(100);
        if (r < 25)
            s.kind = Segment::Kind::kStraight;
        else if (r < 50)
            s.kind = Segment::Kind::kLoop;
        else if (r < 70)
            s.kind = Segment::Kind::kDiamond;
        else if (r < 85 && nfns > 0)
            s.kind = Segment::Kind::kCallLeaf;
        else if (opt.allowIndirect)
            s.kind = Segment::Kind::kSwitch;
        else
            s.kind = Segment::Kind::kDiamond;

        s.pre = randomBlock(rng, 0, blk_max, ctx);
        switch (s.kind) {
          case Segment::Kind::kStraight:
            break;
          case Segment::Kind::kLoop:
            s.arm1 = randomBlock(rng, 1, blk_max, ctx);
            // The spread between the counter compare and the back-edge
            // branch must leave the flag alone.
            s.fillers = randomBlock(rng, 0, 2, cc_free);
            s.trip = 1 + static_cast<int>(rng.next(6));
            s.predictBit = rng.chance(70);
            break;
          case Segment::Kind::kDiamond:
            s.compare = randomCompare(rng, ctx);
            s.condOp =
                rng.chance(50) ? Opcode::kIfTJmp : Opcode::kIfFJmp;
            s.predictBit = rng.chance(50);
            s.fillers = randomBlock(rng, 0, 3, cc_free);
            s.arm1 = randomBlock(rng, 1, blk_max, ctx);
            s.arm2 = randomBlock(rng, 0, blk_max, ctx);
            if (opt.allowFarBranches && rng.chance(10)) {
                // Pad the fall-through arm past the one-parcel branch
                // range (+-1022 bytes) so the conditional branch over
                // it must relax to the three-parcel absolute form.
                s.farPad = true;
                for (int j = 0; j < 175; ++j) {
                    s.arm1.push_back(Instruction::mov(
                        Operand::stack(0),
                        Operand::imm(1000 + j)));
                }
            }
            break;
          case Segment::Kind::kCallLeaf:
            s.callee = static_cast<int>(
                rng.next(static_cast<std::uint32_t>(nfns)));
            break;
          case Segment::Kind::kSwitch: {
            const int ncases = 2 + static_cast<int>(rng.next(3));
            for (int c = 0; c < ncases; ++c)
                s.cases.push_back(randomBlock(rng, 0, blk_max, ctx));
            s.selector = static_cast<int>(
                rng.next(static_cast<std::uint32_t>(ncases)));
            s.indirectViaSp = rng.chance(50);
            break;
          }
        }
        gp.segs.push_back(std::move(s));
    }
    return gp;
}

Program
GenProgram::link() const
{
    AsmBuilder b;

    // g0..g5 are declared first so their addresses (kDataBase + 4*i)
    // never move, no matter what the shrinker removes later.
    for (int i = 0; i < kGenGlobals; ++i)
        b.global("g" + std::to_string(i), globalInit[i]);

    // Per-segment data: loop counters and switch jump tables. Their
    // addresses are resolved through globalOperand at emission time.
    for (std::size_t si = 0; si < segs.size(); ++si) {
        const Segment& s = segs[si];
        const std::string id = std::to_string(si);
        if (s.kind == Segment::Kind::kLoop) {
            b.global("c" + id, 0);
        } else if (s.kind == Segment::Kind::kSwitch) {
            std::vector<std::string> labels;
            for (std::size_t c = 0; c < s.cases.size(); ++c) {
                labels.push_back("S" + id + "_c" + std::to_string(c));
            }
            b.labelTable("tab" + id, std::move(labels));
        }
    }

    b.label("main");
    b.entry("main");
    b.emit(Instruction::enter(kGenFrameWords));
    b.emit(Instruction::mov(
        Operand::stack(kGenPtrSlot0),
        Operand::imm(b.globalOperand("g4").value)));
    b.emit(Instruction::mov(
        Operand::stack(kGenPtrSlot0 + 1),
        Operand::imm(b.globalOperand("g5").value)));

    for (std::size_t si = 0; si < segs.size(); ++si) {
        const Segment& s = segs[si];
        const std::string id = std::to_string(si);
        emitBlock(b, s.pre);
        switch (s.kind) {
          case Segment::Kind::kStraight:
            break;
          case Segment::Kind::kLoop: {
            const Operand c = b.globalOperand("c" + id);
            b.emit(Instruction::mov(c, Operand::imm(s.trip)));
            b.label("L" + id + "_top");
            emitBlock(b, s.arm1);
            b.emit(Instruction::alu(Opcode::kSub, c, Operand::imm(1)));
            b.emit(Instruction::cmp(Opcode::kCmpGt, c,
                                    Operand::imm(0)));
            emitBlock(b, s.fillers);
            b.branch(Opcode::kIfTJmp, "L" + id + "_top", s.predictBit);
            break;
          }
          case Segment::Kind::kDiamond:
            b.emit(s.compare);
            emitBlock(b, s.fillers);
            b.branch(s.condOp, "D" + id + "_alt", s.predictBit);
            emitBlock(b, s.arm1);
            b.branch(Opcode::kJmp, "D" + id + "_end");
            b.label("D" + id + "_alt");
            emitBlock(b, s.arm2);
            b.label("D" + id + "_end");
            break;
          case Segment::Kind::kCallLeaf:
            b.branch(Opcode::kCall,
                     "fn" + std::to_string(s.callee));
            break;
          case Segment::Kind::kSwitch: {
            const auto tab = static_cast<std::uint32_t>(
                b.globalOperand("tab" + id).value);
            const auto slot =
                tab + static_cast<std::uint32_t>(kWordBytes) *
                          static_cast<std::uint32_t>(s.selector);
            if (s.indirectViaSp) {
                b.emit(Instruction::mov(
                    Operand::stack(kGenScratchSlots - 1),
                    Operand::abs(slot)));
                b.branchIndirect(
                    Opcode::kJmp, BranchMode::kIndSp,
                    static_cast<std::uint32_t>(kGenScratchSlots - 1));
            } else {
                b.branchIndirect(Opcode::kJmp, BranchMode::kIndAbs,
                                 slot);
            }
            for (std::size_t c = 0; c < s.cases.size(); ++c) {
                b.label("S" + id + "_c" + std::to_string(c));
                emitBlock(b, s.cases[c]);
                b.branch(Opcode::kJmp, "S" + id + "_end");
            }
            b.label("S" + id + "_end");
            break;
          }
        }
    }
    b.emit(Instruction::halt());

    for (std::size_t j = 0; j < fns.size(); ++j) {
        const LeafFn& fn = fns[j];
        b.label("fn" + std::to_string(j));
        b.emit(Instruction::enter(fn.frameWords));
        emitBlock(b, fn.body);
        b.emit(Instruction::ret(fn.frameWords));
    }

    return b.link();
}

int
GenProgram::instructionCount() const
{
    return link().staticInstructionCount();
}

std::string
GenProgram::listing() const
{
    return link().disassemble();
}

} // namespace crisp::verify
