/**
 * @file
 * Deterministic microarchitectural fault injection.
 *
 * The fault model splits DIC state into two classes, following the
 * paper's design argument:
 *
 *  - HINTS (static prediction bit, the fold decision itself, whether a
 *    decoded entry gets cached at all): corrupting these may change
 *    cycle counts but can never change architectural results. The
 *    pipeline verifies every speculative decision at retire time.
 *  - METADATA (Next-PC, Alternate-PC, the modifies-CC bit, the decoded
 *    body): corrupting these would change results, so the retire-time
 *    decode checker (SimConfig::checkDecode) must detect them and raise
 *    a structured DicCorruptionError before architectural state is
 *    touched.
 *
 * kArchBug is neither: it simulates a genuine implementation bug
 * (silent corruption of an issued operand) and exists to give the
 * shrinker a real divergence to minimize.
 */

#ifndef CRISP_VERIFY_FAULTS_HH
#define CRISP_VERIFY_FAULTS_HH

#include <cstdint>
#include <optional>
#include <string_view>

#include "sim/fault_hooks.hh"

namespace crisp::verify
{

enum class FaultKind : std::uint8_t {
    kNone = 0,
    kFlipPredictBit, //!< hint: invert the static prediction bit
    kUnfoldPair,     //!< hint: undo a fold decision at fill time
    kDropFill,       //!< hint: veto DIC fills (forced eviction)
    kCorruptNextPc,  //!< metadata: skew the entry's Next-PC
    kCorruptAltPc,   //!< metadata: skew the Alternate (taken) PC
    kCorruptCcBit,   //!< metadata: clear the modifies-CC bit
    kArchBug,        //!< seeded implementation bug (for the shrinker)
};

/** Hints may only change timing; metadata corruption must be caught. */
bool faultIsBenignHint(FaultKind k);

std::string_view faultKindName(FaultKind k);
std::optional<FaultKind> parseFaultKind(std::string_view name);

/** All injectable kinds (excluding kNone), for sweep loops. */
inline constexpr FaultKind kInjectableFaults[] = {
    FaultKind::kFlipPredictBit, FaultKind::kUnfoldPair,
    FaultKind::kDropFill,       FaultKind::kCorruptNextPc,
    FaultKind::kCorruptAltPc,   FaultKind::kCorruptCcBit,
};

struct FaultConfig
{
    FaultKind kind = FaultKind::kNone;
    /** Varies which opportunities fire across runs. */
    std::uint64_t seed = 0;
    /** Fire on every period-th applicable opportunity. */
    std::uint64_t period = 7;
    /**
     * Upper bound on fires. Matters for kDropFill: vetoing every fill
     * of a demand-missed PC would stall the EU forever, which is a
     * harness artifact, not a property of the machine.
     */
    int maxFires = 16;
};

/** FaultHooks implementation driven by a FaultConfig. */
class FaultInjector : public FaultHooks
{
  public:
    explicit FaultInjector(const FaultConfig& cfg)
        : cfg_(cfg), phase_(cfg.period ? cfg.seed % cfg.period : 0)
    {
    }

    bool onDicFill(DecodedInst& di) override;
    void onIssue(DecodedInst& di) override;

    /** How many times the fault actually fired. */
    int fires() const { return fires_; }

  private:
    bool shouldFire();

    FaultConfig cfg_;
    std::uint64_t phase_;
    std::uint64_t opportunities_ = 0;
    int fires_ = 0;
};

} // namespace crisp::verify

#endif // CRISP_VERIFY_FAULTS_HH
