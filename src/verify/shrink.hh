/**
 * @file
 * Greedy delta-debugging shrinker for diverging torture programs.
 *
 * Given a GenProgram whose linked image makes @p stillFails return
 * true, repeatedly tries structural simplifications — drop whole
 * segments, drop leaf functions (remapping callers), clear or halve
 * instruction blocks, reduce loop trip counts — keeping each edit only
 * if the failure survives, until a fixpoint or the test budget runs
 * out. Every candidate is a well-formed GenProgram, so every shrink
 * step re-links to a valid, terminating program.
 */

#ifndef CRISP_VERIFY_SHRINK_HH
#define CRISP_VERIFY_SHRINK_HH

#include <functional>

#include "generator.hh"

namespace crisp::verify
{

/** Does this candidate still reproduce the failure? */
using FailPredicate = std::function<bool(const GenProgram&)>;

struct ShrinkResult
{
    GenProgram program;
    /** Predicate evaluations spent. */
    int tests = 0;
};

/**
 * Minimize @p gp under @p stillFails.
 * @pre stillFails(gp) is true (callers check before invoking).
 */
ShrinkResult shrinkProgram(const GenProgram& gp,
                           const FailPredicate& stillFails,
                           int maxTests = 3000);

} // namespace crisp::verify

#endif // CRISP_VERIFY_SHRINK_HH
