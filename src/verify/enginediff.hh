/**
 * @file
 * Fast-engine differential runner: the threaded-code FastEngine against
 * the functional Interpreter, event by event.
 *
 * Same shape as lockstep.hh's pipeline runner, same Divergence /
 * LockstepReport vocabulary, but held to a *stronger* contract: because
 * the fast engine is functional, the comparison also pins the dynamic
 * opcode histogram and branch count, and faulting programs are in
 * scope — if the interpreter raises a machine fault, the fast engine
 * must fault at the same architectural instruction with the same
 * message and identical state up to that point. (The cycle-pipeline
 * runner reports any fault as a divergence instead; its generator seeds
 * never fault.)
 *
 * crisptorture --engine-diff runs this back-to-back with the classic
 * pipeline lockstep on every seed x fold policy, giving the three-way
 * interp / fast / cycle differential, with failures shrunk as usual.
 */

#ifndef CRISP_VERIFY_ENGINEDIFF_HH
#define CRISP_VERIFY_ENGINEDIFF_HH

#include "lockstep.hh"

namespace crisp
{
class Program;
}

namespace crisp::verify
{

/**
 * Run @p prog on the interpreter and the fast engine and compare.
 * LockstepOptions fields are reused: cfg selects the fold policy (and
 * the instruction budget via maxCycles when cycleBudget is 0), cancel
 * installs the cooperative flag on the fast engine, maxSteps bounds
 * the reference interpreter. FaultHooks do not apply (the fast engine
 * has no DIC to corrupt) and are ignored.
 */
LockstepReport runFastLockstep(const Program& prog,
                               const LockstepOptions& opt = {});

} // namespace crisp::verify

#endif // CRISP_VERIFY_ENGINEDIFF_HH
