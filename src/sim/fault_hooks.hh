/**
 * @file
 * Microarchitectural fault-injection hooks for the cycle-level
 * simulator, plus the typed diagnostic raised when injected (or real)
 * corruption of Decoded Instruction Cache metadata is detected.
 *
 * The hooks sit at the two points where decoded-instruction metadata
 * crosses a trust boundary:
 *
 *  - onDicFill: the PDU is about to install a decoded entry into the
 *    DIC. A hook may mutate the entry (poison Next-PC / Alternate-PC,
 *    flip the static prediction bit, undo a fold decision, clear the
 *    modifies-CC bit) or veto the fill entirely (forced eviction).
 *  - onIssue: the EU copied a DIC hit into its IR stage. A hook may
 *    mutate the pipeline's private copy without touching the cache.
 *
 * The paper's core claim is that prediction bits and fold decisions are
 * *hints*: faults in them may change cycle counts but never results.
 * Faults in Next-PC / Alternate-PC / modifies-CC are real corruption;
 * with SimConfig::checkDecode enabled the retire-stage checker re-derives
 * the golden decode from the text image and raises DicCorruptionError
 * before any architectural state is touched.
 */

#ifndef CRISP_SIM_FAULT_HOOKS_HH
#define CRISP_SIM_FAULT_HOOKS_HH

#include "decoded.hh"
#include "isa/types.hh"

namespace crisp
{

/** Injection points for microarchitectural faults. */
class FaultHooks
{
  public:
    virtual ~FaultHooks() = default;

    /**
     * The PDU is about to install @p di into the DIC; the hook may
     * mutate it in place. @return false to drop the fill (the entry is
     * discarded and the EU will demand-miss again).
     */
    virtual bool
    onDicFill(DecodedInst& di)
    {
        (void)di;
        return true;
    }

    /** The EU latched a copy of a DIC hit into IR; may mutate it. */
    virtual void
    onIssue(DecodedInst& di)
    {
        (void)di;
    }
};

/**
 * Raised (and recorded as a precise machine fault) when the retire-time
 * checker finds a decoded entry that is not an architecturally valid
 * decode of the program text — i.e. cached Next-PC / Alternate-PC /
 * body / modifies-CC state that no legal decode could have produced.
 */
class DicCorruptionError : public CrispError
{
  public:
    using CrispError::CrispError;
};

} // namespace crisp

#endif // CRISP_SIM_FAULT_HOOKS_HH
