/**
 * @file
 * Prefetch and Decode Unit implementation.
 */

#include "pdu.hh"

namespace crisp
{

Pdu::Pdu(const Program& prog, const SimConfig& cfg, DecodedCache& dic,
         SimStats& stats, PredecodeCache* predecode)
    : prog_(prog), cfg_(cfg), dic_(dic), stats_(stats),
      decoder_(cfg.foldPolicy), textEnd_(prog.textEnd())
{
    if (cfg.queueParcels < 1 || cfg.queueParcels > ParcelRing::kStorage)
        throw CrispError("PDU: queueParcels must be in [1, 64]");
    if (cfg.usePredecode) {
        predecode_ = predecode;
        if (predecode_ == nullptr) {
            ownedPredecode_ = std::make_unique<PredecodeCache>(prog);
            predecode_ = ownedPredecode_.get();
        }
    }
    redirect(prog.entry);
}

void
Pdu::redirect(Addr pc)
{
    queue_.clear();
    decodePc_ = pc;
    prefetchPc_ = pc;
    paused_ = false;
    // An in-flight memory fetch cannot be aborted; its result will be
    // discarded on arrival because it no longer extends the queue.
}

bool
Pdu::streaming_toward(Addr pc) const
{
    if (pirValid_ && pirSrc_->pc == pc)
        return true;
    if (paused_)
        return false;
    Addr end = decodePc_ + static_cast<Addr>(queue_.size()) * kParcelBytes;
    if (memBusy_ && memAddr_ == end)
        end += static_cast<Addr>(memParcels_) * kParcelBytes;
    // Also count the block the prefetcher will request next: the stream
    // is contiguous from decodePc_ onward.
    return pc >= decodePc_ && pc < end;
}

void
Pdu::demand(Addr pc)
{
    if (streaming_toward(pc))
        return;
    if (paused_ && pc == decodePc_) {
        // The stream is parked exactly here (e.g. a conflict evicted an
        // entry we already decoded): just resume.
        paused_ = false;
        return;
    }
    redirect(pc);
}

std::uint64_t
Pdu::pureWaitUntil(Addr issue_pc) const
{
    if (!memBusy_ || pirValid_ || paused_)
        return 0;
    if (!streaming_toward(issue_pc))
        return 0; // a demand this cycle would redirect the stream
    if (!queue_.empty()) {
        if (dic_.lookup(decodePc_) != nullptr)
            return 0; // the PDR stage would park
        // Mirror of the PDR window gate: if enough parcels are queued
        // the PDR would decode (a state change); otherwise it waits for
        // the fetch no matter which decode path is configured.
        const Parcel p0 = queue_.front();
        const int len = instructionLength(p0);
        const int q = queue_.size();
        const bool at_end =
            decodePc_ + static_cast<Addr>(q) * kParcelBytes >= textEnd_;
        if (q >= len && (at_end || q >= decoder_.windowNeed(p0, len)))
            return 0;
    }
    // PIR empty, PDR starved, prefetch blocked on the busy port: ticks
    // strictly before memReadyCycle_ cannot change any modelled state.
    return memReadyCycle_;
}

void
Pdu::tick(std::uint64_t now)
{
    // Parked with nothing in flight: every stage below is a no-op (the
    // PDR and prefetch stages are gated on !paused_, the PIR latch and
    // the memory port are empty), so the whole tick can return early.
    // Pure host-speed: no modelled state can change this cycle.
    if (paused_ && !pirValid_ && !memBusy_)
        return;

    // Stage 3 (PIR): write last cycle's decoded entry into the DIC. A
    // fault hook may corrupt the entry or veto the fill entirely (it
    // gets a private copy: the predecode tables stay golden).
    if (pirValid_) {
        pirValid_ = false;
        if (hooks_ == nullptr) {
            dic_.fill(*pirSrc_);
            ++stats_.pduFills;
        } else {
            if (pirSrc_ != &pirCopy_)
                pirCopy_ = *pirSrc_;
            if (hooks_->onDicFill(pirCopy_)) {
                dic_.fill(pirCopy_);
                ++stats_.pduFills;
            }
        }
    }

    // Memory completion: parcels arrive at the queue tail. A block that
    // no longer extends the queue (the stream was redirected while it
    // was in flight) is discarded. The block was validated against the
    // text segment when the fetch was issued, so it lands as one copy.
    if (memBusy_ && now >= memReadyCycle_) {
        memBusy_ = false;
        const Addr end =
            decodePc_ + static_cast<Addr>(queue_.size()) * kParcelBytes;
        if (memAddr_ == end) {
            // Same guards (and fault messages) parcelAt applied per
            // parcel, hoisted to the block: a corrupted redirect can
            // park the fetch address anywhere. A block starting aligned
            // and inside text stays inside it (length was clipped to
            // the segment when the fetch was issued).
            if (memAddr_ % kParcelBytes != 0)
                throw CrispError("unaligned parcel fetch");
            if (!prog_.inText(memAddr_))
                throw CrispError("parcel fetch outside text segment");
            queue_.append(prog_.text.data() +
                              (memAddr_ - prog_.textBase) / kParcelBytes,
                          memParcels_);
        }
    }

    // Stage 2 (PDR): decode (and fold) from the queue.
    if (!paused_ && !queue_.empty()) {
        if (dic_.lookup(decodePc_) != nullptr) {
            // Wrapped into already decoded code (e.g. around a loop):
            // park until a demand miss re-awakens the stream.
            paused_ = true;
        } else {
            const int q = queue_.size();
            const Addr window_end =
                decodePc_ + static_cast<Addr>(q) * kParcelBytes;
            const bool at_end = window_end >= textEnd_;

            // decodeAt reads at most windowNeed(parcel0) parcels, so
            // its result is independent of the window size once the
            // queue holds that many (or runs to the end of text).
            // Gating on occupancy here and reading the memoized decode
            // is cycle-for-cycle identical to re-decoding the window.
            const DecodedInst* di = nullptr;
            std::optional<DecodedInst> redecoded;
            if (predecode_ != nullptr) {
                const Parcel p0 = queue_.front();
                const int len = instructionLength(p0);
                if (q >= len &&
                    (at_end || q >= decoder_.windowNeed(p0, len))) {
                    di = &predecode_->at(decodePc_, cfg_.foldPolicy).di;
                }
            } else {
                redecoded = decoder_.decodeAt(decodePc_, queue_.window(),
                                              at_end);
                if (redecoded)
                    di = &*redecoded;
            }

            if (di != nullptr) {
                if (predecode_ != nullptr) {
                    pirSrc_ = di; // stable predecode-table storage
                } else {
                    pirCopy_ = *di; // the re-decode dies this cycle
                    pirSrc_ = &pirCopy_;
                }
                pirValid_ = true;
                if (di->folded)
                    ++stats_.pduFoldedPairs;
                queue_.pop_front(di->totalParcels);
                decodePc_ +=
                    static_cast<Addr>(di->totalParcels) * kParcelBytes;

                // Follow the predicted instruction path.
                const bool follow_taken =
                    di->ctl == Ctl::kJmp || di->ctl == Ctl::kCall ||
                    (di->hasCondBranch() && cfg_.respectPredictionBit &&
                     di->predictTaken);
                if (follow_taken && di->takenPc != decodePc_) {
                    queue_.clear();
                    decodePc_ = di->takenPc;
                    prefetchPc_ = di->takenPc;
                } else if (di->ctl == Ctl::kRet ||
                           di->ctl == Ctl::kIndirect ||
                           di->ctl == Ctl::kHalt) {
                    paused_ = true;
                }
            } else if (at_end && !memBusy_ && prefetchPc_ >= textEnd_) {
                throw CrispError("PDU: truncated instruction at end of "
                                 "text segment");
            }
        }
    }

    // Stage 1: prefetch. Request up to a 4-parcel block, clipped to the
    // queue room actually available (a full-size-only rule would
    // deadlock a 6-parcel folded decode window against an 8-parcel
    // queue).
    if (!paused_ && !memBusy_) {
        const Addr text_end = textEnd_;
        if (queue_.empty() && prefetchPc_ >= text_end) {
            // The stream ran off the end of text and everything fetched
            // has been consumed: no stage can ever make progress again
            // without a redirect. Park so idle ticks take the early-out
            // above. demand() treats an exhausted stream and a parked
            // one identically (streaming_toward is false either way).
            paused_ = true;
            return;
        }
        const int room = cfg_.queueParcels - queue_.size();
        if (prefetchPc_ < text_end && room > 0) {
            const Addr remaining =
                (text_end - prefetchPc_) / kParcelBytes;
            memParcels_ = remaining < 4 ? static_cast<int>(remaining) : 4;
            if (memParcels_ > room)
                memParcels_ = room;
            memAddr_ = prefetchPc_;
            memBusy_ = true;
            memReadyCycle_ = now + static_cast<std::uint64_t>(
                                       cfg_.memLatency);
            prefetchPc_ +=
                static_cast<Addr>(memParcels_) * kParcelBytes;
            ++stats_.memFetches;
        }
    }
}

} // namespace crisp
