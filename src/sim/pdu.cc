/**
 * @file
 * Prefetch and Decode Unit implementation.
 */

#include "pdu.hh"

#include <vector>

namespace crisp
{

void
Pdu::redirect(Addr pc)
{
    queue_.clear();
    decodePc_ = pc;
    prefetchPc_ = pc;
    paused_ = false;
    // An in-flight memory fetch cannot be aborted; its result will be
    // discarded on arrival because it no longer extends the queue.
}

bool
Pdu::streaming_toward(Addr pc) const
{
    if (pirValid_ && pir_.pc == pc)
        return true;
    if (paused_)
        return false;
    Addr end = decodePc_ + static_cast<Addr>(queue_.size()) * kParcelBytes;
    if (memBusy_ && memAddr_ == end)
        end += static_cast<Addr>(memParcels_) * kParcelBytes;
    // Also count the block the prefetcher will request next: the stream
    // is contiguous from decodePc_ onward.
    return pc >= decodePc_ && pc < end;
}

void
Pdu::demand(Addr pc)
{
    if (streaming_toward(pc))
        return;
    if (paused_ && pc == decodePc_) {
        // The stream is parked exactly here (e.g. a conflict evicted an
        // entry we already decoded): just resume.
        paused_ = false;
        return;
    }
    redirect(pc);
}

void
Pdu::tick(std::uint64_t now)
{
    // Stage 3 (PIR): write last cycle's decoded entry into the DIC. A
    // fault hook may corrupt the entry or veto the fill entirely.
    if (pirValid_) {
        pirValid_ = false;
        if (hooks_ == nullptr || hooks_->onDicFill(pir_)) {
            dic_.fill(pir_);
            ++stats_.pduFills;
        }
    }

    // Memory completion: parcels arrive at the queue tail. A block that
    // no longer extends the queue (the stream was redirected while it
    // was in flight) is discarded.
    if (memBusy_ && now >= memReadyCycle_) {
        memBusy_ = false;
        const Addr end =
            decodePc_ + static_cast<Addr>(queue_.size()) * kParcelBytes;
        if (memAddr_ == end) {
            for (int i = 0; i < memParcels_; ++i) {
                queue_.push_back(prog_.parcelAt(
                    memAddr_ + static_cast<Addr>(i) * kParcelBytes));
            }
        }
    }

    // Stage 2 (PDR): decode (and fold) from the queue.
    if (!paused_ && !queue_.empty()) {
        if (dic_.lookup(decodePc_) != nullptr) {
            // Wrapped into already decoded code (e.g. around a loop):
            // park until a demand miss re-awakens the stream.
            paused_ = true;
        } else {
            std::vector<Parcel> window(queue_.begin(), queue_.end());
            const Addr window_end =
                decodePc_ +
                static_cast<Addr>(window.size()) * kParcelBytes;
            const bool at_end = window_end >= prog_.textEnd();
            const auto di =
                decoder_.decodeAt(decodePc_, window, at_end);
            if (di) {
                pir_ = *di;
                pirValid_ = true;
                if (di->folded)
                    ++stats_.pduFoldedPairs;
                for (int i = 0; i < di->totalParcels; ++i)
                    queue_.pop_front();
                decodePc_ +=
                    static_cast<Addr>(di->totalParcels) * kParcelBytes;

                // Follow the predicted instruction path.
                const bool follow_taken =
                    di->ctl == Ctl::kJmp || di->ctl == Ctl::kCall ||
                    (di->hasCondBranch() && cfg_.respectPredictionBit &&
                     di->predictTaken);
                if (follow_taken && di->takenPc != decodePc_) {
                    queue_.clear();
                    decodePc_ = di->takenPc;
                    prefetchPc_ = di->takenPc;
                } else if (di->ctl == Ctl::kRet ||
                           di->ctl == Ctl::kIndirect ||
                           di->ctl == Ctl::kHalt) {
                    paused_ = true;
                }
            } else if (at_end && !memBusy_ &&
                       prefetchPc_ >= prog_.textEnd()) {
                throw CrispError("PDU: truncated instruction at end of "
                                 "text segment");
            }
        }
    }

    // Stage 1: prefetch. Request up to a 4-parcel block, clipped to the
    // queue room actually available (a full-size-only rule would
    // deadlock a 6-parcel folded decode window against an 8-parcel
    // queue).
    if (!paused_ && !memBusy_) {
        const Addr text_end = prog_.textEnd();
        const int room =
            cfg_.queueParcels - static_cast<int>(queue_.size());
        if (prefetchPc_ < text_end && room > 0) {
            const Addr remaining =
                (text_end - prefetchPc_) / kParcelBytes;
            memParcels_ = remaining < 4 ? static_cast<int>(remaining) : 4;
            if (memParcels_ > room)
                memParcels_ = room;
            memAddr_ = prefetchPc_;
            memBusy_ = true;
            memReadyCycle_ = now + static_cast<std::uint64_t>(
                                       cfg_.memLatency);
            prefetchPc_ +=
                static_cast<Addr>(memParcels_) * kParcelBytes;
            ++stats_.memFetches;
        }
    }
}

} // namespace crisp
