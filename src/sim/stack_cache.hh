/**
 * @file
 * CRISP's stack cache: the on-chip memory that makes memory-to-memory
 * operand access fast. The original chip kept the top of the stack in
 * a register-file-like structure ("32 192-bit entries ... Stack
 * Cache" feeding the EU operand ports).
 *
 * Model: accesses to stack words within `words` of the current stack
 * pointer hit; deeper frames miss. By default misses carry no timing
 * penalty (the paper's Table 4 shows no operand stalls for its loop,
 * whose frame fits trivially); a penalty can be configured to study
 * deep-recursion behaviour (SimConfig::stackCacheMissPenalty).
 */

#ifndef CRISP_SIM_STACK_CACHE_HH
#define CRISP_SIM_STACK_CACHE_HH

#include <cstdint>

#include "isa/types.hh"

namespace crisp
{

class StackCache
{
  public:
    explicit StackCache(int words) : words_(static_cast<Addr>(words)) {}

    /**
     * Record an access to the stack word at byte address @p addr while
     * the stack pointer is @p sp. @return true on a hit.
     */
    bool
    access(Addr addr, Addr sp)
    {
        const bool hit =
            addr >= sp && addr < sp + words_ * kWordBytes;
        if (hit)
            ++hits_;
        else
            ++misses_;
        return hit;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    void
    reset()
    {
        hits_ = 0;
        misses_ = 0;
    }

  private:
    Addr words_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace crisp

#endif // CRISP_SIM_STACK_CACHE_HH
