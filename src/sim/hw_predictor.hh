/**
 * @file
 * In-pipeline hardware branch predictor.
 *
 * CRISP shipped with the static bit only; the paper evaluated one, two
 * and three bits of dynamic history before rejecting them ("Given the
 * increased complexity of the dynamic strategies, the use of a single
 * static prediction bit in CRISP seems to be a reasonable choice").
 * This class lets the simulator run the road not taken: a small
 * direct-mapped history table consulted at issue and trained at
 * branch resolution, so the end-to-end cycle cost of each scheme can
 * be compared — not just trace accuracy (see
 * bench/ablation_hw_predictor).
 */

#ifndef CRISP_SIM_HW_PREDICTOR_HH
#define CRISP_SIM_HW_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "config.hh"
#include "isa/types.hh"

namespace crisp
{

class HwPredictor
{
  public:
    HwPredictor(PredictorKind kind, int entries)
        : kind_(kind),
          powerOn_(kind == PredictorKind::kDynamic2 ? 2 : 1),
          table_(checkedEntries(kind, entries), Slot{powerOn_, 0})
    {}

    /**
     * Predict the direction of the conditional branch at @p branch_pc
     * whose compiler bit is @p static_bit.
     */
    bool
    predict(Addr branch_pc, bool static_bit) const
    {
        switch (kind_) {
          case PredictorKind::kStaticBit:
            return static_bit;
          case PredictorKind::kDynamic1:
            return counter(branch_pc) >= 1;
          case PredictorKind::kDynamic2:
            return counter(branch_pc) >= 2;
        }
        return static_bit;
    }

    /** Train with a resolved outcome. */
    void
    update(Addr branch_pc, bool taken)
    {
        if (kind_ == PredictorKind::kStaticBit)
            return;
        Slot& s = table_[index(branch_pc)];
        if (s.epoch != epoch_) {
            // First touch since reset(): the slot logically holds its
            // power-on value (lazy invalidation).
            s.epoch = epoch_;
            s.c = powerOn_;
        }
        if (kind_ == PredictorKind::kDynamic1) {
            s.c = taken ? 1 : 0;
            return;
        }
        if (taken)
            s.c = s.c < 3 ? s.c + 1 : 3;
        else
            s.c = s.c > 0 ? s.c - 1 : 0;
    }

    /**
     * Restore every counter to its power-on value (weakly taken) —
     * epoch-tagged lazy invalidation: O(1) per reset instead of
     * rewriting the whole table, with a hard clear on the (rare)
     * epoch wrap so stale tags can never alias.
     */
    void
    reset()
    {
        if (++epoch_ == 0) {
            for (Slot& s : table_) {
                s.c = powerOn_;
                s.epoch = 0;
            }
        }
    }

  private:
    static std::size_t
    checkedEntries(PredictorKind kind, int entries)
    {
        if (kind == PredictorKind::kStaticBit)
            return 1;
        if (entries <= 0 || (entries & (entries - 1)) != 0)
            throw CrispError("predictor entries must be a power of two");
        return static_cast<std::size_t>(entries);
    }

    std::size_t
    index(Addr pc) const
    {
        return (pc / kParcelBytes) & (table_.size() - 1);
    }

    /** The slot's counter, seen through the epoch tag: a stale tag
     *  means the slot still holds its pre-reset training and reads as
     *  the power-on value. */
    int
    counter(Addr pc) const
    {
        const Slot& s = table_[index(pc)];
        return s.epoch == epoch_ ? s.c : powerOn_;
    }

    struct Slot
    {
        int c;
        std::uint32_t epoch;
    };

    PredictorKind kind_;
    int powerOn_;
    std::vector<Slot> table_;
    std::uint32_t epoch_ = 0;
};

} // namespace crisp

#endif // CRISP_SIM_HW_PREDICTOR_HH
