/**
 * @file
 * FastEngine implementation: the threaded dispatch loop.
 *
 * Dispatch strategy: on GCC/Clang each handler ends with its own
 * computed goto through the kind table (replicated indirect branches
 * give the host branch predictor one history slot per handler — the
 * classic direct-threading win). Defining CRISP_NO_COMPUTED_GOTO (or
 * building with a compiler without the labels-as-values extension)
 * selects a single-switch fallback with identical semantics; CI builds
 * both.
 *
 * The workhorse is the trace walker at `trace_entry`: it retires a
 * statically-determined run of entries — sequential ops and, with
 * chaining, unconditionally-taken static jumps/calls — in one
 * activation with a single cancel/budget poll, then hands the
 * terminating control op to its own handler. Every handler exit goes
 * through CRISP_NEXT(), which jumps straight back into the walker when
 * the successor starts a trace (the "chain pointer": a hot loop
 * back-edge never re-enters the dispatcher). Indirect exits resolve
 * their target through a per-entry monomorphic inline cache before
 * falling back to the full address-to-index lookup.
 *
 * Equivalence discipline: every architectural effect below happens in
 * the interpreter's order — count the instruction, then execute it
 * (memory faults land *after* counting); branch targets are read
 * before the taken decision and before a call's push; fetch faults are
 * raised before counting. The three-way differential in
 * `crisptorture --engine-diff` holds this loop to that contract on
 * every seed, with chaining both on and off.
 */

#include "fastengine.hh"

#include <algorithm>

#if defined(__GNUC__) && !defined(CRISP_NO_COMPUTED_GOTO)
#define CRISP_THREADED_DISPATCH 1
#else
#define CRISP_THREADED_DISPATCH 0
#endif

namespace crisp
{

namespace
{

inline Word
readOp(const TOperand& o, const MemoryImage& mem, Addr sp, Word accum)
{
    switch (o.mode) {
      case AddrMode::kImm:
        return static_cast<Word>(o.v);
      case AddrMode::kAccum:
        return accum;
      case AddrMode::kNone:
        return 0;
      case AddrMode::kStack:
        return static_cast<Word>(mem.read32(sp + o.v));
      case AddrMode::kAbs:
        return static_cast<Word>(mem.read32(o.v));
      case AddrMode::kInd:
        return static_cast<Word>(mem.read32(mem.read32(sp + o.v)));
    }
    return 0;
}

inline void
writeOp(const TOperand& o, Word v, MemoryImage& mem, Addr sp,
        Word& accum)
{
    switch (o.mode) {
      case AddrMode::kAccum:
        accum = v;
        return;
      case AddrMode::kStack:
        mem.write32(sp + o.v, static_cast<std::uint32_t>(v));
        return;
      case AddrMode::kAbs:
        mem.write32(o.v, static_cast<std::uint32_t>(v));
        return;
      case AddrMode::kInd:
        mem.write32(mem.read32(sp + o.v),
                    static_cast<std::uint32_t>(v));
        return;
      default:
        // The interpreter reaches the same error through
        // operandAddress() on a non-addressable destination.
        throw CrispError("operand has no address");
    }
}

/** Execute one computational body (the non-branch half of an entry). */
inline void
execBody(const TOp& t, MemoryImage& mem, Addr& sp, Word& accum,
         bool& flag)
{
    switch (t.body) {
      case TBody::kNop:
        return;
      case TBody::kEnter:
        sp -= t.frameBytes;
        return;
      case TBody::kLeave:
        sp += t.frameBytes;
        return;
      case TBody::kAddAccImm:
        // Same value evalAlu(kAdd, accum, src.v) produces: unsigned
        // wraparound add on the immediate's bit pattern.
        accum = static_cast<Word>(static_cast<std::uint32_t>(accum) +
                                  t.src.v);
        return;
      case TBody::kAlu2: {
        // Accumulator destination is by far the most common shape
        // (crispcc keeps every expression in the accumulator); skip
        // the generic operand resolvers for it.
        if (t.dst.mode == AddrMode::kAccum) {
            const Word b = t.src.mode == AddrMode::kImm
                               ? static_cast<Word>(t.src.v)
                               : readOp(t.src, mem, sp, accum);
            accum = evalAlu(t.bodyOp, accum, b);
            return;
        }
        const Word a = readOp(t.dst, mem, sp, accum);
        const Word b = readOp(t.src, mem, sp, accum);
        writeOp(t.dst, evalAlu(t.bodyOp, a, b), mem, sp, accum);
        return;
      }
      case TBody::kAlu3: {
        const Word a = readOp(t.dst, mem, sp, accum);
        const Word b = readOp(t.src, mem, sp, accum);
        accum = evalAlu(t.bodyOp, a, b);
        return;
      }
      case TBody::kCmp: {
        const Word a = readOp(t.dst, mem, sp, accum);
        const Word b = readOp(t.src, mem, sp, accum);
        flag = evalCompare(t.bodyOp, a, b);
        return;
      }
      case TBody::kMov:
        writeOp(t.dst, readOp(t.src, mem, sp, accum), mem, sp, accum);
        return;
      case TBody::kBad:
        throw CrispError("interpreter: unhandled opcode " +
                         std::string(opcodeName(t.bodyOp)));
    }
}

/** The message Program::parcelAt would raise for address @p a
 *  (alignment is checked before the text bounds, like parcelAt). */
inline const char*
fetchError(Addr a)
{
    return a % kParcelBytes != 0 ? "unaligned parcel fetch"
                                 : "parcel fetch outside text segment";
}

} // namespace

FastEngine::FastEngine(const Program& prog, const SimConfig& cfg,
                       PredecodeCache* shared_predecode,
                       const Translation* shared_translation,
                       const IndirectHints* hints)
    : cfg_(cfg)
{
    if (shared_translation != nullptr) {
        if (shared_translation->policy() != cfg.foldPolicy ||
            shared_translation->chaining() != cfg.enableChaining) {
            throw CrispError(
                "fastengine: shared translation was built under a "
                "different fold policy or chaining mode");
        }
        // Warm path: borrow the translation's program (its text is the
        // one the translation provably describes) — no copy, no
        // decode, no translate. Only the memory image is built.
        prog_ = &shared_translation->program();
        trans_ = shared_translation;
    } else {
        ownedProg_.emplace(prog);
        prog_ = &*ownedProg_;
        ownedTrans_ = std::make_unique<Translation>(
            *prog_, cfg.foldPolicy, shared_predecode,
            cfg.enableChaining, hints);
        trans_ = ownedTrans_.get();
    }
    mem_.load(*prog_);
    ic_.assign(trans_->size(), IC{});
    seedInlineCaches();
    pc_ = prog_->entry;
    sp_ = (prog_->memBytes - kWordBytes) & ~(kWordBytes - 1);
    stats_.engine = EngineKind::kFast;
}

void
FastEngine::seedInlineCaches()
{
    // Pre-fill the monomorphic caches with the translation's likely
    // targets: a hint-conforming first execution hits immediately.
    // Sound for the same reason refills are — indexOf is a pure
    // function of the (epoch-stable) translation.
    for (const auto& [idx, target] : trans_->icSeeds()) {
        IC& c = ic_[idx];
        c.valid = true;
        c.target = target;
        c.idx = trans_->indexOf(target);
    }
}

void
FastEngine::flushInlineCaches()
{
    std::fill(ic_.begin(), ic_.end(), IC{});
    seedInlineCaches();
    ++icFlushes_;
}

void
FastEngine::reset()
{
    // Query before revert: revert clears the very bits we test.
    const bool text_dirty =
        mem_.dirtyInRange(prog_->textBase, prog_->textEnd());
    mem_.revert(*prog_);
    if (text_dirty) {
        // Translations derive from the immutable Program (never the
        // image), so a rebuild provably reproduces the same table — a
        // shared one can stay pinned. Owned ones are rebuilt to keep
        // the defensive contract cheap to audit; either way the epoch
        // bump and the inline-cache flush are observable.
        if (ownedTrans_)
            ownedTrans_->rebuild();
        ++transEpoch_;
        flushInlineCaches();
    }
    pc_ = prog_->entry;
    sp_ = (prog_->memBytes - kWordBytes) & ~(kWordBytes - 1);
    accum_ = 0;
    flag_ = false;
    halted_ = false;
    stats_ = SimStats{};
    stats_.engine = EngineKind::kFast;
}

Word
FastEngine::wordAt(const std::string& symbol) const
{
    const auto a = prog_->lookup(symbol);
    if (!a)
        throw CrispError("unknown symbol: " + symbol);
    return static_cast<Word>(mem_.read32(*a));
}

const SimStats&
FastEngine::run(ExecObserver* observer)
{
    if (halted_ || stats_.faulted)
        return stats_;
    // A cancelled/budget-stopped machine may be resumed; the final
    // status of this run replaces the previous stop status.
    stats_.cancelled = false;
    stats_.timedOut = false;
    if (observer)
        runLoop<true>(observer);
    else
        runLoop<false>(nullptr);
    return stats_;
}

#if CRISP_THREADED_DISPATCH
#define CRISP_HANDLER(K) h_##K:
#define CRISP_DISPATCH() \
    goto* kDispatchTable[static_cast<std::size_t>(op->kind)]
#else
#define CRISP_HANDLER(K) case TKind::K:
#define CRISP_DISPATCH() goto dispatch
#endif

/** Continue at *op: straight into the trace walker when the successor
 *  starts a trace (hot back-edges skip the dispatcher), else through
 *  the handler table. */
#define CRISP_NEXT()          \
    do {                      \
        if (op->trace != 0)   \
            goto trace_entry; \
        CRISP_DISPATCH();     \
    } while (0)

template <bool Observed>
void
FastEngine::runLoop(ExecObserver* observer)
{
    (void)observer;
    const TOp* const ops = trans_->ops();
    IC* const ic = ic_.data();
    MemoryImage& mem = mem_;
    Addr sp = sp_;
    Word accum = accum_;
    bool flag = flag_;
    std::uint64_t apparent = 0;
    std::uint64_t issued = 0;
    std::uint64_t ic_hits = 0;
    std::uint64_t ic_misses = 0;
    std::uint64_t* const counts = stats_.opcodeCounts.data();

    // Fuel: instructions until the next cancel/budget poll. Polls
    // happen only on trace boundaries, so a trace may finish past the
    // exact budget; the poll interval plus kTraceCap bound the
    // overshoot.
    std::int64_t fuel = static_cast<std::int64_t>(
        std::min<std::uint64_t>(cfg_.maxCycles, kCancelCheckInterval));
    // 0 = keep going, 1 = cancelled, 2 = instruction budget exhausted.
    const auto poll = [&]() -> int {
        if (cancel_ != nullptr &&
            cancel_->load(std::memory_order_relaxed)) {
            return 1;
        }
        const std::uint64_t done = stats_.apparent + apparent;
        if (done >= cfg_.maxCycles)
            return 2;
        fuel = static_cast<std::int64_t>(std::min<std::uint64_t>(
            cfg_.maxCycles - done, kCancelCheckInterval));
        return 0;
    };

    // Monomorphic inline cache consult for an indirect exit at *t:
    // last target and its pre-resolved index, refilled on miss. Sound
    // because indexOf is a pure function of the (epoch-stable)
    // translation — the caches are flushed whenever it changes.
    const auto resolve = [&](const TOp* t, Addr target) {
        IC& c = ic[t - ops];
        if (c.valid && c.target == target) {
            ++ic_hits;
            return c.idx;
        }
        ++ic_misses;
        c.valid = true;
        c.target = target;
        c.idx = trans_->indexOf(target);
        return c.idx;
    };

    [[maybe_unused]] const auto emitBranch = [&](const TOp* t,
                                                 bool taken,
                                                 Addr target) {
        BranchEvent ev;
        ev.pc = t->branchPc;
        ev.op = t->branchOp;
        ev.conditional = isConditionalBranch(t->branchOp);
        ev.taken = taken;
        ev.predictTaken = t->predictTaken;
        ev.target = target;
        ev.fallThrough = t->seqPc;
        ev.shortForm = t->shortForm;
        ev.folded = t->folded;
        observer->onBranch(ev);
    };

    const TOp* op = nullptr;
    Addr npc = pc_;
    std::uint32_t ip = trans_->indexOf(pc_);
    int stop = 0;

    try {
#if CRISP_THREADED_DISPATCH
        // Order must mirror TKind exactly.
        const void* const kDispatchTable[] = {
            &&h_kChain, &&h_kJmp,  &&h_kCond, &&h_kCall,
            &&h_kRet,   &&h_kHalt, &&h_kTrap,
        };
#endif
        if (ip == kNoIdx)
            goto bad_fetch;
        op = &ops[ip];
        CRISP_NEXT();

#if !CRISP_THREADED_DISPATCH
      dispatch:
        switch (op->kind) {
#endif

        // Trace superblock: retire the whole statically-determined
        // run — sequential ops plus (with chaining) unconditionally-
        // taken static jumps/calls — in one activation, then hand the
        // terminating control op to its own handler. Every kChain op
        // heads a trace, so this handler *is* the walker.
        CRISP_HANDLER(kChain)
      trace_entry:
        {
            fuel -= op->traceInstr;
            if (fuel <= 0) [[unlikely]] {
                if ((stop = poll()) != 0)
                    goto stopped;
            }
            std::uint32_t n = op->trace;
            for (;;) {
                if (op->kind == TKind::kChain) {
                    ++apparent;
                    ++issued;
                    ++counts[static_cast<std::size_t>(op->bodyOp)];
                    if constexpr (Observed)
                        observer->onInstruction(op->pc, op->bodyOp);
                    execBody(*op, mem, sp, accum, flag);
                    ip = op->seqIdx;
                } else if (op->dynTarget) {
                    // Predicted indirect exit (kJmp or kCall with a
                    // singleton hint / self-predicted table word):
                    // full handler bookkeeping inline, in the
                    // interpreter's order, then a runtime guard on the
                    // predicted target. A misprediction simply ends
                    // the trace early through the generic resolver —
                    // the prediction is never trusted architecturally.
                    ++issued;
                    if (op->folded) {
                        ++apparent;
                        ++counts[static_cast<std::size_t>(op->bodyOp)];
                        if constexpr (Observed)
                            observer->onInstruction(op->pc, op->bodyOp);
                        execBody(*op, mem, sp, accum, flag);
                    }
                    ++apparent;
                    ++counts[static_cast<std::size_t>(op->branchOp)];
                    if constexpr (Observed)
                        observer->onInstruction(op->branchPc,
                                                op->branchOp);
                    const Addr itarget =
                        mem.read32(op->bmode == BranchMode::kIndSp
                                       ? sp + op->dynSpec
                                       : op->dynSpec);
                    if (op->kind == TKind::kCall) {
                        // Push after the target read (a faulting read
                        // must leave SP untouched).
                        sp -= kWordBytes;
                        mem.write32(sp, op->callRetPc);
                    }
                    ++stats_.branches;
                    if (op->folded)
                        ++stats_.foldedBranches;
                    if constexpr (Observed)
                        emitBranch(op, true, itarget);
                    if (itarget == op->predTarget) [[likely]] {
                        ip = op->predIdx;
                    } else {
                        ip = resolve(op, itarget);
                        if (ip == kNoIdx) [[unlikely]] {
                            npc = itarget;
                            goto bad_fetch;
                        }
                        op = &ops[ip];
                        CRISP_NEXT();
                    }
                } else {
                    // Static kJmp (possibly folded) or kCall, known
                    // taken: same bookkeeping order as the standalone
                    // handlers below.
                    ++issued;
                    if (op->folded) {
                        ++apparent;
                        ++counts[static_cast<std::size_t>(op->bodyOp)];
                        if constexpr (Observed)
                            observer->onInstruction(op->pc, op->bodyOp);
                        execBody(*op, mem, sp, accum, flag);
                    }
                    ++apparent;
                    ++counts[static_cast<std::size_t>(op->branchOp)];
                    if constexpr (Observed)
                        observer->onInstruction(op->branchPc,
                                                op->branchOp);
                    if (op->kind == TKind::kCall) {
                        sp -= kWordBytes;
                        mem.write32(sp, op->callRetPc);
                    }
                    ++stats_.branches;
                    if (op->folded)
                        ++stats_.foldedBranches;
                    if constexpr (Observed)
                        emitBranch(op, true, op->takenPc);
                    ip = op->takenIdx;
                }
                if (--n == 0)
                    break;
                op = &ops[ip];
            }
            if (ip == kNoIdx) [[unlikely]] {
                npc = op->kind == TKind::kChain ? op->seqPc
                                                : op->takenPc;
                goto bad_fetch;
            }
            op = &ops[ip];
            CRISP_NEXT();
        }

        CRISP_HANDLER(kJmp)
        {
            // Reached only for indirect jumps, or with chaining off
            // (static jumps are trace heads then trace members).
            fuel -= 1 + op->folded;
            if (fuel <= 0) [[unlikely]] {
                if ((stop = poll()) != 0)
                    goto stopped;
            }
            ++issued;
            if (op->folded) {
                ++apparent;
                ++counts[static_cast<std::size_t>(op->bodyOp)];
                if constexpr (Observed)
                    observer->onInstruction(op->pc, op->bodyOp);
                execBody(*op, mem, sp, accum, flag);
            }
            ++apparent;
            ++counts[static_cast<std::size_t>(op->branchOp)];
            if constexpr (Observed)
                observer->onInstruction(op->branchPc, op->branchOp);
            Addr target;
            if (op->dynTarget) [[unlikely]] {
                target = mem.read32(op->bmode == BranchMode::kIndSp
                                        ? sp + op->dynSpec
                                        : op->dynSpec);
                ip = resolve(op, target);
            } else {
                target = op->takenPc;
                ip = op->takenIdx;
            }
            ++stats_.branches;
            if (op->folded)
                ++stats_.foldedBranches;
            if constexpr (Observed)
                emitBranch(op, true, target);
            if (ip == kNoIdx) [[unlikely]] {
                npc = target;
                goto bad_fetch;
            }
            op = &ops[ip];
            CRISP_NEXT();
        }

        CRISP_HANDLER(kCond)
        {
            fuel -= 1 + op->folded;
            if (fuel <= 0) [[unlikely]] {
                if ((stop = poll()) != 0)
                    goto stopped;
            }
            ++issued;
            if (op->folded) {
                ++apparent;
                ++counts[static_cast<std::size_t>(op->bodyOp)];
                if constexpr (Observed)
                    observer->onInstruction(op->pc, op->bodyOp);
                // May write the flag the folded branch reads (a folded
                // compare): body first, exactly like the interpreter.
                execBody(*op, mem, sp, accum, flag);
            }
            ++apparent;
            ++counts[static_cast<std::size_t>(op->branchOp)];
            if constexpr (Observed)
                observer->onInstruction(op->branchPc, op->branchOp);
            Addr target;
            if (op->dynTarget) [[unlikely]] {
                // Target memory is read even when not taken (and may
                // fault), matching the interpreter's order.
                target = mem.read32(op->bmode == BranchMode::kIndSp
                                        ? sp + op->dynSpec
                                        : op->dynSpec);
            } else {
                target = op->takenPc;
            }
            const bool taken = op->condWhenTrue ? flag : !flag;
            ++stats_.branches;
            ++stats_.condBranches;
            if (op->folded)
                ++stats_.foldedBranches;
            if constexpr (Observed)
                emitBranch(op, taken, target);
            if (taken) {
                ip = op->dynTarget ? resolve(op, target)
                                   : op->takenIdx;
                if (ip == kNoIdx) [[unlikely]] {
                    npc = target;
                    goto bad_fetch;
                }
            } else {
                ip = op->seqIdx;
                if (ip == kNoIdx) [[unlikely]] {
                    npc = op->seqPc;
                    goto bad_fetch;
                }
            }
            op = &ops[ip];
            CRISP_NEXT();
        }

        CRISP_HANDLER(kCall)
        {
            // Reached only for indirect calls, or with chaining off
            // (calls are three-parcel and therefore never folded).
            --fuel;
            if (fuel <= 0) [[unlikely]] {
                if ((stop = poll()) != 0)
                    goto stopped;
            }
            ++issued;
            ++apparent;
            ++counts[static_cast<std::size_t>(op->branchOp)];
            if constexpr (Observed)
                observer->onInstruction(op->branchPc, op->branchOp);
            Addr target;
            if (op->dynTarget) [[unlikely]] {
                target = mem.read32(op->bmode == BranchMode::kIndSp
                                        ? sp + op->dynSpec
                                        : op->dynSpec);
            } else {
                target = op->takenPc;
            }
            // Push after the target read: a faulting indirect target
            // must leave SP untouched (interpreter order).
            sp -= kWordBytes;
            mem.write32(sp, op->callRetPc);
            ++stats_.branches;
            if constexpr (Observed)
                emitBranch(op, true, target);
            ip = op->dynTarget ? resolve(op, target) : op->takenIdx;
            if (ip == kNoIdx) [[unlikely]] {
                npc = target;
                goto bad_fetch;
            }
            op = &ops[ip];
            CRISP_NEXT();
        }

        CRISP_HANDLER(kRet)
        {
            --fuel;
            if (fuel <= 0) [[unlikely]] {
                if ((stop = poll()) != 0)
                    goto stopped;
            }
            ++issued;
            ++apparent;
            ++counts[static_cast<std::size_t>(Opcode::kReturn)];
            if constexpr (Observed)
                observer->onInstruction(op->pc, Opcode::kReturn);
            sp += op->frameBytes;
            const Addr target = mem.read32(sp);
            sp += kWordBytes;
            ip = resolve(op, target);
            if (ip == kNoIdx) [[unlikely]] {
                npc = target;
                goto bad_fetch;
            }
            op = &ops[ip];
            CRISP_NEXT();
        }

        CRISP_HANDLER(kHalt)
        {
            ++issued;
            ++apparent;
            ++counts[static_cast<std::size_t>(Opcode::kHalt)];
            if constexpr (Observed)
                observer->onInstruction(op->pc, Opcode::kHalt);
            halted_ = true;
            stats_.halted = true;
            pc_ = op->pc;
            goto out;
        }

        CRISP_HANDLER(kTrap)
        {
            // No decode exists here; the interpreter's fetch raises
            // this error before counting anything.
            stats_.faulted = true;
            stats_.faultPc = op->pc;
            stats_.faultReason = trans_->trapMessage(op->trapMsg);
            pc_ = op->pc;
            goto out;
        }

#if !CRISP_THREADED_DISPATCH
        }
        throw CrispError("fastengine: invalid dispatch kind");
#endif

      bad_fetch:
        stats_.faulted = true;
        stats_.faultPc = npc;
        stats_.faultReason = fetchError(npc);
        pc_ = npc;
        goto out;

      stopped:
        if (stop == 1)
            stats_.cancelled = true;
        else
            stats_.timedOut = true;
        pc_ = op->pc;

      out:;
    } catch (const CrispError& e) {
        // A precise machine fault mid-instruction: counted state up to
        // and including the faulting instruction is already committed.
        stats_.faulted = true;
        stats_.faultPc = op != nullptr ? op->pc : npc;
        stats_.faultReason = e.what();
        pc_ = stats_.faultPc;
    }

    sp_ = sp;
    accum_ = accum;
    flag_ = flag;
    stats_.apparent += apparent;
    stats_.issued += issued;
    icHits_ += ic_hits;
    icMisses_ += ic_misses;
}

#undef CRISP_NEXT
#undef CRISP_HANDLER
#undef CRISP_DISPATCH

// The two loop flavours used by run().
template void FastEngine::runLoop<true>(ExecObserver*);
template void FastEngine::runLoop<false>(ExecObserver*);

} // namespace crisp
