/**
 * @file
 * FastEngine: a direct-threaded functional execution engine over the
 * predecode tables.
 *
 * Where CrispCpu models the paper's hardware cycle by cycle, FastEngine
 * answers only the architectural question — final state, instruction
 * counts, branch trace — as fast as the host allows. It compiles each
 * predecoded DIC line into a threaded-code op (translate.hh) and
 * dispatches with computed goto on GCC/Clang (a switch-threaded
 * fallback is selected by defining CRISP_NO_COMPUTED_GOTO), executing
 * each folded straight-line-plus-branch region as a superblock: one
 * handler activation retires the whole sequential run, and the
 * terminating branch transfers through the translation's pre-resolved
 * Next-PC / Alternate-Next-PC indices, so hot loops never leave
 * translated code.
 *
 * Contracts shared with the other engines:
 *  - architectural-state equivalence with the reference interpreter,
 *    including fault points and messages (enforced by the lockstep
 *    differential in src/verify/enginediff.hh and by
 *    `crisptorture --engine-diff`);
 *  - the cooperative cancel flag is polled on superblock boundaries
 *    (same kCancelCheckInterval cadence as CrispCpu);
 *  - SimConfig::maxCycles bounds the run — a functional engine has no
 *    cycles, so the limit is applied to apparent (architectural)
 *    instructions, checked at superblock boundaries;
 *  - MemoryImage dirty-line tracking powers reset(): if the program
 *    image's text window was dirtied, the revert also rebuilds the
 *    translation so it can never describe stale bytes.
 *
 * Timing fields of SimStats stay zero; `engine` is kFast.
 */

#ifndef CRISP_SIM_FASTENGINE_HH
#define CRISP_SIM_FASTENGINE_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "config.hh"
#include "interp/interpreter.hh"
#include "interp/memory_image.hh"
#include "isa/program.hh"
#include "predecode.hh"
#include "stats.hh"
#include "translate.hh"

namespace crisp
{

class FastEngine
{
  public:
    /**
     * @p shared_predecode works exactly as for CrispCpu: an optional
     * externally-owned predecode cache (crispd's warmed registry
     * tables) so repeated runs of one program skip all decode work.
     * Must have been built over a Program with the same text segment.
     */
    explicit FastEngine(const Program& prog, const SimConfig& cfg = {},
                        PredecodeCache* shared_predecode = nullptr);

    FastEngine(const FastEngine&) = delete;
    FastEngine& operator=(const FastEngine&) = delete;

    /**
     * Run until halt, fault, cancellation or the instruction budget.
     * @p observer sees exactly the interpreter's event sequence
     * (per-instruction onInstruction calls and BranchEvents); passing
     * one selects a slower per-instruction loop, so lockstep checking
     * costs nothing when unused.
     */
    const SimStats& run(ExecObserver* observer = nullptr);

    /**
     * Return to the power-on state over the same program and config:
     * dirty-line memory revert, statistics zeroed, and — if the text
     * window of the image was written since the last reset — a
     * translation rebuild, so a reverted image can never execute
     * through stale translations. Nothing is reallocated on the clean
     * path; replay loops reuse one engine. The cancel flag is
     * retained, like CrispCpu.
     */
    void reset();

    /** Cooperative cancellation flag (not owned; null clears). Polled
     *  every few thousand instructions at superblock boundaries; the
     *  run stops with SimStats::cancelled set and can be resumed by
     *  calling run() again. */
    void
    setCancelFlag(const std::atomic<bool>* flag)
    {
        cancel_ = flag;
    }

    // Architectural state (valid after run) ---------------------------
    /** Address execution would continue from (entry, or the stop
     *  point after a cancel/budget stop). */
    Addr nextPc() const { return pc_; }
    Addr sp() const { return sp_; }
    Word accum() const { return accum_; }
    bool flag() const { return flag_; }
    bool halted() const { return halted_; }
    const MemoryImage& memory() const { return mem_; }
    Word wordAt(const std::string& symbol) const;

    const SimStats& stats() const { return stats_; }

    /** Translation build count — bumped when reset() invalidates after
     *  text-window writes (observable by the self-modifying-image
     *  tests). */
    std::uint64_t translationEpoch() const { return trans_.epoch(); }

  private:
    template <bool Observed>
    void runLoop(ExecObserver* observer);

    /** Owned copy: the engine's lifetime is self-contained. */
    Program prog_;
    SimConfig cfg_;
    MemoryImage mem_;
    Translation trans_;
    SimStats stats_;

    Addr pc_ = 0;
    Addr sp_ = 0;
    Word accum_ = 0;
    bool flag_ = false;
    bool halted_ = false;

    /** Same poll cadence as CrispCpu's cycle loop. */
    static constexpr int kCancelCheckInterval = 4096;
    const std::atomic<bool>* cancel_ = nullptr;
};

} // namespace crisp

#endif // CRISP_SIM_FASTENGINE_HH
