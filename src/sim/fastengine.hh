/**
 * @file
 * FastEngine: a direct-threaded functional execution engine over the
 * predecode tables.
 *
 * Where CrispCpu models the paper's hardware cycle by cycle, FastEngine
 * answers only the architectural question — final state, instruction
 * counts, branch trace — as fast as the host allows. It compiles each
 * predecoded DIC line into a threaded-code op (translate.hh) and
 * dispatches with computed goto on GCC/Clang (a switch-threaded
 * fallback is selected by defining CRISP_NO_COMPUTED_GOTO), executing
 * each statically-determined trace as a superblock: one handler
 * activation retires a run of basic blocks — straight-line code plus,
 * with SimConfig::enableChaining, any unconditionally-taken static
 * branches between them — under a single cancel/budget poll, and the
 * terminating branch transfers through the translation's pre-resolved
 * Next-PC / Alternate-Next-PC indices, so hot loops never leave
 * translated code. Indirect exits (returns, indirect jumps/calls)
 * carry a monomorphic inline cache: the last target address and its
 * table index, so a stable callee re-enters its trace without an
 * address-to-index lookup.
 *
 * Contracts shared with the other engines:
 *  - architectural-state equivalence with the reference interpreter,
 *    including fault points and messages (enforced by the lockstep
 *    differential in src/verify/enginediff.hh and by
 *    `crisptorture --engine-diff`, with chaining both on and off);
 *  - the cooperative cancel flag is polled on trace boundaries (same
 *    kCancelCheckInterval cadence as CrispCpu, overshooting by at most
 *    one trace — bounded by kTraceCap);
 *  - SimConfig::maxCycles bounds the run — a functional engine has no
 *    cycles, so the limit is applied to apparent (architectural)
 *    instructions, checked at trace boundaries;
 *  - MemoryImage dirty-line tracking powers reset(): if the program
 *    image's text window was dirtied, the revert also invalidates the
 *    translation (and every inline cache) so it can never describe
 *    stale bytes.
 *
 * Warm replay: a Translation built once (e.g. crispd's per
 * program-hash × policy registry entry) can be shared read-only across
 * engines and replays — the constructor then skips the program copy
 * and the whole translate/predecode pass, leaving only the memory
 * image load. reset() keeps the translation pinned whenever the text
 * window stayed clean, so a replay pays O(dirty memory) and nothing
 * else.
 *
 * Timing fields of SimStats stay zero; `engine` is kFast.
 */

#ifndef CRISP_SIM_FASTENGINE_HH
#define CRISP_SIM_FASTENGINE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "config.hh"
#include "interp/interpreter.hh"
#include "interp/memory_image.hh"
#include "isa/program.hh"
#include "predecode.hh"
#include "stats.hh"
#include "translate.hh"

namespace crisp
{

class FastEngine
{
  public:
    /**
     * @p shared_predecode works exactly as for CrispCpu: an optional
     * externally-owned predecode cache (crispd's warmed registry
     * tables) so repeated runs of one program skip all decode work.
     * Must have been built over a Program with the same text segment.
     *
     * @p shared_translation goes one step further: an externally-owned
     * read-only Translation of the same program under the same fold
     * policy and chaining mode (it is rejected otherwise). The engine
     * then borrows the translation's Program — @p prog is only used to
     * seed the memory image — and construction does no decode or
     * translate work at all. The translation must outlive the engine.
     *
     * @p hints optionally carries proven indirect-target sets from the
     * value-set analysis (see IndirectHints): singletons let traces
     * chain through indirect exits under a runtime guard, bounded sets
     * pre-seed the inline caches. Ignored when a shared translation is
     * passed (the shared table already embeds its own hints).
     */
    explicit FastEngine(const Program& prog, const SimConfig& cfg = {},
                        PredecodeCache* shared_predecode = nullptr,
                        const Translation* shared_translation = nullptr,
                        const IndirectHints* hints = nullptr);

    FastEngine(const FastEngine&) = delete;
    FastEngine& operator=(const FastEngine&) = delete;

    /**
     * Run until halt, fault, cancellation or the instruction budget.
     * @p observer sees exactly the interpreter's event sequence
     * (per-instruction onInstruction calls and BranchEvents); passing
     * one selects a slower per-instruction loop, so lockstep checking
     * costs nothing when unused.
     */
    const SimStats& run(ExecObserver* observer = nullptr);

    /**
     * Return to the power-on state over the same program and config:
     * dirty-line memory revert, statistics zeroed, and — if the text
     * window of the image was written since the last reset — a
     * translation invalidation (rebuild of an owned translation, inline
     * caches flushed either way), so a reverted image can never execute
     * through stale translations. Nothing is reallocated on the clean
     * path; replay loops reuse one engine. The cancel flag is
     * retained, like CrispCpu.
     */
    void reset();

    /** Cooperative cancellation flag (not owned; null clears). Polled
     *  every few thousand instructions at trace boundaries; the run
     *  stops with SimStats::cancelled set and can be resumed by
     *  calling run() again. */
    void
    setCancelFlag(const std::atomic<bool>* flag)
    {
        cancel_ = flag;
    }

    // Architectural state (valid after run) ---------------------------
    /** Address execution would continue from (entry, or the stop
     *  point after a cancel/budget stop). */
    Addr nextPc() const { return pc_; }
    Addr sp() const { return sp_; }
    Word accum() const { return accum_; }
    bool flag() const { return flag_; }
    bool halted() const { return halted_; }
    const MemoryImage& memory() const { return mem_; }
    Word wordAt(const std::string& symbol) const;

    const SimStats& stats() const { return stats_; }

    /** Translation build count for *this engine* — bumped when reset()
     *  invalidates after text-window writes (observable by the
     *  self-modifying-image tests); starts at 1. */
    std::uint64_t translationEpoch() const { return transEpoch_; }

    // Inline-cache telemetry (host-side, non-architectural) -----------
    /** Indirect-exit resolutions served by the monomorphic cache. */
    std::uint64_t icHits() const { return icHits_; }
    /** Indirect-exit resolutions that fell back to the full
     *  address-to-index lookup (and refilled the cache). */
    std::uint64_t icMisses() const { return icMisses_; }
    /** Whole-cache flushes (translation invalidations). */
    std::uint64_t icFlushes() const { return icFlushes_; }

  private:
    template <bool Observed>
    void runLoop(ExecObserver* observer);

    void flushInlineCaches();
    void seedInlineCaches();

    /** Monomorphic inline cache: last resolved target of an indirect
     *  exit and its table index (kNoIdx = leaves text, also cached). */
    struct IC
    {
        Addr target = 0;
        std::uint32_t idx = kNoIdx;
        bool valid = false;
    };

    /** Owned copy when the engine stands alone; borrowed from the
     *  shared translation otherwise (no copy on the warm path). */
    std::optional<Program> ownedProg_;
    const Program* prog_ = nullptr;
    SimConfig cfg_;
    MemoryImage mem_;
    std::unique_ptr<Translation> ownedTrans_;
    const Translation* trans_ = nullptr;
    std::vector<IC> ic_;
    SimStats stats_;

    Addr pc_ = 0;
    Addr sp_ = 0;
    Word accum_ = 0;
    bool flag_ = false;
    bool halted_ = false;

    std::uint64_t transEpoch_ = 1;
    std::uint64_t icHits_ = 0;
    std::uint64_t icMisses_ = 0;
    std::uint64_t icFlushes_ = 0;

    /** Same poll cadence as CrispCpu's cycle loop. */
    static constexpr int kCancelCheckInterval = 4096;
    const std::atomic<bool>* cancel_ = nullptr;
};

} // namespace crisp

#endif // CRISP_SIM_FASTENGINE_HH
