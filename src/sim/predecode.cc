/**
 * @file
 * Predecode cache implementation.
 */

#include "predecode.hh"

#include <span>

namespace crisp
{

void
PredecodeCache::compute(Entry& e, Addr pc, FoldPolicy policy)
{
    const std::size_t idx = (pc - prog_.textBase) / kParcelBytes;
    const std::span<const Parcel> window(prog_.text.data() + idx,
                                         prog_.text.size() - idx);
    const FoldDecoder dec(policy);
    // The maximal window ends exactly at the end of text, so at_end is
    // always true here; decodeAt fails only for an instruction whose
    // encoding runs off the segment. A decode error thrown here leaves
    // the entry uncomputed on purpose (see at()).
    const auto di = dec.decodeAt(pc, window, /*at_end=*/true);
    e.valid = di.has_value();
    if (di)
        e.di = *di;
    e.computed = true;
}

bool
PredecodeCache::warmAll(FoldPolicy policy)
{
    for (Addr pc = textBase_; pc < textEnd_; pc += kParcelBytes) {
        try {
            at(pc, policy);
        } catch (const CrispError&) {
            // This address throws on every touch (e.g. an indirect
            // conditional branch encoding); the entry stays uncomputed,
            // so the table is not immutable and cannot be shared.
            return false;
        }
    }
    return true;
}

} // namespace crisp
