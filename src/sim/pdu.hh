/**
 * @file
 * The Prefetch and Decode Unit: a three-stage pipeline that fetches
 * parcels from main memory into an 8-parcel instruction queue, decodes
 * (and folds) them in the PDR stage, and writes decoded entries into the
 * Decoded Instruction Cache from the PIR stage.
 *
 * The PDU runs decoupled from the Execution Unit: it streams along the
 * predicted instruction path (following unconditional and
 * predicted-taken folded branches), pauses when it wraps into already
 * decoded code, and is redirected by EU-side DIC misses.
 */

#ifndef CRISP_SIM_PDU_HH
#define CRISP_SIM_PDU_HH

#include <cstdint>
#include <deque>

#include "config.hh"
#include "decoded.hh"
#include "dic.hh"
#include "fault_hooks.hh"
#include "isa/program.hh"
#include "stats.hh"

namespace crisp
{

class Pdu
{
  public:
    Pdu(const Program& prog, const SimConfig& cfg, DecodedCache& dic,
        SimStats& stats)
        : prog_(prog), cfg_(cfg), dic_(dic), stats_(stats),
          decoder_(cfg.foldPolicy)
    {
        redirect(prog.entry);
    }

    /**
     * Advance one cycle. Order of operations models the three stages:
     * the PIR latch (decoded last cycle) fills the DIC first, then the
     * PDR stage decodes from the queue, then the prefetcher moves
     * parcels from memory toward the queue.
     */
    void tick(std::uint64_t now);

    /**
     * EU-side demand: the EU missed in the DIC at @p pc. Redirects the
     * prefetch stream unless it is already on its way there.
     */
    void demand(Addr pc);

    /** Install fault-injection hooks (applied at DIC fill time). */
    void setFaultHooks(FaultHooks* hooks) { hooks_ = hooks; }

  private:
    void redirect(Addr pc);

    /** Is @p pc already covered by the queue or the decode stream? */
    bool streaming_toward(Addr pc) const;

    const Program& prog_;
    const SimConfig& cfg_;
    DecodedCache& dic_;
    SimStats& stats_;
    FoldDecoder decoder_;

    /** Byte address of the next parcel the prefetcher will request. */
    Addr prefetchPc_ = 0;
    /** Byte address of the first parcel in the queue (decode point). */
    Addr decodePc_ = 0;
    /** The instruction queue (parcels at decodePc_, decodePc_+2, ...). */
    std::deque<Parcel> queue_;

    /** In-flight memory fetch. */
    bool memBusy_ = false;
    std::uint64_t memReadyCycle_ = 0;
    Addr memAddr_ = 0;
    int memParcels_ = 0;

    /** PIR latch: entry decoded last cycle, to be written to the DIC. */
    bool pirValid_ = false;
    DecodedInst pir_;

    /** Optional fault-injection hooks (not owned). */
    FaultHooks* hooks_ = nullptr;

    /**
     * The stream pauses once it decodes into code whose DIC entry is
     * already present (it has caught its own tail, e.g. gone once
     * around a loop); a demand miss wakes it again.
     */
    bool paused_ = false;
};

} // namespace crisp

#endif // CRISP_SIM_PDU_HH
