/**
 * @file
 * The Prefetch and Decode Unit: a three-stage pipeline that fetches
 * parcels from main memory into an 8-parcel instruction queue, decodes
 * (and folds) them in the PDR stage, and writes decoded entries into the
 * Decoded Instruction Cache from the PIR stage.
 *
 * The PDU runs decoupled from the Execution Unit: it streams along the
 * predicted instruction path (following unconditional and
 * predicted-taken folded branches), pauses when it wraps into already
 * decoded code, and is redirected by EU-side DIC misses.
 *
 * The PDR stage normally reads decode results from a whole-program
 * predecode cache (predecode.hh) — decode work happens once per
 * address, the cycle-accurate gating on queue occupancy is unchanged.
 * SimConfig::usePredecode = false forces the legacy re-decoding path.
 */

#ifndef CRISP_SIM_PDU_HH
#define CRISP_SIM_PDU_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>

#include "config.hh"
#include "decoded.hh"
#include "dic.hh"
#include "fault_hooks.hh"
#include "isa/program.hh"
#include "predecode.hh"
#include "stats.hh"

namespace crisp
{

class Pdu
{
  public:
    /**
     * @p predecode optionally shares a predecode cache with the owning
     * CPU (so the PDR stage and the retire-time checker memoize into
     * the same tables). When null and cfg.usePredecode is set, the PDU
     * owns a private cache.
     */
    Pdu(const Program& prog, const SimConfig& cfg, DecodedCache& dic,
        SimStats& stats, PredecodeCache* predecode = nullptr);

    /**
     * Advance one cycle. Order of operations models the three stages:
     * the PIR latch (decoded last cycle) fills the DIC first, then the
     * PDR stage decodes from the queue, then the prefetcher moves
     * parcels from memory toward the queue.
     */
    void tick(std::uint64_t now);

    /**
     * EU-side demand: the EU missed in the DIC at @p pc. Redirects the
     * prefetch stream unless it is already on its way there.
     */
    void demand(Addr pc);

    /** Install fault-injection hooks (applied at DIC fill time). */
    void setFaultHooks(FaultHooks* hooks) { hooks_ = hooks; }

    /** Power-on state: empty queue, latches, and memory port, stream
     *  redirected to the program entry. Allocation-free. */
    void
    reset()
    {
        memBusy_ = false;
        pirValid_ = false;
        redirect(prog_.entry);
    }

    /**
     * If every PDU stage is provably idle until the in-flight memory
     * fetch lands — the PIR latch is empty, the PDR stage is gated
     * waiting for more parcels, the prefetcher is blocked on the busy
     * memory port, and a demand at @p issue_pc would be a no-op because
     * the stream is already headed there — return the cycle the fetch
     * completes. Otherwise return 0. The CPU uses this to fast-forward
     * over pure miss-stall cycles without simulating them one by one.
     */
    std::uint64_t pureWaitUntil(Addr issue_pc) const;

  private:
    /**
     * The instruction queue as a fixed-capacity, allocation-free
     * buffer. Parcels stay physically contiguous (the head is
     * compacted to the front when a push would run off the storage
     * end), so the decode window is a plain span — no per-decode copy.
     */
    class ParcelRing
    {
      public:
        static constexpr int kStorage = 64;

        int size() const { return size_; }
        bool empty() const { return size_ == 0; }
        void clear() { head_ = 0; size_ = 0; }
        Parcel front() const { return buf_[head_]; }

        void
        push_back(Parcel p)
        {
            if (head_ + size_ == kStorage) {
                std::memmove(buf_, buf_ + head_,
                             static_cast<std::size_t>(size_) *
                                 sizeof(Parcel));
                head_ = 0;
            }
            buf_[head_ + size_++] = p;
        }

        /** Append @p n contiguous parcels (one arriving fetch block). */
        void
        append(const Parcel* p, int n)
        {
            if (head_ + size_ + n > kStorage) {
                std::memmove(buf_, buf_ + head_,
                             static_cast<std::size_t>(size_) *
                                 sizeof(Parcel));
                head_ = 0;
            }
            std::memcpy(buf_ + head_ + size_, p,
                        static_cast<std::size_t>(n) * sizeof(Parcel));
            size_ += n;
        }

        void
        pop_front(int n)
        {
            head_ += n;
            size_ -= n;
        }

        std::span<const Parcel>
        window() const
        {
            return {buf_ + head_, static_cast<std::size_t>(size_)};
        }

      private:
        Parcel buf_[kStorage];
        int head_ = 0;
        int size_ = 0;
    };

    void redirect(Addr pc);

    /** Is @p pc already covered by the queue or the decode stream? */
    bool streaming_toward(Addr pc) const;

    const Program& prog_;
    const SimConfig& cfg_;
    DecodedCache& dic_;
    SimStats& stats_;
    FoldDecoder decoder_;
    /** prog_.textEnd(), hoisted out of the per-cycle stages. */
    const Addr textEnd_;

    /** Predecode tables consulted by the PDR stage (null: legacy
     *  re-decoding path). Not owned unless ownedPredecode_ is set. */
    PredecodeCache* predecode_ = nullptr;
    std::unique_ptr<PredecodeCache> ownedPredecode_;

    /** Byte address of the next parcel the prefetcher will request. */
    Addr prefetchPc_ = 0;
    /** Byte address of the first parcel in the queue (decode point). */
    Addr decodePc_ = 0;
    /** The instruction queue (parcels at decodePc_, decodePc_+2, ...). */
    ParcelRing queue_;

    /** In-flight memory fetch. */
    bool memBusy_ = false;
    std::uint64_t memReadyCycle_ = 0;
    Addr memAddr_ = 0;
    int memParcels_ = 0;

    /**
     * PIR latch: entry decoded last cycle, to be written to the DIC.
     * On the predecode path pirSrc_ points straight into the (stable)
     * predecode table — the entry is copied once, into the DIC. The
     * legacy path re-decoded into a temporary, so it latches a copy in
     * pirCopy_; fault hooks also corrupt a private copy, never the
     * shared tables.
     */
    bool pirValid_ = false;
    const DecodedInst* pirSrc_ = nullptr;
    DecodedInst pirCopy_;

    /** Optional fault-injection hooks (not owned). */
    FaultHooks* hooks_ = nullptr;

    /**
     * The stream pauses once it decodes into code whose DIC entry is
     * already present (it has caught its own tail, e.g. gone once
     * around a loop); a demand miss wakes it again.
     */
    bool paused_ = false;
};

} // namespace crisp

#endif // CRISP_SIM_PDU_HH
