/**
 * @file
 * Whole-program predecode cache.
 *
 * Program text is immutable for the lifetime of a simulation, so for a
 * fixed FoldPolicy the canonical decode at a parcel address is a pure
 * function of the text: FoldDecoder::decodeAt over a window running to
 * the end of the text segment. This cache memoizes that function into a
 * flat per-parcel table, turning the dominant per-cycle cost of the PDR
 * stage (and of the retire-time golden re-decode used by
 * SimConfig::checkDecode) into an array lookup.
 *
 * The memoized entry is exactly the decode the PDU would produce from
 * any sufficiently large window: decodeAt reads at most
 * FoldDecoder::windowNeed(parcel0) parcels, so once that many are
 * visible (or the window ends at the text segment's end) the result no
 * longer depends on the window size. The PDU therefore keeps its
 * cycle-accurate gating on queue occupancy and only consults the table
 * once a decode would have been possible anyway — timing is unchanged,
 * decode work is done once per (address, policy) instead of once per
 * visit.
 *
 * Tables are built lazily, one per FoldPolicy, so a simulation that
 * never re-decodes under a second policy (checkDecode's unfolded-golden
 * fallback) pays nothing for it.
 */

#ifndef CRISP_SIM_PREDECODE_HH
#define CRISP_SIM_PREDECODE_HH

#include <vector>

#include "config.hh"
#include "decoded.hh"
#include "isa/program.hh"

namespace crisp
{

class PredecodeCache
{
  public:
    /** @p prog must outlive the cache (it holds a reference). */
    explicit PredecodeCache(const Program& prog)
        : prog_(prog), textBase_(prog.textBase), textEnd_(prog.textEnd())
    {}

    PredecodeCache(const PredecodeCache&) = delete;
    PredecodeCache& operator=(const PredecodeCache&) = delete;

    struct Entry
    {
        DecodedInst di{};
        /** False: no decode exists at this address (an instruction
         *  truncated by the end of the text segment). */
        bool valid = false;
        bool computed = false;
    };

    /**
     * The canonical decode at @p pc under @p policy, memoized.
     *
     * @p pc must be parcel aligned and inside the text segment.
     * Decode errors (e.g. an indirect conditional branch) propagate as
     * CrispError and are deliberately not memoized: every touch of a
     * malformed address fails exactly like the re-decoding path does.
     */
    const Entry&
    at(Addr pc, FoldPolicy policy)
    {
        if (pc % kParcelBytes != 0 || pc < textBase_ || pc >= textEnd_)
            throw CrispError("predecode: address outside text segment");
        auto& table = tables_[static_cast<std::size_t>(policy)];
        if (table.empty())
            table.resize(prog_.text.size());
        Entry& e = table[(pc - textBase_) / kParcelBytes];
        if (!e.computed)
            compute(e, pc, policy);
        return e;
    }

    const Program& program() const { return prog_; }

    /**
     * Eagerly compute every parcel entry for @p policy, making that
     * table read-only from then on — the precondition for sharing one
     * cache across concurrent simulations (crispd's program registry
     * hands the same warmed cache to every worker running the same
     * program × policy). Invalid decodes memoize as valid=false like
     * the lazy path.
     *
     * @return true when every entry was memoized; false when some
     * address threw a decode error (such a table stays partially lazy
     * and MUST NOT be shared across threads — give each run a private
     * cache instead).
     */
    bool warmAll(FoldPolicy policy);

  private:
    void compute(Entry& e, Addr pc, FoldPolicy policy);

    const Program& prog_;
    /** Text bounds, hoisted out of the per-lookup fast path. */
    const Addr textBase_;
    const Addr textEnd_;
    /** One lazily-allocated table per FoldPolicy value. */
    std::vector<Entry> tables_[3];
};

} // namespace crisp

#endif // CRISP_SIM_PREDECODE_HH
