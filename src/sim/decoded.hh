/**
 * @file
 * The canonical decoded instruction form held in the Decoded Instruction
 * Cache, and the folding decoder that produces it.
 *
 * A DIC entry corresponds to the paper's 192-bit canonical form: the
 * decoded computational operation, a Next-PC field, an Alternate
 * Next-PC field for conditional branches, and the dedicated
 * "modifies-condition-code" bit carried down the EU pipeline.
 *
 * Branch Folding happens here: when the PDU decodes a one- or
 * three-parcel non-branch instruction followed by a one-parcel branch,
 * the two become a single DecodedInst. The branch then never occupies an
 * Execution Unit pipeline slot.
 */

#ifndef CRISP_SIM_DECODED_HH
#define CRISP_SIM_DECODED_HH

#include <optional>
#include <span>
#include <string>

#include "config.hh"
#include "isa/encoding.hh"
#include "isa/instruction.hh"
#include "isa/types.hh"

namespace crisp
{

/** Control transfer attached to a decoded entry. */
enum class Ctl : std::uint8_t {
    kSeq = 0,   //!< fall through to seqPc
    kJmp,       //!< unconditional, static target
    kCondT,     //!< branch to takenPc if the flag is true
    kCondF,     //!< branch to takenPc if the flag is false
    kCall,      //!< push return address, go to static target
    kRet,       //!< pop return address (target read from the stack)
    kIndirect,  //!< unconditional, target read from memory
    kHalt,      //!< stop the machine
};

/** A decoded (possibly folded) instruction: one DIC entry. */
struct DecodedInst
{
    /** Address of the (carrier) instruction. */
    Addr pc = 0;

    /** Computational part. For a lone branch entry this is a nop. */
    Instruction body;

    /** True when this entry is a branch that could not be folded and
     *  therefore occupies an EU pipeline slot by itself. */
    bool loneBranch = false;

    /** True when a following branch was folded into this entry. */
    bool folded = false;

    Ctl ctl = Ctl::kSeq;

    /** Static prediction bit of the attached conditional branch. */
    bool predictTaken = false;

    /** Sequential successor: address past the entire entry. */
    Addr seqPc = 0;

    /** Static branch target (kJmp / kCondT / kCondF / kCall). */
    Addr takenPc = 0;

    /** Address of the attached branch instruction itself. */
    Addr branchPc = 0;

    /** Opcode of the attached branch (for statistics and traces). */
    Opcode branchOp = Opcode::kJmp;

    /** One-parcel branch encoding? (for the 95%-short-format stat). */
    bool branchShortForm = false;

    /** Return address pushed by kCall. */
    Addr callRetPc = 0;

    /** Indirect target addressing (kIndirect). */
    BranchMode bmode = BranchMode::kAbs;
    std::uint32_t spec = 0;

    /** The dedicated decoded bit: body modifies the condition flag. */
    bool writesCc = false;

    /** Total parcels consumed from the instruction stream. */
    int totalParcels = 1;

    bool
    hasCondBranch() const
    {
        return ctl == Ctl::kCondT || ctl == Ctl::kCondF;
    }

    /** Does the attached conditional branch transfer for flag value
     *  @p flag? */
    bool
    condTaken(bool flag) const
    {
        return ctl == Ctl::kCondT ? flag : !flag;
    }

    /** Architectural instruction count represented by this entry. */
    int
    archCount() const
    {
        return folded ? 2 : 1;
    }

    std::string toString() const;
};

/**
 * The PDU's decode-and-fold stage, corresponding to the PDR stage logic
 * of the paper's Figure 2 (the tpcmx offset multiplexor, the branch
 * adjust, and the Next-PC selection).
 */
class FoldDecoder
{
  public:
    explicit FoldDecoder(FoldPolicy policy) : policy_(policy) {}

    /**
     * How many parcels must be visible in the decode window to decode
     * the instruction whose first parcel is @p parcel0, including the
     * one-parcel fold lookahead where applicable.
     */
    int windowNeed(Parcel parcel0) const;

    /** As above with instructionLength(parcel0) already in hand, so the
     *  per-cycle PDR gate derives the length exactly once. */
    int windowNeed(Parcel parcel0, int len) const;

    /**
     * Decode one (possibly folded) entry.
     *
     * @param pc      byte address of window[0]
     * @param window  parcels available for decoding, starting at pc
     * @param at_end  true if window ends exactly at the end of text, so
     *                a missing fold-lookahead parcel means "no branch
     *                follows" rather than "wait for more parcels"
     * @return the entry and the number of parcels consumed, or nullopt
     *         if the window is too small (caller should refill).
     */
    std::optional<DecodedInst>
    decodeAt(Addr pc, std::span<const Parcel> window, bool at_end) const;

    FoldPolicy policy() const { return policy_; }

  private:
    FoldPolicy policy_;
};

} // namespace crisp

#endif // CRISP_SIM_DECODED_HH
