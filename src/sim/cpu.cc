/**
 * @file
 * CRISP CPU cycle model implementation.
 */

#include "cpu.hh"

#include <iomanip>
#include <sstream>

namespace crisp
{

CrispCpu::CrispCpu(const Program& prog, const SimConfig& cfg,
                   PredecodeCache* shared_predecode)
    : prog_(prog), cfg_(cfg), mem_(prog_), dic_(cfg.dicEntries),
      ownedPredecode_(shared_predecode != nullptr || !cfg.usePredecode
                          ? nullptr
                          : std::make_unique<PredecodeCache>(prog_)),
      predecode_(shared_predecode != nullptr ? shared_predecode
                                             : ownedPredecode_.get()),
      pdu_(prog_, cfg_, dic_, stats_, predecode_),
      hwPredictor_(cfg.predictor, cfg.predictorEntries),
      stackCache_(cfg.stackCacheWords)
{
    sp_ = (prog.memBytes - kWordBytes) & ~(kWordBytes - 1);
    nextIssuePc_ = prog.entry;
}

void
CrispCpu::reset()
{
    mem_.revert(prog_); // O(bytes written), not O(memBytes)
    dic_.invalidateAll();
    stats_ = SimStats{};
    pdu_.reset();
    hwPredictor_.reset();
    stackCache_.reset();
    sp_ = (prog_.memBytes - kWordBytes) & ~(kWordBytes - 1);
    accum_ = 0;
    flag_ = false;
    halted_ = false;
    for (Stage& s : stages_)
        s.valid = false;
    irP_ = &stages_[0];
    orP_ = &stages_[1];
    rrP_ = &stages_[2];
    nextIssuePc_ = prog_.entry;
    stallUntil_ = 0;
    block_ = Block::kNone;
    now_ = 0;
    lastMissPc_ = ~Addr{0};
    penaltyStall_ = 0;
    cancelCountdown_ = kCancelCheckInterval;
    traceNote_.clear();
}

void
CrispCpu::setCancelFlag(const std::atomic<bool>* flag)
{
    cancel_ = flag;
    cancelCountdown_ = kCancelCheckInterval;
}

void
CrispCpu::setFaultHooks(FaultHooks* hooks)
{
    hooks_ = hooks;
    pdu_.setFaultHooks(hooks);
}

Word
CrispCpu::readOperand(const Operand& o) const
{
    switch (o.mode) {
      case AddrMode::kImm:
        return o.value;
      case AddrMode::kAccum:
        return accum_;
      case AddrMode::kNone:
        return 0;
      default:
        return static_cast<Word>(mem_.read32(operandAddress(o)));
    }
}

Addr
CrispCpu::operandAddress(const Operand& o) const
{
    switch (o.mode) {
      case AddrMode::kStack: {
        const Addr a = sp_ + static_cast<Addr>(o.value) * kWordBytes;
        stackCache_.access(a, sp_);
        return a;
      }
      case AddrMode::kAbs:
        return static_cast<Addr>(o.value);
      case AddrMode::kInd: {
        const Addr slot =
            sp_ + static_cast<Addr>(o.value) * kWordBytes;
        stackCache_.access(slot, sp_);
        return mem_.read32(slot);
      }
      default:
        throw CrispError("operand has no address");
    }
}

void
CrispCpu::writeOperand(const Operand& o, Word v)
{
    if (o.mode == AddrMode::kAccum) {
        accum_ = v;
        return;
    }
    mem_.write32(operandAddress(o), static_cast<std::uint32_t>(v));
}

void
CrispCpu::executeBody(const DecodedInst& di)
{
    if (!di.loneBranch) {
        const Instruction& b = di.body;
        switch (b.op) {
          case Opcode::kNop:
          case Opcode::kHalt:
          case Opcode::kReturn: // SP handled with the control transfer
            break;
          case Opcode::kEnter:
            sp_ -= static_cast<Addr>(b.dst.value) * kWordBytes;
            break;
          case Opcode::kLeave:
            sp_ += static_cast<Addr>(b.dst.value) * kWordBytes;
            break;
          case Opcode::kMov:
            writeOperand(b.dst, readOperand(b.src));
            break;
          default:
            if (isCompare(b.op)) {
                flag_ = evalCompare(b.op, readOperand(b.dst),
                                    readOperand(b.src));
            } else if (isAlu3(b.op)) {
                accum_ = evalAlu(b.op, readOperand(b.dst),
                                 readOperand(b.src));
            } else if (isAlu2(b.op)) {
                writeOperand(b.dst,
                             evalAlu(b.op, readOperand(b.dst),
                                     readOperand(b.src)));
            } else {
                throw CrispError("cpu: unhandled body opcode");
            }
            break;
        }
    }
    if (di.ctl == Ctl::kCall) {
        sp_ -= kWordBytes;
        mem_.write32(sp_, di.callRetPc);
    }
}

void
CrispCpu::squashYounger(Stage* upto_exclusive)
{
    // Squash everything younger than the stage holding the mispredicted
    // branch. Stage age order (oldest first): RR, OR, IR.
    Stage* const order[] = {rrP_, orP_, irP_};
    bool younger = false;
    for (Stage* s : order) {
        if (s == upto_exclusive) {
            younger = true;
            continue;
        }
        if (younger && s->valid) {
            s->valid = false;
            ++stats_.squashed;
        }
    }
    // Any issue block raised by a (now squashed) younger instruction is
    // void.
    block_ = Block::kNone;
}

void
CrispCpu::redirectAfterMispredict(const Stage& s)
{
    note("mispredict-redirect");
    nextIssuePc_ = s.actualTaken ? s.di.takenPc : s.di.seqPc;
    // The Alternate-PC is routed into IR.Next-PC during the next clock;
    // the instruction being clocked in is killed. Issue resumes the
    // cycle after.
    stallUntil_ = now_ + 2;
    block_ = Block::kNone;
}

void
CrispCpu::issueStage()
{
    if (penaltyStall_ > 0) {
        --penaltyStall_;
        ++stats_.issueStallCycles;
        ++stats_.stackPenaltyCycles;
        note("stack-penalty");
        return;
    }
    if (block_ != Block::kNone || now_ < stallUntil_) {
        ++stats_.issueStallCycles;
        if (block_ == Block::kIndirect)
            ++stats_.indirectStallCycles;
        else if (block_ == Block::kNone)
            ++stats_.redirectStallCycles;
        return;
    }

    const DecodedInst* e = dic_.lookup(nextIssuePc_);
    if (e == nullptr) {
        ++stats_.issueStallCycles;
        ++stats_.dicMissStallCycles;
        if (lastMissPc_ != nextIssuePc_) {
            ++stats_.dicMisses;
            lastMissPc_ = nextIssuePc_;
        }
        pdu_.demand(nextIssuePc_);
        note("dic-miss");
        return;
    }
    ++stats_.dicHits;
    lastMissPc_ = ~Addr{0};

    // The IR slot is recycled from the stage that just retired; reset
    // it field by field rather than assigning a fresh Stage (the di
    // copy below overwrites the only non-flag member).
    Stage& ir = irS();
    ir.valid = true;
    ir.di = *e;
    ir.specCond = false;
    ir.predictedTaken = false;
    ir.resolvedAtIssue = false;
    ir.actualTaken = false;
    ir.mispredicted = false;
    ir.delaySlots = 0;
    if (hooks_ != nullptr)
        hooks_->onIssue(ir.di);

    // Control decisions read the IR-stage copy, not the cache: an
    // issue-time fault hook corrupts exactly what the EU acts on.
    const DecodedInst& d = ir.di;
    switch (d.ctl) {
      case Ctl::kSeq:
        nextIssuePc_ = d.seqPc;
        break;
      case Ctl::kJmp:
      case Ctl::kCall:
        nextIssuePc_ = d.takenPc;
        break;
      case Ctl::kHalt:
        block_ = Block::kHalt;
        break;
      case Ctl::kRet:
      case Ctl::kIndirect:
        block_ = Block::kIndirect;
        break;
      case Ctl::kCondT:
      case Ctl::kCondF: {
        const bool cc_busy = (orS().valid && orS().di.writesCc) ||
                             (rrS().valid && rrS().di.writesCc) ||
                             d.writesCc;
        if (!cc_busy) {
            // No compare in the pipeline: the flag is architecturally
            // final, so the branch "has effectively been turned into an
            // unconditional branch" — zero cycles lost regardless of
            // the prediction bit.
            const bool taken = d.condTaken(flag_);
            ir.resolvedAtIssue = true;
            ir.actualTaken = taken;
            ir.predictedTaken = taken;
            nextIssuePc_ = taken ? d.takenPc : d.seqPc;
            note("resolved-at-issue");
        } else {
            const bool pred =
                cfg_.respectPredictionBit &&
                hwPredictor_.predict(d.branchPc, d.predictTaken);
            ir.specCond = true;
            ir.predictedTaken = pred;
            nextIssuePc_ = pred ? d.takenPc : d.seqPc;
        }
        break;
      }
    }
}

void
CrispCpu::emitRetireEvents(const Stage& s, ExecObserver* observer)
{
    const DecodedInst& di = s.di;

    if (!di.loneBranch) {
        ++stats_.opcodeCounts[static_cast<std::size_t>(di.body.op)];
        if (observer)
            observer->onInstruction(di.pc, di.body.op);
    }
    if (di.folded || di.loneBranch) {
        ++stats_.opcodeCounts[static_cast<std::size_t>(di.branchOp)];
        ++stats_.branches;
        stats_.branchDelayCycles += s.delaySlots;
        if (di.folded)
            ++stats_.foldedBranches;
        if (di.hasCondBranch())
            ++stats_.condBranches;
        if (observer) {
            observer->onInstruction(di.branchPc, di.branchOp);
            BranchEvent ev;
            ev.pc = di.branchPc;
            ev.op = di.branchOp;
            ev.conditional = di.hasCondBranch();
            ev.taken = di.hasCondBranch() ? s.actualTaken : true;
            ev.predictTaken = di.predictTaken;
            ev.target = di.takenPc;
            ev.fallThrough = di.seqPc;
            ev.shortForm = di.branchShortForm;
            ev.folded = di.folded;
            ev.resolvedAtIssue = s.resolvedAtIssue;
            ev.delayCycles = s.delaySlots;
            observer->onBranch(ev);
        }
    }
}

void
CrispCpu::recordFault(Addr pc, const std::string& reason)
{
    stats_.faulted = true;
    stats_.faultPc = pc;
    stats_.faultReason = reason;
    halted_ = true;
    note("fault");
}

void
CrispCpu::retireStage(ExecObserver* observer)
{
    if (!rrS().valid)
        return;
    try {
        retireImpl(observer);
    } catch (const DicCorruptionError& e) {
        // The decode checker caught corrupted DIC metadata before the
        // entry could touch architectural state.
        stats_.dicCorruption = true;
        recordFault(rrS().di.pc, e.what());
    } catch (const CrispError& e) {
        // Precise machine fault: architectural effects happen only at
        // retirement, so the faulting instruction is exactly
        // identified and nothing younger has touched state.
        recordFault(rrS().di.pc, e.what());
    }
    // The stack-cache counters only move while an instruction retires,
    // so the published stats need refreshing only here, not per cycle.
    stats_.stackCacheHits = stackCache_.hits();
    stats_.stackCacheMisses = stackCache_.misses();
}

const DecodedInst*
CrispCpu::goldenDecodeAt(Addr pc, FoldPolicy policy) const
{
    if (pc % kParcelBytes != 0 || !prog_.inText(pc)) {
        throw DicCorruptionError(
            "DIC corruption: retiring entry claims PC 0x" +
            std::to_string(pc) + " outside the text segment");
    }
    if (cfg_.usePredecode) {
        // The same memoized tables the PDU decodes from: the golden
        // re-decode is a table lookup after the first retire at a PC.
        const PredecodeCache::Entry& e = predecode_->at(pc, policy);
        if (!e.valid) {
            throw DicCorruptionError(
                "DIC corruption: no valid decode exists at PC 0x" +
                std::to_string(pc));
        }
        return &e.di;
    }
    goldenWindow_.clear();
    const Addr end = prog_.textEnd();
    for (Addr a = pc;
         a < end &&
         goldenWindow_.size() < static_cast<std::size_t>(kMaxParcels + 1);
         a += kParcelBytes) {
        goldenWindow_.push_back(prog_.parcelAt(a));
    }
    const Addr wend =
        pc + static_cast<Addr>(goldenWindow_.size()) * kParcelBytes;
    const FoldDecoder dec(policy);
    const auto di = dec.decodeAt(pc, goldenWindow_, wend >= end);
    if (!di) {
        throw DicCorruptionError(
            "DIC corruption: no valid decode exists at PC 0x" +
            std::to_string(pc));
    }
    goldenScratch_ = *di;
    return &goldenScratch_;
}

namespace
{

/**
 * Architectural equivalence of a pipeline entry against a golden
 * decode. Hint state — the static prediction bit, the one-parcel
 * branch-format flag — is excluded: faults there must stay benign.
 */
bool
sameDecode(const DecodedInst& a, const DecodedInst& g)
{
    if (a.loneBranch != g.loneBranch || a.folded != g.folded ||
        a.ctl != g.ctl || a.seqPc != g.seqPc ||
        a.writesCc != g.writesCc || a.totalParcels != g.totalParcels)
        return false;
    if (!a.loneBranch && !(a.body == g.body))
        return false;
    switch (a.ctl) {
      case Ctl::kJmp:
      case Ctl::kCondT:
      case Ctl::kCondF:
        if (a.takenPc != g.takenPc)
            return false;
        break;
      case Ctl::kCall:
        if (a.takenPc != g.takenPc || a.callRetPc != g.callRetPc)
            return false;
        break;
      case Ctl::kIndirect:
        if (a.bmode != g.bmode || a.spec != g.spec)
            return false;
        break;
      default:
        break;
    }
    if ((a.folded || a.loneBranch) &&
        (a.branchPc != g.branchPc || a.branchOp != g.branchOp))
        return false;
    return true;
}

} // namespace

void
CrispCpu::checkDecodedEntry(const DecodedInst& di) const
{
    const DecodedInst* golden = goldenDecodeAt(di.pc, cfg_.foldPolicy);
    if (sameDecode(di, *golden))
        return;
    // A fold decision is a hint: an entry that decodes the same
    // instruction unfolded (the no-fold golden) is architecturally
    // valid too, it just costs an extra EU slot for the branch.
    if (golden->folded) {
        if (sameDecode(di, *goldenDecodeAt(di.pc, FoldPolicy::kNone)))
            return;
        // On the legacy path the no-fold decode clobbered the shared
        // scratch slot; re-derive the policy golden for the message.
        golden = goldenDecodeAt(di.pc, cfg_.foldPolicy);
    }
    throw DicCorruptionError(
        "DIC corruption detected at retire: cached entry [" +
        di.toString() + "] is not a valid decode of the text at 0x" +
        std::to_string(di.pc) + " (golden: [" + golden->toString() +
        "])");
}

void
CrispCpu::retireImpl(ExecObserver* observer)
{
    Stage& rr = rrS();
    const DecodedInst& di = rr.di;
    // Verify the entry against a fresh decode of the program text
    // BEFORE any architectural effect: corruption of non-hint DIC
    // metadata becomes a precise fault, never a wrong answer.
    if (cfg_.checkDecode)
        checkDecodedEntry(di);
    const std::uint64_t misses_before = stackCache_.misses();
    executeBody(di);
    if (cfg_.stackCacheMissPenalty > 0) {
        penaltyStall_ += (stackCache_.misses() - misses_before) *
                         static_cast<std::uint64_t>(
                             cfg_.stackCacheMissPenalty);
    }

    ++stats_.issued;
    stats_.apparent += static_cast<std::uint64_t>(di.archCount());

    // Resolve control.
    switch (di.ctl) {
      case Ctl::kHalt:
        halted_ = true;
        stats_.halted = true;
        break;
      case Ctl::kRet: {
        sp_ += static_cast<Addr>(di.body.dst.value) * kWordBytes;
        const Addr target = mem_.read32(sp_);
        sp_ += kWordBytes;
        nextIssuePc_ = target;
        block_ = Block::kNone;
        stallUntil_ = now_ + 1;
        if (observer)
            observer->onInstruction(di.pc, Opcode::kReturn);
        // Architectural count for the return body itself.
        ++stats_.opcodeCounts[
            static_cast<std::size_t>(Opcode::kReturn)];
        note("indirect-target");
        return;
      }
      case Ctl::kIndirect: {
        Addr target = 0;
        if (di.bmode == BranchMode::kIndAbs) {
            target = mem_.read32(di.spec);
        } else {
            target = mem_.read32(
                sp_ + static_cast<Addr>(
                          static_cast<std::int32_t>(di.spec)) *
                          kWordBytes);
        }
        nextIssuePc_ = target;
        rr.di.takenPc = target; // for the retire-order branch event
        block_ = Block::kNone;
        stallUntil_ = now_ + 1;
        rr.delaySlots = 2; // target read at retirement: two bubbles
        break;
      }
      case Ctl::kCondT:
      case Ctl::kCondF:
        if (rr.specCond) {
            // A lone conditional branch (or a folded compare+branch
            // pair) resolves in its own RR stage. The flag is final
            // here: its compare retired no later than this cycle.
            rr.specCond = false;
            rr.actualTaken = di.condTaken(flag_);
            if (rr.actualTaken != rr.predictedTaken) {
                rr.mispredicted = true;
                rr.delaySlots = 3;
                squashYounger(&rr);
                redirectAfterMispredict(rr);
            }
        }
        break;
      default:
        break;
    }

    // Statistics for a surviving conditional branch, and history
    // training for the (optional) dynamic hardware predictor.
    if (di.hasCondBranch()) {
        if (rr.resolvedAtIssue)
            ++stats_.resolvedAtIssue;
        else
            ++stats_.speculated;
        if (rr.mispredicted)
            ++stats_.mispredicts;
        hwPredictor_.update(di.branchPc, rr.actualTaken);
    }

    emitRetireEvents(rr, observer);

    // Case (b): a retiring compare verifies speculative FOLDED branches
    // still in the pipeline, oldest first, recovering from that stage's
    // Alternate-PC register.
    if (di.writesCc && !rr.mispredicted) {
        for (Stage* s : {orP_, irP_}) {
            if (!s->valid)
                continue;
            if (s == irP_ && orS().valid && orS().di.writesCc)
                break; // the IR branch depends on the newer compare
            if (!s->specCond || !s->di.hasCondBranch() ||
                s->di.loneBranch || s->di.writesCc) {
                continue;
            }
            s->specCond = false;
            s->actualTaken = s->di.condTaken(flag_);
            if (s->actualTaken != s->predictedTaken) {
                s->mispredicted = true;
                // Recovery uses the Alternate-PC of the stage the
                // carrier occupies: one slot of separation leaves the
                // branch in OR (2 lost), two slots leave it in IR (1).
                s->delaySlots = s == orP_ ? 2 : 1;
                squashYounger(s);
                redirectAfterMispredict(*s);
                break;
            }
        }
    }
}

bool
CrispCpu::tick(ExecObserver* observer)
{
    if (halted_ || stats_.cancelled)
        return false;

    if (cancel_ != nullptr && --cancelCountdown_ <= 0) {
        cancelCountdown_ = kCancelCheckInterval;
        if (cancel_->load(std::memory_order_relaxed)) {
            stats_.cancelled = true;
            return false;
        }
    }

    // Advance the pipeline: RR <- OR <- IR, recycling the just-retired
    // RR slot as the new (empty) IR. Pointer rotation, no Stage copies.
    Stage* const retired = rrP_;
    rrP_ = orP_;
    orP_ = irP_;
    irP_ = retired;
    irP_->valid = false;

    try {
        pdu_.tick(now_);
        issueStage();
    } catch (const CrispError& e) {
        // A corrupted Next-PC can steer fetch/decode somewhere no
        // instruction stream exists (off the text segment, mid-parcel
        // garbage). Surface it as a precise machine fault rather than
        // letting the exception escape the cycle loop.
        stats_.dicCorruption = true;
        recordFault(nextIssuePc_,
                    std::string("fetch/decode: ") + e.what());
    }
    retireStage(observer);
    if (traceSink_)
        emitTraceLine();

    ++now_;
    stats_.cycles = now_;
    return !halted_;
}

void
CrispCpu::maybeSkipStalls()
{
    // Fast-forward a provable run of DIC-miss stall cycles. The state
    // must be exactly the steady miss-wait: EU pipeline drained, issue
    // unblocked but missing at nextIssuePc_ (with the miss already
    // counted, so lastMissPc_ matches), and every PDU stage idle until
    // its in-flight fetch lands. Each such cycle does precisely
    //   ++issueStallCycles; ++dicMissStallCycles; (demand is a no-op)
    // so a batch of n cycles is n of each counter plus the clock, and
    // the simulation is cycle-for-cycle identical to ticking through.
    // Tracing disables the skip (each stall cycle emits a line).
    if (halted_ || traceSink_ != nullptr)
        return;
    if (irS().valid || orS().valid || rrS().valid)
        return;
    if (penaltyStall_ != 0 || block_ != Block::kNone ||
        now_ < stallUntil_) {
        return;
    }
    if (lastMissPc_ != nextIssuePc_ ||
        dic_.lookup(nextIssuePc_) != nullptr) {
        return;
    }
    std::uint64_t until = pdu_.pureWaitUntil(nextIssuePc_);
    if (until > cfg_.maxCycles)
        until = cfg_.maxCycles; // run() stops there; don't overshoot
    if (until <= now_)
        return;
    const std::uint64_t n = until - now_;
    stats_.issueStallCycles += n;
    stats_.dicMissStallCycles += n;
    now_ = until;
    stats_.cycles = now_;
}

const SimStats&
CrispCpu::run(ExecObserver* observer)
{
    while (!halted_ && now_ < cfg_.maxCycles) {
        if (!tick(observer))
            break;
        maybeSkipStalls();
    }
    if (!halted_ && !stats_.cancelled)
        stats_.timedOut = true;
    return stats_;
}

void
CrispCpu::noteSlow(const char* what)
{
    if (!traceNote_.empty())
        traceNote_ += ' ';
    traceNote_ += what;
}

void
CrispCpu::emitTraceLine()
{
    auto stage_text = [](const Stage& s) -> std::string {
        if (!s.valid)
            return "--";
        std::ostringstream os;
        os << "0x" << std::hex << s.di.pc << std::dec << ":";
        if (s.di.loneBranch)
            os << opcodeName(s.di.branchOp);
        else
            os << opcodeName(s.di.body.op);
        if (s.di.folded)
            os << "+" << opcodeName(s.di.branchOp);
        if (s.specCond)
            os << "?";
        return os.str();
    };
    std::ostringstream os;
    os << std::setw(7) << now_ << " | IR " << std::setw(22) << std::left
       << stage_text(irS()) << "| OR " << std::setw(22)
       << stage_text(orS()) << "| RR " << std::setw(22)
       << stage_text(rrS()) << "| " << traceNote_;
    traceSink_(os.str());
    traceNote_.clear();
}

Word
CrispCpu::wordAt(const std::string& symbol) const
{
    const auto a = prog_.lookup(symbol);
    if (!a)
        throw CrispError("unknown symbol: " + symbol);
    return static_cast<Word>(mem_.read32(*a));
}

} // namespace crisp
