/**
 * @file
 * CRISP CPU cycle model implementation.
 */

#include "cpu.hh"

#include <iomanip>
#include <sstream>

namespace crisp
{

CrispCpu::CrispCpu(const Program& prog, const SimConfig& cfg)
    : prog_(prog), cfg_(cfg), mem_(prog_), dic_(cfg.dicEntries),
      pdu_(prog_, cfg_, dic_, stats_),
      hwPredictor_(cfg.predictor, cfg.predictorEntries),
      stackCache_(cfg.stackCacheWords)
{
    sp_ = (prog.memBytes - kWordBytes) & ~(kWordBytes - 1);
    nextIssuePc_ = prog.entry;
}

void
CrispCpu::setFaultHooks(FaultHooks* hooks)
{
    hooks_ = hooks;
    pdu_.setFaultHooks(hooks);
}

Word
CrispCpu::readOperand(const Operand& o) const
{
    switch (o.mode) {
      case AddrMode::kImm:
        return o.value;
      case AddrMode::kAccum:
        return accum_;
      case AddrMode::kNone:
        return 0;
      default:
        return static_cast<Word>(mem_.read32(operandAddress(o)));
    }
}

Addr
CrispCpu::operandAddress(const Operand& o) const
{
    switch (o.mode) {
      case AddrMode::kStack: {
        const Addr a = sp_ + static_cast<Addr>(o.value) * kWordBytes;
        stackCache_.access(a, sp_);
        return a;
      }
      case AddrMode::kAbs:
        return static_cast<Addr>(o.value);
      case AddrMode::kInd: {
        const Addr slot =
            sp_ + static_cast<Addr>(o.value) * kWordBytes;
        stackCache_.access(slot, sp_);
        return mem_.read32(slot);
      }
      default:
        throw CrispError("operand has no address");
    }
}

void
CrispCpu::writeOperand(const Operand& o, Word v)
{
    if (o.mode == AddrMode::kAccum) {
        accum_ = v;
        return;
    }
    mem_.write32(operandAddress(o), static_cast<std::uint32_t>(v));
}

void
CrispCpu::executeBody(const DecodedInst& di)
{
    if (!di.loneBranch) {
        const Instruction& b = di.body;
        switch (b.op) {
          case Opcode::kNop:
          case Opcode::kHalt:
          case Opcode::kReturn: // SP handled with the control transfer
            break;
          case Opcode::kEnter:
            sp_ -= static_cast<Addr>(b.dst.value) * kWordBytes;
            break;
          case Opcode::kLeave:
            sp_ += static_cast<Addr>(b.dst.value) * kWordBytes;
            break;
          case Opcode::kMov:
            writeOperand(b.dst, readOperand(b.src));
            break;
          default:
            if (isCompare(b.op)) {
                flag_ = evalCompare(b.op, readOperand(b.dst),
                                    readOperand(b.src));
            } else if (isAlu3(b.op)) {
                accum_ = evalAlu(b.op, readOperand(b.dst),
                                 readOperand(b.src));
            } else if (isAlu2(b.op)) {
                writeOperand(b.dst,
                             evalAlu(b.op, readOperand(b.dst),
                                     readOperand(b.src)));
            } else {
                throw CrispError("cpu: unhandled body opcode");
            }
            break;
        }
    }
    if (di.ctl == Ctl::kCall) {
        sp_ -= kWordBytes;
        mem_.write32(sp_, di.callRetPc);
    }
}

void
CrispCpu::squashYounger(Stage* upto_exclusive)
{
    // Squash everything younger than the stage holding the mispredicted
    // branch. Stage age order (oldest first): rrS_, orS_, irS_.
    Stage* const order[] = {&rrS_, &orS_, &irS_};
    bool younger = false;
    for (Stage* s : order) {
        if (s == upto_exclusive) {
            younger = true;
            continue;
        }
        if (younger && s->valid) {
            s->valid = false;
            ++stats_.squashed;
        }
    }
    // Any issue block raised by a (now squashed) younger instruction is
    // void.
    block_ = Block::kNone;
}

void
CrispCpu::redirectAfterMispredict(const Stage& s)
{
    note("mispredict-redirect");
    nextIssuePc_ = s.actualTaken ? s.di.takenPc : s.di.seqPc;
    // The Alternate-PC is routed into IR.Next-PC during the next clock;
    // the instruction being clocked in is killed. Issue resumes the
    // cycle after.
    stallUntil_ = now_ + 2;
    block_ = Block::kNone;
}

void
CrispCpu::issueStage()
{
    if (penaltyStall_ > 0) {
        --penaltyStall_;
        ++stats_.issueStallCycles;
        ++stats_.stackPenaltyCycles;
        note("stack-penalty");
        return;
    }
    if (block_ != Block::kNone || now_ < stallUntil_) {
        ++stats_.issueStallCycles;
        if (block_ == Block::kIndirect)
            ++stats_.indirectStallCycles;
        else if (block_ == Block::kNone)
            ++stats_.redirectStallCycles;
        return;
    }

    const DecodedInst* e = dic_.lookup(nextIssuePc_);
    if (e == nullptr) {
        ++stats_.issueStallCycles;
        ++stats_.dicMissStallCycles;
        if (lastMissPc_ != nextIssuePc_) {
            ++stats_.dicMisses;
            lastMissPc_ = nextIssuePc_;
        }
        pdu_.demand(nextIssuePc_);
        note("dic-miss");
        return;
    }
    ++stats_.dicHits;
    lastMissPc_ = ~Addr{0};

    irS_ = Stage{};
    irS_.valid = true;
    irS_.di = *e;
    if (hooks_ != nullptr)
        hooks_->onIssue(irS_.di);

    // Control decisions read the IR-stage copy, not the cache: an
    // issue-time fault hook corrupts exactly what the EU acts on.
    const DecodedInst& d = irS_.di;
    switch (d.ctl) {
      case Ctl::kSeq:
        nextIssuePc_ = d.seqPc;
        break;
      case Ctl::kJmp:
      case Ctl::kCall:
        nextIssuePc_ = d.takenPc;
        break;
      case Ctl::kHalt:
        block_ = Block::kHalt;
        break;
      case Ctl::kRet:
      case Ctl::kIndirect:
        block_ = Block::kIndirect;
        break;
      case Ctl::kCondT:
      case Ctl::kCondF: {
        const bool cc_busy = (orS_.valid && orS_.di.writesCc) ||
                             (rrS_.valid && rrS_.di.writesCc) ||
                             d.writesCc;
        if (!cc_busy) {
            // No compare in the pipeline: the flag is architecturally
            // final, so the branch "has effectively been turned into an
            // unconditional branch" — zero cycles lost regardless of
            // the prediction bit.
            const bool taken = d.condTaken(flag_);
            irS_.resolvedAtIssue = true;
            irS_.actualTaken = taken;
            irS_.predictedTaken = taken;
            nextIssuePc_ = taken ? d.takenPc : d.seqPc;
            note("resolved-at-issue");
        } else {
            const bool pred =
                cfg_.respectPredictionBit &&
                hwPredictor_.predict(d.branchPc, d.predictTaken);
            irS_.specCond = true;
            irS_.predictedTaken = pred;
            nextIssuePc_ = pred ? d.takenPc : d.seqPc;
        }
        break;
      }
    }
}

void
CrispCpu::emitRetireEvents(const Stage& s, ExecObserver* observer)
{
    const DecodedInst& di = s.di;

    if (!di.loneBranch) {
        ++stats_.opcodeCounts[static_cast<std::size_t>(di.body.op)];
        if (observer)
            observer->onInstruction(di.pc, di.body.op);
    }
    if (di.folded || di.loneBranch) {
        ++stats_.opcodeCounts[static_cast<std::size_t>(di.branchOp)];
        ++stats_.branches;
        if (di.folded)
            ++stats_.foldedBranches;
        if (di.hasCondBranch())
            ++stats_.condBranches;
        if (observer) {
            observer->onInstruction(di.branchPc, di.branchOp);
            BranchEvent ev;
            ev.pc = di.branchPc;
            ev.op = di.branchOp;
            ev.conditional = di.hasCondBranch();
            ev.taken = di.hasCondBranch() ? s.actualTaken : true;
            ev.predictTaken = di.predictTaken;
            ev.target = di.takenPc;
            ev.fallThrough = di.seqPc;
            ev.shortForm = di.branchShortForm;
            observer->onBranch(ev);
        }
    }
}

void
CrispCpu::recordFault(Addr pc, const std::string& reason)
{
    stats_.faulted = true;
    stats_.faultPc = pc;
    stats_.faultReason = reason;
    halted_ = true;
    note("fault");
}

void
CrispCpu::retireStage(ExecObserver* observer)
{
    if (!rrS_.valid)
        return;
    try {
        retireImpl(observer);
    } catch (const DicCorruptionError& e) {
        // The decode checker caught corrupted DIC metadata before the
        // entry could touch architectural state.
        stats_.dicCorruption = true;
        recordFault(rrS_.di.pc, e.what());
    } catch (const CrispError& e) {
        // Precise machine fault: architectural effects happen only at
        // retirement, so the faulting instruction is exactly
        // identified and nothing younger has touched state.
        recordFault(rrS_.di.pc, e.what());
    }
}

DecodedInst
CrispCpu::goldenDecodeAt(Addr pc, FoldPolicy policy) const
{
    if (pc % kParcelBytes != 0 || !prog_.inText(pc)) {
        throw DicCorruptionError(
            "DIC corruption: retiring entry claims PC 0x" +
            std::to_string(pc) + " outside the text segment");
    }
    std::vector<Parcel> window;
    const Addr end = prog_.textEnd();
    for (Addr a = pc;
         a < end && window.size() < static_cast<std::size_t>(kMaxParcels + 1);
         a += kParcelBytes) {
        window.push_back(prog_.parcelAt(a));
    }
    const Addr wend =
        pc + static_cast<Addr>(window.size()) * kParcelBytes;
    const FoldDecoder dec(policy);
    const auto di = dec.decodeAt(pc, window, wend >= end);
    if (!di) {
        throw DicCorruptionError(
            "DIC corruption: no valid decode exists at PC 0x" +
            std::to_string(pc));
    }
    return *di;
}

namespace
{

/**
 * Architectural equivalence of a pipeline entry against a golden
 * decode. Hint state — the static prediction bit, the one-parcel
 * branch-format flag — is excluded: faults there must stay benign.
 */
bool
sameDecode(const DecodedInst& a, const DecodedInst& g)
{
    if (a.loneBranch != g.loneBranch || a.folded != g.folded ||
        a.ctl != g.ctl || a.seqPc != g.seqPc ||
        a.writesCc != g.writesCc || a.totalParcels != g.totalParcels)
        return false;
    if (!a.loneBranch && !(a.body == g.body))
        return false;
    switch (a.ctl) {
      case Ctl::kJmp:
      case Ctl::kCondT:
      case Ctl::kCondF:
        if (a.takenPc != g.takenPc)
            return false;
        break;
      case Ctl::kCall:
        if (a.takenPc != g.takenPc || a.callRetPc != g.callRetPc)
            return false;
        break;
      case Ctl::kIndirect:
        if (a.bmode != g.bmode || a.spec != g.spec)
            return false;
        break;
      default:
        break;
    }
    if ((a.folded || a.loneBranch) &&
        (a.branchPc != g.branchPc || a.branchOp != g.branchOp))
        return false;
    return true;
}

} // namespace

void
CrispCpu::checkDecodedEntry(const DecodedInst& di) const
{
    const DecodedInst golden = goldenDecodeAt(di.pc, cfg_.foldPolicy);
    if (sameDecode(di, golden))
        return;
    // A fold decision is a hint: an entry that decodes the same
    // instruction unfolded (the no-fold golden) is architecturally
    // valid too, it just costs an extra EU slot for the branch.
    if (golden.folded &&
        sameDecode(di, goldenDecodeAt(di.pc, FoldPolicy::kNone)))
        return;
    throw DicCorruptionError(
        "DIC corruption detected at retire: cached entry [" +
        di.toString() + "] is not a valid decode of the text at 0x" +
        std::to_string(di.pc) + " (golden: [" + golden.toString() +
        "])");
}

void
CrispCpu::retireImpl(ExecObserver* observer)
{
    const DecodedInst& di = rrS_.di;
    // Verify the entry against a fresh decode of the program text
    // BEFORE any architectural effect: corruption of non-hint DIC
    // metadata becomes a precise fault, never a wrong answer.
    if (cfg_.checkDecode)
        checkDecodedEntry(di);
    const std::uint64_t misses_before = stackCache_.misses();
    executeBody(di);
    if (cfg_.stackCacheMissPenalty > 0) {
        penaltyStall_ += (stackCache_.misses() - misses_before) *
                         static_cast<std::uint64_t>(
                             cfg_.stackCacheMissPenalty);
    }

    ++stats_.issued;
    stats_.apparent += static_cast<std::uint64_t>(di.archCount());

    // Resolve control.
    switch (di.ctl) {
      case Ctl::kHalt:
        halted_ = true;
        stats_.halted = true;
        break;
      case Ctl::kRet: {
        sp_ += static_cast<Addr>(di.body.dst.value) * kWordBytes;
        const Addr target = mem_.read32(sp_);
        sp_ += kWordBytes;
        nextIssuePc_ = target;
        block_ = Block::kNone;
        stallUntil_ = now_ + 1;
        if (observer)
            observer->onInstruction(di.pc, Opcode::kReturn);
        // Architectural count for the return body itself.
        ++stats_.opcodeCounts[
            static_cast<std::size_t>(Opcode::kReturn)];
        note("indirect-target");
        return;
      }
      case Ctl::kIndirect: {
        Addr target = 0;
        if (di.bmode == BranchMode::kIndAbs) {
            target = mem_.read32(di.spec);
        } else {
            target = mem_.read32(
                sp_ + static_cast<Addr>(
                          static_cast<std::int32_t>(di.spec)) *
                          kWordBytes);
        }
        nextIssuePc_ = target;
        rrS_.di.takenPc = target; // for the retire-order branch event
        block_ = Block::kNone;
        stallUntil_ = now_ + 1;
        break;
      }
      case Ctl::kCondT:
      case Ctl::kCondF:
        if (rrS_.specCond) {
            // A lone conditional branch (or a folded compare+branch
            // pair) resolves in its own RR stage. The flag is final
            // here: its compare retired no later than this cycle.
            rrS_.specCond = false;
            rrS_.actualTaken = di.condTaken(flag_);
            if (rrS_.actualTaken != rrS_.predictedTaken) {
                rrS_.mispredicted = true;
                squashYounger(&rrS_);
                redirectAfterMispredict(rrS_);
            }
        }
        break;
      default:
        break;
    }

    // Statistics for a surviving conditional branch, and history
    // training for the (optional) dynamic hardware predictor.
    if (di.hasCondBranch()) {
        if (rrS_.resolvedAtIssue)
            ++stats_.resolvedAtIssue;
        else
            ++stats_.speculated;
        if (rrS_.mispredicted)
            ++stats_.mispredicts;
        hwPredictor_.update(di.branchPc, rrS_.actualTaken);
    }

    emitRetireEvents(rrS_, observer);

    // Case (b): a retiring compare verifies speculative FOLDED branches
    // still in the pipeline, oldest first, recovering from that stage's
    // Alternate-PC register.
    if (di.writesCc && !rrS_.mispredicted) {
        for (Stage* s : {&orS_, &irS_}) {
            if (!s->valid)
                continue;
            if (s == &irS_ && orS_.valid && orS_.di.writesCc)
                break; // the IR branch depends on the newer compare
            if (!s->specCond || !s->di.hasCondBranch() ||
                s->di.loneBranch || s->di.writesCc) {
                continue;
            }
            s->specCond = false;
            s->actualTaken = s->di.condTaken(flag_);
            if (s->actualTaken != s->predictedTaken) {
                s->mispredicted = true;
                squashYounger(s);
                redirectAfterMispredict(*s);
                break;
            }
        }
    }
}

bool
CrispCpu::tick(ExecObserver* observer)
{
    if (halted_)
        return false;

    // Advance the pipeline: RR <- OR <- IR <- (issue below).
    rrS_ = orS_;
    orS_ = irS_;
    irS_ = Stage{};

    try {
        pdu_.tick(now_);
        issueStage();
    } catch (const CrispError& e) {
        // A corrupted Next-PC can steer fetch/decode somewhere no
        // instruction stream exists (off the text segment, mid-parcel
        // garbage). Surface it as a precise machine fault rather than
        // letting the exception escape the cycle loop.
        stats_.dicCorruption = true;
        recordFault(nextIssuePc_,
                    std::string("fetch/decode: ") + e.what());
    }
    retireStage(observer);
    emitTraceLine();

    ++now_;
    stats_.cycles = now_;
    stats_.stackCacheHits = stackCache_.hits();
    stats_.stackCacheMisses = stackCache_.misses();
    return !halted_;
}

const SimStats&
CrispCpu::run(ExecObserver* observer)
{
    while (!halted_ && now_ < cfg_.maxCycles)
        tick(observer);
    if (!halted_)
        stats_.timedOut = true;
    return stats_;
}

void
CrispCpu::note(const char* what)
{
    if (!traceSink_)
        return;
    if (!traceNote_.empty())
        traceNote_ += ' ';
    traceNote_ += what;
}

void
CrispCpu::emitTraceLine()
{
    if (!traceSink_)
        return;
    auto stage_text = [](const Stage& s) -> std::string {
        if (!s.valid)
            return "--";
        std::ostringstream os;
        os << "0x" << std::hex << s.di.pc << std::dec << ":";
        if (s.di.loneBranch)
            os << opcodeName(s.di.branchOp);
        else
            os << opcodeName(s.di.body.op);
        if (s.di.folded)
            os << "+" << opcodeName(s.di.branchOp);
        if (s.specCond)
            os << "?";
        return os.str();
    };
    std::ostringstream os;
    os << std::setw(7) << now_ << " | IR " << std::setw(22) << std::left
       << stage_text(irS_) << "| OR " << std::setw(22)
       << stage_text(orS_) << "| RR " << std::setw(22)
       << stage_text(rrS_) << "| " << traceNote_;
    traceSink_(os.str());
    traceNote_.clear();
}

Word
CrispCpu::wordAt(const std::string& symbol) const
{
    const auto a = prog_.lookup(symbol);
    if (!a)
        throw CrispError("unknown symbol: " + symbol);
    return static_cast<Word>(mem_.read32(*a));
}

std::string
SimStats::toString() const
{
    std::ostringstream os;
    os << "cycles:              " << cycles << "\n"
       << "issued:              " << issued << "\n"
       << "apparent:            " << apparent << "\n"
       << "issued CPI:          " << issuedCpi() << "\n"
       << "apparent CPI:        " << apparentCpi() << "\n"
       << "branches:            " << branches << "\n"
       << "folded branches:     " << foldedBranches << "\n"
       << "cond branches:       " << condBranches << "\n"
       << "resolved at issue:   " << resolvedAtIssue << "\n"
       << "speculated:          " << speculated << "\n"
       << "mispredicts:         " << mispredicts << "\n"
       << "squashed:            " << squashed << "\n"
       << "issue stalls:        " << issueStallCycles << "\n"
       << "  DIC miss stalls:   " << dicMissStallCycles << "\n"
       << "  redirect stalls:   " << redirectStallCycles << "\n"
       << "  indirect stalls:   " << indirectStallCycles << "\n"
       << "DIC hits/misses:     " << dicHits << "/" << dicMisses << "\n"
       << "PDU fills (folded):  " << pduFills << " (" << pduFoldedPairs
       << ")\n"
       << "memory fetches:      " << memFetches << "\n"
       << "stack cache h/m:     " << stackCacheHits << "/"
       << stackCacheMisses << "\n"
       << "halted:              " << (halted ? "yes" : "no") << "\n";
    if (timedOut)
        os << "TIMED OUT at the cycle limit\n";
    if (faulted) {
        os << (dicCorruption ? "DIC CORRUPTION" : "FAULT") << " at 0x"
           << std::hex << faultPc << std::dec << ": " << faultReason
           << "\n";
    }
    return os.str();
}

} // namespace crisp
