/**
 * @file
 * The CRISP CPU model: a three-stage Execution Unit (IR, OR, RR) fed
 * from the Decoded Instruction Cache, with the Prefetch and Decode Unit
 * filling the cache from main memory (the paper's Figure 1).
 *
 * Timing model (calibrated against the paper's Table 4):
 *
 *  - The EU issues at most one decoded entry per cycle; an entry issued
 *    in cycle t occupies IR in t, OR in t+1, RR in t+2, and its results
 *    (including the condition flag) are written at the end of t+2.
 *  - A conditional branch issuing while no condition-code writer is in
 *    the pipeline resolves at issue using the actual flag — zero cycles
 *    lost even when the static prediction bit is wrong (the payoff of
 *    Branch Spreading; the hardware uses the dedicated modifies-CC bit
 *    carried with every stage).
 *  - Otherwise it issues speculatively along the predicted path and is
 *    verified later:
 *      * a FOLDED conditional branch is verified when its compare
 *        retires, recovering from the Alternate-PC of whatever stage
 *        the carrier occupies: compare in the same entry -> 3 cycles
 *        lost, one entry ahead -> 2, two ahead -> 1 (the paper's
 *        staircase);
 *      * a LONE (unfolded) conditional branch verifies its prediction
 *        in its own RR stage -> 3 cycles lost on a mispredict. This is
 *        what Table 4's cases A and B measure for adjacent cmp/branch
 *        sequences.
 *  - Returns and indirect jumps obtain their target at retirement;
 *    issue resumes the following cycle (2 bubbles).
 *  - Architectural effects happen in order at retirement, which models
 *    perfect operand bypassing (the paper's cases show no RAW stalls).
 *
 * Host-performance notes (docs/PERFORMANCE.md): the cycle loop is
 * allocation-free — the three EU stages rotate by pointer instead of
 * copying, decode results come from the whole-program predecode cache,
 * and tracing/fault hooks cost one branch each when disabled.
 */

#ifndef CRISP_SIM_CPU_HH
#define CRISP_SIM_CPU_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "config.hh"
#include "decoded.hh"
#include "dic.hh"
#include "fault_hooks.hh"
#include "interp/interpreter.hh"
#include "interp/memory_image.hh"
#include "hw_predictor.hh"
#include "pdu.hh"
#include "predecode.hh"
#include "stack_cache.hh"
#include "stats.hh"

namespace crisp
{

class CrispCpu
{
  public:
    /**
     * @p shared_predecode optionally supplies an external predecode
     * cache so repeated runs of the same program (lockstep sweeps,
     * shrinking, fault campaigns, benchmarking replays) skip all decode
     * work after the first run. The cache is a pure memoization of
     * (text, fold policy) -> decoded entry, so sharing it cannot change
     * simulated behaviour — but it MUST have been built over a Program
     * with the same text segment as @p prog. Pass nullptr (the default)
     * for a private per-run cache.
     */
    CrispCpu(const Program& prog, const SimConfig& cfg = {},
             PredecodeCache* shared_predecode = nullptr);

    // The PDU holds references into this object.
    CrispCpu(const CrispCpu&) = delete;
    CrispCpu& operator=(const CrispCpu&) = delete;

    /**
     * Run to completion (halt) or cfg.maxCycles.
     * @param observer optional architectural retire-order observer; it
     *        sees exactly the event sequence the functional interpreter
     *        would produce (the basis of the equivalence property
     *        tests).
     */
    const SimStats& run(ExecObserver* observer = nullptr);

    /** Advance exactly one cycle. @return false once halted. */
    bool tick(ExecObserver* observer = nullptr);

    /**
     * Return the machine to its power-on state over the same program
     * and configuration, exactly as if freshly constructed: memory
     * image reloaded, DIC invalidated, pipeline drained, statistics
     * zeroed. Nothing is reallocated, so replay loops (lockstep
     * sweeps, fault campaigns, benchmark replays) can reuse one
     * CrispCpu instead of paying construction per run. Installed
     * trace sinks and fault hooks are retained, as is the predecode
     * cache (a pure memoization of the immutable text segment).
     */
    void reset();

    // Architectural state (valid after run / between ticks) -----------
    /** Address the EU will try to issue from next (IR.Next-PC). */
    Addr nextIssuePc() const { return nextIssuePc_; }
    Addr sp() const { return sp_; }
    Word accum() const { return accum_; }
    bool flag() const { return flag_; }
    bool halted() const { return halted_; }
    const MemoryImage& memory() const { return mem_; }
    Word wordAt(const std::string& symbol) const;

    const SimStats& stats() const { return stats_; }

    /**
     * Install a per-cycle trace sink; each cycle produces one line of
     * the form `cycle | IR ... | OR ... | RR ... | notes`, the notes
     * naming issue decisions, mispredict recoveries, squashes and
     * cache misses. Pass nullptr to disable.
     */
    void
    setTraceSink(std::function<void(const std::string&)> sink)
    {
        traceSink_ = std::move(sink);
    }

    /**
     * Install a cooperative cancellation flag (not owned; may be
     * null to clear). The cycle loop polls it every few thousand
     * ticks; when it reads true the run stops at the next check with
     * SimStats::cancelled set — no architectural state is corrupted,
     * the machine simply freezes mid-program. This is how crispd
     * enforces per-job wall-clock deadlines and how crisptorture
     * --timeout-ms aborts hung seeds: the flag is typically a
     * util::Watchdog timer armed by the caller. Retained across
     * reset() like the trace sink and fault hooks.
     */
    void setCancelFlag(const std::atomic<bool>* flag);

    /**
     * Install microarchitectural fault-injection hooks (not owned).
     * Fill-time hooks corrupt/drop entries as the PDU writes the DIC;
     * issue-time hooks corrupt the EU's private IR copy. Combine with
     * SimConfig::checkDecode to assert that non-hint corruption is
     * detected before it can touch architectural state.
     */
    void setFaultHooks(FaultHooks* hooks);

  private:
    /** Why issue is blocked beyond stallUntil_. */
    enum class Block : std::uint8_t { kNone, kIndirect, kHalt };

    struct Stage
    {
        bool valid = false;
        DecodedInst di;
        /** Conditional branch issued on the static bit, unverified. */
        bool specCond = false;
        /** Direction chosen at issue (prediction or actual flag). */
        bool predictedTaken = false;
        /** Outcome was known at issue (no CC writer in flight). */
        bool resolvedAtIssue = false;
        /** Verified direction (filled in at verification/retire). */
        bool actualTaken = false;
        /** The static bit turned out wrong. */
        bool mispredicted = false;
        /**
         * Cycles this entry's branch lost (the paper's staircase):
         * set where the branch is verified — 3 in its own RR, 2/1 when
         * a retiring compare verifies it in OR/IR, 2 for an indirect
         * jump's target read — and reported via BranchEvent at retire.
         */
        std::uint8_t delaySlots = 0;
    };

    void issueStage();
    /** Bulk-skip cycles that are provably identical miss stalls. */
    void maybeSkipStalls();
    void retireStage(ExecObserver* observer);
    void retireImpl(ExecObserver* observer);
    void recordFault(Addr pc, const std::string& reason);
    const DecodedInst* goldenDecodeAt(Addr pc, FoldPolicy policy) const;
    void checkDecodedEntry(const DecodedInst& di) const;
    void executeBody(const DecodedInst& di);
    Word readOperand(const Operand& o) const;
    void writeOperand(const Operand& o, Word v);
    Addr operandAddress(const Operand& o) const;
    void squashYounger(Stage* upto_exclusive);
    void redirectAfterMispredict(const Stage& s);
    void emitRetireEvents(const Stage& s, ExecObserver* observer);

    /** Owned copy: the CPU's lifetime is self-contained. */
    Program prog_;
    SimConfig cfg_;
    MemoryImage mem_;
    DecodedCache dic_;
    SimStats stats_;
    /** Predecode tables shared by the PDU's PDR stage and the
     *  retire-time checker. Owned unless the caller supplied a shared
     *  cache (or the legacy path is forced, leaving it null). */
    std::unique_ptr<PredecodeCache> ownedPredecode_;
    PredecodeCache* predecode_;
    Pdu pdu_;

    // Architectural state.
    Addr sp_ = 0;
    Word accum_ = 0;
    bool flag_ = false;
    bool halted_ = false;

    // Pipeline state. The three stages live in a fixed array and
    // advance by pointer rotation: the old RR slot is recycled as the
    // new (empty) IR slot, so a pipeline step copies nothing.
    Stage stages_[3];
    Stage* irP_ = &stages_[0];
    Stage* orP_ = &stages_[1];
    Stage* rrP_ = &stages_[2];
    Stage& irS() { return *irP_; }
    Stage& orS() { return *orP_; }
    Stage& rrS() { return *rrP_; }
    const Stage& irS() const { return *irP_; }
    const Stage& orS() const { return *orP_; }
    const Stage& rrS() const { return *rrP_; }
    Addr nextIssuePc_ = 0;
    std::uint64_t stallUntil_ = 0;
    Block block_ = Block::kNone;
    std::uint64_t now_ = 0;
    Addr lastMissPc_ = ~Addr{0};

    // Speculation source for conditional branches.
    HwPredictor hwPredictor_;

    // Optional fault-injection hooks (not owned).
    FaultHooks* hooks_ = nullptr;

    // Cooperative cancellation: checked every kCancelCheckInterval
    // ticks so the poll costs one predictable branch per cycle.
    static constexpr int kCancelCheckInterval = 4096;
    const std::atomic<bool>* cancel_ = nullptr;
    int cancelCountdown_ = kCancelCheckInterval;

    // Operand-side stack cache (statistics; optional miss penalty).
    mutable StackCache stackCache_;
    std::uint64_t penaltyStall_ = 0;

    // Reused decode window for the legacy (usePredecode = false)
    // golden-decode path, plus a scratch slot for its result — the
    // checker allocates nothing per retire on either path.
    mutable std::vector<Parcel> goldenWindow_;
    mutable DecodedInst goldenScratch_;

    // Optional per-cycle tracing.
    std::function<void(const std::string&)> traceSink_;
    std::string traceNote_;
    void noteSlow(const char* what);
    void
    note(const char* what)
    {
        if (traceSink_)
            noteSlow(what);
    }
    void emitTraceLine();
};

} // namespace crisp

#endif // CRISP_SIM_CPU_HH
