/**
 * @file
 * Decode-and-fold logic (the PDR-stage datapath of Figure 2).
 */

#include "decoded.hh"

#include <sstream>

namespace crisp
{

namespace
{

/** Is @p op a one-parcel-foldable branch (jmp / iftjmp / iffjmp)? */
bool
isFoldableBranchOp(Opcode op)
{
    return op == Opcode::kJmp || op == Opcode::kIfTJmp ||
           op == Opcode::kIfFJmp;
}

/** May a carrier of @p parcels length fold under @p policy? */
bool
carrierLengthOk(FoldPolicy policy, int parcels)
{
    switch (policy) {
      case FoldPolicy::kNone:
        return false;
      case FoldPolicy::kCrisp:
        return parcels == 1 || parcels == 3;
      case FoldPolicy::kAll:
        return true;
    }
    return false;
}

} // namespace

int
FoldDecoder::windowNeed(Parcel parcel0) const
{
    return windowNeed(parcel0, instructionLength(parcel0));
}

int
FoldDecoder::windowNeed(Parcel parcel0, int len) const
{
    const auto major = parcel0 >> 12;
    const bool is_short_branch =
        major == 0xC || major == 0xD || major == 0xE;
    if (is_short_branch)
        return len;

    const auto op = static_cast<Opcode>(parcel0 >> 10);
    if (carrierLengthOk(policy_, len) && isFoldableBody(op))
        return len + 1;
    return len;
}

std::optional<DecodedInst>
FoldDecoder::decodeAt(Addr pc, std::span<const Parcel> window,
                      bool at_end) const
{
    if (window.empty())
        return std::nullopt;

    const int len = instructionLength(window[0]);
    if (static_cast<int>(window.size()) < len)
        return std::nullopt;

    const Instruction inst = decode(window.data());

    DecodedInst di;
    di.pc = pc;
    di.totalParcels = len;
    di.seqPc = pc + static_cast<Addr>(len) * kParcelBytes;

    if (isBranch(inst.op)) {
        // A branch that was not folded into a predecessor: it gets its
        // own DIC entry and occupies an EU slot ("a branch after a
        // call" in the paper).
        di.loneBranch = true;
        di.body = Instruction::nop();
        di.branchPc = pc;
        di.branchOp = inst.op;
        di.branchShortForm = (len == 1);
        di.predictTaken = inst.predictTaken;

        switch (inst.bmode) {
          case BranchMode::kPcRel:
            di.takenPc = pc + static_cast<Addr>(inst.disp);
            break;
          case BranchMode::kAbs:
            di.takenPc = inst.spec;
            break;
          case BranchMode::kIndAbs:
          case BranchMode::kIndSp:
            if (inst.op != Opcode::kJmp) {
                throw CrispError(
                    "pipeline: only unconditional jumps may be indirect");
            }
            di.ctl = Ctl::kIndirect;
            di.bmode = inst.bmode;
            di.spec = inst.spec;
            return di;
        }

        switch (inst.op) {
          case Opcode::kJmp:
            di.ctl = Ctl::kJmp;
            break;
          case Opcode::kIfTJmp:
            di.ctl = Ctl::kCondT;
            break;
          case Opcode::kIfFJmp:
            di.ctl = Ctl::kCondF;
            break;
          case Opcode::kCall:
            di.ctl = Ctl::kCall;
            di.callRetPc = di.seqPc;
            break;
          default:
            break;
        }
        return di;
    }

    // Non-branch body.
    di.body = inst;
    di.writesCc = inst.writesCc();

    if (inst.op == Opcode::kHalt) {
        di.ctl = Ctl::kHalt;
        return di;
    }
    if (inst.op == Opcode::kReturn) {
        di.ctl = Ctl::kRet;
        return di;
    }

    // Branch Folding: peek at the next parcel; if it starts a
    // one-parcel branch, absorb it into this entry.
    if (carrierLengthOk(policy_, len) && isFoldableBody(inst.op)) {
        if (static_cast<int>(window.size()) < len + 1) {
            if (!at_end)
                return std::nullopt; // wait for the lookahead parcel
            return di;               // nothing follows; no fold
        }
        const Parcel next0 = window[len];
        if (instructionLength(next0) == 1) {
            const Instruction br = decode(window.data() + len);
            if (isFoldableBranchOp(br.op) &&
                br.bmode == BranchMode::kPcRel) {
                di.folded = true;
                di.totalParcels = len + 1;
                di.branchPc =
                    pc + static_cast<Addr>(len) * kParcelBytes;
                di.seqPc = di.branchPc + kParcelBytes;
                di.branchOp = br.op;
                di.branchShortForm = true;
                di.predictTaken = br.predictTaken;
                // The "branch adjust": the 10-bit offset is relative to
                // the branch's own address, not the carrier's.
                di.takenPc = di.branchPc + static_cast<Addr>(br.disp);
                switch (br.op) {
                  case Opcode::kJmp:
                    di.ctl = Ctl::kJmp;
                    break;
                  case Opcode::kIfTJmp:
                    di.ctl = Ctl::kCondT;
                    break;
                  case Opcode::kIfFJmp:
                    di.ctl = Ctl::kCondF;
                    break;
                  default:
                    break;
                }
            }
        }
    }
    return di;
}

std::string
DecodedInst::toString() const
{
    std::ostringstream os;
    os << "0x" << std::hex << pc << std::dec << ": ";
    if (loneBranch) {
        os << opcodeName(branchOp) << " (lone)";
    } else {
        os << body.toString(pc);
        if (folded)
            os << " + folded " << opcodeName(branchOp);
    }
    switch (ctl) {
      case Ctl::kSeq:
        os << " -> seq 0x" << std::hex << seqPc;
        break;
      case Ctl::kJmp:
      case Ctl::kCall:
        os << " -> 0x" << std::hex << takenPc;
        break;
      case Ctl::kCondT:
      case Ctl::kCondF:
        os << " -> " << (predictTaken ? "T:" : "N:") << "0x" << std::hex
           << takenPc << " / 0x" << seqPc;
        break;
      case Ctl::kRet:
        os << " -> ret";
        break;
      case Ctl::kIndirect:
        os << " -> indirect";
        break;
      case Ctl::kHalt:
        os << " -> halt";
        break;
    }
    return os.str();
}

} // namespace crisp
