/**
 * @file
 * Statistics collected by the cycle-level simulator.
 *
 * The three headline metrics mirror the paper's Table 4:
 *  - cycles
 *  - instructions issued by the Execution Unit pipeline (folded branches
 *    do not appear here)
 *  - apparent instructions (the black-box architectural count, equal to
 *    the functional interpreter's instruction count)
 */

#ifndef CRISP_SIM_STATS_HH
#define CRISP_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <string>

#include "config.hh"
#include "isa/opcode.hh"

namespace crisp
{

struct SimStats
{
    /** Which engine produced this result (cycle pipeline, threaded
     *  fast engine, or the reference interpreter). Functional engines
     *  leave every timing counter at zero. */
    EngineKind engine = EngineKind::kCycle;

    std::uint64_t cycles = 0;

    /** Decoded instructions retired by the EU pipeline. */
    std::uint64_t issued = 0;

    /** Architecturally executed instructions (folded branches count). */
    std::uint64_t apparent = 0;

    /** Dynamic opcode histogram over apparent instructions. */
    std::array<std::uint64_t, kOpcodeCount> opcodeCounts{};

    /** Wrong-path decoded instructions squashed before retirement. */
    std::uint64_t squashed = 0;

    /** Branches (of any kind) architecturally executed. */
    std::uint64_t branches = 0;

    /** Branches that were folded into a carrier instruction. */
    std::uint64_t foldedBranches = 0;

    /** Conditional branches architecturally executed. */
    std::uint64_t condBranches = 0;

    /**
     * Conditional branches whose outcome was known at issue because no
     * condition-code writer was in the pipeline (the Branch Spreading
     * payoff: "zero cycles can be lost").
     */
    std::uint64_t resolvedAtIssue = 0;

    /** Conditional branches issued speculatively on the static bit. */
    std::uint64_t speculated = 0;

    /** Speculative conditional branches whose static bit was wrong. */
    std::uint64_t mispredicts = 0;

    /**
     * Total cycles lost to branch resolution across retired branch-site
     * executions: the mispredict staircase (3/2/1 by verification
     * stage) plus the two target-read bubbles of each indirect jump.
     * Exactly the sum of BranchEvent::delayCycles over the run; the
     * static cost engine (src/analysis/cost.hh) brackets it from the
     * binary alone. Return instructions are not branch sites — their
     * target bubbles appear only in indirectStallCycles.
     */
    std::uint64_t branchDelayCycles = 0;

    /** Cycles in which the EU could not issue for any reason. */
    std::uint64_t issueStallCycles = 0;

    /** Issue stalls attributable to Decoded Instruction Cache misses. */
    std::uint64_t dicMissStallCycles = 0;

    /** Issue stalls waiting on mispredict recovery / redirects. */
    std::uint64_t redirectStallCycles = 0;

    /** Issue stalls waiting for an indirect target (returns, case
     *  statements). */
    std::uint64_t indirectStallCycles = 0;

    std::uint64_t dicHits = 0;
    std::uint64_t dicMisses = 0;

    /** Folded pairs created by the PDU decoder (static-stream count). */
    std::uint64_t pduFoldedPairs = 0;

    /** Decoded entries written into the DIC by the PDU. */
    std::uint64_t pduFills = 0;

    /** Four-parcel memory fetch blocks issued by the prefetcher. */
    std::uint64_t memFetches = 0;

    /** Stack-cache operand accesses that hit the top-of-stack window. */
    std::uint64_t stackCacheHits = 0;

    /** Stack operand accesses below the cached window. */
    std::uint64_t stackCacheMisses = 0;

    /** Issue stalls injected by stack-cache miss penalties. */
    std::uint64_t stackPenaltyCycles = 0;

    /** True when the program retired a halt (vs. hitting maxCycles). */
    bool halted = false;

    /** True when run() gave up at SimConfig::maxCycles (watchdog). */
    bool timedOut = false;

    /**
     * True when the run was stopped by the cooperative cancellation
     * flag (CrispCpu::setCancelFlag) — a deadline or shutdown imposed
     * from outside, not an architectural outcome. Exactly one of
     * {halted, timedOut, cancelled, faulted} describes why a run ended.
     */
    bool cancelled = false;

    /**
     * Precise machine fault: an instruction raised an error (e.g. a
     * wild memory access) at retirement. faultPc identifies the exact
     * architectural instruction — the payoff of the side-effect-free
     * ISA and retire-time state update (wrong-path instructions are
     * squashed before they can fault).
     */
    bool faulted = false;
    std::uint32_t faultPc = 0;
    std::string faultReason;

    /** The fault was the retire-time decode checker catching corrupted
     *  DIC metadata (SimConfig::checkDecode). */
    bool dicCorruption = false;

    double
    issuedCpi() const
    {
        return issued ? static_cast<double>(cycles) /
                            static_cast<double>(issued)
                      : 0.0;
    }

    double
    apparentCpi() const
    {
        return apparent ? static_cast<double>(cycles) /
                              static_cast<double>(apparent)
                        : 0.0;
    }

    /**
     * Bitwise-exact equality over every counter, flag and the fault
     * string. The differential tests (tests/test_perf_paths.cc) use it
     * to pin the predecode fast path to the legacy decode path.
     */
    bool operator==(const SimStats&) const = default;

    /** Multi-line human-readable dump. */
    std::string toString() const;

    /**
     * Single JSON object with every field (opcodeCounts as an array
     * indexed by opcode value, fault strings escaped). Consumed by
     * `crisprun --stats-json` and the bench harness.
     */
    std::string toJson() const;
};

} // namespace crisp

#endif // CRISP_SIM_STATS_HH
