/**
 * @file
 * SimStats text and JSON rendering.
 */

#include "stats.hh"

#include <iomanip>
#include <sstream>

namespace crisp
{

std::string
SimStats::toString() const
{
    std::ostringstream os;
    os << "engine:              " << engineName(engine) << "\n"
       << "cycles:              " << cycles << "\n"
       << "issued:              " << issued << "\n"
       << "apparent:            " << apparent << "\n"
       << "issued CPI:          " << issuedCpi() << "\n"
       << "apparent CPI:        " << apparentCpi() << "\n"
       << "branches:            " << branches << "\n"
       << "folded branches:     " << foldedBranches << "\n"
       << "cond branches:       " << condBranches << "\n"
       << "resolved at issue:   " << resolvedAtIssue << "\n"
       << "speculated:          " << speculated << "\n"
       << "mispredicts:         " << mispredicts << "\n"
       << "branch delay cycles: " << branchDelayCycles << "\n"
       << "squashed:            " << squashed << "\n"
       << "issue stalls:        " << issueStallCycles << "\n"
       << "  DIC miss stalls:   " << dicMissStallCycles << "\n"
       << "  redirect stalls:   " << redirectStallCycles << "\n"
       << "  indirect stalls:   " << indirectStallCycles << "\n"
       << "DIC hits/misses:     " << dicHits << "/" << dicMisses << "\n"
       << "PDU fills (folded):  " << pduFills << " (" << pduFoldedPairs
       << ")\n"
       << "memory fetches:      " << memFetches << "\n"
       << "stack cache h/m:     " << stackCacheHits << "/"
       << stackCacheMisses << "\n"
       << "halted:              " << (halted ? "yes" : "no") << "\n";
    if (timedOut)
        os << "TIMED OUT at the cycle limit\n";
    if (cancelled)
        os << "CANCELLED by the cooperative cancellation flag\n";
    if (faulted) {
        os << (dicCorruption ? "DIC CORRUPTION" : "FAULT") << " at 0x"
           << std::hex << faultPc << std::dec << ": " << faultReason
           << "\n";
    }
    return os.str();
}

namespace
{

/** Minimal JSON string escaping (quotes, backslash, control chars). */
std::string
jsonEscape(const std::string& s)
{
    std::ostringstream os;
    for (const char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          case '\r':
            os << "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                os << "\\u" << std::hex << std::setw(4)
                   << std::setfill('0') << static_cast<int>(c)
                   << std::dec << std::setfill(' ');
            } else {
                os << c;
            }
            break;
        }
    }
    return os.str();
}

} // namespace

std::string
SimStats::toJson() const
{
    std::ostringstream os;
    os << "{";
    os << "\"engine\":\"" << engineName(engine) << "\"";
    os << ",\"cycles\":" << cycles;
    os << ",\"issued\":" << issued;
    os << ",\"apparent\":" << apparent;
    os << ",\"issuedCpi\":" << issuedCpi();
    os << ",\"apparentCpi\":" << apparentCpi();
    os << ",\"branches\":" << branches;
    os << ",\"foldedBranches\":" << foldedBranches;
    os << ",\"condBranches\":" << condBranches;
    os << ",\"resolvedAtIssue\":" << resolvedAtIssue;
    os << ",\"speculated\":" << speculated;
    os << ",\"mispredicts\":" << mispredicts;
    os << ",\"branchDelayCycles\":" << branchDelayCycles;
    os << ",\"squashed\":" << squashed;
    os << ",\"issueStallCycles\":" << issueStallCycles;
    os << ",\"dicMissStallCycles\":" << dicMissStallCycles;
    os << ",\"redirectStallCycles\":" << redirectStallCycles;
    os << ",\"indirectStallCycles\":" << indirectStallCycles;
    os << ",\"dicHits\":" << dicHits;
    os << ",\"dicMisses\":" << dicMisses;
    os << ",\"pduFoldedPairs\":" << pduFoldedPairs;
    os << ",\"pduFills\":" << pduFills;
    os << ",\"memFetches\":" << memFetches;
    os << ",\"stackCacheHits\":" << stackCacheHits;
    os << ",\"stackCacheMisses\":" << stackCacheMisses;
    os << ",\"stackPenaltyCycles\":" << stackPenaltyCycles;
    os << ",\"halted\":" << (halted ? "true" : "false");
    os << ",\"timedOut\":" << (timedOut ? "true" : "false");
    os << ",\"cancelled\":" << (cancelled ? "true" : "false");
    os << ",\"faulted\":" << (faulted ? "true" : "false");
    os << ",\"faultPc\":" << faultPc;
    os << ",\"faultReason\":\"" << jsonEscape(faultReason) << "\"";
    os << ",\"dicCorruption\":" << (dicCorruption ? "true" : "false");
    os << ",\"opcodeCounts\":[";
    for (std::size_t i = 0; i < opcodeCounts.size(); ++i) {
        if (i)
            os << ",";
        os << opcodeCounts[i];
    }
    os << "]}";
    return os.str();
}

} // namespace crisp
