/**
 * @file
 * The Decoded Instruction Cache: 32 x 192-bit entries in the real chip.
 *
 * Direct mapped; the low bits of the (parcel-aligned) instruction
 * address select the entry, exactly as the paper describes the IR-stage
 * Next-PC register: "the low five bits are used to address the Decoded
 * Instruction Cache".
 */

#ifndef CRISP_SIM_DIC_HH
#define CRISP_SIM_DIC_HH

#include <cstdint>
#include <vector>

#include "decoded.hh"
#include "isa/types.hh"

namespace crisp
{

class DecodedCache
{
  public:
    explicit DecodedCache(int entries)
        : entries_(checkedEntryCount(entries))
    {}

    /** Look up the entry for instruction address @p pc. */
    const DecodedInst*
    lookup(Addr pc) const
    {
        const Slot& s = entries_[index(pc)];
        if (s.valid && s.epoch == epoch_ && s.di.pc == pc)
            return &s.di;
        return nullptr;
    }

    /** Install a decoded entry (overwrites any conflicting one). */
    void
    fill(const DecodedInst& di)
    {
        Slot& s = entries_[index(di.pc)];
        s.valid = true;
        s.epoch = epoch_;
        s.di = di;
    }

    /**
     * Epoch-tagged lazy invalidation: bumping the epoch makes every
     * slot's tag stale in O(1), so a replay reset never walks the
     * table. The rare epoch wrap hard-clears once to keep ancient tags
     * from aliasing.
     */
    void
    invalidateAll()
    {
        if (++epoch_ == 0) {
            for (Slot& s : entries_) {
                s.valid = false;
                s.epoch = 0;
            }
        }
    }

    int size() const { return static_cast<int>(entries_.size()); }

  private:
    struct Slot
    {
        bool valid = false;
        std::uint32_t epoch = 0;
        DecodedInst di;
    };

    static std::size_t
    checkedEntryCount(int entries)
    {
        if (entries <= 0 || (entries & (entries - 1)) != 0)
            throw CrispError("DIC entry count must be a power of two");
        return static_cast<std::size_t>(entries);
    }

    std::size_t
    index(Addr pc) const
    {
        return (pc / kParcelBytes) & (entries_.size() - 1);
    }

    std::vector<Slot> entries_;
    std::uint32_t epoch_ = 0;
};

} // namespace crisp

#endif // CRISP_SIM_DIC_HH
