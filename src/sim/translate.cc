/**
 * @file
 * Lowering of predecoded entries into the threaded-code TOp table.
 */

#include "translate.hh"

namespace crisp
{

namespace
{

/** Pre-scale an operand specifier (wrapping uint32 arithmetic, exactly
 *  the interpreter's `sp_ + static_cast<Addr>(value) * kWordBytes`). */
TOperand
lowerOperand(const Operand& o)
{
    TOperand t;
    t.mode = o.mode;
    switch (o.mode) {
      case AddrMode::kStack:
      case AddrMode::kInd:
        t.v = static_cast<std::uint32_t>(o.value) * kWordBytes;
        break;
      case AddrMode::kAbs:
      case AddrMode::kImm:
        t.v = static_cast<std::uint32_t>(o.value);
        break;
      default:
        break;
    }
    return t;
}

/** Fill the computational-body fields of @p t from @p inst. */
void
fillBody(TOp& t, const Instruction& inst)
{
    t.bodyOp = inst.op;
    t.dst = lowerOperand(inst.dst);
    t.src = lowerOperand(inst.src);
    if (inst.op == Opcode::kNop) {
        t.body = TBody::kNop;
    } else if (inst.op == Opcode::kMov) {
        t.body = TBody::kMov;
    } else if (inst.op == Opcode::kEnter) {
        t.body = TBody::kEnter;
        t.frameBytes =
            static_cast<std::uint32_t>(inst.dst.value) * kWordBytes;
    } else if (inst.op == Opcode::kLeave) {
        t.body = TBody::kLeave;
        t.frameBytes =
            static_cast<std::uint32_t>(inst.dst.value) * kWordBytes;
    } else if (isCompare(inst.op)) {
        t.body = TBody::kCmp;
    } else if (isAlu3(inst.op)) {
        t.body = TBody::kAlu3;
    } else if (isAlu2(inst.op)) {
        t.body = inst.op == Opcode::kAdd &&
                         t.dst.mode == AddrMode::kAccum &&
                         t.src.mode == AddrMode::kImm
                     ? TBody::kAddAccImm
                     : TBody::kAlu2;
    } else {
        t.body = TBody::kBad;
    }
}

} // namespace

Translation::Translation(const Program& prog, FoldPolicy policy,
                         PredecodeCache* predecode,
                         bool enable_chaining,
                         const IndirectHints* hints)
    : prog_(prog), policy_(policy), chaining_(enable_chaining),
      textBase_(prog.textBase), textEnd_(prog.textEnd())
{
    if (hints != nullptr)
        hints_ = *hints;
    if (predecode) {
        predecode_ = predecode;
    } else {
        ownedPredecode_ = std::make_unique<PredecodeCache>(prog);
        predecode_ = ownedPredecode_.get();
    }
    build();
}

void
Translation::rebuild()
{
    build();
}

void
Translation::build()
{
    ops_.assign(prog_.text.size(), TOp{});
    trapMsgs_.clear();
    icSeeds_.clear();
    for (std::size_t i = 0; i < ops_.size(); ++i) {
        translateAt(ops_[i],
                    textBase_ + static_cast<Addr>(i) * kParcelBytes);
    }
    predictIndirects();
    linkSuccessors();
    computeTraces();
    ++epoch_;
}

void
Translation::makeTrap(TOp& t, Addr pc, const std::string& msg)
{
    t = TOp{};
    t.kind = TKind::kTrap;
    t.pc = pc;
    t.trapMsg = static_cast<std::uint32_t>(trapMsgs_.size());
    trapMsgs_.push_back(msg);
}

void
Translation::translateAt(TOp& t, Addr pc)
{
    try {
        const PredecodeCache::Entry& e = predecode_->at(pc, policy_);
        if (e.valid) {
            lowerDecoded(t, e.di);
            return;
        }
        // Truncated by the end of text: fetching here raises the
        // authentic interpreter error (before counting anything).
        try {
            prog_.fetch(pc);
            makeTrap(t, pc, "untranslatable instruction");
        } catch (const CrispError& err) {
            makeTrap(t, pc, err.what());
        }
    } catch (const CrispError&) {
        // The folding decoder rejected the encoding (e.g. an indirect
        // conditional branch, which the pipeline cannot issue). The
        // interpreter executes it anyway; fall back to its raw view so
        // the fast engine stays interpreter-equivalent.
        try {
            lowerRaw(t, pc, prog_.fetch(pc));
        } catch (const CrispError& err) {
            makeTrap(t, pc, err.what());
        }
    }
}

void
Translation::lowerDecoded(TOp& t, const DecodedInst& di)
{
    t.pc = di.pc;
    t.seqPc = di.seqPc;
    switch (di.ctl) {
      case Ctl::kSeq:
        t.kind = TKind::kChain;
        fillBody(t, di.body);
        return;
      case Ctl::kHalt:
        t.kind = TKind::kHalt;
        t.bodyOp = Opcode::kHalt;
        return;
      case Ctl::kRet:
        t.kind = TKind::kRet;
        t.bodyOp = Opcode::kReturn;
        t.frameBytes =
            static_cast<std::uint32_t>(di.body.dst.value) * kWordBytes;
        return;
      case Ctl::kJmp:
      case Ctl::kCondT:
      case Ctl::kCondF:
      case Ctl::kCall:
      case Ctl::kIndirect:
        break;
    }

    // Branch entries (lone or folded).
    t.kind = di.ctl == Ctl::kCall ? TKind::kCall
             : di.hasCondBranch() ? TKind::kCond
                                  : TKind::kJmp;
    t.condWhenTrue = di.ctl == Ctl::kCondT;
    t.branchOp = di.branchOp;
    t.branchPc = di.branchPc;
    t.takenPc = di.takenPc;
    t.callRetPc = di.callRetPc;
    t.shortForm = di.branchShortForm;
    t.predictTaken = di.predictTaken;
    t.folded = di.folded;
    if (di.folded)
        fillBody(t, di.body);
    if (di.ctl == Ctl::kIndirect) {
        t.dynTarget = true;
        t.bmode = di.bmode;
        t.dynSpec = di.bmode == BranchMode::kIndSp
                        ? di.spec * kWordBytes
                        : di.spec;
    }
}

void
Translation::lowerRaw(TOp& t, Addr pc, const Instruction& inst)
{
    t.pc = pc;
    t.seqPc = pc + inst.lengthBytes();
    switch (inst.op) {
      case Opcode::kHalt:
        t.kind = TKind::kHalt;
        t.bodyOp = Opcode::kHalt;
        return;
      case Opcode::kReturn:
        t.kind = TKind::kRet;
        t.bodyOp = Opcode::kReturn;
        t.frameBytes =
            static_cast<std::uint32_t>(inst.dst.value) * kWordBytes;
        return;
      case Opcode::kJmp:
      case Opcode::kIfTJmp:
      case Opcode::kIfFJmp:
      case Opcode::kCall:
        break;
      default:
        t.kind = TKind::kChain;
        fillBody(t, inst);
        return;
    }

    t.kind = inst.op == Opcode::kCall          ? TKind::kCall
             : isConditionalBranch(inst.op)    ? TKind::kCond
                                               : TKind::kJmp;
    t.condWhenTrue = inst.op == Opcode::kIfTJmp;
    t.branchOp = inst.op;
    t.branchPc = pc;
    t.callRetPc = t.seqPc;
    t.shortForm = inst.lengthParcels() == 1;
    t.predictTaken = inst.predictTaken;
    switch (inst.bmode) {
      case BranchMode::kPcRel:
        t.takenPc = pc + static_cast<Addr>(inst.disp);
        break;
      case BranchMode::kAbs:
        t.takenPc = inst.spec;
        break;
      case BranchMode::kIndAbs:
        t.dynTarget = true;
        t.bmode = inst.bmode;
        t.dynSpec = inst.spec;
        break;
      case BranchMode::kIndSp:
        t.dynTarget = true;
        t.bmode = inst.bmode;
        t.dynSpec = inst.spec * kWordBytes;
        break;
    }
}

void
Translation::predictIndirects()
{
    for (std::size_t i = 0; i < ops_.size(); ++i) {
        TOp& t = ops_[i];
        if (!t.dynTarget)
            continue;
        // Likely target: a hinted proven set's first element wins;
        // otherwise a constant-address specifier (kIndAbs) predicts
        // the load-image word it points at. Either way the value is
        // only ever a prediction — the engine compares it against the
        // word it actually reads.
        Addr likely = 0;
        bool have = false;
        bool extend = false;
        const auto h = hints_.targets.find(t.branchPc);
        if (h != hints_.targets.end() && !h->second.empty()) {
            likely = h->second.front();
            have = true;
            // Only a proven singleton earns trace extension; larger
            // bounded sets would mispredict too often to walk through.
            extend = h->second.size() == 1;
        } else if (t.bmode == BranchMode::kIndAbs) {
            const Addr a = t.dynSpec;
            if (a >= prog_.dataBase &&
                a + kWordBytes <=
                    prog_.dataBase +
                        static_cast<Addr>(prog_.data.size())) {
                const std::size_t off = a - prog_.dataBase;
                likely =
                    static_cast<Addr>(prog_.data[off]) |
                    (static_cast<Addr>(prog_.data[off + 1]) << 8) |
                    (static_cast<Addr>(prog_.data[off + 2]) << 16) |
                    (static_cast<Addr>(prog_.data[off + 3]) << 24);
                have = true;
                extend = true;
            }
        }
        if (!have)
            continue;
        const std::uint32_t li = indexOf(likely);
        if (li == kNoIdx)
            continue; // predicting a fetch fault helps nothing
        icSeeds_.emplace_back(static_cast<std::uint32_t>(i), likely);
        if (extend &&
            (t.kind == TKind::kJmp || t.kind == TKind::kCall)) {
            t.predTarget = likely;
            t.predIdx = li;
        }
    }
}

void
Translation::linkSuccessors()
{
    for (TOp& t : ops_) {
        t.seqIdx = indexOf(t.seqPc);
        if ((t.kind == TKind::kJmp || t.kind == TKind::kCond ||
             t.kind == TKind::kCall) &&
            !t.dynTarget) {
            t.takenIdx = indexOf(t.takenPc);
        }
    }
    // Superblock lengths, computed backward: a sequential op's
    // successor index is strictly greater than its own (seqPc > pc), so
    // every chain value on the right is already final.
    for (std::size_t i = ops_.size(); i-- > 0;) {
        TOp& t = ops_[i];
        if (t.kind != TKind::kChain)
            continue;
        t.chain = 1;
        if (t.seqIdx != kNoIdx &&
            ops_[t.seqIdx].kind == TKind::kChain) {
            t.chain += ops_[t.seqIdx].chain;
        }
    }
}

void
Translation::computeTraces()
{
    // An op the trace walker may execute inline: control past it is
    // statically known. Conditional branches, returns, indirect
    // targets, halts and traps all terminate a trace (the walker
    // dispatches them to their own handler).
    const auto walkable = [&](const TOp& t) {
        switch (t.kind) {
          case TKind::kChain:
            return true;
          case TKind::kJmp:
          case TKind::kCall:
            // An indirect exit is walkable when it carries a
            // predicted target: the walker executes it inline under a
            // runtime guard and leaves the trace on a misprediction.
            return chaining_ &&
                   (!t.dynTarget || t.predIdx != kNoIdx);
          default:
            return false;
        }
    };
    for (TOp& t : ops_) {
        t.trace = 0;
        t.traceInstr = 0;
        if (!walkable(t))
            continue;
        // Forward walk, capped: any prefix of walkable ops whose
        // intra-trace successors stay in the table is a valid trace,
        // so cutting at kTraceCap (or at a static jump cycle, which
        // the cap also bounds) is always sound — the walker simply
        // re-enters at the next head, where the next poll lives.
        const TOp* cur = &t;
        std::uint32_t n = 0;
        std::uint32_t instr = 0;
        for (;;) {
            ++n;
            instr += cur->folded ? 2u : 1u;
            if (n >= kTraceCap)
                break;
            const std::uint32_t s =
                cur->kind == TKind::kChain ? cur->seqIdx
                : cur->dynTarget           ? cur->predIdx
                                           : cur->takenIdx;
            if (s == kNoIdx || !walkable(ops_[s]))
                break;
            cur = &ops_[s];
        }
        t.trace = n;
        t.traceInstr = instr;
    }
}

} // namespace crisp
