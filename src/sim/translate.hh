/**
 * @file
 * Translation of predecoded DIC lines into threaded-code operations.
 *
 * The predecode cache already materializes the paper's 192-bit canonical
 * form — a decoded body plus Next-PC / Alternate-Next-PC links. A
 * Translation lowers that one step further, into the form a threaded
 * interpreter wants to dispatch on:
 *
 *  - one TOp per parcel address (same indexing as the predecode table),
 *    so any branch target inside the text segment resolves to a handler
 *    with one subtract and one shift;
 *  - Next-PC / Alternate-Next-PC links pre-resolved to table indices
 *    (kNoIdx when the successor leaves the text segment — the fetch
 *    fault is raised only if control actually goes there, exactly like
 *    the interpreter);
 *  - operand specifiers pre-scaled to byte offsets (the interpreter
 *    recomputes `value * 4` per access; here it is folded into the
 *    table) — all in wrapping uint32 arithmetic, matching the
 *    interpreter's address math bit for bit;
 *  - superblock links: every maximal run of sequential (non-control)
 *    ops is measured at translation time so the fast engine can retire
 *    the whole straight-line region in a single handler activation.
 *
 * Translation is semantics-preserving lowering only: every fault the
 * interpreter would raise (truncated instruction, unaligned or
 * out-of-text fetch, indirect-target read) is represented and raised at
 * the same architectural point, with the same message.
 */

#ifndef CRISP_SIM_TRANSLATE_HH
#define CRISP_SIM_TRANSLATE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "config.hh"
#include "isa/program.hh"
#include "predecode.hh"

namespace crisp
{

/** Successor index meaning "leaves translated code" (fetch fault if
 *  control actually transfers there). */
inline constexpr std::uint32_t kNoIdx = 0xffffffffu;

/**
 * Optional per-branch indirect-target hints, keyed by the *branch
 * instruction's* address (TOp::branchPc). Produced by the
 * interprocedural value-set analysis (analysis/targets.hh) from proven
 * finite target sets; the translator treats them as predictions only —
 * every use is guarded by a runtime compare against the actually-read
 * target word, so a stale or wrong hint costs speed, never
 * correctness. A single-element vector additionally lets the trace
 * walker chain straight through the indirect exit; the first element
 * of a larger set seeds the monomorphic inline cache.
 */
struct IndirectHints
{
    std::map<Addr, std::vector<Addr>> targets;
};

/** Handler selector: what the dispatch loop does with this op. */
enum class TKind : std::uint8_t {
    /** Sequential (non-control) op: run the superblock starting here. */
    kChain = 0,
    /** Unconditional jump (static or indirect), possibly folded. */
    kJmp,
    /** Conditional branch, possibly folded. */
    kCond,
    /** Call: push return address, go to target. */
    kCall,
    /** Return: pop frame and return address. */
    kRet,
    kHalt,
    /** No decode exists here (truncated or malformed instruction);
     *  reaching it raises the interpreter's fetch error, uncounted. */
    kTrap,
};

/** Computational-body selector (avoids re-deriving opcode class). */
enum class TBody : std::uint8_t {
    kNop = 0,
    kAlu2,
    /** `add accum, imm` — the accumulator machine's workhorse (every
     *  crispcc expression chain emits runs of it). Specialized so the
     *  walker skips the operand resolvers and the ALU switch; the
     *  handler computes exactly evalAlu(kAdd, accum, imm). */
    kAddAccImm,
    kAlu3,
    kCmp,
    kMov,
    kEnter,
    kLeave,
    /** Defensive: a body the translator could not classify. Executing
     *  it raises the interpreter's unhandled-opcode error *after*
     *  counting, preserving fault-point equivalence. */
    kBad,
};

/** Operand with its specifier pre-scaled to bytes where applicable. */
struct TOperand
{
    AddrMode mode = AddrMode::kNone;
    /** kStack/kInd: byte offset from SP (value * 4, wrapping).
     *  kAbs: byte address. kImm: the immediate's bit pattern. */
    std::uint32_t v = 0;
};

/** One translated (possibly folded) instruction: a direct-threaded
 *  handler selector plus everything its handler needs, pre-resolved. */
struct TOp
{
    TKind kind = TKind::kTrap;
    TBody body = TBody::kNop;
    /** Architectural opcode of the body (histogram + events). */
    Opcode bodyOp = Opcode::kNop;
    /** Opcode of the attached/lone branch (kJmp/kCond/kCall only). */
    Opcode branchOp = Opcode::kJmp;
    /** A following branch was folded in: the body executes (and counts)
     *  first, then the branch counts as its own architectural
     *  instruction. */
    bool folded = false;
    /** kCond: transfer when the flag equals this value's truth sense
     *  (true for iftjmp, false for iffjmp). */
    bool condWhenTrue = false;
    bool shortForm = false;
    bool predictTaken = false;
    /** Target is read from memory at execution time (kIndAbs/kIndSp). */
    bool dynTarget = false;
    BranchMode bmode = BranchMode::kPcRel;

    TOperand dst;
    TOperand src;

    /** Address of this op (the carrier for folded pairs). */
    Addr pc = 0;
    /** Address of the attached/lone branch instruction. */
    Addr branchPc = 0;
    /** Fall-through address (one past the whole entry). */
    Addr seqPc = 0;
    /** Static taken-path address (kJmp/kCond/kCall). */
    Addr takenPc = 0;
    /** Return address pushed by kCall. */
    Addr callRetPc = 0;

    /** Frame bytes for enter/leave/return (value * 4, wrapping). */
    std::uint32_t frameBytes = 0;
    /** Indirect specifier: byte address (kIndAbs) or SP byte offset
     *  (kIndSp, pre-scaled). */
    std::uint32_t dynSpec = 0;
    /** kTrap: index into Translation's trap-message table. */
    std::uint32_t trapMsg = 0;

    /** Table index of seqPc / takenPc (kNoIdx = leaves text). */
    std::uint32_t seqIdx = kNoIdx;
    std::uint32_t takenIdx = kNoIdx;

    /**
     * Indirect exits only: the predicted target and its table index
     * (kNoIdx = no prediction). From an analysis hint (singleton
     * proven set), or — for kIndAbs — the load-image word at the
     * specifier address. Predictions let the trace walker chain
     * through the exit; the walker compares the predicted address
     * against the target word it actually reads and falls back to the
     * generic resolver on mismatch, so predictions are never trusted
     * architecturally.
     */
    Addr predTarget = 0;
    std::uint32_t predIdx = kNoIdx;

    /** kChain: number of sequential ops in the superblock starting
     *  here (>= 1), ending just before a control/trap op. */
    std::uint32_t chain = 0;

    /**
     * Entries in the statically-determined trace starting here: a run
     * of sequential ops *and* — when chaining is enabled —
     * statically-resolved unconditionally-taken branches (kJmp with a
     * static target, incl. folded ones, and direct kCall). The fast
     * engine's trace walker executes exactly this many entries under a
     * single cancel/budget poll before re-dispatching. 0 = this op is
     * not trace-walkable (conditional, return, indirect, halt, trap);
     * its own handler dispatches it.
     */
    std::uint32_t trace = 0;
    /** Apparent (architectural) instructions that trace retires —
     *  folded entries count both halves; the walker's fuel debit. */
    std::uint32_t traceInstr = 0;
};

/**
 * Upper bound on trace length in table entries. Caps the translator's
 * trace walk (a static jump cycle must not loop it forever), and bounds
 * the fast engine's poll overshoot: a trace is at most kTraceCap
 * entries, i.e. at most 2 * kTraceCap apparent instructions past the
 * poll that admitted it — well inside the budget-overshoot bound the
 * engine tests pin.
 */
inline constexpr std::uint32_t kTraceCap = 128;

/**
 * The threaded-code image of one program under one fold policy: a flat
 * per-parcel TOp table mirroring the predecode cache's indexing.
 *
 * Holds references to the program and (optionally shared, warmed)
 * predecode cache; both must outlive the Translation.
 */
class Translation
{
  public:
    /**
     * Build the table. @p predecode may be null, in which case a
     * private cache is created; passing crispd's shared warmed cache
     * makes translation reuse every memoized decode.
     * @p enable_chaining controls whether traces extend across
     * unconditionally-taken static branches (SimConfig::enableChaining;
     * off restores one-basic-block traces).
     * @p hints optionally carries proven indirect-target sets
     * (copied); see IndirectHints for the guarantees.
     */
    Translation(const Program& prog, FoldPolicy policy,
                PredecodeCache* predecode = nullptr,
                bool enable_chaining = true,
                const IndirectHints* hints = nullptr);

    Translation(const Translation&) = delete;
    Translation& operator=(const Translation&) = delete;

    const TOp* ops() const { return ops_.data(); }
    std::size_t size() const { return ops_.size(); }

    /** Table index of the program entry point. */
    std::uint32_t entryIndex() const { return indexOf(prog_.entry); }

    /** Table index of byte address @p a, kNoIdx when @p a is unaligned
     *  or outside the text segment. */
    std::uint32_t
    indexOf(Addr a) const
    {
        if (a % kParcelBytes != 0 || a < textBase_ || a >= textEnd_)
            return kNoIdx;
        return (a - textBase_) / kParcelBytes;
    }

    /** Fault message for a kTrap op. */
    const std::string&
    trapMessage(std::uint32_t idx) const
    {
        return trapMsgs_[idx];
    }

    /**
     * Drop and re-derive every translated op (e.g. after a memory-image
     * revert undid stores into the text window — the translation must
     * provably describe the restored image, never the dirtied one).
     * Bumps epoch() so tests can observe the invalidation.
     */
    void rebuild();

    /** Incremented on every (re)build; starts at 1. */
    std::uint64_t epoch() const { return epoch_; }

    const Program& program() const { return prog_; }
    FoldPolicy policy() const { return policy_; }
    /** Whether traces were allowed to cross static taken branches. */
    bool chaining() const { return chaining_; }

    /**
     * Inline-cache seeds: (table index, likely target) for every
     * indirect exit with a prediction or a hinted bounded set. An
     * engine may pre-fill its monomorphic caches from these so a
     * hint-conforming first execution hits instead of missing.
     */
    const std::vector<std::pair<std::uint32_t, Addr>>&
    icSeeds() const
    {
        return icSeeds_;
    }

  private:
    void build();
    void translateAt(TOp& t, Addr pc);
    void lowerDecoded(TOp& t, const DecodedInst& di);
    void lowerRaw(TOp& t, Addr pc, const Instruction& inst);
    void makeTrap(TOp& t, Addr pc, const std::string& msg);
    void predictIndirects();
    void linkSuccessors();
    void computeTraces();

    const Program& prog_;
    const FoldPolicy policy_;
    const bool chaining_;
    const Addr textBase_;
    const Addr textEnd_;
    std::unique_ptr<PredecodeCache> ownedPredecode_;
    PredecodeCache* predecode_;
    IndirectHints hints_;
    std::vector<TOp> ops_;
    std::vector<std::string> trapMsgs_;
    std::vector<std::pair<std::uint32_t, Addr>> icSeeds_;
    std::uint64_t epoch_ = 0;
};

} // namespace crisp

#endif // CRISP_SIM_TRANSLATE_HH
