/**
 * @file
 * Configuration knobs for the cycle-level CRISP simulator.
 */

#ifndef CRISP_SIM_CONFIG_HH
#define CRISP_SIM_CONFIG_HH

#include <cstdint>
#include <string_view>

namespace crisp
{

/**
 * Which execution engine produced a result.
 *
 *  - kCycle: the cycle-accurate three-stage pipeline (CrispCpu) — the
 *    timing oracle; every counter in SimStats is meaningful.
 *  - kFast: the threaded-code functional engine (FastEngine) — same
 *    architectural results, no timing (cycles stay 0); the default for
 *    consumers that only want architectural stats.
 *  - kInterp: the reference interpreter — the golden model both other
 *    engines are verified against.
 *
 * The value is carried in SimStats, `crisprun --stats-json`, and the
 * crispd wire protocol, and is part of the service's result-cache key:
 * results from different engines are never interchangeable (their
 * timing fields differ by construction).
 */
enum class EngineKind : std::uint8_t {
    kCycle = 0,
    kFast = 1,
    kInterp = 2,
};

inline std::string_view
engineName(EngineKind e)
{
    switch (e) {
      case EngineKind::kCycle:
        return "cycle";
      case EngineKind::kFast:
        return "fast";
      case EngineKind::kInterp:
        return "interp";
    }
    return "?";
}

/** How the EU predicts speculative conditional branches. */
enum class PredictorKind : std::uint8_t {
    /** The paper's choice: the compiler-set static bit. */
    kStaticBit,
    /** 1-bit dynamic history (predict same as last time). */
    kDynamic1,
    /** 2-bit saturating counters (J. Smith weighting). */
    kDynamic2,
};

/** Which instruction pairs the PDU is allowed to fold. */
enum class FoldPolicy : std::uint8_t {
    /** No folding: every branch occupies an EU pipeline slot. */
    kNone,
    /**
     * The CRISP policy: fold one- and three-parcel non-branch
     * instructions with a following one-parcel branch. "Doing the
     * remaining cases significantly increases the amount of hardware
     * required, with only a marginal increase in performance."
     */
    kCrisp,
    /** Also fold five-parcel carriers (the hardware-expensive case). */
    kAll,
};

/** Cycle-level simulator configuration. */
struct SimConfig
{
    FoldPolicy foldPolicy = FoldPolicy::kCrisp;

    /**
     * Honor the static prediction bit in conditional branches. When
     * false the hardware behaves as a predict-not-taken machine
     * regardless of the compiler's bit (ablation only).
     */
    bool respectPredictionBit = true;

    /** Number of Decoded Instruction Cache entries (power of two). */
    int dicEntries = 32;

    /** Main-memory latency in cycles for one 4-parcel fetch block. */
    int memLatency = 3;

    /** Instruction queue capacity in parcels (the paper's is 8). */
    int queueParcels = 8;

    /** Give up after this many cycles (runaway-program guard). When the
     *  limit expires SimStats::timedOut is set — a typed diagnostic, not
     *  a silent early return. */
    std::uint64_t maxCycles = 2'000'000'000ULL;

    /**
     * FastEngine only: let the translator merge handler chains across
     * statically-resolved unconditionally-taken branches (jumps —
     * including folded always-taken ones — and direct calls), so a
     * whole trace of basic blocks retires as one superblock with a
     * single cancel/budget poll. Architecturally invisible — results
     * are bit-identical either way (`crisptorture --engine-diff
     * --no-chain` proves it on every seed); off is the escape hatch
     * that restores one-basic-block superblocks.
     */
    bool enableChaining = true;

    /**
     * Retire-time decode checker: before an entry retires, re-derive the
     * golden decode of the program text at its PC and verify the cached
     * Next-PC / Alternate-PC / body / modifies-CC metadata against it.
     * Mismatches raise DicCorruptionError as a precise machine fault
     * before any architectural state is touched. Hint state (the static
     * prediction bit, the fold decision itself) is deliberately excluded:
     * faults there are architecturally benign by design. Off by default
     * (it re-decodes on every retire); torture/fault-injection runs
     * enable it.
     */
    bool checkDecode = false;

    /**
     * Use the whole-program predecode cache (predecode.hh): the PDR
     * stage and the checkDecode golden re-decode memoize decode results
     * per (address, fold policy) instead of re-running the decoder.
     * Purely a host-speed optimization — cycle-accurate timing and all
     * statistics are bit-identical either way (tests/test_perf_paths.cc
     * proves it). Off is the escape hatch that forces the legacy
     * re-decoding path.
     */
    bool usePredecode = true;

    /**
     * Hardware prediction scheme for conditional branches whose
     * outcome is unknown at issue. CRISP shipped kStaticBit; the
     * dynamic options model the "more complex schemes" the paper
     * evaluated and rejected (a direct-mapped on-chip history table).
     */
    PredictorKind predictor = PredictorKind::kStaticBit;

    /** History-table entries for the dynamic predictors (power of 2). */
    int predictorEntries = 256;

    /** Stack cache capacity in words (top-of-stack window). */
    int stackCacheWords = 32;

    /**
     * Extra issue-stall cycles per stack-cache miss. 0 (the default)
     * keeps the paper's Table 4 timing (its frames fit trivially);
     * raise it to study deep-recursion behaviour.
     */
    int stackCacheMissPenalty = 0;
};

} // namespace crisp

#endif // CRISP_SIM_CONFIG_HH
