/**
 * @file
 * Delayed-branch executor implementation.
 */

#include "delayed.hh"

namespace crisp
{

DelayedBranchCpu::DelayedBranchCpu(const Program& prog, bool annulling)
    : prog_(prog), mem_(prog_), annulling_(annulling)
{
    pc_ = prog.entry;
    sp_ = (prog.memBytes - kWordBytes) & ~(kWordBytes - 1);
}

Word
DelayedBranchCpu::readOperand(const Operand& o) const
{
    switch (o.mode) {
      case AddrMode::kImm:
        return o.value;
      case AddrMode::kAccum:
        return accum_;
      case AddrMode::kNone:
        return 0;
      default:
        return static_cast<Word>(mem_.read32(operandAddress(o)));
    }
}

Addr
DelayedBranchCpu::operandAddress(const Operand& o) const
{
    switch (o.mode) {
      case AddrMode::kStack:
        return sp_ + static_cast<Addr>(o.value) * kWordBytes;
      case AddrMode::kAbs:
        return static_cast<Addr>(o.value);
      case AddrMode::kInd:
        return mem_.read32(sp_ + static_cast<Addr>(o.value) * kWordBytes);
      default:
        throw CrispError("operand has no address");
    }
}

void
DelayedBranchCpu::writeOperand(const Operand& o, Word v)
{
    if (o.mode == AddrMode::kAccum) {
        accum_ = v;
        return;
    }
    mem_.write32(operandAddress(o), static_cast<std::uint32_t>(v));
}

void
DelayedBranchCpu::executePlain(const Instruction& inst)
{
    switch (inst.op) {
      case Opcode::kNop:
        break;
      case Opcode::kEnter:
        sp_ -= static_cast<Addr>(inst.dst.value) * kWordBytes;
        break;
      case Opcode::kLeave:
        sp_ += static_cast<Addr>(inst.dst.value) * kWordBytes;
        break;
      case Opcode::kMov:
        writeOperand(inst.dst, readOperand(inst.src));
        break;
      default:
        if (isCompare(inst.op)) {
            flag_ = evalCompare(inst.op, readOperand(inst.dst),
                                readOperand(inst.src));
            sinceCmp_ = 0;
        } else if (isAlu3(inst.op)) {
            accum_ = evalAlu(inst.op, readOperand(inst.dst),
                             readOperand(inst.src));
        } else if (isAlu2(inst.op)) {
            writeOperand(inst.dst,
                         evalAlu(inst.op, readOperand(inst.dst),
                                 readOperand(inst.src)));
        } else {
            throw CrispError("delayed cpu: unhandled opcode");
        }
        break;
    }
}

const DelayedStats&
DelayedBranchCpu::run(std::uint64_t max_steps)
{
    std::uint64_t steps = 0;
    while (!halted_ && steps++ < max_steps) {
        const Addr pc = pc_;
        const Instruction inst = prog_.fetch(pc);
        const Addr fall = pc + inst.lengthBytes();

        ++stats_.instructions;
        ++stats_.cycles;
        ++sinceCmp_;
        if (inst.op == Opcode::kNop)
            ++stats_.nopSlots;

        switch (inst.op) {
          case Opcode::kHalt:
            halted_ = true;
            stats_.halted = true;
            break;
          case Opcode::kReturn: {
            sp_ += static_cast<Addr>(inst.dst.value) * kWordBytes;
            const Addr target = mem_.read32(sp_);
            sp_ += kWordBytes;
            pc_ = target;
            break;
          }
          case Opcode::kJmp:
          case Opcode::kIfTJmp:
          case Opcode::kIfFJmp:
          case Opcode::kCall: {
            ++stats_.branches;
            Addr target = 0;
            switch (inst.bmode) {
              case BranchMode::kPcRel:
                target = pc + static_cast<Addr>(inst.disp);
                break;
              case BranchMode::kAbs:
                target = inst.spec;
                break;
              case BranchMode::kIndAbs:
                target = mem_.read32(inst.spec);
                break;
              case BranchMode::kIndSp:
                target = mem_.read32(
                    sp_ + static_cast<Addr>(
                              static_cast<std::int32_t>(inst.spec)) *
                              kWordBytes);
                break;
            }

            bool taken = true;
            if (isConditionalBranch(inst.op)) {
                // Flag interlock: the compare's result is not yet
                // available if it was the immediately preceding
                // instruction.
                if (sinceCmp_ <= 1) {
                    ++stats_.cycles;
                    ++stats_.interlockStalls;
                }
                taken = inst.op == Opcode::kIfTJmp ? flag_ : !flag_;
            }

            if (inst.op == Opcode::kCall) {
                // Calls have no delay slot in this model.
                sp_ -= kWordBytes;
                mem_.write32(sp_, fall);
                pc_ = target;
                break;
            }

            // Execute the architecturally exposed delay slot. An
            // annulling conditional branch (prediction bit set, in
            // annulling mode) squashes it when not taken, at the cost
            // of one bubble cycle.
            const Instruction slot = prog_.fetch(fall);
            if (isBranch(slot.op) || slot.op == Opcode::kReturn ||
                slot.op == Opcode::kHalt) {
                throw CrispError(
                    "delayed cpu: control instruction in a delay slot "
                    "(program not compiled with delaySlots=true?)");
            }
            const bool annul = annulling_ &&
                               isConditionalBranch(inst.op) &&
                               inst.predictTaken && !taken;
            ++stats_.cycles;
            if (annul) {
                ++stats_.annulledSlots;
            } else {
                ++stats_.instructions;
                ++sinceCmp_;
                if (slot.op == Opcode::kNop)
                    ++stats_.nopSlots;
                executePlain(slot);
            }

            pc_ = taken ? target : fall + slot.lengthBytes();
            break;
          }
          default:
            executePlain(inst);
            pc_ = fall;
            break;
        }
    }
    return stats_;
}

Word
DelayedBranchCpu::wordAt(const std::string& symbol) const
{
    const auto a = prog_.lookup(symbol);
    if (!a)
        throw CrispError("unknown symbol: " + symbol);
    return static_cast<Word>(mem_.read32(*a));
}

} // namespace crisp
