/**
 * @file
 * Delayed-branch baseline machine.
 *
 * The comparison target of the paper's case E and its "Comparison to
 * Other Schemes" section: a machine where every branch occupies a
 * pipeline slot and is followed by one architecturally-exposed delay
 * slot that executes regardless of the branch direction (MANIAC / IBM
 * 801 / RISC-I / MIPS style).
 *
 * Programs must be compiled with CompileOptions::delaySlots = true,
 * which inserts a useful instruction (or a nop) after every jmp /
 * iftjmp / iffjmp.
 *
 * Timing model (idealized, for relative branch-cost comparisons):
 *  - one instruction per cycle, including delay-slot instructions and
 *    filler nops;
 *  - a conditional branch immediately preceded by its compare stalls
 *    one cycle for the flag interlock;
 *  - no instruction-cache model (the CRISP simulator's DIC effects are
 *    deliberately excluded so the comparison isolates branch cost).
 */

#ifndef CRISP_BASELINE_DELAYED_HH
#define CRISP_BASELINE_DELAYED_HH

#include <cstdint>
#include <string>

#include "interp/memory_image.hh"
#include "isa/program.hh"

namespace crisp
{

struct DelayedStats
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    /** Filler nops executed (unfilled delay slots). */
    std::uint64_t nopSlots = 0;
    /** Flag-interlock stalls on conditional branches. */
    std::uint64_t interlockStalls = 0;
    /** Annulled (squashed) delay slots, annulling machines only. */
    std::uint64_t annulledSlots = 0;
    std::uint64_t branches = 0;
    bool halted = false;

    double
    cpi() const
    {
        return instructions
                   ? static_cast<double>(cycles) /
                         static_cast<double>(instructions)
                   : 0.0;
    }
};

/** Executor with one-delay-slot branch semantics. */
class DelayedBranchCpu
{
  public:
    /**
     * @param annulling interpret the prediction bit of conditional
     *        branches as "annul the slot when not taken" (squashing
     *        delayed branches; requires code compiled with
     *        CompileOptions::annulSlots). An annulled slot costs one
     *        bubble cycle.
     */
    explicit DelayedBranchCpu(const Program& prog,
                              bool annulling = false);

    const DelayedStats& run(std::uint64_t max_steps = 500'000'000);

    Addr sp() const { return sp_; }
    Word accum() const { return accum_; }
    bool flag() const { return flag_; }
    Word wordAt(const std::string& symbol) const;
    const MemoryImage& memory() const { return mem_; }
    const DelayedStats& stats() const { return stats_; }

  private:
    Word readOperand(const Operand& o) const;
    void writeOperand(const Operand& o, Word v);
    Addr operandAddress(const Operand& o) const;

    /** Execute the non-control instruction at @p pc. */
    void executePlain(const Instruction& inst);

    /** Owned copy: the CPU's lifetime is self-contained. */
    Program prog_;
    MemoryImage mem_;
    Addr pc_ = 0;
    Addr sp_ = 0;
    Word accum_ = 0;
    bool flag_ = false;
    bool halted_ = false;
    DelayedStats stats_;
    bool annulling_ = false;
    /** Instructions executed since the last compare retired. */
    std::uint64_t sinceCmp_ = 1000;
};

} // namespace crisp

#endif // CRISP_BASELINE_DELAYED_HH
